// perf_sweep: throughput of the Figure-6 sweep harness, serial vs parallel.
//
// Benchmarks the lean production path (StatsSink, audit off) of the default
// Figure 6(a) configuration once per thread count (1, 2, ..., up to the
// hardware limit, env MKSS_PERF_MAX_THREADS to cap) and emits
// bench/BENCH_sweep.json with sets/sec, per-phase timings and the serial
// run's generation stage counters per thread count plus the speedup over the
// serial run, so CI can track the perf trajectory as data. Also asserts the determinism contract en route: every thread count
// AND the trace-free StatsSink must reproduce the serial full-trace
// SweepResult bit-for-bit (including the quarantined-error list).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "fig6_common.hpp"

namespace {

/// True when both sweeps agree on every count, every per-bin statistic and
/// every quarantined error to the last bit (mean/min/max go through
/// identical accumulation order).
bool identical(const mkss::harness::SweepResult& a,
               const mkss::harness::SweepResult& b) {
  if (a.qos_failures != b.qos_failures || a.bins.size() != b.bins.size() ||
      a.errors.size() != b.errors.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.errors.size(); ++i) {
    const auto& x = a.errors[i];
    const auto& y = b.errors[i];
    if (x.bin != y.bin || x.set != y.set || x.variant != y.variant ||
        x.message != y.message) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    const auto& x = a.bins[i];
    const auto& y = b.bins[i];
    if (x.sets != y.sets || x.attempts != y.attempts ||
        !(x.gen_counters == y.gen_counters)) {
      return false;
    }
    for (std::size_t s = 0; s < x.normalized.size(); ++s) {
      if (x.normalized[s].mean() != y.normalized[s].mean() ||
          x.normalized[s].stddev() != y.normalized[s].stddev() ||
          x.absolute[s].mean() != y.absolute[s].mean()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mkss;
  using clock = std::chrono::steady_clock;

  // Default Figure 6(a) configuration; MKSS_SETS_PER_BIN etc. still apply.
  auto cfg = benchrun::bench_config(fault::Scenario::kNoFault, argc, argv);
  cfg.schemes = {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                 sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective};
  // Scale the workload so the serial baseline runs for >= 1 s: the stock 20
  // sets/bin finish in milliseconds, where timer resolution and scheduler
  // noise swamp the signal. The attempt cap must scale with it -- the
  // high-utilization bins are rejection-dominated and would otherwise stop
  // the whole sweep at the stock cap. Explicit MKSS_SETS_PER_BIN /
  // MKSS_MAX_ATTEMPTS still win.
  if (std::getenv("MKSS_SETS_PER_BIN") == nullptr) {
    cfg.sets_per_bin = 400;
  }
  if (std::getenv("MKSS_MAX_ATTEMPTS") == nullptr) {
    cfg.max_attempts_per_bin = 80000;
  }
  // The benchmark measures the lean path (no audit, online statistics, no
  // trace materialization); the reference run below pins its correctness.
  cfg.audit = false;
  cfg.sink = harness::SweepConfig::Sink::kStats;

  std::size_t max_threads = core::ThreadPool::resolve_num_threads(0);
  if (const char* env = std::getenv("MKSS_PERF_MAX_THREADS")) {
    max_threads = static_cast<std::size_t>(std::atoll(env));
  }
  if (max_threads < 1) max_threads = 1;

  // Reference: serial, full traces. Every benchmark run (any thread count,
  // StatsSink) must reproduce it bit-for-bit.
  auto ref_cfg = cfg;
  ref_cfg.num_threads = 1;
  ref_cfg.sink = harness::SweepConfig::Sink::kFullTrace;
  const harness::SweepResult reference = harness::run_sweep(ref_cfg);

  struct Sample {
    std::size_t threads;
    double seconds;
    double sets_per_sec;
    bool bit_identical;
    harness::SweepResult::PhaseTimings timings;
  };
  std::vector<Sample> samples;
  std::size_t total_sets = 0;
  std::uint64_t total_attempts = 0;
  workload::GenCounters gen_totals;

  std::printf("=== perf_sweep: Figure-6a harness throughput (lean path) ===\n");
  // Timed samples stop at the hardware limit: an oversubscribed run only
  // measures scheduler thrash, and its "speedup" poisons the baseline.
  for (std::size_t t = 1; t <= max_threads; t *= 2) {
    cfg.num_threads = t;
    const auto start = clock::now();
    const auto result = harness::run_sweep(cfg);
    const double secs =
        std::chrono::duration<double>(clock::now() - start).count();

    std::size_t sets = 0;
    for (const auto& bin : result.bins) sets += bin.sets;
    const bool same = identical(reference, result);
    if (t == 1) {
      total_sets = sets;
      for (const auto& bin : result.bins) total_attempts += bin.attempts;
      gen_totals = result.generation_totals();
    }
    samples.push_back({t, secs, secs > 0 ? static_cast<double>(sets) / secs : 0,
                       same, result.timings});
    std::printf(
        "threads=%zu  %.2fs  %.1f sets/sec  "
        "(gen %.2fs, sim %.2fs, agg %.2fs)  %s\n",
        t, secs, samples.back().sets_per_sec, result.timings.generate_seconds,
        result.timings.simulate_seconds, result.timings.aggregate_seconds,
        same ? "bit-identical" : "MISMATCH vs serial full-trace reference");
  }

  // The determinism contract must still see a genuinely multi-threaded run
  // even on a single-core machine: verify 2 threads untimed, outside the
  // benchmark samples.
  bool contract_identical = true;
  if (max_threads < 2) {
    cfg.num_threads = 2;
    contract_identical = identical(reference, harness::run_sweep(cfg));
    std::printf("threads=2 (untimed contract check)  %s\n",
                contract_identical
                    ? "bit-identical"
                    : "MISMATCH vs serial full-trace reference");
  }

  const std::size_t hardware_threads = core::ThreadPool::resolve_num_threads(0);
  const double serial_rate = samples.front().sets_per_sec;
  bool all_identical = contract_identical;
  io::JsonWriter w;
  w.begin_object(io::JsonWriter::Scope::kBlock);
  w.key("bench");
  w.string("fig6a_sweep");
  w.key("schemes");
  w.u64(4);
  w.key("sets_total");
  w.u64(total_sets);
  w.key("sets_per_bin");
  w.u64(cfg.sets_per_bin);
  w.key("hardware_threads");
  w.u64(hardware_threads);
  // Where the serial run's generation attempts exited the staged-admission
  // ladder (see workload::GenCounters) -- a shift here usually explains a
  // generate_seconds shift.
  w.key("generation");
  w.begin_object();
  w.key("attempts");
  w.u64(total_attempts);
  w.key("draw_failures");
  w.u64(gen_totals.draw_failures);
  w.key("out_of_bin");
  w.u64(gen_totals.out_of_bin);
  w.key("filter_rejects");
  w.u64(gen_totals.filter_rejects);
  w.key("rta_rejects");
  w.u64(gen_totals.rta_rejects);
  w.key("accepted");
  w.u64(gen_totals.accepted);
  w.key("quick_accepts");
  w.u64(gen_totals.quick_accepts);
  w.end_object();
  w.key("runs");
  w.begin_array(io::JsonWriter::Scope::kBlock);
  for (const Sample& s : samples) {
    all_identical = all_identical && s.bit_identical;
    w.begin_object();
    w.key("threads");
    w.u64(s.threads);
    w.key("seconds");
    w.fixed(s.seconds, 4);
    w.key("sets_per_sec");
    w.fixed(s.sets_per_sec, 2);
    w.key("speedup");
    w.fixed(serial_rate > 0 ? s.sets_per_sec / serial_rate : 0.0, 3);
    w.key("generate_seconds");
    w.fixed(s.timings.generate_seconds, 4);
    w.key("simulate_seconds");
    w.fixed(s.timings.simulate_seconds, 4);
    w.key("aggregate_seconds");
    w.fixed(s.timings.aggregate_seconds, 4);
    w.key("bit_identical");
    w.boolean(s.bit_identical);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string json = w.take() + "\n";

  // Always under bench/ (created if the cwd doesn't have one): the repo root
  // stays free of bench artifacts, and .gitignore only has one place to
  // cover.
  const char* out_path = "bench/BENCH_sweep.json";
  std::error_code ec;
  std::filesystem::create_directories("bench", ec);
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: sweep diverged from serial full-trace reference\n");
    return 1;
  }
  return 0;
}
