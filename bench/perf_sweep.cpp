// perf_sweep: throughput of the Figure-6 sweep harness, serial vs parallel.
//
// Runs the default Figure 6(a) configuration once per thread count (1, 2,
// ..., up to the hardware limit, env MKSS_PERF_MAX_THREADS to cap) and
// emits BENCH_sweep.json with sets/sec per thread count plus the speedup
// over the serial run, so CI can track the perf trajectory as data. Also
// asserts the determinism contract en route: every thread count must
// reproduce the serial SweepResult bit-for-bit.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "fig6_common.hpp"

namespace {

/// True when both sweeps agree on every count and every per-bin statistic to
/// the last bit (mean/min/max go through identical accumulation order).
bool identical(const mkss::harness::SweepResult& a,
               const mkss::harness::SweepResult& b) {
  if (a.qos_failures != b.qos_failures || a.bins.size() != b.bins.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    const auto& x = a.bins[i];
    const auto& y = b.bins[i];
    if (x.sets != y.sets || x.attempts != y.attempts) return false;
    for (std::size_t s = 0; s < x.normalized.size(); ++s) {
      if (x.normalized[s].mean() != y.normalized[s].mean() ||
          x.normalized[s].stddev() != y.normalized[s].stddev() ||
          x.absolute[s].mean() != y.absolute[s].mean()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mkss;
  using clock = std::chrono::steady_clock;

  // Default Figure 6(a) configuration; MKSS_SETS_PER_BIN etc. still apply.
  auto cfg = benchrun::bench_config(fault::Scenario::kNoFault, argc, argv);
  cfg.schemes = {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                 sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective};

  std::size_t max_threads = core::ThreadPool::resolve_num_threads(0);
  if (const char* env = std::getenv("MKSS_PERF_MAX_THREADS")) {
    max_threads = static_cast<std::size_t>(std::atoll(env));
  }
  if (max_threads < 1) max_threads = 1;

  struct Sample {
    std::size_t threads;
    double seconds;
    double sets_per_sec;
    bool bit_identical;
  };
  std::vector<Sample> samples;
  harness::SweepResult serial;
  std::size_t total_sets = 0;

  std::printf("=== perf_sweep: Figure-6a harness throughput ===\n");
  for (std::size_t t = 1; t <= max_threads; t *= 2) {
    cfg.num_threads = t;
    const auto start = clock::now();
    const auto result = harness::run_sweep(cfg);
    const double secs =
        std::chrono::duration<double>(clock::now() - start).count();

    std::size_t sets = 0;
    for (const auto& bin : result.bins) sets += bin.sets;
    const bool same = t == 1 ? true : identical(serial, result);
    if (t == 1) {
      serial = result;
      total_sets = sets;
    }
    samples.push_back({t, secs, secs > 0 ? static_cast<double>(sets) / secs : 0,
                       same});
    std::printf("threads=%zu  %.2fs  %.1f sets/sec  %s\n", t, secs,
                samples.back().sets_per_sec,
                same ? "bit-identical" : "MISMATCH vs serial");
  }

  const double serial_rate = samples.front().sets_per_sec;
  bool all_identical = true;
  std::string json = "{\n  \"bench\": \"fig6a_sweep\",\n";
  json += "  \"schemes\": 4,\n";
  json += "  \"sets_total\": " + std::to_string(total_sets) + ",\n";
  json += "  \"sets_per_bin\": " + std::to_string(cfg.sets_per_bin) + ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(core::ThreadPool::resolve_num_threads(0)) + ",\n";
  json += "  \"runs\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    all_identical = all_identical && s.bit_identical;
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"threads\": %zu, \"seconds\": %.4f, "
                  "\"sets_per_sec\": %.2f, \"speedup\": %.3f, "
                  "\"bit_identical\": %s}%s\n",
                  s.threads, s.seconds, s.sets_per_sec,
                  serial_rate > 0 ? s.sets_per_sec / serial_rate : 0.0,
                  s.bit_identical ? "true" : "false",
                  i + 1 < samples.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  const char* out_path = "BENCH_sweep.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: parallel sweep diverged from serial result\n");
    return 1;
  }
  return 0;
}
