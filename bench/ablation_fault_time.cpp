// Ablation: when the permanent fault strikes.
//
// The paper draws the single permanent fault "at most once" without saying
// when; our Figure 6(b) draws the instant uniformly. This bench sweeps the
// instant across the horizon, for both processors, to show the energy
// result is insensitive to that modelling choice (the claim behind reusing
// the 6(a) narrative for 6(b)).
#include "fig6_common.hpp"

namespace {

class FixedPermanent final : public mkss::sim::FaultPlan {
 public:
  FixedPermanent(mkss::sim::ProcessorId p, mkss::core::Ticks t) : pf_{p, t} {}
  std::optional<mkss::sim::PermanentFault> permanent() const override { return pf_; }
  bool transient(const mkss::core::JobId&, int) const override { return false; }

 private:
  mkss::sim::PermanentFault pf_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mkss;
  const std::size_t threads = benchrun::bench_threads(argc, argv);

  // A fixed batch of schedulable sets reused for every fault instant.
  core::Rng rng(20200310);
  std::vector<core::TaskSet> sets;
  while (sets.size() < 25) {
    const auto ts = workload::generate_taskset({}, rng.uniform(0.2, 0.5), rng);
    if (ts && analysis::schedulable(*ts, analysis::DemandModel::kRPatternMandatory)) {
      sets.push_back(*ts);
    }
  }

  report::Table table({"fault at", "processor", "ST", "DP/ST", "selective/ST",
                       "sel(degraded=mand-only)/ST", "audit failures"});
  for (const double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (const sim::ProcessorId proc : {sim::kPrimary, sim::kSpare}) {
      struct SetResult {
        double st{0}, dp{0}, sel{0}, selm{0};
        std::uint64_t failures{0};
      };
      std::vector<SetResult> slots(sets.size());
      core::parallel_for(threads, sets.size(), [&](std::size_t i) {
        const auto& ts = sets[i];
        SetResult& out = slots[i];
        sim::SimConfig cfg;
        cfg.horizon = harness::choose_horizon(ts, core::from_ms(std::int64_t{2000}));
        FixedPermanent plan(proc,
                            static_cast<core::Ticks>(frac * static_cast<double>(cfg.horizon)));

        const auto run_with = [&](sim::Scheme& scheme) {
          const auto run = harness::run_one(
              {.ts = ts, .scheme = &scheme, .faults = &plan, .sim = cfg});
          if (!run.qos.mk_satisfied) ++out.failures;
          return run.energy.total();
        };
        sched::MkssSt st_scheme;
        sched::MkssDp dp_scheme;
        sched::MkssSelective sel_scheme;
        sched::SelectiveOptions degraded_opts;
        degraded_opts.degraded_mandatory_only = true;
        sched::MkssSelective selm_scheme(degraded_opts);

        out.st = run_with(st_scheme);
        out.dp = run_with(dp_scheme) / out.st;
        out.sel = run_with(sel_scheme) / out.st;
        out.selm = run_with(selm_scheme) / out.st;
      });
      metrics::RunningStat st_abs, dp_norm, sel_norm, selm_norm;
      std::uint64_t failures = 0;
      for (const SetResult& r : slots) {
        st_abs.add(r.st);
        dp_norm.add(r.dp);
        sel_norm.add(r.sel);
        selm_norm.add(r.selm);
        failures += r.failures;
      }
      table.add_row({report::fmt(frac * 100, 0) + "% of horizon",
                     proc == sim::kPrimary ? "primary" : "spare",
                     report::fmt(st_abs.mean(), 1), report::fmt(dp_norm.mean(), 3),
                     report::fmt(sel_norm.mean(), 3),
                     report::fmt(selm_norm.mean(), 3), std::to_string(failures)});
    }
  }
  std::printf("=== Ablation: permanent-fault instant sweep ===\n\n%s\n",
              table.to_string().c_str());
  std::printf(
      "finding: the gains grow the LATER the fault strikes (more time spent\n"
      "in normal dual-processor operation, where dynamic patterns pay off).\n"
      "For very early faults plain MKSS_selective can even exceed ST: on a\n"
      "lone survivor, executing every FD==1 optional job costs more than\n"
      "ST's bare R-pattern mandatory stream. Our degraded_mandatory_only\n"
      "extension (last column) falls back to mandatory-only operation after\n"
      "the fault and restores the ordering at every fault instant. Results\n"
      "are symmetric in which processor dies.\n");
  return 0;
}
