// Ablation: how much does backup procrastination buy, and which delay wins?
//
// Two views:
//
//   1. On the *static* dual-priority scheme (which runs a backup for every
//      R-pattern mandatory job), the ladder none -> Y -> theta directly
//      moves energy; the theta-vs-Y margin is the isolated contribution of
//      the paper's Definitions 2-5 on top of Haque/Begam's promotion.
//   2. On MKSS_selective the ladder barely matters in fault-free runs --
//      successful optional executions keep demoting jobs, so backups rarely
//      exist. We show that too (it is the honest reading of where the
//      selective scheme's savings actually come from).
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  using namespace mkss;

  const auto dp_with = [](sched::BackupDelayPolicy delay) {
    return [delay]() -> std::unique_ptr<sim::Scheme> {
      sched::DpOptions opts;
      opts.delay = delay;
      return std::make_unique<sched::MkssDp>(opts);
    };
  };
  const auto selective_with = [](sched::BackupDelayPolicy delay) {
    return [delay]() -> std::unique_ptr<sim::Scheme> {
      sched::SelectiveOptions opts;
      opts.delay = delay;
      return std::make_unique<sched::MkssSelective>(opts);
    };
  };

  {
    auto cfg = benchrun::bench_config(fault::Scenario::kNoFault, argc, argv);
    const std::vector<harness::SchemeVariant> variants = {
        {"MKSS_ST", [] { return sched::make_scheme(sched::SchemeKind::kSt); }},
        {"DP(delay=none)", dp_with(sched::BackupDelayPolicy::kNone)},
        {"DP(delay=Y)", dp_with(sched::BackupDelayPolicy::kPromotion)},
        {"DP(delay=theta)", dp_with(sched::BackupDelayPolicy::kPostponed)},
    };
    const auto result = harness::run_variant_sweep(cfg, variants);
    benchrun::print_sweep(
        "=== Ablation 1: procrastination ladder on the static DP scheme ===",
        result);
    std::printf("expectation: energy(theta) <= energy(Y) <= energy(none); the\n"
                "theta margin is Definitions 2-5 in isolation (Figure 5's\n"
                "theta_2 = 4 vs Y_2 = 1, at sweep scale).\n\n");
  }

  {
    auto cfg = benchrun::bench_config(fault::Scenario::kNoFault, argc, argv);
    const std::vector<harness::SchemeVariant> variants = {
        {"MKSS_ST", [] { return sched::make_scheme(sched::SchemeKind::kSt); }},
        {"sel(delay=none)", selective_with(sched::BackupDelayPolicy::kNone)},
        {"sel(delay=theta)", selective_with(sched::BackupDelayPolicy::kPostponed)},
    };
    const auto result = harness::run_variant_sweep(cfg, variants);
    benchrun::print_sweep(
        "=== Ablation 2: the same ladder on MKSS_selective (fault-free) ===",
        result);
    std::printf("expectation: nearly flat -- with dynamic patterns and no\n"
                "faults, optional successes demote almost every mandatory job,\n"
                "so there are few backups to procrastinate; the selective\n"
                "scheme's savings come from dropping duplication, not from\n"
                "delaying it. The ladder matters when mandatory jobs exist:\n"
                "see Ablation 1 and the fault scenarios.\n");
  }
  return 0;
}
