// Ablation: workload shaping.
//
// The paper's generator draws WCETs uniformly and reaches a bin through the
// (m,k) ratios (kUniformWcet). An alternative shaping -- deriving C from a
// UUniFast utilization share (kShapedWcet) -- produces featherweight tasks
// in low bins, where dual-priority procrastination alone already cancels
// almost every backup. This bench shows how strongly the headline
// selective-vs-DP comparison depends on that choice, i.e. where each scheme's
// advantage actually comes from.
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  using namespace mkss;
  for (const auto model :
       {workload::WcetModel::kUniformWcet, workload::WcetModel::kShapedWcet}) {
    auto cfg = benchrun::bench_config(fault::Scenario::kNoFault, argc, argv);
    cfg.gen.wcet_model = model;
    const auto result = harness::run_sweep(cfg);
    benchrun::print_sweep(model == workload::WcetModel::kUniformWcet
                              ? "=== Workload: uniform WCET (paper's model) ==="
                              : "=== Workload: UUniFast-shaped WCET (ablation) ===",
                          result);
  }
  std::printf("expectation: with uniform WCETs selective wins everywhere (the\n"
              "paper's Figure 6); with shaped WCETs the low-utilization bins\n"
              "contain tiny jobs whose backups never start under DP, so DP\n"
              "narrows or flips the gap there -- the advantage of dynamic\n"
              "patterns is tied to substantial per-job demand.\n");
  return 0;
}
