// Figure 6(a): normalized energy vs. total (m,k)-utilization, no faults.
//
// Paper: "MKSS_selective can achieve much better energy efficiency than ...
// MKSS_ST and MKSS_DP in all utilization intervals. The maximal energy
// reduction by MKSS_selective over MKSS_DP can be around 28%."
//
// We additionally plot the greedy strawman of Section III as a fourth
// series, which makes the motivation visible in the same axes.
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  using namespace mkss;
  auto cfg = benchrun::bench_config(fault::Scenario::kNoFault, argc, argv);
  cfg.schemes = {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                 sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective};
  const auto result = harness::run_sweep(cfg);
  benchrun::print_sweep("=== Figure 6(a): energy comparison, no fault ===", result);
  std::printf("paper reference: selective < DP < ST everywhere, max gain of "
              "selective over DP around 28%%\n");
  return 0;
}
