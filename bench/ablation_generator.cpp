// Ablation: sensitivity to the workload-generator parameters.
//
// The paper fixes n in [5,10], P in [5,50] ms, k in [2,20]. This bench
// varies each axis and reports the headline comparison (one representative
// utilization bin per configuration), to show the conclusion is not an
// artifact of those constants.
#include "fig6_common.hpp"

namespace {

struct Config {
  const char* label;
  mkss::workload::GenParams gen;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mkss;
  const std::size_t threads = benchrun::bench_threads(argc, argv);

  std::vector<Config> configs;
  {
    Config base{"paper (n 5-10, P 5-50, k 2-20)", {}};
    configs.push_back(base);

    Config few{"few tasks (n 2-4)", {}};
    few.gen.min_tasks = 2;
    few.gen.max_tasks = 4;
    configs.push_back(few);

    Config many{"many tasks (n 11-16)", {}};
    many.gen.min_tasks = 11;
    many.gen.max_tasks = 16;
    configs.push_back(many);

    Config short_p{"short periods (P 1-10)", {}};
    short_p.gen.min_period_ms = 1;
    short_p.gen.max_period_ms = 10;
    configs.push_back(short_p);

    Config long_p{"long periods (P 50-500)", {}};
    long_p.gen.min_period_ms = 50;
    long_p.gen.max_period_ms = 500;
    configs.push_back(long_p);

    Config small_k{"small windows (k 2-4)", {}};
    small_k.gen.max_k = 4;
    configs.push_back(small_k);

    Config big_k{"large windows (k 10-20)", {}};
    big_k.gen.min_k = 10;
    configs.push_back(big_k);

    Config constrained{"constrained deadlines (D = 0.8 P)", {}};
    constrained.gen.deadline_factor = 0.8;
    configs.push_back(constrained);
  }

  report::Table table({"generator", "sets", "DP/ST", "selective/ST",
                       "sel vs DP gain", "audit failures"});
  for (const Config& config : configs) {
    const auto batch =
        workload::generate_bin(config.gen, 0.25, 0.35, 15, 6000, 5551212, 0);

    struct SetResult {
      double dp{0}, sel{0};
      std::uint64_t failures{0};
    };
    std::vector<SetResult> slots(batch.sets.size());
    core::parallel_for(threads, batch.sets.size(), [&](std::size_t i) {
      const auto& ts = batch.sets[i];
      SetResult& out = slots[i];
      sim::SimConfig cfg;
      cfg.horizon = harness::choose_horizon(ts, core::from_ms(std::int64_t{2000}));
      double st = 0;
      for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                              sched::SchemeKind::kSelective}) {
        const auto run = harness::run_one({.ts = ts, .kind = kind, .sim = cfg});
        if (!run.qos.theorem1_holds()) ++out.failures;
        const double e = run.energy.total();
        if (kind == sched::SchemeKind::kSt) st = e;
        if (kind == sched::SchemeKind::kDp) out.dp = e / st;
        if (kind == sched::SchemeKind::kSelective) out.sel = e / st;
      }
    });
    metrics::RunningStat dp_norm, sel_norm;
    std::uint64_t failures = 0;
    for (const SetResult& r : slots) {
      dp_norm.add(r.dp);
      sel_norm.add(r.sel);
      failures += r.failures;
    }
    table.add_row({config.label, std::to_string(batch.sets.size()),
                   batch.sets.empty() ? "-" : report::fmt(dp_norm.mean(), 3),
                   batch.sets.empty() ? "-" : report::fmt(sel_norm.mean(), 3),
                   batch.sets.empty()
                       ? "-"
                       : report::fmt_percent(metrics::relative_gain(
                             sel_norm.mean(), dp_norm.mean())),
                   std::to_string(failures)});
  }
  std::printf("=== Ablation: workload-generator sensitivity (bin [0.25,0.35)) ===\n\n%s\n",
              table.to_string().c_str());
  std::printf(
      "reading: the selective-over-DP gain survives most axes and widens\n"
      "with long periods and large (m,k) windows. Two honest caveats the\n"
      "paper's fixed parameters hide: (a) with very small windows (k <= 4,\n"
      "where k - m = 1 dominates) the FD==1 rule executes nearly every job\n"
      "and DP's procrastinated duplication is actually cheaper -- selective\n"
      "is a *soft* scheme and needs slack in the contract to monetize; (b)\n"
      "with 11+ tasks the m >= 1 floor pushes every set's (m,k)-utilization\n"
      "above this bin, so the row is empty by construction.\n");
  return 0;
}
