// Micro-benchmarks (google-benchmark): simulator throughput per scheme,
// offline analyses, and the (m,k) primitives. These guard the harness's
// ability to run the paper-scale sweeps in seconds.
#include <benchmark/benchmark.h>

#include "mkss.hpp"

namespace {

using namespace mkss;

core::TaskSet bench_taskset() {
  core::Rng rng(7777);
  while (true) {
    const auto ts = workload::generate_taskset({}, 0.4, rng);
    if (ts && analysis::schedulable(*ts, analysis::DemandModel::kRPatternMandatory)) {
      return *ts;
    }
  }
}

void BM_SimulateScheme(benchmark::State& state) {
  const auto ts = bench_taskset();
  const auto kind = static_cast<sched::SchemeKind>(state.range(0));
  sim::NoFaultPlan nofault;
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{1000});
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    const auto scheme = sched::make_scheme(kind);
    const auto trace = sim::simulate(ts, *scheme, nofault, cfg);
    jobs += trace.stats.jobs_released;
    benchmark::DoNotOptimize(trace.busy_time[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.SetLabel(sched::to_string(kind));
}
BENCHMARK(BM_SimulateScheme)
    ->Arg(static_cast<int>(sched::SchemeKind::kSt))
    ->Arg(static_cast<int>(sched::SchemeKind::kDp))
    ->Arg(static_cast<int>(sched::SchemeKind::kGreedy))
    ->Arg(static_cast<int>(sched::SchemeKind::kSelective));

void BM_PostponementAnalysis(benchmark::State& state) {
  const auto ts = bench_taskset();
  for (auto _ : state) {
    const auto result = analysis::compute_postponement(ts);
    benchmark::DoNotOptimize(result.per_task.data());
  }
}
BENCHMARK(BM_PostponementAnalysis);

void BM_ResponseTimeAnalysis(benchmark::State& state) {
  const auto ts = bench_taskset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::schedulable(ts, analysis::DemandModel::kRPatternMandatory));
  }
}
BENCHMARK(BM_ResponseTimeAnalysis);

void BM_FlexibilityDegree(benchmark::State& state) {
  core::MkHistory h(3, static_cast<std::uint32_t>(state.range(0)));
  core::Rng rng(5);
  for (auto _ : state) {
    h.record(rng.chance(0.8) ? core::JobOutcome::kMet : core::JobOutcome::kMissed);
    benchmark::DoNotOptimize(h.flexibility_degree());
  }
}
BENCHMARK(BM_FlexibilityDegree)->Arg(4)->Arg(10)->Arg(20);

void BM_TaskSetGeneration(benchmark::State& state) {
  core::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::generate_taskset({}, 0.4, rng));
  }
}
BENCHMARK(BM_TaskSetGeneration);

void BM_EnergyAccounting(benchmark::State& state) {
  const auto ts = bench_taskset();
  const auto scheme = sched::make_scheme(sched::SchemeKind::kSelective);
  sim::NoFaultPlan nofault;
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{1000});
  const auto trace = sim::simulate(ts, *scheme, nofault, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(energy::account_energy(trace).total());
  }
}
BENCHMARK(BM_EnergyAccounting);

}  // namespace

BENCHMARK_MAIN();
