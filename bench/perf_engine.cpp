// perf_engine: raw event-loop throughput of the indexed simulator core.
//
// Runs every scheme over a deterministic pool of schedulable task sets on
// the lean production path (StatsSink, no trace materialization, scan
// oracle off) and reports events/second plus the per-event-class counters
// the engine now keeps in SimStats (releases, completions, deadline fires,
// eligibility wake-ups, lazily discarded ready entries). The counters are
// asserted identical across repetitions -- the timing reps double as a
// determinism check -- and the whole matrix is timed best-of-N so scheduler
// noise on a loaded box does not masquerade as a regression.
//
// Emits bench/BENCH_engine.json (next to the committed baseline, like the
// other perf benches -- run from the repository root); CI compares
// events_per_sec against bench/BENCH_engine.baseline.json with the same
// >30%-drop rule as perf_sweep.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "mkss.hpp"

namespace {

using namespace mkss;

/// Deterministic pool: `per_bin` schedulable sets at each utilization bin.
/// Generation is seeded per bin, so the pool is stable across reps and
/// machines.
std::vector<core::TaskSet> build_pool(std::size_t per_bin) {
  const double bins[] = {0.2, 0.4, 0.6, 0.8};
  std::vector<core::TaskSet> pool;
  std::size_t bin_index = 0;
  for (const double u : bins) {
    core::Rng rng(0xE193C0DEULL + bin_index++);
    std::size_t made = 0;
    while (made < per_bin) {
      const auto ts = workload::generate_taskset({}, u, rng);
      if (ts && analysis::schedulable(*ts, analysis::DemandModel::kRPatternMandatory)) {
        pool.push_back(*ts);
        ++made;
      }
    }
  }
  return pool;
}

struct Counters {
  std::uint64_t events{0};
  std::uint64_t releases{0};
  std::uint64_t completions{0};
  std::uint64_t deadline_fires{0};
  std::uint64_t eligibility_wakeups{0};
  std::uint64_t dispatch_pops{0};
  std::uint64_t preemptions{0};

  void add(const sim::SimStats& s) {
    events += s.sim_events;
    releases += s.jobs_released;
    completions += s.completions;
    deadline_fires += s.deadline_fires;
    eligibility_wakeups += s.eligibility_wakeups;
    dispatch_pops += s.dispatch_pops;
    preemptions += s.preemptions;
  }
  bool operator==(const Counters&) const = default;
};

}  // namespace

int main(int argc, char** argv) {
  using clock = std::chrono::steady_clock;

  std::size_t per_bin = 8;
  std::size_t reps = 5;
  const char* out_path = "bench/BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--sets" && has_value) {
      per_bin = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--reps" && has_value) {
      reps = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--sets per_bin] [--reps n] [--out file]\n",
                   argv[0]);
      return 2;
    }
  }
  if (const char* env = std::getenv("MKSS_PERF_REPS")) {
    reps = static_cast<std::size_t>(std::atoll(env));
  }
  if (reps < 1) reps = 1;

  const auto pool = build_pool(per_bin);
  const sched::SchemeKind kinds[] = {
      sched::SchemeKind::kSt, sched::SchemeKind::kDp,
      sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective};

  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{1000});
  cfg.cross_check = false;  // the production lean path, any build type

  sim::Simulator simulator;  // pooled arenas: the sweep's steady-state path
  sim::StatsSink sink;
  sim::NoFaultPlan nofault;

  Counters first;
  double best = 0.0;
  std::vector<double> rep_seconds;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Counters c;
    const auto start = clock::now();
    for (const core::TaskSet& ts : pool) {
      for (const sched::SchemeKind kind : kinds) {
        const auto scheme = sched::make_scheme(kind);
        simulator.run(ts, *scheme, nofault, cfg, sink);
        c.add(sink.stats());
      }
    }
    const double secs =
        std::chrono::duration<double>(clock::now() - start).count();
    rep_seconds.push_back(secs);
    if (rep == 0) {
      first = c;
    } else if (!(c == first)) {
      std::fprintf(stderr, "FAIL: counters diverged between reps\n");
      return 1;
    }
    if (best == 0.0 || secs < best) best = secs;
  }

  const double events_per_sec =
      best > 0 ? static_cast<double>(first.events) / best : 0.0;
  const std::size_t runs = pool.size() * std::size(kinds);

  std::printf("=== perf_engine: indexed event core throughput (lean path) ===\n");
  std::printf("%zu sets x %zu schemes = %zu runs, best of %zu reps\n",
              pool.size(), std::size(kinds), runs, reps);
  std::printf("events             %llu\n", (unsigned long long)first.events);
  std::printf("  releases         %llu\n", (unsigned long long)first.releases);
  std::printf("  completions      %llu\n", (unsigned long long)first.completions);
  std::printf("  deadline fires   %llu\n", (unsigned long long)first.deadline_fires);
  std::printf("  elig. wake-ups   %llu\n", (unsigned long long)first.eligibility_wakeups);
  std::printf("  dispatch pops    %llu\n", (unsigned long long)first.dispatch_pops);
  std::printf("  preemptions      %llu\n", (unsigned long long)first.preemptions);
  std::printf("best %.4fs  ->  %.0f events/sec\n", best, events_per_sec);

  io::JsonWriter w;
  w.begin_object(io::JsonWriter::Scope::kBlock);
  w.key("bench");
  w.string("engine_events");
  w.key("sets");
  w.u64(pool.size());
  w.key("schemes");
  w.u64(std::size(kinds));
  w.key("runs");
  w.u64(runs);
  w.key("reps");
  w.u64(reps);
  w.key("horizon_ms");
  w.u64(1000);
  w.key("events");
  w.u64(first.events);
  w.key("releases");
  w.u64(first.releases);
  w.key("completions");
  w.u64(first.completions);
  w.key("deadline_fires");
  w.u64(first.deadline_fires);
  w.key("eligibility_wakeups");
  w.u64(first.eligibility_wakeups);
  w.key("dispatch_pops");
  w.u64(first.dispatch_pops);
  w.key("preemptions");
  w.u64(first.preemptions);
  w.key("rep_seconds");
  w.begin_array();
  for (const double secs : rep_seconds) w.fixed(secs, 4);
  w.end_array();
  w.key("best_seconds");
  w.fixed(best, 4);
  w.key("events_per_sec");
  w.fixed(events_per_sec, 0);
  w.end_object();
  const std::string json = w.take() + "\n";

  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  return 0;
}
