// perf_engine: raw event-loop throughput of the indexed simulator core.
//
// Runs every scheme over a deterministic pool of schedulable task sets on
// the lean production path (StatsSink, shared release timeline, scan oracle
// off) and reports events/second plus the per-event-class counters the
// engine keeps in SimStats (releases, completions, deadline fires,
// eligibility wake-ups, lazily discarded ready entries). Three legs bound
// the hot path from both sides:
//
//   * stats_cached  -- StatsSink + attached release timeline: the sweep's
//                      steady-state configuration and the headline
//                      events_per_sec number CI gates on.
//   * stats_heap    -- same sink, TimelineMode::kHeap forced: the retained
//                      calendar-heap path, so the timeline's win is visible
//                      as a ratio in one artifact.
//   * full_cached   -- FullTraceSink + timeline: what trace materialization
//                      costs relative to the lean sink.
//
// Every leg must produce identical event counters (the engine's event set
// is sink- and timeline-independent by construction), and counters are
// asserted identical across repetitions -- the timing reps double as a
// determinism check. The whole matrix is timed best-of-N so scheduler noise
// on a loaded box does not masquerade as a regression. A per-scheme
// breakdown of the primary leg shows where the event budget goes.
//
// Emits bench/BENCH_engine.json (next to the committed baseline, like the
// other perf benches -- run from the repository root); CI compares
// events_per_sec against bench/BENCH_engine.baseline.json with the same
// >30%-drop rule as perf_sweep.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "mkss.hpp"

namespace {

using namespace mkss;

/// Deterministic pool: `per_bin` schedulable sets at each utilization bin.
/// Generation is seeded per bin, so the pool is stable across reps and
/// machines.
std::vector<core::TaskSet> build_pool(std::size_t per_bin) {
  const double bins[] = {0.2, 0.4, 0.6, 0.8};
  std::vector<core::TaskSet> pool;
  std::size_t bin_index = 0;
  for (const double u : bins) {
    core::Rng rng(0xE193C0DEULL + bin_index++);
    std::size_t made = 0;
    while (made < per_bin) {
      const auto ts = workload::generate_taskset({}, u, rng);
      if (ts && analysis::schedulable(*ts, analysis::DemandModel::kRPatternMandatory)) {
        pool.push_back(*ts);
        ++made;
      }
    }
  }
  return pool;
}

struct Counters {
  std::uint64_t events{0};
  std::uint64_t releases{0};
  std::uint64_t completions{0};
  std::uint64_t deadline_fires{0};
  std::uint64_t eligibility_wakeups{0};
  std::uint64_t dispatch_pops{0};
  std::uint64_t preemptions{0};

  void add(const sim::SimStats& s) {
    events += s.sim_events;
    releases += s.jobs_released;
    completions += s.completions;
    deadline_fires += s.deadline_fires;
    eligibility_wakeups += s.eligibility_wakeups;
    dispatch_pops += s.dispatch_pops;
    preemptions += s.preemptions;
  }
  bool operator==(const Counters&) const = default;
};

struct LegResult {
  Counters counters;
  double best_seconds{0};
  std::vector<double> rep_seconds;
  bool diverged{false};
};

constexpr sched::SchemeKind kKinds[] = {
    sched::SchemeKind::kSt, sched::SchemeKind::kDp,
    sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective};

const sim::SimStats& last_run_stats(const sim::StatsSink& s) {
  return s.stats();
}
const sim::SimStats& last_run_stats(const sim::FullTraceSink& s) {
  return s.trace().stats;
}

/// Times `reps` passes of (pool x kinds) through one engine + one sink,
/// best-of-N, asserting counter determinism across reps. `timelines` holds
/// one prebuilt arena per pool entry, or is empty for heap-mode legs.
template <typename SinkT>
LegResult run_leg(const std::vector<core::TaskSet>& pool,
                  const std::vector<core::ReleaseTimeline>& timelines,
                  SinkT& sink, const sim::SimConfig& base,
                  std::size_t reps) {
  using clock = std::chrono::steady_clock;
  sim::Simulator simulator;  // pooled arenas: the sweep's steady-state path
  sim::NoFaultPlan nofault;

  LegResult leg;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Counters c;
    const auto start = clock::now();
    for (std::size_t s = 0; s < pool.size(); ++s) {
      sim::SimConfig cfg = base;
      if (!timelines.empty()) cfg.timeline_data = &timelines[s];
      for (const sched::SchemeKind kind : kKinds) {
        const auto scheme = sched::make_scheme(kind);
        simulator.run(pool[s], *scheme, nofault, cfg, sink);
        c.add(last_run_stats(sink));
      }
    }
    const double secs =
        std::chrono::duration<double>(clock::now() - start).count();
    leg.rep_seconds.push_back(secs);
    if (rep == 0) {
      leg.counters = c;
    } else if (!(c == leg.counters)) {
      leg.diverged = true;
    }
    if (leg.best_seconds == 0.0 || secs < leg.best_seconds) {
      leg.best_seconds = secs;
    }
  }
  return leg;
}

double events_per_sec(const LegResult& leg) {
  return leg.best_seconds > 0
             ? static_cast<double>(leg.counters.events) / leg.best_seconds
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using clock = std::chrono::steady_clock;

  std::size_t per_bin = 8;
  std::size_t reps = 5;
  const char* out_path = "bench/BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--sets" && has_value) {
      per_bin = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--reps" && has_value) {
      reps = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--sets per_bin] [--reps n] [--out file]\n",
                   argv[0]);
      return 2;
    }
  }
  if (const char* env = std::getenv("MKSS_PERF_REPS")) {
    reps = static_cast<std::size_t>(std::atoll(env));
  }
  if (reps < 1) reps = 1;

  const auto pool = build_pool(per_bin);

  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{1000});
  cfg.cross_check = false;  // the production lean path, any build type
  cfg.timeline = sim::TimelineMode::kAuto;

  // One arena per set, built outside every timed region: the sweep amortizes
  // the build over its scheme variants through analysis::AnalysisCache, so
  // the bench charges the event loop with consumption only.
  std::vector<core::ReleaseTimeline> timelines(pool.size());
  for (std::size_t s = 0; s < pool.size(); ++s) {
    core::build_release_timeline(pool[s], cfg.horizon, timelines[s]);
  }
  const std::vector<core::ReleaseTimeline> no_timelines;

  sim::StatsSink stats_sink;
  sim::FullTraceSink full_sink;
  sim::SimConfig heap_cfg = cfg;
  heap_cfg.timeline = sim::TimelineMode::kHeap;

  // Primary leg first (headline number), then the two contrast legs.
  const LegResult primary = run_leg(pool, timelines, stats_sink, cfg, reps);
  const LegResult heap_leg =
      run_leg(pool, no_timelines, stats_sink, heap_cfg, reps);
  const LegResult full_leg = run_leg(pool, timelines, full_sink, cfg, reps);

  for (const auto* leg : {&primary, &heap_leg, &full_leg}) {
    if (leg->diverged) {
      std::fprintf(stderr, "FAIL: counters diverged between reps\n");
      return 1;
    }
  }
  // The event set is sink- and timeline-independent: all three legs must
  // count exactly the same work.
  if (!(heap_leg.counters == primary.counters) ||
      !(full_leg.counters == primary.counters)) {
    std::fprintf(stderr,
                 "FAIL: event counters diverged between legs (timeline or "
                 "sink changed the event set)\n");
    return 1;
  }

  // Per-scheme breakdown of the primary configuration: each scheme timed
  // alone over the pool, best-of-N.
  struct SchemeLeg {
    std::string name;
    std::uint64_t events{0};
    double best_seconds{0};
  };
  std::vector<SchemeLeg> per_scheme;
  {
    sim::Simulator simulator;
    sim::NoFaultPlan nofault;
    for (const sched::SchemeKind kind : kKinds) {
      SchemeLeg sl;
      sl.name = sched::make_scheme(kind)->name();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        std::uint64_t events = 0;
        const auto start = clock::now();
        for (std::size_t s = 0; s < pool.size(); ++s) {
          sim::SimConfig scfg = cfg;
          scfg.timeline_data = &timelines[s];
          const auto scheme = sched::make_scheme(kind);
          simulator.run(pool[s], *scheme, nofault, scfg, stats_sink);
          events += stats_sink.stats().sim_events;
        }
        const double secs =
            std::chrono::duration<double>(clock::now() - start).count();
        sl.events = events;
        if (sl.best_seconds == 0.0 || secs < sl.best_seconds) {
          sl.best_seconds = secs;
        }
      }
      per_scheme.push_back(sl);
    }
  }

  const Counters& first = primary.counters;
  const double primary_eps = events_per_sec(primary);
  const std::size_t runs = pool.size() * std::size(kKinds);

  std::printf("=== perf_engine: indexed event core throughput (lean path) ===\n");
  std::printf("%zu sets x %zu schemes = %zu runs, best of %zu reps\n",
              pool.size(), std::size(kKinds), runs, reps);
  std::printf("events             %llu\n", (unsigned long long)first.events);
  std::printf("  releases         %llu\n", (unsigned long long)first.releases);
  std::printf("  completions      %llu\n", (unsigned long long)first.completions);
  std::printf("  deadline fires   %llu\n", (unsigned long long)first.deadline_fires);
  std::printf("  elig. wake-ups   %llu\n", (unsigned long long)first.eligibility_wakeups);
  std::printf("  dispatch pops    %llu\n", (unsigned long long)first.dispatch_pops);
  std::printf("  preemptions      %llu\n", (unsigned long long)first.preemptions);
  std::printf("stats+timeline   best %.4fs  ->  %.0f events/sec\n",
              primary.best_seconds, primary_eps);
  std::printf("stats+heap       best %.4fs  ->  %.0f events/sec  (x%.2f)\n",
              heap_leg.best_seconds, events_per_sec(heap_leg),
              heap_leg.best_seconds > 0
                  ? heap_leg.best_seconds / primary.best_seconds
                  : 0.0);
  std::printf("fulltrace+timeline best %.4fs ->  %.0f events/sec  (x%.2f)\n",
              full_leg.best_seconds, events_per_sec(full_leg),
              full_leg.best_seconds > 0
                  ? full_leg.best_seconds / primary.best_seconds
                  : 0.0);
  for (const SchemeLeg& sl : per_scheme) {
    std::printf("  scheme %-10s %8llu events  %.4fs  %.0f events/sec\n",
                sl.name.c_str(), (unsigned long long)sl.events,
                sl.best_seconds,
                sl.best_seconds > 0
                    ? static_cast<double>(sl.events) / sl.best_seconds
                    : 0.0);
  }

  io::JsonWriter w;
  w.begin_object(io::JsonWriter::Scope::kBlock);
  w.key("bench");
  w.string("engine_events");
  w.key("sets");
  w.u64(pool.size());
  w.key("schemes");
  w.u64(std::size(kKinds));
  w.key("runs");
  w.u64(runs);
  w.key("reps");
  w.u64(reps);
  w.key("horizon_ms");
  w.u64(1000);
  w.key("events");
  w.u64(first.events);
  w.key("releases");
  w.u64(first.releases);
  w.key("completions");
  w.u64(first.completions);
  w.key("deadline_fires");
  w.u64(first.deadline_fires);
  w.key("eligibility_wakeups");
  w.u64(first.eligibility_wakeups);
  w.key("dispatch_pops");
  w.u64(first.dispatch_pops);
  w.key("preemptions");
  w.u64(first.preemptions);
  w.key("rep_seconds");
  w.begin_array();
  for (const double secs : primary.rep_seconds) w.fixed(secs, 4);
  w.end_array();
  w.key("best_seconds");
  w.fixed(primary.best_seconds, 4);
  w.key("events_per_sec");
  w.fixed(primary_eps, 0);
  w.key("legs");
  w.begin_object(io::JsonWriter::Scope::kBlock);
  const struct {
    const char* name;
    const LegResult* leg;
  } legs[] = {{"stats_cached", &primary},
              {"stats_heap", &heap_leg},
              {"full_cached", &full_leg}};
  for (const auto& l : legs) {
    w.key(l.name);
    w.begin_object(io::JsonWriter::Scope::kBlock);
    w.key("best_seconds");
    w.fixed(l.leg->best_seconds, 4);
    w.key("events_per_sec");
    w.fixed(events_per_sec(*l.leg), 0);
    w.end_object();
  }
  w.end_object();
  w.key("per_scheme");
  w.begin_object(io::JsonWriter::Scope::kBlock);
  for (const SchemeLeg& sl : per_scheme) {
    w.key(sl.name);
    w.begin_object(io::JsonWriter::Scope::kBlock);
    w.key("events");
    w.u64(sl.events);
    w.key("best_seconds");
    w.fixed(sl.best_seconds, 4);
    w.key("events_per_sec");
    w.fixed(sl.best_seconds > 0
                ? static_cast<double>(sl.events) / sl.best_seconds
                : 0.0,
            0);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  const std::string json = w.take() + "\n";

  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  return 0;
}
