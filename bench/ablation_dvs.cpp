// Ablation: standby-sparing + DVS (the design axis the paper deliberately
// leaves out).
//
// The prior work [7]/[8] slows the main copies down with DVS; the paper's
// Section II-A argues DVS is "seriously degraded with the dramatic increase
// in static power" and relies on DPD + cancellation instead. This bench
// quantifies that argument: the DVS variants of MKSS_DP and MKSS_selective
// are swept under a low-leakage power model (dynamic power dominates,
// P_static = 0.05) and a high-leakage one (P_static = 0.4), both with the
// cubic dynamic-power law P(f) = P_s + (1 - P_s) f^3.
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  using namespace mkss;

  const auto dp_dvs = []() -> std::unique_ptr<sim::Scheme> {
    sched::DpOptions opts;
    opts.dvs.enabled = true;
    return std::make_unique<sched::MkssDp>(opts);
  };
  const auto sel_dvs = []() -> std::unique_ptr<sim::Scheme> {
    sched::SelectiveOptions opts;
    opts.dvs.enabled = true;
    return std::make_unique<sched::MkssSelective>(opts);
  };

  for (const double p_static : {0.05, 0.4}) {
    auto cfg = benchrun::bench_config(fault::Scenario::kNoFault, argc, argv);
    cfg.power.p_static = p_static;
    cfg.power.alpha = 3.0;

    const std::vector<harness::SchemeVariant> variants = {
        {"MKSS_ST", [] { return sched::make_scheme(sched::SchemeKind::kSt); }},
        {"MKSS_DP", [] { return sched::make_scheme(sched::SchemeKind::kDp); }},
        {"DP+DVS", dp_dvs},
        {"selective", [] { return sched::make_scheme(sched::SchemeKind::kSelective); }},
        {"selective+DVS", sel_dvs},
    };
    const auto result = harness::run_variant_sweep(cfg, variants);
    char title[128];
    std::snprintf(title, sizeof title,
                  "=== DVS ablation, P_static = %.2f (alpha = 3) ===", p_static);
    benchrun::print_sweep(title, result);
  }
  std::printf("findings: with low leakage, DVS buys selective up to ~15%%\n"
              "extra (mains and singles run at f^3 dynamic power); with high\n"
              "leakage that margin collapses to a few percent because the\n"
              "slowdown mostly stretches the time spent paying the static\n"
              "floor -- the paper's stated reason for omitting DVS. DP+DVS\n"
              "barely moves under the uniform-WCET workloads: its safe\n"
              "slowdown needs the *full* job set schedulable at the reduced\n"
              "speed, which these heavyweight sets rarely allow.\n");
  return 0;
}
