// perf_gen: throughput of the task-set generator in isolation.
//
// perf_sweep times generation as one phase of the full harness; this bench
// pins the generator itself so a regression in the staged-admission ladder
// or the speculative parallel path is visible without simulator noise. It
// runs the Figure-6 bins serially (attempts/sec is the headline number,
// emitted to bench/BENCH_gen.json with the per-stage exit counts), then
// re-runs them against a thread pool and fails unless sets, attempt counts
// and stage counters are bit-identical to the serial pass.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/simd.hpp"
#include "core/thread_pool.hpp"
#include "io/json_writer.hpp"
#include "workload/taskset_gen.hpp"

int main() {
  using namespace mkss;
  using clock = std::chrono::steady_clock;

  // The perf_sweep workload: Figure-6 bins, scaled up so the serial pass is
  // long enough to time (the high bins are rejection-dominated and exhaust
  // the cap).
  const workload::GenParams params;
  const std::vector<double> bin_starts = {0.1, 0.2, 0.3, 0.4,
                                          0.5, 0.6, 0.7, 0.8};
  std::size_t want = 400;
  std::size_t cap = 80000;
  if (const char* env = std::getenv("MKSS_SETS_PER_BIN")) {
    want = static_cast<std::size_t>(std::atoll(env));
  }
  if (const char* env = std::getenv("MKSS_MAX_ATTEMPTS")) {
    cap = static_cast<std::size_t>(std::atoll(env));
  }
  const std::uint64_t seed = 20260806;

  const auto run_all = [&](core::ThreadPool* pool) {
    std::vector<workload::BinnedBatch> batches;
    batches.reserve(bin_starts.size());
    for (std::size_t b = 0; b < bin_starts.size(); ++b) {
      batches.push_back(workload::generate_bin(params, bin_starts[b],
                                               bin_starts[b] + 0.1, want, cap,
                                               seed, b, pool));
    }
    return batches;
  };

  const auto start = clock::now();
  const auto serial = run_all(nullptr);
  const double secs = std::chrono::duration<double>(clock::now() - start).count();

  std::uint64_t attempts = 0;
  std::size_t sets = 0;
  workload::GenCounters totals;
  workload::GenStageSeconds stage_secs;
  for (const auto& batch : serial) {
    attempts += batch.attempts;
    sets += batch.sets.size();
    totals += batch.counters;
    stage_secs += batch.stage_seconds;
  }
  const double attempts_per_sec =
      secs > 0 ? static_cast<double>(attempts) / secs : 0;
  const char* simd_path = core::simd::path_name(core::simd::active_path());

  std::printf("=== perf_gen: task-set generator throughput ===\n");
  std::printf("serial  %.3fs  %llu attempts  %zu sets  %.0f attempts/sec  "
              "(simd: %s)\n",
              secs, static_cast<unsigned long long>(attempts), sets,
              attempts_per_sec, simd_path);
  std::printf(
      "stage seconds: draw %.4f, prefilter %.4f, finalize %.4f, "
      "ladder %.4f, rta %.4f\n",
      stage_secs.draw, stage_secs.prefilter, stage_secs.finalize,
      stage_secs.ladder, stage_secs.rta);
  std::printf(
      "stages: draw-fail %llu, out-of-bin %llu, filter-reject %llu, "
      "rta-reject %llu, accepted %llu (quick %llu)\n",
      static_cast<unsigned long long>(totals.draw_failures),
      static_cast<unsigned long long>(totals.out_of_bin),
      static_cast<unsigned long long>(totals.filter_rejects),
      static_cast<unsigned long long>(totals.rta_rejects),
      static_cast<unsigned long long>(totals.accepted),
      static_cast<unsigned long long>(totals.quick_accepts));

  // Determinism contract: the speculative parallel path must reproduce the
  // serial batches exactly, for a small pool and for the hardware size.
  bool identical = true;
  for (const std::size_t n_threads : {std::size_t{2}, std::size_t{0}}) {
    core::ThreadPool pool(core::ThreadPool::resolve_num_threads(n_threads));
    const auto parallel = run_all(&pool);
    for (std::size_t b = 0; b < serial.size(); ++b) {
      if (parallel[b].attempts != serial[b].attempts ||
          !(parallel[b].counters == serial[b].counters) ||
          parallel[b].sets.size() != serial[b].sets.size()) {
        identical = false;
        continue;
      }
      for (std::size_t i = 0; i < serial[b].sets.size(); ++i) {
        if (parallel[b].sets[i].describe() != serial[b].sets[i].describe()) {
          identical = false;
        }
      }
    }
    std::printf("threads=%zu  %s\n", pool.size(),
                identical ? "bit-identical" : "MISMATCH vs serial");
  }

  io::JsonWriter w;
  w.begin_object(io::JsonWriter::Scope::kBlock);
  w.key("bench");
  w.string("taskset_gen");
  w.key("seconds");
  w.fixed(secs, 4);
  w.key("attempts");
  w.u64(attempts);
  w.key("sets");
  w.u64(sets);
  w.key("attempts_per_sec");
  w.fixed(attempts_per_sec, 1);
  w.key("stages");
  w.begin_object();
  w.key("draw_failures");
  w.u64(totals.draw_failures);
  w.key("out_of_bin");
  w.u64(totals.out_of_bin);
  w.key("filter_rejects");
  w.u64(totals.filter_rejects);
  w.key("rta_rejects");
  w.u64(totals.rta_rejects);
  w.key("accepted");
  w.u64(totals.accepted);
  w.key("quick_accepts");
  w.u64(totals.quick_accepts);
  w.end_object();
  w.key("simd_path");
  w.string(simd_path);
  w.key("stage_seconds");
  w.begin_object();
  w.key("draw");
  w.fixed(stage_secs.draw, 4);
  w.key("prefilter");
  w.fixed(stage_secs.prefilter, 4);
  w.key("finalize");
  w.fixed(stage_secs.finalize, 4);
  w.key("ladder");
  w.fixed(stage_secs.ladder, 4);
  w.key("rta");
  w.fixed(stage_secs.rta, 4);
  w.end_object();
  w.key("bit_identical");
  w.boolean(identical);
  w.end_object();
  const std::string json = w.take() + "\n";

  const char* out_path = "bench/BENCH_gen.json";
  std::error_code ec;
  std::filesystem::create_directories("bench", ec);
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: parallel generation diverged from serial\n");
    return 1;
  }
  return 0;
}
