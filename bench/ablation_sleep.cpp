// Ablation: dynamic power down.
//
//   * break-even time T_be sweep (the paper fixes T_be = 1 ms);
//   * the wake_for_optional knob: a literal reading of Algorithm 1's wake-up
//     timer lets a sleeping processor ignore optional-band arrivals until
//     the next mandatory activity.
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  using namespace mkss;

  std::printf("=== Ablation: break-even time T_be (MKSS_selective vs MKSS_ST) ===\n\n");
  report::Table tbe_table({"T_be", "ST energy", "DP/ST", "selective/ST"});
  for (const double tbe_ms : {0.25, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    auto cfg = benchrun::bench_config(fault::Scenario::kNoFault, argc, argv);
    cfg.bin_starts = {0.3};  // one representative bin
    cfg.power.break_even = core::from_ms(tbe_ms);
    const auto result = harness::run_sweep(cfg);
    const auto& bin = result.bins[0];
    if (bin.sets == 0) continue;
    tbe_table.add_row({report::fmt(tbe_ms, 2) + "ms",
                       report::fmt(bin.absolute[0].mean(), 1),
                       report::fmt(bin.normalized[1].mean(), 3),
                       report::fmt(bin.normalized[2].mean(), 3)});
  }
  std::printf("%s\n", tbe_table.to_string().c_str());

  std::printf("=== Ablation: wake_for_optional (behavioural DPD) ===\n\n");
  // Run the same task sets with the knob on and off; compare selective's
  // energy and QoS. The knob only matters when a processor actually sleeps
  // through an optional release, so differences are small but one-sided.
  core::Rng rng(424242);
  metrics::RunningStat energy_on, energy_off;
  std::uint64_t miss_on = 0, miss_off = 0;
  int sets = 0;
  while (sets < 30) {
    const auto ts = workload::generate_taskset({}, rng.uniform(0.15, 0.5), rng);
    if (!ts ||
        !analysis::schedulable(*ts, analysis::DemandModel::kRPatternMandatory)) {
      continue;
    }
    ++sets;
    sim::SimConfig cfg_on, cfg_off;
    cfg_on.horizon = cfg_off.horizon =
        harness::choose_horizon(*ts, core::from_ms(std::int64_t{2000}));
    cfg_off.wake_for_optional = false;
    const auto on = harness::run_one(
        {.ts = *ts, .kind = sched::SchemeKind::kSelective, .sim = cfg_on});
    const auto off = harness::run_one(
        {.ts = *ts, .kind = sched::SchemeKind::kSelective, .sim = cfg_off});
    energy_on.add(on.energy.total());
    energy_off.add(off.energy.total());
    miss_on += on.trace.stats.jobs_missed;
    miss_off += off.trace.stats.jobs_missed;
  }
  report::Table wake_table({"wake_for_optional", "mean energy", "total misses"});
  wake_table.add_row({"true (default)", report::fmt(energy_on.mean(), 1),
                      std::to_string(miss_on)});
  wake_table.add_row({"false (literal Alg.1)", report::fmt(energy_off.mean(), 1),
                      std::to_string(miss_off)});
  std::printf("%s\n", wake_table.to_string().c_str());
  std::printf("finding: larger T_be erodes DPD savings for everyone. The\n"
              "literal Algorithm-1 sleep (ignore optional arrivals until the\n"
              "next mandatory activity) is counterproductive: every selected\n"
              "optional job it sleeps through becomes a miss, which drives the\n"
              "task's flexibility to 0 and forces a *duplicated* mandatory job\n"
              "later -- more misses AND more energy. Waking for optional work\n"
              "(our default) dominates; (m,k) holds either way.\n");
  return 0;
}
