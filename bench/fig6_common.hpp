// Shared scaffolding for the Figure-6 reproduction benches and the ablation
// benches: a common sweep configuration (the paper's Section V parameters)
// and a printer that emits the paper-style table, the per-bin gains, and a
// CSV block for plotting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "mkss.hpp"

namespace mkss::benchrun {

/// Paper parameters; the environment variables MKSS_SETS_PER_BIN,
/// MKSS_MAX_ATTEMPTS and MKSS_THREADS can scale the experiment up or down.
/// Benches default to one worker per hardware thread (num_threads = 0);
/// results are bit-identical for every thread count.
inline harness::SweepConfig paper_sweep_config(fault::Scenario scenario) {
  harness::SweepConfig cfg;
  cfg.scenario = scenario;
  cfg.lambda_per_ms = 1e-6;  // the paper's average transient rate
  cfg.bin_starts = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  cfg.sets_per_bin = 20;    // "at least 20 task sets schedulable"
  cfg.max_attempts_per_bin = 5000;  // "or at least 5000 task sets generated"
  cfg.horizon_cap = core::from_ms(std::int64_t{2000});
  cfg.num_threads = 0;  // all hardware threads
  if (const char* env = std::getenv("MKSS_SETS_PER_BIN")) {
    cfg.sets_per_bin = static_cast<std::size_t>(std::atoll(env));
  }
  if (const char* env = std::getenv("MKSS_MAX_ATTEMPTS")) {
    cfg.max_attempts_per_bin = static_cast<std::size_t>(std::atoll(env));
  }
  if (const char* env = std::getenv("MKSS_THREADS")) {
    cfg.num_threads = static_cast<std::size_t>(std::atoll(env));
  }
  return cfg;
}

/// Shared CLI for every figure/ablation bench:
///   --threads n       worker threads (0 = all hardware threads)
///   --sets n          schedulable sets per bin
///   --max-attempts n  generation cap per bin
///   --corpus-dir d    cache generated task sets in d (save on first run,
///                     load on later runs with the same generation key; a
///                     key mismatch aborts loudly). fig6a/b/c share a corpus:
///                     the key covers generation inputs only, not the fault
///                     scenario.
/// Returns false (after printing usage) on an unknown argument.
inline bool apply_bench_cli(harness::SweepConfig& cfg, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--threads" && has_value) {
      cfg.num_threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--sets" && has_value) {
      cfg.sets_per_bin = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-attempts" && has_value) {
      cfg.max_attempts_per_bin = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--corpus-dir" && has_value) {
      cfg.corpus_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads n] [--sets n] [--max-attempts n] "
                   "[--corpus-dir d]\n",
                   argv[0]);
      return false;
    }
  }
  return true;
}

/// paper_sweep_config with the shared CLI applied; exits on bad usage.
inline harness::SweepConfig bench_config(fault::Scenario scenario, int argc,
                                         char** argv) {
  auto cfg = paper_sweep_config(scenario);
  if (!apply_bench_cli(cfg, argc, argv)) std::exit(2);
  return cfg;
}

/// Thread count for benches that drive run_one loops directly instead of
/// going through a SweepConfig: MKSS_THREADS env, overridden by --threads
/// (0 = all hardware threads).
inline std::size_t bench_threads(int argc, char** argv) {
  std::size_t threads = 0;
  if (const char* env = std::getenv("MKSS_THREADS")) {
    threads = static_cast<std::size_t>(std::atoll(env));
  }
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--threads n]\n", argv[0]);
      std::exit(2);
    }
  }
  return threads;
}

/// Prints the sweep as (1) the aligned normalized-energy table, (2) per-bin
/// relative gains of the last scheme over each other one, (3) a CSV block.
inline void print_sweep(const char* title, const harness::SweepResult& result) {
  std::printf("%s\n", title);
  std::printf("(energy normalized to %s on the same task sets; lower is better)\n\n",
              result.scheme_names.empty() ? "?" : result.scheme_names[0].c_str());
  std::printf("%s\n", result.to_table().to_string().c_str());

  const std::size_t last = result.scheme_names.size() - 1;
  for (std::size_t other = 0; other < last; ++other) {
    std::printf("max gain of %s over %s across bins: %s\n",
                result.scheme_names[last].c_str(),
                result.scheme_names[other].c_str(),
                report::fmt_percent(result.max_gain(last, other)).c_str());
  }
  std::printf("(m,k)/mandatory audit failures: %llu\n\n",
              static_cast<unsigned long long>(result.qos_failures));

  if (!result.errors.empty()) {
    std::fprintf(stderr,
                 "warning: %zu run(s) quarantined by the trace auditor "
                 "(excluded from the statistics):\n",
                 result.errors.size());
    for (const harness::SweepError& e : result.errors) {
      std::fprintf(stderr, "  bin %zu set %zu %s (stream seed %llu): %s\n",
                   e.bin, e.set, e.variant.c_str(),
                   static_cast<unsigned long long>(e.seed), e.message.c_str());
    }
  }

  std::printf(
      "csv:\nbin_lo,bin_hi,sets,attempts,draw_failures,out_of_bin,"
      "filter_rejects,rta_rejects,quick_accepts");
  for (const auto& name : result.scheme_names) std::printf(",%s", name.c_str());
  std::printf("\n");
  for (const auto& bin : result.bins) {
    const workload::GenCounters& gc = bin.gen_counters;
    std::printf("%.1f,%.1f,%zu,%llu,%llu,%llu,%llu,%llu,%llu", bin.bin_lo,
                bin.bin_hi, bin.sets,
                static_cast<unsigned long long>(bin.attempts),
                static_cast<unsigned long long>(gc.draw_failures),
                static_cast<unsigned long long>(gc.out_of_bin),
                static_cast<unsigned long long>(gc.filter_rejects),
                static_cast<unsigned long long>(gc.rta_rejects),
                static_cast<unsigned long long>(gc.quick_accepts));
    for (std::size_t s = 0; s < result.scheme_names.size(); ++s) {
      std::printf(",%s",
                  bin.sets ? report::fmt(bin.normalized[s].mean(), 4).c_str() : "");
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace mkss::benchrun
