// Ablation: preemption overhead.
//
// The paper's model charges preemption nothing (standard in this
// literature); this bench checks whether the headline comparison survives a
// realistic context-switch cost charged to every preempted copy.
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  using namespace mkss;
  const std::size_t threads = benchrun::bench_threads(argc, argv);

  report::Table table({"overhead", "bin", "sets", "DP/ST", "selective/ST",
                       "preemptions/run (sel)", "audit failures"});
  for (const double overhead_us : {0.0, 10.0, 50.0, 100.0, 250.0}) {
    const core::Ticks overhead = core::from_ms(overhead_us / 1000.0);
    std::uint64_t bin = 0;
    for (const double lo : {0.2, 0.4}) {
      workload::GenParams gen;
      const auto batch =
          workload::generate_bin(gen, lo, lo + 0.1, 15, 4000, 31337, bin++);

      struct SetResult {
        double dp{0}, sel{0}, preempts{0};
        std::uint64_t failures{0};
      };
      std::vector<SetResult> slots(batch.sets.size());
      core::parallel_for(threads, batch.sets.size(), [&](std::size_t i) {
        const auto& ts = batch.sets[i];
        SetResult& out = slots[i];
        sim::SimConfig cfg;
        cfg.horizon = harness::choose_horizon(ts, core::from_ms(std::int64_t{2000}));
        cfg.preemption_overhead = overhead;
        double st = 0;
        for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                                sched::SchemeKind::kSelective}) {
          const auto run = harness::run_one({.ts = ts, .kind = kind, .sim = cfg});
          if (!run.qos.mk_satisfied || run.qos.mandatory_misses > 0) ++out.failures;
          const double e = run.energy.total();
          if (kind == sched::SchemeKind::kSt) st = e;
          if (kind == sched::SchemeKind::kDp) out.dp = e / st;
          if (kind == sched::SchemeKind::kSelective) {
            out.sel = e / st;
            out.preempts = static_cast<double>(run.trace.stats.preemptions);
          }
        }
      });
      metrics::RunningStat dp_norm, sel_norm, preempts;
      std::uint64_t failures = 0;
      for (const SetResult& r : slots) {
        dp_norm.add(r.dp);
        sel_norm.add(r.sel);
        preempts.add(r.preempts);
        failures += r.failures;
      }
      table.add_row({report::fmt(overhead_us, 0) + "us",
                     report::interval(lo, lo + 0.1),
                     std::to_string(batch.sets.size()),
                     report::fmt(dp_norm.mean(), 3), report::fmt(sel_norm.mean(), 3),
                     report::fmt(preempts.mean(), 1), std::to_string(failures)});
    }
  }
  std::printf("=== Ablation: preemption overhead ===\n\n%s\n",
              table.to_string().c_str());
  std::printf(
      "reading: the normalized comparison is essentially insensitive to the\n"
      "overhead (every scheme pays it; the R-pattern schedulability margin\n"
      "absorbs it at these magnitudes), supporting the paper's overhead-free\n"
      "model. Watch the audit-failure column: overheads large enough to\n"
      "break the margin would show up there first.\n");
  return 0;
}
