// perf_serve: load generator + perf gate for the admission service.
//
// Drives harness::AdmissionService at saturation, in-process: requests are
// pre-serialized with io::serialize_serve_request (a deterministic pool of
// schedulable task sets x the four paper schemes, the same shape the sweep
// simulates), submitted as fast as backpressure admits, and timed from
// *submit intent* (before the potentially blocking push) to ordered
// emission -- so the latency percentiles include queue wait, which is what
// a saturated client actually experiences. Each worker count reports
// requests/sec, p50/p95/p99 latency and the queue-depth high-water mark to
// bench/BENCH_serve.json; CI gates requests_per_sec against the committed
// bench/BENCH_serve.baseline.json with the same >30%-drop rule as the other
// perf benches, and cross-checks the serve rate against the same run's
// fresh sweep rate (see .github/workflows/ci.yml).
//
// The bench also asserts the wire contract en route: every worker count
// must produce a byte-identical response stream (timing-free requests), on
// any machine -- including --workers 2 on a single-core box.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "mkss.hpp"

namespace {

using namespace mkss;
using clock_type = std::chrono::steady_clock;

/// Deterministic pool, perf_engine's recipe: `per_bin` schedulable sets at
/// each utilization bin, seeded per bin so the corpus is stable across
/// machines and reps.
std::vector<core::TaskSet> build_pool(std::size_t per_bin) {
  const double bins[] = {0.2, 0.4, 0.6, 0.8};
  std::vector<core::TaskSet> pool;
  std::size_t bin_index = 0;
  for (const double u : bins) {
    core::Rng rng(0x5EB5E001ULL + bin_index++);
    std::size_t made = 0;
    while (made < per_bin) {
      const auto ts = workload::generate_taskset({}, u, rng);
      if (ts && analysis::schedulable(
                    *ts, analysis::DemandModel::kRPatternMandatory)) {
        pool.push_back(*ts);
        ++made;
      }
    }
  }
  return pool;
}

/// The replayable request corpus: every pool set under every scheme, lean
/// path (audit off -- the same path the sweep benches), fixed horizon.
std::vector<std::string> build_requests(const std::vector<core::TaskSet>& pool,
                                        std::size_t repeat) {
  const char* schemes[] = {"st", "dp", "greedy", "selective"};
  std::vector<std::string> requests;
  requests.reserve(pool.size() * std::size(schemes) * repeat);
  for (std::size_t r = 0; r < repeat; ++r) {
    std::size_t n = 0;
    for (const core::TaskSet& ts : pool) {
      for (const char* scheme : schemes) {
        io::ServeRequest req;
        req.id = "q" + std::to_string(requests.size());
        req.taskset = io::serialize_taskset(ts);
        req.scheme = scheme;
        req.horizon = core::from_ms(std::int64_t{1000});
        req.seed = n++;
        req.audit = false;
        requests.push_back(io::serialize_serve_request(req));
      }
    }
  }
  return requests;
}

struct LoadResult {
  double seconds{0};
  std::vector<double> latency_us;  ///< per request, submit intent -> emission
  harness::ServeTelemetry telemetry;
  std::string stream;  ///< concatenated response lines (the identity check)
};

LoadResult drive(const std::vector<std::string>& requests, std::size_t workers,
                 std::size_t queue_depth) {
  LoadResult result;
  result.latency_us.resize(requests.size(), 0.0);
  std::vector<clock_type::time_point> submitted(requests.size());

  harness::ServeConfig cfg;
  cfg.workers = workers;
  cfg.queue_depth = queue_depth;
  // submitted[seq] is written before the enqueue and read after the dequeue,
  // both ordered by the service's queue mutex.
  harness::AdmissionService service(
      cfg, [&](std::uint64_t seq, const std::string& line) {
        result.latency_us[seq] =
            std::chrono::duration<double, std::micro>(clock_type::now() -
                                                      submitted[seq])
                .count();
        result.stream += line;
        result.stream += '\n';
      });

  const auto start = clock_type::now();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    submitted[i] = clock_type::now();  // intent: latency includes queue wait
    service.submit(requests[i]);
  }
  result.telemetry = service.finish();
  result.seconds =
      std::chrono::duration<double>(clock_type::now() - start).count();
  return result;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Serial sets/sec from the committed sweep baseline, 0 when unavailable
/// (ratio then reports as null -- informational, the CI gate recomputes it
/// from the same machine's fresh BENCH_sweep.json).
double sweep_baseline_rate(const char* path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto root = io::parse_json(buf.str(), &error);
  if (!root) return 0;
  const io::JsonValue* runs = root->find("runs");
  if (runs == nullptr || runs->items.empty()) return 0;
  for (const io::JsonValue& run : runs->items) {
    const io::JsonValue* threads = run.find("threads");
    const io::JsonValue* rate = run.find("sets_per_sec");
    if (threads != nullptr && threads->number == 1 && rate != nullptr) {
      return rate->number;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // 8 sets/bin x 4 bins x 4 schemes x 8 passes = 1024 requests: long enough
  // that the >30%-drop CI gate sits above run-to-run scheduler noise.
  std::size_t per_bin = 8;
  std::size_t repeat = 8;
  std::size_t queue_depth = 64;
  const char* out_path = "bench/BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--sets" && has_value) {
      per_bin = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--repeat" && has_value) {
      repeat = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--queue-depth" && has_value) {
      queue_depth = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--sets per_bin] [--repeat n] [--queue-depth n] "
          "[--out file]\n",
          argv[0]);
      return 2;
    }
  }

  const auto pool = build_pool(per_bin);
  const auto requests = build_requests(pool, repeat);

  std::size_t max_workers = core::ThreadPool::resolve_num_threads(0);
  if (const char* env = std::getenv("MKSS_PERF_MAX_THREADS")) {
    max_workers = static_cast<std::size_t>(std::atoll(env));
  }
  if (max_workers < 1) max_workers = 1;

  std::printf("=== perf_serve: admission service under load (lean path) ===\n");
  std::printf("%zu sets x 4 schemes x %zu passes = %zu requests, queue %zu\n",
              pool.size(), repeat, requests.size(), queue_depth);

  struct Sample {
    std::size_t workers;
    double seconds;
    double requests_per_sec;
    double p50_us, p95_us, p99_us;
    std::size_t max_queue_depth;
    std::uint64_t timeline_hits;
    std::uint64_t timeline_misses;
  };
  std::vector<Sample> samples;
  std::string reference_stream;
  bool byte_identical = true;
  bool timeline_warm = true;
  std::size_t identity_checks = 0;

  for (std::size_t w = 1; w <= max_workers; w *= 2) {
    LoadResult r = drive(requests, w, queue_depth);
    std::vector<double> sorted = r.latency_us;
    std::sort(sorted.begin(), sorted.end());
    const Sample s{
        w,
        r.seconds,
        r.seconds > 0 ? static_cast<double>(requests.size()) / r.seconds : 0,
        percentile(sorted, 0.50),
        percentile(sorted, 0.95),
        percentile(sorted, 0.99),
        r.telemetry.max_queue_depth,
        r.telemetry.timeline_hits,
        r.telemetry.timeline_misses};
    samples.push_back(s);
    // Warm-corpus contract: the repeated corpus must hit the content-keyed
    // timeline cache (4 schemes x `repeat` passes per set per worker); zero
    // hits means the serve path regressed to cold per-request builds.
    timeline_warm = timeline_warm && r.telemetry.timeline_hits > 0;
    if (reference_stream.empty()) {
      reference_stream = std::move(r.stream);
    } else {
      ++identity_checks;
      byte_identical = byte_identical && r.stream == reference_stream;
    }
    std::printf(
        "workers=%zu  %.3fs  %.1f req/sec  "
        "p50 %.0fus p95 %.0fus p99 %.0fus  depth<=%zu  "
        "timeline %llu hit(s)/%llu miss(es)  %s\n",
        w, s.seconds, s.requests_per_sec, s.p50_us, s.p95_us, s.p99_us,
        s.max_queue_depth,
        static_cast<unsigned long long>(s.timeline_hits),
        static_cast<unsigned long long>(s.timeline_misses),
        samples.size() == 1
            ? "(reference)"
            : (byte_identical ? "byte-identical" : "STREAM MISMATCH"));
  }

  // The wire contract must see a genuinely concurrent run even on a
  // single-core machine: verify workers=2 (and the hardware default)
  // untimed when the timed loop never got there.
  if (max_workers < 2) {
    for (const std::size_t w : {std::size_t{2}, std::size_t{0}}) {
      ++identity_checks;
      const bool same = drive(requests, w, queue_depth).stream ==
                        reference_stream;
      byte_identical = byte_identical && same;
      std::printf("workers=%zu (untimed contract check)  %s\n", w,
                  same ? "byte-identical" : "STREAM MISMATCH");
    }
  }

  double best_rate = 0;
  for (const Sample& s : samples) best_rate = std::max(best_rate, s.requests_per_sec);
  const double sweep_rate = sweep_baseline_rate("bench/BENCH_sweep.baseline.json");

  io::JsonWriter w;
  w.begin_object(io::JsonWriter::Scope::kBlock);
  w.key("bench");
  w.string("serve");
  w.key("requests");
  w.u64(requests.size());
  w.key("corpus_sets");
  w.u64(pool.size());
  w.key("queue_depth");
  w.u64(queue_depth);
  w.key("hardware_threads");
  w.u64(core::ThreadPool::resolve_num_threads(0));
  w.key("identity_checks");
  w.u64(identity_checks);
  w.key("byte_identical");
  w.boolean(byte_identical);
  w.key("timeline_warm");
  w.boolean(timeline_warm);
  w.key("requests_per_sec");
  w.fixed(best_rate, 1);
  // Informational: best serve rate vs the *committed* serial sweep rate
  // (sets/sec); null when the baseline is unreadable. The CI gate computes
  // the same ratio from the job's own fresh sweep run instead, so it never
  // compares across machines.
  w.key("sweep_baseline_ratio");
  if (sweep_rate > 0) {
    w.fixed(best_rate / sweep_rate, 3);
  } else {
    w.null();
  }
  w.key("runs");
  w.begin_array(io::JsonWriter::Scope::kBlock);
  for (const Sample& s : samples) {
    w.begin_object();
    w.key("workers");
    w.u64(s.workers);
    w.key("seconds");
    w.fixed(s.seconds, 4);
    w.key("requests_per_sec");
    w.fixed(s.requests_per_sec, 1);
    w.key("p50_us");
    w.fixed(s.p50_us, 1);
    w.key("p95_us");
    w.fixed(s.p95_us, 1);
    w.key("p99_us");
    w.fixed(s.p99_us, 1);
    w.key("max_queue_depth");
    w.u64(s.max_queue_depth);
    w.key("timeline_hits");
    w.u64(s.timeline_hits);
    w.key("timeline_misses");
    w.u64(s.timeline_misses);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string json = w.take() + "\n";

  std::error_code ec;
  std::filesystem::create_directories("bench", ec);
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  if (!byte_identical) {
    std::fprintf(stderr,
                 "FAIL: response streams diverged across worker counts\n");
    return 1;
  }
  if (!timeline_warm) {
    std::fprintf(stderr,
                 "FAIL: repeated corpus produced zero timeline-cache hits "
                 "(serve regressed to cold per-request builds)\n");
    return 1;
  }
  return 0;
}
