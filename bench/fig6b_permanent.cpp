// Figure 6(b): normalized energy under a single permanent fault (random
// processor, random instant, identical across the compared schemes).
//
// Paper: "the energy reduction by MKSS_selective subject to permanent fault
// is similar to the case when no fault ever occurred. Compared to MKSS_DP,
// the energy saving by MKSS_selective can be up to 22%."
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  using namespace mkss;
  auto cfg = benchrun::bench_config(fault::Scenario::kPermanentOnly, argc, argv);
  const auto result = harness::run_sweep(cfg);
  benchrun::print_sweep("=== Figure 6(b): energy comparison, permanent fault ===",
                        result);
  std::printf("paper reference: same ordering as 6(a), max gain of selective "
              "over DP up to 22%%\n");
  return 0;
}
