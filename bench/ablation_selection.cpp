// Ablation: the optional-job selection policy.
//
//   * alternation on/off (Algorithm 1 places selected optional jobs on the
//     two processors alternately "to make the workload ... distribute more
//     evenly");
//   * the FD selection threshold (the paper selects exactly FD == 1; wider
//     thresholds approach the greedy strawman of Section III);
//   * the greedy scheme itself, primary-only and round-robin.
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  using namespace mkss;
  auto cfg = benchrun::bench_config(fault::Scenario::kNoFault, argc, argv);

  const auto selective_with = [](bool alternate, std::uint32_t max_fd) {
    return [alternate, max_fd]() -> std::unique_ptr<sim::Scheme> {
      sched::SelectiveOptions opts;
      opts.alternate = alternate;
      opts.max_selected_fd = max_fd;
      return std::make_unique<sched::MkssSelective>(opts);
    };
  };

  // The paper's configuration goes last so print_sweep reports its gains
  // over every other variant.
  const std::vector<harness::SchemeVariant> variants = {
      {"MKSS_ST", [] { return sched::make_scheme(sched::SchemeKind::kSt); }},
      {"greedy(rr)",
       []() -> std::unique_ptr<sim::Scheme> {
         sched::GreedyOptions opts;
         opts.primary_only = false;
         return std::make_unique<sched::MkssGreedy>(opts);
       }},
      {"greedy(primary)",
       [] { return sched::make_scheme(sched::SchemeKind::kGreedy); }},
      {"sel(fd<=3,alt)", selective_with(true, 3)},
      {"sel(fd<=2,alt)", selective_with(true, 2)},
      {"sel(fd<=1,primary)", selective_with(false, 1)},
      {"sel(fd<=1,alt)", selective_with(true, 1)},
  };
  const auto result = harness::run_variant_sweep(cfg, variants);
  benchrun::print_sweep("=== Ablation: optional-job selection policy ===", result);
  std::printf("expectation: fd<=1 with alternation wins; wider thresholds and\n"
              "the greedy variants execute excessive optional jobs (Figure 3's\n"
              "lesson), especially at low utilization.\n");
  return 0;
}
