// Ablation: actual execution times below the WCET.
//
// The paper simulates every job at its WCET. Real jobs finish early, which
// feeds the core mechanism differently per scheme: early mains cancel more
// backup work under DP, while MKSS_selective's optional singles simply get
// cheaper. This bench sweeps the BCET/WCET ratio.
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  using namespace mkss;
  const std::size_t threads = benchrun::bench_threads(argc, argv);

  report::Table table({"bcet/wcet", "bin", "sets", "DP/ST", "selective/ST",
                       "sel vs DP gain"});
  for (const double bcet : {1.0, 0.75, 0.5, 0.25}) {
    std::uint64_t bin = 0;
    for (const double lo : {0.2, 0.4}) {
      workload::GenParams gen;
      const auto batch =
          workload::generate_bin(gen, lo, lo + 0.1, 15, 4000, 8675309, bin++);

      // Each task set fills its own slot; stats are folded in index order
      // afterwards, so the result is identical for any thread count.
      std::vector<std::pair<double, double>> ratios(batch.sets.size());
      core::parallel_for(threads, batch.sets.size(), [&](std::size_t i) {
        const auto& ts = batch.sets[i];
        sim::SimConfig cfg;
        cfg.horizon = harness::choose_horizon(ts, core::from_ms(std::int64_t{2000}));
        const sim::UniformExecModel exec(bcet, 42);
        double st = 0;
        for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                                sched::SchemeKind::kSelective}) {
          const auto run = harness::run_one(
              {.ts = ts, .kind = kind, .sim = cfg, .exec_model = &exec});
          const double e = run.energy.total();
          if (kind == sched::SchemeKind::kSt) st = e;
          if (kind == sched::SchemeKind::kDp) ratios[i].first = e / st;
          if (kind == sched::SchemeKind::kSelective) ratios[i].second = e / st;
        }
      });
      metrics::RunningStat dp_norm, sel_norm;
      for (const auto& [dp, sel] : ratios) {
        dp_norm.add(dp);
        sel_norm.add(sel);
      }
      table.add_row(
          {report::fmt(bcet, 2), report::interval(lo, lo + 0.1),
           std::to_string(batch.sets.size()), report::fmt(dp_norm.mean(), 3),
           report::fmt(sel_norm.mean(), 3),
           report::fmt_percent(
               metrics::relative_gain(sel_norm.mean(), dp_norm.mean()))});
    }
  }
  std::printf("=== Ablation: actual execution time (BCET/WCET sweep) ===\n\n%s\n",
              table.to_string().c_str());
  std::printf(
      "reading: shorter actual executions shrink everyone's energy, and they\n"
      "shrink the ST-normalized ratios roughly uniformly -- early mains help\n"
      "DP's cancellation about as much as cheap singles help selective, so\n"
      "the paper's WCET-only evaluation does not bias the comparison.\n");
  return 0;
}
