// Ablation: actual execution times below the WCET.
//
// The paper simulates every job at its WCET. Real jobs finish early, which
// feeds the core mechanism differently per scheme: early mains cancel more
// backup work under DP, while MKSS_selective's optional singles simply get
// cheaper. This bench sweeps the BCET/WCET ratio.
#include "fig6_common.hpp"

int main() {
  using namespace mkss;

  report::Table table({"bcet/wcet", "bin", "sets", "DP/ST", "selective/ST",
                       "sel vs DP gain"});
  for (const double bcet : {1.0, 0.75, 0.5, 0.25}) {
    for (const double lo : {0.2, 0.4}) {
      core::Rng rng(8675309);
      workload::GenParams gen;
      const auto batch = workload::generate_bin(gen, lo, lo + 0.1, 15, 4000, rng);

      metrics::RunningStat dp_norm, sel_norm;
      for (const auto& ts : batch.sets) {
        sim::SimConfig cfg;
        cfg.horizon = harness::choose_horizon(ts, core::from_ms(std::int64_t{2000}));
        sim::NoFaultPlan nofault;
        const sim::UniformExecModel exec(bcet, 42);
        double st = 0;
        for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                                sched::SchemeKind::kSelective}) {
          const auto run = harness::run_one(ts, kind, nofault, cfg, {}, &exec);
          const double e = run.energy.total();
          if (kind == sched::SchemeKind::kSt) st = e;
          if (kind == sched::SchemeKind::kDp) dp_norm.add(e / st);
          if (kind == sched::SchemeKind::kSelective) sel_norm.add(e / st);
        }
      }
      table.add_row(
          {report::fmt(bcet, 2),
           "[" + report::fmt(lo, 1) + "," + report::fmt(lo + 0.1, 1) + ")",
           std::to_string(batch.sets.size()), report::fmt(dp_norm.mean(), 3),
           report::fmt(sel_norm.mean(), 3),
           report::fmt_percent(
               metrics::relative_gain(sel_norm.mean(), dp_norm.mean()))});
    }
  }
  std::printf("=== Ablation: actual execution time (BCET/WCET sweep) ===\n\n%s\n",
              table.to_string().c_str());
  std::printf(
      "reading: shorter actual executions shrink everyone's energy, and they\n"
      "shrink the ST-normalized ratios roughly uniformly -- early mains help\n"
      "DP's cancellation about as much as cheap singles help selective, so\n"
      "the paper's WCET-only evaluation does not bias the comparison.\n");
  return 0;
}
