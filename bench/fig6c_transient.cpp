// Figure 6(c): normalized energy under one permanent fault plus Poisson
// transient faults with average rate 1e-6 (Section V, third test set; fault
// model of Zhu/Melhem/Mosse [1]).
//
// Paper: "the energy saving ... is similar to that in the previous cases.
// The maximal energy reduction by MKSS_selective over MKSS_DP can be up to
// 16%."
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  using namespace mkss;
  auto cfg = benchrun::bench_config(fault::Scenario::kPermanentAndTransient, argc, argv);
  const auto result = harness::run_sweep(cfg);
  benchrun::print_sweep(
      "=== Figure 6(c): energy comparison, permanent + transient faults ===",
      result);
  std::printf("paper reference: same ordering, max gain of selective over DP "
              "up to 16%%\n\n");
  std::printf("note: at the paper's rate (1e-6 per ms) a transient fault hits\n"
              "roughly one job in 10^5, so a single pattern-hyperperiod horizon\n"
              "almost never sees one and the table above matches 6(b). To make\n"
              "the transient mechanism visible (backups that must run to\n"
              "completion after a faulted main; faulted optional jobs forcing\n"
              "mandatory recoveries) we repeat the sweep at 1000x the rate:\n\n");

  auto inflated = cfg;
  inflated.lambda_per_ms = 1e-3;
  const auto stressed = harness::run_sweep(inflated);
  benchrun::print_sweep("=== Same sweep at lambda = 1e-3 per ms (1000x) ===",
                        stressed);
  std::printf("expectation: transients erode (but do not erase) selective's\n"
              "edge over DP, mirroring the paper's 28%% -> 22%% -> 16%% trend\n"
              "across 6(a)/(b)/(c).\n");
  return 0;
}
