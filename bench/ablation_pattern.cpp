// Ablation: the static partitioning pattern (deeply red vs. evenly
// distributed).
//
// The paper builds everything on the deeply red R-pattern (Equation 1),
// whose synchronous release is the provable worst case (the Theorem 1
// critical-instant argument). The E-pattern spreads the m mandatory jobs
// evenly over each window of k, which removes the R-pattern's job bursts:
// more task sets become schedulable (acceptance), and mandatory work is
// smoother -- but it only carries a synchronous-start guarantee. This bench
// compares both axes.
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  using namespace mkss;

  // Axis 1: schedulability acceptance. Same generator stream, two accept
  // tests; attempts-per-accepted-set measures the pattern's burst penalty.
  std::printf("=== Pattern ablation, axis 1: schedulable-set yield ===\n\n");
  report::Table yield({"mk-util bin", "R-pattern sets/attempts", "E-pattern sets/attempts"});
  std::uint64_t bin = 0;
  for (const double lo : {0.2, 0.4, 0.6, 0.8}) {
    std::vector<std::string> row{report::interval(lo, lo + 0.1)};
    for (const auto model : {analysis::DemandModel::kRPatternMandatory,
                             analysis::DemandModel::kEPatternMandatory}) {
      workload::GenParams gen;
      gen.accept_model = model;
      // Same (seed, bin) for both models: the accept test consumes no RNG,
      // so both admit the identical candidate stream.
      const auto batch =
          workload::generate_bin(gen, lo, lo + 0.1, 20, 4000, 987654, bin);
      row.push_back(std::to_string(batch.sets.size()) + "/" +
                    std::to_string(batch.attempts));
    }
    ++bin;
    yield.add_row(std::move(row));
  }
  std::printf("%s\n", yield.to_string().c_str());

  // Axis 2: energy of the static schemes under each pattern, on sets that
  // are schedulable under BOTH patterns (fair comparison).
  const auto st_with = [](core::PatternKind pattern) {
    return [pattern]() -> std::unique_ptr<sim::Scheme> {
      sched::StOptions opts;
      opts.pattern = pattern;
      return std::make_unique<sched::MkssSt>(opts);
    };
  };
  const auto dp_with = [](core::PatternKind pattern) {
    return [pattern]() -> std::unique_ptr<sim::Scheme> {
      sched::DpOptions opts;
      opts.pattern = pattern;
      return std::make_unique<sched::MkssDp>(opts);
    };
  };

  auto cfg = benchrun::bench_config(fault::Scenario::kNoFault, argc, argv);
  const std::vector<harness::SchemeVariant> variants = {
      {"ST(R)", st_with(core::PatternKind::kDeeplyRed)},
      {"ST(E)", st_with(core::PatternKind::kEvenlyDistributed)},
      {"DP(R)", dp_with(core::PatternKind::kDeeplyRed)},
      {"DP(E)", dp_with(core::PatternKind::kEvenlyDistributed)},
  };
  const auto result = harness::run_variant_sweep(cfg, variants);
  benchrun::print_sweep("=== Pattern ablation, axis 2: energy (R vs E) ===", result);
  std::printf(
      "findings: the E-pattern accepts noticeably more task sets per attempt\n"
      "(no deeply-red bursts to fit), while the mandatory-job count -- and so\n"
      "the duplicated energy -- is identical (m per k either way). Audit\n"
      "failures above count E-pattern mandatory misses: unlike the R-pattern,\n"
      "the E-pattern has no critical-instant guarantee beyond the synchronous\n"
      "start, which is why the paper (and Theorem 1) build on deeply red.\n");
  return 0;
}
