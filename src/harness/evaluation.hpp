// Evaluation harness: runs one task set under one scheme/fault plan, and
// reproduces the Figure-6 style sweeps (energy vs. total (m,k)-utilization,
// averaged over many random schedulable task sets, normalized to MKSS_ST).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "audit/trace_auditor.hpp"
#include "core/rng.hpp"
#include "core/task.hpp"
#include "energy/energy_model.hpp"
#include "fault/injection.hpp"
#include "harness/batch_runner.hpp"
#include "metrics/qos.hpp"
#include "metrics/summary.hpp"
#include "report/table.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "sim/trace_sink.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss::harness {

/// Result of a single simulation run.
struct RunResult {
  sim::SimulationTrace trace;
  energy::EnergyBreakdown energy;
  metrics::QosReport qos;
};

/// Everything one simulation run needs, in one place. Designated
/// initializers keep call sites readable:
///
///   auto r = harness::run_one({.ts = ts,
///                              .kind = sched::SchemeKind::kSelective,
///                              .faults = &plan,
///                              .sim = {.horizon = horizon}});
struct RunSpec {
  const core::TaskSet& ts;
  /// Scheme selection: a fresh default-configured instance of `kind` is
  /// created unless `scheme` is non-null (ablation variants, reused or
  /// specially configured instances).
  sched::SchemeKind kind{sched::SchemeKind::kSelective};
  sim::Scheme* scheme{nullptr};
  /// Fault plan of the run; nullptr means fault-free.
  const sim::FaultPlan* faults{nullptr};
  sim::SimConfig sim{};
  energy::PowerParams power{};
  /// Actual execution times (default WCET, the paper's model).
  const sim::ExecTimeModel* exec_model{nullptr};
  /// Custom trace sink. When set, the engine streams into it and the
  /// returned RunResult is empty -- results live in the sink (e.g. a
  /// sim::StatsSink for trace-free energy/QoS). When null, run_one uses an
  /// internal FullTraceSink and returns the materialized trace plus its
  /// energy accounting and QoS audit.
  sim::TraceSink* sink{nullptr};
};

/// Runs one simulation as described by `spec`.
RunResult run_one(const RunSpec& spec);

/// Simulation horizon for a task set: the (m,k)-pattern hyperperiod when it
/// fits under `cap`, otherwise `cap` itself (identical across compared
/// schemes, so normalized results stay comparable).
core::Ticks choose_horizon(const core::TaskSet& ts, core::Ticks cap);

// --- Figure 6 sweeps -----------------------------------------------------

struct SweepConfig {
  workload::GenParams gen{};
  /// Bin lower edges; each bin is [lo, lo + bin_width).
  std::vector<double> bin_starts{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  double bin_width{0.1};
  std::size_t sets_per_bin{20};
  std::size_t max_attempts_per_bin{5000};

  fault::Scenario scenario{fault::Scenario::kNoFault};
  double lambda_per_ms{1e-6};

  std::uint64_t seed{20200309};  ///< DATE 2020 started March 9, 2020
  core::Ticks horizon_cap{core::from_ms(std::int64_t{10000})};
  energy::PowerParams power{};
  /// Schemes to compare; the first is the normalization reference.
  std::vector<sched::SchemeKind> schemes{sched::evaluation_schemes()};

  /// Worker threads for the sweep: 1 = run everything inline on the calling
  /// thread, 0 = std::thread::hardware_concurrency. Results are bit-identical
  /// for every value (see docs/architecture.md, "Harness threading model" and
  /// "Generation pipeline"): every random stream is named by indices via
  /// core::stream_seed -- fault plans by (seed, bin_index, set_index),
  /// generation attempts by (generation root, bin_index, attempt) -- and
  /// results are committed/aggregated in index order after a barrier, never
  /// in completion order.
  std::size_t num_threads{1};

  /// Attach the trace auditor (src/audit) to every run. An audit violation
  /// quarantines the run like any thrown error: it is recorded in
  /// SweepResult::errors and its task set is excluded from the statistics,
  /// instead of aborting the whole sweep. The (m,k) window check is skipped
  /// for the transient scenario, where double faults on one job may
  /// legitimately break a window (counted by qos_failures as before).
  bool audit{true};
  /// When non-empty, every quarantined error also dumps a repro bundle
  /// (io/repro_bundle.hpp scenario dialect: task set + platform + scheme +
  /// fault-plan reproduction key) into this directory; `mkss_cli replay`
  /// re-runs them audited.
  std::string error_dir{};

  /// Per-run wall-clock watchdog forwarded to SimConfig::wall_clock_budget_ms
  /// (0 = off, the default): a hung run quarantines as a SweepError instead
  /// of stalling the whole sweep.
  double run_budget_ms{0};

  /// Release-discovery mode forwarded to sim::SimConfig::timeline. The
  /// default kAuto shares one cached release timeline across every scheme
  /// variant of a set (attached by BatchRunner); kHeap forces the classic
  /// calendar heap -- the cross-check leg perf_sweep and CI use to prove the
  /// cached path bit-identical. MKSS_TIMELINE still overrides per process.
  sim::TimelineMode timeline{sim::TimelineMode::kAuto};

  /// Which trace sink the runs use. kAuto materializes full traces exactly
  /// when `audit` is on (the auditor needs them); kFullTrace forces
  /// materialization; kStats forces the lean online-statistics path even
  /// with `audit` off already. The aggregated SweepResult is bit-identical
  /// either way (see docs/architecture.md, "Run API, analysis cache & trace
  /// sinks"); audited sweeps ignore kStats and keep full traces.
  enum class Sink : std::uint8_t { kAuto, kFullTrace, kStats };
  Sink sink{Sink::kAuto};

  /// When non-empty, generated task sets are cached in this directory as
  /// io::serialize_taskset files plus a manifest keyed on every parameter
  /// generation depends on (seed, bin grid, set counts, GenParams). A later
  /// sweep with the same key loads the corpus instead of regenerating --
  /// bit-identical either way, since the serializer is tick-exact. A manifest
  /// written under a *different* key makes the sweep throw instead of
  /// silently mixing workloads; delete the directory to regenerate. Sweeps
  /// that differ only in fault scenario / power / schemes share one corpus.
  std::string corpus_dir{};
};

struct BinSummary {
  double bin_lo{0};
  double bin_hi{0};
  std::size_t sets{0};
  std::uint64_t attempts{0};
  /// Where this bin's generation attempts went (draw failures / out-of-bin /
  /// staged-filter rejects / exact-RTA rejects / accepts); the five stages
  /// sum to `attempts`, so accept-rate regressions show up in the sweep
  /// output instead of hiding inside a bigger attempt count.
  workload::GenCounters gen_counters;
  /// Per scheme: normalized-energy statistics (vs. the reference scheme on
  /// the same task set) and absolute energy units.
  std::vector<metrics::RunningStat> normalized;
  std::vector<metrics::RunningStat> absolute;
};

/// Factory for a fresh scheme instance per run (schemes are stateful).
using SchemeFactory = std::function<std::unique_ptr<sim::Scheme>()>;

/// Named scheme variant for ablation sweeps.
struct SchemeVariant {
  std::string name;
  SchemeFactory make;
  /// sched::Registry name when the variant is a registered scheme (empty
  /// otherwise, e.g. ablation configurations). Repro bundles record it so
  /// `mkss_cli replay` can rebuild the scheme; bundles of unregistered
  /// variants fall back to `name` and replay refuses them loudly.
  std::string registry_name{};
};

/// One quarantined per-run failure: the run threw (engine MKSS_CHECK, scheme
/// error) or its trace failed the audit. The indices plus `seed` name the
/// exact random streams, so `mkss_cli sweep` and tests can replay the run.
struct SweepError {
  std::size_t bin{0};
  std::size_t set{0};
  std::string variant;
  std::uint64_t seed{0};  ///< core::stream_seed(config.seed, bin, set)
  std::string message;
  std::string taskset;    ///< io::serialize_taskset of the offending set
};

struct SweepResult {
  std::vector<std::string> scheme_names;
  std::vector<BinSummary> bins;
  /// Task-set runs whose trace violated (m,k) or missed a mandatory job --
  /// must stay zero (Theorem 1).
  std::uint64_t qos_failures{0};
  /// Quarantined runs, in (bin, set, variant) index order -- deterministic
  /// for every thread count. Task sets with any errored variant are excluded
  /// from the bin statistics.
  std::vector<SweepError> errors;

  /// Wall-clock seconds per sweep phase (generation / simulation /
  /// aggregation), for throughput reporting (bench/perf_sweep).
  struct PhaseTimings {
    double generate_seconds{0};
    double simulate_seconds{0};
    double aggregate_seconds{0};
  };
  PhaseTimings timings;

  /// Largest mean relative gain of scheme `a` over scheme `b` across bins
  /// (indices into scheme_names), e.g. 0.28 for "up to 28% lower energy".
  double max_gain(std::size_t a, std::size_t b) const;

  /// Sum of the per-bin generation counters.
  workload::GenCounters generation_totals() const;

  /// Paper-style table: one row per bin, one column per scheme (normalized
  /// mean), plus set counts.
  report::Table to_table() const;
};

/// Runs the full sweep (generation, filtering, simulation, aggregation).
SweepResult run_sweep(const SweepConfig& config);

/// Ablation form: same generation/aggregation, but with arbitrary scheme
/// variants (the first variant is the normalization reference) and an
/// optional per-run SimConfig tweak hook.
SweepResult run_variant_sweep(const SweepConfig& config,
                              const std::vector<SchemeVariant>& variants);

}  // namespace mkss::harness
