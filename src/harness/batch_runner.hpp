// Batched run machinery: one task set, one shared AnalysisCache, pooled
// engine + sinks.
//
// A Figure-6 sweep or a fault campaign runs the same task set through
// several scheme variants and many fault plans. Two costs dominate when each
// run starts from scratch: the offline analyses (theta postponement, Y
// promotions, RTA, hyperperiod) recomputed per run, and the per-run heap
// churn of a fresh engine + trace. A BatchRunner owns both fixes:
//
//   * an analysis::AnalysisCache keyed to the task set, bound into every
//     scheme (bind()) so repeated setups reuse the memoized analyses;
//   * a RunContext -- a reusable sim::Simulator plus one pooled
//     FullTraceSink and one StatsSink -- whose buffers survive across runs.
//
// Ownership: the BatchRunner borrows the task set (it must outlive the
// runner) and either owns its RunContext or borrows a caller-provided one
// (the sweep keeps one context per worker thread and points every set's
// runner at it). Results returned by run_full()/run_stats() live in the
// context's pooled buffers and are valid only until the next run on the
// same context.
#pragma once

#include <memory>

#include "analysis/cache.hpp"
#include "core/release_timeline.hpp"
#include "core/task.hpp"
#include "energy/energy_model.hpp"
#include "sim/engine.hpp"
#include "sim/trace_sink.hpp"

namespace mkss::harness {

/// Pooled per-thread simulation machinery. Not thread-safe; use one per
/// thread (cheap: the arenas grow to the working-set high-water mark once).
class RunContext {
 public:
  /// Full-trace run; the returned pooled trace is valid until the next
  /// run_full/run_stats call on this context.
  const sim::SimulationTrace& run_full(const core::TaskSet& ts,
                                       sim::Scheme& scheme,
                                       const sim::FaultPlan& faults,
                                       const sim::SimConfig& config,
                                       const sim::ExecTimeModel* exec_model = nullptr);

  /// Lean run: energy/QoS accumulate online, no trace is materialized. The
  /// returned sink is valid until the next run on this context.
  const sim::StatsSink& run_stats(const core::TaskSet& ts, sim::Scheme& scheme,
                                  const sim::FaultPlan& faults,
                                  const sim::SimConfig& config,
                                  const energy::PowerParams& power,
                                  const sim::ExecTimeModel* exec_model = nullptr);

  /// The context's content-keyed release-timeline cache. BatchRunner
  /// resolves timelines through it (via the per-set AnalysisCache), so a
  /// long-lived context -- a sweep worker, a serve worker -- hits warm when
  /// the same (periods, deadlines, horizon) content comes around again, even
  /// through a fresh BatchRunner/AnalysisCache per request.
  core::TimelineCache& timelines() noexcept { return timelines_; }

  /// The context's content-keyed postponement cache; BatchRunner routes its
  /// AnalysisCache misses through it (same warm-corpus story as timelines(),
  /// for the theta analysis instead of the release arena).
  analysis::PostponementCache& postponements() noexcept {
    return postponements_;
  }

 private:
  sim::Simulator simulator_;
  sim::FullTraceSink full_;
  sim::StatsSink stats_;
  core::TimelineCache timelines_;
  analysis::PostponementCache postponements_;
};

class BatchRunner {
 public:
  /// `ctx == nullptr` gives the runner its own private context; otherwise
  /// the caller-provided context is borrowed (and must outlive the runner).
  explicit BatchRunner(const core::TaskSet& ts, RunContext* ctx = nullptr);

  const core::TaskSet& taskset() const noexcept { return *ts_; }
  analysis::AnalysisCache& cache() noexcept { return cache_; }

  /// Simulation horizon for the set (harness::choose_horizon, memoized).
  core::Ticks horizon(core::Ticks cap) { return cache_.horizon(cap); }

  /// Binds the shared analysis cache into `scheme` when it derives from
  /// sched::SchemeBase (all repo schemes do); other schemes are left alone.
  void bind(sim::Scheme& scheme);

  /// Both run entry points attach the set's shared release timeline to the
  /// SimConfig (resolved through the AnalysisCache and the context's
  /// content-keyed TimelineCache) unless the run's resolved
  /// sim::TimelineMode is kHeap or the caller attached one already.
  const sim::SimulationTrace& run_full(sim::Scheme& scheme,
                                       const sim::FaultPlan& faults,
                                       const sim::SimConfig& config,
                                       const sim::ExecTimeModel* exec_model = nullptr);

  const sim::StatsSink& run_stats(sim::Scheme& scheme,
                                  const sim::FaultPlan& faults,
                                  const sim::SimConfig& config,
                                  const energy::PowerParams& power,
                                  const sim::ExecTimeModel* exec_model = nullptr);

 private:
  /// `config` with the shared timeline attached (when the mode wants one).
  sim::SimConfig with_timeline(const sim::SimConfig& config);

  const core::TaskSet* ts_;
  analysis::AnalysisCache cache_;
  std::unique_ptr<RunContext> owned_ctx_;
  RunContext* ctx_;
};

}  // namespace mkss::harness
