#include "harness/serve.hpp"

#include <chrono>
#include <istream>
#include <memory>
#include <ostream>

#include "audit/trace_auditor.hpp"
#include "core/check.hpp"
#include "fault/injection.hpp"
#include "harness/evaluation.hpp"
#include "io/taskset_io.hpp"
#include "sched/registry.hpp"

namespace mkss::harness {

namespace {

io::ServeResponse error_response(const io::ServeRequest& req, const char* code,
                                 std::string message) {
  io::ServeResponse r;
  r.id = req.id;
  r.ok = false;
  r.error_code = code;
  r.error_message = std::move(message);
  return r;
}

}  // namespace

namespace {

io::ServeResponse execute_request(const io::ServeRequestParse& parsed,
                                  RunContext& ctx,
                                  const ServeConfig& config) {
  const io::ServeRequest& req = parsed.req;
  if (!parsed.error_code.empty()) {
    return error_response(req, parsed.error_code.c_str(),
                          parsed.error_message);
  }

  try {
    // Workload: the inline dialect or a corpus file; either failure is a bad
    // *input* (code bad-input, mirroring CLI exit 3), not a usage error.
    core::TaskSet ts;
    try {
      ts = req.taskset.empty() ? io::parse_taskset_file(req.taskset_path)
                               : io::parse_taskset_string(req.taskset);
    } catch (const std::exception& e) {
      return error_response(req, io::kServeCodeBadInput, e.what());
    }

    // Scheme, resolved through the registry like the CLI's --scheme.
    const sched::SchemeInfo* info = nullptr;
    try {
      info = &sched::Registry::instance().resolve(req.scheme);
    } catch (const sched::UnknownSchemeError& e) {
      return error_response(req, io::kServeCodeUnknownScheme, e.what());
    }

    // Platform envelope checks, same shape as the CLI's simulate_scheme.
    if (!info->supports(req.procs)) {
      return error_response(
          req, io::kServeCodeEnvelope,
          "scheme '" + info->name + "' does not support procs " +
              std::to_string(req.procs) + " (supports " +
              std::to_string(info->min_procs) + ".." +
              (info->max_procs == 0 ? std::string("unbounded")
                                    : std::to_string(info->max_procs)) +
              ")");
    }
    if (req.permanent && req.permanent->proc >= req.procs) {
      return error_response(req, io::kServeCodeEnvelope,
                            "permanent fault names processor " +
                                std::to_string(req.permanent->proc) +
                                " on a platform of " +
                                std::to_string(req.procs));
    }

    io::ServeResponse r;
    r.id = req.id;

    // Staged admission verdict from a *fresh* context: the probe memo a
    // long-lived AdmissionContext accumulates can change which stage
    // certifies a later set (never the verdict), and the stage is on the
    // wire -- a pooled per-worker context would make the response depend on
    // which requests a worker happened to claim, breaking the byte-identity
    // guarantee across worker counts.
    analysis::AdmissionContext admission;
    r.has_admission = true;
    r.admission =
        admission.admit(ts, analysis::DemandModel::kRPatternMandatory);

    BatchRunner runner(ts, &ctx);
    const core::Ticks horizon =
        req.horizon > 0 ? req.horizon : runner.horizon(config.horizon_cap);

    const fault::ScenarioFaultPlan plan(
        req.permanent, fault::transient_probabilities(ts, req.lambda_per_ms),
        req.seed);

    sim::SimConfig sim_cfg;
    sim_cfg.horizon = horizon;
    sim_cfg.platform = sim::PlatformSpec::standby(req.procs);
    sim_cfg.wall_clock_budget_ms = config.run_budget_ms;

    const std::unique_ptr<sched::SchemeBase> scheme = info->make();
    runner.bind(*scheme);

    r.has_simulation = true;
    r.scheme = info->name;
    r.procs = req.procs;
    r.horizon = horizon;
    r.audited = req.audit;

    if (req.audit) {
      const sim::SimulationTrace& trace =
          runner.run_full(*scheme, plan, sim_cfg);
      audit::AuditOptions audit_opts;
      audit_opts.power = config.power;
      // Double transient faults on one job may legitimately break an (m,k)
      // window; the sweep harness makes the same exception.
      audit_opts.check_mk = req.lambda_per_ms <= 0;
      const audit::AuditReport report =
          audit::TraceAuditor(audit_opts).audit(trace, ts);

      const metrics::QosReport qos = metrics::audit_qos(trace, ts);
      const energy::EnergyBreakdown energy =
          energy::account_energy(trace, config.power);
      r.mk_satisfied = qos.mk_satisfied;
      r.mandatory_misses = qos.mandatory_misses;
      r.jobs_released = trace.stats.jobs_released;
      r.jobs_met = trace.stats.jobs_met;
      r.jobs_missed = trace.stats.jobs_missed;
      r.backups_canceled = trace.stats.backups_canceled;
      r.energy_total = energy.total();
      r.energy_active = energy.active_total();

      if (!report.ok()) {
        r.ok = false;
        r.error_code = io::kServeCodeAuditViolation;
        r.error_message = report.to_string();
        return r;
      }
    } else {
      const sim::StatsSink& sink =
          runner.run_stats(*scheme, plan, sim_cfg, config.power);
      r.mk_satisfied = sink.qos().mk_satisfied;
      r.mandatory_misses = sink.qos().mandatory_misses;
      r.jobs_released = sink.stats().jobs_released;
      r.jobs_met = sink.stats().jobs_met;
      r.jobs_missed = sink.stats().jobs_missed;
      r.backups_canceled = sink.stats().backups_canceled;
      r.energy_total = sink.energy().total();
      r.energy_active = sink.energy().active_total();
    }

    // A run that violates its (m,k) promise is still a successful *request*;
    // the verdict lives in mk_satisfied/mandatory_misses.
    r.ok = true;
    return r;
  } catch (const std::exception& e) {
    return error_response(req, io::kServeCodeInternal, e.what());
  } catch (...) {
    return error_response(req, io::kServeCodeInternal, "unknown error");
  }
}

}  // namespace

io::ServeResponse AdmissionService::process(const std::string& line,
                                            RunContext& ctx,
                                            const ServeConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  const io::ServeRequestParse parsed = io::parse_serve_request(line);
  io::ServeResponse response = execute_request(parsed, ctx, config);
  // Timing is opt-in per request because it forfeits byte-identity across
  // *runs*; the ordering guarantee keeps it identical across worker counts
  // only for timing-free responses.
  if (parsed.error_code.empty() && parsed.req.timing) {
    response.wall_us = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  }
  return response;
}

AdmissionService::AdmissionService(ServeConfig config, Emit emit)
    : config_(config), emit_(std::move(emit)) {
  std::size_t n = config_.workers;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (config_.queue_depth == 0) config_.queue_depth = 1;
  started_ = std::chrono::steady_clock::now();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

AdmissionService::~AdmissionService() {
  if (!finished_) finish();
}

std::uint64_t AdmissionService::submit(std::string line) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  MKSS_CHECK(!closed_, "AdmissionService: submit after finish");
  queue_space_.wait(lock,
                    [this] { return queue_.size() < config_.queue_depth; });
  const std::uint64_t seq = next_seq_++;
  queue_.push_back({seq, std::move(line)});
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
  lock.unlock();
  queue_filled_.notify_one();
  return seq;
}

ServeTelemetry AdmissionService::finish() {
  if (!finished_) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      closed_ = true;
    }
    queue_filled_.notify_all();
    for (std::thread& w : workers_) w.join();
    const auto ended = std::chrono::steady_clock::now();

    telemetry_.requests = next_seq_;
    telemetry_.ok = emitted_ok_;
    telemetry_.errors = emitted_errors_;
    telemetry_.max_queue_depth = max_queue_depth_;
    telemetry_.timeline_hits = timeline_hits_;
    telemetry_.timeline_misses = timeline_misses_;
    telemetry_.wall_seconds =
        std::chrono::duration<double>(ended - started_).count();
    MKSS_CHECK(next_emit_ == next_seq_ && reorder_.empty(),
               "AdmissionService: responses lost");
    finished_ = true;
  }
  return telemetry_;
}

void AdmissionService::worker_main() {
  // Per-worker pooled state: the engine/sink arenas grow to the working-set
  // high-water mark once and are reused for every later request.
  RunContext ctx;
  // Fold this worker's timeline-cache traffic into the service totals on
  // exit (after the last request; finish() reads them post-join).
  struct CounterFold {
    AdmissionService* svc;
    RunContext* ctx;
    ~CounterFold() {
      std::lock_guard<std::mutex> lock(svc->emit_mutex_);
      svc->timeline_hits_ += ctx->timelines().hits();
      svc->timeline_misses_ += ctx->timelines().misses();
    }
  } fold{this, &ctx};
  while (true) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_filled_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed_ and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_space_.notify_one();

    const io::ServeResponse response = process(item.line, ctx, config_);
    emit_ordered(item.seq,
                 {io::serialize_serve_response(response), response.ok});
  }
}

void AdmissionService::emit_ordered(std::uint64_t seq, Finished finished) {
  std::lock_guard<std::mutex> lock(emit_mutex_);
  reorder_.emplace(seq, std::move(finished));
  // Cooperative drain: whichever worker completes the oldest outstanding
  // sequence emits every contiguous finished response.
  for (auto it = reorder_.find(next_emit_); it != reorder_.end();
       it = reorder_.find(next_emit_)) {
    const Finished& due = it->second;
    ++(due.ok ? emitted_ok_ : emitted_errors_);
    if (emit_) emit_(next_emit_, due.line);
    reorder_.erase(it);
    ++next_emit_;
  }
}

ServeTelemetry serve_stream(std::istream& in, std::ostream& out,
                            const ServeConfig& config) {
  AdmissionService service(
      config, [&out](std::uint64_t, const std::string& line) {
        out << line << '\n';
        out.flush();  // a client may await each answer before the next send
      });
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    service.submit(std::move(line));
  }
  return service.finish();
}

}  // namespace mkss::harness
