#include "harness/evaluation.hpp"

#include <algorithm>
#include <cstdio>
#include <future>
#include <utility>

#include "core/thread_pool.hpp"

namespace mkss::harness {

using core::Ticks;

RunResult run_one(const core::TaskSet& ts, sim::Scheme& scheme,
                  const sim::FaultPlan& faults, const sim::SimConfig& sim_config,
                  const energy::PowerParams& power,
                  const sim::ExecTimeModel* exec_model) {
  RunResult r;
  r.trace = sim::simulate(ts, scheme, faults, sim_config, exec_model);
  r.energy = energy::account_energy(r.trace, power);
  r.qos = metrics::audit_qos(r.trace, ts);
  return r;
}

RunResult run_one(const core::TaskSet& ts, sched::SchemeKind kind,
                  const sim::FaultPlan& faults, const sim::SimConfig& sim_config,
                  const energy::PowerParams& power,
                  const sim::ExecTimeModel* exec_model) {
  const auto scheme = sched::make_scheme(kind);
  return run_one(ts, *scheme, faults, sim_config, power, exec_model);
}

Ticks choose_horizon(const core::TaskSet& ts, Ticks cap) {
  return ts.mk_hyperperiod(cap).value_or(cap);
}

double SweepResult::max_gain(std::size_t a, std::size_t b) const {
  double best = 0.0;
  for (const BinSummary& bin : bins) {
    if (bin.sets == 0) continue;
    best = std::max(best, metrics::relative_gain(bin.normalized[a].mean(),
                                                 bin.normalized[b].mean()));
  }
  return best;
}

report::Table SweepResult::to_table() const {
  std::vector<std::string> header{"mk-util bin", "sets", "attempts"};
  for (const std::string& name : scheme_names) header.push_back(name);
  report::Table table(std::move(header));
  for (const BinSummary& bin : bins) {
    std::vector<std::string> row;
    row.push_back(report::interval(bin.bin_lo, bin.bin_hi));
    row.push_back(std::to_string(bin.sets));
    row.push_back(std::to_string(bin.attempts));
    for (std::size_t s = 0; s < scheme_names.size(); ++s) {
      row.push_back(bin.sets ? report::fmt(bin.normalized[s].mean(), 3) : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

SweepResult run_sweep(const SweepConfig& config) {
  std::vector<SchemeVariant> variants;
  for (const sched::SchemeKind kind : config.schemes) {
    variants.push_back(
        {sched::to_string(kind), [kind] { return sched::make_scheme(kind); }});
  }
  return run_variant_sweep(config, variants);
}

namespace {

/// Stream index reserved for task-set generation inside a bin; set indices
/// (the other consumers of the (seed, bin, x) stream space) are dense from 0
/// and can never reach it.
constexpr std::uint64_t kGenerationStream = ~std::uint64_t{0};

/// Everything one (task-set × variant) job reads and the slot it writes.
/// Jobs touch disjoint slots, so the fan-out needs no synchronization beyond
/// the barrier; aggregation then walks slots in set-index order, which makes
/// the result independent of completion order and thread count.
struct SetRuns {
  Ticks horizon{0};
  std::unique_ptr<const sim::FaultPlan> plan;
  std::vector<double> totals;   ///< one per variant
  std::vector<char> qos_ok;     ///< one per variant
};

}  // namespace

SweepResult run_variant_sweep(const SweepConfig& config,
                              const std::vector<SchemeVariant>& variants) {
  SweepResult result;
  for (const SchemeVariant& v : variants) {
    result.scheme_names.push_back(v.name);
  }

  const std::size_t n_threads =
      core::ThreadPool::resolve_num_threads(config.num_threads);
  std::unique_ptr<core::ThreadPool> pool;
  if (n_threads > 1) pool = std::make_unique<core::ThreadPool>(n_threads);

  // Phase 1: task-set generation, one independent job per bin. Each bin owns
  // the stream (seed, bin_index, kGenerationStream); rejection sampling
  // inside a bin stays sequential (each draw depends on the previous ones),
  // but bins proceed concurrently.
  std::vector<workload::BinnedBatch> batches(config.bin_starts.size());
  core::parallel_for(pool.get(), batches.size(), [&](std::size_t b) {
    const double lo = config.bin_starts[b];
    core::Rng gen_rng(core::stream_seed(config.seed, b, kGenerationStream));
    batches[b] =
        workload::generate_bin(config.gen, lo, lo + config.bin_width,
                               config.sets_per_bin,
                               config.max_attempts_per_bin, gen_rng);
  });

  for (std::size_t b = 0; b < batches.size(); ++b) {
    if (batches[b].sets.size() < config.sets_per_bin) {
      std::fprintf(
          stderr,
          "warning: bin [%.2f,%.2f) exhausted max_attempts_per_bin=%zu with "
          "only %zu/%zu schedulable sets; its statistics are undersampled\n",
          batches[b].bin_lo, batches[b].bin_hi, config.max_attempts_per_bin,
          batches[b].sets.size(), config.sets_per_bin);
    }
  }

  // Phase 2: one job per (task-set × variant). The fault plan is derived
  // from (seed, bin_index, set_index) — a name, not a position in a shared
  // stream — and built per task set up front (FaultPlan queries are const
  // and thread-safe, so every variant of a set shares one plan: schemes
  // differ in scheduling, not in luck).
  std::vector<std::vector<SetRuns>> runs(batches.size());
  struct JobRef {
    std::size_t bin, set, variant;
  };
  std::vector<JobRef> jobs;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    runs[b].resize(batches[b].sets.size());
    for (std::size_t s = 0; s < batches[b].sets.size(); ++s) {
      SetRuns& sr = runs[b][s];
      const core::TaskSet& ts = batches[b].sets[s];
      sr.horizon = choose_horizon(ts, config.horizon_cap);
      core::Rng fault_rng(core::stream_seed(config.seed, b, s));
      sr.plan = fault::make_scenario_plan(config.scenario, ts, sr.horizon,
                                          config.lambda_per_ms, fault_rng);
      sr.totals.assign(variants.size(), 0.0);
      sr.qos_ok.assign(variants.size(), 1);
      for (std::size_t v = 0; v < variants.size(); ++v) {
        jobs.push_back({b, s, v});
      }
    }
  }
  core::parallel_for(pool.get(), jobs.size(), [&](std::size_t i) {
    const JobRef& j = jobs[i];
    SetRuns& sr = runs[j.bin][j.set];
    sim::SimConfig sim_config;
    sim_config.horizon = sr.horizon;
    sim_config.break_even = config.power.break_even;
    const auto scheme = variants[j.variant].make();
    const RunResult run = run_one(batches[j.bin].sets[j.set], *scheme,
                                  *sr.plan, sim_config, config.power);
    sr.totals[j.variant] = run.energy.total();
    sr.qos_ok[j.variant] = run.qos.theorem1_holds() ? 1 : 0;
  });

  // Phase 3: aggregation, strictly in (bin, set) index order — same
  // floating-point accumulation order as a fully serial run.
  for (std::size_t b = 0; b < batches.size(); ++b) {
    BinSummary bin;
    bin.bin_lo = batches[b].bin_lo;
    bin.bin_hi = batches[b].bin_hi;
    bin.attempts = batches[b].attempts;
    bin.normalized.resize(variants.size());
    bin.absolute.resize(variants.size());

    for (const SetRuns& sr : runs[b]) {
      if (std::find(sr.qos_ok.begin(), sr.qos_ok.end(), 0) != sr.qos_ok.end()) {
        ++result.qos_failures;
      }
      const double reference = sr.totals[0];
      if (reference <= 0.0) continue;
      for (std::size_t v = 0; v < variants.size(); ++v) {
        bin.normalized[v].add(sr.totals[v] / reference);
        bin.absolute[v].add(sr.totals[v]);
      }
      ++bin.sets;
    }
    result.bins.push_back(std::move(bin));
  }
  return result;
}

}  // namespace mkss::harness
