#include "harness/evaluation.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <stdexcept>
#include <utility>

#include "core/thread_pool.hpp"
#include "io/repro_bundle.hpp"
#include "io/taskset_io.hpp"

namespace mkss::harness {

using core::Ticks;

RunResult run_one(const RunSpec& spec) {
  static const sim::NoFaultPlan no_faults;
  const sim::FaultPlan& faults =
      spec.faults != nullptr ? *spec.faults : no_faults;
  std::unique_ptr<sim::Scheme> owned;
  sim::Scheme* scheme = spec.scheme;
  if (scheme == nullptr) {
    owned = sched::make_scheme(spec.kind);
    scheme = owned.get();
  }

  RunResult r;
  sim::Simulator simulator;
  if (spec.sink != nullptr) {
    simulator.run(spec.ts, *scheme, faults, spec.sim, *spec.sink,
                  spec.exec_model);
    return r;  // results live in the caller's sink
  }
  sim::FullTraceSink sink;
  simulator.run(spec.ts, *scheme, faults, spec.sim, sink, spec.exec_model);
  r.trace = sink.take();
  r.energy = energy::account_energy(r.trace, spec.power);
  r.qos = metrics::audit_qos(r.trace, spec.ts);
  return r;
}

Ticks choose_horizon(const core::TaskSet& ts, Ticks cap) {
  return ts.mk_hyperperiod(cap).value_or(cap);
}

double SweepResult::max_gain(std::size_t a, std::size_t b) const {
  double best = 0.0;
  for (const BinSummary& bin : bins) {
    if (bin.sets == 0) continue;
    best = std::max(best, metrics::relative_gain(bin.normalized[a].mean(),
                                                 bin.normalized[b].mean()));
  }
  return best;
}

workload::GenCounters SweepResult::generation_totals() const {
  workload::GenCounters total;
  for (const BinSummary& bin : bins) total += bin.gen_counters;
  return total;
}

report::Table SweepResult::to_table() const {
  std::vector<std::string> header{"mk-util bin", "sets", "attempts",
                                  "rejects draw/bin/filter/rta"};
  for (const std::string& name : scheme_names) header.push_back(name);
  report::Table table(std::move(header));
  for (const BinSummary& bin : bins) {
    std::vector<std::string> row;
    row.push_back(report::interval(bin.bin_lo, bin.bin_hi));
    row.push_back(std::to_string(bin.sets));
    row.push_back(std::to_string(bin.attempts));
    const workload::GenCounters& c = bin.gen_counters;
    row.push_back(std::to_string(c.draw_failures) + "/" +
                  std::to_string(c.out_of_bin) + "/" +
                  std::to_string(c.filter_rejects) + "/" +
                  std::to_string(c.rta_rejects));
    for (std::size_t s = 0; s < scheme_names.size(); ++s) {
      row.push_back(bin.sets ? report::fmt(bin.normalized[s].mean(), 3) : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

SweepResult run_sweep(const SweepConfig& config) {
  std::vector<SchemeVariant> variants;
  for (const sched::SchemeKind kind : config.schemes) {
    variants.push_back({sched::to_string(kind),
                        [kind] { return sched::make_scheme(kind); },
                        sched::registry_name(kind)});
  }
  return run_variant_sweep(config, variants);
}

namespace {

/// Stream index reserved for task-set generation. The generation root seed
/// is stream_seed(config.seed, kGenerationStream, 0); generate_bin then
/// names attempt streams (root, bin_index, attempt). Fault plans draw from
/// (config.seed, bin_index, set_index) directly, so the two stream families
/// live under different root seeds and cannot collide.
constexpr std::uint64_t kGenerationStream = ~std::uint64_t{0};

/// Everything one task-set job reads and the slots it writes (one slot per
/// variant). Jobs touch disjoint slots, so the fan-out needs no
/// synchronization beyond the barrier; aggregation then walks slots in
/// set-index order, which makes the result independent of completion order
/// and thread count.
struct SetRuns {
  Ticks horizon{0};
  std::unique_ptr<const sim::FaultPlan> plan;
  std::vector<double> totals;   ///< one per variant
  std::vector<char> qos_ok;     ///< one per variant
  std::vector<std::string> error;  ///< one per variant, empty == clean
};

/// Writes one repro bundle for a quarantined run, in the io::ReproBundle
/// scenario dialect: the full reproduction key (platform, registry scheme
/// name, stream version, scenario + lambda + fault-stream seed) rides in the
/// comment block, so `mkss_cli replay` can re-run the exact fault plan while
/// the file still parses as a plain task-set file. Called from the serial
/// aggregation phase only, so file creation is deterministic and race-free.
void dump_error_bundle(const std::string& dir, const SweepError& err,
                       const SweepConfig& config, Ticks horizon,
                       const std::string& registry_name) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot create error dir %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    return;
  }
  const std::string path = dir + "/bin" + std::to_string(err.bin) + "_set" +
                           std::to_string(err.set) + "_" + err.variant +
                           ".repro.txt";
  io::ReproBundle bundle;
  bundle.verdict = "sweep-error";
  // Unregistered ablation variants fall back to the display name; replay
  // then fails loudly instead of rebuilding the wrong scheme.
  bundle.scheme = registry_name.empty() ? err.variant : registry_name;
  bundle.procs = 2;
  bundle.roles = "WS";
  bundle.stream_version = config.gen.stream_version;
  bundle.horizon = horizon;
  bundle.scenario_plan = true;
  bundle.scenario = fault::to_string(config.scenario);
  bundle.lambda_per_ms = config.lambda_per_ms;
  bundle.fault_seed = err.seed;
  bundle.error = err.message;
  bundle.ts = io::parse_taskset_string(err.taskset);
  std::ofstream out(path);
  out << io::serialize_repro_bundle(bundle);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write repro bundle %s\n",
                 path.c_str());
  }
}

// --- Corpus cache --------------------------------------------------------
//
// A corpus directory holds one io::serialize_taskset file per accepted set
// plus manifest.txt. The manifest opens with a key block covering every
// input task-set generation reads; %a formatting keeps the doubles exact, so
// two configs collide on a key iff generation would produce the same corpus.
// The per-bin lines then record set counts and generation attempts (attempts
// are reported in the sweep output, so a loaded corpus must reproduce them).

std::string corpus_manifest_path(const SweepConfig& config) {
  return config.corpus_dir + "/manifest.txt";
}

std::string corpus_set_path(const SweepConfig& config, std::size_t bin,
                            std::size_t set) {
  return config.corpus_dir + "/bin" + std::to_string(bin) + "_set" +
         std::to_string(set) + ".taskset";
}

std::string corpus_key(const SweepConfig& config) {
  char buf[160];
  // v2: the RNG substream scheme moved to per-attempt streams
  // (GenParams::stream_version 2), which reshuffles every generated set, so
  // the key header and the gen line's trailing stream_version make corpora
  // written by v1 builds abort loudly instead of replaying stale sets.
  std::string key = "mkss-corpus-v2\n";
  key += "seed " + std::to_string(config.seed) + "\n";
  std::snprintf(buf, sizeof buf, "bin_width %a\nbins", config.bin_width);
  key += buf;
  for (const double b : config.bin_starts) {
    std::snprintf(buf, sizeof buf, " %a", b);
    key += buf;
  }
  key += "\nsets_per_bin " + std::to_string(config.sets_per_bin) + "\n";
  key += "max_attempts_per_bin " + std::to_string(config.max_attempts_per_bin) +
         "\n";
  const workload::GenParams& g = config.gen;
  std::snprintf(buf, sizeof buf, "gen %zu %zu %lld %lld %u %u %a %d %d %u\n",
                g.min_tasks, g.max_tasks,
                static_cast<long long>(g.min_period_ms),
                static_cast<long long>(g.max_period_ms), g.min_k, g.max_k,
                g.deadline_factor, static_cast<int>(g.wcet_model),
                static_cast<int>(g.accept_model), g.stream_version);
  key += buf;
  return key;
}

/// Loads the corpus into `batches`. Returns false when the directory has no
/// manifest yet (fresh cache: generate and save). Throws when the manifest
/// exists but was written under a different key -- reusing those sets would
/// silently benchmark a different workload -- or when a listed file is
/// missing or corrupt.
bool load_corpus(const SweepConfig& config,
                 std::vector<workload::BinnedBatch>& batches) {
  std::ifstream in(corpus_manifest_path(config));
  if (!in) return false;

  const std::string expected = corpus_key(config);
  std::string key, line;
  std::vector<std::string> bin_lines;
  while (std::getline(in, line)) {
    if (line.rfind("bin ", 0) == 0) {
      bin_lines.push_back(line);
    } else if (bin_lines.empty()) {
      key += line + "\n";
    }
  }
  if (key != expected) {
    throw std::runtime_error(
        "corpus " + config.corpus_dir +
        " was generated with different sweep parameters; delete the "
        "directory to regenerate.\n--- stored key ---\n" + key +
        "--- expected key ---\n" + expected);
  }
  if (bin_lines.size() != config.bin_starts.size()) {
    throw std::runtime_error("corpus " + config.corpus_dir + ": manifest has " +
                             std::to_string(bin_lines.size()) + " bins, sweep " +
                             std::to_string(config.bin_starts.size()));
  }
  for (std::size_t b = 0; b < bin_lines.size(); ++b) {
    std::size_t idx = 0, sets = 0;
    unsigned long long attempts = 0;
    unsigned long long stage[6] = {};
    if (std::sscanf(bin_lines[b].c_str(),
                    "bin %zu sets %zu attempts %llu "
                    "stages %llu %llu %llu %llu %llu quick %llu",
                    &idx, &sets, &attempts, &stage[0], &stage[1], &stage[2],
                    &stage[3], &stage[4], &stage[5]) != 9 ||
        idx != b) {
      throw std::runtime_error("corpus " + config.corpus_dir +
                               ": malformed manifest line '" + bin_lines[b] +
                               "'");
    }
    workload::BinnedBatch& batch = batches[b];
    batch.bin_lo = config.bin_starts[b];
    batch.bin_hi = batch.bin_lo + config.bin_width;
    batch.attempts = attempts;
    batch.counters = {stage[0], stage[1], stage[2], stage[3], stage[4],
                      stage[5]};
    batch.sets.reserve(sets);
    for (std::size_t s = 0; s < sets; ++s) {
      batch.sets.push_back(io::parse_taskset_file(corpus_set_path(config, b, s)));
    }
  }
  return true;
}

void save_corpus(const SweepConfig& config,
                 const std::vector<workload::BinnedBatch>& batches) {
  std::error_code ec;
  std::filesystem::create_directories(config.corpus_dir, ec);
  if (ec) {
    throw std::runtime_error("corpus: cannot create " + config.corpus_dir +
                             ": " + ec.message());
  }
  for (std::size_t b = 0; b < batches.size(); ++b) {
    for (std::size_t s = 0; s < batches[b].sets.size(); ++s) {
      const std::string path = corpus_set_path(config, b, s);
      std::ofstream out(path);
      out << io::serialize_taskset(batches[b].sets[s]);
      if (!out.flush()) {
        throw std::runtime_error("corpus: cannot write " + path);
      }
    }
  }
  // The manifest goes last: an interrupted save leaves no manifest, which
  // reads as "no corpus" and regenerates, never as a truncated corpus.
  std::ofstream out(corpus_manifest_path(config));
  out << corpus_key(config);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const workload::GenCounters& c = batches[b].counters;
    out << "bin " << b << " sets " << batches[b].sets.size() << " attempts "
        << batches[b].attempts << " stages " << c.draw_failures << " "
        << c.out_of_bin << " " << c.filter_rejects << " " << c.rta_rejects
        << " " << c.accepted << " quick " << c.quick_accepts << "\n";
  }
  if (!out.flush()) {
    throw std::runtime_error("corpus: cannot write " +
                             corpus_manifest_path(config));
  }
}

}  // namespace

SweepResult run_variant_sweep(const SweepConfig& config,
                              const std::vector<SchemeVariant>& variants) {
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  SweepResult result;
  for (const SchemeVariant& v : variants) {
    result.scheme_names.push_back(v.name);
  }

  const std::size_t n_threads =
      core::ThreadPool::resolve_num_threads(config.num_threads);
  std::unique_ptr<core::ThreadPool> pool;
  if (n_threads > 1) pool = std::make_unique<core::ThreadPool>(n_threads);

  // Phase 1: task-set generation. Bins run one after another, and each bin
  // fans its speculative attempt chunks across the pool (every attempt owns
  // the stream (generation root, bin_index, attempt), so attempts are
  // independent). This balances far better than one job per bin: high-
  // utilization bins need orders of magnitude more attempts than low ones,
  // and per-bin jobs left every worker but one idle on the last stragglers.
  const auto generate_start = Clock::now();
  std::vector<workload::BinnedBatch> batches(config.bin_starts.size());
  const bool corpus_loaded =
      !config.corpus_dir.empty() && load_corpus(config, batches);
  if (!corpus_loaded) {
    const std::uint64_t gen_root =
        core::stream_seed(config.seed, kGenerationStream, 0);
    for (std::size_t b = 0; b < batches.size(); ++b) {
      const double lo = config.bin_starts[b];
      batches[b] = workload::generate_bin(
          config.gen, lo, lo + config.bin_width, config.sets_per_bin,
          config.max_attempts_per_bin, gen_root, b, pool.get());
    }
    if (!config.corpus_dir.empty()) save_corpus(config, batches);
  }
  result.timings.generate_seconds = seconds_since(generate_start);

  for (std::size_t b = 0; b < batches.size(); ++b) {
    if (batches[b].sets.size() < config.sets_per_bin) {
      std::fprintf(
          stderr,
          "warning: bin [%.2f,%.2f) exhausted max_attempts_per_bin=%zu with "
          "only %zu/%zu schedulable sets; its statistics are undersampled\n",
          batches[b].bin_lo, batches[b].bin_hi, config.max_attempts_per_bin,
          batches[b].sets.size(), config.sets_per_bin);
    }
  }

  // Phase 2: one job per task set, running every variant back to back. The
  // fault plan is derived from (seed, bin_index, set_index) — a name, not a
  // position in a shared stream — so every variant of a set shares one plan:
  // schemes differ in scheduling, not in luck. Grouping the variants in one
  // job lets them share a BatchRunner (one analysis cache per set) and a
  // per-worker-thread RunContext (pooled engine arenas + sinks).
  const auto simulate_start = Clock::now();
  std::vector<std::vector<SetRuns>> runs(batches.size());
  struct SetRef {
    std::size_t bin, set;
  };
  std::vector<SetRef> jobs;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    runs[b].resize(batches[b].sets.size());
    for (std::size_t s = 0; s < batches[b].sets.size(); ++s) {
      SetRuns& sr = runs[b][s];
      const core::TaskSet& ts = batches[b].sets[s];
      sr.horizon = choose_horizon(ts, config.horizon_cap);
      core::Rng fault_rng(core::stream_seed(config.seed, b, s));
      sr.plan = fault::make_scenario_plan(config.scenario, ts, sr.horizon,
                                          config.lambda_per_ms, fault_rng);
      sr.totals.assign(variants.size(), 0.0);
      sr.qos_ok.assign(variants.size(), 1);
      sr.error.assign(variants.size(), std::string{});
      jobs.push_back({b, s});
    }
  }
  audit::AuditOptions audit_options;
  audit_options.power = config.power;
  // Under the transient scenario a job can draw faults on both of its copies,
  // which legitimately breaks an (m,k) window; qos_failures counts those.
  audit_options.check_mk =
      config.scenario != fault::Scenario::kPermanentAndTransient;
  // Audits need materialized traces; otherwise honor the configured sink.
  const bool use_full =
      config.audit || config.sink != SweepConfig::Sink::kStats;
  core::parallel_for(pool.get(), jobs.size(), [&](std::size_t i) {
    // One pooled context per worker OS thread; its arenas persist across
    // jobs (and sweeps), so steady-state runs allocate nothing.
    thread_local RunContext ctx;
    const SetRef& j = jobs[i];
    SetRuns& sr = runs[j.bin][j.set];
    const core::TaskSet& ts = batches[j.bin].sets[j.set];
    BatchRunner runner(ts, &ctx);
    sim::SimConfig sim_config;
    sim_config.horizon = sr.horizon;
    sim_config.break_even = config.power.break_even;
    sim_config.wall_clock_budget_ms = config.run_budget_ms;
    sim_config.timeline = config.timeline;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      // Quarantine: a thrown engine/scheme error or an audit violation is
      // recorded in this variant's disjoint slot instead of tearing down
      // the sweep; aggregation later surfaces it deterministically.
      try {
        const auto scheme = variants[v].make();
        runner.bind(*scheme);
        if (use_full) {
          const sim::SimulationTrace& trace =
              runner.run_full(*scheme, *sr.plan, sim_config);
          if (config.audit) {
            audit::audit_or_throw(trace, ts, audit_options);
          }
          sr.totals[v] = energy::account_energy(trace, config.power).total();
          sr.qos_ok[v] =
              metrics::audit_qos(trace, ts).theorem1_holds() ? 1 : 0;
        } else {
          const sim::StatsSink& stats =
              runner.run_stats(*scheme, *sr.plan, sim_config, config.power);
          sr.totals[v] = stats.energy().total();
          sr.qos_ok[v] = stats.qos().theorem1_holds() ? 1 : 0;
        }
      } catch (const std::exception& e) {
        sr.error[v] = e.what();
        if (sr.error[v].empty()) sr.error[v] = "unknown error";
      }
    }
  });
  result.timings.simulate_seconds = seconds_since(simulate_start);

  // Phase 3: aggregation, strictly in (bin, set) index order — same
  // floating-point accumulation order as a fully serial run.
  const auto aggregate_start = Clock::now();
  for (std::size_t b = 0; b < batches.size(); ++b) {
    BinSummary bin;
    bin.bin_lo = batches[b].bin_lo;
    bin.bin_hi = batches[b].bin_hi;
    bin.attempts = batches[b].attempts;
    bin.gen_counters = batches[b].counters;
    bin.normalized.resize(variants.size());
    bin.absolute.resize(variants.size());

    for (std::size_t s = 0; s < runs[b].size(); ++s) {
      const SetRuns& sr = runs[b][s];
      bool errored = false;
      for (std::size_t v = 0; v < variants.size(); ++v) {
        if (sr.error[v].empty()) continue;
        errored = true;
        SweepError err{b, s, variants[v].name,
                       core::stream_seed(config.seed, b, s), sr.error[v],
                       io::serialize_taskset(batches[b].sets[s])};
        if (!config.error_dir.empty()) {
          dump_error_bundle(config.error_dir, err, config, sr.horizon,
                            variants[v].registry_name);
        }
        result.errors.push_back(std::move(err));
      }
      if (errored) continue;  // quarantined: excluded from the statistics
      if (std::find(sr.qos_ok.begin(), sr.qos_ok.end(), 0) != sr.qos_ok.end()) {
        ++result.qos_failures;
      }
      const double reference = sr.totals[0];
      if (reference <= 0.0) continue;
      for (std::size_t v = 0; v < variants.size(); ++v) {
        bin.normalized[v].add(sr.totals[v] / reference);
        bin.absolute[v].add(sr.totals[v]);
      }
      ++bin.sets;
    }
    result.bins.push_back(std::move(bin));
  }
  result.timings.aggregate_seconds = seconds_since(aggregate_start);
  return result;
}

}  // namespace mkss::harness
