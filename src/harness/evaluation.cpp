#include "harness/evaluation.hpp"

#include <algorithm>

namespace mkss::harness {

using core::Ticks;

RunResult run_one(const core::TaskSet& ts, sim::Scheme& scheme,
                  const sim::FaultPlan& faults, const sim::SimConfig& sim_config,
                  const energy::PowerParams& power,
                  const sim::ExecTimeModel* exec_model) {
  RunResult r;
  r.trace = sim::simulate(ts, scheme, faults, sim_config, exec_model);
  r.energy = energy::account_energy(r.trace, power);
  r.qos = metrics::audit_qos(r.trace, ts);
  return r;
}

RunResult run_one(const core::TaskSet& ts, sched::SchemeKind kind,
                  const sim::FaultPlan& faults, const sim::SimConfig& sim_config,
                  const energy::PowerParams& power,
                  const sim::ExecTimeModel* exec_model) {
  const auto scheme = sched::make_scheme(kind);
  return run_one(ts, *scheme, faults, sim_config, power, exec_model);
}

Ticks choose_horizon(const core::TaskSet& ts, Ticks cap) {
  return ts.mk_hyperperiod(cap).value_or(cap);
}

double SweepResult::max_gain(std::size_t a, std::size_t b) const {
  double best = 0.0;
  for (const BinSummary& bin : bins) {
    if (bin.sets == 0) continue;
    best = std::max(best, metrics::relative_gain(bin.normalized[a].mean(),
                                                 bin.normalized[b].mean()));
  }
  return best;
}

report::Table SweepResult::to_table() const {
  std::vector<std::string> header{"mk-util bin", "sets"};
  for (const std::string& name : scheme_names) header.push_back(name);
  report::Table table(std::move(header));
  for (const BinSummary& bin : bins) {
    std::vector<std::string> row;
    row.push_back("[" + report::fmt(bin.bin_lo, 1) + "," +
                  report::fmt(bin.bin_hi, 1) + ")");
    row.push_back(std::to_string(bin.sets));
    for (std::size_t s = 0; s < scheme_names.size(); ++s) {
      row.push_back(bin.sets ? report::fmt(bin.normalized[s].mean(), 3) : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

SweepResult run_sweep(const SweepConfig& config) {
  std::vector<SchemeVariant> variants;
  for (const sched::SchemeKind kind : config.schemes) {
    variants.push_back(
        {sched::to_string(kind), [kind] { return sched::make_scheme(kind); }});
  }
  return run_variant_sweep(config, variants);
}

SweepResult run_variant_sweep(const SweepConfig& config,
                              const std::vector<SchemeVariant>& variants) {
  SweepResult result;
  for (const SchemeVariant& v : variants) {
    result.scheme_names.push_back(v.name);
  }

  core::Rng rng(config.seed);
  for (const double lo : config.bin_starts) {
    const double hi = lo + config.bin_width;
    core::Rng bin_rng = rng.split();
    const workload::BinnedBatch batch =
        workload::generate_bin(config.gen, lo, hi, config.sets_per_bin,
                               config.max_attempts_per_bin, bin_rng);

    BinSummary bin;
    bin.bin_lo = lo;
    bin.bin_hi = hi;
    bin.attempts = batch.attempts;
    bin.normalized.resize(variants.size());
    bin.absolute.resize(variants.size());

    for (const core::TaskSet& ts : batch.sets) {
      const Ticks horizon = choose_horizon(ts, config.horizon_cap);
      sim::SimConfig sim_config;
      sim_config.horizon = horizon;
      sim_config.break_even = config.power.break_even;

      // One fault plan per task set, shared by every scheme: schemes differ
      // in scheduling, not in luck.
      core::Rng fault_rng = bin_rng.split();
      const auto plan = fault::make_scenario_plan(
          config.scenario, ts, horizon, config.lambda_per_ms, fault_rng);

      std::vector<double> totals(variants.size(), 0.0);
      bool qos_ok = true;
      for (std::size_t s = 0; s < variants.size(); ++s) {
        const auto scheme = variants[s].make();
        const RunResult run =
            run_one(ts, *scheme, *plan, sim_config, config.power);
        totals[s] = run.energy.total();
        if (!run.qos.theorem1_holds()) qos_ok = false;
      }
      if (!qos_ok) ++result.qos_failures;

      const double reference = totals[0];
      if (reference <= 0.0) continue;
      for (std::size_t s = 0; s < variants.size(); ++s) {
        bin.normalized[s].add(totals[s] / reference);
        bin.absolute[s].add(totals[s]);
      }
      ++bin.sets;
    }
    result.bins.push_back(std::move(bin));
  }
  return result;
}

}  // namespace mkss::harness
