// Admission service: the long-lived engine behind `mkss_cli serve`.
//
// The CLI's one-shot subcommands pay process start-up, task-set parsing and
// offline-analysis cost per invocation, which makes them a poor backend for
// anything interactive (an admission-control loop, a parameter-space
// explorer, a load generator). AdmissionService keeps the expensive state
// alive instead: a fixed pool of worker threads, each owning a
// harness::RunContext (engine + trace/stats sinks whose arenas survive
// across requests), fed from one bounded request queue.
//
// Contract (the docs/architecture.md "Admission service" section is the
// long-form version):
//
//   * Backpressure, not buffering: submit() blocks once `queue_depth`
//     requests are in flight, so a fast producer cannot balloon memory.
//   * Strict request-order responses: every response is emitted in submit()
//     sequence regardless of which worker finished first (a cooperative
//     reorder buffer under the emit lock -- the worker holding the oldest
//     outstanding sequence drains everything contiguous). With `timing`
//     off, a response is a pure function of its request line, so the
//     response *stream* is byte-identical for every worker count.
//   * Errors are responses: malformed JSON, unknown schemes, envelope
//     violations, unreadable corpus files and audit violations each produce
//     a structured error response (io/serve_protocol.hpp codes) -- the
//     service never dies on a request.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/time.hpp"
#include "energy/energy_model.hpp"
#include "harness/batch_runner.hpp"
#include "io/serve_protocol.hpp"

namespace mkss::harness {

struct ServeConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency. The response
  /// stream is byte-identical for every value (timing-free requests).
  std::size_t workers{1};
  /// Bounded queue depth; submit() blocks while this many requests are
  /// queued and unclaimed (claimed requests ride in their worker).
  std::size_t queue_depth{64};
  /// Horizon cap for requests that do not pin `horizon_ms`; such requests
  /// simulate over harness::choose_horizon(ts, horizon_cap).
  core::Ticks horizon_cap{core::from_ms(std::int64_t{10000})};
  /// Power model of the energy figures in responses.
  energy::PowerParams power{};
  /// Per-request wall-clock watchdog (sim::SimConfig::wall_clock_budget_ms);
  /// 0 = off. A timed-out run answers internal-error instead of hanging a
  /// worker forever.
  double run_budget_ms{0};
};

struct ServeTelemetry {
  std::uint64_t requests{0};
  std::uint64_t ok{0};
  std::uint64_t errors{0};  ///< responses with a structured error
  /// High-water mark of the request queue (saturation diagnostic: a loaded
  /// server sits at queue_depth).
  std::size_t max_queue_depth{0};
  /// Release-timeline cache traffic summed over the worker RunContexts
  /// (core::TimelineCache, content-keyed): repeated corpus sets should hit
  /// warm -- a hit count stuck at zero means the serve integration regressed
  /// to cold per-request timeline builds (bench/perf_serve asserts on it).
  std::uint64_t timeline_hits{0};
  std::uint64_t timeline_misses{0};
  double wall_seconds{0};  ///< start() to finish()
};

class AdmissionService {
 public:
  /// Called under the emit lock, in strict submit order: `seq` is the value
  /// the matching submit() returned, `line` one response without newline.
  using Emit = std::function<void(std::uint64_t seq, const std::string& line)>;

  explicit AdmissionService(ServeConfig config, Emit emit);
  /// Joins the pool; pending requests are still answered (finish semantics).
  ~AdmissionService();

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  /// Enqueues one raw request line, blocking while the queue is full
  /// (backpressure). Returns the request's sequence number. Not
  /// thread-safe against other submit()/finish() calls -- one producer.
  std::uint64_t submit(std::string line);

  /// Drains the queue, joins the workers, and returns the run's telemetry.
  /// The service cannot be reused afterwards.
  ServeTelemetry finish();

  /// Decodes and executes one request line on the given pooled context;
  /// never throws. This is the whole per-request semantics -- the service
  /// adds only queuing and ordering around it -- and it is what unit tests
  /// and the load generator's reference pass call directly. The timing-free
  /// response is a pure function of `line` (the admission verdict uses a
  /// fresh analysis::AdmissionContext per request, because a pooled one's
  /// probe memo could flip the certifying *stage* by call history).
  static io::ServeResponse process(const std::string& line, RunContext& ctx,
                                   const ServeConfig& config);

 private:
  struct Item {
    std::uint64_t seq{0};
    std::string line;
  };
  struct Finished {
    std::string line;
    bool ok{false};
  };

  void worker_main();
  void emit_ordered(std::uint64_t seq, Finished finished);

  ServeConfig config_;
  Emit emit_;

  std::mutex queue_mutex_;
  std::condition_variable queue_space_;   ///< producer waits for room
  std::condition_variable queue_filled_;  ///< workers wait for work
  std::deque<Item> queue_;
  bool closed_{false};
  std::uint64_t next_seq_{0};
  std::size_t max_queue_depth_{0};

  std::mutex emit_mutex_;
  std::map<std::uint64_t, Finished> reorder_;  ///< finished, not yet due
  std::uint64_t next_emit_{0};
  std::uint64_t emitted_ok_{0};
  std::uint64_t emitted_errors_{0};
  /// Timeline-cache traffic, accumulated (under emit_mutex_) by each worker
  /// from its RunContext as it exits; read after the join in finish().
  std::uint64_t timeline_hits_{0};
  std::uint64_t timeline_misses_{0};

  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point started_;
  bool finished_{false};
  ServeTelemetry telemetry_;
};

/// Runs a whole JSONL session: one request per line from `in` (blank lines
/// ignored), one response line to `out` -- flushed per response, so a client
/// may await each answer before sending the next request.
ServeTelemetry serve_stream(std::istream& in, std::ostream& out,
                            const ServeConfig& config);

}  // namespace mkss::harness
