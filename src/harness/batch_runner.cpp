#include "harness/batch_runner.hpp"

#include "sched/scheme_base.hpp"

namespace mkss::harness {

const sim::SimulationTrace& RunContext::run_full(
    const core::TaskSet& ts, sim::Scheme& scheme, const sim::FaultPlan& faults,
    const sim::SimConfig& config, const sim::ExecTimeModel* exec_model) {
  simulator_.run(ts, scheme, faults, config, full_, exec_model);
  return full_.trace();
}

const sim::StatsSink& RunContext::run_stats(const core::TaskSet& ts,
                                            sim::Scheme& scheme,
                                            const sim::FaultPlan& faults,
                                            const sim::SimConfig& config,
                                            const energy::PowerParams& power,
                                            const sim::ExecTimeModel* exec_model) {
  stats_.set_power(power);
  simulator_.run(ts, scheme, faults, config, stats_, exec_model);
  return stats_;
}

BatchRunner::BatchRunner(const core::TaskSet& ts, RunContext* ctx)
    : ts_(&ts), cache_(ts) {
  if (ctx == nullptr) {
    owned_ctx_ = std::make_unique<RunContext>();
    ctx_ = owned_ctx_.get();
  } else {
    ctx_ = ctx;
  }
}

void BatchRunner::bind(sim::Scheme& scheme) {
  if (auto* base = dynamic_cast<sched::SchemeBase*>(&scheme)) {
    base->bind_cache(&cache_);
  }
}

}  // namespace mkss::harness
