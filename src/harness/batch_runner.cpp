#include "harness/batch_runner.hpp"

#include "sched/scheme_base.hpp"

namespace mkss::harness {

const sim::SimulationTrace& RunContext::run_full(
    const core::TaskSet& ts, sim::Scheme& scheme, const sim::FaultPlan& faults,
    const sim::SimConfig& config, const sim::ExecTimeModel* exec_model) {
  simulator_.run(ts, scheme, faults, config, full_, exec_model);
  return full_.trace();
}

const sim::StatsSink& RunContext::run_stats(const core::TaskSet& ts,
                                            sim::Scheme& scheme,
                                            const sim::FaultPlan& faults,
                                            const sim::SimConfig& config,
                                            const energy::PowerParams& power,
                                            const sim::ExecTimeModel* exec_model) {
  stats_.set_power(power);
  simulator_.run(ts, scheme, faults, config, stats_, exec_model);
  return stats_;
}

BatchRunner::BatchRunner(const core::TaskSet& ts, RunContext* ctx)
    : ts_(&ts), cache_(ts) {
  if (ctx == nullptr) {
    owned_ctx_ = std::make_unique<RunContext>();
    ctx_ = owned_ctx_.get();
  } else {
    ctx_ = ctx;
  }
  cache_.set_shared_postponements(&ctx_->postponements());
}

void BatchRunner::bind(sim::Scheme& scheme) {
  if (auto* base = dynamic_cast<sched::SchemeBase*>(&scheme)) {
    base->bind_cache(&cache_);
  }
}

sim::SimConfig BatchRunner::with_timeline(const sim::SimConfig& config) {
  sim::SimConfig cfg = config;
  // Attach the set's shared release timeline unless the run is heap-mode or
  // the caller brought its own. kAuto counts as cached here: behind a
  // BatchRunner a timeline is one memo lookup away, which is the exact
  // situation kAuto exists for.
  if (cfg.timeline_data == nullptr && cfg.horizon > 0 &&
      sim::resolved_timeline_mode(cfg) != sim::TimelineMode::kHeap) {
    cfg.timeline_data = &cache_.timeline(cfg.horizon, &ctx_->timelines());
  }
  return cfg;
}

const sim::SimulationTrace& BatchRunner::run_full(
    sim::Scheme& scheme, const sim::FaultPlan& faults,
    const sim::SimConfig& config, const sim::ExecTimeModel* exec_model) {
  return ctx_->run_full(*ts_, scheme, faults, with_timeline(config),
                        exec_model);
}

const sim::StatsSink& BatchRunner::run_stats(
    sim::Scheme& scheme, const sim::FaultPlan& faults,
    const sim::SimConfig& config, const energy::PowerParams& power,
    const sim::ExecTimeModel* exec_model) {
  return ctx_->run_stats(*ts_, scheme, faults, with_timeline(config), power,
                         exec_model);
}

}  // namespace mkss::harness
