#include "io/taskset_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mkss::io {

core::TaskSet parse_taskset(std::istream& in) {
  std::vector<core::Task> tasks;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);

    std::string name;
    if (!(fields >> name)) continue;  // blank line

    double period = 0, deadline = 0, wcet = 0;
    std::uint32_t m = 0, k = 0;
    if (!(fields >> period >> deadline >> wcet >> m >> k)) {
      throw std::runtime_error("taskset line " + std::to_string(line_no) +
                               ": expected 'name period deadline wcet m k'");
    }
    std::string extra;
    if (fields >> extra) {
      throw std::runtime_error("taskset line " + std::to_string(line_no) +
                               ": unexpected trailing field '" + extra + "'");
    }
    core::Task task = core::Task::from_ms(period, deadline, wcet, m, k, name);
    if (!task.valid()) {
      throw std::runtime_error("taskset line " + std::to_string(line_no) +
                               ": invalid task parameters (need P,C,D > 0, "
                               "C <= D <= P, 0 < m <= k)");
    }
    tasks.push_back(std::move(task));
  }
  if (tasks.empty()) {
    throw std::runtime_error("taskset: no tasks found");
  }
  return core::TaskSet(std::move(tasks));
}

core::TaskSet parse_taskset_string(const std::string& text) {
  std::istringstream in(text);
  return parse_taskset(in);
}

core::TaskSet parse_taskset_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("taskset: cannot open '" + path + "'");
  }
  return parse_taskset(in);
}

std::string serialize_taskset(const core::TaskSet& ts) {
  std::string out = "# name period deadline wcet m k (ms)\n";
  for (const core::Task& t : ts) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s %.6g %.6g %.6g %u %u\n", t.name.c_str(),
                  core::to_ms(t.period), core::to_ms(t.deadline),
                  core::to_ms(t.wcet), t.m, t.k);
    out += buf;
  }
  return out;
}

}  // namespace mkss::io
