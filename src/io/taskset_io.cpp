#include "io/taskset_io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace mkss::io {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw ParseError("taskset line " + std::to_string(line_no) + ": " + what);
}

/// Largest accepted time value in ms; far below the Ticks overflow point
/// (~9.2e15 ms) so downstream arithmetic (hyperperiods, horizons) has slack.
constexpr double kMaxTimeMs = 1e12;

double parse_time(const std::string& tok, const char* field,
                  std::size_t line_no) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    fail(line_no, std::string(field) + " '" + tok + "' is not a number");
  }
  if (!std::isfinite(v)) {
    fail(line_no, std::string(field) + " '" + tok + "' must be finite");
  }
  if (v <= 0.0) {
    fail(line_no, std::string(field) + " '" + tok + "' must be positive");
  }
  if (errno == ERANGE || v > kMaxTimeMs) {
    fail(line_no, std::string(field) + " '" + tok + "' is out of range");
  }
  return v;
}

std::uint32_t parse_count(const std::string& tok, const char* field,
                          std::size_t line_no) {
  if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
    fail(line_no,
         std::string(field) + " '" + tok + "' is not a non-negative integer");
  }
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), nullptr, 10);
  if (errno == ERANGE || v > std::numeric_limits<std::uint32_t>::max()) {
    fail(line_no, std::string(field) + " '" + tok + "' is out of range");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

core::TaskSet parse_taskset(std::istream& in) {
  std::vector<core::Task> tasks;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);

    std::string name;
    if (!(fields >> name)) continue;  // blank line

    std::string tok[5];
    if (!(fields >> tok[0] >> tok[1] >> tok[2] >> tok[3] >> tok[4])) {
      fail(line_no, "expected 'name period deadline wcet m k'");
    }
    std::string extra;
    if (fields >> extra) {
      fail(line_no, "unexpected trailing field '" + extra + "'");
    }
    const double period = parse_time(tok[0], "period", line_no);
    const double deadline = parse_time(tok[1], "deadline", line_no);
    const double wcet = parse_time(tok[2], "wcet", line_no);
    const std::uint32_t m = parse_count(tok[3], "m", line_no);
    const std::uint32_t k = parse_count(tok[4], "k", line_no);
    core::Task task = core::Task::from_ms(period, deadline, wcet, m, k, name);
    if (!task.valid()) {
      fail(line_no,
           "invalid task parameters (need P,C,D > 0, C <= D <= P, 0 < m <= k)");
    }
    tasks.push_back(std::move(task));
  }
  if (tasks.empty()) {
    throw ParseError("taskset: no tasks found");
  }
  return core::TaskSet(std::move(tasks));
}

core::TaskSet parse_taskset_string(const std::string& text) {
  std::istringstream in(text);
  return parse_taskset(in);
}

core::TaskSet parse_taskset_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("taskset: cannot open '" + path + "'");
  }
  return parse_taskset(in);
}

namespace {

/// Formats a tick count as exact fixed-point milliseconds. A tick is 1/1000
/// ms, so three decimals represent every Ticks value exactly -- unlike the
/// %.6g this replaced, which silently truncated values with more than six
/// significant digits and broke tick-exact round-trips.
void append_ms(std::string& out, core::Ticks t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(t / core::kTicksPerMs),
                static_cast<long long>(t % core::kTicksPerMs));
  out += buf;
}

}  // namespace

std::string serialize_taskset(const core::TaskSet& ts) {
  std::string out = "# name period deadline wcet m k (ms)\n";
  for (const core::Task& t : ts) {
    out += t.name;
    for (const core::Ticks v : {t.period, t.deadline, t.wcet}) {
      out += ' ';
      append_ms(out, v);
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, " %u %u\n", t.m, t.k);
    out += buf;
  }
  // Tick-exact round-trip guarantee: the corpus cache and repro bundles feed
  // these files back through the parser, and a single off-by-one tick would
  // silently break bit-identical replay.
  const core::TaskSet round = parse_taskset_string(out);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (round[i].period != ts[i].period || round[i].deadline != ts[i].deadline ||
        round[i].wcet != ts[i].wcet || round[i].m != ts[i].m ||
        round[i].k != ts[i].k) {
      throw std::logic_error("serialize_taskset: lossy round-trip for task '" +
                             ts[i].name + "'");
    }
  }
  return out;
}

}  // namespace mkss::io
