#include "io/trace_json.hpp"

#include <cstdarg>
#include <cstdio>

namespace mkss::io {

namespace {

std::string ms_or_null(core::Ticks t) {
  if (t == core::kNever) return "null";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", core::to_ms(t));
  return buf;
}

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string trace_to_json(const sim::SimulationTrace& trace,
                          const core::TaskSet& ts) {
  std::string out = "{\n";
  append_fmt(out, "  \"horizon_ms\": %.3f,\n", core::to_ms(trace.horizon));

  out += "  \"tasks\": [\n";
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const core::Task& t = ts[i];
    append_fmt(out,
               "    {\"name\": \"%s\", \"period_ms\": %.3f, \"deadline_ms\": %.3f,"
               " \"wcet_ms\": %.3f, \"m\": %u, \"k\": %u}%s\n",
               escape(t.name).c_str(), core::to_ms(t.period),
               core::to_ms(t.deadline), core::to_ms(t.wcet), t.m, t.k,
               i + 1 < ts.size() ? "," : "");
  }
  out += "  ],\n";

  out += "  \"segments\": [\n";
  for (std::size_t i = 0; i < trace.segments.size(); ++i) {
    const sim::ExecSegment& s = trace.segments[i];
    append_fmt(out,
               "    {\"proc\": %u, \"task\": %zu, \"job\": %llu, \"kind\": \"%s\","
               " \"begin_ms\": %.3f, \"end_ms\": %.3f, \"frequency\": %.3f}%s\n",
               s.proc, s.job.task + 1,
               static_cast<unsigned long long>(s.job.job),
               sim::to_string(s.kind).c_str(), core::to_ms(s.span.begin),
               core::to_ms(s.span.end), s.frequency,
               i + 1 < trace.segments.size() ? "," : "");
  }
  out += "  ],\n";

  out += "  \"jobs\": [\n";
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    const sim::JobRecord& j = trace.jobs[i];
    append_fmt(
        out,
        "    {\"task\": %zu, \"job\": %llu, \"release_ms\": %.3f,"
        " \"deadline_ms\": %.3f, \"mandatory\": %s, \"executed_optional\": %s,"
        " \"outcome\": \"%s\", \"resolved_at_ms\": %.3f,"
        " \"main_fault\": %s, \"backup_fault\": %s}%s\n",
        j.job.id.task + 1, static_cast<unsigned long long>(j.job.id.job),
        core::to_ms(j.job.release), core::to_ms(j.job.deadline),
        j.mandatory ? "true" : "false", j.executed_optional ? "true" : "false",
        !j.resolved ? "pending"
                    : (j.outcome == core::JobOutcome::kMet ? "met" : "missed"),
        core::to_ms(j.resolved_at), j.main_transient_fault ? "true" : "false",
        j.backup_transient_fault ? "true" : "false",
        i + 1 < trace.jobs.size() ? "," : "");
  }
  out += "  ],\n";

  out += "  \"copies\": [\n";
  for (std::size_t i = 0; i < trace.copies.size(); ++i) {
    const sim::CopyRecord& c = trace.copies[i];
    append_fmt(out,
               "    {\"task\": %zu, \"job\": %llu, \"kind\": \"%s\","
               " \"proc\": %u, \"band\": \"%s\", \"admitted_ms\": %.3f,"
               " \"eligible_ms\": %.3f, \"work_ms\": %.3f, \"ended_ms\": %.3f,"
               " \"end\": \"%s\", \"transient_fault\": %s}%s\n",
               c.job.task + 1, static_cast<unsigned long long>(c.job.job),
               sim::to_string(c.kind).c_str(), c.proc,
               c.band == sim::Band::kMandatory ? "mandatory" : "optional",
               core::to_ms(c.admitted), core::to_ms(c.eligible),
               core::to_ms(c.work), core::to_ms(c.ended),
               sim::to_string(c.end).c_str(),
               c.transient_fault ? "true" : "false",
               i + 1 < trace.copies.size() ? "," : "");
  }
  out += "  ],\n";

  out += "  \"death_time_ms\": [";
  for (std::size_t p = 0; p < trace.death_time.size(); ++p) {
    if (p > 0) out += ", ";
    out += ms_or_null(trace.death_time[p]);
  }
  out += "],\n";

  const sim::SimStats& st = trace.stats;
  append_fmt(out,
             "  \"stats\": {\"jobs_released\": %llu, \"mandatory_jobs\": %llu,"
             " \"optional_selected\": %llu, \"optional_skipped\": %llu,"
             " \"backups_created\": %llu, \"backups_canceled\": %llu,"
             " \"transient_faults\": %llu, \"jobs_met\": %llu,"
             " \"jobs_missed\": %llu, \"mandatory_misses\": %llu}\n",
             static_cast<unsigned long long>(st.jobs_released),
             static_cast<unsigned long long>(st.mandatory_jobs),
             static_cast<unsigned long long>(st.optional_selected),
             static_cast<unsigned long long>(st.optional_skipped),
             static_cast<unsigned long long>(st.backups_created),
             static_cast<unsigned long long>(st.backups_canceled),
             static_cast<unsigned long long>(st.transient_faults),
             static_cast<unsigned long long>(st.jobs_met),
             static_cast<unsigned long long>(st.jobs_missed),
             static_cast<unsigned long long>(st.mandatory_misses));
  out += "}\n";
  return out;
}

}  // namespace mkss::io
