#include "io/trace_json.hpp"

#include "io/json_writer.hpp"

namespace mkss::io {

std::string trace_to_json(const sim::SimulationTrace& trace,
                          const core::TaskSet& ts) {
  JsonWriter w;
  w.begin_object(JsonWriter::Scope::kBlock);
  w.key("horizon_ms");
  w.fixed(core::to_ms(trace.horizon), 3);

  w.key("tasks");
  w.begin_array(JsonWriter::Scope::kBlock);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const core::Task& t = ts[i];
    w.begin_object();
    w.key("name");
    w.string(t.name);
    w.key("period_ms");
    w.fixed(core::to_ms(t.period), 3);
    w.key("deadline_ms");
    w.fixed(core::to_ms(t.deadline), 3);
    w.key("wcet_ms");
    w.fixed(core::to_ms(t.wcet), 3);
    w.key("m");
    w.u64(t.m);
    w.key("k");
    w.u64(t.k);
    w.end_object();
  }
  w.end_array();

  w.key("segments");
  w.begin_array(JsonWriter::Scope::kBlock);
  for (const sim::ExecSegment& s : trace.segments) {
    w.begin_object();
    w.key("proc");
    w.u64(s.proc);
    w.key("task");
    w.u64(s.job.task + 1);
    w.key("job");
    w.u64(s.job.job);
    w.key("kind");
    w.string(sim::to_string(s.kind));
    w.key("begin_ms");
    w.fixed(core::to_ms(s.span.begin), 3);
    w.key("end_ms");
    w.fixed(core::to_ms(s.span.end), 3);
    w.key("frequency");
    w.fixed(s.frequency, 3);
    w.end_object();
  }
  w.end_array();

  w.key("jobs");
  w.begin_array(JsonWriter::Scope::kBlock);
  for (const sim::JobRecord& j : trace.jobs) {
    w.begin_object();
    w.key("task");
    w.u64(j.job.id.task + 1);
    w.key("job");
    w.u64(j.job.id.job);
    w.key("release_ms");
    w.fixed(core::to_ms(j.job.release), 3);
    w.key("deadline_ms");
    w.fixed(core::to_ms(j.job.deadline), 3);
    w.key("mandatory");
    w.boolean(j.mandatory);
    w.key("executed_optional");
    w.boolean(j.executed_optional);
    w.key("outcome");
    w.string(!j.resolved
                 ? "pending"
                 : (j.outcome == core::JobOutcome::kMet ? "met" : "missed"));
    w.key("resolved_at_ms");
    w.fixed(core::to_ms(j.resolved_at), 3);
    w.key("main_fault");
    w.boolean(j.main_transient_fault);
    w.key("backup_fault");
    w.boolean(j.backup_transient_fault);
    w.end_object();
  }
  w.end_array();

  w.key("copies");
  w.begin_array(JsonWriter::Scope::kBlock);
  for (const sim::CopyRecord& c : trace.copies) {
    w.begin_object();
    w.key("task");
    w.u64(c.job.task + 1);
    w.key("job");
    w.u64(c.job.job);
    w.key("kind");
    w.string(sim::to_string(c.kind));
    w.key("proc");
    w.u64(c.proc);
    w.key("band");
    w.string(c.band == sim::Band::kMandatory ? "mandatory" : "optional");
    w.key("admitted_ms");
    w.fixed(core::to_ms(c.admitted), 3);
    w.key("eligible_ms");
    w.fixed(core::to_ms(c.eligible), 3);
    w.key("work_ms");
    w.fixed(core::to_ms(c.work), 3);
    w.key("ended_ms");
    w.fixed(core::to_ms(c.ended), 3);
    w.key("end");
    w.string(sim::to_string(c.end));
    w.key("transient_fault");
    w.boolean(c.transient_fault);
    w.end_object();
  }
  w.end_array();

  w.key("death_time_ms");
  w.begin_array();
  for (const core::Ticks t : trace.death_time) w.ms_or_null(t);
  w.end_array();

  const sim::SimStats& st = trace.stats;
  w.key("stats");
  w.begin_object();
  w.key("jobs_released");
  w.u64(st.jobs_released);
  w.key("mandatory_jobs");
  w.u64(st.mandatory_jobs);
  w.key("optional_selected");
  w.u64(st.optional_selected);
  w.key("optional_skipped");
  w.u64(st.optional_skipped);
  w.key("backups_created");
  w.u64(st.backups_created);
  w.key("backups_canceled");
  w.u64(st.backups_canceled);
  w.key("transient_faults");
  w.u64(st.transient_faults);
  w.key("jobs_met");
  w.u64(st.jobs_met);
  w.key("jobs_missed");
  w.u64(st.jobs_missed);
  w.key("mandatory_misses");
  w.u64(st.mandatory_misses);
  w.end_object();

  w.end_object();
  return w.take() + "\n";
}

}  // namespace mkss::io
