#include "io/repro_bundle.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace mkss::io {

namespace {

constexpr const char* kHeader = "# mkss repro bundle v1";

/// Strict unsigned integer; throws ParseError naming the key.
std::uint64_t parse_key_u64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || value[0] == '-' || end == value.c_str() ||
      *end != '\0' || errno == ERANGE) {
    throw ParseError("repro bundle: key '" + key +
                     "' wants a non-negative integer, got '" + value + "'");
  }
  return static_cast<std::uint64_t>(v);
}

/// Strict signed integer (tick values).
std::int64_t parse_key_i64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end == value.c_str() || *end != '\0' ||
      errno == ERANGE) {
    throw ParseError("repro bundle: key '" + key + "' wants an integer, got '" +
                     value + "'");
  }
  return static_cast<std::int64_t>(v);
}

/// Strict double; %a-formatted hex floats round-trip exactly through here.
double parse_key_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == value.c_str() || *end != '\0') {
    throw ParseError("repro bundle: key '" + key + "' wants a number, got '" +
                     value + "'");
  }
  return v;
}

/// Embeds a possibly multi-line message in the comment block: every newline
/// continues as a fresh comment line, so the bundle stays a parseable
/// task-set file no matter what an audit report contains.
std::string comment_escape(std::string message) {
  for (std::size_t pos = 0;
       (pos = message.find('\n', pos)) != std::string::npos; pos += 3) {
    message.replace(pos, 1, "\n# ");
  }
  return message;
}

}  // namespace

std::string serialize_repro_bundle(const ReproBundle& bundle) {
  std::ostringstream out;
  out << kHeader << "\n";
  if (!bundle.verdict.empty()) out << "# verdict: " << bundle.verdict << "\n";
  out << "# scheme: " << bundle.scheme << "\n"
      << "# procs: " << bundle.procs << "\n"
      << "# roles: " << bundle.roles << "\n"
      << "# stream-version: " << bundle.stream_version << "\n"
      << "# horizon-ticks: " << bundle.horizon << "\n"
      << "# plan: " << (bundle.scenario_plan ? "scenario" : "explicit") << "\n";
  if (bundle.scenario_plan) {
    char lambda[64];
    std::snprintf(lambda, sizeof lambda, "%a", bundle.lambda_per_ms);
    out << "# scenario: " << bundle.scenario << "\n"
        << "# lambda-per-ms: " << lambda << "\n"
        << "# fault-seed: " << bundle.fault_seed << "\n";
  } else {
    if (bundle.permanent) {
      out << "# permanent: " << static_cast<unsigned>(bundle.permanent->proc)
          << "@" << bundle.permanent->time << "\n";
    }
    for (const ReproTransient& t : bundle.transients) {
      out << "# transient: " << t.task << " " << t.job << " " << t.slot
          << "\n";
    }
  }
  if (!bundle.error.empty()) {
    out << "# error: " << comment_escape(bundle.error) << "\n";
  }
  out << serialize_taskset(bundle.ts);
  return out.str();
}

ReproBundle parse_repro_bundle_string(const std::string& text) {
  ReproBundle bundle;
  bundle.procs = 0;
  bundle.roles.clear();
  bundle.stream_version = 0;
  bool saw_header = false;
  bool saw_plan = false;
  bool saw_stream_version = false;

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '#') continue;
    std::string body = line.substr(1);
    if (!body.empty() && body[0] == ' ') body = body.substr(1);
    if (line == kHeader) {
      saw_header = true;
      continue;
    }
    const std::size_t colon = body.find(": ");
    if (colon == std::string::npos) continue;
    const std::string key = body.substr(0, colon);
    const std::string value = body.substr(colon + 2);
    if (key == "verdict" && bundle.verdict.empty()) {
      bundle.verdict = value;
    } else if (key == "scheme" && bundle.scheme.empty()) {
      bundle.scheme = value;
    } else if (key == "procs" && bundle.procs == 0) {
      bundle.procs = static_cast<std::size_t>(parse_key_u64(key, value));
    } else if (key == "roles" && bundle.roles.empty()) {
      bundle.roles = value;
    } else if (key == "stream-version" && !saw_stream_version) {
      bundle.stream_version =
          static_cast<std::uint32_t>(parse_key_u64(key, value));
      saw_stream_version = true;
    } else if (key == "horizon-ticks" && bundle.horizon == 0) {
      bundle.horizon = parse_key_i64(key, value);
    } else if (key == "plan" && !saw_plan) {
      if (value == "explicit") {
        bundle.scenario_plan = false;
      } else if (value == "scenario") {
        bundle.scenario_plan = true;
      } else {
        throw ParseError("repro bundle: unknown plan dialect '" + value + "'");
      }
      saw_plan = true;
    } else if (key == "permanent" && !bundle.permanent) {
      const std::size_t at = value.find('@');
      if (at == std::string::npos) {
        throw ParseError("repro bundle: permanent wants proc@ticks, got '" +
                         value + "'");
      }
      const std::uint64_t proc = parse_key_u64(key, value.substr(0, at));
      const std::int64_t time = parse_key_i64(key, value.substr(at + 1));
      if (proc > 255 || time < 0) {
        throw ParseError("repro bundle: permanent fault '" + value +
                         "' is out of range");
      }
      bundle.permanent =
          sim::PermanentFault{static_cast<sim::ProcessorId>(proc), time};
    } else if (key == "transient") {
      unsigned long long task = 0, job = 0;
      int slot = -1;
      if (std::sscanf(value.c_str(), "%llu %llu %d", &task, &job, &slot) != 3) {
        throw ParseError("repro bundle: transient wants 'task job slot', got '" +
                         value + "'");
      }
      bundle.transients.push_back({static_cast<core::TaskIndex>(task),
                                   static_cast<std::uint64_t>(job), slot});
    } else if (key == "scenario" && bundle.scenario.empty()) {
      bundle.scenario = value;
    } else if (key == "lambda-per-ms") {
      bundle.lambda_per_ms = parse_key_double(key, value);
    } else if (key == "fault-seed") {
      bundle.fault_seed = parse_key_u64(key, value);
    } else if (key == "error" && bundle.error.empty()) {
      bundle.error = value;
    }
    // Unknown keys (and error-message continuation lines that happen to
    // contain a colon) are plain comments: ignored.
  }

  if (!saw_header) {
    throw ParseError(std::string("repro bundle: missing '") + kHeader +
                     "' header line");
  }
  if (bundle.scheme.empty()) {
    throw ParseError("repro bundle: missing 'scheme' (the registry name)");
  }
  if (bundle.procs < 2 || bundle.procs > 255) {
    throw ParseError("repro bundle: 'procs' must be in [2, 255]");
  }
  if (bundle.roles.size() != bundle.procs) {
    throw ParseError("repro bundle: roles '" + bundle.roles + "' names " +
                     std::to_string(bundle.roles.size()) +
                     " processor(s) but procs is " +
                     std::to_string(bundle.procs));
  }
  for (const char c : bundle.roles) {
    if (c != 'W' && c != 'S') {
      throw ParseError(std::string("repro bundle: unknown role character '") +
                       c + "' (want W or S)");
    }
  }
  if (!saw_stream_version || bundle.stream_version != 2) {
    throw ParseError(
        "repro bundle: unsupported stream-version " +
        std::to_string(bundle.stream_version) +
        " (this build replays stream version 2 only; regenerate the bundle)");
  }
  if (bundle.horizon <= 0) {
    throw ParseError("repro bundle: missing or non-positive 'horizon-ticks'");
  }
  if (!saw_plan) {
    throw ParseError("repro bundle: missing 'plan' (explicit or scenario)");
  }
  if (bundle.scenario_plan) {
    if (bundle.scenario.empty()) {
      throw ParseError("repro bundle: scenario plan without 'scenario' token");
    }
    if (bundle.lambda_per_ms < 0) {
      throw ParseError("repro bundle: negative 'lambda-per-ms'");
    }
    if (bundle.permanent || !bundle.transients.empty()) {
      throw ParseError(
          "repro bundle: scenario plan must not carry explicit fault lines");
    }
  } else if (!bundle.scenario.empty()) {
    throw ParseError(
        "repro bundle: explicit plan must not carry a 'scenario' token");
  }

  bundle.ts = parse_taskset_string(text);
  if (bundle.ts.empty()) {
    throw ParseError("repro bundle: no task set after the metadata block");
  }
  if (bundle.permanent && bundle.permanent->proc >= bundle.procs) {
    throw ParseError("repro bundle: permanent fault names processor " +
                     std::to_string(bundle.permanent->proc) +
                     " on a platform of " + std::to_string(bundle.procs));
  }
  for (const ReproTransient& t : bundle.transients) {
    if (t.task >= bundle.ts.size() || t.job < 1 ||
        (t.slot != 0 && t.slot != 1)) {
      throw ParseError("repro bundle: transient (task " +
                       std::to_string(t.task) + ", job " +
                       std::to_string(t.job) + ", slot " +
                       std::to_string(t.slot) +
                       ") is outside the task set / replica slots");
    }
  }
  return bundle;
}

ReproBundle parse_repro_bundle_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("cannot open repro bundle '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_repro_bundle_string(text.str());
  } catch (const ParseError& e) {
    throw ParseError(path + ": " + e.what());
  }
}

sim::PlatformSpec repro_platform(const ReproBundle& bundle) {
  sim::PlatformSpec platform;
  platform.roles.clear();
  for (const char c : bundle.roles) {
    platform.roles.push_back(c == 'S' ? sim::ProcRole::kStandby
                                      : sim::ProcRole::kWorker);
  }
  return platform;
}

}  // namespace mkss::io
