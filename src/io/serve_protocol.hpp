// Wire protocol of the admission service (`mkss_cli serve`).
//
// Transport is newline-delimited JSON: one request object per line in, one
// response object per line out, answered in request order. A request names
// the analysis it wants (`type`, today only "admission" -- future analysis
// kinds become new request types, not new endpoints), the task set (inline
// in the io::taskset_io text dialect or by file path), the scheme (resolved
// through sched::Registry), the platform size, and the fault scenario:
//
//   {"v": 1, "id": "r1", "taskset": "control 5 4 3 2 4\nvideo 10 10 3 1 2\n",
//    "scheme": "selective", "procs": 2, "horizon_ms": 100,
//    "permanent": {"proc": 0, "at_ms": 7}, "lambda_per_ms": 1e-6,
//    "seed": 42, "audit": true}
//
// The response carries the staged admission verdict (analysis/admission),
// the simulated (m,k)/energy statistics, and -- on failure -- a structured
// error with a *stable machine-readable code* instead of killing the
// server. The codes mirror the CLI exit-code contract (2 usage, 3 bad
// input, 4 audit violation), so a client can treat the service and the CLI
// uniformly:
//
//   parse-error / bad-request / unknown-scheme / envelope-violation -> 2
//   bad-input                                                       -> 3
//   audit-violation                                                 -> 4
//   internal-error                                                  -> 1
//
// Parsing is strict: unknown fields, wrong types, out-of-range values and
// unsupported protocol versions are all rejected loudly (a typo that would
// silently change a workload is worse than an error response). The `id` is
// still echoed back whenever it could be extracted, so clients can
// correlate errors.
//
// This header also exposes the minimal JSON value parser the codec is built
// on (objects, arrays, strings with escapes, numbers, bools, null); it is
// deliberately tiny and allocation-honest rather than fast -- requests are
// a few hundred bytes and the simulation dominates.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/admission.hpp"
#include "core/time.hpp"
#include "sim/fault_plan.hpp"

namespace mkss::io {

// --- Minimal JSON value model --------------------------------------------

struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind{Kind::kNull};
  bool boolean{false};
  double number{0};
  std::string string;
  std::vector<JsonValue> items;                             ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;   ///< kObject

  /// First member with `key`, or nullptr (objects preserve input order).
  const JsonValue* find(std::string_view key) const;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
/// On failure returns nullopt and sets `error` to a position-annotated
/// message.
std::optional<JsonValue> parse_json(std::string_view text, std::string* error);

// --- Stable error codes ---------------------------------------------------

inline constexpr const char* kServeCodeParse = "parse-error";
inline constexpr const char* kServeCodeBadRequest = "bad-request";
inline constexpr const char* kServeCodeUnknownScheme = "unknown-scheme";
inline constexpr const char* kServeCodeEnvelope = "envelope-violation";
inline constexpr const char* kServeCodeBadInput = "bad-input";
inline constexpr const char* kServeCodeAuditViolation = "audit-violation";
inline constexpr const char* kServeCodeInternal = "internal-error";

/// The CLI exit code a serve error code mirrors (2/3/4; internal-error -> 1,
/// ok/empty -> 0). Documentation of the contract, enforced by tests.
int serve_code_exit(std::string_view code);

// --- Requests -------------------------------------------------------------

struct ServeRequest {
  std::uint32_t v{1};          ///< protocol version; 1 is the only one
  std::string id;              ///< client correlation id, echoed back
  std::string type{"admission"};
  std::string taskset;         ///< inline task-set text (io::taskset_io)
  std::string taskset_path;    ///< ...or a corpus file path (exactly one)
  std::string scheme{"selective"};
  std::size_t procs{2};
  core::Ticks horizon{0};      ///< 0 = harness::choose_horizon
  std::optional<sim::PermanentFault> permanent;
  double lambda_per_ms{0};
  std::uint64_t seed{1};
  bool audit{true};            ///< attach the trace auditor to the run
  bool timing{false};          ///< include wall_us in the response (forfeits
                               ///< byte-identity across runs, never across
                               ///< worker counts -- ordering is strict)
};

/// Outcome of decoding one request line. When `error_code` is non-empty the
/// request is unusable, but `req.id` is still populated whenever the line
/// parsed far enough to extract it.
struct ServeRequestParse {
  ServeRequest req;
  std::string error_code;     ///< empty = ok
  std::string error_message;
};

ServeRequestParse parse_serve_request(std::string_view line);

/// Renders `req` as one JSONL line (no trailing newline); parses back
/// field-identically through parse_serve_request. Load generators build
/// their replayable request files with this.
std::string serialize_serve_request(const ServeRequest& req);

// --- Responses ------------------------------------------------------------

struct ServeResponse {
  std::string id;             ///< echoed; empty renders as null
  bool ok{false};
  std::string error_code;     ///< one of the kServeCode* constants
  std::string error_message;

  bool has_admission{false};
  analysis::AdmissionVerdict admission{};

  bool has_simulation{false};
  std::string scheme;
  std::size_t procs{2};
  core::Ticks horizon{0};
  bool audited{false};
  bool mk_satisfied{false};
  std::uint64_t mandatory_misses{0};
  std::uint64_t jobs_released{0};
  std::uint64_t jobs_met{0};
  std::uint64_t jobs_missed{0};
  std::uint64_t backups_canceled{0};
  double energy_total{0};
  double energy_active{0};

  std::optional<double> wall_us;  ///< only when the request asked for timing
};

/// Stable wire token for an admission stage ("exact-accept" etc.).
const char* to_string(analysis::AdmissionStage stage);

/// Renders one JSONL response line (no trailing newline).
std::string serialize_serve_response(const ServeResponse& r);

}  // namespace mkss::io
