// JSON export of simulation traces, for external plotting / visualization
// (e.g. feeding a web-based Gantt viewer). Self-contained writer -- no JSON
// library dependency.
#pragma once

#include <string>

#include "core/task.hpp"
#include "sim/types.hpp"

namespace mkss::io {

/// Serializes the trace as a single JSON object:
/// {
///   "horizon_ms": ..., "tasks": [...], "segments": [...], "jobs": [...],
///   "stats": {...}, "death_time_ms": [...]
/// }
/// Times are milliseconds (doubles).
std::string trace_to_json(const sim::SimulationTrace& trace,
                          const core::TaskSet& ts);

}  // namespace mkss::io
