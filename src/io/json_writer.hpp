// One JSON emission path for the whole repo.
//
// Four hand-rolled emitters used to build JSON by string concatenation --
// the trace exporter, the serve wire protocol, and the BENCH_*.json writers
// in bench/perf_{sweep,engine,gen} -- each with its own escaping and number
// habits. JsonWriter centralizes the three policies that must not drift:
//
//   * string escaping (", \, control characters);
//   * tick-exact fixed-point numbers: ticks render as "%lld.%03lld" ms (the
//     io::serialize_taskset policy -- round-trips exactly), trace-style ms
//     render via fixed(to_ms(t), 3) which is equally exact on the 1000
//     ticks/ms grid;
//   * "%a" hex-float for doubles that must reproduce bit-for-bit (corpus
//     manifest keys, repro bundles record lambda this way).
//
// Layout is scope-based so the migrated emitters stay byte-identical to
// their hand-rolled predecessors (the golden-trace tests enforce this for
// trace_json): every object/array is either
//
//   * kInline -- `{"a": 1, "b": 2}` on one line, ", " separators; or
//   * kBlock  -- one item per line, each indented two spaces per depth,
//     separators `,\n`, closer on its own line at the parent's indent.
//
// A kBlock scope renders `[\n  ]` when empty (matching the historical
// loop-over-nothing emitters); kInline renders `[]`. The writer is
// append-only into an owned string; take() moves the result out. Scope
// misuse (closing the wrong scope, a value without a key inside an object)
// trips MKSS_CHECK.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/time.hpp"

namespace mkss::io {

/// Escapes `s` for a JSON string literal: ", \ and \n (the historical
/// trace_json policy) plus \r, \t and \u00XX for the remaining control
/// characters, so any error message is wire-safe.
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  enum class Scope : std::uint8_t { kInline, kBlock };

  /// Begins the root value or the next element/member value.
  void begin_object(Scope style = Scope::kInline);
  void end_object();
  void begin_array(Scope style = Scope::kInline);
  void end_array();

  /// Emits `"name": ` inside an object (separator included); the next
  /// value/begin call is its value.
  void key(std::string_view name);

  void string(std::string_view v);
  void boolean(bool v);
  void null();
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// Fixed-point decimal with `decimals` digits ("%.*f").
  void fixed(double v, int decimals);
  /// Bit-exact hex-float ("%a").
  void hex(double v);
  /// Tick-exact milliseconds, the serialize_taskset "%lld.%03lld" policy
  /// (always three fractional digits, round-trips through from_ms exactly).
  void ticks_ms(core::Ticks t);
  /// Trace-dialect milliseconds: fixed(to_ms(t), 3), or null for kNever.
  void ms_or_null(core::Ticks t);
  /// Escape hatch: verbatim bytes as one value (still separator-managed).
  void raw(std::string_view v);

  /// The buffer so far (all scopes need not be closed yet).
  const std::string& str() const noexcept { return out_; }
  /// Moves the finished document out; MKSS_CHECKs every scope was closed.
  std::string take();

 private:
  void begin_value();
  void open(char c, Scope style);
  void close(char c);

  struct Frame {
    Scope style{Scope::kInline};
    bool is_object{false};
    bool has_items{false};
  };

  std::string out_;
  std::vector<Frame> stack_;
  bool key_pending_{false};
};

}  // namespace mkss::io
