#include "io/json_writer.hpp"

#include <cinttypes>
#include <cstdio>

#include "core/check.hpp"

namespace mkss::io {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void indent_to(std::string& out, std::size_t depth) {
  out.append(2 * depth, ' ');
}

}  // namespace

/// Separator bookkeeping shared by keys and array elements: inside a kBlock
/// scope every item starts on its own line at depth indent; inside kInline
/// items are ", "-separated. A value that follows a key() emits nothing --
/// the key already placed the separator.
void JsonWriter::begin_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (stack_.empty()) return;  // root value
  Frame& top = stack_.back();
  MKSS_CHECK(!top.is_object, "JsonWriter: value inside an object needs key()");
  if (top.style == Scope::kBlock) {
    out_ += top.has_items ? ",\n" : "\n";
    indent_to(out_, stack_.size());
  } else if (top.has_items) {
    out_ += ", ";
  }
  top.has_items = true;
}

void JsonWriter::key(std::string_view name) {
  MKSS_CHECK(!stack_.empty() && stack_.back().is_object,
             "JsonWriter: key() outside an object");
  MKSS_CHECK(!key_pending_, "JsonWriter: key() while a value is pending");
  Frame& top = stack_.back();
  if (top.style == Scope::kBlock) {
    out_ += top.has_items ? ",\n" : "\n";
    indent_to(out_, stack_.size());
  } else if (top.has_items) {
    out_ += ", ";
  }
  top.has_items = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\": ";
  key_pending_ = true;
}

void JsonWriter::open(char c, Scope style) {
  begin_value();
  out_ += c;
  stack_.push_back({style, c == '{', false});
}

void JsonWriter::close(char c) {
  MKSS_CHECK(!stack_.empty(), "JsonWriter: close without open");
  MKSS_CHECK(!key_pending_, "JsonWriter: close with a dangling key");
  const Frame top = stack_.back();
  MKSS_CHECK(top.is_object == (c == '}'), "JsonWriter: mismatched close");
  stack_.pop_back();
  if (top.style == Scope::kBlock) {
    // Matches the historical loop emitters: `[\n  ]` even when empty.
    out_ += '\n';
    indent_to(out_, stack_.size());
  }
  out_ += c;
}

void JsonWriter::begin_object(Scope style) { open('{', style); }
void JsonWriter::end_object() { close('}'); }
void JsonWriter::begin_array(Scope style) { open('[', style); }
void JsonWriter::end_array() { close(']'); }

void JsonWriter::string(std::string_view v) {
  begin_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::boolean(bool v) {
  begin_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  begin_value();
  out_ += "null";
}

void JsonWriter::u64(std::uint64_t v) {
  begin_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
}

void JsonWriter::i64(std::int64_t v) {
  begin_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
}

void JsonWriter::fixed(double v, int decimals) {
  begin_value();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  out_ += buf;
}

void JsonWriter::hex(double v) {
  begin_value();
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  out_ += buf;
}

void JsonWriter::ticks_ms(core::Ticks t) {
  begin_value();
  const char* sign = t < 0 ? "-" : "";
  const core::Ticks a = t < 0 ? -t : t;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s%lld.%03lld", sign,
                static_cast<long long>(a / core::kTicksPerMs),
                static_cast<long long>(a % core::kTicksPerMs));
  out_ += buf;
}

void JsonWriter::ms_or_null(core::Ticks t) {
  if (t == core::kNever) {
    null();
  } else {
    fixed(core::to_ms(t), 3);
  }
}

void JsonWriter::raw(std::string_view v) {
  begin_value();
  out_ += v;
}

std::string JsonWriter::take() {
  MKSS_CHECK(stack_.empty() && !key_pending_,
             "JsonWriter: take() with unclosed scopes");
  return std::move(out_);
}

}  // namespace mkss::io
