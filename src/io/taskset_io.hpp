// Plain-text task-set files, so workloads can be versioned and fed to the
// CLI without recompiling.
//
// Format: one task per line, '#' comments, blank lines ignored.
//
//     # name  period  deadline  wcet  m  k      (times in ms, fractions ok)
//     control 5       4         3     2  4
//     video   10      10        3     1  2
//
// Tasks are prioritized in file order (first line == highest priority),
// matching the paper's convention.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/task.hpp"

namespace mkss::io {

/// Thrown by the parsers on malformed input (still a std::runtime_error, so
/// existing catch sites keep working); carries a line-numbered message. The
/// CLI maps it to its dedicated input-error exit code.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a task set; throws ParseError with a line-numbered message on
/// malformed input (non-numeric, NaN/Inf, non-positive or overflowing
/// values, trailing garbage) or invalid task parameters.
core::TaskSet parse_taskset(std::istream& in);

/// Convenience: parse from a string.
core::TaskSet parse_taskset_string(const std::string& text);

/// Convenience: parse from a file path.
core::TaskSet parse_taskset_file(const std::string& path);

/// Serializes a task set back to the text format (round-trips through
/// parse_taskset_string).
std::string serialize_taskset(const core::TaskSet& ts);

}  // namespace mkss::io
