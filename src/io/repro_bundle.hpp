// Self-contained repro bundles for quarantined runs.
//
// A bundle is a plain-text file that records the *full reproduction key* of
// one failed simulation run -- the task set, the registry scheme name, the
// platform (processor count + roles), the RNG stream version, the horizon,
// and the fault plan -- so `mkss_cli replay <bundle>` can re-run it audited
// with zero extra context. All metadata lives in `#` comment lines above the
// serialized task set, so every bundle is *also* a valid task-set file:
// io::parse_taskset_file(bundle) round-trips the embedded set, which is what
// keeps bundles usable with `mkss_cli simulate/analyze` directly.
//
// Two fault-plan dialects share the format:
//   * `plan: explicit`  -- a spelled-out permanent fault and/or transient
//     hit list (fuzz cases, shrunk minimal repros, campaign placements);
//   * `plan: scenario`  -- a stochastic plan named by (scenario token,
//     lambda, fault seed); replay reconstructs it through
//     fault::make_scenario_plan exactly like the sweep harness did.
//
// parse_repro_bundle validates the key loudly (missing fields, role/count
// mismatches, out-of-range fault targets, unsupported stream versions all
// throw ParseError) -- a bundle that parses is a bundle that replays.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/task.hpp"
#include "core/time.hpp"
#include "io/taskset_io.hpp"
#include "sim/fault_plan.hpp"
#include "sim/types.hpp"

namespace mkss::io {

/// One explicit transient hit: the copy of job `job` (1-based) of task
/// `task` in replica slot `slot` (0 = main/optional, 1 = backup).
struct ReproTransient {
  core::TaskIndex task{0};
  std::uint64_t job{1};
  int slot{0};

  friend bool operator==(const ReproTransient&, const ReproTransient&) = default;
};

struct ReproBundle {
  /// Why the run was quarantined: "audit-violation", "exception", "timeout",
  /// or a harness-specific tag. Informational; replay derives its own.
  std::string verdict;
  /// Registry name of the scheme (sched::Registry), e.g. "st".
  std::string scheme;
  /// Platform: processor count plus one role character per processor
  /// ('W' = worker, 'S' = standby), e.g. "WS" for the paper's dual platform.
  std::size_t procs{2};
  std::string roles{"WS"};
  /// workload::GenParams::stream_version the producing harness ran with.
  std::uint32_t stream_version{2};
  core::Ticks horizon{0};

  /// Dialect switch: false = explicit plan, true = scenario plan.
  bool scenario_plan{false};
  // -- explicit dialect --
  std::optional<sim::PermanentFault> permanent;
  std::vector<ReproTransient> transients;  ///< sorted (task, job, slot)
  // -- scenario dialect --
  std::string scenario;     ///< fault::to_string(Scenario) token
  double lambda_per_ms{0};  ///< transient rate of the scenario
  std::uint64_t fault_seed{0};  ///< seed of the plan's Rng (stream_seed(...))

  /// First line(s) of the original failure message.
  std::string error;
  core::TaskSet ts;
};

/// Renders the bundle. The result parses back bit-identically through
/// parse_repro_bundle_string, and its tail is exactly serialize_taskset(ts).
std::string serialize_repro_bundle(const ReproBundle& bundle);

/// Parses and validates a bundle; throws ParseError on any missing or
/// inconsistent reproduction-key field.
ReproBundle parse_repro_bundle_string(const std::string& text);
ReproBundle parse_repro_bundle_file(const std::string& path);

/// Platform spec encoded by the bundle's roles string.
sim::PlatformSpec repro_platform(const ReproBundle& bundle);

}  // namespace mkss::io
