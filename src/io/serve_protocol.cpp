#include "io/serve_protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "io/json_writer.hpp"

namespace mkss::io {

// --- JSON parser ----------------------------------------------------------

namespace {

/// Recursive-descent parser over a string_view. Depth-capped so a hostile
/// "[[[[..." line cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!parse_value(v, 0)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& msg) {
    if (error_.empty()) error_ = msg + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point. Surrogate pairs are not needed
          // by this protocol; a lone surrogate encodes byte-wise as-is.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    // The strict JSON grammar -- no leading '+', no leading zeros, no hex,
    // no bare '.': -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    const std::size_t start = pos_;
    const auto digit = [&](std::size_t p) {
      return p < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[p])) != 0;
    };
    std::size_t p = pos_;
    if (p < text_.size() && text_[p] == '-') ++p;
    if (!digit(p)) return fail("invalid number");
    if (text_[p] == '0') {
      ++p;
    } else {
      while (digit(p)) ++p;
    }
    if (p < text_.size() && text_[p] == '.') {
      ++p;
      if (!digit(p)) return fail("invalid number");
      while (digit(p)) ++p;
    }
    if (p < text_.size() && (text_[p] == 'e' || text_[p] == 'E')) {
      ++p;
      if (p < text_.size() && (text_[p] == '+' || text_[p] == '-')) ++p;
      if (!digit(p)) return fail("invalid number");
      while (digit(p)) ++p;
    }
    const std::string token(text_.substr(start, p - start));
    const double v = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v)) {
      return fail("number out of range");
    }
    pos_ = p;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': {
        ++pos_;
        out.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return fail("expected ':'");
          }
          ++pos_;
          JsonValue member;
          if (!parse_value(member, depth + 1)) return false;
          out.members.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        out.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue item;
          if (!parse_value(item, depth + 1)) return false;
          out.items.push_back(std::move(item));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return JsonParser(text).parse(error);
}

// --- Stable error codes ---------------------------------------------------

int serve_code_exit(std::string_view code) {
  if (code.empty()) return 0;
  if (code == kServeCodeParse || code == kServeCodeBadRequest ||
      code == kServeCodeUnknownScheme || code == kServeCodeEnvelope) {
    return 2;
  }
  if (code == kServeCodeBadInput) return 3;
  if (code == kServeCodeAuditViolation) return 4;
  return 1;  // internal-error and anything unrecognized
}

// --- Request decoding -----------------------------------------------------

namespace {

/// Thrown internally while decoding a request; carries the stable code.
struct RequestError {
  const char* code;
  std::string message;
};

[[noreturn]] void bad(const char* code, std::string message) {
  throw RequestError{code, std::move(message)};
}

const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

const JsonValue& expect(const JsonValue& v, std::string_view field,
                        JsonValue::Kind kind) {
  if (v.kind != kind) {
    bad(kServeCodeBadRequest, "field '" + std::string(field) + "' wants " +
                                  kind_name(kind) + ", got " +
                                  kind_name(v.kind));
  }
  return v;
}

std::uint64_t expect_u64(const JsonValue& v, std::string_view field,
                         std::uint64_t max) {
  expect(v, field, JsonValue::Kind::kNumber);
  const double n = v.number;
  if (!(n >= 0) || n != std::floor(n) || n > static_cast<double>(max)) {
    bad(kServeCodeBadRequest, "field '" + std::string(field) +
                                  "' wants an integer in [0, " +
                                  std::to_string(max) + "]");
  }
  return static_cast<std::uint64_t>(n);
}

sim::PermanentFault decode_permanent(const JsonValue& v) {
  expect(v, "permanent", JsonValue::Kind::kObject);
  const JsonValue* proc = v.find("proc");
  const JsonValue* at = v.find("at_ms");
  if (proc == nullptr || at == nullptr || v.members.size() != 2) {
    bad(kServeCodeBadRequest,
        "field 'permanent' wants exactly {\"proc\": n, \"at_ms\": t}");
  }
  sim::PermanentFault f;
  f.proc = static_cast<sim::ProcessorId>(expect_u64(*proc, "permanent.proc", 254));
  expect(*at, "permanent.at_ms", JsonValue::Kind::kNumber);
  if (!(at->number >= 0) || at->number > 1e12) {
    bad(kServeCodeBadRequest,
        "field 'permanent.at_ms' wants a non-negative duration in ms");
  }
  f.time = core::from_ms(at->number);
  return f;
}

void decode_into(const JsonValue& root, ServeRequest& req) {
  expect(root, "request", JsonValue::Kind::kObject);

  // Echo the id into the request before any validation can throw, so error
  // responses still correlate whenever the id itself was well-formed.
  const JsonValue* id = root.find("id");
  if (id != nullptr && id->kind == JsonValue::Kind::kString) {
    req.id = id->string;
  }

  const JsonValue* v = root.find("v");
  if (v == nullptr) bad(kServeCodeBadRequest, "missing protocol field 'v'");
  if (expect_u64(*v, "v", 0xFFFFFFFFu) != 1) {
    bad(kServeCodeBadRequest,
        "unsupported protocol version (this server speaks v=1)");
  }
  if (id == nullptr) bad(kServeCodeBadRequest, "missing field 'id'");
  expect(*id, "id", JsonValue::Kind::kString);

  for (const auto& [key, value] : root.members) {
    if (key == "v" || key == "id") {
      continue;
    } else if (key == "type") {
      expect(value, key, JsonValue::Kind::kString);
      if (value.string != "admission") {
        bad(kServeCodeBadRequest, "unknown request type '" + value.string +
                                      "' (available: admission)");
      }
      req.type = value.string;
    } else if (key == "taskset") {
      expect(value, key, JsonValue::Kind::kString);
      req.taskset = value.string;
    } else if (key == "taskset_path") {
      expect(value, key, JsonValue::Kind::kString);
      req.taskset_path = value.string;
    } else if (key == "scheme") {
      expect(value, key, JsonValue::Kind::kString);
      req.scheme = value.string;
    } else if (key == "procs") {
      const std::uint64_t n = expect_u64(value, key, 255);
      if (n < 2) {
        bad(kServeCodeBadRequest,
            "field 'procs' wants a platform size in [2, 255]");
      }
      req.procs = static_cast<std::size_t>(n);
    } else if (key == "horizon_ms") {
      expect(value, key, JsonValue::Kind::kNumber);
      if (!(value.number > 0) || value.number > 1e12) {
        bad(kServeCodeBadRequest,
            "field 'horizon_ms' wants a positive duration in ms");
      }
      req.horizon = core::from_ms(value.number);
    } else if (key == "permanent") {
      req.permanent = decode_permanent(value);
    } else if (key == "lambda_per_ms") {
      expect(value, key, JsonValue::Kind::kNumber);
      if (!(value.number >= 0)) {
        bad(kServeCodeBadRequest,
            "field 'lambda_per_ms' wants a non-negative rate");
      }
      req.lambda_per_ms = value.number;
    } else if (key == "seed") {
      // 2^53: the largest integer a JSON number carries exactly.
      req.seed = expect_u64(value, key, std::uint64_t{1} << 53);
    } else if (key == "audit") {
      expect(value, key, JsonValue::Kind::kBool);
      req.audit = value.boolean;
    } else if (key == "timing") {
      expect(value, key, JsonValue::Kind::kBool);
      req.timing = value.boolean;
    } else {
      bad(kServeCodeBadRequest, "unknown request field '" + key + "'");
    }
  }

  if (req.taskset.empty() == req.taskset_path.empty()) {
    bad(kServeCodeBadRequest,
        "request wants exactly one of 'taskset' (inline text) or "
        "'taskset_path'");
  }
}

}  // namespace

ServeRequestParse parse_serve_request(std::string_view line) {
  ServeRequestParse out;
  std::string error;
  const std::optional<JsonValue> root = parse_json(line, &error);
  if (!root) {
    out.error_code = kServeCodeParse;
    out.error_message = "malformed JSON: " + error;
    return out;
  }
  try {
    decode_into(*root, out.req);
  } catch (const RequestError& e) {
    out.error_code = e.code;
    out.error_message = e.message;
  }
  return out;
}

std::string serialize_serve_request(const ServeRequest& req) {
  JsonWriter w;
  w.begin_object();
  w.key("v");
  w.u64(req.v);
  w.key("id");
  w.string(req.id);
  if (req.type != "admission") {
    w.key("type");
    w.string(req.type);
  }
  if (!req.taskset.empty()) {
    w.key("taskset");
    w.string(req.taskset);
  } else {
    w.key("taskset_path");
    w.string(req.taskset_path);
  }
  w.key("scheme");
  w.string(req.scheme);
  w.key("procs");
  w.u64(req.procs);
  if (req.horizon > 0) {
    w.key("horizon_ms");
    w.ticks_ms(req.horizon);
  }
  if (req.permanent) {
    w.key("permanent");
    w.begin_object();
    w.key("proc");
    w.u64(req.permanent->proc);
    w.key("at_ms");
    w.ticks_ms(req.permanent->time);
    w.end_object();
  }
  if (req.lambda_per_ms > 0) {
    // 17 significant digits round-trip any double exactly through strtod,
    // and -- unlike the "%a" hex floats the repro bundles use -- stay valid
    // JSON for third-party tooling reading a replay file.
    char lambda[32];
    std::snprintf(lambda, sizeof lambda, "%.17g", req.lambda_per_ms);
    w.key("lambda_per_ms");
    w.raw(lambda);
  }
  w.key("seed");
  w.u64(req.seed);
  w.key("audit");
  w.boolean(req.audit);
  if (req.timing) {
    w.key("timing");
    w.boolean(true);
  }
  w.end_object();
  return w.take();
}

// --- Response encoding ----------------------------------------------------

const char* to_string(analysis::AdmissionStage stage) {
  switch (stage) {
    case analysis::AdmissionStage::kLowerBoundReject:
      return "lower-bound-reject";
    case analysis::AdmissionStage::kHyperbolicAccept:
      return "hyperbolic-accept";
    case analysis::AdmissionStage::kProbeAccept:
      return "probe-accept";
    case analysis::AdmissionStage::kExactAccept:
      return "exact-accept";
    case analysis::AdmissionStage::kExactReject:
      return "exact-reject";
  }
  return "?";
}

std::string serialize_serve_response(const ServeResponse& r) {
  JsonWriter w;
  w.begin_object();
  w.key("v");
  w.u64(1);
  w.key("id");
  if (r.id.empty()) {
    w.null();
  } else {
    w.string(r.id);
  }
  w.key("ok");
  w.boolean(r.ok);
  if (!r.error_code.empty()) {
    w.key("error");
    w.begin_object();
    w.key("code");
    w.string(r.error_code);
    w.key("message");
    w.string(r.error_message);
    w.end_object();
  }
  if (r.has_admission) {
    w.key("admission");
    w.begin_object();
    w.key("schedulable");
    w.boolean(r.admission.schedulable);
    w.key("stage");
    w.string(to_string(r.admission.stage));
    w.end_object();
  }
  if (r.has_simulation) {
    w.key("simulation");
    w.begin_object();
    w.key("scheme");
    w.string(r.scheme);
    w.key("procs");
    w.u64(r.procs);
    w.key("horizon_ms");
    w.ticks_ms(r.horizon);
    w.key("audited");
    w.boolean(r.audited);
    w.key("mk_satisfied");
    w.boolean(r.mk_satisfied);
    w.key("mandatory_misses");
    w.u64(r.mandatory_misses);
    w.key("jobs_released");
    w.u64(r.jobs_released);
    w.key("jobs_met");
    w.u64(r.jobs_met);
    w.key("jobs_missed");
    w.u64(r.jobs_missed);
    w.key("backups_canceled");
    w.u64(r.backups_canceled);
    w.key("energy_total");
    w.fixed(r.energy_total, 6);
    w.key("energy_active");
    w.fixed(r.energy_active, 6);
    w.end_object();
  }
  if (r.wall_us) {
    w.key("wall_us");
    w.fixed(*r.wall_us, 1);
  }
  w.end_object();
  return w.take();
}

}  // namespace mkss::io
