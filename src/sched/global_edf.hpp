// Global-EDF -- the dynamic-priority baseline on N processors.
//
// Same R-pattern classification and least-loaded/next-processor duplication
// as Global-FP, but every mandatory copy carries its absolute deadline as
// the dispatch rank, so each processor's mandatory band runs earliest-
// deadline-first instead of fixed-priority. This exercises the engine's
// generalized rank ordering (ReadyEntry: band, then rank, then FP order) on
// the mandatory band, which the four paper schemes leave at zero.
//
// Feasibility: per processor the job set is a subset of the full
// single-processor R-pattern workload; that set is FP-schedulable, hence
// schedulable, hence EDF-schedulable (EDF is optimal on one processor), and
// subsets only reduce interference.
#pragma once

#include <vector>

#include "core/pattern.hpp"
#include "sched/scheme_base.hpp"

namespace mkss::sched {

class GlobalEdf final : public SchemeBase {
 public:
  std::string name() const override { return "Global-EDF"; }

  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override;
  void on_outcome(core::TaskIndex, std::uint64_t, core::JobOutcome) override {}

 protected:
  void on_setup() override;

 private:
  std::vector<core::Ticks> load_;
};

}  // namespace mkss::sched
