// MKSS_greedy -- the dynamic-pattern strawman of Section III (Figures 2-3).
//
// Jobs are classified at release by their current flexibility degree:
// FD == 0 is mandatory (duplicated on both processors, backups without
// procrastination), anything else is optional and *always* executed, on the
// primary processor only, in a lower dispatch band than the mandatory queue.
// More urgent optional jobs (smaller FD) run first, which is why Figure 2
// executes O21 (FD 1) before O11 (FD 2). Successful optional jobs demote
// future mandatory jobs and drop their backups -- but the greedy scheme may
// execute an excessive number of optional jobs, which Figure 3 shows can
// cost more energy than it saves; the selective scheme fixes this.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/mk_constraint.hpp"
#include "sched/scheme_base.hpp"

namespace mkss::sched {

struct GreedyOptions {
  /// Execute optional jobs on the primary processor only (Section III).
  bool primary_only{true};
  /// Execute optional jobs with 1 <= FD <= this bound. The default executes
  /// every optional job ("greedy manner ... might execute an excessive
  /// number of optional jobs", Figure 3); Figure 2's hand-drawn schedule
  /// corresponds to the urgency-limited variant with bound 1.
  std::uint32_t max_selected_fd{std::numeric_limits<std::uint32_t>::max()};
};

class MkssGreedy final : public SchemeBase {
 public:
  explicit MkssGreedy(GreedyOptions opts = {}) : opts_(opts) {}

  std::string name() const override { return "MKSS_greedy"; }

  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override;
  void on_outcome(core::TaskIndex i, std::uint64_t j, core::JobOutcome outcome) override;

 protected:
  void on_setup() override;

 private:
  GreedyOptions opts_;
  std::vector<core::MkHistory> history_;
  std::size_t rr_next_{0};  ///< round-robin target when primary_only is off
};

}  // namespace mkss::sched
