#include "sched/global_edf.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "sched/registry.hpp"

namespace mkss::sched {

namespace {

/// Absolute deadline as a dispatch rank; saturates on (absurdly) long
/// horizons rather than wrapping.
std::uint32_t deadline_rank(core::Ticks absolute_deadline) {
  return static_cast<std::uint32_t>(std::min<core::Ticks>(
      absolute_deadline, std::numeric_limits<std::uint32_t>::max()));
}

}  // namespace

void GlobalEdf::on_setup() { load_.assign(num_procs(), 0); }

sim::ReleaseDecision GlobalEdf::on_release(core::TaskIndex i, std::uint64_t j,
                                           core::Ticks release) {
  const core::Task& task = taskset()[i];
  if (!core::pattern_mandatory(core::PatternKind::kDeeplyRed, task.m, task.k,
                               j)) {
    return sim::ReleaseDecision::skip();
  }
  const std::uint32_t rank = deadline_rank(release + task.deadline);
  sim::ReleaseDecision d;
  d.mandatory = true;
  if (degraded()) {
    // Single full-speed copy on the survivor, still EDF-ranked (EDF stays
    // optimal on the lone processor).
    d.copies.push_back({survivor(), sim::CopyKind::kMain, sim::Band::kMandatory,
                        release, rank, 1.0});
    return d;
  }
  sim::ProcessorId proc = 0;
  for (sim::ProcessorId p = 1; p < load_.size(); ++p) {
    if (load_[p] < load_[proc]) proc = p;
  }
  load_[proc] += task.wcet;
  d.copies.push_back({proc, sim::CopyKind::kMain, sim::Band::kMandatory,
                      release, rank, 1.0});
  d.copies.push_back({platform().partner(proc), sim::CopyKind::kBackup,
                      sim::Band::kMandatory, release, rank, 1.0});
  return d;
}

namespace {
const RegisterScheme reg{{
    .name = "global_edf",
    .title = "Global-EDF",
    .policy = "R-pattern mandatory jobs; copies ranked by absolute deadline "
              "(EDF within the mandatory band), least-loaded placement",
    .min_procs = 2,
    .max_procs = 0,
    .make = [] { return std::make_unique<GlobalEdf>(); },
}};
}  // namespace

}  // namespace mkss::sched
