// MKSS_ST -- the static reference scheme of Section V.
//
// Task sets are statically partitioned with the R-pattern; every mandatory
// job runs concurrently on both processors ("without procrastination"), so
// main and backup execute in lock-step and cancellation saves nothing.
// Optional jobs are never executed. This is the normalization baseline of
// Figure 6.
#pragma once

#include "core/pattern.hpp"
#include "sched/scheme_base.hpp"

namespace mkss::sched {

struct StOptions {
  /// Static partitioning pattern (the paper uses the deeply red pattern;
  /// the evenly distributed E-pattern is an ablation).
  core::PatternKind pattern{core::PatternKind::kDeeplyRed};
};

class MkssSt final : public SchemeBase {
 public:
  explicit MkssSt(StOptions opts = {}) : opts_(opts) {}

  std::string name() const override {
    return opts_.pattern == core::PatternKind::kDeeplyRed ? "MKSS_ST"
                                                          : "MKSS_ST(E)";
  }

  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override;
  void on_outcome(core::TaskIndex, std::uint64_t, core::JobOutcome) override {}

 protected:
  void on_setup() override {}

 private:
  StOptions opts_;
};

}  // namespace mkss::sched
