#include "sched/mkss_greedy.hpp"

#include "sched/registry.hpp"

namespace mkss::sched {

namespace {
const RegisterScheme reg{{
    .name = "greedy",
    .title = "MKSS_greedy",
    .policy = "dynamic pattern; every optional job executed (the Section III "
              "strawman that can cost more energy than it saves)",
    .min_procs = 2,
    .max_procs = 2,
    .make = [] { return std::make_unique<MkssGreedy>(); },
}};
}  // namespace

void MkssGreedy::on_setup() {
  history_.clear();
  history_.reserve(taskset().size());
  for (const core::Task& t : taskset()) {
    history_.emplace_back(t.m, t.k);
  }
  rr_next_ = 0;
}

sim::ReleaseDecision MkssGreedy::on_release(core::TaskIndex i, std::uint64_t /*j*/,
                                            core::Ticks release) {
  const std::uint32_t fd = history_[i].flexibility_degree();
  if (fd == 0) {
    return mandatory_release(sim::kPrimary, release, release);
  }
  if (fd > opts_.max_selected_fd) {
    return sim::ReleaseDecision::skip();
  }
  sim::ReleaseDecision d;
  d.mandatory = false;
  sim::ProcessorId proc = sim::kPrimary;
  if (degraded()) {
    proc = survivor();
  } else if (!opts_.primary_only) {
    proc = (rr_next_++ % 2 == 0) ? sim::kPrimary : sim::kSpare;
  }
  d.copies.push_back(
      {proc, sim::CopyKind::kOptional, sim::Band::kOptional, release, fd});
  return d;
}

void MkssGreedy::on_outcome(core::TaskIndex i, std::uint64_t /*j*/,
                            core::JobOutcome outcome) {
  history_[i].record(outcome);
}

}  // namespace mkss::sched
