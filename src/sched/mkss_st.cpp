#include "sched/mkss_st.hpp"

#include "core/pattern.hpp"

namespace mkss::sched {

sim::ReleaseDecision MkssSt::on_release(core::TaskIndex i, std::uint64_t j,
                                        core::Ticks release) {
  const core::Task& task = taskset()[i];
  if (!core::pattern_mandatory(opts_.pattern, task.m, task.k, j)) {
    return sim::ReleaseDecision::skip();
  }
  return mandatory_release(sim::kPrimary, release, release);
}

}  // namespace mkss::sched
