#include "sched/mkss_st.hpp"

#include "core/pattern.hpp"
#include "sched/registry.hpp"

namespace mkss::sched {

namespace {
const RegisterScheme reg{{
    .name = "st",
    .title = "MKSS_ST",
    .policy = "static R-pattern; mandatory jobs duplicated without "
              "procrastination, optionals never executed (Section V baseline)",
    .min_procs = 2,
    .max_procs = 2,
    .make = [] { return std::make_unique<MkssSt>(); },
}};
}  // namespace

sim::ReleaseDecision MkssSt::on_release(core::TaskIndex i, std::uint64_t j,
                                        core::Ticks release) {
  const core::Task& task = taskset()[i];
  if (!core::pattern_mandatory(opts_.pattern, task.m, task.k, j)) {
    return sim::ReleaseDecision::skip();
  }
  return mandatory_release(sim::kPrimary, release, release);
}

}  // namespace mkss::sched
