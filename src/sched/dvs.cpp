#include "sched/dvs.hpp"

#include <cmath>
#include <vector>

namespace mkss::sched {

core::TaskSet scale_wcets(const core::TaskSet& ts, double f) {
  std::vector<core::Task> tasks(ts.tasks());
  for (core::Task& t : tasks) {
    const double scaled = std::ceil(static_cast<double>(t.wcet) / f);
    // A slowdown that pushes C past D can never be schedulable; cap at D so
    // the TaskSet invariant holds and the RTA rejects it naturally.
    t.wcet = std::min<core::Ticks>(static_cast<core::Ticks>(scaled), t.deadline);
  }
  return core::TaskSet(std::move(tasks));
}

double lowest_feasible_frequency(const core::TaskSet& ts,
                                 analysis::DemandModel model,
                                 const DvsOptions& opts) {
  double best = 1.0;
  // Walk the ladder downwards; the RTA is monotone in the WCETs, so the
  // first infeasible step ends the search.
  for (double f = 1.0 - opts.f_step; f >= opts.f_min - 1e-9; f -= opts.f_step) {
    const core::TaskSet scaled = scale_wcets(ts, f);
    bool degenerate = false;
    for (core::TaskIndex i = 0; i < scaled.size(); ++i) {
      // scale_wcets capped C at D: that means f was infeasible for the task.
      if (scaled[i].wcet == scaled[i].deadline &&
          static_cast<double>(ts[i].wcet) / f >
              static_cast<double>(scaled[i].deadline)) {
        degenerate = true;
      }
    }
    if (degenerate || !analysis::schedulable(scaled, model)) break;
    best = f;
  }
  return best;
}

}  // namespace mkss::sched
