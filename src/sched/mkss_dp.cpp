#include "sched/mkss_dp.hpp"

#include <algorithm>

#include "analysis/promotion.hpp"
#include "core/pattern.hpp"
#include "sched/registry.hpp"

namespace mkss::sched {

namespace {
const RegisterScheme reg{{
    .name = "dp",
    .title = "MKSS_DP",
    .policy = "static R-pattern; preference-oriented dual-priority backups "
              "promoted at r + Y_i (Haque/Begam comparison scheme)",
    .min_procs = 2,
    .max_procs = 2,
    .make = [] { return std::make_unique<MkssDp>(); },
}};
}  // namespace

void MkssDp::on_setup() {
  main_frequency_ = 1.0;
  if (opts_.dvs.enabled) {
    main_frequency_ =
        lowest_feasible_frequency(taskset(), analysis::DemandModel::kAllJobs,
                                  opts_.dvs);
  }
  // Without a full-set response-time bound there is no safe promotion; the
  // affected backup then runs unprocrastinated (delay 0). With DVS the
  // delays come from the scaled set, which upper-bounds both processors'
  // actual mixes of slowed mains and full-speed backups.
  if (main_frequency_ < 1.0) {
    y_ = backup_delays(scale_wcets(taskset(), main_frequency_), opts_.delay,
                       opts_.pattern);
  } else if (analysis::AnalysisCache* c = cache()) {
    y_ = backup_delays(*c, opts_.delay, opts_.pattern);
  } else {
    y_ = backup_delays(taskset(), opts_.delay, opts_.pattern);
  }
}

sim::ReleaseDecision MkssDp::on_release(core::TaskIndex i, std::uint64_t j,
                                        core::Ticks release) {
  const core::Task& task = taskset()[i];
  if (!core::pattern_mandatory(opts_.pattern, task.m, task.k, j)) {
    return sim::ReleaseDecision::skip();
  }
  return mandatory_release(main_proc(i), release, release + y_[i], main_frequency_);
}

}  // namespace mkss::sched
