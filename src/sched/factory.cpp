#include "sched/factory.hpp"

namespace mkss::sched {

const char* to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSt: return "MKSS_ST";
    case SchemeKind::kDp: return "MKSS_DP";
    case SchemeKind::kGreedy: return "MKSS_greedy";
    case SchemeKind::kSelective: return "MKSS_selective";
  }
  return "?";
}

const char* registry_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSt: return "st";
    case SchemeKind::kDp: return "dp";
    case SchemeKind::kGreedy: return "greedy";
    case SchemeKind::kSelective: return "selective";
  }
  return "?";
}

std::unique_ptr<SchemeBase> make_scheme(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSt: return std::make_unique<MkssSt>();
    case SchemeKind::kDp: return std::make_unique<MkssDp>();
    case SchemeKind::kGreedy: return std::make_unique<MkssGreedy>();
    case SchemeKind::kSelective: return std::make_unique<MkssSelective>();
  }
  return nullptr;
}

std::vector<SchemeKind> evaluation_schemes() {
  return {SchemeKind::kSt, SchemeKind::kDp, SchemeKind::kSelective};
}

}  // namespace mkss::sched
