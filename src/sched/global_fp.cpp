#include "sched/global_fp.hpp"

#include "sched/registry.hpp"

namespace mkss::sched {

void GlobalFp::on_setup() { load_.assign(num_procs(), 0); }

sim::ReleaseDecision GlobalFp::on_release(core::TaskIndex i, std::uint64_t j,
                                          core::Ticks release) {
  const core::Task& task = taskset()[i];
  if (!core::pattern_mandatory(core::PatternKind::kDeeplyRed, task.m, task.k,
                               j)) {
    return sim::ReleaseDecision::skip();
  }
  sim::ProcessorId proc = 0;
  for (sim::ProcessorId p = 1; p < load_.size(); ++p) {
    if (load_[p] < load_[proc]) proc = p;
  }
  load_[proc] += task.wcet;
  return mandatory_release(proc, release, release);
}

namespace {
const RegisterScheme reg{{
    .name = "global_fp",
    .title = "Global-FP",
    .policy = "R-pattern mandatory jobs duplicated; least-loaded main "
              "placement, unprocrastinated backup on the next processor",
    .min_procs = 2,
    .max_procs = 0,
    .make = [] { return std::make_unique<GlobalFp>(); },
}};
}  // namespace

}  // namespace mkss::sched
