#include "sched/canary.hpp"

#include <cstdlib>
#include <memory>
#include <utility>

#include "sched/mkss_dp.hpp"
#include "sched/mkss_st.hpp"
#include "sched/registry.hpp"

namespace mkss::sched {

namespace {

/// Composition shim: forwards every engine hook to an inner production
/// scheme so a canary only has to distort the release decision.
class CanaryBase : public SchemeBase {
 public:
  explicit CanaryBase(std::unique_ptr<SchemeBase> inner)
      : inner_(std::move(inner)) {}

  void on_outcome(core::TaskIndex i, std::uint64_t j,
                  core::JobOutcome outcome) override {
    inner_->on_outcome(i, j, outcome);
  }

  void on_permanent_fault(sim::ProcessorId dead, core::Ticks now) override {
    SchemeBase::on_permanent_fault(dead, now);
    inner_->on_permanent_fault(dead, now);
  }

  std::optional<sim::CopySpec> reroute_on_death(
      const core::Job& job, bool mandatory, sim::ProcessorId survivor,
      core::Ticks now, core::Ticks remaining) override {
    return inner_->reroute_on_death(job, mandatory, survivor, now, remaining);
  }

 protected:
  void on_setup() override {
    inner_->bind_platform(platform());
    inner_->setup(taskset());
  }

  SchemeBase& inner() { return *inner_; }

 private:
  std::unique_ptr<SchemeBase> inner_;
};

/// Bug #1: MKSS_ST without backups -- one transient on a mandatory main is
/// an unrecovered mandatory miss.
class CanaryNoBackup final : public CanaryBase {
 public:
  CanaryNoBackup() : CanaryBase(std::make_unique<MkssSt>()) {}

  std::string name() const override { return "CANARY(no-backup)"; }

  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override {
    sim::ReleaseDecision d = inner().on_release(i, j, release);
    d.copies.erase_if(
        [](const sim::CopySpec& c) { return c.kind == sim::CopyKind::kBackup; });
    return d;
  }
};

/// Bug #2: MKSS_DP whose backups are promoted at r + D_i - C_i/2. A backup
/// needs C_i of service but only C_i/2 of window remains, so once the main
/// copy is lost the job cannot make its deadline.
class CanaryLatePromotion final : public CanaryBase {
 public:
  CanaryLatePromotion() : CanaryBase(std::make_unique<MkssDp>()) {}

  std::string name() const override { return "CANARY(late-promotion)"; }

  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override {
    const sim::ReleaseDecision d = inner().on_release(i, j, release);
    const core::Task& t = taskset()[i];
    sim::ReleaseDecision out;
    out.mandatory = d.mandatory;
    for (const sim::CopySpec& c : d.copies) {
      sim::CopySpec spec = c;
      if (spec.kind == sim::CopyKind::kBackup) {
        spec.eligible = release + t.deadline - t.wcet / 2;
      }
      out.copies.push_back(spec);
    }
    return out;
  }
};

/// Env-var hook: setting MKSS_ENABLE_CANARY_SCHEMES makes subprocesses (the
/// CLI under test) expose the canaries without a code path to forget to
/// remove.
[[maybe_unused]] const bool registered_from_env = [] {
  return std::getenv("MKSS_ENABLE_CANARY_SCHEMES") != nullptr &&
         register_canary_schemes() > 0;
}();

}  // namespace

std::size_t register_canary_schemes() {
  Registry& registry = Registry::instance();
  std::size_t added = 0;
  if (!registry.contains("canary_no_backup")) {
    registry.register_scheme({
        .name = "canary_no_backup",
        .title = "CANARY(no-backup)",
        .policy = "deliberately broken MKSS_ST that drops every backup copy "
                  "(fuzzer canary; never registered by default)",
        .min_procs = 2,
        .max_procs = 2,
        .make = [] { return std::make_unique<CanaryNoBackup>(); },
    });
    ++added;
  }
  if (!registry.contains("canary_late_promotion")) {
    registry.register_scheme({
        .name = "canary_late_promotion",
        .title = "CANARY(late-promotion)",
        .policy = "deliberately broken MKSS_DP promoting backups at "
                  "r + D - C/2 (fuzzer canary; never registered by default)",
        .min_procs = 2,
        .max_procs = 2,
        .make = [] { return std::make_unique<CanaryLatePromotion>(); },
    });
    ++added;
  }
  return added;
}

}  // namespace mkss::sched
