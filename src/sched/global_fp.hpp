// Global-FP -- N-processor standby-sparing with per-release placement.
//
// R-pattern mandatory jobs are duplicated: the main goes to the processor
// with the least cumulative admitted main work (ties to the lowest index),
// the backup to the next processor in index order -- always distinct, so the
// single-fault tolerance argument of Theorem 1 carries over. Backups are
// unprocrastinated (MKSS_ST style) and optional jobs are skipped.
//
// Feasibility: every processor's mandatory workload is a subset of the full
// single-processor R-pattern workload, and FP interference is monotone in
// the job set, so any placement keeps the deadlines the dual-platform
// MKSS_ST analysis certifies.
#pragma once

#include <vector>

#include "core/pattern.hpp"
#include "sched/scheme_base.hpp"

namespace mkss::sched {

class GlobalFp final : public SchemeBase {
 public:
  std::string name() const override { return "Global-FP"; }

  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override;
  void on_outcome(core::TaskIndex, std::uint64_t, core::JobOutcome) override {}

 protected:
  void on_setup() override;

 private:
  /// Cumulative admitted main WCET per processor, the placement key.
  std::vector<core::Ticks> load_;
};

}  // namespace mkss::sched
