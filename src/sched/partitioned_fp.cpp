#include "sched/partitioned_fp.hpp"

#include "sched/registry.hpp"

namespace mkss::sched {

void PartitionedFp::on_setup() {
  const core::TaskSet& ts = taskset();
  assign_.assign(ts.size(), 0);
  std::vector<double> load(num_procs(), 0.0);
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    sim::ProcessorId proc = 0;
    for (sim::ProcessorId p = 1; p < load.size(); ++p) {
      if (load[p] < load[proc]) proc = p;
    }
    assign_[i] = proc;
    load[proc] += ts[i].mk_utilization();
  }
}

sim::ReleaseDecision PartitionedFp::on_release(core::TaskIndex i,
                                               std::uint64_t j,
                                               core::Ticks release) {
  const core::Task& task = taskset()[i];
  if (!core::pattern_mandatory(core::PatternKind::kDeeplyRed, task.m, task.k,
                               j)) {
    return sim::ReleaseDecision::skip();
  }
  return mandatory_release(assign_[i], release, release);
}

namespace {
const RegisterScheme reg{{
    .name = "partitioned_fp",
    .title = "Partitioned-FP",
    .policy = "R-pattern mandatory jobs; per-task (m,k)-utilization "
              "first-fit partitioning, unprocrastinated backup on the "
              "partner processor",
    .min_procs = 2,
    .max_procs = 0,
    .make = [] { return std::make_unique<PartitionedFp>(); },
}};
}  // namespace

}  // namespace mkss::sched
