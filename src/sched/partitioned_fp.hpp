// Partitioned-FP -- N-processor standby-sparing with static partitioning.
//
// Tasks are partitioned once at setup, in priority (index) order, onto the
// processor with the least accumulated (m,k)-utilization (ties to the lowest
// index -- the utilization-balancing first-fit). A task's mandatory jobs
// then always run their main on the assigned processor and their
// unprocrastinated backup on the partner (next index), keeping both copies
// on distinct processors as Theorem 1 requires. Optional jobs are skipped.
//
// Feasibility mirrors Global-FP: each processor carries a subset of the full
// single-processor R-pattern workload, and FP interference is monotone.
#pragma once

#include <vector>

#include "core/pattern.hpp"
#include "sched/scheme_base.hpp"

namespace mkss::sched {

class PartitionedFp final : public SchemeBase {
 public:
  std::string name() const override { return "Partitioned-FP"; }

  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override;
  void on_outcome(core::TaskIndex, std::uint64_t, core::JobOutcome) override {}

  /// The static task -> processor assignment (valid after setup()).
  const std::vector<sim::ProcessorId>& assignment() const { return assign_; }

 protected:
  void on_setup() override;

 private:
  std::vector<sim::ProcessorId> assign_;
};

}  // namespace mkss::sched
