#include "sched/backup_delay.hpp"

#include <algorithm>

#include "analysis/cache.hpp"
#include "analysis/postponement.hpp"
#include "analysis/promotion.hpp"

namespace mkss::sched {

const char* to_string(BackupDelayPolicy policy) {
  switch (policy) {
    case BackupDelayPolicy::kNone: return "none";
    case BackupDelayPolicy::kPromotion: return "Y";
    case BackupDelayPolicy::kPostponed: return "theta";
  }
  return "?";
}

std::vector<core::Ticks> backup_delays(const core::TaskSet& ts,
                                       BackupDelayPolicy policy,
                                       core::PatternKind pattern) {
  std::vector<core::Ticks> delays(ts.size(), 0);
  switch (policy) {
    case BackupDelayPolicy::kNone:
      break;
    case BackupDelayPolicy::kPromotion: {
      const auto promos = analysis::promotion_times(ts);
      for (core::TaskIndex i = 0; i < ts.size(); ++i) {
        delays[i] = promos[i] ? std::max<core::Ticks>(0, *promos[i]) : 0;
      }
      break;
    }
    case BackupDelayPolicy::kPostponed: {
      analysis::PostponementOptions opts;
      opts.pattern = pattern;
      const auto result = analysis::compute_postponement(ts, opts);
      for (core::TaskIndex i = 0; i < ts.size(); ++i) {
        delays[i] = result.theta(i);
      }
      break;
    }
  }
  return delays;
}

std::vector<core::Ticks> backup_delays(analysis::AnalysisCache& cache,
                                       BackupDelayPolicy policy,
                                       core::PatternKind pattern) {
  const core::TaskSet& ts = cache.taskset();
  std::vector<core::Ticks> delays(ts.size(), 0);
  switch (policy) {
    case BackupDelayPolicy::kNone:
      break;
    case BackupDelayPolicy::kPromotion: {
      const auto& promos = cache.promotions();
      for (core::TaskIndex i = 0; i < ts.size(); ++i) {
        delays[i] = promos[i] ? std::max<core::Ticks>(0, *promos[i]) : 0;
      }
      break;
    }
    case BackupDelayPolicy::kPostponed: {
      analysis::PostponementOptions opts;
      opts.pattern = pattern;
      const auto& result = cache.postponement(opts);
      for (core::TaskIndex i = 0; i < ts.size(); ++i) {
        delays[i] = result.theta(i);
      }
      break;
    }
  }
  return delays;
}

}  // namespace mkss::sched
