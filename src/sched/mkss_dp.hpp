// MKSS_DP -- static R-pattern with the preference-oriented dual-priority
// standby-sparing of Begam et al. [8] / Haque et al. [7] (Section V's second
// comparison scheme; also the scheme behind the paper's Figure 1).
//
// Mandatory main jobs run ASAP under FP; backup jobs stay ineligible until
// their dual-priority promotion at r + Y_i (Y_i = D_i - R_i, Equation 2) and
// then compete at their regular fixed priority. With the preference-oriented
// partition, main tasks alternate between the two processors (tau_1's main on
// the primary, tau_2's on the spare, ...) with each backup on the opposite
// processor, spreading main work evenly -- this reproduces the schedule of
// Figure 1 exactly. The non-preference variant keeps every main on the
// primary (the original dual-priority standby-sparing of [7]).
#pragma once

#include <vector>

#include "sched/backup_delay.hpp"
#include "sched/dvs.hpp"
#include "sched/scheme_base.hpp"

namespace mkss::sched {

struct DpOptions {
  /// true: mains alternate across processors (preference-oriented, [8]);
  /// false: all mains on the primary processor ([7]).
  bool preference_partition{true};
  /// Backup procrastination. The published scheme uses the promotion time
  /// Y_i; kPostponed grafts the paper's theta analysis onto the static
  /// scheme (an ablation of Definitions 2-5 in isolation), kNone degrades
  /// to unprocrastinated backups.
  BackupDelayPolicy delay{BackupDelayPolicy::kPromotion};
  /// DVS on the main copies, as in [7]/[8]: mains run at the lowest
  /// frequency keeping the *scaled* full task set schedulable; promotions /
  /// postponements are computed from the scaled set (safe: full-speed
  /// backups demand less than their scaled analysis images).
  DvsOptions dvs{};
  /// Static partitioning pattern (deeply red per the paper; E-pattern as an
  /// ablation).
  core::PatternKind pattern{core::PatternKind::kDeeplyRed};
};

class MkssDp final : public SchemeBase {
 public:
  explicit MkssDp(DpOptions opts = {}) : opts_(opts) {}

  std::string name() const override {
    return opts_.preference_partition ? "MKSS_DP" : "MKSS_DP(noPO)";
  }

  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override;
  void on_outcome(core::TaskIndex, std::uint64_t, core::JobOutcome) override {}

  /// Promotion delays actually in use (0 when full-set RTA failed).
  const std::vector<core::Ticks>& promotion_delays() const { return y_; }
  /// DVS frequency of the main copies (1.0 when DVS is off or infeasible).
  double main_frequency() const { return main_frequency_; }

 protected:
  void on_setup() override;

 private:
  sim::ProcessorId main_proc(core::TaskIndex i) const {
    return opts_.preference_partition && (i % 2 != 0) ? sim::kSpare : sim::kPrimary;
  }

  DpOptions opts_;
  std::vector<core::Ticks> y_;
  double main_frequency_{1.0};
};

}  // namespace mkss::sched
