#include "sched/multi_spare.hpp"

#include "sched/registry.hpp"

namespace mkss::sched {

void MultiSpare::on_setup() {
  const core::TaskSet& ts = taskset();
  // Same safety ladder as MKSS_selective: exact theta where the analysis
  // succeeds, promotion Y as fallback, 0 otherwise.
  if (analysis::AnalysisCache* c = cache()) {
    theta_ = sched::backup_delays(*c, BackupDelayPolicy::kPostponed);
  } else {
    theta_ = sched::backup_delays(ts, BackupDelayPolicy::kPostponed);
  }
  // Partition mains over the primaries (everything but the last processor).
  const std::size_t primaries = num_procs() - 1;
  assign_.assign(ts.size(), 0);
  std::vector<double> load(primaries, 0.0);
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    sim::ProcessorId proc = 0;
    for (sim::ProcessorId p = 1; p < load.size(); ++p) {
      if (load[p] < load[proc]) proc = p;
    }
    assign_[i] = proc;
    load[proc] += ts[i].mk_utilization();
  }
}

sim::ReleaseDecision MultiSpare::on_release(core::TaskIndex i, std::uint64_t j,
                                            core::Ticks release) {
  const core::Task& task = taskset()[i];
  if (!core::pattern_mandatory(core::PatternKind::kDeeplyRed, task.m, task.k,
                               j)) {
    return sim::ReleaseDecision::skip();
  }
  return mandatory_release_on(assign_[i], spare(), release,
                              release + theta_[i]);
}

namespace {
const RegisterScheme reg{{
    .name = "multi_spare",
    .title = "Multi-spare",
    .policy = "N-1 partitioned primaries share one dedicated spare; backups "
              "postponed to r + theta_i as on the dual platform",
    .min_procs = 2,
    .max_procs = 0,
    .make = [] { return std::make_unique<MultiSpare>(); },
}};
}  // namespace

}  // namespace mkss::sched
