#include "sched/multi_spare.hpp"

#include "sched/registry.hpp"

namespace mkss::sched {

void MultiSpare::on_setup() {
  const core::TaskSet& ts = taskset();
  // Same safety ladder as MKSS_selective: exact theta where the analysis
  // succeeds, promotion Y as fallback, 0 otherwise.
  if (analysis::AnalysisCache* c = cache()) {
    theta_ = sched::backup_delays(*c, BackupDelayPolicy::kPostponed);
  } else {
    theta_ = sched::backup_delays(ts, BackupDelayPolicy::kPostponed);
  }
  // Partition mains over the primaries (everything but the last processor).
  const std::size_t primaries = num_procs() - 1;
  assign_.assign(ts.size(), 0);
  std::vector<double> load(primaries, 0.0);
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    sim::ProcessorId proc = 0;
    for (sim::ProcessorId p = 1; p < load.size(); ++p) {
      if (load[p] < load[proc]) proc = p;
    }
    assign_[i] = proc;
    load[proc] += ts[i].mk_utilization();
  }
}

void MultiSpare::on_permanent_fault(sim::ProcessorId dead, core::Ticks now) {
  SchemeBase::on_permanent_fault(dead, now);
  dead_ = dead;
  spare_dead_ = dead == spare();
}

sim::ReleaseDecision MultiSpare::on_release(core::TaskIndex i, std::uint64_t j,
                                            core::Ticks release) {
  const core::Task& task = taskset()[i];
  if (!core::pattern_mandatory(core::PatternKind::kDeeplyRed, task.m, task.k,
                               j)) {
    return sim::ReleaseDecision::skip();
  }
  if (!degraded()) {
    return mandatory_release_on(assign_[i], spare(), release,
                                release + theta_[i]);
  }
  // Degraded: keep the postponement basis (see the header comment). A dead
  // spare leaves the partitioned mains untouched; a dead primary moves its
  // tasks to the spare as single theta-postponed copies, i.e. exactly their
  // analyzed backup slot.
  sim::ReleaseDecision d;
  d.mandatory = true;
  if (spare_dead_) {
    d.copies.push_back({assign_[i], sim::CopyKind::kMain, sim::Band::kMandatory,
                        release, 0, 1.0});
  } else if (assign_[i] == dead_) {
    d.copies.push_back({spare(), sim::CopyKind::kMain, sim::Band::kMandatory,
                        release + theta_[i], 0, 1.0});
  } else {
    d.copies.push_back({assign_[i], sim::CopyKind::kMain, sim::Band::kMandatory,
                        release, 0, 1.0});
    d.copies.push_back({spare(), sim::CopyKind::kBackup, sim::Band::kMandatory,
                        release + theta_[i], 0, 1.0});
  }
  return d;
}

namespace {
const RegisterScheme reg{{
    .name = "multi_spare",
    .title = "Multi-spare",
    .policy = "N-1 partitioned primaries share one dedicated spare; backups "
              "postponed to r + theta_i as on the dual platform",
    .min_procs = 2,
    .max_procs = 0,
    .make = [] { return std::make_unique<MultiSpare>(); },
}};
}  // namespace

}  // namespace mkss::sched
