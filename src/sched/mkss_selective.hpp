// MKSS_selective -- the paper's contribution (Algorithm 1 + Definitions 2-5).
//
// Classification at release by flexibility degree (Definition 1):
//   * FD == 0: mandatory. The main copy joins the primary processor's MJQ
//     immediately; the backup copy joins the spare's MJQ with its release
//     postponed to r + theta_i (Equation 3).
//   * FD == 1: selected optional. One single copy (no backup) joins the OJQ
//     of the primary and the spare processor alternately per task, spreading
//     the optional workload evenly across the platform.
//   * FD >= 2: skipped.
// MJQ strictly outranks OJQ; a successful optional job raises the next job's
// flexibility degree, demoting future mandatory jobs and dropping their
// backups -- that is where the energy goes.
//
// Options expose the paper's design choices for the ablation benches:
// the backup delay ladder (exact theta / promotion Y / none), the
// alternating placement, and the FD selection threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/postponement.hpp"
#include "core/mk_constraint.hpp"
#include "sched/backup_delay.hpp"
#include "sched/dvs.hpp"
#include "sched/scheme_base.hpp"

namespace mkss::sched {

struct SelectiveOptions {
  BackupDelayPolicy delay{BackupDelayPolicy::kPostponed};
  /// Alternate selected optional jobs between the two processors (true per
  /// the paper); false sends them all to the primary.
  bool alternate{true};
  /// Optional jobs with 1 <= FD <= this threshold are selected; the paper
  /// uses exactly 1.
  std::uint32_t max_selected_fd{1};
  /// After the permanent fault, stop selecting optional jobs and run only
  /// the (single-copy) mandatory jobs on the survivor. Our extension: on a
  /// lone processor the R-pattern mandatory rate m/k is below the FD==1
  /// selection rate, so this is the energy-minimal degraded mode (see
  /// bench/ablation_fault_time).
  bool degraded_mandatory_only{false};
  /// DVS on the main and selected-optional copies (extension): they run at
  /// the lowest frequency keeping the scaled R-pattern mandatory demand
  /// schedulable. Backups stay at full speed; the theta analysis runs on
  /// the unscaled set (the spare only executes full-speed work).
  DvsOptions dvs{};
};

class MkssSelective final : public SchemeBase {
 public:
  explicit MkssSelective(SelectiveOptions opts = {}) : opts_(opts) {}

  std::string name() const override { return "MKSS_selective"; }

  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override;
  void on_outcome(core::TaskIndex i, std::uint64_t j, core::JobOutcome outcome) override;

  /// Backup release delays actually in use.
  const std::vector<core::Ticks>& backup_delays() const { return theta_; }
  /// DVS frequency of main/optional copies (1.0 when DVS is off).
  double main_frequency() const { return main_frequency_; }

 protected:
  void on_setup() override;

 private:
  SelectiveOptions opts_;
  double main_frequency_{1.0};
  std::vector<core::Ticks> theta_;
  std::vector<core::MkHistory> history_;
  std::vector<sim::ProcessorId> next_optional_proc_;
};

}  // namespace mkss::sched
