#include "sched/registry.hpp"

#include <algorithm>

namespace mkss::sched {

Registry& Registry::instance() {
  // Function-local static: constructed on first registrar, immune to the
  // static initialization order fiasco across scheme translation units.
  static Registry registry;
  return registry;
}

void Registry::register_scheme(SchemeInfo info) {
  if (info.name.empty() || !info.make) {
    throw std::logic_error("Registry: scheme needs a name and a factory");
  }
  if (contains(info.name)) {
    throw std::logic_error("Registry: duplicate scheme name '" + info.name +
                           "'");
  }
  schemes_.push_back(std::move(info));
}

bool Registry::contains(const std::string& name) const noexcept {
  return std::any_of(schemes_.begin(), schemes_.end(),
                     [&](const SchemeInfo& s) { return s.name == name; });
}

const SchemeInfo& Registry::resolve(const std::string& name) const {
  for (const SchemeInfo& s : schemes_) {
    if (s.name == name) return s;
  }
  std::string message = "unknown scheme '" + name + "'; available:";
  for (const std::string& n : names()) {
    message += ' ';
    message += n;
  }
  throw UnknownSchemeError(message);
}

std::vector<const SchemeInfo*> Registry::all() const {
  std::vector<const SchemeInfo*> out;
  out.reserve(schemes_.size());
  for (const SchemeInfo& s : schemes_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const SchemeInfo* a, const SchemeInfo* b) {
              return a->name < b->name;
            });
  return out;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(schemes_.size());
  for (const SchemeInfo* s : all()) out.push_back(s->name);
  return out;
}

}  // namespace mkss::sched
