// Scheduler plugin registry.
//
// Every scheme translation unit self-registers a SchemeInfo (name, platform
// constraints, factory) via a static RegisterScheme object, so adding a
// scheduler is one new .cpp file: the CLI's `--scheme` flag, its `schemes`
// subcommand, and the CI scheme matrix all resolve through the registry and
// pick the newcomer up without being edited. The legacy SchemeKind factory
// (sched/factory.hpp) stays as the typed shortcut for benches and tests; the
// registry is the stringly-named superset.
//
// Consumers link the sched library through $<LINK_LIBRARY:WHOLE_ARCHIVE,...>
// so the registrar objects survive static linking (an archive member with no
// referenced symbol would otherwise be dropped, silently emptying the
// registry).
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sched/scheme_base.hpp"

namespace mkss::sched {

/// One registered scheduler: identity, platform envelope, and a factory.
/// Schemes are stateful, so every simulation run takes a fresh instance.
struct SchemeInfo {
  std::string name;    ///< CLI identifier, e.g. "st" or "global_edf"
  std::string title;   ///< display name, e.g. "MKSS_ST"
  std::string policy;  ///< one-line policy summary for `schemes` listings
  /// Smallest platform the scheme can run on (inclusive).
  std::size_t min_procs{2};
  /// Largest platform supported; 0 means unbounded.
  std::size_t max_procs{2};
  std::function<std::unique_ptr<SchemeBase>()> make;

  bool supports(std::size_t num_procs) const noexcept {
    return num_procs >= min_procs &&
           (max_procs == 0 || num_procs <= max_procs);
  }
};

/// Thrown by Registry::resolve; the message lists the registered names so a
/// CLI can surface it verbatim.
class UnknownSchemeError : public std::invalid_argument {
 public:
  explicit UnknownSchemeError(const std::string& message)
      : std::invalid_argument(message) {}
};

class Registry {
 public:
  /// The process-wide registry the static registrars populate.
  static Registry& instance();

  /// Registers a scheme. Throws std::logic_error on a duplicate name or a
  /// missing factory -- both are programming errors worth failing loudly on.
  void register_scheme(SchemeInfo info);

  /// Looks a scheme up by name; throws UnknownSchemeError (listing every
  /// registered name) when absent.
  const SchemeInfo& resolve(const std::string& name) const;

  bool contains(const std::string& name) const noexcept;

  /// Every registered scheme, sorted by name.
  std::vector<const SchemeInfo*> all() const;

  /// Sorted registered names, e.g. for error messages and `schemes --names`.
  std::vector<std::string> names() const;

 private:
  std::vector<SchemeInfo> schemes_;
};

/// Static self-registration hook: file-scope `const RegisterScheme reg{...};`
/// in a scheme's .cpp adds it to Registry::instance() before main().
struct RegisterScheme {
  explicit RegisterScheme(SchemeInfo info) {
    Registry::instance().register_scheme(std::move(info));
  }
};

}  // namespace mkss::sched
