#include "sched/mkss_selective.hpp"

#include <algorithm>

#include "analysis/promotion.hpp"
#include "sched/registry.hpp"

namespace mkss::sched {

namespace {
const RegisterScheme reg{{
    .name = "selective",
    .title = "MKSS_selective",
    .policy = "dynamic pattern; FD == 1 optionals selected, backups "
              "postponed to r + theta_i (the paper's contribution)",
    .min_procs = 2,
    .max_procs = 2,
    .make = [] { return std::make_unique<MkssSelective>(); },
}};
}  // namespace

void MkssSelective::on_setup() {
  const core::TaskSet& ts = taskset();
  main_frequency_ = 1.0;
  if (opts_.dvs.enabled) {
    main_frequency_ = lowest_feasible_frequency(
        ts, analysis::DemandModel::kRPatternMandatory, opts_.dvs);
  }
  // Free function, not the accessor. The theta analysis always runs on the
  // unscaled set (the spare only executes full-speed work), so a bound
  // analysis cache applies with or without DVS.
  if (analysis::AnalysisCache* c = cache()) {
    theta_ = sched::backup_delays(*c, opts_.delay);
  } else {
    theta_ = sched::backup_delays(ts, opts_.delay);
  }

  history_.clear();
  history_.reserve(ts.size());
  for (const core::Task& t : ts) {
    history_.emplace_back(t.m, t.k);
  }
  next_optional_proc_.assign(ts.size(), sim::kPrimary);
}

sim::ReleaseDecision MkssSelective::on_release(core::TaskIndex i, std::uint64_t /*j*/,
                                               core::Ticks release) {
  const std::uint32_t fd = history_[i].flexibility_degree();
  if (fd == 0) {
    return mandatory_release(sim::kPrimary, release, release + theta_[i],
                             main_frequency_);
  }
  if (fd > opts_.max_selected_fd) {
    return sim::ReleaseDecision::skip();  // flexible enough; save the energy
  }
  if (degraded() && opts_.degraded_mandatory_only) {
    return sim::ReleaseDecision::skip();  // survivor runs mandatory work only
  }
  sim::ReleaseDecision d;
  d.mandatory = false;
  sim::ProcessorId proc = sim::kPrimary;
  if (degraded()) {
    proc = survivor();
  } else if (opts_.alternate) {
    proc = next_optional_proc_[i];
    next_optional_proc_[i] = platform().partner(proc);
  }
  d.copies.push_back({proc, sim::CopyKind::kOptional, sim::Band::kOptional,
                      release, fd, degraded() ? 1.0 : main_frequency_});
  return d;
}

void MkssSelective::on_outcome(core::TaskIndex i, std::uint64_t /*j*/,
                               core::JobOutcome outcome) {
  history_[i].record(outcome);
}

}  // namespace mkss::sched
