// Deliberately broken "canary" schemes for exercising the fuzzer.
//
// The fuzz campaign's job is to catch scheduler bugs; the canaries are two
// known bugs kept on a leash so tests (and humans) can watch the pipeline
// work end to end: fuzz finds them, the shrinker reduces them to a couple of
// tasks and one fault hit, and `mkss_cli replay` re-fails their bundles.
//
//   canary_no_backup        MKSS_ST with every backup copy stripped: any
//                           transient on a mandatory main is an unrecovered
//                           mandatory miss.
//   canary_late_promotion   MKSS_DP whose backups only become eligible at
//                           r + D_i - C_i/2 -- provably too late to finish
//                           C_i by the deadline once the main copy dies.
//
// The production schemes are `final`, so the canaries wrap them by
// composition (delegating SchemeBase hooks to an inner instance) rather than
// inheritance. They never self-register: register_canary_schemes() must be
// called explicitly (tests do), or the MKSS_ENABLE_CANARY_SCHEMES
// environment variable must be set before the registry is first consulted
// (the CLI tests use this) -- so `mkss_cli schemes`, the CI scheme matrix
// and default fuzz runs never see them.
#pragma once

#include <cstddef>

namespace mkss::sched {

/// Registers "canary_no_backup" and "canary_late_promotion" (idempotent).
/// Returns how many registrations the call performed (0 when both already
/// existed).
std::size_t register_canary_schemes();

}  // namespace mkss::sched
