// Shared plumbing of the standby-sparing schemes: task-set binding, survivor
// tracking after the permanent fault, and the default re-routing policy.
#pragma once

#include "analysis/cache.hpp"
#include "sim/scheme.hpp"

namespace mkss::sched {

class SchemeBase : public sim::Scheme {
 public:
  void bind_platform(const sim::PlatformSpec& platform) final {
    platform_ = platform;
  }

  void setup(const core::TaskSet& ts) final {
    ts_ = &ts;
    degraded_ = false;
    survivor_ = sim::kPrimary;
    on_setup();
  }

  /// Binds a shared per-task-set analysis cache (harness::BatchRunner owns
  /// one per set). The cache must outlive the scheme's use of it; it is
  /// consulted only while the scheme is set up on the cache's own task set,
  /// so a stale binding is ignored rather than misapplied.
  void bind_cache(analysis::AnalysisCache* cache) { cache_ = cache; }

  void on_permanent_fault(sim::ProcessorId dead, core::Ticks /*now*/) override {
    degraded_ = true;
    // Lowest-indexed processor other than the dead one -- the engine's own
    // handover target; on the dual platform exactly the other processor.
    survivor_ = dead == 0 ? sim::ProcessorId{1} : sim::ProcessorId{0};
  }

  /// Default policy: a mandatory job that lost its last copy restarts from
  /// scratch on the survivor; an optional one restarts only if it can still
  /// make its deadline.
  std::optional<sim::CopySpec> reroute_on_death(const core::Job& job, bool mandatory,
                                                sim::ProcessorId survivor,
                                                core::Ticks now,
                                                core::Ticks /*remaining*/) override {
    if (mandatory) {
      return sim::CopySpec{survivor, sim::CopyKind::kMain, sim::Band::kMandatory, now, 0};
    }
    if (now + job.exec <= job.deadline) {
      return sim::CopySpec{survivor, sim::CopyKind::kOptional, sim::Band::kOptional, now, 0};
    }
    return std::nullopt;
  }

 protected:
  virtual void on_setup() = 0;

  const core::TaskSet& taskset() const { return *ts_; }

  /// The bound analysis cache, or nullptr when none is bound or the bound
  /// cache belongs to a different task set than the current setup().
  analysis::AnalysisCache* cache() const {
    return cache_ != nullptr && &cache_->taskset() == ts_ ? cache_ : nullptr;
  }
  bool degraded() const { return degraded_; }
  sim::ProcessorId survivor() const { return survivor_; }

  /// The platform bound by the engine before setup(); defaults to the
  /// paper's dual platform so schemes driven directly in tests still work.
  const sim::PlatformSpec& platform() const { return platform_; }
  std::size_t num_procs() const { return platform_.num_procs(); }

  /// Duplicated mandatory release: main on `main_proc` now (optionally DVS
  /// slowed), backup on the partner processor at full speed once
  /// `backup_eligible` passes. Degraded mode collapses to a single immediate
  /// full-speed copy on the survivor (no sibling can cancel it, so slowing
  /// it down would only gamble with the deadline).
  sim::ReleaseDecision mandatory_release(sim::ProcessorId main_proc,
                                         core::Ticks release,
                                         core::Ticks backup_eligible,
                                         double main_frequency = 1.0) const {
    return mandatory_release_on(main_proc, platform_.partner(main_proc),
                                release, backup_eligible, main_frequency);
  }

  /// Same, but with an explicit backup processor (multi-spare platforms
  /// funnel every backup onto the dedicated spare rather than the partner).
  sim::ReleaseDecision mandatory_release_on(sim::ProcessorId main_proc,
                                            sim::ProcessorId backup_proc,
                                            core::Ticks release,
                                            core::Ticks backup_eligible,
                                            double main_frequency = 1.0) const {
    sim::ReleaseDecision d;
    d.mandatory = true;
    if (degraded_) {
      d.copies.push_back({survivor_, sim::CopyKind::kMain, sim::Band::kMandatory,
                          release, 0, 1.0});
      return d;
    }
    d.copies.push_back({main_proc, sim::CopyKind::kMain, sim::Band::kMandatory,
                        release, 0, main_frequency});
    d.copies.push_back({backup_proc, sim::CopyKind::kBackup,
                        sim::Band::kMandatory, backup_eligible, 0, 1.0});
    return d;
  }

 private:
  sim::PlatformSpec platform_{};
  const core::TaskSet* ts_ = nullptr;
  analysis::AnalysisCache* cache_ = nullptr;
  bool degraded_ = false;
  sim::ProcessorId survivor_ = sim::kPrimary;
};

}  // namespace mkss::sched
