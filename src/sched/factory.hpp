// Scheme factory used by benches, examples and tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/mkss_dp.hpp"
#include "sched/mkss_greedy.hpp"
#include "sched/mkss_selective.hpp"
#include "sched/mkss_st.hpp"

namespace mkss::sched {

enum class SchemeKind : std::uint8_t {
  kSt,
  kDp,
  kGreedy,
  kSelective,
};

const char* to_string(SchemeKind kind);

/// sched::Registry name of the kind ("st", "dp", ...), for artifacts -- like
/// the sweep's repro bundles -- that must name a scheme replayable via the
/// stringly registry rather than by display title.
const char* registry_name(SchemeKind kind);

/// Fresh default-configured scheme instance. Schemes are stateful (dynamic
/// pattern history), so every simulation run needs its own instance.
std::unique_ptr<SchemeBase> make_scheme(SchemeKind kind);

/// The three schemes of the paper's evaluation, in presentation order
/// (MKSS_ST, MKSS_DP, MKSS_selective).
std::vector<SchemeKind> evaluation_schemes();

}  // namespace mkss::sched
