// Backup procrastination ladder shared by the schemes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pattern.hpp"
#include "core/task.hpp"

namespace mkss::analysis {
class AnalysisCache;
}

namespace mkss::sched {

/// How far a backup job's eligibility is delayed past its release.
enum class BackupDelayPolicy : std::uint8_t {
  kNone,       ///< unprocrastinated: eligible at release (MKSS_ST style)
  kPromotion,  ///< dual-priority Y_i = D_i - R_i (Haque/Begam, Equation 2)
  kPostponed,  ///< exact theta_i from Definitions 2-5 (the paper's choice)
};

const char* to_string(BackupDelayPolicy policy);

/// Computes the per-task delay for a policy, applying the safety ladder
/// (exact theta -> Y -> 0) where an analysis is unavailable. `pattern`
/// selects which static pattern's mandatory jobs carry backups (used by the
/// theta analysis only).
std::vector<core::Ticks> backup_delays(
    const core::TaskSet& ts, BackupDelayPolicy policy,
    core::PatternKind pattern = core::PatternKind::kDeeplyRed);

/// Same ladder, but the promotion / postponement analyses come from (and are
/// memoized in) `cache`. Bit-identical to the uncached overload on
/// cache.taskset().
std::vector<core::Ticks> backup_delays(
    analysis::AnalysisCache& cache, BackupDelayPolicy policy,
    core::PatternKind pattern = core::PatternKind::kDeeplyRed);

}  // namespace mkss::sched
