// Static dynamic-voltage-scaling support (extension).
//
// The prior work the paper compares against ([7] Haque et al., [8] Begam et
// al.) combines standby-sparing with DVS on the main jobs; the paper
// evaluates "without applying DVS" and motivates that choice by the growing
// static-power share. This module provides the classic static per-task-set
// slowdown: the lowest normalized frequency f (from a discrete ladder) at
// which the scaled task set still passes the chosen response-time analysis.
// Main copies then run at f (longer but cheaper per Section II-A's dynamic
// power curve); backups stay at full speed so that a late recovery still
// fits before the deadline.
#pragma once

#include "analysis/rta.hpp"
#include "core/task.hpp"

namespace mkss::sched {

struct DvsOptions {
  bool enabled{false};
  double f_min{0.4};   ///< lowest frequency in the ladder
  double f_step{0.05};  ///< ladder granularity
};

/// Copy of `ts` with every WCET stretched to C / f (rounded up).
core::TaskSet scale_wcets(const core::TaskSet& ts, double f);

/// Lowest frequency in the ladder [f_min, 1] at which the scaled task set is
/// schedulable under `model`; 1.0 when no slowdown is feasible.
double lowest_feasible_frequency(const core::TaskSet& ts,
                                 analysis::DemandModel model,
                                 const DvsOptions& opts);

}  // namespace mkss::sched
