// Multi-spare -- N-1 primaries sharing one dedicated spare processor.
//
// The straight generalization of the paper's standby-sparing pair: tasks are
// partitioned over the first N-1 processors (utilization-balancing first-fit
// in priority order), while every backup goes to the last processor -- the
// spare -- postponed to r + theta_i exactly as on the dual platform
// (Definitions 2-5). Optional jobs are skipped.
//
// The spare's workload (all R-pattern backups, theta-postponed) is identical
// to the dual platform's spare, so the postponement analysis applies
// verbatim; the primaries each carry a subset of the dual platform's single
// primary, so main-side response times only shrink.
//
// Degraded mode keeps the postponement basis. When a primary dies, its
// tasks continue as single theta-postponed copies on the spare -- exactly
// the backup workload the analysis covered -- while the other primaries
// keep their duplicated releases. Releasing immediately instead (the
// SchemeBase default) is unsound here: a pre-death backup of job j shifted
// to r + theta_i followed by an immediate post-death release of job j+1
// puts two activations of one task on the spare closer than its period,
// more interference than any fixed-priority analysis of the backup set
// admits (found by the fuzz campaign as a mandatory miss with a single
// fault event). When the spare itself dies, mains continue untouched on
// their primaries and only the (never-guaranteed-anyway) backups are lost.
#pragma once

#include <vector>

#include "core/pattern.hpp"
#include "sched/backup_delay.hpp"
#include "sched/scheme_base.hpp"

namespace mkss::sched {

class MultiSpare final : public SchemeBase {
 public:
  std::string name() const override { return "Multi-spare"; }

  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override;
  void on_outcome(core::TaskIndex, std::uint64_t, core::JobOutcome) override {}
  void on_permanent_fault(sim::ProcessorId dead, core::Ticks now) override;

  /// Backup postponements actually in use (valid after setup()).
  const std::vector<core::Ticks>& backup_delays() const { return theta_; }

 protected:
  void on_setup() override;

 private:
  sim::ProcessorId spare() const {
    return static_cast<sim::ProcessorId>(num_procs() - 1);
  }

  std::vector<core::Ticks> theta_;
  std::vector<sim::ProcessorId> assign_;
  sim::ProcessorId dead_{0};
  bool spare_dead_{false};
};

}  // namespace mkss::sched
