// Minimal fixed-width table and CSV writers for the bench harnesses, so
// every reproduced figure prints as aligned terminal rows *and* is easy to
// dump to CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace mkss::report {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Fixed-width rendering with a separator under the header.
  std::string to_string() const;

  /// RFC-4180-ish CSV (quotes fields containing commas/quotes/newlines).
  std::string to_csv() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper: formats a double with the given precision.
std::string fmt(double value, int precision = 3);

/// Formats a ratio as a percentage string, e.g. 0.283 -> "28.3%".
std::string fmt_percent(double ratio, int precision = 1);

/// Formats a half-open interval, e.g. (0.2, 0.3) -> "[0.2,0.3)". The shared
/// bin-label helper for the sweep tables.
std::string interval(double lo, double hi, int precision = 1);

}  // namespace mkss::report
