#include "report/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mkss::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += std::string(width[c] - row[c].size(), ' ');
      out += (c + 1 < row.size()) ? "  " : "";
    }
    out += '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out += std::string(total, '-') + '\n';
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string Table::to_csv() const {
  const auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (const char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += escape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_percent(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string interval(double lo, double hi, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "[%.*f,%.*f)", precision, lo, precision, hi);
  return buf;
}

}  // namespace mkss::report
