// Umbrella header: the full public API of the (m,k) standby-sparing library.
//
// Quick tour:
//   core/      task model, jobs, (m,k) histories & flexibility degree,
//              R-/E-patterns, deterministic RNG, tick time base, thread pool
//   analysis/  response-time analysis, promotion times Y_i, backup release
//              postponement theta_i (Definitions 2-5), schedulability tests
//   sim/       dual-processor discrete-event engine, scheme & fault-plan
//              interfaces, traces, ASCII Gantt charts
//   energy/    P_act / DPD energy accounting
//   audit/     post-hoc trace auditor certifying structural invariants
//   fault/     permanent + Poisson transient fault plans, adversarial
//              fault-placement campaigns, chaos fuzz campaigns with
//              delta-debugged repro shrinking
//   sched/     MKSS_ST, MKSS_DP, MKSS_greedy, MKSS_selective (Algorithm 1),
//              N-processor global/partitioned FP, global EDF, multi-spare,
//              the self-registering scheme registry, backup-delay ladder,
//              static DVS
//   io/        task-set text files, repro bundles, the shared JSON writer,
//              JSON trace export, the serve wire protocol (JSONL)
//   workload/  Section-V random task-set generation, paper example task sets
//   metrics/   (m,k) QoS auditing (Theorem 1), running statistics
//   report/    fixed-width tables and CSV
//   harness/   RunSpec/run_one, BatchRunner (per-set analysis cache + pooled
//              engine), the Figure-6 evaluation sweeps, and the long-lived
//              admission service behind `mkss_cli serve`
#pragma once

#include "analysis/admission.hpp"
#include "analysis/breakdown.hpp"
#include "analysis/cache.hpp"
#include "analysis/postponement.hpp"
#include "analysis/promotion.hpp"
#include "analysis/rta.hpp"
#include "analysis/schedulability.hpp"
#include "audit/trace_auditor.hpp"
#include "core/check.hpp"
#include "core/hyperperiod.hpp"
#include "core/job.hpp"
#include "core/mk_constraint.hpp"
#include "core/pattern.hpp"
#include "core/release_timeline.hpp"
#include "core/rng.hpp"
#include "core/task.hpp"
#include "core/thread_pool.hpp"
#include "core/time.hpp"
#include "energy/energy_model.hpp"
#include "fault/campaign.hpp"
#include "fault/fuzz.hpp"
#include "fault/injection.hpp"
#include "fault/shrink.hpp"
#include "harness/batch_runner.hpp"
#include "harness/evaluation.hpp"
#include "harness/serve.hpp"
#include "io/json_writer.hpp"
#include "io/repro_bundle.hpp"
#include "io/serve_protocol.hpp"
#include "io/taskset_io.hpp"
#include "io/trace_json.hpp"
#include "metrics/decomposition.hpp"
#include "metrics/qos.hpp"
#include "metrics/summary.hpp"
#include "report/table.hpp"
#include "sched/factory.hpp"
#include "sched/global_edf.hpp"
#include "sched/global_fp.hpp"
#include "sched/multi_spare.hpp"
#include "sched/partitioned_fp.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"
#include "sim/trace_sink.hpp"
#include "workload/scenarios.hpp"
#include "workload/taskset_gen.hpp"
