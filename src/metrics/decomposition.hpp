// Energy decomposition by copy kind: where does each scheme's active energy
// actually go? (main executions, backup overlap that escaped cancellation,
// optional singles). Used by examples and the figure benches' narratives.
#pragma once

#include "energy/energy_model.hpp"
#include "sim/types.hpp"

namespace mkss::metrics {

struct ActiveEnergySplit {
  double main{0};
  double backup{0};
  double optional_jobs{0};

  double total() const noexcept { return main + backup + optional_jobs; }
  /// Fraction of the active energy spent on backup copies -- the paper's
  /// "overlapped executions" waste that procrastination/cancellation fights.
  double backup_share() const noexcept {
    const double t = total();
    return t > 0 ? backup / t : 0.0;
  }
};

/// Splits the trace's active energy by copy kind, honoring per-segment DVS
/// frequencies through the power model.
ActiveEnergySplit split_active_energy(const sim::SimulationTrace& trace,
                                      const energy::PowerParams& params = {});

}  // namespace mkss::metrics
