#include "metrics/decomposition.hpp"

#include <algorithm>

namespace mkss::metrics {

ActiveEnergySplit split_active_energy(const sim::SimulationTrace& trace,
                                      const energy::PowerParams& params) {
  ActiveEnergySplit split;
  for (const sim::ExecSegment& s : trace.segments) {
    const core::Ticks life_end =
        std::min(trace.horizon, trace.death_time[s.proc]);
    const core::Ticks len =
        std::min(s.span.end, life_end) - std::min(s.span.begin, life_end);
    if (len <= 0) continue;
    const double units = core::to_ms(len) * params.power_at(s.frequency);
    switch (s.kind) {
      case sim::CopyKind::kMain: split.main += units; break;
      case sim::CopyKind::kBackup: split.backup += units; break;
      case sim::CopyKind::kOptional: split.optional_jobs += units; break;
    }
  }
  return split;
}

}  // namespace mkss::metrics
