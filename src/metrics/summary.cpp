#include "metrics/summary.hpp"

#include <algorithm>
#include <cmath>

namespace mkss::metrics {

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double relative_gain(double a, double b) noexcept {
  return b == 0.0 ? 0.0 : (b - a) / b;
}

}  // namespace mkss::metrics
