#include "metrics/summary.hpp"

#include <algorithm>
#include <cmath>

namespace mkss::metrics {

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double relative_gain(double a, double b) noexcept {
  return b == 0.0 ? 0.0 : (b - a) / b;
}

}  // namespace mkss::metrics
