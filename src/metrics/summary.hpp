// Aggregation helpers for the evaluation benches: running statistics and
// normalized energy comparisons across many task sets.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mkss::metrics {

/// Streaming mean / min / max / stddev (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;

  /// Folds another accumulator into this one (Chan et al.'s parallel
  /// variance combination), as if every sample of `other` had been add()ed.
  /// Lets worker threads keep private accumulators that are merged after a
  /// barrier.
  void merge(const RunningStat& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::uint64_t n_{0};
  double mean_{0};
  double m2_{0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// One series (a scheme) of a Figure-6-style comparison: per utilization bin,
/// the mean energy normalized to the reference scheme's energy on the *same*
/// task sets.
struct SchemeSeries {
  std::string name;
  std::vector<RunningStat> normalized_per_bin;  ///< one stat per bin
};

/// Relative gain of `a` over `b` (b - a) / b; e.g. 0.28 == "28% lower".
double relative_gain(double a, double b) noexcept;

}  // namespace mkss::metrics
