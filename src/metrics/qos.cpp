#include "metrics/qos.hpp"

namespace mkss::metrics {

QosReport audit_qos(const sim::SimulationTrace& trace, const core::TaskSet& ts) {
  QosReport report;
  report.per_task.resize(ts.size());
  report.mandatory_misses = trace.stats.mandatory_misses;

  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    TaskQos& q = report.per_task[i];
    const auto& outcomes = trace.outcomes_per_task[i];
    q.jobs = outcomes.size();
    for (const core::JobOutcome o : outcomes) {
      if (o == core::JobOutcome::kMet) {
        ++q.met;
      } else {
        ++q.missed;
      }
    }
    q.violation = core::audit_mk_sequence(ts[i].m, ts[i].k, outcomes);
    if (q.violation) report.mk_satisfied = false;
  }
  return report;
}

}  // namespace mkss::metrics
