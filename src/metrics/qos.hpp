// Quality-of-service auditing of simulation traces.
//
// Theorem 1 promises that Algorithm 1 keeps every task's (m,k)-deadlines
// whenever the task set is R-pattern schedulable. This module certifies a
// trace against that promise: it replays each task's outcome sequence
// through the sliding-window auditor and reports the first violated window,
// plus miss statistics.
#pragma once

#include <optional>
#include <vector>

#include "core/mk_constraint.hpp"
#include "core/task.hpp"
#include "sim/types.hpp"

namespace mkss::metrics {

struct TaskQos {
  std::uint64_t jobs{0};
  std::uint64_t met{0};
  std::uint64_t missed{0};
  std::optional<core::MkViolation> violation;

  double miss_rate() const noexcept {
    return jobs == 0 ? 0.0 : static_cast<double>(missed) / static_cast<double>(jobs);
  }
};

struct QosReport {
  std::vector<TaskQos> per_task;
  bool mk_satisfied{true};             ///< no task violated its (m,k) window
  std::uint64_t mandatory_misses{0};   ///< mandatory jobs that missed (must be 0)

  bool theorem1_holds() const noexcept {
    return mk_satisfied && mandatory_misses == 0;
  }
};

/// Audits `trace` of `ts` (counted jobs only).
QosReport audit_qos(const sim::SimulationTrace& trace, const core::TaskSet& ts);

}  // namespace mkss::metrics
