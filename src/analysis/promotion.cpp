#include "analysis/promotion.hpp"

#include "analysis/rta.hpp"

namespace mkss::analysis {

std::vector<std::optional<core::Ticks>> promotion_times(const core::TaskSet& ts) {
  std::vector<std::optional<core::Ticks>> out(ts.size());
  const auto rts = response_times(ts, DemandModel::kAllJobs);
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    if (rts[i]) {
      out[i] = ts[i].deadline - *rts[i];
    }
  }
  return out;
}

}  // namespace mkss::analysis
