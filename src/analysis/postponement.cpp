#include "analysis/postponement.hpp"

#include <algorithm>

#include "analysis/promotion.hpp"
#include "core/pattern.hpp"

namespace mkss::analysis {

using core::Task;
using core::TaskIndex;
using core::TaskSet;
using core::Ticks;

namespace {

/// Floor division that is correct for negative numerators (unlike C++ '/',
/// which truncates toward zero).
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  const std::int64_t q = a / b;
  return (a % b != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
}

/// Per-task pattern lookup tables. Every (m,k) pattern here is periodic with
/// period k, so job l is mandatory iff mand[l % k], and the number of
/// mandatory jobs among 1..x has the closed form
/// (x / k) * per_group + prefix[x % k]. These turn the interference sums of
/// Equation 4 from per-job enumeration into O(1) counting -- same integer
/// arithmetic, same results.
struct PatternTable {
  std::vector<char> mand;           ///< indexed by l % k
  std::vector<std::int64_t> prefix; ///< prefix[t]: mandatory among 1..t of a group
};

PatternTable build_table(core::PatternKind pattern, const Task& task) {
  PatternTable out;
  out.mand.resize(task.k);
  out.prefix.resize(task.k + 1);
  out.prefix[0] = 0;
  for (std::uint32_t j = 1; j <= task.k; ++j) {
    const bool m = core::pattern_mandatory(pattern, task.m, task.k, j);
    out.mand[j % task.k] = m ? 1 : 0;
    out.prefix[j] = out.prefix[j - 1] + (m ? 1 : 0);
  }
  return out;
}

/// Mandatory jobs of `task` among instances 1..x (x may be non-positive).
std::int64_t mandatory_upto(const PatternTable& table, const Task& task,
                            std::int64_t x) noexcept {
  if (x <= 0) return 0;
  const std::int64_t k = task.k;
  return (x / k) * table.prefix[static_cast<std::size_t>(k)] +
         table.prefix[static_cast<std::size_t>(x % k)];
}

/// Sum of WCETs of mandatory jobs of `hp` with d_kl > r_ij and
/// r~_kl < t_bar (the interference term of Equation 4), in closed form:
/// the qualifying instances form the contiguous index range
/// [first + 1, floor((t_bar - theta - 1) / P) + 1].
Ticks interference_before(const PatternTable& table, const Task& hp, Ticks theta,
                          Ticks release_i, Ticks t_bar) {
  // d_kl > r_ij  =>  (l-1)P + D > r  =>  l-1 >= floor((r - D)/P) + 1.
  std::int64_t first = floor_div(release_i - hp.deadline, hp.period) + 1;
  first = std::max<std::int64_t>(first, 0);
  // r~ < t_bar  =>  (l-1)P + theta < t_bar  =>  l-1 <= floor((t_bar-theta-1)/P).
  const std::int64_t last = floor_div(t_bar - theta - 1, hp.period);
  if (last < first) return 0;
  const std::int64_t count = mandatory_upto(table, hp, last + 1) -
                             mandatory_upto(table, hp, first);
  return count * hp.wcet;
}

}  // namespace

PostponementResult compute_postponement(const TaskSet& ts,
                                        const PostponementOptions& opts) {
  PostponementResult result;
  result.per_task.resize(ts.size());

  const auto promos = promotion_times(ts);

  std::vector<PatternTable> tables;
  tables.reserve(ts.size());
  for (const Task& t : ts) tables.push_back(build_table(opts.pattern, t));

  std::vector<Ticks> ips;  // inspecting-point buffer, reused across jobs

  for (TaskIndex i = 0; i < ts.size(); ++i) {
    const Task& task = ts[i];
    TaskPostponement& out = result.per_task[i];

    // Safe floor: the dual-priority promotion time when full-set RTA holds.
    Ticks floor_theta = 0;
    ThetaSource floor_source = ThetaSource::kZero;
    if (promos[i] && *promos[i] > 0) {
      floor_theta = *promos[i];
      floor_source = ThetaSource::kPromotion;
    }

    const auto horizon = ts.mk_hyperperiod_upto(i, opts.horizon_cap);
    if (!horizon) {
      out = {floor_theta, floor_source};
      result.all_exact = false;
      continue;
    }

    // Exact analysis: minimum theta_ij over the mandatory jobs of one
    // per-level pattern hyperperiod.
    bool any_job = false;
    Ticks min_theta = core::kNever;
    for (std::uint64_t j = 1; static_cast<Ticks>(j - 1) * task.period < *horizon; ++j) {
      if (!tables[i].mand[j % task.k]) continue;
      any_job = true;
      const Ticks r = static_cast<Ticks>(j - 1) * task.period;
      const Ticks d = r + task.deadline;

      // Inspecting points (Definition 3): d_ij plus postponed releases of
      // higher-priority backup jobs strictly inside (r_ij, d_ij).
      ips.clear();
      ips.push_back(d);
      for (TaskIndex q = 0; q < i; ++q) {
        const Task& hp = ts[q];
        const Ticks theta = result.per_task[q].theta;
        // (l-1)P + theta > r  =>  l-1 >= floor((r - theta)/P) + 1.
        std::int64_t lm1 = std::max<std::int64_t>(
            floor_div(r - theta, hp.period) + 1, 0);
        for (;; ++lm1) {
          const Ticks r_tilde = lm1 * hp.period + theta;
          if (r_tilde >= d) break;
          if (tables[q].mand[static_cast<std::size_t>((lm1 + 1) %
                                                      hp.k)]) {
            ips.push_back(r_tilde);
          }
        }
      }

      Ticks theta_ij = std::numeric_limits<Ticks>::min();
      for (const Ticks t_bar : ips) {
        Ticks interf = 0;
        for (TaskIndex q = 0; q < i; ++q) {
          interf += interference_before(tables[q], ts[q],
                                        result.per_task[q].theta, r, t_bar);
        }
        theta_ij = std::max(theta_ij, t_bar - (task.wcet + interf) - r);
      }
      min_theta = std::min(min_theta, theta_ij);
      // min_theta only decreases, and any value below the safe floor clamps
      // to the floor below -- the remaining jobs cannot change the result.
      if (min_theta < floor_theta) break;
    }

    if (!any_job) {
      // m >= 1 guarantees at least one mandatory job per pattern period, so
      // this only happens with a degenerate horizon; fall back safely.
      out = {floor_theta, floor_source};
      result.all_exact = false;
      continue;
    }

    if (min_theta >= floor_theta) {
      out = {min_theta, ThetaSource::kExact};
    } else {
      // Exact value is negative or below the promotion time: postponing by
      // the promotion time (or not at all) is the safe choice.
      out = {floor_theta, floor_source};
    }
  }

  return result;
}

}  // namespace mkss::analysis
