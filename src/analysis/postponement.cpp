#include "analysis/postponement.hpp"

#include <algorithm>

#include "analysis/promotion.hpp"
#include "core/pattern.hpp"

namespace mkss::analysis {

using core::Task;
using core::TaskIndex;
using core::TaskSet;
using core::Ticks;

namespace {

/// Floor division that is correct for negative numerators (unlike C++ '/',
/// which truncates toward zero).
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  const std::int64_t q = a / b;
  return (a % b != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
}

/// Enumerates the 1-based indices l of pattern-mandatory jobs of `hp`
/// whose postponed release r~ = (l-1)P + theta lies in the open interval
/// (lo, hi), invoking fn(l, r_tilde).
template <typename Fn>
void for_mandatory_postponed_in(core::PatternKind pattern, const Task& hp,
                                Ticks theta, Ticks lo, Ticks hi, Fn&& fn) {
  if (hi <= lo) return;
  // (l-1)P + theta > lo  =>  l-1 >= floor((lo - theta)/P) + 1
  std::int64_t first = floor_div(lo - theta, hp.period) + 1;
  first = std::max<std::int64_t>(first, 0);
  for (std::int64_t lm1 = first;; ++lm1) {
    const Ticks r_tilde = lm1 * hp.period + theta;
    if (r_tilde >= hi) break;
    const auto l = static_cast<std::uint64_t>(lm1) + 1;
    if (core::pattern_mandatory(pattern, hp.m, hp.k, l)) fn(l, r_tilde);
  }
}

/// Sum of WCETs of mandatory jobs of `hp` with d_kl > r_ij and
/// r~_kl < t_bar (the interference term of Equation 4).
Ticks interference_before(core::PatternKind pattern, const Task& hp, Ticks theta,
                          Ticks release_i, Ticks t_bar) {
  Ticks sum = 0;
  // d_kl > r_ij  =>  (l-1)P + D > r  =>  l-1 >= floor((r - D)/P) + 1.
  std::int64_t first = floor_div(release_i - hp.deadline, hp.period) + 1;
  first = std::max<std::int64_t>(first, 0);
  for (std::int64_t lm1 = first;; ++lm1) {
    const Ticks r_tilde = lm1 * hp.period + theta;
    if (r_tilde >= t_bar) break;  // r~ grows with l, so we can stop here
    const auto l = static_cast<std::uint64_t>(lm1) + 1;
    if (core::pattern_mandatory(pattern, hp.m, hp.k, l)) sum += hp.wcet;
  }
  return sum;
}

}  // namespace

PostponementResult compute_postponement(const TaskSet& ts,
                                        const PostponementOptions& opts) {
  PostponementResult result;
  result.per_task.resize(ts.size());

  const auto promos = promotion_times(ts);

  for (TaskIndex i = 0; i < ts.size(); ++i) {
    const Task& task = ts[i];
    TaskPostponement& out = result.per_task[i];

    // Safe floor: the dual-priority promotion time when full-set RTA holds.
    Ticks floor_theta = 0;
    ThetaSource floor_source = ThetaSource::kZero;
    if (promos[i] && *promos[i] > 0) {
      floor_theta = *promos[i];
      floor_source = ThetaSource::kPromotion;
    }

    const auto horizon = ts.mk_hyperperiod_upto(i, opts.horizon_cap);
    if (!horizon) {
      out = {floor_theta, floor_source};
      result.all_exact = false;
      continue;
    }

    // Exact analysis: minimum theta_ij over the mandatory jobs of one
    // per-level pattern hyperperiod.
    bool any_job = false;
    Ticks min_theta = core::kNever;
    for (std::uint64_t j = 1; static_cast<Ticks>(j - 1) * task.period < *horizon; ++j) {
      if (!core::pattern_mandatory(opts.pattern, task.m, task.k, j)) continue;
      any_job = true;
      const Ticks r = static_cast<Ticks>(j - 1) * task.period;
      const Ticks d = r + task.deadline;

      // Inspecting points (Definition 3): d_ij plus postponed releases of
      // higher-priority backup jobs strictly inside (r_ij, d_ij).
      std::vector<Ticks> ips{d};
      for (TaskIndex q = 0; q < i; ++q) {
        for_mandatory_postponed_in(opts.pattern, ts[q], result.per_task[q].theta,
                                   r, d, [&](std::uint64_t, Ticks r_tilde) {
                                     ips.push_back(r_tilde);
                                   });
      }

      Ticks theta_ij = std::numeric_limits<Ticks>::min();
      for (const Ticks t_bar : ips) {
        Ticks interf = 0;
        for (TaskIndex q = 0; q < i; ++q) {
          interf += interference_before(opts.pattern, ts[q],
                                        result.per_task[q].theta, r, t_bar);
        }
        theta_ij = std::max(theta_ij, t_bar - (task.wcet + interf) - r);
      }
      min_theta = std::min(min_theta, theta_ij);
    }

    if (!any_job) {
      // m >= 1 guarantees at least one mandatory job per pattern period, so
      // this only happens with a degenerate horizon; fall back safely.
      out = {floor_theta, floor_source};
      result.all_exact = false;
      continue;
    }

    if (min_theta >= floor_theta) {
      out = {min_theta, ThetaSource::kExact};
    } else {
      // Exact value is negative or below the promotion time: postponing by
      // the promotion time (or not at all) is the safe choice.
      out = {floor_theta, floor_source};
    }
  }

  return result;
}

}  // namespace mkss::analysis
