// Backup-release postponement analysis (Definitions 2-5, Equations 3-5).
//
// Every backup job J'_ij on the spare processor may have its release
// postponed from r_ij to r~_ij = r_ij + theta_i without endangering its
// deadline. theta_i is derived offline from the static R-pattern:
//
//   * the inspecting points of J'_ij (Definition 3) are its absolute deadline
//     plus the postponed releases of higher-priority backup jobs falling
//     strictly inside (r_ij, d_ij);
//   * theta_ij (Equation 4) maximizes, over the inspecting points t-bar, the
//     slack t-bar - (c_ij + interference) - r_ij, where the interference sums
//     the WCETs of higher-priority backup jobs with d_kl > r_ij and
//     r~_kl < t-bar;
//   * theta_i (Equation 5) is the minimum theta_ij over one pattern
//     hyperperiod LCM_{q<=i}(k_q P_q).
//
// Because postponed releases of higher-priority tasks feed the inspecting
// points of lower-priority ones, tasks are processed in descending priority
// and each theta is finalized (including the promotion clamp below) before
// the next level is computed.
//
// Safety ladder: when the per-level hyperperiod exceeds the caller's cap we
// cannot take the exact minimum (a truncated minimum could only be too
// large, i.e. unsafe), so we fall back to the dual-priority promotion time
// Y_i (safe whenever the full task set passes RTA), and to 0 when even that
// is unavailable. The paper's closing remark "if theta_i is less than R_i,
// set theta_i to R_i" is read as the promotion clamp theta_i = max(theta_i,
// Y_i): postponing by the promotion time is always safe, so it is a valid
// floor for the exact analysis (Section IV notes theta_2 = 4 "is much larger
// than the promotion time ... Y_2 = 1").
#pragma once

#include <cstdint>
#include <vector>

#include "core/pattern.hpp"
#include "core/task.hpp"

namespace mkss::analysis {

/// How a task's postponement interval was obtained.
enum class ThetaSource : std::uint8_t {
  kExact,      ///< inspecting-point analysis over the full per-level hyperperiod
  kPromotion,  ///< fell back to (or was clamped up to) Y_i = D_i - R_i
  kZero,       ///< no safe postponement known; backups released unpostponed
};

struct TaskPostponement {
  core::Ticks theta{0};
  ThetaSource source{ThetaSource::kZero};
};

struct PostponementOptions {
  /// Per-priority-level pattern-hyperperiod cap for the exact analysis, in
  /// ticks. Levels whose LCM_{q<=i}(k_q P_q) exceeds this fall back to Y_i.
  core::Ticks horizon_cap = 100'000'000;  // 100 s
  /// Static pattern whose mandatory jobs have backups. The paper analyzes
  /// the deeply red pattern, whose synchronous release is the provable
  /// worst case (Theorem 1); other patterns reuse the same machinery but
  /// inherit only a synchronous-start guarantee.
  core::PatternKind pattern = core::PatternKind::kDeeplyRed;
};

struct PostponementResult {
  std::vector<TaskPostponement> per_task;
  /// True when every level used the exact inspecting-point analysis.
  bool all_exact{true};

  core::Ticks theta(core::TaskIndex i) const noexcept { return per_task[i].theta; }
};

/// Computes the release postponement interval of every task's backups.
PostponementResult compute_postponement(const core::TaskSet& ts,
                                        const PostponementOptions& opts = {});

}  // namespace mkss::analysis
