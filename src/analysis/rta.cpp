#include "analysis/rta.hpp"

#include "core/pattern.hpp"

namespace mkss::analysis {

using core::Task;
using core::TaskIndex;
using core::TaskSet;
using core::Ticks;

namespace {

/// Demand of higher-priority task `hp` inside a window of length t starting
/// at the critical instant.
Ticks interference(const Task& hp, Ticks t, DemandModel model) {
  switch (model) {
    case DemandModel::kAllJobs: {
      // ceil(t / P) releases contribute in [0, t).
      const Ticks jobs = (t + hp.period - 1) / hp.period;
      return jobs * hp.wcet;
    }
    case DemandModel::kRPatternMandatory: {
      const auto jobs = core::r_pattern_mandatory_released_before(hp, t);
      return static_cast<Ticks>(jobs) * hp.wcet;
    }
    case DemandModel::kEPatternMandatory: {
      const auto jobs = core::pattern_mandatory_released_before(
          core::PatternKind::kEvenlyDistributed, hp, t);
      return static_cast<Ticks>(jobs) * hp.wcet;
    }
  }
  return 0;
}

}  // namespace

DemandModel demand_model_for(core::PatternKind kind) noexcept {
  return kind == core::PatternKind::kDeeplyRed ? DemandModel::kRPatternMandatory
                                               : DemandModel::kEPatternMandatory;
}

std::optional<Ticks> response_time(const TaskSet& ts, TaskIndex i, DemandModel model) {
  const Task& task = ts[i];
  // Seed the iteration at C_i + sum of higher-priority WCETs: job 1 of every
  // task is mandatory under all demand models, so this lower-bounds demand(t)
  // for every t >= 1 and therefore the least fixed point -- the ascent below
  // converges to exactly the same value as the classic C_i start, in fewer
  // steps. A seed beyond D_i means the least fixed point is too, so the
  // reject short-circuits without evaluating demand at all.
  Ticks r = task.wcet;
  for (TaskIndex j = 0; j < i; ++j) r += ts[j].wcet;
  if (r > task.deadline) return std::nullopt;
  // Standard fixed-point iteration; monotone and bounded by D_i, so it
  // terminates in at most D_i / min(C_j) steps (far fewer in practice).
  while (true) {
    Ticks demand = task.wcet;
    for (TaskIndex j = 0; j < i; ++j) {
      demand += interference(ts[j], r, model);
    }
    if (demand == r) return r;
    if (demand > task.deadline) return std::nullopt;
    r = demand;
  }
}

std::vector<std::optional<Ticks>> response_times(const TaskSet& ts, DemandModel model) {
  std::vector<std::optional<Ticks>> out(ts.size());
  for (TaskIndex i = 0; i < ts.size(); ++i) {
    out[i] = response_time(ts, i, model);
  }
  return out;
}

bool schedulable(const TaskSet& ts, DemandModel model) {
  for (TaskIndex i = 0; i < ts.size(); ++i) {
    if (!response_time(ts, i, model)) return false;
  }
  return true;
}

}  // namespace mkss::analysis
