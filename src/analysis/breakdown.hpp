// Breakdown utilization: the classic schedulability headroom metric.
//
// Scales every WCET by a common factor and binary-searches the largest
// factor at which the task set still passes the chosen response-time
// analysis. A factor of 1.0 means "exactly at the edge"; > 1 quantifies
// slack, < 1 means the set is already infeasible. Benches use it to explain
// why, e.g., the deeply red pattern rejects more generated sets than the
// evenly distributed one.
#pragma once

#include "analysis/rta.hpp"
#include "core/task.hpp"

namespace mkss::analysis {

struct BreakdownOptions {
  double lo{0.01};
  double hi{4.0};
  double precision{1e-3};
};

/// Largest WCET scale factor under which `ts` stays schedulable under
/// `model`, within [lo, hi]; returns lo when even that is infeasible.
double breakdown_scale(const core::TaskSet& ts, DemandModel model,
                       const BreakdownOptions& opts = {});

}  // namespace mkss::analysis
