// Dual-priority promotion times (Equation 2 of the paper).
//
// In the dual-priority standby-sparing scheme of Haque et al. a backup job
// may be procrastinated by Y_i = D_i - R_i time units: once promoted at
// r + Y_i it runs at its regular fixed priority and, by definition of the
// worst-case response time R_i, still completes by r + Y_i + R_i = r + D_i.
// The bound holds for arbitrary release offsets of the interfering tasks
// because the synchronous busy window dominates every offset pattern.
#pragma once

#include <optional>
#include <vector>

#include "core/task.hpp"

namespace mkss::analysis {

/// Y_i = D_i - R_i with R_i from the full-set RTA, or std::nullopt when the
/// task set is not fully schedulable at priority i (no safe promotion known).
std::vector<std::optional<core::Ticks>> promotion_times(const core::TaskSet& ts);

}  // namespace mkss::analysis
