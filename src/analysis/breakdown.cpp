#include "analysis/breakdown.hpp"

#include <cmath>
#include <vector>

namespace mkss::analysis {

namespace {

bool feasible_at(const core::TaskSet& ts, DemandModel model, double scale) {
  std::vector<core::Task> tasks(ts.tasks());
  for (core::Task& t : tasks) {
    const double scaled = static_cast<double>(t.wcet) * scale;
    t.wcet = std::max<core::Ticks>(1, static_cast<core::Ticks>(std::llround(scaled)));
    if (t.wcet > t.deadline) return false;
  }
  return schedulable(core::TaskSet(std::move(tasks)), model);
}

}  // namespace

double breakdown_scale(const core::TaskSet& ts, DemandModel model,
                       const BreakdownOptions& opts) {
  double lo = opts.lo, hi = opts.hi;
  if (!feasible_at(ts, model, lo)) return lo;
  if (feasible_at(ts, model, hi)) return hi;
  while (hi - lo > opts.precision) {
    const double mid = 0.5 * (lo + hi);
    (feasible_at(ts, model, mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace mkss::analysis
