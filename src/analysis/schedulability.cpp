#include "analysis/schedulability.hpp"

#include <algorithm>

#include "analysis/rta.hpp"

namespace mkss::analysis {

SchedulabilityReport analyze_schedulability(const core::TaskSet& ts) {
  SchedulabilityReport report;
  report.response_mandatory = response_times(ts, DemandModel::kRPatternMandatory);
  report.response_full = response_times(ts, DemandModel::kAllJobs);
  auto ok = [](const auto& v) {
    return std::all_of(v.begin(), v.end(), [](const auto& r) { return r.has_value(); });
  };
  report.r_pattern_feasible = ok(report.response_mandatory);
  report.full_set_feasible = ok(report.response_full);
  return report;
}

}  // namespace mkss::analysis
