// Combined schedulability report used by the workload generator and the
// schemes' offline setup.
#pragma once

#include <optional>
#include <vector>

#include "analysis/postponement.hpp"
#include "core/task.hpp"

namespace mkss::analysis {

struct SchedulabilityReport {
  /// Mandatory (deeply red) jobs meet all deadlines under FP on one
  /// processor: the prerequisite of Theorem 1 and the acceptance criterion
  /// of the paper's task-set generation.
  bool r_pattern_feasible{false};
  /// Every job (mandatory and optional) meets its deadline under FP on one
  /// processor; enables the dual-priority promotion times.
  bool full_set_feasible{false};

  std::vector<std::optional<core::Ticks>> response_mandatory;
  std::vector<std::optional<core::Ticks>> response_full;
};

SchedulabilityReport analyze_schedulability(const core::TaskSet& ts);

}  // namespace mkss::analysis
