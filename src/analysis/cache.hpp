// Per-task-set memoization of the offline analyses.
//
// Every scheme that runs against a task set re-derives the same offline
// facts: the exact backup postponements theta_i (Definitions 2-5), the
// dual-priority promotion times Y_i = D_i - R_i (Equation 2), response
// times under the different demand models, and the (m,k)-pattern
// hyperperiod used as the simulation horizon. A sweep or fault campaign
// runs the same set through several scheme variants and dozens of fault
// plans; an AnalysisCache computes each analysis once per set and hands the
// memoized result to every consumer (schemes pick it up via
// sched::SchemeBase::bind_cache, the harness via harness::BatchRunner).
//
// The cache is keyed to one TaskSet by address and must not outlive it.
// Results are lazily computed on first request and bit-identical to calling
// the underlying analysis directly (they ARE that call, stored). Not
// thread-safe: use one instance per thread, like the task set runs it
// memoizes.
#pragma once

#include <array>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/postponement.hpp"
#include "analysis/promotion.hpp"
#include "analysis/rta.hpp"
#include "core/task.hpp"

namespace mkss::analysis {

class AnalysisCache {
 public:
  explicit AnalysisCache(const core::TaskSet& ts) : ts_(&ts) {}

  /// The task set this cache is keyed to (by address).
  const core::TaskSet& taskset() const noexcept { return *ts_; }

  /// compute_postponement(taskset(), opts), memoized per
  /// (opts.pattern, opts.horizon_cap).
  const PostponementResult& postponement(const PostponementOptions& opts = {});

  /// promotion_times(taskset()), memoized.
  const std::vector<std::optional<core::Ticks>>& promotions();

  /// response_times(taskset(), model), memoized per demand model.
  const std::vector<std::optional<core::Ticks>>& response_times(DemandModel model);

  /// True when every task's response time under `model` is within its
  /// deadline (same contract as analysis::schedulable).
  bool schedulable(DemandModel model);

  /// taskset().mk_hyperperiod(cap).value_or(cap) -- the harness's horizon
  /// choice -- memoized per cap.
  core::Ticks horizon(core::Ticks cap);

 private:
  struct ThetaEntry {
    core::PatternKind pattern;
    core::Ticks horizon_cap;
    PostponementResult result;
  };

  const core::TaskSet* ts_;
  std::vector<ThetaEntry> thetas_;
  std::optional<std::vector<std::optional<core::Ticks>>> promotions_;
  std::array<std::optional<std::vector<std::optional<core::Ticks>>>, 3> rta_;
  std::vector<std::pair<core::Ticks, core::Ticks>> horizons_;
};

}  // namespace mkss::analysis
