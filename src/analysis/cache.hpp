// Per-task-set memoization of the offline analyses.
//
// Every scheme that runs against a task set re-derives the same offline
// facts: the exact backup postponements theta_i (Definitions 2-5), the
// dual-priority promotion times Y_i = D_i - R_i (Equation 2), response
// times under the different demand models, and the (m,k)-pattern
// hyperperiod used as the simulation horizon. A sweep or fault campaign
// runs the same set through several scheme variants and dozens of fault
// plans; an AnalysisCache computes each analysis once per set and hands the
// memoized result to every consumer (schemes pick it up via
// sched::SchemeBase::bind_cache, the harness via harness::BatchRunner).
//
// The cache is keyed to one TaskSet by address and must not outlive it.
// Results are lazily computed on first request and bit-identical to calling
// the underlying analysis directly (they ARE that call, stored). Not
// thread-safe: use one instance per thread, like the task set runs it
// memoizes.
#pragma once

#include <array>
#include <optional>
#include <utility>
#include <vector>

#include <memory>

#include "analysis/postponement.hpp"
#include "analysis/promotion.hpp"
#include "analysis/rta.hpp"
#include "core/release_timeline.hpp"
#include "core/task.hpp"

namespace mkss::analysis {

/// Content-keyed cache of postponement analyses, shared across every task
/// set with the same timing/(m,k) content. Like core::TimelineCache it is
/// keyed by parameters rather than address, so a long-lived worker -- a
/// sweep thread, a serve worker -- reuses the theta analysis when the same
/// corpus set comes around again through a fresh per-request AnalysisCache.
/// Entries are immutable shared_ptrs (eviction cannot invalidate a pinned
/// result). Not thread-safe: one instance per thread/worker.
class PostponementCache {
 public:
  /// Results are a few dozen bytes each; an entry cap alone bounds memory.
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit PostponementCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// The postponement result of (ts, opts), computed on first request. The
  /// returned pointer stays valid regardless of later evictions.
  std::shared_ptr<const PostponementResult> get(const core::TaskSet& ts,
                                                const PostponementOptions& opts);

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::size_t entries() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t hash{0};
    /// [pattern, horizon_cap, (P, D, C, m, k)_0, (P, D, C, m, k)_1, ...] --
    /// every input theta depends on (priorities are the index order).
    std::vector<core::Ticks> key;
    std::uint64_t stamp{0};  ///< logical LRU clock
    std::shared_ptr<const PostponementResult> result;
  };

  std::size_t capacity_;
  std::uint64_t clock_{0};
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::vector<Entry> entries_;
  std::vector<core::Ticks> key_scratch_;
};

class AnalysisCache {
 public:
  explicit AnalysisCache(const core::TaskSet& ts) : ts_(&ts) {}

  /// Routes postponement() misses through a shared content-keyed backing
  /// cache (harness::RunContext owns one per worker). Optional; unset, every
  /// miss computes locally.
  void set_shared_postponements(PostponementCache* shared) noexcept {
    shared_thetas_ = shared;
  }

  /// The task set this cache is keyed to (by address).
  const core::TaskSet& taskset() const noexcept { return *ts_; }

  /// compute_postponement(taskset(), opts), memoized per
  /// (opts.pattern, opts.horizon_cap).
  const PostponementResult& postponement(const PostponementOptions& opts = {});

  /// promotion_times(taskset()), memoized.
  const std::vector<std::optional<core::Ticks>>& promotions();

  /// response_times(taskset(), model), memoized per demand model.
  const std::vector<std::optional<core::Ticks>>& response_times(DemandModel model);

  /// True when every task's response time under `model` is within its
  /// deadline (same contract as analysis::schedulable).
  bool schedulable(DemandModel model);

  /// taskset().mk_hyperperiod(cap).value_or(cap) -- the harness's horizon
  /// choice -- memoized per cap.
  core::Ticks horizon(core::Ticks cap);

  /// The release timeline of (taskset(), horizon), memoized per horizon.
  /// With `shared` non-null, a miss consults the content-keyed backing cache
  /// first -- that is how a serve worker whose requests re-parse the same
  /// corpus set hits warm across fresh per-request AnalysisCaches. The
  /// returned reference is pinned by this cache (shared ownership) for the
  /// cache's lifetime, eviction from `shared` notwithstanding.
  const core::ReleaseTimeline& timeline(core::Ticks horizon,
                                        core::TimelineCache* shared = nullptr);

 private:
  struct ThetaEntry {
    core::PatternKind pattern;
    core::Ticks horizon_cap;
    std::shared_ptr<const PostponementResult> result;
  };

  const core::TaskSet* ts_;
  PostponementCache* shared_thetas_{nullptr};
  std::vector<ThetaEntry> thetas_;
  std::optional<std::vector<std::optional<core::Ticks>>> promotions_;
  std::array<std::optional<std::vector<std::optional<core::Ticks>>>, 3> rta_;
  std::vector<std::pair<core::Ticks, core::Ticks>> horizons_;
  std::vector<std::pair<core::Ticks, std::shared_ptr<const core::ReleaseTimeline>>>
      timelines_;
};

}  // namespace mkss::analysis
