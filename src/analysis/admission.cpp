#include "analysis/admission.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/pattern.hpp"

namespace mkss::analysis {

using core::Task;
using core::TaskSet;
using core::Ticks;

namespace {

/// Under kAllJobs every released job demands time: effm == effk == 1 and the
/// (empty) tail contributes nothing. The arena mirror of this table is the
/// reserved slot arena_[0] == 0.
constexpr std::uint32_t kAllJobsPrefix[1] = {0};

/// Hyperbolic-bound threshold with a floating-point safety margin. The
/// product of n (1 + U_i) factors accumulates at most ~3n ulp of relative
/// rounding error (n is tiny here), far below 1e-12, so:
///   computed <= margin  =>  true product < 2  =>  truly schedulable.
/// A candidate whose true product is within 1e-12 of 2 simply falls through
/// to the exact stage instead -- the margin can delay the cheap accept but
/// never contradict the exact verdict.
constexpr double kHyperbolicMargin = 2.0 * (1.0 - 1e-12);

constexpr Ticks kNoProbe = std::numeric_limits<Ticks>::max();

/// Upper edge of the exact magic-division domain (values must be < 2^31).
constexpr Ticks kFitLimit = Ticks{1} << 31;

}  // namespace

const AdmissionContext::PrefixTable* AdmissionContext::prefix_for(
    DemandModel model, std::uint32_t m, std::uint32_t k) {
  const std::uint8_t kind = model == DemandModel::kRPatternMandatory ? 0 : 1;
  if (k <= kFlatMaxK) {
    if (prefix_flat_.empty()) {
      prefix_flat_.assign(2 * (kFlatMaxK + 1) * (kFlatMaxK + 1), nullptr);
    }
    const std::size_t idx =
        (static_cast<std::size_t>(kind) * (kFlatMaxK + 1) + k) * (kFlatMaxK + 1) +
        m;
    const PrefixTable*& slot = prefix_flat_[idx];
    if (slot == nullptr) slot = build_prefix(kind, m, k);
    return slot;
  }
  return build_prefix(kind, m, k);
}

const AdmissionContext::PrefixTable* AdmissionContext::build_prefix(
    std::uint8_t kind, std::uint32_t m, std::uint32_t k) {
  auto [it, inserted] = prefix_cache_.try_emplace(std::tuple{kind, m, k});
  if (inserted) {
    // prefix[r] = mandatory jobs among the first r jobs of an aligned
    // k-group. Both patterns are periodic with period k and hold exactly m
    // mandatory jobs per group (for the E-pattern because
    // ceil((a+k)m/k) = ceil(am/k) + m exactly in integer arithmetic), so the
    // tail-group count only depends on released % k.
    std::vector<std::uint32_t>& prefix = it->second.counts;
    prefix.resize(k);
    if (kind == 0) {
      // Deeply red: jobs 1..m of each group are mandatory.
      for (std::uint32_t r = 0; r < k; ++r) prefix[r] = std::min(r, m);
    } else {
      std::uint32_t count = 0;
      prefix[0] = 0;
      for (std::uint32_t r = 1; r < k; ++r) {
        count += core::e_pattern_mandatory(m, k, r) ? 1U : 0U;
        prefix[r] = count;
      }
    }
    // Append the same counts to the flat gather arena; offsets are stable
    // because the arena only ever grows.
    it->second.arena_off = static_cast<std::uint32_t>(arena_.size());
    arena_.insert(arena_.end(), prefix.begin(), prefix.end());
  }
  return &it->second;
}

Ticks AdmissionContext::demand_at(const std::vector<Row>& rows,
                                  const DemandArrays& soa, std::size_t i,
                                  Ticks t) const {
  // Demand of task i (priority order) in a window [0, t), t >= 1: its own
  // WCET plus every higher-priority task's mandatory releases. released =
  // (t-1)/P + 1 equals the reference's ceil(t/P); the step table turns the
  // pattern count into one divide and one prefix lookup, and on the 31-bit
  // domain the runtime-dispatched simd kernel evaluates the rows in magic-
  // division lanes -- exactly, so both forms agree bit for bit.
  Ticks demand = rows[i].wcet;
  if (soa.fits) {
    const core::simd::DemandView v{soa.pmul.data(),  soa.pshift.data(),
                                   soa.kmul.data(),  soa.kshift.data(),
                                   soa.effm.data(),  soa.effk.data(),
                                   soa.wcet.data(),  soa.poff.data(),
                                   arena_.data()};
    return demand + static_cast<Ticks>(core::simd::demand_hp_sum(
                        v, i, static_cast<std::uint64_t>(t - 1)));
  }
  for (std::size_t j = 0; j < i; ++j) {
    const Row& hp = rows[j];
    const auto released = static_cast<std::uint64_t>((t - 1) / hp.period) + 1;
    const std::uint64_t count =
        (released / hp.effk) * hp.effm + hp.prefix[released % hp.effk];
    demand += static_cast<Ticks>(count) * hp.wcet;
  }
  return demand;
}

template <class TaskAt>
bool AdmissionContext::build_ladder(TaskAt&& at, std::size_t n,
                                    std::vector<Row>& rows,
                                    AdmissionVerdict& decided) {
  rows.resize(n);
  // One fused pass builds the rows and runs stages 1 and 2: most candidates
  // decide here, before any interference step table is resolved. Stage 1 is
  // exact: demand_i(t) >= S0_i for every t >= 1 (job 1 is mandatory under
  // all patterns), so S0_i > D_i certifies unschedulability. Stage 2 is
  // valid for implicit deadlines under rate-monotonic-consistent priorities;
  // mandatory demand is dominated by full-jobs demand
  // (count_pattern(released) <= released), so a full-jobs certificate covers
  // every demand model.
  Ticks hp_sum = 0;
  bool rm_implicit = true;
  double prod = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = at(i);
    Row& row = rows[i];
    row.period = t.period;
    row.deadline = t.deadline;
    row.wcet = t.wcet;
    row.s0 = hp_sum + t.wcet;
    if (row.s0 > row.deadline) {
      decided = {false, AdmissionStage::kLowerBoundReject};
      return true;
    }
    row.effm = t.m;  // raw draw; resolve_prefixes() maps to effective values
    row.effk = t.k;
    hp_sum += t.wcet;
    rm_implicit = rm_implicit && t.deadline == t.period &&
                  (i == 0 || rows[i - 1].period <= t.period);
    prod *= 1.0 + static_cast<double>(t.wcet) / static_cast<double>(t.period);
  }
  if (rm_implicit && prod <= kHyperbolicMargin) {
    decided = {true, AdmissionStage::kHyperbolicAccept};
    return true;
  }
  return false;
}

AdmissionVerdict AdmissionContext::admit(const TaskSet& ts, DemandModel model) {
  const std::size_t n = ts.size();
  if (n == 0) return {true, AdmissionStage::kProbeAccept};  // vacuously
  AdmissionVerdict decided;
  if (build_ladder([&](std::size_t i) -> const Task& { return ts[i]; }, n,
                   rows_, decided)) {
    return decided;
  }
  resolve_prefixes(model, rows_, soa_);
  return admit_rows(rows_, soa_);
}

AdmissionVerdict AdmissionContext::admit(const std::vector<Task>& tasks,
                                         const std::vector<std::uint32_t>& order,
                                         DemandModel model) {
  const std::size_t n = order.size();
  if (n == 0) return {true, AdmissionStage::kProbeAccept};  // vacuously
  AdmissionVerdict decided;
  if (build_ladder(
          [&](std::size_t i) -> const Task& { return tasks[order[i]]; }, n,
          rows_, decided)) {
    return decided;
  }
  resolve_prefixes(model, rows_, soa_);
  return admit_rows(rows_, soa_);
}

/// Maps each row's raw (m, k) draw to the effective step-table triple and
/// mirrors the resolved rows into the SoA arrays the simd demand kernel
/// consumes. Only candidates that survive stages 1 and 2 pay for this.
void AdmissionContext::resolve_prefixes(DemandModel model,
                                        std::vector<Row>& rows,
                                        DemandArrays& soa) {
  const std::size_t n = rows.size();
  soa.pmul.resize(n);
  soa.pshift.resize(n);
  soa.kmul.resize(n);
  soa.kshift.resize(n);
  soa.effm.resize(n);
  soa.effk.resize(n);
  soa.wcet.resize(n);
  soa.poff.resize(n);
  // The vector lanes are exact only on the 31-bit domain; the wcet-sum bound
  // additionally guarantees the u64 demand accumulation cannot wrap
  // (count_j <= released_j < 2^31 and sum C_j < 2^31 give a < 2^62 total).
  bool fits = true;
  std::uint64_t wcet_sum = 0;
  for (std::size_t j = 0; j < n; ++j) {
    Row& row = rows[j];
    if (model == DemandModel::kAllJobs) {
      row.effm = 1;
      row.effk = 1;
      row.prefix = kAllJobsPrefix;
      row.poff = 0;  // arena_[0] is the reserved all-jobs slot
    } else {
      const PrefixTable* table =
          prefix_for(model, static_cast<std::uint32_t>(row.effm),
                     static_cast<std::uint32_t>(row.effk));
      row.prefix = table->counts.data();
      row.poff = table->arena_off;
    }
    fits = fits && row.period < kFitLimit && row.deadline < kFitLimit &&
           row.wcet < kFitLimit &&
           row.effm < static_cast<std::uint64_t>(kFitLimit) &&
           row.effk < static_cast<std::uint64_t>(kFitLimit);
    if (fits) {
      wcet_sum += static_cast<std::uint64_t>(row.wcet);
      const auto pm =
          core::simd::div_magic_u31(static_cast<std::uint32_t>(row.period));
      const auto km =
          core::simd::div_magic_u31(static_cast<std::uint32_t>(row.effk));
      soa.pmul[j] = pm.mul;
      soa.pshift[j] = pm.shift;
      soa.kmul[j] = km.mul;
      soa.kshift[j] = km.shift;
      soa.effm[j] = row.effm;
      soa.effk[j] = row.effk;
      soa.wcet[j] = static_cast<std::uint64_t>(row.wcet);
      soa.poff[j] = row.poff;
    }
  }
  soa.fits = fits && wcet_sum < static_cast<std::uint64_t>(kFitLimit);
}

AdmissionVerdict AdmissionContext::admit_rows(std::vector<Row>& rows,
                                              const DemandArrays& soa) {
  const std::size_t n = rows.size();

  // Stages 3+4 -- probe, then exact (stages 1 and 2 ran fused into the
  // row-building pass in build_ladder). Lowest priority first: the verdict
  // is a conjunction (order-independent), and random candidates
  // overwhelmingly fail at the lowest-priority task, so rejects exit after
  // one task.
  if (probe_.size() < n) probe_.resize(n, kNoProbe);
  bool exact_used = false;
  for (std::size_t i = n; i-- > 0;) {
    const Row& row = rows[i];
    if (probe_[i] != kNoProbe) {
      // Any q with demand(q) <= q is a post-fixed point of the monotone
      // demand function, so the least fixed point is <= q <= D_i: accepted.
      // demand(q) is itself a (tighter) post-fixed point; remember it.
      // q < S0_i cannot certify (demand >= S0_i everywhere) -- skip the eval.
      const Ticks q = std::min(probe_[i], row.deadline);
      if (q >= row.s0) {
        const Ticks d = demand_at(rows, soa, i, q);
        if (d <= q) {
          probe_[i] = d;
          continue;
        }
      }
    }
    // Exact fixed point, seeded at S0_i: demand(t) >= S0_i everywhere, so
    // S0_i lower-bounds the least fixed point and the ascent converges to
    // exactly the value the reference reaches from C_i.
    exact_used = true;
    Ticks r = row.s0;
    while (true) {
      const Ticks d = demand_at(rows, soa, i, r);
      if (d == r) break;
      if (d > row.deadline) return {false, AdmissionStage::kExactReject};
      r = d;
    }
    probe_[i] = r;
  }
  return {true,
          exact_used ? AdmissionStage::kExactAccept : AdmissionStage::kProbeAccept};
}

bool AdmissionContext::lockstep_step(CandState& c, AdmissionVerdict* out) {
  const auto advance = [&]() -> bool {
    if (c.level == 0) {
      out[c.out_index] = {true, c.exact_used ? AdmissionStage::kExactAccept
                                             : AdmissionStage::kProbeAccept};
      return true;
    }
    --c.level;
    c.in_probe = true;
    return false;
  };
  const Row& row = c.rows[c.level];
  if (c.in_probe) {
    c.in_probe = false;
    if (probe_[c.level] != kNoProbe) {
      const Ticks q = std::min(probe_[c.level], row.deadline);
      if (q >= row.s0) {
        const Ticks d = demand_at(c.rows, c.soa, c.level, q);
        if (d <= q) {
          probe_[c.level] = d;
          return advance();
        }
        // The probe evaluation failed: this round's demand evaluation is
        // spent, the exact ascent starts on the next lockstep round.
        c.t = row.s0;
        c.exact_used = true;
        return false;
      }
    }
    // No usable probe hint: seed the exact ascent and evaluate this round.
    c.t = row.s0;
    c.exact_used = true;
  }
  const Ticks d = demand_at(c.rows, c.soa, c.level, c.t);
  if (d == c.t) {
    probe_[c.level] = c.t;
    return advance();
  }
  if (d > row.deadline) {
    out[c.out_index] = {false, AdmissionStage::kExactReject};
    return true;
  }
  c.t = d;
  return false;
}

void AdmissionContext::admit_batch(const SoACandidate* cands, std::size_t count,
                                   DemandModel model, AdmissionVerdict* out,
                                   double* ladder_seconds,
                                   double* exact_seconds) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  if (batch_.size() < count) batch_.resize(count);
  std::vector<std::uint32_t> active;
  active.reserve(count);
  std::size_t max_n = 0;
  for (std::size_t c = 0; c < count; ++c) {
    const SoACandidate& cd = cands[c];
    if (cd.n == 0) {
      out[c] = {true, AdmissionStage::kProbeAccept};  // vacuously
      continue;
    }
    CandState& st = batch_[c];
    AdmissionVerdict decided;
    const auto at = [&cd](std::size_t i) {
      struct Fields {
        Ticks period, deadline, wcet;
        std::uint32_t m, k;
      };
      const std::uint32_t raw = cd.order[i];
      return Fields{cd.period[raw], cd.deadline[raw], cd.wcet[raw], cd.m[raw],
                    cd.k[raw]};
    };
    if (build_ladder(at, cd.n, st.rows, decided)) {
      out[c] = decided;
      continue;
    }
    resolve_prefixes(model, st.rows, st.soa);
    st.out_index = c;
    st.level = cd.n - 1;
    st.t = 0;
    st.in_probe = true;
    st.exact_used = false;
    max_n = std::max(max_n, cd.n);
    active.push_back(static_cast<std::uint32_t>(c));
  }
  if (probe_.size() < max_n) probe_.resize(max_n, kNoProbe);
  const auto t1 = clock::now();
  // Lockstep rounds: every unresolved candidate advances by exactly one
  // demand evaluation per round; resolved candidates retire from the active
  // list in place, the rest keep iterating.
  while (!active.empty()) {
    std::size_t keep = 0;
    for (const std::uint32_t idx : active) {
      if (!lockstep_step(batch_[idx], out)) active[keep++] = idx;
    }
    active.resize(keep);
  }
  const auto t2 = clock::now();
  if (ladder_seconds != nullptr) {
    *ladder_seconds += std::chrono::duration<double>(t1 - t0).count();
  }
  if (exact_seconds != nullptr) {
    *exact_seconds += std::chrono::duration<double>(t2 - t1).count();
  }
}

}  // namespace mkss::analysis
