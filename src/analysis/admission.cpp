#include "analysis/admission.hpp"

#include <algorithm>
#include <limits>

#include "core/pattern.hpp"

namespace mkss::analysis {

using core::Task;
using core::TaskSet;
using core::Ticks;

namespace {

/// Under kAllJobs every released job demands time: effm == effk == 1 and the
/// (empty) tail contributes nothing.
constexpr std::uint32_t kAllJobsPrefix[1] = {0};

/// Hyperbolic-bound threshold with a floating-point safety margin. The
/// product of n (1 + U_i) factors accumulates at most ~3n ulp of relative
/// rounding error (n is tiny here), far below 1e-12, so:
///   computed <= margin  =>  true product < 2  =>  truly schedulable.
/// A candidate whose true product is within 1e-12 of 2 simply falls through
/// to the exact stage instead -- the margin can delay the cheap accept but
/// never contradict the exact verdict.
constexpr double kHyperbolicMargin = 2.0 * (1.0 - 1e-12);

constexpr Ticks kNoProbe = std::numeric_limits<Ticks>::max();

}  // namespace

const std::uint32_t* AdmissionContext::prefix_for(DemandModel model,
                                                  std::uint32_t m,
                                                  std::uint32_t k) {
  const std::uint8_t kind = model == DemandModel::kRPatternMandatory ? 0 : 1;
  if (k <= kFlatMaxK) {
    if (prefix_flat_.empty()) {
      prefix_flat_.assign(2 * (kFlatMaxK + 1) * (kFlatMaxK + 1), nullptr);
    }
    const std::size_t idx =
        (static_cast<std::size_t>(kind) * (kFlatMaxK + 1) + k) * (kFlatMaxK + 1) +
        m;
    const std::uint32_t*& slot = prefix_flat_[idx];
    if (slot == nullptr) slot = build_prefix(kind, m, k);
    return slot;
  }
  return build_prefix(kind, m, k);
}

const std::uint32_t* AdmissionContext::build_prefix(std::uint8_t kind,
                                                    std::uint32_t m,
                                                    std::uint32_t k) {
  auto [it, inserted] = prefix_cache_.try_emplace(std::tuple{kind, m, k});
  if (inserted) {
    // prefix[r] = mandatory jobs among the first r jobs of an aligned
    // k-group. Both patterns are periodic with period k and hold exactly m
    // mandatory jobs per group (for the E-pattern because
    // ceil((a+k)m/k) = ceil(am/k) + m exactly in integer arithmetic), so the
    // tail-group count only depends on released % k.
    std::vector<std::uint32_t>& prefix = it->second;
    prefix.resize(k);
    if (kind == 0) {
      // Deeply red: jobs 1..m of each group are mandatory.
      for (std::uint32_t r = 0; r < k; ++r) prefix[r] = std::min(r, m);
    } else {
      std::uint32_t count = 0;
      prefix[0] = 0;
      for (std::uint32_t r = 1; r < k; ++r) {
        count += core::e_pattern_mandatory(m, k, r) ? 1U : 0U;
        prefix[r] = count;
      }
    }
  }
  return it->second.data();
}

Ticks AdmissionContext::demand_at(std::size_t i, Ticks t) const {
  // Demand of task i (priority order) in a window [0, t), t >= 1: its own
  // WCET plus every higher-priority task's mandatory releases. released =
  // (t-1)/P + 1 equals the reference's ceil(t/P); the step table turns the
  // pattern count into one divide and one prefix lookup.
  Ticks demand = rows_[i].wcet;
  for (std::size_t j = 0; j < i; ++j) {
    const Row& hp = rows_[j];
    const auto released = static_cast<std::uint64_t>((t - 1) / hp.period) + 1;
    const std::uint64_t count =
        (released / hp.effk) * hp.effm + hp.prefix[released % hp.effk];
    demand += static_cast<Ticks>(count) * hp.wcet;
  }
  return demand;
}

AdmissionVerdict AdmissionContext::admit(const TaskSet& ts, DemandModel model) {
  const std::size_t n = ts.size();
  if (n == 0) return {true, AdmissionStage::kProbeAccept};  // vacuously
  rows_.resize(n);
  // One fused pass builds the rows and runs stages 1 and 2 (see admit_rows'
  // comments for the soundness arguments): most candidates decide here,
  // before any interference step table is resolved.
  Ticks hp_sum = 0;
  bool rm_implicit = true;
  double prod = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = ts[i];
    Row& row = rows_[i];
    row.period = t.period;
    row.deadline = t.deadline;
    row.wcet = t.wcet;
    row.s0 = hp_sum + t.wcet;
    if (row.s0 > row.deadline) return {false, AdmissionStage::kLowerBoundReject};
    row.effm = t.m;  // raw draw; resolve_prefixes() maps to effective values
    row.effk = t.k;
    hp_sum += t.wcet;
    rm_implicit = rm_implicit && t.deadline == t.period &&
                  (i == 0 || rows_[i - 1].period <= t.period);
    prod *= 1.0 + static_cast<double>(t.wcet) / static_cast<double>(t.period);
  }
  if (rm_implicit && prod <= kHyperbolicMargin) {
    return {true, AdmissionStage::kHyperbolicAccept};
  }
  resolve_prefixes(model);
  return admit_rows();
}

AdmissionVerdict AdmissionContext::admit(const std::vector<Task>& tasks,
                                         const std::vector<std::uint32_t>& order,
                                         DemandModel model) {
  const std::size_t n = order.size();
  if (n == 0) return {true, AdmissionStage::kProbeAccept};  // vacuously
  rows_.resize(n);
  Ticks hp_sum = 0;
  bool rm_implicit = true;
  double prod = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = tasks[order[i]];
    Row& row = rows_[i];
    row.period = t.period;
    row.deadline = t.deadline;
    row.wcet = t.wcet;
    row.s0 = hp_sum + t.wcet;
    if (row.s0 > row.deadline) return {false, AdmissionStage::kLowerBoundReject};
    row.effm = t.m;
    row.effk = t.k;
    hp_sum += t.wcet;
    rm_implicit = rm_implicit && t.deadline == t.period &&
                  (i == 0 || rows_[i - 1].period <= t.period);
    prod *= 1.0 + static_cast<double>(t.wcet) / static_cast<double>(t.period);
  }
  if (rm_implicit && prod <= kHyperbolicMargin) {
    return {true, AdmissionStage::kHyperbolicAccept};
  }
  resolve_prefixes(model);
  return admit_rows();
}

/// Maps each row's raw (m, k) draw to the effective step-table triple. Only
/// candidates that survive stages 1 and 2 pay for table lookups.
void AdmissionContext::resolve_prefixes(DemandModel model) {
  for (Row& row : rows_) {
    if (model == DemandModel::kAllJobs) {
      row.effm = 1;
      row.effk = 1;
      row.prefix = kAllJobsPrefix;
    } else {
      row.prefix = prefix_for(model, static_cast<std::uint32_t>(row.effm),
                              static_cast<std::uint32_t>(row.effk));
    }
  }
}

AdmissionVerdict AdmissionContext::admit_rows() {
  const std::size_t n = rows_.size();

  // Stage 1 -- demand lower bound -- and stage 2 -- hyperbolic sufficient
  // accept -- already ran fused into the row-building pass in admit().
  // Stage 1 is exact: demand_i(t) >= S0_i for every t >= 1 (job 1 is
  // mandatory under all patterns), so S0_i > D_i certifies unschedulability.
  // Stage 2 is valid for implicit deadlines under rate-monotonic-consistent
  // priorities; mandatory demand is dominated by full-jobs demand
  // (count_pattern(released) <= released), so a full-jobs certificate covers
  // every demand model.

  // Stages 3+4 -- probe, then exact. Lowest priority first: the verdict is a
  // conjunction (order-independent), and random candidates overwhelmingly
  // fail at the lowest-priority task, so rejects exit after one task.
  if (probe_.size() < n) probe_.resize(n, kNoProbe);
  bool exact_used = false;
  for (std::size_t i = n; i-- > 0;) {
    const Row& row = rows_[i];
    if (probe_[i] != kNoProbe) {
      // Any q with demand(q) <= q is a post-fixed point of the monotone
      // demand function, so the least fixed point is <= q <= D_i: accepted.
      // demand(q) is itself a (tighter) post-fixed point; remember it.
      // q < S0_i cannot certify (demand >= S0_i everywhere) -- skip the eval.
      const Ticks q = std::min(probe_[i], row.deadline);
      if (q >= row.s0) {
        const Ticks d = demand_at(i, q);
        if (d <= q) {
          probe_[i] = d;
          continue;
        }
      }
    }
    // Exact fixed point, seeded at S0_i: demand(t) >= S0_i everywhere, so
    // S0_i lower-bounds the least fixed point and the ascent converges to
    // exactly the value the reference reaches from C_i.
    exact_used = true;
    Ticks r = row.s0;
    while (true) {
      const Ticks d = demand_at(i, r);
      if (d == r) break;
      if (d > row.deadline) return {false, AdmissionStage::kExactReject};
      r = d;
    }
    probe_[i] = r;
  }
  return {true,
          exact_used ? AdmissionStage::kExactAccept : AdmissionStage::kProbeAccept};
}

}  // namespace mkss::analysis
