// Fixed-priority response-time analysis (RTA).
//
// Two demand models are provided:
//  * full-set RTA: every job of every task executes (classic Joseph/Pandya
//    iteration). Used to derive the dual-priority promotion times
//    Y_i = D_i - R_i (Equation 2 of the paper).
//  * R-pattern RTA: only the mandatory jobs under the deeply red pattern
//    demand time. Theorem 1 makes "schedulable under R-pattern" the
//    prerequisite for the (m,k) guarantee of Algorithm 1, and its proof shows
//    the critical instant is the synchronous R-pattern release, which is
//    exactly the demand this analysis uses.
//
// All analyses assume constrained deadlines (D_i <= P_i), which the task
// model enforces.
#pragma once

#include <optional>
#include <vector>

#include "core/pattern.hpp"
#include "core/task.hpp"

namespace mkss::analysis {

/// Which jobs contribute processor demand.
enum class DemandModel {
  kAllJobs,            ///< every released job executes for its WCET
  kRPatternMandatory,  ///< only deeply-red mandatory jobs execute
  kEPatternMandatory,  ///< only evenly-distributed mandatory jobs execute
};

/// Demand model matching a static pattern kind.
DemandModel demand_model_for(core::PatternKind kind) noexcept;

/// Worst-case response time of task `i` under fixed priorities, or
/// std::nullopt when the fixed-point iteration exceeds the task deadline
/// (the task is unschedulable at its priority under this demand model).
std::optional<core::Ticks> response_time(const core::TaskSet& ts, core::TaskIndex i,
                                         DemandModel model);

/// Response times for every task; entry i is std::nullopt when tau_i misses.
std::vector<std::optional<core::Ticks>> response_times(const core::TaskSet& ts,
                                                       DemandModel model);

/// True when every task's response time is within its deadline.
bool schedulable(const core::TaskSet& ts, DemandModel model);

}  // namespace mkss::analysis
