#include "analysis/cache.hpp"

#include <algorithm>

namespace mkss::analysis {

std::shared_ptr<const PostponementResult> PostponementCache::get(
    const core::TaskSet& ts, const PostponementOptions& opts) {
  key_scratch_.clear();
  key_scratch_.push_back(static_cast<core::Ticks>(opts.pattern));
  key_scratch_.push_back(opts.horizon_cap);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    key_scratch_.push_back(ts[i].period);
    key_scratch_.push_back(ts[i].deadline);
    key_scratch_.push_back(ts[i].wcet);
    key_scratch_.push_back(static_cast<core::Ticks>(ts[i].m));
    key_scratch_.push_back(static_cast<core::Ticks>(ts[i].k));
  }
  const std::uint64_t hash = core::content_hash(key_scratch_);
  ++clock_;
  for (Entry& e : entries_) {
    if (e.hash == hash && e.key == key_scratch_) {
      ++hits_;
      e.stamp = clock_;
      return e.result;
    }
  }
  ++misses_;
  auto owned =
      std::make_shared<PostponementResult>(compute_postponement(ts, opts));
  if (entries_.size() >= capacity_) {
    auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
    *victim = Entry{hash, key_scratch_, clock_, std::move(owned)};
    return victim->result;
  }
  entries_.push_back(Entry{hash, key_scratch_, clock_, std::move(owned)});
  return entries_.back().result;
}

const PostponementResult& AnalysisCache::postponement(
    const PostponementOptions& opts) {
  for (const ThetaEntry& e : thetas_) {
    if (e.pattern == opts.pattern && e.horizon_cap == opts.horizon_cap) {
      return *e.result;
    }
  }
  std::shared_ptr<const PostponementResult> result;
  if (shared_thetas_ != nullptr) {
    result = shared_thetas_->get(*ts_, opts);
  } else {
    result = std::make_shared<PostponementResult>(
        compute_postponement(*ts_, opts));
  }
  thetas_.push_back({opts.pattern, opts.horizon_cap, std::move(result)});
  return *thetas_.back().result;
}

const std::vector<std::optional<core::Ticks>>& AnalysisCache::promotions() {
  if (!promotions_) promotions_ = promotion_times(*ts_);
  return *promotions_;
}

const std::vector<std::optional<core::Ticks>>& AnalysisCache::response_times(
    DemandModel model) {
  auto& slot = rta_[static_cast<std::size_t>(model)];
  if (!slot) slot = analysis::response_times(*ts_, model);
  return *slot;
}

bool AnalysisCache::schedulable(DemandModel model) {
  for (const auto& r : response_times(model)) {
    if (!r) return false;
  }
  return true;
}

core::Ticks AnalysisCache::horizon(core::Ticks cap) {
  for (const auto& [key, value] : horizons_) {
    if (key == cap) return value;
  }
  const core::Ticks h = ts_->mk_hyperperiod(cap).value_or(cap);
  horizons_.emplace_back(cap, h);
  return h;
}

const core::ReleaseTimeline& AnalysisCache::timeline(
    core::Ticks horizon, core::TimelineCache* shared) {
  for (const auto& [h, tl] : timelines_) {
    if (h == horizon) return *tl;
  }
  std::shared_ptr<const core::ReleaseTimeline> tl;
  if (shared != nullptr) {
    tl = shared->get(*ts_, horizon);
  } else {
    auto owned = std::make_shared<core::ReleaseTimeline>();
    core::build_release_timeline(*ts_, horizon, *owned);
    tl = std::move(owned);
  }
  timelines_.emplace_back(horizon, std::move(tl));
  return *timelines_.back().second;
}

}  // namespace mkss::analysis
