#include "analysis/cache.hpp"

namespace mkss::analysis {

const PostponementResult& AnalysisCache::postponement(
    const PostponementOptions& opts) {
  for (const ThetaEntry& e : thetas_) {
    if (e.pattern == opts.pattern && e.horizon_cap == opts.horizon_cap) {
      return e.result;
    }
  }
  thetas_.push_back(
      {opts.pattern, opts.horizon_cap, compute_postponement(*ts_, opts)});
  return thetas_.back().result;
}

const std::vector<std::optional<core::Ticks>>& AnalysisCache::promotions() {
  if (!promotions_) promotions_ = promotion_times(*ts_);
  return *promotions_;
}

const std::vector<std::optional<core::Ticks>>& AnalysisCache::response_times(
    DemandModel model) {
  auto& slot = rta_[static_cast<std::size_t>(model)];
  if (!slot) slot = analysis::response_times(*ts_, model);
  return *slot;
}

bool AnalysisCache::schedulable(DemandModel model) {
  for (const auto& r : response_times(model)) {
    if (!r) return false;
  }
  return true;
}

core::Ticks AnalysisCache::horizon(core::Ticks cap) {
  for (const auto& [key, value] : horizons_) {
    if (key == cap) return value;
  }
  const core::Ticks h = ts_->mk_hyperperiod(cap).value_or(cap);
  horizons_.emplace_back(cap, h);
  return h;
}

}  // namespace mkss::analysis
