// Staged schedulability admission for the generation hot path.
//
// `analysis::schedulable` answers one exact question per task with a full
// fixed-point iteration whose interference terms re-derive pattern counts on
// every step. That is the right reference semantics, but the task-set
// generator asks the same question millions of times on short-lived random
// candidates, and almost all of them are rejected. AdmissionContext keeps the
// verdict bit-identical to `analysis::schedulable` (fuzz-enforced in
// tests/test_admission.cpp) while letting most candidates exit through one of
// three cheap stages before any exact fixed point runs:
//
//   1. demand lower-bound reject (exact necessary condition): every
//      higher-priority task releases at least one mandatory job in any busy
//      window [0, t), t >= 1 -- job 1 is mandatory under every pattern -- so
//      demand_i(t) >= S0_i := C_i + sum_{j<i} C_j for all t >= 1. If
//      S0_i > D_i the least fixed point exceeds D_i and the set is
//      unschedulable, no iteration needed.
//   2. hyperbolic sufficient accept (Bini & Buttazzo): when every deadline is
//      implicit (D_i == P_i) and periods are nondecreasing in priority order,
//      prod(U_i + 1) <= 2 proves full-jobs schedulability; mandatory-job
//      demand never exceeds full-jobs demand, so the same certificate covers
//      the pattern models. Checked with a floating-point safety margin so a
//      boundary rounding error can never flip a verdict the exact stage
//      would have decided differently.
//   3. post-fixed-point probe accept: demand_i is monotone, so any q with
//      demand_i(q) <= q and q <= D_i certifies task i (the least fixed point
//      is <= q). The context remembers the last converged/probed value per
//      priority level; consecutive candidates in the same utilization bin
//      are similar enough that the previous value usually still certifies.
//
// Candidates surviving all three run the exact iteration, seeded at S0_i
// (a lower bound on the least fixed point, so the ascent converges to the
// same value as the classic C_i start), over interference step tables that
// reduce every pattern count to one divide + one table lookup. Tasks are
// tested lowest priority first: the verdict is a conjunction, and the
// lowest-priority task is where random candidates fail first.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "analysis/rta.hpp"
#include "core/task.hpp"

namespace mkss::analysis {

/// Which rung of the staged ladder decided the verdict.
enum class AdmissionStage : std::uint8_t {
  kLowerBoundReject,  ///< S0_i > D_i for some task; no fixed point ran
  kHyperbolicAccept,  ///< hyperbolic bound certified the whole set
  kProbeAccept,       ///< every task certified by a remembered probe value
  kExactAccept,       ///< at least one task needed the exact fixed point
  kExactReject,       ///< an exact fixed point exceeded its deadline
};

struct AdmissionVerdict {
  bool schedulable{false};
  AdmissionStage stage{AdmissionStage::kExactReject};
};

/// Reusable staged-admission state. One instance per worker thread; admit()
/// may be called any number of times with unrelated task sets. The remembered
/// probe values only ever change which *stage* certifies a task -- every
/// probe is verified against the actual demand function before it is trusted,
/// so the verdict (and the fact that it matches `analysis::schedulable`)
/// never depends on call history.
class AdmissionContext {
 public:
  /// Staged verdict for `ts` under `model`; bit-identical to
  /// `analysis::schedulable(ts, model)`.
  AdmissionVerdict admit(const core::TaskSet& ts, DemandModel model);

  /// Same, over a raw task vector viewed through a priority permutation:
  /// `tasks[order[0]]` is the highest-priority task. Tasks must satisfy
  /// Task::valid(); this is the generator's no-materialization entry point.
  AdmissionVerdict admit(const std::vector<core::Task>& tasks,
                         const std::vector<std::uint32_t>& order,
                         DemandModel model);

 private:
  /// Per-task interference step table: mandatory-jobs-released-before counts
  /// collapse to (released / effk) * effm + prefix[released % effk]. Until
  /// resolve_prefixes() runs, effm/effk hold the raw (m, k) draw and prefix is
  /// unset -- candidates rejected or accepted by stages 1/2 never build
  /// tables.
  struct Row {
    core::Ticks period{0};
    core::Ticks deadline{0};
    core::Ticks wcet{0};
    core::Ticks s0{0};  ///< C_i + sum of higher-priority WCETs
    std::uint64_t effm{0};
    std::uint64_t effk{0};
    const std::uint32_t* prefix{nullptr};  ///< cumulative mandatory counts
  };

  AdmissionVerdict admit_rows();
  void resolve_prefixes(DemandModel model);
  const std::uint32_t* prefix_for(DemandModel model, std::uint32_t m,
                                  std::uint32_t k);
  const std::uint32_t* build_prefix(std::uint8_t kind, std::uint32_t m,
                                    std::uint32_t k);
  core::Ticks demand_at(std::size_t i, core::Ticks t) const;

  std::vector<Row> rows_;
  /// Last certified post-fixed-point value per priority level (speed hint
  /// only -- see class comment). Ticks::max marks "no hint yet".
  std::vector<core::Ticks> probe_;
  /// O(1) prefix-table pointer lookup for the common small windows,
  /// direct-indexed by (pattern-kind, k, m). Entries point into
  /// prefix_cache_ nodes; k > kFlatMaxK falls back to the map itself.
  static constexpr std::uint32_t kFlatMaxK = 64;
  std::vector<const std::uint32_t*> prefix_flat_;
  /// Cumulative mandatory-job prefix tables keyed (pattern-kind, m, k);
  /// std::map nodes give the stable addresses Row::prefix points into.
  std::map<std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>,
           std::vector<std::uint32_t>>
      prefix_cache_;
};

}  // namespace mkss::analysis
