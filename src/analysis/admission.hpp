// Staged schedulability admission for the generation hot path.
//
// `analysis::schedulable` answers one exact question per task with a full
// fixed-point iteration whose interference terms re-derive pattern counts on
// every step. That is the right reference semantics, but the task-set
// generator asks the same question millions of times on short-lived random
// candidates, and almost all of them are rejected. AdmissionContext keeps the
// verdict bit-identical to `analysis::schedulable` (fuzz-enforced in
// tests/test_admission.cpp) while letting most candidates exit through one of
// three cheap stages before any exact fixed point runs:
//
//   1. demand lower-bound reject (exact necessary condition): every
//      higher-priority task releases at least one mandatory job in any busy
//      window [0, t), t >= 1 -- job 1 is mandatory under every pattern -- so
//      demand_i(t) >= S0_i := C_i + sum_{j<i} C_j for all t >= 1. If
//      S0_i > D_i the least fixed point exceeds D_i and the set is
//      unschedulable, no iteration needed.
//   2. hyperbolic sufficient accept (Bini & Buttazzo): when every deadline is
//      implicit (D_i == P_i) and periods are nondecreasing in priority order,
//      prod(U_i + 1) <= 2 proves full-jobs schedulability; mandatory-job
//      demand never exceeds full-jobs demand, so the same certificate covers
//      the pattern models. Checked with a floating-point safety margin so a
//      boundary rounding error can never flip a verdict the exact stage
//      would have decided differently.
//   3. post-fixed-point probe accept: demand_i is monotone, so any q with
//      demand_i(q) <= q and q <= D_i certifies task i (the least fixed point
//      is <= q). The context remembers the last converged/probed value per
//      priority level; consecutive candidates in the same utilization bin
//      are similar enough that the previous value usually still certifies.
//
// Candidates surviving all three run the exact iteration, seeded at S0_i
// (a lower bound on the least fixed point, so the ascent converges to the
// same value as the classic C_i start), over interference step tables that
// reduce every pattern count to one divide + one table lookup. When all
// candidate quantities fit the 31-bit integer domain, the per-level demand
// sum runs through the runtime-dispatched core::simd kernel (magic-number
// division instead of hardware divides, AVX2 lanes where available) -- the
// kernel is exact on that domain, so the fixed points, and therefore the
// verdicts, are bit-identical on every dispatch path. Tasks are tested
// lowest priority first: the verdict is a conjunction, and the
// lowest-priority task is where random candidates fail first.
//
// The generator's structure-of-arrays batch pipeline enters through
// admit_batch(), which runs the cheap ladder per candidate and then iterates
// every candidate that still needs its exact fixed point in lockstep: one
// demand evaluation per unresolved candidate per round, retiring
// converged/rejected candidates while the rest continue.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "analysis/rta.hpp"
#include "core/simd.hpp"
#include "core/task.hpp"

namespace mkss::analysis {

/// Which rung of the staged ladder decided the verdict.
enum class AdmissionStage : std::uint8_t {
  kLowerBoundReject,  ///< S0_i > D_i for some task; no fixed point ran
  kHyperbolicAccept,  ///< hyperbolic bound certified the whole set
  kProbeAccept,       ///< every task certified by a remembered probe value
  kExactAccept,       ///< at least one task needed the exact fixed point
  kExactReject,       ///< an exact fixed point exceeded its deadline
};

struct AdmissionVerdict {
  bool schedulable{false};
  AdmissionStage stage{AdmissionStage::kExactReject};
};

/// One candidate of a structure-of-arrays generation batch, viewed through
/// its priority permutation: task field arrays indexed by raw draw position,
/// `order[0]` naming the highest-priority task. Every viewed task must
/// satisfy Task::valid().
struct SoACandidate {
  const core::Ticks* period{nullptr};
  const core::Ticks* deadline{nullptr};
  const core::Ticks* wcet{nullptr};
  const std::uint32_t* m{nullptr};
  const std::uint32_t* k{nullptr};
  const std::uint32_t* order{nullptr};
  std::size_t n{0};
};

/// Reusable staged-admission state. One instance per worker thread; admit()
/// may be called any number of times with unrelated task sets. The remembered
/// probe values only ever change which *stage* certifies a task -- every
/// probe is verified against the actual demand function before it is trusted,
/// so the verdict (and the fact that it matches `analysis::schedulable`)
/// never depends on call history.
class AdmissionContext {
 public:
  /// Staged verdict for `ts` under `model`; bit-identical to
  /// `analysis::schedulable(ts, model)`.
  AdmissionVerdict admit(const core::TaskSet& ts, DemandModel model);

  /// Same, over a raw task vector viewed through a priority permutation:
  /// `tasks[order[0]]` is the highest-priority task. Tasks must satisfy
  /// Task::valid(); this is the generator's no-materialization entry point.
  AdmissionVerdict admit(const std::vector<core::Task>& tasks,
                         const std::vector<std::uint32_t>& order,
                         DemandModel model);

  /// Batched verdicts for `count` SoA candidates: out[c] is bit-identical to
  /// admit(candidate c) called on its own (probe hints are speed-only, see
  /// class comment). Candidates whose ladder stages do not decide iterate
  /// their exact fixed points in lockstep with early lane retirement. When
  /// non-null, ladder_seconds/exact_seconds accumulate the wall-clock spent
  /// in the cheap ladder vs the lockstep fixed points (bench telemetry).
  void admit_batch(const SoACandidate* cands, std::size_t count,
                   DemandModel model, AdmissionVerdict* out,
                   double* ladder_seconds = nullptr,
                   double* exact_seconds = nullptr);

 private:
  /// Per-task interference step table: mandatory-jobs-released-before counts
  /// collapse to (released / effk) * effm + prefix[released % effk]. Until
  /// resolve_prefixes() runs, effm/effk hold the raw (m, k) draw and prefix is
  /// unset -- candidates rejected or accepted by stages 1/2 never build
  /// tables.
  struct Row {
    core::Ticks period{0};
    core::Ticks deadline{0};
    core::Ticks wcet{0};
    core::Ticks s0{0};  ///< C_i + sum of higher-priority WCETs
    std::uint64_t effm{0};
    std::uint64_t effk{0};
    const std::uint32_t* prefix{nullptr};  ///< cumulative mandatory counts
    std::uint32_t poff{0};  ///< prefix offset inside the shared arena
  };

  /// SoA mirrors of the resolved rows feeding core::simd::demand_hp_sum,
  /// plus the 31-bit-domain flag. When a candidate does not fit (huge
  /// periods/deadlines or a WCET sum at risk of overflowing the exact u64
  /// accumulation bound), demand falls back to the legacy 64-bit loop --
  /// same values, just without the vector lanes.
  struct DemandArrays {
    std::vector<std::uint64_t> pmul, pshift, kmul, kshift;
    std::vector<std::uint64_t> effm, effk, wcet, poff;
    bool fits{false};
  };

  /// Pooled per-candidate state of one admit_batch lockstep lane.
  struct CandState {
    std::vector<Row> rows;
    DemandArrays soa;
    std::size_t out_index{0};
    std::size_t level{0};    ///< priority level under test (counts down)
    core::Ticks t{0};        ///< current fixed-point iterate
    bool in_probe{false};    ///< next evaluation is the probe check
    bool exact_used{false};
  };

  /// Shared prefix-table storage: the map nodes own the cumulative counts
  /// (stable addresses for Row::prefix) and remember where the same counts
  /// sit inside arena_, the flat copy the gather lanes index.
  struct PrefixTable {
    std::vector<std::uint32_t> counts;
    std::uint32_t arena_off{0};
  };

  /// Fused row building + ladder stages 1 and 2 over tasks delivered by
  /// `at(i)` in priority order. Returns true when a ladder stage decided the
  /// verdict (written to `decided`); false when stages 3/4 must run.
  template <class TaskAt>
  bool build_ladder(TaskAt&& at, std::size_t n, std::vector<Row>& rows,
                    AdmissionVerdict& decided);

  AdmissionVerdict admit_rows(std::vector<Row>& rows, const DemandArrays& soa);
  void resolve_prefixes(DemandModel model, std::vector<Row>& rows,
                        DemandArrays& soa);
  const PrefixTable* prefix_for(DemandModel model, std::uint32_t m,
                                std::uint32_t k);
  const PrefixTable* build_prefix(std::uint8_t kind, std::uint32_t m,
                                  std::uint32_t k);
  core::Ticks demand_at(const std::vector<Row>& rows, const DemandArrays& soa,
                        std::size_t i, core::Ticks t) const;
  /// One lockstep round of candidate `c` (at most one demand evaluation).
  /// Returns true when the candidate resolved and wrote its verdict.
  bool lockstep_step(CandState& c, AdmissionVerdict* out);

  std::vector<Row> rows_;
  DemandArrays soa_;
  std::vector<CandState> batch_;
  /// Last certified post-fixed-point value per priority level (speed hint
  /// only -- see class comment). Ticks::max marks "no hint yet".
  std::vector<core::Ticks> probe_;
  /// O(1) prefix-table lookup for the common small windows, direct-indexed
  /// by (pattern-kind, k, m). Entries point into prefix_cache_ nodes;
  /// k > kFlatMaxK falls back to the map itself.
  static constexpr std::uint32_t kFlatMaxK = 64;
  std::vector<const PrefixTable*> prefix_flat_;
  /// Cumulative mandatory-job prefix tables keyed (pattern-kind, m, k);
  /// std::map nodes give the stable addresses Row::prefix points into.
  std::map<std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>, PrefixTable>
      prefix_cache_;
  /// Flat concatenation of every prefix table, indexed by Row::poff + rem:
  /// the contiguous u32 arena the AVX2 gather reads. arena_[0] == 0 is the
  /// reserved kAllJobs table (effk == 1, rem always 0).
  std::vector<std::uint32_t> arena_{0};
};

}  // namespace mkss::analysis
