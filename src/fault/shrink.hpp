// Delta-debugging shrinker for quarantined fuzz cases.
//
// A violating fuzz case (random task set, random explicit fault plan, some
// scheme) is rarely minimal: most tasks and most fault hits are bystanders.
// The shrinker greedily simplifies the case while re-checking after every
// step that the run still fails with the *same* first violation (invariant
// key + verdict kind), in fixed pass order:
//   1. drop tasks (highest index first, remapping the fault plan's indices);
//   2. trim transient hits one by one;
//   3. drop the permanent fault;
//   4. halve the horizon (down to a small floor);
//   5. round task parameters to whole milliseconds.
// Passes repeat until a full cycle changes nothing or the oracle-run cap is
// hit. Everything is deterministic -- same input, same minimal case, byte
// for byte -- except that cases whose verdict is a wall-clock "timeout" are
// returned unshrunk (re-timing a hung run is inherently nondeterministic).
#pragma once

#include <cstdint>
#include <string>

#include "core/task.hpp"
#include "core/time.hpp"
#include "fault/campaign.hpp"
#include "harness/batch_runner.hpp"
#include "sim/types.hpp"

namespace mkss::fault {

/// A fully specified fuzz case: everything check_repro needs to re-run it.
struct ReproCase {
  core::TaskSet ts;
  std::string scheme;  ///< registry name (sched::Registry)
  sim::PlatformSpec platform{};
  core::Ticks horizon{0};
  ExplicitFaultPlan plan;
  /// Per-run wall-clock watchdog (0 = off); see SimConfig.
  double run_budget_ms{0};
};

/// Outcome of re-running a case audited.
struct ReproVerdict {
  bool violated{false};
  /// "audit-violation", "exception" or "timeout" when violated.
  std::string kind;
  /// First violated invariant key (audit violations only), e.g.
  /// "mandatory-miss"; shrinking preserves it.
  std::string invariant;
  /// Full audit report / error message.
  std::string detail;
};

/// True when `plan` stays inside Theorem 1's single-fault-tolerance
/// hypothesis: no job is hit on both replica slots, and a permanent fault is
/// never combined with transients. Within tolerance the (m,k) windows and
/// the mandatory-miss rule are part of the audited contract; beyond it both
/// may legitimately fail (fault cascades re-promote jobs via the dynamic
/// pattern), so check_repro audits only the structural invariants there.
bool within_tolerance(const ExplicitFaultPlan& plan);

/// Re-runs the case with the auditor attached and reports the first
/// violation (or a clean verdict). Throws sched::UnknownSchemeError when the
/// scheme is not registered and std::invalid_argument when it does not
/// support the case's platform. `ctx` optionally reuses pooled engine
/// arenas (one per thread); nullptr runs on a private context.
ReproVerdict check_repro(const ReproCase& c, harness::RunContext* ctx = nullptr);

struct ShrinkResult {
  ReproCase minimal;
  ReproVerdict verdict;  ///< verdict of `minimal` (== input's for clean/timeout)
  std::uint64_t oracle_runs{0};
};

/// Greedily minimizes a violating case (see file comment). Returns the input
/// unchanged when it does not violate, or when its verdict is a timeout.
ShrinkResult shrink(const ReproCase& c, std::uint64_t max_oracle_runs = 2000,
                    harness::RunContext* ctx = nullptr);

}  // namespace mkss::fault
