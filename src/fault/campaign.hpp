// Adversarial fault-injection campaigns.
//
// The stochastic plans in fault/injection.hpp sample the fault space; a
// campaign *enumerates* its worst corners instead. For every (task set,
// scheme) pair it runs a fault-free probe, harvests the schedule's inspecting
// points (job releases, backup eligible times theta_i / Y_i promotions,
// segment boundaries), and then replays the scheme under
//   * a permanent fault at each harvested instant, on each processor, and
//   * targeted transient faults: each main, each backup, each executed
//     optional copy in isolation, plus (optionally) bursts hitting the mains
//     or the backups of k_i consecutive jobs of one task.
// All placements stay inside the tolerance hypothesis of Theorem 1 (at most
// one permanent fault per run; never both copies of the same job), so every
// run must still satisfy the full audit: a violation is a scheduler bug, and
// is reported with a minimal repro (scheme, task set, fault plan).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "audit/trace_auditor.hpp"
#include "core/task.hpp"
#include "core/time.hpp"
#include "sim/fault_plan.hpp"
#include "sim/scheme.hpp"

namespace mkss::fault {

/// A fully spelled-out fault plan: one optional permanent fault plus an
/// explicit list of (job, replica slot) transient hits. This is the unit a
/// campaign enumerates, and the repro artifact it reports.
class ExplicitFaultPlan final : public sim::FaultPlan {
 public:
  ExplicitFaultPlan() = default;

  void set_permanent(sim::PermanentFault f) { permanent_ = f; }
  /// Slot 0 = main/optional copy, slot 1 = backup (see FaultPlan).
  void add_transient(core::JobId job, int slot);

  std::optional<sim::PermanentFault> permanent() const override {
    return permanent_;
  }
  bool transient(const core::JobId& job, int slot) const override;

  /// The explicit transient hits, sorted by (job, slot). The shrinker and
  /// the repro-bundle serializer iterate these directly.
  const std::vector<std::pair<core::JobId, int>>& transients() const {
    return transients_;
  }

  /// One-line description, e.g.
  /// "permanent proc 1 @ 3.5ms" or "transients: J1,2/main J1,3/main".
  std::string describe() const;

 private:
  std::optional<sim::PermanentFault> permanent_;
  std::vector<std::pair<core::JobId, int>> transients_;  ///< kept sorted
};

/// A scheme entry of a campaign: a display name plus a factory (schemes are
/// stateful, so every run needs a fresh instance).
struct CampaignScheme {
  std::string name;
  std::function<std::unique_ptr<sim::Scheme>()> make;
};

/// A named task set to campaign over.
struct CampaignCase {
  std::string name;
  core::TaskSet ts;
};

struct CampaignConfig {
  /// Horizon cap: each case simulates min(its (m,k)-hyperperiod, this).
  core::Ticks horizon_cap{core::from_ms(std::int64_t{2000})};
  /// Execution platform for every run; permanent-fault placements are
  /// enumerated on each of its processors.
  sim::PlatformSpec platform{};
  /// At most this many permanent-fault instants per (case, scheme), chosen
  /// by a deterministic stride over the harvested inspecting points.
  std::size_t max_permanent_instants{64};
  /// At most this many single-transient targets per (case, scheme).
  std::size_t max_transient_targets{64};
  /// Also inject per-task bursts (k_i consecutive mains, then backups).
  bool include_bursts{true};
  /// Per-run wall-clock watchdog (SimConfig::wall_clock_budget_ms); a hung
  /// run is recorded as a "timeout" violation instead of stalling the
  /// campaign. 0 disables the watchdog.
  double run_budget_ms{30000};
  /// Options forwarded to the trace auditor attached to every run.
  audit::AuditOptions audit{};
};

/// One audited failure, with everything needed to replay it.
struct CampaignViolation {
  std::string case_name;
  std::string scheme;
  std::string fault_plan;  ///< ExplicitFaultPlan::describe()
  std::string taskset;     ///< io::serialize_taskset, ready for a repro file
  audit::AuditReport report;

  std::string to_string() const;
};

struct CampaignResult {
  std::uint64_t runs{0};        ///< simulations executed (incl. probes)
  std::uint64_t placements{0};  ///< distinct fault placements enumerated
  std::vector<CampaignViolation> violations;

  bool ok() const noexcept { return violations.empty(); }
  /// Multi-line human-readable summary.
  std::string summary() const;
};

/// Runs every scheme through every enumerated fault placement of every case.
CampaignResult run_campaign(const std::vector<CampaignCase>& cases,
                            const std::vector<CampaignScheme>& schemes,
                            const CampaignConfig& config = {});

/// The four schemes of the repo (MKSS_ST, MKSS_DP, MKSS_greedy,
/// MKSS_selective), freshly configured per run.
std::vector<CampaignScheme> paper_schemes();

/// The default campaign matrix: the paper's Figure 1/3/5 task sets plus a
/// few generated R-pattern-schedulable sets derived from `seed`.
std::vector<CampaignCase> default_campaign_cases(std::uint64_t seed = 20200309);

/// run_campaign(default_campaign_cases(), paper_schemes(), config).
CampaignResult run_default_campaign(const CampaignConfig& config = {});

}  // namespace mkss::fault
