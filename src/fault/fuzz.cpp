#include "fault/fuzz.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/schedulability.hpp"
#include "audit/trace_auditor.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "fault/injection.hpp"
#include "harness/batch_runner.hpp"
#include "harness/evaluation.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"

namespace mkss::fault {

namespace {

using core::Ticks;

/// Stream tag naming the fuzzer's per-iteration substreams; far outside the
/// sweep harness's (bin, set) plane so the two can share one --seed.
constexpr std::uint64_t kFuzzStream = 0x46555A5A;  // "FUZZ"

FaultMode draw_mode(core::Rng& rng) {
  const std::uint64_t r = rng.below(10);
  if (r == 0) return FaultMode::kNone;
  if (r <= 3) return FaultMode::kTransient;
  if (r <= 5) return FaultMode::kPermanent;
  if (r <= 7) return FaultMode::kBurst;
  return FaultMode::kCombined;
}

/// Poisson transients at rate `lambda_per_ms`: every copy of every job
/// released inside the horizon is hit independently with
/// p_i = 1 - exp(-lambda * C_i[ms]), drawn in (task, job, slot) order.
void add_poisson_transients(ExplicitFaultPlan& plan, const core::TaskSet& ts,
                            Ticks horizon, double lambda_per_ms,
                            core::Rng& rng) {
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    const double p =
        1.0 - std::exp(-lambda_per_ms * core::to_ms(ts[i].wcet));
    for (std::uint64_t j = 1;
         static_cast<Ticks>(j - 1) * ts[i].period < horizon; ++j) {
      for (int slot = 0; slot < 2; ++slot) {
        if (rng.chance(p)) plan.add_transient({i, j}, slot);
      }
    }
  }
}

void add_permanent(ExplicitFaultPlan& plan, std::size_t procs, Ticks horizon,
                   core::Rng& rng) {
  sim::PermanentFault pf;
  pf.proc = static_cast<sim::ProcessorId>(rng.below(procs));
  pf.time = static_cast<Ticks>(rng.below(static_cast<std::uint64_t>(horizon)));
  plan.set_permanent(pf);
}

/// A storm on one task: up to k_i consecutive jobs lose the same copy slot.
void add_burst(ExplicitFaultPlan& plan, const core::TaskSet& ts, Ticks horizon,
               core::Rng& rng) {
  const core::TaskIndex i =
      static_cast<core::TaskIndex>(rng.below(ts.size()));
  const int slot = static_cast<int>(rng.below(2));
  const std::uint64_t released = static_cast<std::uint64_t>(
      (horizon + ts[i].period - 1) / ts[i].period);
  std::uint64_t len = 1 + rng.below(ts[i].k);
  if (len > released) len = released;
  const std::uint64_t start = 1 + rng.below(released - len + 1);
  for (std::uint64_t j = start; j < start + len; ++j) {
    plan.add_transient({i, j}, slot);
  }
}

ExplicitFaultPlan draw_plan(FaultMode mode, const core::TaskSet& ts,
                            Ticks horizon, std::size_t procs, core::Rng& rng) {
  ExplicitFaultPlan plan;
  switch (mode) {
    case FaultMode::kNone:
      break;
    case FaultMode::kTransient: {
      const double lambda = std::pow(10.0, rng.uniform(-3.0, -0.5));
      add_poisson_transients(plan, ts, horizon, lambda, rng);
      break;
    }
    case FaultMode::kPermanent:
      add_permanent(plan, procs, horizon, rng);
      break;
    case FaultMode::kBurst:
      add_burst(plan, ts, horizon, rng);
      break;
    case FaultMode::kCombined: {
      const double lambda = std::pow(10.0, rng.uniform(-3.0, -0.5));
      add_poisson_transients(plan, ts, horizon, lambda, rng);
      add_permanent(plan, procs, horizon, rng);
      break;
    }
  }
  return plan;
}

/// Per-iteration result slot; mode -1 records a draw failure.
struct IterOutcome {
  int mode{-1};
  std::uint64_t audited{0};
  std::vector<FuzzViolation> violations;
};

IterOutcome run_iteration(const FuzzConfig& config,
                          const std::vector<const sched::SchemeInfo*>& schemes,
                          std::uint64_t iter, harness::RunContext* ctx) {
  // Every random choice of the iteration comes from this one stream, drawn
  // in a fixed order -- the whole iteration is a pure function of
  // (config, iter), independent of which worker thread runs it.
  core::Rng rng(core::stream_seed(config.seed, kFuzzStream, iter));
  IterOutcome out;

  const std::size_t procs = config.procs[rng.below(config.procs.size())];
  const double target = rng.uniform(config.min_mk_util, config.max_mk_util);
  std::optional<core::TaskSet> ts;
  for (std::size_t a = 0; a < config.max_draw_attempts && !ts; ++a) {
    auto cand = workload::generate_taskset(config.gen, target, rng);
    if (cand && analysis::analyze_schedulability(*cand).r_pattern_feasible) {
      ts = std::move(cand);
    }
  }
  if (!ts) return out;

  const Ticks horizon = harness::choose_horizon(*ts, config.horizon_cap);
  const FaultMode mode = draw_mode(rng);
  out.mode = static_cast<int>(mode);
  const ExplicitFaultPlan plan = draw_plan(mode, *ts, horizon, procs, rng);

  for (const sched::SchemeInfo* info : schemes) {
    if (!info->supports(procs)) continue;
    ReproCase c;
    c.ts = *ts;
    c.scheme = info->name;
    c.platform = sim::PlatformSpec::standby(procs);
    c.horizon = horizon;
    c.plan = plan;
    c.run_budget_ms = config.run_budget_ms;
    const ReproVerdict v = check_repro(c, ctx);
    ++out.audited;
    if (v.violated) {
      FuzzViolation fv;
      fv.iteration = iter;
      fv.scheme = info->name;
      fv.mode = mode;
      fv.verdict = v;
      fv.repro = c;
      fv.minimal = std::move(c);
      fv.minimal_verdict = v;
      out.violations.push_back(std::move(fv));
    }
  }
  return out;
}

std::vector<const sched::SchemeInfo*> resolve_schemes(
    const FuzzConfig& config) {
  const sched::Registry& registry = sched::Registry::instance();
  if (config.schemes.empty()) return registry.all();
  std::vector<const sched::SchemeInfo*> out;
  out.reserve(config.schemes.size());
  for (const std::string& name : config.schemes) {
    out.push_back(&registry.resolve(name));
  }
  return out;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  if (!out) {
    throw std::runtime_error("fuzz: cannot write repro bundle '" + path + "'");
  }
}

/// Writes the as-drawn bundle, plus a .min sibling when shrinking changed
/// anything, and records the paths on the violation.
void write_bundles(const std::string& dir, FuzzViolation& v) {
  char name[192];
  std::snprintf(name, sizeof name, "fuzz_run%06llu_%s.repro.txt",
                static_cast<unsigned long long>(v.iteration),
                v.scheme.c_str());
  const std::string full = serialize_repro_bundle(to_bundle(v.repro, v.verdict));
  v.bundle_path = (std::filesystem::path(dir) / name).string();
  write_file(v.bundle_path, full);

  const std::string minimal =
      serialize_repro_bundle(to_bundle(v.minimal, v.minimal_verdict));
  if (minimal != full) {
    std::snprintf(name, sizeof name, "fuzz_run%06llu_%s.min.repro.txt",
                  static_cast<unsigned long long>(v.iteration),
                  v.scheme.c_str());
    v.minimal_bundle_path = (std::filesystem::path(dir) / name).string();
    write_file(v.minimal_bundle_path, minimal);
  }
}

}  // namespace

const char* to_string(FaultMode mode) {
  switch (mode) {
    case FaultMode::kNone: return "none";
    case FaultMode::kTransient: return "transient";
    case FaultMode::kPermanent: return "permanent";
    case FaultMode::kBurst: return "burst";
    case FaultMode::kCombined: return "combined";
  }
  return "?";
}

FuzzResult run_fuzz(const FuzzConfig& config) {
  if (config.procs.empty()) {
    throw std::invalid_argument("fuzz: the platform pool is empty");
  }
  for (const std::size_t p : config.procs) {
    if (p < 2 || p > 255) {
      throw std::invalid_argument("fuzz: platform size " + std::to_string(p) +
                                  " is outside [2, 255]");
    }
  }
  const std::vector<const sched::SchemeInfo*> schemes =
      resolve_schemes(config);
  bool any_supported = false;
  for (const sched::SchemeInfo* info : schemes) {
    for (const std::size_t p : config.procs) {
      any_supported = any_supported || info->supports(p);
    }
  }
  if (!any_supported) {
    throw std::invalid_argument(
        "fuzz: no selected scheme supports any platform in the pool");
  }

  FuzzResult result;
  result.iterations = config.runs;
  for (const sched::SchemeInfo* info : schemes) {
    result.schemes.push_back(info->name);
  }

  const std::size_t n_threads =
      core::ThreadPool::resolve_num_threads(config.num_threads);
  std::unique_ptr<core::ThreadPool> pool;
  if (n_threads > 1 && config.runs > 1) {
    pool = std::make_unique<core::ThreadPool>(n_threads);
  }
  std::vector<IterOutcome> slots(config.runs);
  core::parallel_for(pool.get(), config.runs, [&](std::size_t iter) {
    thread_local harness::RunContext ctx;
    slots[iter] = run_iteration(config, schemes, iter, &ctx);
  });

  // Serial aggregation in iteration order: counters, shrinking and bundle
  // files come out identical for every thread count.
  if (!config.error_dir.empty()) {
    std::filesystem::create_directories(config.error_dir);
  }
  harness::RunContext shrink_ctx;
  for (std::uint64_t iter = 0; iter < config.runs; ++iter) {
    IterOutcome& slot = slots[iter];
    if (slot.mode < 0) {
      ++result.draw_failures;
    } else {
      ++result.mode_counts[static_cast<std::size_t>(slot.mode)];
    }
    result.audited_runs += slot.audited;
    for (FuzzViolation& v : slot.violations) {
      if (v.verdict.kind == "timeout") ++result.timeouts;
      if (config.shrink && v.verdict.kind != "timeout") {
        ShrinkResult s =
            shrink(v.repro, config.max_shrink_oracle_runs, &shrink_ctx);
        v.minimal = std::move(s.minimal);
        v.minimal_verdict = std::move(s.verdict);
        v.shrink_oracle_runs = s.oracle_runs;
      }
      if (!config.error_dir.empty()) {
        write_bundles(config.error_dir, v);
      }
      result.violations.push_back(std::move(v));
    }
  }
  return result;
}

io::ReproBundle to_bundle(const ReproCase& c, const ReproVerdict& v) {
  io::ReproBundle b;
  b.verdict = v.violated ? v.kind : "clean";
  b.scheme = c.scheme;
  b.procs = c.platform.num_procs();
  b.roles.clear();
  for (const sim::ProcRole role : c.platform.roles) {
    b.roles += role == sim::ProcRole::kStandby ? 'S' : 'W';
  }
  b.stream_version = 2;
  b.horizon = c.horizon;
  b.scenario_plan = false;
  b.permanent = c.plan.permanent();
  for (const auto& [job, slot] : c.plan.transients()) {
    b.transients.push_back({job.task, job.job, slot});
  }
  b.error = v.detail;
  b.ts = c.ts;
  return b;
}

ReproVerdict replay_bundle(const io::ReproBundle& bundle,
                           double run_budget_ms) {
  const sim::PlatformSpec platform = io::repro_platform(bundle);
  if (!bundle.scenario_plan) {
    ReproCase c;
    c.ts = bundle.ts;
    c.scheme = bundle.scheme;
    c.platform = platform;
    c.horizon = bundle.horizon;
    for (const io::ReproTransient& t : bundle.transients) {
      c.plan.add_transient({t.task, t.job}, t.slot);
    }
    if (bundle.permanent) c.plan.set_permanent(*bundle.permanent);
    c.run_budget_ms = run_budget_ms;
    return check_repro(c);
  }

  const std::optional<Scenario> scenario =
      scenario_from_string(bundle.scenario);
  if (!scenario) {
    throw std::invalid_argument("repro bundle: unknown scenario '" +
                                bundle.scenario + "'");
  }
  const sched::SchemeInfo& info =
      sched::Registry::instance().resolve(bundle.scheme);
  if (!info.supports(platform.num_procs())) {
    throw std::invalid_argument(
        "repro bundle: scheme '" + bundle.scheme +
        "' does not support a " + std::to_string(platform.num_procs()) +
        "-processor platform");
  }
  // Re-derive the plan exactly like the sweep harness drew it: a fresh Rng
  // from the recorded fault seed feeding make_scenario_plan.
  core::Rng rng(bundle.fault_seed);
  const std::unique_ptr<sim::FaultPlan> plan = make_scenario_plan(
      *scenario, bundle.ts, bundle.horizon, bundle.lambda_per_ms, rng);
  ReproVerdict v;
  try {
    const auto scheme = info.make();
    harness::BatchRunner runner(bundle.ts);
    runner.bind(*scheme);
    sim::SimConfig cfg;
    cfg.horizon = bundle.horizon;
    cfg.platform = platform;
    cfg.wall_clock_budget_ms = run_budget_ms;
    const sim::SimulationTrace& trace = runner.run_full(*scheme, *plan, cfg);
    audit::AuditOptions options;
    options.check_mk = *scenario != Scenario::kPermanentAndTransient;
    const audit::AuditReport report =
        audit::TraceAuditor(options).audit(trace, bundle.ts);
    if (!report.ok()) {
      v.violated = true;
      v.kind = "audit-violation";
      v.invariant = report.violations.front().invariant;
      v.detail = report.to_string();
    }
  } catch (const sim::RunTimeoutError& e) {
    v = {true, "timeout", "", e.what()};
  } catch (const std::exception& e) {
    v = {true, "exception", "", e.what()};
  }
  return v;
}

std::string FuzzResult::summary() const {
  std::ostringstream out;
  out << "fuzz: " << iterations << " iteration(s), " << audited_runs
      << " audited run(s) across " << schemes.size() << " scheme(s)";
  if (!schemes.empty()) {
    out << " [";
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      out << (i ? ", " : "") << schemes[i];
    }
    out << "]";
  }
  out << "\nmodes:";
  for (std::size_t i = 0; i < kNumFaultModes; ++i) {
    out << (i ? " | " : " ") << to_string(static_cast<FaultMode>(i)) << " "
        << mode_counts[i];
  }
  out << "; draw failures: " << draw_failures;
  out << "\nviolations: " << violations.size();
  if (timeouts > 0) out << " (" << timeouts << " timeout(s))";
  out << "\n";
  for (const FuzzViolation& v : violations) {
    char iter[32];
    std::snprintf(iter, sizeof iter, "%06llu",
                  static_cast<unsigned long long>(v.iteration));
    out << "  [iter " << iter << "] " << v.scheme << ", mode "
        << to_string(v.mode) << ": " << v.verdict.kind;
    if (!v.verdict.invariant.empty()) out << " (" << v.verdict.invariant << ")";
    out << "\n";
    if (!v.bundle_path.empty()) {
      out << "    bundle: " << v.bundle_path << "\n";
    }
    if (!v.minimal_bundle_path.empty()) {
      out << "    minimal: " << v.minimal.ts.size() << " task(s), "
          << v.minimal.plan.transients().size() << " transient hit(s)"
          << (v.minimal.plan.permanent() ? ", permanent" : "") << " ("
          << v.shrink_oracle_runs << " oracle runs) -> "
          << v.minimal_bundle_path << "\n";
    }
  }
  return out.str();
}

}  // namespace mkss::fault
