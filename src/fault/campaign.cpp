#include "fault/campaign.hpp"

#include <algorithm>
#include <utility>

#include "core/rng.hpp"
#include "harness/batch_runner.hpp"
#include "io/taskset_io.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "workload/scenarios.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss::fault {

using core::JobId;
using core::Ticks;

void ExplicitFaultPlan::add_transient(JobId job, int slot) {
  const auto entry = std::make_pair(job, slot);
  const auto it =
      std::lower_bound(transients_.begin(), transients_.end(), entry);
  if (it == transients_.end() || *it != entry) transients_.insert(it, entry);
}

bool ExplicitFaultPlan::transient(const JobId& job, int slot) const {
  return std::binary_search(transients_.begin(), transients_.end(),
                            std::make_pair(job, slot));
}

std::string ExplicitFaultPlan::describe() const {
  std::string out;
  // Built with separate appends: GCC 12 reports -Wrestrict false positives
  // on chained std::string operator+ (see PR 1's report::interval fix).
  if (permanent_) {
    out += "permanent proc ";
    out += std::to_string(permanent_->proc);
    out += " @ ";
    out += core::format_ticks(permanent_->time);
  }
  if (!transients_.empty()) {
    if (!out.empty()) out += "; ";
    out += "transients:";
    for (const auto& [job, slot] : transients_) {
      out += ' ';
      out += core::to_string(job);
      out += slot == 0 ? "/main" : "/backup";
    }
  }
  if (out.empty()) out = "no faults";
  return out;
}

std::string CampaignViolation::to_string() const {
  std::string out = "case ";
  out += case_name;
  out += ", scheme ";
  out += scheme;
  out += ", plan [";
  out += fault_plan;
  out += "]:\n";
  out += report.to_string();
  out += "task set repro:\n";
  out += taskset;
  return out;
}

std::string CampaignResult::summary() const {
  std::string out = std::to_string(runs);
  out += " run(s) over ";
  out += std::to_string(placements);
  out += " fault placement(s), ";
  out += std::to_string(violations.size());
  out += " violation(s)";
  for (const CampaignViolation& v : violations) {
    out += '\n';
    out += v.to_string();
  }
  return out;
}

namespace {

/// Deterministically keeps at most `cap` elements, evenly strided.
template <typename T>
void stride_cap(std::vector<T>& v, std::size_t cap) {
  if (cap == 0 || v.size() <= cap) return;
  std::vector<T> kept;
  kept.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    kept.push_back(v[i * v.size() / cap]);
  }
  v = std::move(kept);
}

struct SchemeRunner {
  const CampaignCase& cs;
  const CampaignScheme& entry;
  const CampaignConfig& config;
  const std::string& taskset_text;
  sim::SimConfig sim_config;
  harness::BatchRunner* runner;  ///< per-case analysis cache + pooled engine
  sim::Scheme* scheme;  ///< one instance per (case, scheme); setup() resets it
  CampaignResult* result;

  /// Runs one plan with the auditor attached; records a violation (audit
  /// report, or a thrown engine/scheme error) and returns the trace when the
  /// run was clean. The trace lives in the runner's pooled buffer: it is
  /// overwritten by the next run, so callers must harvest it immediately.
  const sim::SimulationTrace* run(const ExplicitFaultPlan& plan) {
    ++result->runs;
    audit::AuditReport report;
    try {
      const sim::SimulationTrace& trace =
          runner->run_full(*scheme, plan, sim_config);
      report = audit::TraceAuditor(config.audit).audit(trace, cs.ts);
      if (report.ok()) return &trace;
    } catch (const sim::RunTimeoutError& e) {
      report.violations.push_back({"timeout", e.what()});
    } catch (const std::exception& e) {
      report.violations.push_back({"exception", e.what()});
    }
    result->violations.push_back(
        {cs.name, entry.name, plan.describe(), taskset_text, std::move(report)});
    return nullptr;
  }
};

/// Inspecting points of a schedule: the instants where a permanent fault can
/// change a dispatch decision -- t = 0, every job release, every copy's
/// eligible time (backup postponements theta_i, promotions Y_i) and end, and
/// every execution-segment boundary.
std::vector<Ticks> harvest_instants(const sim::SimulationTrace& trace,
                                    std::size_t cap) {
  std::vector<Ticks> instants{0};
  for (const sim::JobRecord& j : trace.jobs) instants.push_back(j.job.release);
  for (const sim::CopyRecord& c : trace.copies) {
    instants.push_back(c.eligible);
    instants.push_back(c.ended);
  }
  for (const sim::ExecSegment& s : trace.segments) {
    instants.push_back(s.span.begin);
    instants.push_back(s.span.end);
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()), instants.end());
  instants.erase(std::remove_if(instants.begin(), instants.end(),
                                [&trace](Ticks t) {
                                  return t < 0 || t >= trace.horizon;
                                }),
                 instants.end());
  stride_cap(instants, cap);
  return instants;
}

/// Single-transient targets: every main, every backup, every executed
/// optional copy -- one fault per run, so every placement stays within the
/// tolerance hypothesis.
std::vector<std::pair<JobId, int>> harvest_transient_targets(
    const sim::SimulationTrace& trace, std::size_t cap) {
  std::vector<std::pair<JobId, int>> targets;
  for (const sim::CopyRecord& c : trace.copies) {
    targets.emplace_back(c.job, c.kind == sim::CopyKind::kBackup ? 1 : 0);
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  stride_cap(targets, cap);
  return targets;
}

}  // namespace

CampaignResult run_campaign(const std::vector<CampaignCase>& cases,
                            const std::vector<CampaignScheme>& schemes,
                            const CampaignConfig& config) {
  CampaignResult result;
  for (const CampaignCase& cs : cases) {
    // One BatchRunner per case: the analysis cache (theta, Y, hyperperiod)
    // is shared by every scheme and every fault plan on this task set.
    harness::BatchRunner batch(cs.ts);
    const Ticks horizon =
        std::min(batch.horizon(config.horizon_cap), config.horizon_cap);
    const std::string taskset_text = io::serialize_taskset(cs.ts);
    for (const CampaignScheme& entry : schemes) {
      // One scheme instance per (case, scheme) pair; every scheme fully
      // resets its state in setup(), so plan-to-plan reuse is behavior-
      // identical to a fresh instance.
      const std::unique_ptr<sim::Scheme> scheme = entry.make();
      batch.bind(*scheme);
      SchemeRunner runner{
          cs,
          entry,
          config,
          taskset_text,
          sim::SimConfig{.horizon = horizon,
                         .platform = config.platform,
                         .wall_clock_budget_ms = config.run_budget_ms},
          &batch,
          scheme.get(),
          &result};

      // Fault-free probe: must itself audit clean, and its trace names the
      // inspecting points / copy targets the adversarial placements use.
      // The pooled trace is overwritten by the first plan run, so all
      // placements are derived from it before any plan executes.
      const sim::SimulationTrace* probe = runner.run(ExplicitFaultPlan{});
      if (probe == nullptr) continue;

      std::vector<ExplicitFaultPlan> plans;
      for (const Ticks t :
           harvest_instants(*probe, config.max_permanent_instants)) {
        for (std::size_t p = 0; p < config.platform.num_procs(); ++p) {
          ExplicitFaultPlan plan;
          plan.set_permanent({static_cast<sim::ProcessorId>(p), t});
          plans.push_back(std::move(plan));
        }
      }
      for (const auto& [job, slot] :
           harvest_transient_targets(*probe, config.max_transient_targets)) {
        ExplicitFaultPlan plan;
        plan.add_transient(job, slot);
        plans.push_back(std::move(plan));
      }
      if (config.include_bursts) {
        // Per task: transients on the mains (then on the backups) of k_i
        // consecutive jobs. Never both copies of one job, so the backups
        // (resp. mains) must absorb the whole burst.
        std::vector<std::uint64_t> released(cs.ts.size(), 0);
        for (const sim::JobRecord& j : probe->jobs) {
          released[j.job.id.task] =
              std::max(released[j.job.id.task], j.job.id.job);
        }
        for (core::TaskIndex i = 0; i < cs.ts.size(); ++i) {
          const std::uint64_t burst =
              std::min<std::uint64_t>(cs.ts[i].k, released[i]);
          if (burst == 0) continue;
          for (const int slot : {0, 1}) {
            ExplicitFaultPlan plan;
            for (std::uint64_t j = 1; j <= burst; ++j) {
              plan.add_transient(JobId{i, j}, slot);
            }
            plans.push_back(std::move(plan));
          }
        }
      }

      result.placements += plans.size();
      for (const ExplicitFaultPlan& plan : plans) runner.run(plan);
    }
  }
  return result;
}

std::vector<CampaignScheme> paper_schemes() {
  std::vector<CampaignScheme> schemes;
  for (const sched::SchemeKind kind :
       {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
        sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective}) {
    schemes.push_back({sched::to_string(kind),
                       [kind]() -> std::unique_ptr<sim::Scheme> {
                         return sched::make_scheme(kind);
                       }});
  }
  return schemes;
}

std::vector<CampaignCase> default_campaign_cases(std::uint64_t seed) {
  std::vector<CampaignCase> cases{
      {"fig1", workload::paper_fig1_taskset()},
      {"fig3", workload::paper_fig3_taskset()},
      {"fig5", workload::paper_fig5_taskset()},
  };
  // A few generated R-pattern-schedulable sets, kept small so the campaign's
  // full placement enumeration stays cheap.
  workload::GenParams params;
  params.min_tasks = 3;
  params.max_tasks = 5;
  params.max_period_ms = 20;
  params.max_k = 6;
  int index = 0;
  for (const double bin_lo : {0.3, 0.6}) {
    const workload::BinnedBatch batch = workload::generate_bin(
        params, bin_lo, bin_lo + 0.1, 1, 500, core::stream_seed(seed, 0xCA17, 0),
        static_cast<std::uint64_t>(index));
    if (!batch.sets.empty()) {
      cases.push_back({"gen-u" + std::to_string(index), batch.sets.front()});
    }
    ++index;
  }
  return cases;
}

CampaignResult run_default_campaign(const CampaignConfig& config) {
  return run_campaign(default_campaign_cases(), paper_schemes(), config);
}

}  // namespace mkss::fault
