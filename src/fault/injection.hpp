// Concrete fault plans (Section II-B and Section V of the paper).
//
// Transient faults follow a Poisson process with average rate lambda
// (the paper evaluates lambda = 1e-6 per ms): a copy executing for C ms is
// hit with probability p = 1 - exp(-lambda * C). Draws are derandomized by
// hashing (seed, task, job, replica slot), so the same logical job sees the
// same fault in every scheme under comparison and every run is reproducible.
//
// The permanent fault (at most one per run) strikes a chosen processor at a
// chosen instant; the evaluation draws both uniformly at random per task set.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/task.hpp"
#include "sim/fault_plan.hpp"

namespace mkss::fault {

/// The paper's three evaluation scenarios (Figure 6 a/b/c).
enum class Scenario {
  kNoFault,
  kPermanentOnly,
  kPermanentAndTransient,
};

const char* to_string(Scenario s);

/// Inverse of to_string ("no-fault", "permanent", "permanent+transient");
/// nullopt for unknown tokens. Repro-bundle replay resolves the recorded
/// scenario name through this.
std::optional<Scenario> scenario_from_string(const std::string& name);

/// Deterministic fault plan configured from a scenario.
class ScenarioFaultPlan final : public sim::FaultPlan {
 public:
  /// `lambda_per_ms` is the transient arrival rate; 0 disables transients.
  ScenarioFaultPlan(std::optional<sim::PermanentFault> permanent,
                    std::vector<double> transient_prob_per_task,
                    std::uint64_t seed);

  std::optional<sim::PermanentFault> permanent() const override { return permanent_; }
  bool transient(const core::JobId& job, int slot) const override;

 private:
  std::optional<sim::PermanentFault> permanent_;
  std::vector<double> prob_;
  std::uint64_t seed_;
};

/// Per-task transient fault probability p_i = 1 - exp(-lambda * C_i[ms]).
std::vector<double> transient_probabilities(const core::TaskSet& ts,
                                            double lambda_per_ms);

/// Builds the plan for one evaluation run: the permanent fault (if the
/// scenario has one) strikes a uniformly random processor at a uniformly
/// random instant in [0, horizon), drawn from `rng`; transients use
/// `lambda_per_ms` under kPermanentAndTransient.
std::unique_ptr<sim::FaultPlan> make_scenario_plan(Scenario scenario,
                                                   const core::TaskSet& ts,
                                                   core::Ticks horizon,
                                                   double lambda_per_ms,
                                                   core::Rng& rng);

}  // namespace mkss::fault
