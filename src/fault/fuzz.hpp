// Chaos fault-fuzz campaigns with automatic repro shrinking.
//
// Where fault/campaign.hpp *enumerates* the worst corners of the fault space
// for hand-picked task sets, the fuzzer samples the joint space of
//   random task set x random platform x random fault process x every scheme
// at scale. Each iteration draws a fresh R-pattern-schedulable task set from
// the workload generator, a platform size from the configured pool, and one
// of five fault processes (none; Poisson transients; a permanent fault; a
// burst storm on one task's copies; permanent + transients combined), then
// runs every registered scheme that supports the platform with the trace
// auditor attached. Fault placements may exceed Theorem 1's tolerance
// hypothesis on purpose -- check_repro then relaxes the two checks Theorem 1
// no longer covers ((m,k) windows and the mandatory-miss rule), so copy
// lifecycles, band ordering, outcome counts and energy reconciliation stay
// audited under arbitrarily hostile fault storms.
//
// Determinism: iteration i draws everything from
// core::Rng(core::stream_seed(seed, kFuzzStream, i)) in a fixed order, runs
// fan out over the thread pool into disjoint result slots, and aggregation
// walks the slots in iteration order -- so a fuzz run is a pure function of
// its config, bit-identical for every --threads value.
//
// Violations are delta-debugged by fault::shrink and written as repro
// bundles (io/repro_bundle.hpp) that `mkss_cli replay` re-runs audited.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/task.hpp"
#include "core/time.hpp"
#include "fault/shrink.hpp"
#include "io/repro_bundle.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss::fault {

/// The five fault processes an iteration can draw (weights 1/3/2/2/2 in 10).
enum class FaultMode {
  kNone = 0,       ///< fault-free control run
  kTransient,      ///< Poisson transients, lambda log-uniform in [1e-3, 10^-0.5] per ms
  kPermanent,      ///< one permanent fault, uniform processor and instant
  kBurst,          ///< storm: up to k_i consecutive jobs of one task, one slot
  kCombined,       ///< permanent + Poisson transients (beyond tolerance)
};
inline constexpr std::size_t kNumFaultModes = 5;

const char* to_string(FaultMode mode);

struct FuzzConfig {
  /// Iterations; each runs every eligible scheme once (audited).
  std::uint64_t runs{1000};
  std::uint64_t seed{20200309};
  /// Platform-size pool; each iteration draws one entry uniformly and runs
  /// on PlatformSpec::standby(procs).
  std::vector<std::size_t> procs{2};
  /// Registry names to fuzz; empty = every registered scheme.
  std::vector<std::string> schemes{};
  /// Task-set envelope. Defaults are smaller than the paper's evaluation
  /// sets so a single iteration stays cheap and shrunk repros stay tiny.
  workload::GenParams gen{.min_tasks = 3, .max_tasks = 6,
                          .max_period_ms = 20, .max_k = 6};
  /// Target (m,k)-utilization, drawn uniformly per iteration.
  double min_mk_util{0.15};
  double max_mk_util{0.70};
  /// Generator retries before the iteration is recorded as a draw failure.
  std::size_t max_draw_attempts{200};
  /// Horizon cap per run (harness::choose_horizon).
  core::Ticks horizon_cap{core::from_ms(std::int64_t{300})};
  /// Per-run wall-clock watchdog; a hung run quarantines as "timeout".
  double run_budget_ms{10000};
  /// Worker threads: 1 = inline, 0 = all hardware threads. The result is
  /// bit-identical for every value.
  std::size_t num_threads{1};
  /// Delta-debug violations into minimal repros (timeouts are never shrunk).
  bool shrink{true};
  std::uint64_t max_shrink_oracle_runs{2000};
  /// When non-empty, write one bundle (plus a .min bundle when shrinking
  /// changed anything) per violation into this directory.
  std::string error_dir{};
};

/// One audited failure with its full and minimal reproducers.
struct FuzzViolation {
  std::uint64_t iteration{0};
  std::string scheme;
  FaultMode mode{FaultMode::kNone};
  ReproVerdict verdict;       ///< of the original case
  ReproCase repro;            ///< as drawn
  ReproCase minimal;          ///< after shrinking (== repro when not shrunk)
  ReproVerdict minimal_verdict;
  std::uint64_t shrink_oracle_runs{0};
  std::string bundle_path;          ///< empty unless error_dir was set
  std::string minimal_bundle_path;  ///< empty when shrinking changed nothing
};

struct FuzzResult {
  std::uint64_t iterations{0};
  std::uint64_t audited_runs{0};  ///< scheme runs that completed the audit
  std::uint64_t draw_failures{0};
  std::uint64_t timeouts{0};
  std::array<std::uint64_t, kNumFaultModes> mode_counts{};
  std::vector<std::string> schemes;  ///< resolved scheme pool, fuzz order
  std::vector<FuzzViolation> violations;

  bool ok() const noexcept { return violations.empty(); }
  /// Multi-line human-readable summary; stable across thread counts.
  std::string summary() const;
};

/// Runs the campaign. Throws sched::UnknownSchemeError for an unknown name
/// in config.schemes and std::invalid_argument for an empty platform pool or
/// a scheme/platform combination nothing supports.
FuzzResult run_fuzz(const FuzzConfig& config);

/// Converts a (case, verdict) pair into the on-disk bundle dialect.
io::ReproBundle to_bundle(const ReproCase& c, const ReproVerdict& v);

/// Re-runs a parsed bundle audited, reconstructing the platform from its
/// roles string and the fault plan from whichever dialect it carries
/// (explicit hit lists verbatim; scenario bundles re-derive the plan from
/// the recorded scenario, lambda and fault seed, exactly like the sweep
/// harness drew it). Throws sched::UnknownSchemeError / std::invalid_argument
/// when the bundle's scheme or scenario cannot be resolved in this build.
ReproVerdict replay_bundle(const io::ReproBundle& bundle,
                           double run_budget_ms = 10000);

}  // namespace mkss::fault
