#include "fault/injection.hpp"

#include <cmath>

namespace mkss::fault {

const char* to_string(Scenario s) {
  switch (s) {
    case Scenario::kNoFault: return "no-fault";
    case Scenario::kPermanentOnly: return "permanent";
    case Scenario::kPermanentAndTransient: return "permanent+transient";
  }
  return "?";
}

std::optional<Scenario> scenario_from_string(const std::string& name) {
  if (name == "no-fault") return Scenario::kNoFault;
  if (name == "permanent") return Scenario::kPermanentOnly;
  if (name == "permanent+transient") return Scenario::kPermanentAndTransient;
  return std::nullopt;
}

ScenarioFaultPlan::ScenarioFaultPlan(std::optional<sim::PermanentFault> permanent,
                                     std::vector<double> transient_prob_per_task,
                                     std::uint64_t seed)
    : permanent_(permanent), prob_(std::move(transient_prob_per_task)), seed_(seed) {}

bool ScenarioFaultPlan::transient(const core::JobId& job, int slot) const {
  if (job.task >= prob_.size()) return false;
  const double p = prob_[job.task];
  if (p <= 0.0) return false;
  // Counter-based draw: one independent uniform per (task, job, slot).
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15;
  constexpr std::uint64_t kMix1 = 0xbf58476d1ce4e5b9;
  constexpr std::uint64_t kMix2 = 0x94d049bb133111eb;
  std::uint64_t key = seed_;
  key ^= kGamma + (static_cast<std::uint64_t>(job.task) << 1);
  key = key * kMix1 + job.job;
  key = key * kMix2 + static_cast<std::uint64_t>(slot >= 0 ? slot : 0) + 1;
  core::Rng rng(key);
  return rng.chance(p);
}

std::vector<double> transient_probabilities(const core::TaskSet& ts,
                                            double lambda_per_ms) {
  std::vector<double> prob;
  prob.reserve(ts.size());
  for (const core::Task& t : ts) {
    prob.push_back(lambda_per_ms <= 0.0
                       ? 0.0
                       : 1.0 - std::exp(-lambda_per_ms * core::to_ms(t.wcet)));
  }
  return prob;
}

std::unique_ptr<sim::FaultPlan> make_scenario_plan(Scenario scenario,
                                                   const core::TaskSet& ts,
                                                   core::Ticks horizon,
                                                   double lambda_per_ms,
                                                   core::Rng& rng) {
  if (scenario == Scenario::kNoFault) {
    return std::make_unique<sim::NoFaultPlan>();
  }
  sim::PermanentFault pf;
  pf.proc = rng.chance(0.5) ? sim::kPrimary : sim::kSpare;
  pf.time = rng.range(0, horizon > 0 ? horizon - 1 : 0);
  const double lambda =
      scenario == Scenario::kPermanentAndTransient ? lambda_per_ms : 0.0;
  return std::make_unique<ScenarioFaultPlan>(pf, transient_probabilities(ts, lambda),
                                             rng());
}

}  // namespace mkss::fault
