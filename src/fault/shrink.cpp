#include "fault/shrink.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "audit/trace_auditor.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"

namespace mkss::fault {

using core::Ticks;

bool within_tolerance(const ExplicitFaultPlan& plan) {
  const auto& hits = plan.transients();
  if (plan.permanent() && !hits.empty()) return false;
  // Sorted by (job, slot): a job hit on both slots sits in adjacent entries.
  for (std::size_t i = 1; i < hits.size(); ++i) {
    if (hits[i].first == hits[i - 1].first) return false;
  }
  return true;
}

ReproVerdict check_repro(const ReproCase& c, harness::RunContext* ctx) {
  const sched::SchemeInfo& info = sched::Registry::instance().resolve(c.scheme);
  if (!info.supports(c.platform.num_procs())) {
    throw std::invalid_argument(
        "repro case: scheme '" + c.scheme + "' does not support a " +
        std::to_string(c.platform.num_procs()) + "-processor platform");
  }
  ReproVerdict v;
  try {
    const auto scheme = info.make();
    harness::BatchRunner runner(c.ts, ctx);
    runner.bind(*scheme);
    sim::SimConfig cfg;
    cfg.horizon = c.horizon;
    cfg.platform = c.platform;
    cfg.wall_clock_budget_ms = c.run_budget_ms;
    const sim::SimulationTrace& trace = runner.run_full(*scheme, c.plan, cfg);
    audit::AuditOptions options;
    // Beyond the tolerance hypothesis, Theorem 1's guarantees are off: an
    // (m,k) window may legitimately break, and a mandatory job can miss with
    // fewer than two direct fault events (e.g. a permanent fault degrades
    // the platform, then transients on *other* jobs promote extra jobs to
    // mandatory via the dynamic pattern, and the added interference pushes
    // an innocent job past its deadline). Structural invariants -- copy
    // lifecycles, band order, outcome counts, energy reconciliation -- stay
    // audited under arbitrarily hostile plans.
    const bool tolerable = within_tolerance(c.plan);
    options.check_mk = tolerable;
    options.check_mandatory = tolerable;
    const audit::AuditReport report =
        audit::TraceAuditor(options).audit(trace, c.ts);
    if (!report.ok()) {
      v.violated = true;
      v.kind = "audit-violation";
      v.invariant = report.violations.front().invariant;
      v.detail = report.to_string();
    }
  } catch (const sim::RunTimeoutError& e) {
    v = {true, "timeout", "", e.what()};
  } catch (const std::exception& e) {
    v = {true, "exception", "", e.what()};
  }
  return v;
}

namespace {

/// The shrink oracle: a candidate is accepted iff it still violates with the
/// same verdict kind and the same first invariant as the original failure --
/// shrinking must simplify the *reproducer*, not wander to a different bug.
struct Oracle {
  ReproVerdict base;
  std::uint64_t runs{0};
  std::uint64_t cap{0};
  harness::RunContext* ctx{nullptr};

  bool accepts(const ReproCase& candidate, ReproVerdict& verdict_out) {
    if (runs >= cap) return false;
    ++runs;
    const ReproVerdict v = check_repro(candidate, ctx);
    if (v.violated && v.kind == base.kind && v.invariant == base.invariant) {
      verdict_out = v;
      return true;
    }
    return false;
  }
};

/// Fault plan with task `dropped` removed and higher task indices shifted
/// down -- the remap that keeps JobIds naming the same logical jobs after a
/// task-drop candidate.
ExplicitFaultPlan drop_task_from_plan(const ExplicitFaultPlan& plan,
                                      core::TaskIndex dropped) {
  ExplicitFaultPlan out;
  if (plan.permanent()) out.set_permanent(*plan.permanent());
  for (const auto& [job, slot] : plan.transients()) {
    if (job.task == dropped) continue;
    core::JobId id = job;
    if (id.task > dropped) --id.task;
    out.add_transient(id, slot);
  }
  return out;
}

core::TaskSet without_task(const core::TaskSet& ts, core::TaskIndex dropped) {
  std::vector<core::Task> tasks = ts.tasks();
  tasks.erase(tasks.begin() + static_cast<std::ptrdiff_t>(dropped));
  return core::TaskSet(std::move(tasks));
}

Ticks round_to_ms(Ticks t) {
  return (t + core::kTicksPerMs / 2) / core::kTicksPerMs * core::kTicksPerMs;
}

/// Whole-millisecond version of a task, or the task itself when rounding
/// would produce an invalid (or identical) tuple.
core::Task rounded_task(const core::Task& t) {
  core::Task r = t;
  r.period = std::max(core::kTicksPerMs, round_to_ms(t.period));
  r.deadline = std::min(r.period,
                        std::max(core::kTicksPerMs, round_to_ms(t.deadline)));
  r.wcet = std::min(r.deadline, round_to_ms(t.wcet));
  if (r.wcet <= 0) r.wcet = std::min(r.deadline, t.wcet);
  return r.valid() ? r : t;
}

}  // namespace

ShrinkResult shrink(const ReproCase& c, std::uint64_t max_oracle_runs,
                    harness::RunContext* ctx) {
  ShrinkResult result;
  result.minimal = c;
  result.verdict = check_repro(c, ctx);
  result.oracle_runs = 1;
  // Nothing to shrink: clean runs stay untouched, and timeout verdicts are
  // wall-clock-dependent, so "still times out" is not a deterministic oracle.
  if (!result.verdict.violated || result.verdict.kind == "timeout") {
    return result;
  }

  Oracle oracle{result.verdict, result.oracle_runs, max_oracle_runs, ctx};
  ReproCase& cur = result.minimal;
  ReproVerdict& verdict = result.verdict;

  bool changed = true;
  while (changed && oracle.runs < oracle.cap) {
    changed = false;

    // Pass 1: drop tasks, highest index first (dropping tau_i never changes
    // the priorities of the tasks above it, so high-index drops are the
    // least disruptive and tend to stick).
    for (core::TaskIndex i = cur.ts.size(); i-- > 0 && cur.ts.size() > 1;) {
      ReproCase candidate = cur;
      candidate.ts = without_task(cur.ts, i);
      candidate.plan = drop_task_from_plan(cur.plan, i);
      if (oracle.accepts(candidate, verdict)) {
        cur = std::move(candidate);
        changed = true;
      }
    }

    // Pass 2: trim transient hits one at a time, last first.
    for (std::size_t i = cur.plan.transients().size(); i-- > 0;) {
      ReproCase candidate = cur;
      ExplicitFaultPlan plan;
      if (cur.plan.permanent()) plan.set_permanent(*cur.plan.permanent());
      const auto& hits = cur.plan.transients();
      for (std::size_t h = 0; h < hits.size(); ++h) {
        if (h != i) plan.add_transient(hits[h].first, hits[h].second);
      }
      candidate.plan = std::move(plan);
      if (oracle.accepts(candidate, verdict)) {
        cur = std::move(candidate);
        changed = true;
      }
    }

    // Pass 3: drop the permanent fault.
    if (cur.plan.permanent()) {
      ReproCase candidate = cur;
      ExplicitFaultPlan plan;
      for (const auto& [job, slot] : cur.plan.transients()) {
        plan.add_transient(job, slot);
      }
      candidate.plan = std::move(plan);
      if (oracle.accepts(candidate, verdict)) {
        cur = std::move(candidate);
        changed = true;
      }
    }

    // Pass 4: halve the horizon down to a 5 ms floor.
    while (cur.horizon / 2 >= core::from_ms(std::int64_t{5})) {
      ReproCase candidate = cur;
      candidate.horizon = cur.horizon / 2;
      if (!oracle.accepts(candidate, verdict)) break;
      cur = std::move(candidate);
      changed = true;
    }

    // Pass 5: round task parameters to whole milliseconds.
    for (core::TaskIndex i = 0; i < cur.ts.size(); ++i) {
      const core::Task rounded = rounded_task(cur.ts[i]);
      if (rounded == cur.ts[i]) continue;
      std::vector<core::Task> tasks = cur.ts.tasks();
      tasks[i] = rounded;
      ReproCase candidate = cur;
      candidate.ts = core::TaskSet(std::move(tasks));
      if (oracle.accepts(candidate, verdict)) {
        cur = std::move(candidate);
        changed = true;
      }
    }
  }

  result.oracle_runs = oracle.runs;
  return result;
}

}  // namespace mkss::fault
