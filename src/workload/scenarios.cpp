#include "workload/scenarios.hpp"

namespace mkss::workload {

using core::Task;
using core::TaskSet;

TaskSet paper_fig1_taskset() {
  return TaskSet({Task::from_ms(5, 4, 3, 2, 4, "tau1"),
                  Task::from_ms(10, 10, 3, 1, 2, "tau2")});
}

TaskSet paper_fig3_taskset() {
  return TaskSet({Task::from_ms(5, 2.5, 2, 2, 4, "tau1"),
                  Task::from_ms(4, 4, 2, 2, 4, "tau2")});
}

TaskSet paper_fig5_taskset() {
  return TaskSet({Task::from_ms(10, 10, 3, 2, 3, "tau1"),
                  Task::from_ms(15, 15, 8, 1, 2, "tau2")});
}

}  // namespace mkss::workload
