// Synthetic task-set generation following Section V of the paper:
// 5..10 tasks per set, periods uniform in [5, 50] ms, k_i uniform in [2, 20],
// 0 < m_i < k_i, WCETs shaped to hit a target total (m,k)-utilization, and
// the total (m,k)-utilization axis divided into bins of width 0.1, each bin
// requiring at least `want_schedulable` R-pattern-schedulable sets (or a
// generation-attempt cap, mirroring the paper's "at least 20 task sets
// schedulable or at least 5000 task sets generated").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/rta.hpp"
#include "core/rng.hpp"
#include "core/task.hpp"
#include "core/thread_pool.hpp"

namespace mkss::workload {

/// How per-task WCETs are drawn.
enum class WcetModel {
  /// C_i / P_i uniform in (0, 1) as in the paper ("the WCET of a task was
  /// assumed to be uniformly distributed"); the target (m,k)-utilization is
  /// reached through the m_i/k_i ratios. Low-utilization bins then still
  /// contain tasks with substantial per-job demand, which is the regime
  /// where backup procrastination matters.
  kUniformWcet,
  /// C_i derived from a UUniFast (m,k)-utilization share with random
  /// (m_i, k_i): C_i = u_i k_i P_i / m_i. Produces featherweight tasks in
  /// low bins; kept as an ablation of workload shaping.
  kShapedWcet,
};

struct GenParams {
  std::size_t min_tasks{5};
  std::size_t max_tasks{10};
  std::int64_t min_period_ms{5};
  std::int64_t max_period_ms{50};
  std::uint32_t min_k{2};
  std::uint32_t max_k{20};
  /// Deadline factor: D_i = deadline_factor * P_i (the paper's evaluation
  /// uses implicit deadlines).
  double deadline_factor{1.0};
  WcetModel wcet_model{WcetModel::kUniformWcet};
  /// Schedulability test a generated set must pass to be accepted
  /// ("schedulable under R-pattern" in the paper; the E-pattern model is
  /// used by the pattern ablation).
  analysis::DemandModel accept_model{analysis::DemandModel::kRPatternMandatory};
  /// RNG substream scheme version; 2 is the only supported value.
  ///
  /// Version 2 gives every generation attempt its own named stream,
  /// core::stream_seed(seed, bin_index, attempt), so attempts are mutually
  /// independent -- which is what lets generate_bin run speculative attempt
  /// chunks across the thread pool and still commit bit-identical results
  /// for every thread count. Version 1 (one sequential stream per bin,
  /// attempt N's draws depending on how many values attempts 0..N-1
  /// consumed) could not be parallelized and was removed; the bump
  /// regenerated every golden fixture once and extended the corpus manifest
  /// key so v1 corpora abort loudly instead of replaying stale sets.
  std::uint32_t stream_version{2};
};

/// Draws one random task set whose total (m,k)-utilization is close to
/// `target_mk_util`. Returns std::nullopt when the draw produced an invalid
/// task (e.g. C_i > D_i); callers simply retry.
std::optional<core::TaskSet> generate_taskset(const GenParams& params,
                                              double target_mk_util,
                                              core::Rng& rng);

/// Per-stage generation telemetry. Every attempt lands in exactly one of
/// draw_failures / out_of_bin / filter_rejects / rta_rejects / accepted, so
/// the five sum to the attempt count; quick_accepts is the subset of
/// `accepted` certified by the closed-form hyperbolic bound without any
/// demand evaluation. (Probe accepts are deliberately NOT counted
/// separately: whether a remembered probe or an exact fixed point certifies
/// a task depends on which candidates an admission context saw before, i.e.
/// on worker scheduling -- only history-independent stages may feed a
/// counter that must be bit-identical across thread counts.)
struct GenCounters {
  std::uint64_t draw_failures{0};   ///< a share was too big for its (m,k,P)
  std::uint64_t out_of_bin{0};      ///< integer rounding drifted the total
  std::uint64_t filter_rejects{0};  ///< staged demand lower bound fired
  std::uint64_t rta_rejects{0};     ///< exact fixed point overran a deadline
  std::uint64_t accepted{0};
  std::uint64_t quick_accepts{0};

  GenCounters& operator+=(const GenCounters& o) noexcept;
  friend bool operator==(const GenCounters&, const GenCounters&) = default;
};

/// Wall-clock spent per stage of the batched generation pipeline, in
/// seconds. Telemetry only -- never part of the bit-identity contract. With
/// a thread pool the per-worker times are summed, so the fields read as CPU
/// seconds per stage, which is the right unit for "where do the cycles go".
/// The scalar fallback path (MKSS_GEN_MODE=scalar, or parameters outside the
/// batch pipeline's envelope) leaves all fields zero.
struct GenStageSeconds {
  double draw{0};       ///< RNG draws + SoA fill
  double prefilter{0};  ///< vectorized sigma-C > D_lp screen
  double finalize{0};   ///< deferred shares/m, repair, sort, bin check
  double ladder{0};     ///< admission stages 1-2 (S0 demand screen, hyperbolic)
  double rta{0};        ///< lockstep exact fixed points (stages 3-4)

  GenStageSeconds& operator+=(const GenStageSeconds& o) noexcept;
};

/// A batch of schedulable task sets inside one (m,k)-utilization bin.
struct BinnedBatch {
  double bin_lo{0};
  double bin_hi{0};
  std::vector<core::TaskSet> sets;   ///< R-pattern schedulable, util in bin
  std::uint64_t attempts{0};         ///< total generation attempts
  GenCounters counters;              ///< where the attempts went
  GenStageSeconds stage_seconds;     ///< per-stage timing telemetry
};

/// Generates until `want_schedulable` schedulable sets landed in
/// [bin_lo, bin_hi) or `max_attempts` draws were made.
///
/// Attempt a draws from core::Rng(core::stream_seed(seed, bin_index, a)) and
/// accepted sets commit in ascending attempt order, so the result is a pure
/// function of (params, bin bounds, want, max_attempts, seed, bin_index):
/// with a thread pool the attempts run as speculative chunks across the
/// workers, bit-identical to the serial path (pool == nullptr) for every
/// thread count. Callers that derive `seed` from a wider context should
/// reserve a stream index for it (the sweep harness uses its generation
/// stream tag) so attempt streams cannot collide with other named streams.
///
/// Attempts are processed through a structure-of-arrays batch pipeline
/// (deferred UUniFast shares, vectorized prefilter, lockstep batched RTA --
/// see docs/architecture.md) whenever the parameters fit its envelope
/// (kUniformWcet, min_k >= 2, max_tasks <= 16); the result is bit-identical
/// to the one-attempt-at-a-time scalar path by construction. Env overrides:
/// MKSS_GEN_MODE=scalar forces the scalar path, =batch insists on the batch
/// path (warning when ineligible), unset/auto picks automatically; setting
/// MKSS_GEN_CROSSCHECK=1 runs *both* paths per attempt and aborts on any
/// divergence in verdict kind or accepted tasks (debug/CI harness).
BinnedBatch generate_bin(const GenParams& params, double bin_lo, double bin_hi,
                         std::size_t want_schedulable, std::size_t max_attempts,
                         std::uint64_t seed, std::uint64_t bin_index,
                         core::ThreadPool* pool = nullptr);

}  // namespace mkss::workload
