// Synthetic task-set generation following Section V of the paper:
// 5..10 tasks per set, periods uniform in [5, 50] ms, k_i uniform in [2, 20],
// 0 < m_i < k_i, WCETs shaped to hit a target total (m,k)-utilization, and
// the total (m,k)-utilization axis divided into bins of width 0.1, each bin
// requiring at least `want_schedulable` R-pattern-schedulable sets (or a
// generation-attempt cap, mirroring the paper's "at least 20 task sets
// schedulable or at least 5000 task sets generated").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/rta.hpp"
#include "core/rng.hpp"
#include "core/task.hpp"

namespace mkss::workload {

/// How per-task WCETs are drawn.
enum class WcetModel {
  /// C_i / P_i uniform in (0, 1) as in the paper ("the WCET of a task was
  /// assumed to be uniformly distributed"); the target (m,k)-utilization is
  /// reached through the m_i/k_i ratios. Low-utilization bins then still
  /// contain tasks with substantial per-job demand, which is the regime
  /// where backup procrastination matters.
  kUniformWcet,
  /// C_i derived from a UUniFast (m,k)-utilization share with random
  /// (m_i, k_i): C_i = u_i k_i P_i / m_i. Produces featherweight tasks in
  /// low bins; kept as an ablation of workload shaping.
  kShapedWcet,
};

struct GenParams {
  std::size_t min_tasks{5};
  std::size_t max_tasks{10};
  std::int64_t min_period_ms{5};
  std::int64_t max_period_ms{50};
  std::uint32_t min_k{2};
  std::uint32_t max_k{20};
  /// Deadline factor: D_i = deadline_factor * P_i (the paper's evaluation
  /// uses implicit deadlines).
  double deadline_factor{1.0};
  WcetModel wcet_model{WcetModel::kUniformWcet};
  /// Schedulability test a generated set must pass to be accepted
  /// ("schedulable under R-pattern" in the paper; the E-pattern model is
  /// used by the pattern ablation).
  analysis::DemandModel accept_model{analysis::DemandModel::kRPatternMandatory};
};

/// Draws one random task set whose total (m,k)-utilization is close to
/// `target_mk_util`. Returns std::nullopt when the draw produced an invalid
/// task (e.g. C_i > D_i); callers simply retry.
std::optional<core::TaskSet> generate_taskset(const GenParams& params,
                                              double target_mk_util,
                                              core::Rng& rng);

/// A batch of schedulable task sets inside one (m,k)-utilization bin.
struct BinnedBatch {
  double bin_lo{0};
  double bin_hi{0};
  std::vector<core::TaskSet> sets;   ///< R-pattern schedulable, util in bin
  std::uint64_t attempts{0};         ///< total generation attempts
};

/// Generates until `want_schedulable` R-pattern-schedulable sets landed in
/// [bin_lo, bin_hi) or `max_attempts` draws were made.
BinnedBatch generate_bin(const GenParams& params, double bin_lo, double bin_hi,
                         std::size_t want_schedulable, std::size_t max_attempts,
                         core::Rng& rng);

}  // namespace mkss::workload
