// The fixed task sets of the paper's worked examples (Figures 1-5), exposed
// so tests, examples and docs all speak about the same objects.
#pragma once

#include "core/task.hpp"

namespace mkss::workload {

/// Section III, Figures 1-2: tau1 = (5, 4, 3, 2, 4), tau2 = (10, 10, 3, 1, 2).
core::TaskSet paper_fig1_taskset();

/// Section III, Figures 3-4: tau1 = (5, 2.5, 2, 2, 4), tau2 = (4, 4, 2, 2, 4).
core::TaskSet paper_fig3_taskset();

/// Section IV, Figure 5: tau1 = (10, 10, 3, 2, 3), tau2 = (15, 15, 8, 1, 2).
core::TaskSet paper_fig5_taskset();

}  // namespace mkss::workload
