#include "workload/taskset_gen.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/rta.hpp"

namespace mkss::workload {

using core::Task;
using core::TaskSet;
using core::Ticks;

namespace {

/// UUniFast (Bini & Buttazzo): splits `total` into n unbiased shares,
/// written into `shares` (resized; reused across attempts by generate_bin).
void uunifast(std::size_t n, double total, core::Rng& rng,
              std::vector<double>& shares) {
  shares.resize(n);
  double sum = total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        sum * std::pow(rng.uniform01(), 1.0 / static_cast<double>(n - 1 - i));
    shares[i] = sum - next;
    sum = next;
  }
  shares[n - 1] = sum;
}

/// Greedily steps individual m_i values (each step changes the total by
/// (C_i/P_i)/k_i) towards `target` total (m,k)-utilization.
///
/// C_i/P_i and the per-step delta only depend on (C, P, k), which the loop
/// never touches, so both are hoisted out of the iterations; every double
/// below reproduces Task::mk_utilization()'s expression term for term, so
/// the accept/reject decisions stay bit-identical to the naive form.
void repair_mk_total(std::vector<Task>& tasks, double target,
                     std::vector<double>& util, std::vector<double>& step) {
  util.resize(tasks.size());
  step.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    util[i] = tasks[i].utilization();
    step[i] = util[i] / static_cast<double>(tasks[i].k);
  }
  const auto total = [&] {
    double u = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      u += util[i] * static_cast<double>(tasks[i].m) /
           static_cast<double>(tasks[i].k);
    }
    return u;
  };
  for (int iter = 0; iter < 256; ++iter) {
    const double current = total();
    const double gap = target - current;
    // Find the m step that best reduces |gap| without leaving [1, k-1].
    std::size_t best = tasks.size();
    double best_improve = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const Task& t = tasks[i];
      if (gap > 0 && t.m + 1 < t.k) {
        const double improve = std::abs(gap) - std::abs(gap - step[i]);
        if (improve > best_improve) {
          best_improve = improve;
          best = i;
        }
      } else if (gap < 0 && t.m > 1) {
        const double improve = std::abs(gap) - std::abs(gap + step[i]);
        if (improve > best_improve) {
          best_improve = improve;
          best = i;
        }
      }
    }
    if (best == tasks.size()) break;  // no step improves the total
    if (target > current) {
      ++tasks[best].m;
    } else {
      --tasks[best].m;
    }
  }
}

/// Scratch buffers reused across generation attempts, so the 95%+ of draws
/// that get rejected never touch the heap.
struct GenScratch {
  std::vector<double> shares;
  std::vector<Task> tasks;
  std::vector<double> repair_util;
  std::vector<double> repair_step;
};

/// Draws one candidate into `s.tasks` -- draw-for-draw identical to the
/// original generate_taskset (the accepted-set golden values depend on the
/// RNG sequence). Returns false when a share is too big for its (m,k,P)
/// draw; tasks come out sorted rate-monotonically but unnamed.
bool draw_candidate(const GenParams& params, double target_mk_util,
                    core::Rng& rng, GenScratch& s) {
  const auto n = static_cast<std::size_t>(
      rng.range(static_cast<std::int64_t>(params.min_tasks),
                static_cast<std::int64_t>(params.max_tasks)));
  uunifast(n, target_mk_util, rng, s.shares);

  s.tasks.clear();
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.period = core::from_ms(rng.range(params.min_period_ms, params.max_period_ms));
    t.deadline = std::max<Ticks>(
        1, core::from_ms(params.deadline_factor * core::to_ms(t.period)));
    t.k = static_cast<std::uint32_t>(
        rng.range(params.min_k, static_cast<std::int64_t>(params.max_k)));

    switch (params.wcet_model) {
      case WcetModel::kUniformWcet: {
        // C/P uniform; the (m,k) ratio carries the utilization share:
        // share = (m/k) * (C/P)  =>  m = k * share * P / C.
        const double v = rng.uniform(0.05, 1.0);  // C_i / P_i
        t.wcet = std::max<Ticks>(
            1, static_cast<Ticks>(std::llround(v * static_cast<double>(t.period))));
        const double m_real =
            static_cast<double>(t.k) * s.shares[i] / v;
        const auto m = static_cast<std::int64_t>(std::llround(m_real));
        t.m = static_cast<std::uint32_t>(
            std::clamp<std::int64_t>(m, 1, static_cast<std::int64_t>(t.k) - 1));
        break;
      }
      case WcetModel::kShapedWcet: {
        t.m = static_cast<std::uint32_t>(
            rng.range(1, static_cast<std::int64_t>(t.k) - 1));
        // share = m*C / (k*P)  =>  C = share * k * P / m.
        const double c_ticks = s.shares[i] * static_cast<double>(t.k) *
                               static_cast<double>(t.period) /
                               static_cast<double>(t.m);
        t.wcet = static_cast<Ticks>(std::llround(c_ticks));
        if (t.wcet < 1) t.wcet = 1;
        break;
      }
    }
    if (!t.valid()) return false;  // share too big for this (m,k,P) draw
    s.tasks.push_back(t);
  }

  // Integer m_i rounding can drift the total away from the target; repair by
  // nudging m values until the total is as close to the target as unit steps
  // allow.
  if (params.wcet_model == WcetModel::kUniformWcet) {
    repair_mk_total(s.tasks, target_mk_util, s.repair_util, s.repair_step);
  }

  // Rate-monotonic priority order (shorter period == higher priority), the
  // natural fixed-priority assignment for implicit deadlines.
  std::sort(s.tasks.begin(), s.tasks.end(),
            [](const Task& a, const Task& b) { return a.period < b.period; });
  return true;
}

/// Sum of m C / (k P) over the scratch tasks, in the same (sorted) order as
/// TaskSet::total_mk_utilization would accumulate it -- bit-identical, so
/// the bin accept/reject decision matches the materialized path.
double raw_mk_utilization(const std::vector<Task>& tasks) {
  double u = 0;
  for (const Task& t : tasks) u += t.mk_utilization();
  return u;
}

}  // namespace

std::optional<TaskSet> generate_taskset(const GenParams& params,
                                        double target_mk_util, core::Rng& rng) {
  GenScratch s;
  if (!draw_candidate(params, target_mk_util, rng, s)) return std::nullopt;
  for (std::size_t i = 0; i < s.tasks.size(); ++i) {
    s.tasks[i].name = "tau" + std::to_string(i + 1);
  }
  return TaskSet(std::move(s.tasks));
}

BinnedBatch generate_bin(const GenParams& params, double bin_lo, double bin_hi,
                         std::size_t want_schedulable, std::size_t max_attempts,
                         core::Rng& rng) {
  BinnedBatch batch;
  batch.bin_lo = bin_lo;
  batch.bin_hi = bin_hi;
  GenScratch scratch;
  while (batch.sets.size() < want_schedulable && batch.attempts < max_attempts) {
    ++batch.attempts;
    const double target = rng.uniform(bin_lo, bin_hi);
    if (!draw_candidate(params, target, rng, scratch)) continue;
    // Cheap rejections first: most candidates drift out of the bin after
    // integer rounding, and the raw-vector total is bit-identical to the
    // TaskSet one, so names/TaskSet are only materialized for survivors.
    const double u = raw_mk_utilization(scratch.tasks);
    if (u < bin_lo || u >= bin_hi) continue;  // rounding moved it out of bin
    TaskSet ts(std::vector<Task>(scratch.tasks.begin(), scratch.tasks.end()));
    if (!analysis::schedulable(ts, params.accept_model)) {
      continue;
    }
    batch.sets.push_back(std::move(ts));
  }
  return batch;
}

}  // namespace mkss::workload
