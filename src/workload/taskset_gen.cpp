#include "workload/taskset_gen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "analysis/admission.hpp"
#include "core/simd.hpp"

namespace mkss::workload {

using core::Task;
using core::TaskSet;
using core::Ticks;

namespace {

/// u^(1/e) for integer e >= 1. The small exponents that dominate UUniFast's
/// tail get hardware square roots (correctly rounded per IEEE-754, so *more*
/// reproducible than libm pow) instead of a libm pow call.
double inv_int_root(double u, std::size_t e) {
  switch (e) {
    case 1: return u;
    case 2: return std::sqrt(u);
    case 4: return std::sqrt(std::sqrt(u));
    default: return std::pow(u, 1.0 / static_cast<double>(e));
  }
}

/// UUniFast (Bini & Buttazzo): splits `total` into n unbiased shares,
/// written into `shares` (resized; reused across attempts by generate_bin).
void uunifast(std::size_t n, double total, core::Rng& rng,
              std::vector<double>& shares) {
  shares.resize(n);
  double sum = total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next = sum * inv_int_root(rng.uniform01(), n - 1 - i);
    shares[i] = sum - next;
    sum = next;
  }
  shares[n - 1] = sum;
}

/// Greedily steps individual m_i values (each step changes the total by
/// (C_i/P_i)/k_i) towards `target` total (m,k)-utilization. `current` must be
/// sum step[i]*m[i] accumulated in index order (the running total is then
/// maintained incrementally, current +/- the applied step, instead of being
/// re-summed every iteration). The greedy m choices therefore follow this
/// accumulation's rounding -- a deterministic IEEE evaluation order, just not
/// the re-summed one -- which is fine: repair only picks integer m values,
/// and the bin filter re-checks the exact total afterwards.
void repair_mk_steps(std::size_t n, double target, double current,
                     const double* step, std::uint32_t* m,
                     const std::uint32_t* k) {
  for (int iter = 0; iter < 256; ++iter) {
    const double gap = target - current;
    const bool up = gap > 0;
    // Stepping m by one changes |gap| by |gap| - |gap -+ step|, which for a
    // step in the right direction equals min(step, 2|gap| - step): the full
    // step if it fits inside the gap, the post-overshoot remainder if not.
    const double twice_gap = up ? gap + gap : -(gap + gap);
    // Find the m step that best reduces |gap| without leaving [1, k-1].
    std::size_t best = n;
    double best_improve = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (up ? m[i] + 1 < k[i] : m[i] > 1) {
        const double improve = std::min(step[i], twice_gap - step[i]);
        if (improve > best_improve) {
          best_improve = improve;
          best = i;
        }
      }
    }
    if (best == n) break;  // no step improves the total
    if (up) {
      ++m[best];
      current += step[best];
    } else {
      --m[best];
      current -= step[best];
    }
  }
}

/// Task-vector front end of repair_mk_steps, used by the one-candidate paths.
/// The greedy scan runs over tight scalar arrays instead of the 64-byte Task
/// structs (whose name strings would drag dead bytes through the cache);
/// m values are written back once at the end.
void repair_mk_total(std::vector<Task>& tasks, double target,
                     std::vector<double>& step, std::vector<std::uint32_t>& m,
                     std::vector<std::uint32_t>& k) {
  const std::size_t n = tasks.size();
  step.resize(n);
  m.resize(n);
  k.resize(n);
  double current = 0;
  for (std::size_t i = 0; i < n; ++i) {
    step[i] = tasks[i].utilization() / static_cast<double>(tasks[i].k);
    m[i] = tasks[i].m;
    k[i] = tasks[i].k;
    current += step[i] * static_cast<double>(m[i]);
  }
  repair_mk_steps(n, target, current, step.data(), m.data(), k.data());
  for (std::size_t i = 0; i < n; ++i) tasks[i].m = m[i];
}

/// Scratch buffers reused across generation attempts, so the 95%+ of draws
/// that get rejected never touch the heap.
struct GenScratch {
  std::vector<double> shares;
  std::vector<Task> tasks;          ///< draw order; never physically sorted
  std::vector<std::uint32_t> order; ///< priority permutation into `tasks`
  std::vector<double> repair_step;
  std::vector<std::uint32_t> repair_m;
  std::vector<std::uint32_t> repair_k;
  core::Ticks wcet_sum{0};     ///< sum of all drawn WCETs
  core::Ticks lp_deadline{0};  ///< deadline of the longest-period task
};

/// Draws one raw candidate into `s.tasks` -- draw-for-draw identical to
/// generate_taskset (the accepted-set values depend on the RNG sequence).
/// Returns false when a share is too big for its (m,k,P) draw. Also records
/// `s.wcet_sum` and `s.lp_deadline`, the ingredients of the pre-repair
/// lower-bound filter in run_attempt. finalize_candidate() finishes the job
/// (m repair + priority order) for candidates that survive it.
bool draw_raw(const GenParams& params, double target_mk_util, core::Rng& rng,
              GenScratch& s) {
  const auto n = static_cast<std::size_t>(
      rng.range(static_cast<std::int64_t>(params.min_tasks),
                static_cast<std::int64_t>(params.max_tasks)));
  uunifast(n, target_mk_util, rng, s.shares);

  // Scratch tasks are written field-by-field in place (names stay empty --
  // only accepted candidates are ever materialized into named TaskSets).
  s.tasks.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task& t = s.tasks[i];
    t.period = core::from_ms(rng.range(params.min_period_ms, params.max_period_ms));
    // deadline_factor == 1.0 round-trips exactly (periods this size are exact
    // in double), so skip the ms conversions on the common implicit path.
    t.deadline = params.deadline_factor == 1.0
                     ? t.period
                     : std::max<Ticks>(1, core::from_ms(params.deadline_factor *
                                                        core::to_ms(t.period)));
    t.k = static_cast<std::uint32_t>(
        rng.range(params.min_k, static_cast<std::int64_t>(params.max_k)));

    switch (params.wcet_model) {
      case WcetModel::kUniformWcet: {
        // C/P uniform; the (m,k) ratio carries the utilization share:
        // share = (m/k) * (C/P)  =>  m = k * share * P / C.
        const double v = rng.uniform(0.05, 1.0);  // C_i / P_i
        t.wcet = std::max<Ticks>(
            1, static_cast<Ticks>(std::llround(v * static_cast<double>(t.period))));
        const double m_real =
            static_cast<double>(t.k) * s.shares[i] / v;
        const auto m = static_cast<std::int64_t>(std::llround(m_real));
        t.m = static_cast<std::uint32_t>(
            std::clamp<std::int64_t>(m, 1, static_cast<std::int64_t>(t.k) - 1));
        break;
      }
      case WcetModel::kShapedWcet: {
        t.m = static_cast<std::uint32_t>(
            rng.range(1, static_cast<std::int64_t>(t.k) - 1));
        // share = m*C / (k*P)  =>  C = share * k * P / m.
        const double c_ticks = s.shares[i] * static_cast<double>(t.k) *
                               static_cast<double>(t.period) /
                               static_cast<double>(t.m);
        t.wcet = static_cast<Ticks>(std::llround(c_ticks));
        if (t.wcet < 1) t.wcet = 1;
        break;
      }
    }
    if (!t.valid()) return false;  // share too big for this (m,k,P) draw
  }

  s.wcet_sum = 0;
  s.lp_deadline = 0;
  Ticks max_period = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s.wcet_sum += s.tasks[i].wcet;
    // Equal periods share a deadline (it is a pure function of the period),
    // so any longest-period task gives the lowest-priority deadline.
    if (s.tasks[i].period >= max_period) {
      max_period = s.tasks[i].period;
      s.lp_deadline = s.tasks[i].deadline;
    }
  }
  return true;
}

/// Second half of a candidate draw: m repair towards the target total and
/// the rate-monotonic priority permutation. Consumes no RNG, so callers may
/// discard a raw draw before this without perturbing the stream.
void finalize_candidate(const GenParams& params, double target_mk_util,
                        GenScratch& s) {
  const std::size_t n = s.tasks.size();

  // Integer m_i rounding can drift the total away from the target; repair by
  // nudging m values until the total is as close to the target as unit steps
  // allow.
  if (params.wcet_model == WcetModel::kUniformWcet) {
    repair_mk_total(s.tasks, target_mk_util, s.repair_step, s.repair_m,
                    s.repair_k);
  }

  // Rate-monotonic priority order (shorter period == higher priority), the
  // natural fixed-priority assignment for implicit deadlines. Insertion sort
  // of the identity permutation: stable, so equal periods keep draw order --
  // std::sort over the Task structs left that tie implementation-defined.
  s.order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) s.order[i] = i;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t key = s.order[i];
    const Ticks key_period = s.tasks[key].period;
    std::size_t j = i;
    for (; j > 0 && s.tasks[s.order[j - 1]].period > key_period; --j) {
      s.order[j] = s.order[j - 1];
    }
    s.order[j] = key;
  }
}

/// Sum of m C / (k P) over the scratch tasks in priority order -- the same
/// accumulation order as TaskSet::total_mk_utilization, so the bin
/// accept/reject decision is bit-identical to the materialized path.
double raw_mk_utilization(const GenScratch& s) {
  double u = 0;
  for (const auto idx : s.order) u += s.tasks[idx].mk_utilization();
  return u;
}

/// Per-thread generation state: scratch buffers plus the staged-admission
/// context whose probe hints warm-start consecutive attempts.
struct AttemptWorker {
  GenScratch scratch;
  analysis::AdmissionContext admission;
};

enum class AttemptKind : std::uint8_t {
  kDrawFail,
  kOutOfBin,
  kFilterReject,
  kRtaReject,
  kAccepted,
};

struct AttemptResult {
  AttemptKind kind{AttemptKind::kDrawFail};
  bool quick{false};  ///< accepted by the hyperbolic bound alone
};

/// Per-attempt result slot of a speculative chunk: the commit loop in
/// generate_bin examines slots in ascending attempt order, so the batch is a
/// pure function of its inputs no matter how the slots were filled.
struct Slot {
  AttemptResult result;
  std::vector<Task> tasks;  ///< accepted tasks, priority order (else stale)
};

/// Runs one fully self-contained attempt: its private RNG stream, a draw,
/// the bin filter, and staged admission. On accept, writes the tasks (in
/// priority order, unnamed -- the TaskSet constructor names them) into
/// `accepted_out`. Attempts touch no shared state, which is what makes the
/// speculative parallel path below trivially race-free.
AttemptResult run_attempt(const GenParams& params, double bin_lo, double bin_hi,
                          std::uint64_t seed, std::uint64_t bin_index,
                          std::uint64_t attempt, AttemptWorker& w,
                          std::vector<Task>& accepted_out) {
  core::Rng rng(core::stream_seed(seed, bin_index, attempt));
  const double target = rng.uniform(bin_lo, bin_hi);
  if (!draw_raw(params, target, rng, w.scratch)) {
    return {AttemptKind::kDrawFail, false};
  }
  // Pre-repair lower-bound filter: the lowest-priority task under any
  // priority order is a longest-period one, and its demand lower bound S0
  // (see AdmissionContext) is the order-independent sum of ALL WCETs. m
  // repair never touches WCETs, periods, or deadlines, so when that exact
  // Ticks comparison fails here, staged admission would reject the finished
  // candidate with kLowerBoundReject regardless of its bin -- skip the
  // repair, the sort, and the admission call outright.
  if (w.scratch.wcet_sum > w.scratch.lp_deadline) {
    return {AttemptKind::kFilterReject, false};
  }
  finalize_candidate(params, target, w.scratch);
  // Cheap rejections next: most surviving candidates drift out of the bin
  // after integer rounding, and the raw-vector total is bit-identical to the
  // TaskSet one, so names/TaskSet are only materialized for survivors.
  const double u = raw_mk_utilization(w.scratch);
  if (u < bin_lo || u >= bin_hi) return {AttemptKind::kOutOfBin, false};
  const auto verdict = w.admission.admit(w.scratch.tasks, w.scratch.order,
                                         params.accept_model);
  if (!verdict.schedulable) {
    return {verdict.stage == analysis::AdmissionStage::kLowerBoundReject
                ? AttemptKind::kFilterReject
                : AttemptKind::kRtaReject,
            false};
  }
  accepted_out.clear();
  accepted_out.reserve(w.scratch.order.size());
  for (const auto idx : w.scratch.order) {
    accepted_out.push_back(w.scratch.tasks[idx]);
  }
  // Only the hyperbolic stage counts as "quick": it is a pure function of
  // the candidate. The probe-vs-exact distinction depends on the admission
  // context's history (which attempts this worker ran before), and counters
  // must be bit-identical across thread counts.
  return {AttemptKind::kAccepted,
          verdict.stage == analysis::AdmissionStage::kHyperbolicAccept};
}

void tally(GenCounters& c, const AttemptResult& r) {
  switch (r.kind) {
    case AttemptKind::kDrawFail: ++c.draw_failures; break;
    case AttemptKind::kOutOfBin: ++c.out_of_bin; break;
    case AttemptKind::kFilterReject: ++c.filter_rejects; break;
    case AttemptKind::kRtaReject: ++c.rta_rejects; break;
    case AttemptKind::kAccepted:
      ++c.accepted;
      if (r.quick) ++c.quick_accepts;
      break;
  }
}

// ---------------------------------------------------------------------------
// Structure-of-arrays batch pipeline.
//
// run_batch processes a chunk of consecutive attempts through phase-major
// stages instead of attempt-major ones: draw every candidate's RNG stream
// into flat stride-16 arrays, screen the whole chunk with one vectorized
// sigma-C/max-D kernel pass, finish only the survivors (UUniFast pow chain,
// m derivation, repair, priority sort -- all deferred), and resolve the
// remaining candidates through one lockstep admission batch.
//
// Two properties make the result bit-identical to run_attempt:
//   * the RNG draw sequence per attempt is unchanged -- the deferred work
//     (inv_int_root, m rounding, repair, sort) consumes no RNG, and v2
//     per-attempt substreams mean drawing *more* values than the scalar
//     path's early-outs (a draw-fail candidate still draws its remaining
//     tasks here) is unobservable: nothing else ever reads that stream;
//   * every deferred computation evaluates the same IEEE expressions in the
//     same order as the scalar path, and the batch kernels are exact integer
//     re-bracketings (see core/simd.hpp).
// MKSS_GEN_CROSSCHECK=1 re-runs the scalar path per attempt and aborts on
// any divergence.
// ---------------------------------------------------------------------------

/// Where the generation pipeline's batch eligibility ends: candidate counts
/// above this stay exact in the deferred llround_nonneg domain (v * P and
/// k * share / v both < 2^52 needs P < ~4.5e12 ticks; one decade of margin).
constexpr std::int64_t kMaxBatchPeriodMs = 1'000'000'000;

enum class GenMode : std::uint8_t { kAuto, kScalar, kBatch };

GenMode gen_mode_from_env() {
  const char* env = std::getenv("MKSS_GEN_MODE");
  if (env == nullptr || std::strcmp(env, "auto") == 0) return GenMode::kAuto;
  if (std::strcmp(env, "scalar") == 0) return GenMode::kScalar;
  if (std::strcmp(env, "batch") == 0) return GenMode::kBatch;
  std::fprintf(stderr,
               "mkss: unknown MKSS_GEN_MODE value '%s' "
               "(expected scalar|batch|auto); auto-selecting\n",
               env);
  return GenMode::kAuto;
}

bool crosscheck_from_env() {
  const char* env = std::getenv("MKSS_GEN_CROSSCHECK");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

/// True when `params` fit the batch pipeline's envelope: the uniform WCET
/// model (the shaped model draws m *before* its WCET, so nothing can be
/// deferred), k >= 2 (the scalar path's m clamp needs it too), task counts
/// within the fixed lane stride, and periods inside the exact-rounding
/// domain of the deferred llround.
bool batch_eligible(const GenParams& p, double bin_lo) {
  return p.wcet_model == WcetModel::kUniformWcet && p.min_k >= 2 &&
         p.min_tasks >= 1 && p.max_tasks <= core::simd::kRowStride &&
         p.min_period_ms >= 1 && p.max_period_ms <= kMaxBatchPeriodMs &&
         bin_lo >= 0;
}

/// SoA buffers of one batch chunk, reused across chunks per worker thread.
/// Candidate c owns lanes [c*kRowStride, c*kRowStride + n_tasks[c]) of every
/// per-task array; wcet/deadline lanes past the task count are zeroed (the
/// sum/max identity) so the prefilter kernel can run stride-blind.
struct BatchScratch {
  static constexpr std::size_t kStride = core::simd::kRowStride;

  // Per-task arrays, stride kStride per candidate.
  std::vector<Ticks> period, deadline, wcet;
  std::vector<std::uint32_t> k, m, order;
  std::vector<double> u01;  ///< raw UUniFast uniforms; pow chain deferred
  std::vector<double> v;    ///< C/P draws

  // Per-candidate arrays.
  std::vector<double> target;
  std::vector<std::uint32_t> n_tasks;
  std::vector<std::uint8_t> alive;
  std::vector<std::int64_t> sums, maxs;

  // Finalize scratch (one survivor at a time).
  std::vector<double> shares, step;

  // Admission batch views into the arrays above.
  std::vector<analysis::SoACandidate> cands;
  std::vector<std::uint32_t> cand_slot;
  std::vector<analysis::AdmissionVerdict> verdicts;
  analysis::AdmissionContext admission;

  void prepare(std::size_t count) {
    const std::size_t lanes = count * kStride;
    if (period.size() < lanes) {
      period.resize(lanes);
      deadline.resize(lanes);
      wcet.resize(lanes);
      k.resize(lanes);
      m.resize(lanes);
      order.resize(lanes);
      u01.resize(lanes);
      v.resize(lanes);
    }
    if (target.size() < count) {
      target.resize(count);
      n_tasks.resize(count);
      alive.resize(count);
      sums.resize(count);
      maxs.resize(count);
    }
    shares.resize(kStride);
    step.resize(kStride);
  }
};

/// Runs attempts [first_attempt, first_attempt + count) of a bin through the
/// batch pipeline, writing each attempt's result (and accepted tasks) into
/// slots[0..count). Accumulates per-stage wall-clock into `times`.
void run_batch(const GenParams& params, double bin_lo, double bin_hi,
               std::uint64_t seed, std::uint64_t bin_index,
               std::uint64_t first_attempt, std::size_t count, BatchScratch& b,
               Slot* slots, GenStageSeconds& times) {
  namespace simd = core::simd;
  using clock = std::chrono::steady_clock;
  constexpr std::size_t stride = BatchScratch::kStride;
  b.prepare(count);

  // ---- draw: per-attempt substreams into the SoA arrays ----
  // Parameter fields are hoisted into locals: the SoA stores below are
  // through pointer types that could legally alias the int64/double members
  // of `params`, and without the copies the compiler reloads every bound on
  // every task draw.
  const auto min_tasks = static_cast<std::int64_t>(params.min_tasks);
  const auto max_tasks = static_cast<std::int64_t>(params.max_tasks);
  const std::int64_t min_period_ms = params.min_period_ms;
  const std::int64_t max_period_ms = params.max_period_ms;
  const std::int64_t min_k = params.min_k;
  const auto max_k = static_cast<std::int64_t>(params.max_k);
  const double deadline_factor = params.deadline_factor;
  const bool implicit_deadlines = deadline_factor == 1.0;
  const auto t0 = clock::now();
  for (std::size_t c = 0; c < count; ++c) {
    core::Rng rng(core::stream_seed(seed, bin_index, first_attempt + c));
    b.target[c] = rng.uniform(bin_lo, bin_hi);
    const auto n =
        static_cast<std::size_t>(rng.range(min_tasks, max_tasks));
    b.n_tasks[c] = static_cast<std::uint32_t>(n);
    const std::size_t base = c * stride;
    for (std::size_t i = 0; i + 1 < n; ++i) b.u01[base + i] = rng.uniform01();
    bool ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      const Ticks p = core::from_ms(rng.range(min_period_ms, max_period_ms));
      const Ticks d =
          implicit_deadlines
              ? p
              : std::max<Ticks>(
                    1, core::from_ms(deadline_factor * core::to_ms(p)));
      b.k[base + i] =
          static_cast<std::uint32_t>(rng.range(min_k, max_k));
      const double vv = rng.uniform(0.05, 1.0);  // C_i / P_i
      const Ticks w = std::max<Ticks>(
          1, static_cast<Ticks>(
                 simd::llround_nonneg(vv * static_cast<double>(p))));
      b.period[base + i] = p;
      b.deadline[base + i] = d;
      b.v[base + i] = vv;
      b.wcet[base + i] = w;
      // The only Task::valid() conditions not structurally guaranteed here
      // (k >= 2 and the m clamp make the (m,k) leg vacuous).
      ok = ok && d <= p && w <= d;
    }
    for (std::size_t i = n; i < stride; ++i) {
      b.wcet[base + i] = 0;      // sum identity
      b.deadline[base + i] = 0;  // max identity (live deadlines are >= 1)
    }
    b.alive[c] = ok ? 1 : 0;
    if (!ok) slots[c].result = {AttemptKind::kDrawFail, false};
  }

  // ---- prefilter: one fused sigma-C / max-D kernel pass over the chunk ----
  // The deadline of a longest-period task equals the max deadline (the
  // deadline is a weakly increasing pure function of the period), so the
  // scalar path's wcet_sum > lp_deadline is exactly sums[c] > maxs[c].
  const auto t1 = clock::now();
  simd::row_sum_max_i64(b.wcet.data(), b.deadline.data(), count, b.sums.data(),
                        b.maxs.data());
  for (std::size_t c = 0; c < count; ++c) {
    if (b.alive[c] != 0 && b.sums[c] > b.maxs[c]) {
      b.alive[c] = 0;
      slots[c].result = {AttemptKind::kFilterReject, false};
    }
  }

  // ---- finalize survivors: the work the prefilter let everyone else skip --
  const auto t2 = clock::now();
  b.cands.clear();
  b.cand_slot.clear();
  for (std::size_t c = 0; c < count; ++c) {
    if (b.alive[c] == 0) continue;
    const std::size_t base = c * stride;
    const std::size_t n = b.n_tasks[c];
    // Deferred UUniFast: the same share recurrence as uunifast(), replaying
    // the recorded uniforms -- only ~1% of attempts ever pay the pow chain.
    double sum = b.target[c];
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double next = sum * inv_int_root(b.u01[base + i], n - 1 - i);
      b.shares[i] = sum - next;
      sum = next;
    }
    b.shares[n - 1] = sum;
    // Deferred m derivation: m = k * share / v, same expression order as
    // draw_raw's uniform-model branch.
    for (std::size_t i = 0; i < n; ++i) {
      const double m_real =
          static_cast<double>(b.k[base + i]) * b.shares[i] / b.v[base + i];
      const auto mm = simd::llround_nonneg(m_real);
      b.m[base + i] = static_cast<std::uint32_t>(std::clamp<std::int64_t>(
          mm, 1, static_cast<std::int64_t>(b.k[base + i]) - 1));
    }
    // m repair towards the target total, draw order, then the stable
    // rate-monotonic priority permutation -- both identical to
    // finalize_candidate over the same values.
    double current = 0;
    for (std::size_t i = 0; i < n; ++i) {
      b.step[i] = (static_cast<double>(b.wcet[base + i]) /
                   static_cast<double>(b.period[base + i])) /
                  static_cast<double>(b.k[base + i]);
      current += b.step[i] * static_cast<double>(b.m[base + i]);
    }
    repair_mk_steps(n, b.target[c], current, b.step.data(), b.m.data() + base,
                    b.k.data() + base);
    std::uint32_t* order = b.order.data() + base;
    for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
    for (std::size_t i = 1; i < n; ++i) {
      const std::uint32_t key = order[i];
      const Ticks key_period = b.period[base + key];
      std::size_t j = i;
      for (; j > 0 && b.period[base + order[j - 1]] > key_period; --j) {
        order[j] = order[j - 1];
      }
      order[j] = key;
    }
    // Bin check, in priority order -- the accumulation order of
    // raw_mk_utilization and TaskSet::total_mk_utilization.
    double u = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t idx = order[i];
      const double util = static_cast<double>(b.wcet[base + idx]) /
                          static_cast<double>(b.period[base + idx]);
      u += util * static_cast<double>(b.m[base + idx]) /
           static_cast<double>(b.k[base + idx]);
    }
    if (u < bin_lo || u >= bin_hi) {
      b.alive[c] = 0;
      slots[c].result = {AttemptKind::kOutOfBin, false};
      continue;
    }
    b.cands.push_back({b.period.data() + base, b.deadline.data() + base,
                       b.wcet.data() + base, b.m.data() + base,
                       b.k.data() + base, order, n});
    b.cand_slot.push_back(static_cast<std::uint32_t>(c));
  }
  const auto t3 = clock::now();

  // ---- lockstep admission over everything still undecided ----
  b.verdicts.resize(b.cands.size());
  b.admission.admit_batch(b.cands.data(), b.cands.size(), params.accept_model,
                          b.verdicts.data(), &times.ladder, &times.rta);
  for (std::size_t e = 0; e < b.cands.size(); ++e) {
    const std::size_t c = b.cand_slot[e];
    const auto verdict = b.verdicts[e];
    if (!verdict.schedulable) {
      slots[c].result = {
          verdict.stage == analysis::AdmissionStage::kLowerBoundReject
              ? AttemptKind::kFilterReject
              : AttemptKind::kRtaReject,
          false};
      continue;
    }
    const std::size_t base = c * stride;
    const std::size_t n = b.n_tasks[c];
    auto& out = slots[c].tasks;
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t idx = b.order[base + i];
      Task t;
      t.period = b.period[base + idx];
      t.deadline = b.deadline[base + idx];
      t.wcet = b.wcet[base + idx];
      t.m = b.m[base + idx];
      t.k = b.k[base + idx];
      out.push_back(std::move(t));
    }
    slots[c].result = {AttemptKind::kAccepted,
                       verdict.stage ==
                           analysis::AdmissionStage::kHyperbolicAccept};
  }

  const auto secs = [](clock::time_point a, clock::time_point e) {
    return std::chrono::duration<double>(e - a).count();
  };
  times.draw += secs(t0, t1);
  times.prefilter += secs(t1, t2);
  times.finalize += secs(t2, t3);
}

/// MKSS_GEN_CROSSCHECK harness: replays every attempt of a freshly filled
/// chunk through the scalar run_attempt and aborts on any divergence in
/// verdict kind, quick flag, or accepted tasks.
void crosscheck_batch(const GenParams& params, double bin_lo, double bin_hi,
                      std::uint64_t seed, std::uint64_t bin_index,
                      std::uint64_t first_attempt, std::size_t count,
                      const Slot* slots) {
  static thread_local AttemptWorker worker;
  static thread_local std::vector<Task> accepted;
  for (std::size_t c = 0; c < count; ++c) {
    const AttemptResult ref = run_attempt(params, bin_lo, bin_hi, seed,
                                          bin_index, first_attempt + c, worker,
                                          accepted);
    const AttemptResult got = slots[c].result;
    const bool tasks_match =
        ref.kind != AttemptKind::kAccepted || accepted == slots[c].tasks;
    if (ref.kind != got.kind || ref.quick != got.quick || !tasks_match) {
      std::fprintf(
          stderr,
          "mkss: MKSS_GEN_CROSSCHECK divergence at bin %llu attempt %llu: "
          "scalar kind=%u quick=%d vs batch kind=%u quick=%d, tasks %s\n",
          static_cast<unsigned long long>(bin_index),
          static_cast<unsigned long long>(first_attempt + c),
          static_cast<unsigned>(ref.kind), ref.quick ? 1 : 0,
          static_cast<unsigned>(got.kind), got.quick ? 1 : 0,
          tasks_match ? "match" : "DIFFER");
      std::abort();
    }
  }
}

}  // namespace

GenCounters& GenCounters::operator+=(const GenCounters& o) noexcept {
  draw_failures += o.draw_failures;
  out_of_bin += o.out_of_bin;
  filter_rejects += o.filter_rejects;
  rta_rejects += o.rta_rejects;
  accepted += o.accepted;
  quick_accepts += o.quick_accepts;
  return *this;
}

GenStageSeconds& GenStageSeconds::operator+=(const GenStageSeconds& o) noexcept {
  draw += o.draw;
  prefilter += o.prefilter;
  finalize += o.finalize;
  ladder += o.ladder;
  rta += o.rta;
  return *this;
}

std::optional<TaskSet> generate_taskset(const GenParams& params,
                                        double target_mk_util, core::Rng& rng) {
  // Always the eager scalar path: the caller's Rng is a *shared* sequential
  // stream, so the batch pipeline's over-drawing on invalid tasks (harmless
  // under per-attempt substreams) would shift every later draw here.
  GenScratch s;
  if (!draw_raw(params, target_mk_util, rng, s)) return std::nullopt;
  finalize_candidate(params, target_mk_util, s);
  std::vector<Task> tasks;
  tasks.reserve(s.order.size());
  for (const auto idx : s.order) tasks.push_back(s.tasks[idx]);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].name = "tau" + std::to_string(i + 1);
  }
  return TaskSet(std::move(tasks));
}

BinnedBatch generate_bin(const GenParams& params, double bin_lo, double bin_hi,
                         std::size_t want_schedulable, std::size_t max_attempts,
                         std::uint64_t seed, std::uint64_t bin_index,
                         core::ThreadPool* pool) {
  if (params.stream_version != 2) {
    throw std::invalid_argument(
        "generate_bin: unsupported GenParams::stream_version " +
        std::to_string(params.stream_version) +
        " (this build only speaks the v2 per-attempt substream scheme)");
  }
  BinnedBatch batch;
  batch.bin_lo = bin_lo;
  batch.bin_hi = bin_hi;

  const GenMode mode = gen_mode_from_env();
  const bool eligible = batch_eligible(params, bin_lo);
  const bool use_batch = eligible && mode != GenMode::kScalar;
  if (mode == GenMode::kBatch && !eligible) {
    std::fprintf(stderr,
                 "mkss: MKSS_GEN_MODE=batch requested but the parameters fall "
                 "outside the batch pipeline envelope; using the scalar "
                 "path\n");
  }
  const bool crosscheck = use_batch && crosscheck_from_env();

  const std::size_t workers = pool != nullptr ? pool->size() : 1;
  if (workers <= 1) {
    if (!use_batch) {
      static thread_local AttemptWorker worker;
      std::vector<Task> accepted;
      while (batch.sets.size() < want_schedulable &&
             batch.attempts < max_attempts) {
        const std::uint64_t attempt = batch.attempts++;
        const AttemptResult r = run_attempt(params, bin_lo, bin_hi, seed,
                                            bin_index, attempt, worker,
                                            accepted);
        tally(batch.counters, r);
        if (r.kind == AttemptKind::kAccepted) {
          batch.sets.emplace_back(std::move(accepted));
        }
      }
      return batch;
    }
    // Serial batch pipeline: speculative chunks committed in ascending
    // attempt order (exactly the parallel path's semantics with one
    // worker), so the result is bit-identical to the per-attempt loop
    // above. Chunks grow geometrically: bins that fill from a handful of
    // attempts waste little speculative draw work, reject-heavy bins get
    // full-width kernel passes.
    static thread_local BatchScratch scratch;
    std::vector<Slot> slots;
    std::uint64_t next = 0;
    std::size_t chunk_cap = 32;
    while (batch.sets.size() < want_schedulable && next < max_attempts) {
      const auto chunk = std::min<std::uint64_t>(max_attempts - next, chunk_cap);
      if (slots.size() < chunk) slots.resize(chunk);
      run_batch(params, bin_lo, bin_hi, seed, bin_index, next,
                static_cast<std::size_t>(chunk), scratch, slots.data(),
                batch.stage_seconds);
      if (crosscheck) {
        crosscheck_batch(params, bin_lo, bin_hi, seed, bin_index, next,
                         static_cast<std::size_t>(chunk), slots.data());
      }
      for (std::uint64_t i = 0;
           i < chunk && batch.sets.size() < want_schedulable; ++i) {
        ++batch.attempts;
        tally(batch.counters, slots[i].result);
        if (slots[i].result.kind == AttemptKind::kAccepted) {
          batch.sets.emplace_back(std::move(slots[i].tasks));
        }
      }
      next += chunk;
      chunk_cap = std::min<std::size_t>(chunk_cap * 2, 2048);
    }
    return batch;
  }

  // Speculative parallel attempts: fill a chunk of per-attempt result slots
  // across the pool (attempts are independent under the v2 substreams), then
  // commit them in ascending attempt order until `want_schedulable` is
  // reached -- attempts past the deciding one are discarded unexamined, so
  // the batch (sets, attempt count, counters) is bit-identical to the serial
  // path no matter how many workers raced ahead. Chunks grow geometrically:
  // reject-heavy bins amortize dispatch overhead, while bins that fill from
  // a handful of attempts waste little speculative work.
  std::vector<Slot> slots;
  std::uint64_t next = 0;  // first attempt index not yet examined
  std::size_t per_job = 64;
  while (batch.sets.size() < want_schedulable && next < max_attempts) {
    const auto chunk = std::min<std::uint64_t>(max_attempts - next,
                                               workers * per_job);
    if (slots.size() < chunk) slots.resize(chunk);
    const auto jobs = static_cast<std::size_t>((chunk + per_job - 1) / per_job);
    std::vector<GenStageSeconds> job_times(use_batch ? jobs : 0);
    core::parallel_for(pool, jobs, [&](std::size_t job) {
      const std::uint64_t begin = job * per_job;
      const auto end = std::min<std::uint64_t>(begin + per_job, chunk);
      if (use_batch) {
        static thread_local BatchScratch scratch;
        run_batch(params, bin_lo, bin_hi, seed, bin_index, next + begin,
                  static_cast<std::size_t>(end - begin), scratch,
                  slots.data() + begin, job_times[job]);
        if (crosscheck) {
          crosscheck_batch(params, bin_lo, bin_hi, seed, bin_index,
                           next + begin, static_cast<std::size_t>(end - begin),
                           slots.data() + begin);
        }
      } else {
        static thread_local AttemptWorker worker;
        for (std::uint64_t i = begin; i < end; ++i) {
          slots[i].result = run_attempt(params, bin_lo, bin_hi, seed, bin_index,
                                        next + i, worker, slots[i].tasks);
        }
      }
    });
    for (const auto& jt : job_times) batch.stage_seconds += jt;
    for (std::uint64_t i = 0;
         i < chunk && batch.sets.size() < want_schedulable; ++i) {
      ++batch.attempts;
      tally(batch.counters, slots[i].result);
      if (slots[i].result.kind == AttemptKind::kAccepted) {
        batch.sets.emplace_back(std::move(slots[i].tasks));
      }
    }
    next += chunk;
    per_job = std::min<std::size_t>(per_job * 2, 2048);
  }
  return batch;
}

}  // namespace mkss::workload
