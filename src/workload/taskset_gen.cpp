#include "workload/taskset_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/admission.hpp"

namespace mkss::workload {

using core::Task;
using core::TaskSet;
using core::Ticks;

namespace {

/// u^(1/e) for integer e >= 1. The small exponents that dominate UUniFast's
/// tail get hardware square roots (correctly rounded per IEEE-754, so *more*
/// reproducible than libm pow) instead of a libm pow call.
double inv_int_root(double u, std::size_t e) {
  switch (e) {
    case 1: return u;
    case 2: return std::sqrt(u);
    case 4: return std::sqrt(std::sqrt(u));
    default: return std::pow(u, 1.0 / static_cast<double>(e));
  }
}

/// UUniFast (Bini & Buttazzo): splits `total` into n unbiased shares,
/// written into `shares` (resized; reused across attempts by generate_bin).
void uunifast(std::size_t n, double total, core::Rng& rng,
              std::vector<double>& shares) {
  shares.resize(n);
  double sum = total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next = sum * inv_int_root(rng.uniform01(), n - 1 - i);
    shares[i] = sum - next;
    sum = next;
  }
  shares[n - 1] = sum;
}

/// Greedily steps individual m_i values (each step changes the total by
/// (C_i/P_i)/k_i) towards `target` total (m,k)-utilization.
///
/// C_i/P_i and the per-step delta only depend on (C, P, k), which the loop
/// never touches, so both are hoisted out of the iterations, and the running
/// total is maintained incrementally (current +/- the applied step) instead
/// of being re-summed every iteration. The greedy m choices therefore follow
/// this accumulation's rounding -- a deterministic IEEE evaluation order,
/// just not the re-summed one -- which is fine: repair only picks integer m
/// values, and the bin filter re-checks the exact total afterwards.
void repair_mk_total(std::vector<Task>& tasks, double target,
                     std::vector<double>& step, std::vector<std::uint32_t>& m,
                     std::vector<std::uint32_t>& k) {
  const std::size_t n = tasks.size();
  step.resize(n);
  m.resize(n);
  k.resize(n);
  double current = 0;
  // The greedy scan runs over tight scalar arrays instead of the 64-byte
  // Task structs (whose name strings would drag dead bytes through the
  // cache); m values are written back once at the end.
  for (std::size_t i = 0; i < n; ++i) {
    step[i] = tasks[i].utilization() / static_cast<double>(tasks[i].k);
    m[i] = tasks[i].m;
    k[i] = tasks[i].k;
    current += step[i] * static_cast<double>(m[i]);
  }
  for (int iter = 0; iter < 256; ++iter) {
    const double gap = target - current;
    const bool up = gap > 0;
    // Stepping m by one changes |gap| by |gap| - |gap -+ step|, which for a
    // step in the right direction equals min(step, 2|gap| - step): the full
    // step if it fits inside the gap, the post-overshoot remainder if not.
    const double twice_gap = up ? gap + gap : -(gap + gap);
    // Find the m step that best reduces |gap| without leaving [1, k-1].
    std::size_t best = n;
    double best_improve = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (up ? m[i] + 1 < k[i] : m[i] > 1) {
        const double improve = std::min(step[i], twice_gap - step[i]);
        if (improve > best_improve) {
          best_improve = improve;
          best = i;
        }
      }
    }
    if (best == n) break;  // no step improves the total
    if (up) {
      ++m[best];
      current += step[best];
    } else {
      --m[best];
      current -= step[best];
    }
  }
  for (std::size_t i = 0; i < n; ++i) tasks[i].m = m[i];
}

/// Scratch buffers reused across generation attempts, so the 95%+ of draws
/// that get rejected never touch the heap.
struct GenScratch {
  std::vector<double> shares;
  std::vector<Task> tasks;          ///< draw order; never physically sorted
  std::vector<std::uint32_t> order; ///< priority permutation into `tasks`
  std::vector<double> repair_step;
  std::vector<std::uint32_t> repair_m;
  std::vector<std::uint32_t> repair_k;
  core::Ticks wcet_sum{0};     ///< sum of all drawn WCETs
  core::Ticks lp_deadline{0};  ///< deadline of the longest-period task
};

/// Draws one raw candidate into `s.tasks` -- draw-for-draw identical to
/// generate_taskset (the accepted-set values depend on the RNG sequence).
/// Returns false when a share is too big for its (m,k,P) draw. Also records
/// `s.wcet_sum` and `s.lp_deadline`, the ingredients of the pre-repair
/// lower-bound filter in run_attempt. finalize_candidate() finishes the job
/// (m repair + priority order) for candidates that survive it.
bool draw_raw(const GenParams& params, double target_mk_util, core::Rng& rng,
              GenScratch& s) {
  const auto n = static_cast<std::size_t>(
      rng.range(static_cast<std::int64_t>(params.min_tasks),
                static_cast<std::int64_t>(params.max_tasks)));
  uunifast(n, target_mk_util, rng, s.shares);

  // Scratch tasks are written field-by-field in place (names stay empty --
  // only accepted candidates are ever materialized into named TaskSets).
  s.tasks.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task& t = s.tasks[i];
    t.period = core::from_ms(rng.range(params.min_period_ms, params.max_period_ms));
    // deadline_factor == 1.0 round-trips exactly (periods this size are exact
    // in double), so skip the ms conversions on the common implicit path.
    t.deadline = params.deadline_factor == 1.0
                     ? t.period
                     : std::max<Ticks>(1, core::from_ms(params.deadline_factor *
                                                        core::to_ms(t.period)));
    t.k = static_cast<std::uint32_t>(
        rng.range(params.min_k, static_cast<std::int64_t>(params.max_k)));

    switch (params.wcet_model) {
      case WcetModel::kUniformWcet: {
        // C/P uniform; the (m,k) ratio carries the utilization share:
        // share = (m/k) * (C/P)  =>  m = k * share * P / C.
        const double v = rng.uniform(0.05, 1.0);  // C_i / P_i
        t.wcet = std::max<Ticks>(
            1, static_cast<Ticks>(std::llround(v * static_cast<double>(t.period))));
        const double m_real =
            static_cast<double>(t.k) * s.shares[i] / v;
        const auto m = static_cast<std::int64_t>(std::llround(m_real));
        t.m = static_cast<std::uint32_t>(
            std::clamp<std::int64_t>(m, 1, static_cast<std::int64_t>(t.k) - 1));
        break;
      }
      case WcetModel::kShapedWcet: {
        t.m = static_cast<std::uint32_t>(
            rng.range(1, static_cast<std::int64_t>(t.k) - 1));
        // share = m*C / (k*P)  =>  C = share * k * P / m.
        const double c_ticks = s.shares[i] * static_cast<double>(t.k) *
                               static_cast<double>(t.period) /
                               static_cast<double>(t.m);
        t.wcet = static_cast<Ticks>(std::llround(c_ticks));
        if (t.wcet < 1) t.wcet = 1;
        break;
      }
    }
    if (!t.valid()) return false;  // share too big for this (m,k,P) draw
  }

  s.wcet_sum = 0;
  s.lp_deadline = 0;
  Ticks max_period = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s.wcet_sum += s.tasks[i].wcet;
    // Equal periods share a deadline (it is a pure function of the period),
    // so any longest-period task gives the lowest-priority deadline.
    if (s.tasks[i].period >= max_period) {
      max_period = s.tasks[i].period;
      s.lp_deadline = s.tasks[i].deadline;
    }
  }
  return true;
}

/// Second half of a candidate draw: m repair towards the target total and
/// the rate-monotonic priority permutation. Consumes no RNG, so callers may
/// discard a raw draw before this without perturbing the stream.
void finalize_candidate(const GenParams& params, double target_mk_util,
                        GenScratch& s) {
  const std::size_t n = s.tasks.size();

  // Integer m_i rounding can drift the total away from the target; repair by
  // nudging m values until the total is as close to the target as unit steps
  // allow.
  if (params.wcet_model == WcetModel::kUniformWcet) {
    repair_mk_total(s.tasks, target_mk_util, s.repair_step, s.repair_m,
                    s.repair_k);
  }

  // Rate-monotonic priority order (shorter period == higher priority), the
  // natural fixed-priority assignment for implicit deadlines. Insertion sort
  // of the identity permutation: stable, so equal periods keep draw order --
  // std::sort over the Task structs left that tie implementation-defined.
  s.order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) s.order[i] = i;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t key = s.order[i];
    const Ticks key_period = s.tasks[key].period;
    std::size_t j = i;
    for (; j > 0 && s.tasks[s.order[j - 1]].period > key_period; --j) {
      s.order[j] = s.order[j - 1];
    }
    s.order[j] = key;
  }
}

/// Sum of m C / (k P) over the scratch tasks in priority order -- the same
/// accumulation order as TaskSet::total_mk_utilization, so the bin
/// accept/reject decision is bit-identical to the materialized path.
double raw_mk_utilization(const GenScratch& s) {
  double u = 0;
  for (const auto idx : s.order) u += s.tasks[idx].mk_utilization();
  return u;
}

/// Per-thread generation state: scratch buffers plus the staged-admission
/// context whose probe hints warm-start consecutive attempts.
struct AttemptWorker {
  GenScratch scratch;
  analysis::AdmissionContext admission;
};

enum class AttemptKind : std::uint8_t {
  kDrawFail,
  kOutOfBin,
  kFilterReject,
  kRtaReject,
  kAccepted,
};

struct AttemptResult {
  AttemptKind kind{AttemptKind::kDrawFail};
  bool quick{false};  ///< accepted by the hyperbolic bound alone
};

/// Runs one fully self-contained attempt: its private RNG stream, a draw,
/// the bin filter, and staged admission. On accept, writes the tasks (in
/// priority order, unnamed -- the TaskSet constructor names them) into
/// `accepted_out`. Attempts touch no shared state, which is what makes the
/// speculative parallel path below trivially race-free.
AttemptResult run_attempt(const GenParams& params, double bin_lo, double bin_hi,
                          std::uint64_t seed, std::uint64_t bin_index,
                          std::uint64_t attempt, AttemptWorker& w,
                          std::vector<Task>& accepted_out) {
  core::Rng rng(core::stream_seed(seed, bin_index, attempt));
  const double target = rng.uniform(bin_lo, bin_hi);
  if (!draw_raw(params, target, rng, w.scratch)) {
    return {AttemptKind::kDrawFail, false};
  }
  // Pre-repair lower-bound filter: the lowest-priority task under any
  // priority order is a longest-period one, and its demand lower bound S0
  // (see AdmissionContext) is the order-independent sum of ALL WCETs. m
  // repair never touches WCETs, periods, or deadlines, so when that exact
  // Ticks comparison fails here, staged admission would reject the finished
  // candidate with kLowerBoundReject regardless of its bin -- skip the
  // repair, the sort, and the admission call outright.
  if (w.scratch.wcet_sum > w.scratch.lp_deadline) {
    return {AttemptKind::kFilterReject, false};
  }
  finalize_candidate(params, target, w.scratch);
  // Cheap rejections next: most surviving candidates drift out of the bin
  // after integer rounding, and the raw-vector total is bit-identical to the
  // TaskSet one, so names/TaskSet are only materialized for survivors.
  const double u = raw_mk_utilization(w.scratch);
  if (u < bin_lo || u >= bin_hi) return {AttemptKind::kOutOfBin, false};
  const auto verdict = w.admission.admit(w.scratch.tasks, w.scratch.order,
                                         params.accept_model);
  if (!verdict.schedulable) {
    return {verdict.stage == analysis::AdmissionStage::kLowerBoundReject
                ? AttemptKind::kFilterReject
                : AttemptKind::kRtaReject,
            false};
  }
  accepted_out.clear();
  accepted_out.reserve(w.scratch.order.size());
  for (const auto idx : w.scratch.order) {
    accepted_out.push_back(w.scratch.tasks[idx]);
  }
  // Only the hyperbolic stage counts as "quick": it is a pure function of
  // the candidate. The probe-vs-exact distinction depends on the admission
  // context's history (which attempts this worker ran before), and counters
  // must be bit-identical across thread counts.
  return {AttemptKind::kAccepted,
          verdict.stage == analysis::AdmissionStage::kHyperbolicAccept};
}

void tally(GenCounters& c, const AttemptResult& r) {
  switch (r.kind) {
    case AttemptKind::kDrawFail: ++c.draw_failures; break;
    case AttemptKind::kOutOfBin: ++c.out_of_bin; break;
    case AttemptKind::kFilterReject: ++c.filter_rejects; break;
    case AttemptKind::kRtaReject: ++c.rta_rejects; break;
    case AttemptKind::kAccepted:
      ++c.accepted;
      if (r.quick) ++c.quick_accepts;
      break;
  }
}

}  // namespace

GenCounters& GenCounters::operator+=(const GenCounters& o) noexcept {
  draw_failures += o.draw_failures;
  out_of_bin += o.out_of_bin;
  filter_rejects += o.filter_rejects;
  rta_rejects += o.rta_rejects;
  accepted += o.accepted;
  quick_accepts += o.quick_accepts;
  return *this;
}

std::optional<TaskSet> generate_taskset(const GenParams& params,
                                        double target_mk_util, core::Rng& rng) {
  GenScratch s;
  if (!draw_raw(params, target_mk_util, rng, s)) return std::nullopt;
  finalize_candidate(params, target_mk_util, s);
  std::vector<Task> tasks;
  tasks.reserve(s.order.size());
  for (const auto idx : s.order) tasks.push_back(s.tasks[idx]);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].name = "tau" + std::to_string(i + 1);
  }
  return TaskSet(std::move(tasks));
}

BinnedBatch generate_bin(const GenParams& params, double bin_lo, double bin_hi,
                         std::size_t want_schedulable, std::size_t max_attempts,
                         std::uint64_t seed, std::uint64_t bin_index,
                         core::ThreadPool* pool) {
  if (params.stream_version != 2) {
    throw std::invalid_argument(
        "generate_bin: unsupported GenParams::stream_version " +
        std::to_string(params.stream_version) +
        " (this build only speaks the v2 per-attempt substream scheme)");
  }
  BinnedBatch batch;
  batch.bin_lo = bin_lo;
  batch.bin_hi = bin_hi;

  const std::size_t workers = pool != nullptr ? pool->size() : 1;
  if (workers <= 1) {
    static thread_local AttemptWorker worker;
    std::vector<Task> accepted;
    while (batch.sets.size() < want_schedulable && batch.attempts < max_attempts) {
      const std::uint64_t attempt = batch.attempts++;
      const AttemptResult r = run_attempt(params, bin_lo, bin_hi, seed,
                                          bin_index, attempt, worker, accepted);
      tally(batch.counters, r);
      if (r.kind == AttemptKind::kAccepted) {
        batch.sets.emplace_back(std::move(accepted));
      }
    }
    return batch;
  }

  // Speculative parallel attempts: fill a chunk of per-attempt result slots
  // across the pool (attempts are independent under the v2 substreams), then
  // commit them in ascending attempt order until `want_schedulable` is
  // reached -- attempts past the deciding one are discarded unexamined, so
  // the batch (sets, attempt count, counters) is bit-identical to the serial
  // path no matter how many workers raced ahead. Chunks grow geometrically:
  // reject-heavy bins amortize dispatch overhead, while bins that fill from
  // a handful of attempts waste little speculative work.
  struct Slot {
    AttemptResult result;
    std::vector<Task> tasks;
  };
  std::vector<Slot> slots;
  std::uint64_t next = 0;  // first attempt index not yet examined
  std::size_t per_job = 64;
  while (batch.sets.size() < want_schedulable && next < max_attempts) {
    const auto chunk = std::min<std::uint64_t>(max_attempts - next,
                                               workers * per_job);
    if (slots.size() < chunk) slots.resize(chunk);
    const auto jobs = static_cast<std::size_t>((chunk + per_job - 1) / per_job);
    core::parallel_for(pool, jobs, [&](std::size_t job) {
      static thread_local AttemptWorker worker;
      const std::uint64_t begin = job * per_job;
      const auto end = std::min<std::uint64_t>(begin + per_job, chunk);
      for (std::uint64_t i = begin; i < end; ++i) {
        slots[i].result = run_attempt(params, bin_lo, bin_hi, seed, bin_index,
                                      next + i, worker, slots[i].tasks);
      }
    });
    for (std::uint64_t i = 0;
         i < chunk && batch.sets.size() < want_schedulable; ++i) {
      ++batch.attempts;
      tally(batch.counters, slots[i].result);
      if (slots[i].result.kind == AttemptKind::kAccepted) {
        batch.sets.emplace_back(std::move(slots[i].tasks));
      }
    }
    next += chunk;
    per_job = std::min<std::size_t>(per_job * 2, 2048);
  }
  return batch;
}

}  // namespace mkss::workload
