#include "workload/taskset_gen.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/rta.hpp"

namespace mkss::workload {

using core::Task;
using core::TaskSet;
using core::Ticks;

namespace {

/// UUniFast (Bini & Buttazzo): splits `total` into n unbiased shares.
std::vector<double> uunifast(std::size_t n, double total, core::Rng& rng) {
  std::vector<double> shares(n);
  double sum = total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        sum * std::pow(rng.uniform01(), 1.0 / static_cast<double>(n - 1 - i));
    shares[i] = sum - next;
    sum = next;
  }
  shares[n - 1] = sum;
  return shares;
}

/// Greedily steps individual m_i values (each step changes the total by
/// (C_i/P_i)/k_i) towards `target` total (m,k)-utilization.
void repair_mk_total(std::vector<Task>& tasks, double target) {
  const auto total = [&tasks] {
    double u = 0;
    for (const Task& t : tasks) u += t.mk_utilization();
    return u;
  };
  for (int iter = 0; iter < 256; ++iter) {
    const double gap = target - total();
    // Find the m step that best reduces |gap| without leaving [1, k-1].
    std::size_t best = tasks.size();
    double best_improve = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const Task& t = tasks[i];
      const double step = t.utilization() / static_cast<double>(t.k);
      if (gap > 0 && t.m + 1 < t.k) {
        const double improve = std::abs(gap) - std::abs(gap - step);
        if (improve > best_improve) {
          best_improve = improve;
          best = i;
        }
      } else if (gap < 0 && t.m > 1) {
        const double improve = std::abs(gap) - std::abs(gap + step);
        if (improve > best_improve) {
          best_improve = improve;
          best = i;
        }
      }
    }
    if (best == tasks.size()) break;  // no step improves the total
    if (target > total()) {
      ++tasks[best].m;
    } else {
      --tasks[best].m;
    }
  }
}

}  // namespace

std::optional<TaskSet> generate_taskset(const GenParams& params,
                                        double target_mk_util, core::Rng& rng) {
  const auto n = static_cast<std::size_t>(
      rng.range(static_cast<std::int64_t>(params.min_tasks),
                static_cast<std::int64_t>(params.max_tasks)));
  const std::vector<double> shares = uunifast(n, target_mk_util, rng);

  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.period = core::from_ms(rng.range(params.min_period_ms, params.max_period_ms));
    t.deadline = std::max<Ticks>(
        1, core::from_ms(params.deadline_factor * core::to_ms(t.period)));
    t.k = static_cast<std::uint32_t>(
        rng.range(params.min_k, static_cast<std::int64_t>(params.max_k)));

    switch (params.wcet_model) {
      case WcetModel::kUniformWcet: {
        // C/P uniform; the (m,k) ratio carries the utilization share:
        // share = (m/k) * (C/P)  =>  m = k * share * P / C.
        const double v = rng.uniform(0.05, 1.0);  // C_i / P_i
        t.wcet = std::max<Ticks>(
            1, static_cast<Ticks>(std::llround(v * static_cast<double>(t.period))));
        const double m_real =
            static_cast<double>(t.k) * shares[i] / v;
        const auto m = static_cast<std::int64_t>(std::llround(m_real));
        t.m = static_cast<std::uint32_t>(
            std::clamp<std::int64_t>(m, 1, static_cast<std::int64_t>(t.k) - 1));
        break;
      }
      case WcetModel::kShapedWcet: {
        t.m = static_cast<std::uint32_t>(
            rng.range(1, static_cast<std::int64_t>(t.k) - 1));
        // share = m*C / (k*P)  =>  C = share * k * P / m.
        const double c_ticks = shares[i] * static_cast<double>(t.k) *
                               static_cast<double>(t.period) /
                               static_cast<double>(t.m);
        t.wcet = static_cast<Ticks>(std::llround(c_ticks));
        if (t.wcet < 1) t.wcet = 1;
        break;
      }
    }
    if (!t.valid()) return std::nullopt;  // share too big for this (m,k,P) draw
    tasks.push_back(t);
  }

  // Integer m_i rounding can drift the total away from the target; repair by
  // nudging m values until the total is as close to the target as unit steps
  // allow.
  if (params.wcet_model == WcetModel::kUniformWcet) {
    repair_mk_total(tasks, target_mk_util);
  }

  // Rate-monotonic priority order (shorter period == higher priority), the
  // natural fixed-priority assignment for implicit deadlines.
  std::sort(tasks.begin(), tasks.end(),
            [](const Task& a, const Task& b) { return a.period < b.period; });
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].name = "tau" + std::to_string(i + 1);
  }
  return TaskSet(std::move(tasks));
}

BinnedBatch generate_bin(const GenParams& params, double bin_lo, double bin_hi,
                         std::size_t want_schedulable, std::size_t max_attempts,
                         core::Rng& rng) {
  BinnedBatch batch;
  batch.bin_lo = bin_lo;
  batch.bin_hi = bin_hi;
  while (batch.sets.size() < want_schedulable && batch.attempts < max_attempts) {
    ++batch.attempts;
    const double target = rng.uniform(bin_lo, bin_hi);
    auto ts = generate_taskset(params, target, rng);
    if (!ts) continue;
    const double u = ts->total_mk_utilization();
    if (u < bin_lo || u >= bin_hi) continue;  // rounding moved it out of bin
    if (!analysis::schedulable(*ts, params.accept_model)) {
      continue;
    }
    batch.sets.push_back(std::move(*ts));
  }
  return batch;
}

}  // namespace mkss::workload
