// Post-hoc trace auditing: replays a sim::SimulationTrace and certifies the
// structural invariants of the standby-sparing model *independently* of the
// engine that produced the trace (the engine asserts its own state with
// MKSS_CHECK; the auditor re-derives everything from the recorded artifact,
// so a bug that corrupts both state and checks in the same way is still
// caught here).
//
// Invariants checked (Sections II-IV of the paper):
//   * segments lie inside the horizon, never overlap on a processor, and
//     never touch a processor after its permanent fault;
//   * every segment maps to a recorded copy and never runs before the copy's
//     eligible time (release, r + Y_i promotion, r + theta_i postponement);
//   * per-copy execution never exceeds the copy's demand, and a completed
//     copy executed exactly its demand;
//   * at most one copy of a logical job lives on a processor at a time, and
//     at most one copy per replica slot;
//   * the mandatory band strictly outranks the optional band: no optional
//     copy executes while a mandatory copy on the same processor is ready;
//   * a copy is canceled if and only if its sibling completed successfully
//     at that same instant (Figure 1's cross-processor cancellation);
//   * job resolutions are consistent: met jobs have exactly one successful
//     completion by their deadline, missed jobs have none;
//   * a counted mandatory job may miss only when at least two fault events
//     conspired against it (e.g. transients on both copies, or a permanent
//     fault plus a transient on the survivor) -- the reliability guarantee
//     of Theorem 1 under at most one permanent fault;
//   * per-task (m,k) windows are never violated;
//   * the trace's aggregate counters and the energy accounting reconcile
//     exactly with the busy/idle/sleep intervals implied by the segments.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/task.hpp"
#include "energy/energy_model.hpp"
#include "sim/types.hpp"

namespace mkss::audit {

struct AuditOptions {
  /// Check per-task (m,k) windows (Theorem 1). Disable when auditing a
  /// scheme/task-set pair that is knowingly not R-pattern schedulable.
  bool check_mk{true};
  /// Check that mandatory misses are explained by >= 2 fault events.
  bool check_mandatory{true};
  /// Reconcile energy accounting with the trace's busy/sleep intervals.
  bool check_energy{true};
  /// Power parameters used for the energy reconciliation.
  energy::PowerParams power{};
  /// Reports are truncated after this many violations (0 = unlimited).
  std::size_t max_violations{64};
};

/// One violated invariant, with enough context to locate the offense.
struct Violation {
  std::string invariant;  ///< short key, e.g. "eligible-time"
  std::string detail;     ///< human-readable message with job/copy/times
};

struct AuditReport {
  std::vector<Violation> violations;
  bool truncated{false};  ///< hit AuditOptions::max_violations

  bool ok() const noexcept { return violations.empty(); }
  /// One line per violation ("invariant: detail").
  std::string to_string() const;
};

/// Thrown by audit_or_throw on a failed audit; carries the full report.
class AuditViolationError : public std::runtime_error {
 public:
  explicit AuditViolationError(AuditReport report);
  const AuditReport& report() const noexcept { return report_; }

 private:
  AuditReport report_;
};

class TraceAuditor {
 public:
  explicit TraceAuditor(AuditOptions options = {}) : options_(options) {}

  /// Replays `trace` of `ts` and reports every violated invariant.
  AuditReport audit(const sim::SimulationTrace& trace,
                    const core::TaskSet& ts) const;

 private:
  AuditOptions options_;
};

/// Convenience: audits and throws AuditViolationError unless the trace is
/// clean. This is what the sweep harness and the campaign engine attach.
void audit_or_throw(const sim::SimulationTrace& trace, const core::TaskSet& ts,
                    const AuditOptions& options = {});

}  // namespace mkss::audit
