#include "audit/trace_auditor.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "core/job.hpp"
#include "core/mk_constraint.hpp"
#include "core/time.hpp"

namespace mkss::audit {

using core::JobId;
using core::Ticks;
using sim::Band;
using sim::CopyEnd;
using sim::CopyKind;
using sim::CopyRecord;
using sim::ExecSegment;
using sim::SimulationTrace;

namespace {

std::string at(Ticks t) { return core::format_ticks(t); }

std::string describe(const CopyRecord& c) {
  return sim::to_string(c.kind) + " copy of " + core::to_string(c.job) +
         " on proc " + std::to_string(c.proc);
}

/// Collects violations and enforces the truncation cap.
class Collector {
 public:
  explicit Collector(std::size_t cap) : cap_(cap) {}

  void add(std::string invariant, std::string detail) {
    if (cap_ != 0 && report_.violations.size() >= cap_) {
      report_.truncated = true;
      return;
    }
    report_.violations.push_back({std::move(invariant), std::move(detail)});
  }

  bool full() const noexcept {
    return cap_ != 0 && report_.violations.size() >= cap_;
  }

  AuditReport take() { return std::move(report_); }

 private:
  std::size_t cap_;
  AuditReport report_;
};

}  // namespace

std::string AuditReport::to_string() const {
  std::string out;
  for (const Violation& v : violations) {
    out += v.invariant + ": " + v.detail + "\n";
  }
  if (truncated) out += "(further violations truncated)\n";
  return out;
}

AuditViolationError::AuditViolationError(AuditReport report)
    : std::runtime_error(
          "trace audit failed with " +
          std::to_string(report.violations.size()) + " violation(s):\n" +
          report.to_string()),
      report_(std::move(report)) {}

AuditReport TraceAuditor::audit(const SimulationTrace& trace,
                                const core::TaskSet& ts) const {
  Collector out(options_.max_violations);
  const Ticks horizon = trace.horizon;

  // --- 1. Segment geometry: bounds, per-processor exclusivity, death. -----
  // The platform size is whatever the trace recorded: one death_time entry
  // per processor.
  const std::size_t nproc = trace.death_time.size();
  std::vector<std::vector<const ExecSegment*>> per_proc(nproc);
  for (const ExecSegment& s : trace.segments) {
    if (s.proc >= nproc) {
      out.add("segment-bounds", "segment on unknown processor " +
                                    std::to_string(s.proc));
      continue;
    }
    if (s.span.begin < 0 || s.span.end > horizon || s.span.empty()) {
      out.add("segment-bounds", core::to_string(s.job) + " segment [" +
                                    at(s.span.begin) + ", " + at(s.span.end) +
                                    ") outside [0, " + at(horizon) + ")");
    }
    if (s.span.end > trace.death_time[s.proc]) {
      out.add("dead-processor",
              core::to_string(s.job) + " executes until " + at(s.span.end) +
                  " on proc " + std::to_string(s.proc) + ", which died at " +
                  at(trace.death_time[s.proc]));
    }
    per_proc[s.proc].push_back(&s);
  }
  for (std::size_t p = 0; p < nproc; ++p) {
    auto& list = per_proc[p];
    std::sort(list.begin(), list.end(),
              [](const ExecSegment* a, const ExecSegment* b) {
                return a->span.begin < b->span.begin;
              });
    Ticks busy = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      busy += list[i]->span.length();
      if (i > 0 && list[i]->span.begin < list[i - 1]->span.end) {
        out.add("segment-overlap",
                "proc " + std::to_string(p) + ": " +
                    core::to_string(list[i - 1]->job) + " and " +
                    core::to_string(list[i]->job) + " overlap at " +
                    at(list[i]->span.begin));
      }
    }
    if (busy != trace.busy_time[p]) {
      out.add("busy-time", "proc " + std::to_string(p) + ": segments sum to " +
                               at(busy) + " but busy_time records " +
                               at(trace.busy_time[p]));
    }
  }

  // --- 2. Copy lifecycles and the segment -> copy mapping. ----------------
  std::map<JobId, std::vector<std::size_t>> copies_of;
  for (std::size_t i = 0; i < trace.copies.size(); ++i) {
    const CopyRecord& c = trace.copies[i];
    copies_of[c.job].push_back(i);
    if (c.eligible < c.admitted || c.ended < c.admitted || c.ended > horizon) {
      out.add("copy-lifetime",
              describe(c) + ": admitted " + at(c.admitted) + ", eligible " +
                  at(c.eligible) + ", ended " + at(c.ended) +
                  " is not a well-formed lifetime within the horizon");
    }
  }

  std::vector<Ticks> executed(trace.copies.size(), 0);
  for (const ExecSegment& s : trace.segments) {
    const auto it = copies_of.find(s.job);
    std::size_t match = trace.copies.size();
    if (it != copies_of.end()) {
      for (const std::size_t i : it->second) {
        const CopyRecord& c = trace.copies[i];
        if (c.kind == s.kind && c.proc == s.proc &&
            c.admitted <= s.span.begin && s.span.end <= c.ended) {
          match = i;
          break;
        }
      }
    }
    if (match == trace.copies.size()) {
      out.add("orphan-segment",
              core::to_string(s.job) + " " + sim::to_string(s.kind) +
                  " segment [" + at(s.span.begin) + ", " + at(s.span.end) +
                  ") on proc " + std::to_string(s.proc) +
                  " matches no recorded copy lifetime");
      continue;
    }
    executed[match] += s.span.length();
    const CopyRecord& c = trace.copies[match];
    if (s.span.begin < c.eligible) {
      out.add("eligible-time",
              describe(c) + " runs at " + at(s.span.begin) +
                  ", before its eligible time " + at(c.eligible));
    }
  }
  for (std::size_t i = 0; i < trace.copies.size(); ++i) {
    const CopyRecord& c = trace.copies[i];
    if (executed[i] > c.work) {
      out.add("copy-overrun", describe(c) + " executed " + at(executed[i]) +
                                  " of a demand of " + at(c.work));
    }
    if (c.end == CopyEnd::kCompleted && executed[i] != c.work) {
      out.add("copy-overrun",
              describe(c) + " completed after executing " + at(executed[i]) +
                  " of a demand of " + at(c.work));
    }
  }

  // One copy per (job, processor) and per (job, replica slot) at a time.
  const auto slot_of = [](CopyKind kind) {
    return kind == CopyKind::kBackup ? 1 : 0;
  };
  for (const auto& [job, list] : copies_of) {
    for (std::size_t a = 0; a < list.size(); ++a) {
      for (std::size_t b = a + 1; b < list.size(); ++b) {
        const CopyRecord& ca = trace.copies[list[a]];
        const CopyRecord& cb = trace.copies[list[b]];
        const bool overlap =
            ca.admitted < cb.ended && cb.admitted < ca.ended;
        if (!overlap) continue;
        if (ca.proc == cb.proc) {
          out.add("duplicate-copy",
                  core::to_string(job) + " has two overlapping copies (" +
                      sim::to_string(ca.kind) + ", " + sim::to_string(cb.kind) +
                      ") on proc " + std::to_string(ca.proc));
        } else if (slot_of(ca.kind) == slot_of(cb.kind)) {
          out.add("duplicate-copy",
                  core::to_string(job) + " has two overlapping copies in the " +
                      (slot_of(ca.kind) == 0 ? "main" : "backup") +
                      " replica slot");
        }
      }
    }
  }

  // --- 3. Band discipline: MJQ strictly above OJQ on each processor. ------
  for (const ExecSegment& s : trace.segments) {
    if (s.proc >= nproc) continue;
    // Find the segment's band through its copy record.
    const auto it = copies_of.find(s.job);
    if (it == copies_of.end()) continue;
    Band band = Band::kMandatory;
    bool found = false;
    for (const std::size_t i : it->second) {
      const CopyRecord& c = trace.copies[i];
      if (c.kind == s.kind && c.proc == s.proc && c.admitted <= s.span.begin &&
          s.span.end <= c.ended) {
        band = c.band;
        found = true;
        break;
      }
    }
    if (!found || band != Band::kOptional) continue;
    // No mandatory copy on the same processor may be ready (admitted,
    // eligible, not yet ended) while this optional segment runs.
    for (const CopyRecord& c : trace.copies) {
      if (c.proc != s.proc || c.band != Band::kMandatory) continue;
      const Ticks ready_from = std::max(c.admitted, c.eligible);
      if (ready_from < s.span.end && s.span.begin < c.ended &&
          c.ended > ready_from) {
        const Ticks from = std::max(ready_from, s.span.begin);
        const Ticks to = std::min(c.ended, s.span.end);
        if (from < to) {
          out.add("band-inversion",
                  "optional " + core::to_string(s.job) + " executes in [" +
                      at(from) + ", " + at(to) + ") on proc " +
                      std::to_string(s.proc) + " while mandatory " +
                      describe(c) + " is ready");
        }
      }
    }
    if (out.full()) break;
  }

  // --- 4. Job resolution and cancellation protocol. -----------------------
  bool had_permanent = false;
  Ticks death = core::kNever;
  for (const Ticks dt : trace.death_time) {
    if (dt != core::kNever) had_permanent = true;
    death = std::min(death, dt);
  }
  std::vector<std::size_t> counted_jobs(ts.size(), 0);
  std::uint64_t met = 0, missed = 0, mandatory_misses = 0, mandatory_jobs = 0;
  std::uint64_t optional_selected = 0, optional_skipped = 0;

  for (const sim::JobRecord& j : trace.jobs) {
    if (j.job.id.task >= ts.size()) {
      out.add("job-record", core::to_string(j.job.id) +
                                " references a task outside the task set");
      continue;
    }
    const bool should_count = j.job.deadline <= horizon;
    if (j.counted != should_count) {
      out.add("job-record", core::to_string(j.job.id) +
                                " counted flag disagrees with its deadline " +
                                at(j.job.deadline));
    }
    if (j.counted) {
      ++counted_jobs[j.job.id.task];
      if (!j.resolved) {
        out.add("job-resolution",
                core::to_string(j.job.id) + " is counted but never resolved");
        continue;
      }
      if (j.resolved_at > j.job.deadline) {
        out.add("job-resolution",
                core::to_string(j.job.id) + " resolved at " +
                    at(j.resolved_at) + ", after its deadline " +
                    at(j.job.deadline));
      }
    }
    if (j.mandatory) {
      ++mandatory_jobs;
    } else if (j.executed_optional) {
      ++optional_selected;
    } else {
      ++optional_skipped;
    }

    // Successful completions of this job.
    const auto it = copies_of.find(j.job.id);
    std::size_t successes = 0;
    Ticks success_at = 0;
    if (it != copies_of.end()) {
      for (const std::size_t i : it->second) {
        const CopyRecord& c = trace.copies[i];
        if (c.end == CopyEnd::kCompleted && !c.transient_fault) {
          ++successes;
          success_at = c.ended;
        }
      }
      // Cancellation protocol: canceled iff the sibling succeeded then.
      for (const std::size_t i : it->second) {
        const CopyRecord& c = trace.copies[i];
        if (c.end == CopyEnd::kCanceled &&
            (successes == 0 || c.ended != success_at)) {
          out.add("cancel-protocol",
                  describe(c) + " was canceled at " + at(c.ended) +
                      " without a sibling success at that instant");
        }
        if (successes > 0 && c.ended > success_at) {
          out.add("cancel-protocol",
                  describe(c) + " outlived the job's successful completion at " +
                      at(success_at));
        }
      }
    }
    if (successes > 1) {
      out.add("job-resolution", core::to_string(j.job.id) +
                                    " has more than one successful completion");
    }
    if (!j.resolved || !j.counted) continue;

    if (j.outcome == core::JobOutcome::kMet) {
      ++met;
      if (successes == 0) {
        out.add("job-resolution",
                core::to_string(j.job.id) +
                    " is met without a successful copy completion");
      } else if (success_at != j.resolved_at) {
        out.add("job-resolution",
                core::to_string(j.job.id) + " met at " + at(j.resolved_at) +
                    " but its success completed at " + at(success_at));
      }
    } else {
      ++missed;
      if (successes != 0) {
        out.add("job-resolution",
                core::to_string(j.job.id) +
                    " is missed despite a successful copy completion");
      }
      if (j.mandatory) {
        ++mandatory_misses;
        if (options_.check_mandatory) {
          // Theorem 1: a mandatory (FD == 0) job survives one permanent
          // fault and a transient on one copy. A miss needs >= 2 fault
          // events -- and the permanent fault only counts if it struck
          // before this job's deadline.
          int fault_events = (j.main_transient_fault ? 1 : 0) +
                             (j.backup_transient_fault ? 1 : 0) +
                             (had_permanent && death < j.job.deadline ? 1 : 0);
          if (fault_events < 2) {
            out.add("mandatory-miss",
                    "mandatory " + core::to_string(j.job.id) +
                        " missed its deadline " + at(j.job.deadline) +
                        " with only " + std::to_string(fault_events) +
                        " fault event(s) against it");
          }
        }
      }
    }
  }

  // --- 5. Outcome sequences and the (m,k) windows. ------------------------
  if (trace.outcomes_per_task.size() != ts.size()) {
    out.add("outcome-counts", "trace has outcome sequences for " +
                                  std::to_string(trace.outcomes_per_task.size()) +
                                  " tasks, task set has " +
                                  std::to_string(ts.size()));
  } else {
    for (core::TaskIndex i = 0; i < ts.size(); ++i) {
      if (trace.outcomes_per_task[i].size() != counted_jobs[i]) {
        out.add("outcome-counts",
                ts[i].name + ": " +
                    std::to_string(trace.outcomes_per_task[i].size()) +
                    " outcomes recorded for " +
                    std::to_string(counted_jobs[i]) + " counted jobs");
      }
      if (options_.check_mk) {
        const auto violation = core::audit_mk_sequence(
            ts[i].m, ts[i].k, trace.outcomes_per_task[i]);
        if (violation) {
          out.add("mk-violation",
                  ts[i].name + ": window ending at job " +
                      std::to_string(violation->first_job) + " has only " +
                      std::to_string(violation->met) + "/" +
                      std::to_string(ts[i].k) + " successes (needs " +
                      std::to_string(ts[i].m) + ")");
        }
      }
    }
  }

  // --- 6. Aggregate counters reconcile with the records. ------------------
  const sim::SimStats& st = trace.stats;
  std::uint64_t backups = 0, transients = 0;
  for (const CopyRecord& c : trace.copies) {
    backups += c.kind == CopyKind::kBackup;
    transients += c.transient_fault;
  }
  const auto stat = [&out](const char* name, std::uint64_t recorded,
                           std::uint64_t derived) {
    if (recorded != derived) {
      out.add("stats-reconcile", std::string(name) + " records " +
                                     std::to_string(recorded) +
                                     " but the trace implies " +
                                     std::to_string(derived));
    }
  };
  stat("jobs_released", st.jobs_released, trace.jobs.size());
  stat("mandatory_jobs", st.mandatory_jobs, mandatory_jobs);
  stat("optional_selected", st.optional_selected, optional_selected);
  stat("optional_skipped", st.optional_skipped, optional_skipped);
  stat("backups_created", st.backups_created, backups);
  stat("transient_faults", st.transient_faults, transients);
  stat("jobs_met", st.jobs_met, met);
  stat("jobs_missed", st.jobs_missed, missed);
  stat("mandatory_misses", st.mandatory_misses, mandatory_misses);

  // --- 7. Energy accounting reconciles with busy/sleep intervals. ---------
  if (options_.check_energy) {
    const auto energy = energy::account_energy(trace, options_.power);
    for (std::size_t p = 0; p < nproc; ++p) {
      const auto& pe = energy.per_proc[p];
      const Ticks life = std::min(horizon, trace.death_time[p]);
      if (pe.busy_time != trace.busy_time[p]) {
        out.add("energy-reconcile",
                "proc " + std::to_string(p) + ": accounted busy time " +
                    at(pe.busy_time) + " != trace busy time " +
                    at(trace.busy_time[p]));
      }
      if (pe.busy_time + pe.idle_time + pe.slept_time != life) {
        out.add("energy-reconcile",
                "proc " + std::to_string(p) + ": busy + idle + sleep = " +
                    at(pe.busy_time + pe.idle_time + pe.slept_time) +
                    " does not cover the processor's life span " + at(life));
      }
    }
  }

  return out.take();
}

void audit_or_throw(const SimulationTrace& trace, const core::TaskSet& ts,
                    const AuditOptions& options) {
  AuditReport report = TraceAuditor(options).audit(trace, ts);
  if (!report.ok()) throw AuditViolationError(std::move(report));
}

}  // namespace mkss::audit
