#include "sim/types.hpp"

#include <algorithm>

namespace mkss::sim {

std::string to_string(ProcRole role) {
  switch (role) {
    case ProcRole::kWorker: return "primary";
    case ProcRole::kStandby: return "spare";
  }
  return "?";
}

std::string to_string(CopyKind kind) {
  switch (kind) {
    case CopyKind::kMain: return "main";
    case CopyKind::kBackup: return "backup";
    case CopyKind::kOptional: return "optional";
  }
  return "?";
}

std::string to_string(CopyEnd end) {
  switch (end) {
    case CopyEnd::kCompleted: return "completed";
    case CopyEnd::kCanceled: return "canceled";
    case CopyEnd::kKilledResolved: return "killed-resolved";
    case CopyEnd::kLostToDeath: return "lost-to-death";
    case CopyEnd::kAbandoned: return "abandoned";
    case CopyEnd::kUnfinished: return "unfinished";
  }
  return "?";
}

core::Ticks SimulationTrace::active_time(core::Ticks upto) const noexcept {
  core::Ticks total = 0;
  for (const ExecSegment& s : segments) {
    total += std::max<core::Ticks>(
        0, std::min(s.span.end, upto) - std::min(s.span.begin, upto));
  }
  return total;
}

}  // namespace mkss::sim
