#include "sim/trace_sink.hpp"

#include <algorithm>

#include "sim/engine.hpp"

namespace mkss::sim {

namespace {

/// Same unit convention as energy::account_energy: 1 unit == P_act for 1 ms.
double units(core::Ticks t, double power) {
  return core::to_ms(t) * power;
}

}  // namespace

void FullTraceSink::begin_run(const core::TaskSet&, const SimConfig&) {
  // The engine clears and refills the pooled trace via trace_buffer();
  // nothing to reset here.
}

void StatsSink::begin_run(const core::TaskSet& ts, const SimConfig& config) {
  const std::size_t n = ts.size();
  const std::size_t nproc = config.platform.num_procs();
  energy_ = energy::EnergyBreakdown{};
  energy_.per_proc.resize(nproc);
  stats_ = SimStats{};
  cursor_.assign(nproc, 0);
  qos_.per_task.assign(n, metrics::TaskQos{});
  qos_.mk_satisfied = true;
  qos_.mandatory_misses = 0;
  history_.clear();
  history_.reserve(n);
  for (const core::Task& t : ts) history_.emplace_back(t.m, t.k);
  violated_.assign(n, 0);
  memo_frequency_ = 1.0;
  memo_power_ = power_.power_at(1.0);
  seg_proc_.clear();
  seg_begin_.clear();
  seg_end_.clear();
  seg_freq_.clear();
}

void StatsSink::charge_idle(energy::ProcessorEnergy& pe, core::Ticks gap) {
  // Mirrors the charge_idle lambda in energy::account_energy term for term.
  if (gap <= 0) return;
  if (gap > power_.break_even) {
    pe.transition += units(power_.break_even, power_.p_idle);
    pe.sleep += units(gap - power_.break_even, power_.p_sleep);
    pe.slept_time += gap - power_.break_even;
    pe.idle_time += power_.break_even;
  } else {
    pe.idle += units(gap, power_.p_idle);
    pe.idle_time += gap;
  }
}

void StatsSink::on_segment(const ExecSegment& segment) {
  // Defer: append the segment's four scalars to the SoA batch; the whole
  // batch accumulates in end_run.
  seg_proc_.push_back(segment.proc);
  seg_begin_.push_back(segment.span.begin);
  seg_end_.push_back(segment.span.end);
  seg_freq_.push_back(segment.frequency);
}

void StatsSink::on_outcome(core::TaskIndex i, core::JobOutcome outcome) {
  metrics::TaskQos& q = qos_.per_task[i];
  ++q.jobs;
  if (outcome == core::JobOutcome::kMet) {
    ++q.met;
  } else {
    ++q.missed;
  }
  // Online replay of core::audit_mk_sequence: capture the first violated
  // window only (q.jobs is the 1-based index of the just-recorded job).
  history_[i].record(outcome);
  if (!violated_[i] && history_[i].violated()) {
    violated_[i] = 1;
    q.violation = core::MkViolation{q.jobs, history_[i].met_in_window()};
    qos_.mk_satisfied = false;
  }
}

void StatsSink::end_run(const RunFacts& facts) {
  // Accumulate the segment batch in arrival order: per processor that is
  // increasing begin order and never past its death time, so this visits the
  // exact spans account_energy would after its per-processor sort -- term
  // for term, the same floating-point sequence the per-segment fold used.
  const std::size_t batch = seg_proc_.size();
  for (std::size_t s = 0; s < batch; ++s) {
    const ProcessorId p = seg_proc_[s];
    energy::ProcessorEnergy& pe = energy_.per_proc[p];
    charge_idle(pe, seg_begin_[s] - cursor_[p]);
    if (seg_freq_[s] != memo_frequency_) {
      memo_frequency_ = seg_freq_[s];
      memo_power_ = power_.power_at(seg_freq_[s]);
    }
    const core::Ticks len = seg_end_[s] - seg_begin_[s];
    pe.active += units(len, memo_power_);
    pe.busy_time += len;
    cursor_[p] = seg_end_[s];
  }
  for (std::size_t p = 0; p < facts.death_time.size(); ++p) {
    const core::Ticks life_end = std::min(facts.horizon, facts.death_time[p]);
    charge_idle(energy_.per_proc[p], life_end - cursor_[p]);
  }
  if (facts.stats != nullptr) stats_ = *facts.stats;
  qos_.mandatory_misses = stats_.mandatory_misses;
}

}  // namespace mkss::sim
