// Actual-execution-time models (extension).
//
// The paper — like most of this literature — simulates every job at its
// WCET. Real jobs usually finish early, which matters here: an early main
// completion cancels more of its backup, and an early optional completion
// frees the processor for DPD. An ExecTimeModel supplies the *actual*
// execution demand per job; all offline analyses keep using the WCET, so
// every guarantee is preserved (actual <= WCET is enforced).
//
// Draws are derandomized on the job identity (same trick as the fault
// plans), so compared schemes see identical job lengths.
#pragma once

#include <algorithm>
#include <cmath>

#include "core/job.hpp"
#include "core/rng.hpp"
#include "core/time.hpp"

namespace mkss::sim {

class ExecTimeModel {
 public:
  virtual ~ExecTimeModel() = default;
  /// Actual demand of the given job; must be in [1, wcet].
  virtual core::Ticks actual_exec(const core::JobId& job, core::Ticks wcet) const = 0;
};

/// The paper's model: every job runs for its full WCET.
class WcetExecModel final : public ExecTimeModel {
 public:
  core::Ticks actual_exec(const core::JobId&, core::Ticks wcet) const override {
    return wcet;
  }
};

/// Actual time uniform in [bcet_fraction * WCET, WCET].
class UniformExecModel final : public ExecTimeModel {
 public:
  UniformExecModel(double bcet_fraction, std::uint64_t seed)
      : bcet_fraction_(std::clamp(bcet_fraction, 0.0, 1.0)), seed_(seed) {}

  core::Ticks actual_exec(const core::JobId& job, core::Ticks wcet) const override {
    std::uint64_t key = seed_;
    key ^= 0x2545f4914f6cdd1dULL + (static_cast<std::uint64_t>(job.task) << 17);
    key = key * 0x9e3779b97f4a7c15ULL + job.job;
    core::Rng rng(key);
    const double fraction = rng.uniform(bcet_fraction_, 1.0);
    const auto actual = static_cast<core::Ticks>(
        std::llround(fraction * static_cast<double>(wcet)));
    return std::clamp<core::Ticks>(actual, 1, wcet);
  }

 private:
  double bcet_fraction_;
  std::uint64_t seed_;
};

}  // namespace mkss::sim
