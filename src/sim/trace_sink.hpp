// Trace sinks: where the engine's per-run output goes.
//
// The engine produces three streams -- execution segments, copy/job lifecycle
// records, and per-task outcome sequences. Most consumers fall into two
// camps: the auditor and the JSON exporter need the *full* SimulationTrace,
// while the Figure-6 sweeps only need energy and (m,k)-QoS statistics. A
// TraceSink lets the caller pick per run:
//
//   * FullTraceSink materializes the complete trace into a pooled
//     SimulationTrace whose buffers are reused across runs (no reallocation
//     in steady state). This is bit-identical to what sim::simulate()
//     historically returned.
//   * StatsSink accumulates the energy breakdown and the QoS report without
//     ever materializing copy or job records. Outcomes fold in online;
//     segments buffer into flat SoA lanes (proc/begin/end/frequency) and the
//     energy accumulation runs over the whole batch at end_run -- the
//     per-segment callback is four appends, and the batch loop keeps the
//     power memo and per-processor cursors hot. Results are bit-identical to
//     running energy::account_energy + metrics::audit_qos over the full
//     trace: the batch replays segments in arrival order, the engine emits
//     each processor's segments in begin order (exactly the order
//     account_energy sorts into) and outcomes in per-task job order (exactly
//     what core::audit_mk_sequence replays), so the floating-point
//     accumulation order matches term for term.
//
// Ownership and pooling: a sink owns its buffers and survives across runs;
// begin_run() resets per-run state but keeps capacity. The engine never
// holds onto a sink between Simulator::run calls. When trace_buffer()
// returns nullptr the engine skips every per-copy and per-job record
// entirely -- a lean sink therefore must not expect trace fields at
// end_run().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/mk_constraint.hpp"
#include "core/task.hpp"
#include "energy/energy_model.hpp"
#include "metrics/qos.hpp"
#include "sim/types.hpp"

namespace mkss::sim {

struct SimConfig;

/// End-of-run facts every sink receives, trace or no trace. The spans view
/// engine-owned per-processor vectors (one entry per platform processor)
/// and stay valid for the duration of the end_run call only.
struct RunFacts {
  core::Ticks horizon{0};
  std::span<const core::Ticks> death_time;
  std::span<const core::Ticks> busy_time;
  const SimStats* stats{nullptr};
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Called once before time 0; resets per-run state (keep buffers).
  virtual void begin_run(const core::TaskSet& ts, const SimConfig& config) = 0;

  /// Non-null: the engine materializes the full trace into this pooled
  /// object (cleared by the engine, capacity reused). Null: the engine
  /// skips copy records, job records and outcome storage entirely.
  virtual SimulationTrace* trace_buffer() { return nullptr; }

  /// One closed execution segment. Per processor, segments arrive in
  /// strictly increasing begin order. Also called when trace_buffer() is
  /// non-null (the record is then additionally stored in the trace).
  virtual void on_segment(const ExecSegment& segment) = 0;

  /// Outcome of the next counted job of task `i`, in per-task job order.
  virtual void on_outcome(core::TaskIndex i, core::JobOutcome outcome) = 0;

  /// Called once after the horizon closed and all records are final.
  virtual void end_run(const RunFacts& facts) = 0;
};

/// Materializes the full SimulationTrace, reusing buffers across runs.
class FullTraceSink final : public TraceSink {
 public:
  void begin_run(const core::TaskSet& ts, const SimConfig& config) override;
  SimulationTrace* trace_buffer() override { return &trace_; }
  void on_segment(const ExecSegment&) override {}
  void on_outcome(core::TaskIndex, core::JobOutcome) override {}
  void end_run(const RunFacts&) override {}

  /// The last run's trace; valid until the next begin_run.
  const SimulationTrace& trace() const noexcept { return trace_; }
  SimulationTrace& trace() noexcept { return trace_; }

  /// Moves the trace out (the compat path of sim::simulate()).
  SimulationTrace take() { return std::move(trace_); }

 private:
  SimulationTrace trace_;
};

/// Accumulates energy and QoS online; never materializes the trace.
class StatsSink final : public TraceSink {
 public:
  explicit StatsSink(energy::PowerParams power = {}) : power_(power) {}

  void set_power(const energy::PowerParams& power) { power_ = power; }

  void begin_run(const core::TaskSet& ts, const SimConfig& config) override;
  void on_segment(const ExecSegment& segment) override;
  void on_outcome(core::TaskIndex i, core::JobOutcome outcome) override;
  void end_run(const RunFacts& facts) override;

  /// Valid after end_run; bit-identical to account_energy over the trace.
  const energy::EnergyBreakdown& energy() const noexcept { return energy_; }
  /// Valid after end_run; bit-identical to audit_qos over the trace.
  const metrics::QosReport& qos() const noexcept { return qos_; }
  /// Valid after end_run.
  const SimStats& stats() const noexcept { return stats_; }

 private:
  void charge_idle(energy::ProcessorEnergy& pe, core::Ticks gap);

  /// Completed-segment batch, SoA lanes parallel by segment arrival order.
  /// Accumulated by end_run in one pass; capacity survives across runs.
  std::vector<std::uint8_t> seg_proc_;
  std::vector<core::Ticks> seg_begin_;
  std::vector<core::Ticks> seg_end_;
  std::vector<double> seg_freq_;

  energy::PowerParams power_;
  /// One-entry power_at() memo keyed on the exact frequency bits: segments
  /// overwhelmingly repeat the same DVS level, and power_at's std::pow
  /// otherwise dominates the lean per-segment cost. Same input, same
  /// output -- bit-identical to calling power_at per segment.
  double memo_frequency_{1.0};
  double memo_power_{0.0};
  energy::EnergyBreakdown energy_;
  metrics::QosReport qos_;
  SimStats stats_;
  std::vector<core::Ticks> cursor_;  ///< per-processor segment cursor
  std::vector<core::MkHistory> history_;
  std::vector<char> violated_;  ///< per task: first violation already captured
};

}  // namespace mkss::sim
