// Fault-injection interface consumed by the engine.
//
// A FaultPlan decides, deterministically for a given run, (a) whether a
// processor suffers the (at most one) permanent fault and when, and (b)
// whether a particular execution copy of a logical job is hit by a transient
// fault (detected at the end of its execution, Section II-B). Determinism is
// keyed on the job identity so that the *same* logical job sees the same
// fault in every scheme under comparison -- schemes differ in scheduling, not
// in luck. Implementations live in src/fault.
#pragma once

#include <optional>

#include "core/job.hpp"
#include "sim/types.hpp"

namespace mkss::sim {

struct PermanentFault {
  ProcessorId proc{kPrimary};
  core::Ticks time{0};
};

class FaultPlan {
 public:
  virtual ~FaultPlan() = default;

  /// The permanent fault of this run, if any.
  virtual std::optional<PermanentFault> permanent() const = 0;

  /// True when the copy of `job` in the given replica slot suffers a
  /// transient fault. Slot 0 is the main/optional copy, slot 1 the backup,
  /// so the draw is independent of which scheme placed the copy where.
  virtual bool transient(const core::JobId& job, int slot) const = 0;
};

/// Trivial plan: no faults at all (the Figure 6(a) scenario).
class NoFaultPlan final : public FaultPlan {
 public:
  std::optional<PermanentFault> permanent() const override { return std::nullopt; }
  bool transient(const core::JobId&, int) const override { return false; }
};

}  // namespace mkss::sim
