// ASCII Gantt rendering of simulation traces.
//
// Produces one row per (processor, task) so the schedules of the paper's
// Figures 1-5 can be inspected directly in a terminal:
//
//   primary tau1 |MMM..MMM..............|
//   primary tau2 |...OOO................|
//   spare   tau1 |.bb...................|
//
// 'M' main copy, 'B' backup copy, 'O' optional copy; lowercase marks a
// partially covered cell.
#pragma once

#include <string>

#include "core/task.hpp"
#include "sim/types.hpp"

namespace mkss::sim {

struct GanttOptions {
  core::Ticks begin{0};
  core::Ticks end{0};                     ///< 0 means the trace horizon
  core::Ticks ticks_per_cell{core::kTicksPerMs};  ///< time resolution per column
  bool ruler{true};                       ///< print a ms ruler line
};

/// Renders `trace` over `ts` as a multi-line string.
std::string render_gantt(const SimulationTrace& trace, const core::TaskSet& ts,
                         const GanttOptions& opts = {});

}  // namespace mkss::sim
