// Strategy interface implemented by the standby-sparing schemes
// (MKSS_ST, MKSS_DP, MKSS_greedy, MKSS_selective).
//
// The engine owns time, queues, preemption, cancellation, faults and the
// trace; a Scheme only answers the policy questions: how is a newly released
// job classified and which copies does it get, what happens to its history
// when it resolves, and how to re-route work when a processor dies.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/job.hpp"
#include "core/task.hpp"
#include "sim/types.hpp"

namespace mkss::sim {

/// One execution copy requested by the scheme for a newly released job.
struct CopySpec {
  ProcessorId proc{kPrimary};
  CopyKind kind{CopyKind::kMain};
  Band band{Band::kMandatory};
  /// Absolute time from which the copy may execute (release, postponed
  /// release r + theta_i, or dual-priority promotion r + Y_i).
  core::Ticks eligible{0};
  /// Dispatch rank *within* the copy's band; lower runs first, ties fall
  /// back to task index (FP order). Fixed-priority schemes leave it 0; the
  /// greedy scheme ranks optional copies by flexibility degree, and
  /// dynamic-priority schemes (global EDF) rank mandatory copies by absolute
  /// deadline.
  std::uint32_t rank{0};
  /// Normalized DVS frequency (0 < f <= 1): the copy's execution time
  /// stretches to C / f while its power drops per the energy model. The
  /// admitting scheme is responsible for schedulability at the chosen f.
  double frequency{1.0};
};

/// Fixed-capacity list of requested copies. A logical job has at most two
/// copies -- the engine's replica slots hold one main/optional plus one
/// backup -- so the list lives inline and a release decision never touches
/// the heap (on_release sits on the simulator's per-release hot path).
class CopyList {
 public:
  void push_back(const CopySpec& spec) {
    if (size_ == kCapacity) {
      throw std::logic_error("ReleaseDecision: more than two copies requested");
    }
    specs_[size_++] = spec;
  }
  template <typename Pred>
  void erase_if(Pred pred) {
    std::uint8_t kept = 0;
    for (std::uint8_t i = 0; i < size_; ++i) {
      if (!pred(specs_[i])) specs_[kept++] = specs_[i];
    }
    size_ = kept;
  }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  const CopySpec* begin() const noexcept { return specs_.data(); }
  const CopySpec* end() const noexcept { return specs_.data() + size_; }

 private:
  static constexpr std::uint8_t kCapacity = 2;
  std::array<CopySpec, kCapacity> specs_{};
  std::uint8_t size_{0};
};

/// The scheme's verdict on a released job.
struct ReleaseDecision {
  /// True when the job was classified mandatory (FD == 0 / static pattern).
  bool mandatory{false};
  /// Zero copies == skipped optional job (counts as a miss when its deadline
  /// passes); one or two copies otherwise.
  CopyList copies;

  static ReleaseDecision skip() { return {}; }
};

class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  /// Called by the engine before setup() with the run's platform. The
  /// default keeps schemes written for the dual platform oblivious; platform-
  /// aware schemes capture the spec here to drive their placement.
  virtual void bind_platform(const PlatformSpec& /*platform*/) {}

  /// Called once before time 0.
  virtual void setup(const core::TaskSet& ts) = 0;

  /// Classifies the j-th (1-based) job of task `i`, released at `release`.
  virtual ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                     core::Ticks release) = 0;

  /// Reports the final outcome of a counted job (in job order per task).
  /// Dynamic-pattern schemes feed their MkHistory here.
  virtual void on_outcome(core::TaskIndex i, std::uint64_t j,
                          core::JobOutcome outcome) = 0;

  /// A processor just died; subsequent on_release calls must place all
  /// copies on the survivor.
  virtual void on_permanent_fault(ProcessorId dead, core::Ticks now) = 0;

  /// A still-unresolved job lost its last copy to the processor death.
  /// Returns a replacement copy on the survivor, or nullopt to let the job
  /// miss. `remaining` is the unexecuted part of the lost copy.
  virtual std::optional<CopySpec> reroute_on_death(const core::Job& job,
                                                   bool mandatory,
                                                   ProcessorId survivor,
                                                   core::Ticks now,
                                                   core::Ticks remaining) = 0;
};

}  // namespace mkss::sim
