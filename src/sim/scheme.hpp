// Strategy interface implemented by the standby-sparing schemes
// (MKSS_ST, MKSS_DP, MKSS_greedy, MKSS_selective).
//
// The engine owns time, queues, preemption, cancellation, faults and the
// trace; a Scheme only answers the policy questions: how is a newly released
// job classified and which copies does it get, what happens to its history
// when it resolves, and how to re-route work when a processor dies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "core/task.hpp"
#include "sim/types.hpp"

namespace mkss::sim {

/// One execution copy requested by the scheme for a newly released job.
struct CopySpec {
  ProcessorId proc{kPrimary};
  CopyKind kind{CopyKind::kMain};
  Band band{Band::kMandatory};
  /// Absolute time from which the copy may execute (release, postponed
  /// release r + theta_i, or dual-priority promotion r + Y_i).
  core::Ticks eligible{0};
  /// Dispatch rank *within* the optional band; lower runs first. The greedy
  /// scheme ranks by flexibility degree (more urgent first), the selective
  /// scheme leaves it 0 (plain FP among FD==1 jobs).
  std::uint32_t optional_rank{0};
  /// Normalized DVS frequency (0 < f <= 1): the copy's execution time
  /// stretches to C / f while its power drops per the energy model. The
  /// admitting scheme is responsible for schedulability at the chosen f.
  double frequency{1.0};
};

/// The scheme's verdict on a released job.
struct ReleaseDecision {
  /// True when the job was classified mandatory (FD == 0 / static pattern).
  bool mandatory{false};
  /// Zero copies == skipped optional job (counts as a miss when its deadline
  /// passes); one or two copies otherwise.
  std::vector<CopySpec> copies;

  static ReleaseDecision skip() { return {}; }
};

class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  /// Called once before time 0.
  virtual void setup(const core::TaskSet& ts) = 0;

  /// Classifies the j-th (1-based) job of task `i`, released at `release`.
  virtual ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                     core::Ticks release) = 0;

  /// Reports the final outcome of a counted job (in job order per task).
  /// Dynamic-pattern schemes feed their MkHistory here.
  virtual void on_outcome(core::TaskIndex i, std::uint64_t j,
                          core::JobOutcome outcome) = 0;

  /// A processor just died; subsequent on_release calls must place all
  /// copies on the survivor.
  virtual void on_permanent_fault(ProcessorId dead, core::Ticks now) = 0;

  /// A still-unresolved job lost its last copy to the processor death.
  /// Returns a replacement copy on the survivor, or nullopt to let the job
  /// miss. `remaining` is the unexecuted part of the lost copy.
  virtual std::optional<CopySpec> reroute_on_death(const core::Job& job,
                                                   bool mandatory,
                                                   ProcessorId survivor,
                                                   core::Ticks now,
                                                   core::Ticks remaining) = 0;
};

}  // namespace mkss::sim
