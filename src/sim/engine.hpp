// Discrete-event simulator for N-processor standby-sparing schedules.
//
// The engine owns the platform mechanics shared by all schemes:
//   * periodic job releases and classification callbacks into the Scheme;
//   * preemptive, band-then-fixed-priority dispatch on each processor
//     (mandatory queue strictly above optional queue);
//   * copy eligibility times (postponed backup releases, dual-priority
//     promotions) -- a copy simply cannot run before its eligible time;
//   * cross-processor cancellation: the first successful completion of a
//     copy resolves the logical job and cancels the sibling copy instantly;
//   * transient faults (drawn from the FaultPlan at the end of each copy's
//     execution, per Section II-B) and the single permanent fault with
//     survivor takeover;
//   * infeasible-optional pruning: an optional copy that can no longer meet
//     its deadline is dropped instead of burning energy (the paper's
//     "O11 will not be invoked at all");
//   * optional dynamic power-down behaviour: with `wake_for_optional` off, a
//     processor whose queues are empty commits to sleep until the next
//     mandatory activity if that is more than T_be away (Algorithm 1 lines
//     10-15) and ignores optional work meanwhile.
//
// Time advances from event to event; every quantity is integer ticks, so
// runs are exactly reproducible.
#pragma once

#include <memory>
#include <stdexcept>

#include "core/task.hpp"
#include "sim/exec_model.hpp"
#include "sim/fault_plan.hpp"
#include "sim/scheme.hpp"
#include "sim/types.hpp"

namespace mkss::core {
struct ReleaseTimeline;
}  // namespace mkss::core

namespace mkss::sim {

/// How the engine discovers job releases (and, on implicit-deadline runs,
/// the folded deadline fires):
///   * kHeap   -- the classic release-calendar min-heap, re-derived per run;
///   * kCached -- a cursor walk over a shared core::ReleaseTimeline arena
///                (SimConfig::timeline_data when attached, otherwise built
///                locally for the run);
///   * kAuto   -- kCached exactly when a timeline is attached (the harness
///                layers attach one through analysis::AnalysisCache), kHeap
///                otherwise.
/// Both paths produce bit-identical traces: the arena is sorted by
/// (release, task), the calendar heap's strict-total pop order. Under
/// SimConfig::cross_check the heap runs in lock-step as an oracle and every
/// cursor step is checked against it. Env MKSS_TIMELINE={auto,cached,heap}
/// (or `off` == heap) overrides the per-run setting, mirroring MKSS_SIMD.
enum class TimelineMode : std::uint8_t { kAuto = 0, kCached = 1, kHeap = 2 };

struct SimConfig {
  /// Simulation horizon; jobs are released while r < horizon and audited
  /// when their deadline is within the horizon.
  core::Ticks horizon{0};
  /// Execution platform; defaults to the paper's dual primary/spare pair.
  /// Every per-processor engine structure is sized from this spec, and all
  /// tie-breaks are keyed on the processor index, so schedules are
  /// deterministic for any processor count.
  PlatformSpec platform{};
  /// When false, a sleeping processor ignores optional-band work until the
  /// next mandatory activity (the literal reading of Algorithm 1's wake-up
  /// timer); when true (default), any eligible work wakes it.
  bool wake_for_optional{true};
  /// Break-even time T_be used by the behavioural sleep decision.
  core::Ticks break_even{core::from_ms(std::int64_t{1})};
  /// Cost of a preemption, charged to the preempted copy's remaining
  /// execution (pipeline/cache refill on resume). 0 reproduces the paper's
  /// overhead-free model; bench/ablation_overhead sweeps it.
  core::Ticks preemption_overhead{0};
  /// Cross-check the indexed event core against the retained scan-based
  /// oracle at every event (next-event time, dispatch choice, prune
  /// completeness) via MKSS_CHECK. Defaults to on in Debug builds (assert
  /// semantics) and off otherwise; tests force it on to prove bit-identity
  /// of the indexed structures in any build type.
#ifdef NDEBUG
  bool cross_check{false};
#else
  bool cross_check{true};
#endif
  /// Release-discovery mode (see TimelineMode above). MKSS_TIMELINE wins.
  TimelineMode timeline{TimelineMode::kAuto};
  /// Shared release timeline consumed under kCached/kAuto; must describe
  /// exactly this run's (periods, deadlines, horizon) -- the engine checks
  /// the cheap invariants always and the full per-task agreement under
  /// cross_check. Borrowed for the duration of run(); the caller keeps it
  /// alive (harness::RunContext holds it in a content-keyed
  /// core::TimelineCache).
  const core::ReleaseTimeline* timeline_data{nullptr};
  /// Per-run wall-clock watchdog budget in milliseconds; 0 (the default)
  /// disables it. When positive, the event loop samples a steady clock every
  /// 512 events and throws RunTimeoutError once the budget is exceeded, so a
  /// hung or runaway run surfaces as a quarantinable error instead of
  /// stalling a fuzz campaign or CI. The check is cooperative and does not
  /// perturb the schedule: a run that finishes within its budget is
  /// bit-identical to the same run without a watchdog.
  double wall_clock_budget_ms{0};
};

/// The timeline mode a run with `config` actually uses, with the
/// MKSS_TIMELINE environment override folded in (parsed once per process;
/// tests that need both modes in one process use set_forced_timeline_mode).
/// Returns kAuto only when neither the env nor the config forces a mode.
TimelineMode resolved_timeline_mode(const SimConfig& config) noexcept;

/// Test hook mirroring core::simd::set_forced_path: overrides the resolved
/// mode until clear_forced_timeline_mode().
void set_forced_timeline_mode(TimelineMode mode) noexcept;
void clear_forced_timeline_mode() noexcept;

/// Thrown by Simulator::run when SimConfig::wall_clock_budget_ms is
/// exhausted. Fuzz/campaign harnesses map it to a "timeout" verdict; the
/// run's partial trace is discarded.
class RunTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TraceSink;

/// Reusable simulation engine. All per-run storage (live jobs, execution
/// copies, ready queues, the deadline heap, and the pooled trace of a
/// FullTraceSink) lives in engine-owned arenas that are reset -- not
/// reallocated -- between run() calls, so the hot path of a sweep that runs
/// thousands of simulations performs no steady-state heap allocation.
///
/// Event discovery is fully indexed (see docs/architecture.md, "Indexed
/// event core"): a release calendar, per-processor eligibility min-heaps and
/// priority-ordered ready heaps with lazy invalidation replace the per-event
/// linear scans, so next_event_time() is a constant-size min over cached
/// candidates and dispatch() is O(log n). Tie-breaking reproduces the legacy
/// scan order exactly; traces are bit-identical (SimConfig::cross_check runs
/// the retained scan oracle against the indexes at every event).
/// Results stream into the caller-supplied TraceSink (see sim/trace_sink.hpp)
/// which picks between the full materialized trace and online statistics.
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(Simulator&&) noexcept;
  Simulator& operator=(Simulator&&) noexcept;

  /// Runs `scheme` over `ts` under `faults`, streaming segments and outcomes
  /// into `sink`. `exec_model` supplies actual per-job execution demands
  /// (default: WCET, the paper's model); feasibility pruning of optional
  /// copies then uses the actual remaining demand, while all offline
  /// analyses stay WCET-based.
  void run(const core::TaskSet& ts, Scheme& scheme, const FaultPlan& faults,
           const SimConfig& config, TraceSink& sink,
           const ExecTimeModel* exec_model = nullptr);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience wrapper: runs a fresh Simulator with a FullTraceSink
/// and returns the materialized trace. Bit-identical to the pooled path.
SimulationTrace simulate(const core::TaskSet& ts, Scheme& scheme,
                         const FaultPlan& faults, const SimConfig& config,
                         const ExecTimeModel* exec_model = nullptr);

}  // namespace mkss::sim
