#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

#include "core/check.hpp"
#include "sim/trace_sink.hpp"

namespace mkss::sim {

using core::JobOutcome;
using core::TaskIndex;
using core::Ticks;

namespace {

constexpr int kNone = -1;

/// Replica slot of a copy kind: main/optional copies share slot 0, backups
/// use slot 1 (keeps transient-fault draws scheme-independent).
constexpr int slot_of(CopyKind kind) noexcept {
  return kind == CopyKind::kBackup ? 1 : 0;
}

struct Copy {
  std::size_t job_idx{0};
  CopyKind kind{CopyKind::kMain};
  ProcessorId proc{kPrimary};
  Band band{Band::kMandatory};
  Ticks eligible{0};
  Ticks remaining{0};
  std::uint32_t optional_rank{0};
  double frequency{1.0};
  bool alive{true};
  std::size_t rec{0};  ///< index of this copy's CopyRecord (tracing runs only)
};

struct LiveJob {
  core::Job job;
  bool mandatory{false};
  bool executed_optional{false};
  bool counted{true};
  bool resolved{false};
  JobOutcome outcome{JobOutcome::kMissed};
  Ticks resolved_at{0};
  int copy_in_slot[2]{kNone, kNone};
  bool slot_failed[2]{false, false};
};

}  // namespace

/// The engine proper. Every vector below is an arena: reset (cleared, never
/// shrunk) at the top of run(), so repeated runs reuse the same buffers.
struct Simulator::Impl {
  void run(const core::TaskSet& ts, Scheme& scheme, const FaultPlan& faults,
           const SimConfig& config, TraceSink& sink,
           const ExecTimeModel* exec_model);

  // --- event processing -----------------------------------------------
  Ticks next_event_time() const;
  void process_completions();
  void apply_permanent_fault();
  void process_deadlines();
  void process_releases();
  void dispatch(ProcessorId p);

  // --- mechanics --------------------------------------------------------
  void admit_copy(std::size_t job_idx, const CopySpec& spec);
  void complete_copy(int idx);
  void kill_copy(int idx, CopyEnd reason);
  void resolve(std::size_t job_idx, JobOutcome outcome);
  void stop_running(ProcessorId p, Ticks end);
  void start_running(ProcessorId p, int idx);
  bool copy_precedes(const Copy& a, const Copy& b) const;
  Ticks next_mandatory_activity(ProcessorId p) const;

  void push_deadline(Ticks deadline, std::size_t job_idx);
  void pop_deadline();

  // Per-run bindings (valid only inside run()).
  const core::TaskSet* ts_{nullptr};
  Scheme* scheme_{nullptr};
  const FaultPlan* faults_{nullptr};
  SimConfig config_;
  const ExecTimeModel* exec_model_{nullptr};
  TraceSink* sink_{nullptr};
  SimulationTrace* trace_{nullptr};  ///< null on lean (stats-only) runs

  Ticks now_{0};
  std::vector<Copy> copies_;
  std::vector<LiveJob> jobs_;
  std::array<std::vector<std::size_t>, kProcessorCount> live_;
  std::vector<Ticks> next_release_;    // per task
  std::vector<std::uint64_t> next_j_;  // per task, 1-based next instance
  // (deadline, job index) min-heap via push_heap/pop_heap with greater<>,
  // exactly the order a std::priority_queue would produce, but clearable.
  std::vector<std::pair<Ticks, std::size_t>> deadlines_;

  bool proc_alive_[kProcessorCount]{true, true};
  int running_[kProcessorCount]{kNone, kNone};
  Ticks run_start_[kProcessorCount]{0, 0};
  Ticks sleep_until_[kProcessorCount]{0, 0};

  std::optional<PermanentFault> pf_;
  bool pf_applied_{false};

  SimStats stats_;
  std::array<Ticks, kProcessorCount> death_time_{core::kNever, core::kNever};
  std::array<Ticks, kProcessorCount> busy_time_{0, 0};
  std::vector<std::uint64_t> last_resolved_j_;  // per task, outcome-order check
  std::vector<std::size_t> lost_scratch_;       // permanent-fault handover
};

void Simulator::Impl::push_deadline(Ticks deadline, std::size_t job_idx) {
  deadlines_.emplace_back(deadline, job_idx);
  std::push_heap(deadlines_.begin(), deadlines_.end(), std::greater<>{});
}

void Simulator::Impl::pop_deadline() {
  std::pop_heap(deadlines_.begin(), deadlines_.end(), std::greater<>{});
  deadlines_.pop_back();
}

void Simulator::Impl::run(const core::TaskSet& ts, Scheme& scheme,
                          const FaultPlan& faults, const SimConfig& config,
                          TraceSink& sink, const ExecTimeModel* exec_model) {
  if (config.horizon <= 0) {
    throw std::invalid_argument("SimConfig::horizon must be positive");
  }
  ts_ = &ts;
  scheme_ = &scheme;
  faults_ = &faults;
  config_ = config;
  exec_model_ = exec_model;
  sink_ = &sink;

  // Reset the arenas; every clear()/assign() keeps its buffer's capacity.
  const std::size_t n = ts.size();
  now_ = 0;
  copies_.clear();
  jobs_.clear();
  for (auto& lv : live_) lv.clear();
  next_release_.assign(n, 0);
  next_j_.assign(n, 1);
  deadlines_.clear();
  for (std::size_t p = 0; p < kProcessorCount; ++p) {
    proc_alive_[p] = true;
    running_[p] = kNone;
    run_start_[p] = 0;
    sleep_until_[p] = 0;
  }
  pf_.reset();
  pf_applied_ = false;
  stats_ = SimStats{};
  death_time_ = {core::kNever, core::kNever};
  busy_time_ = {0, 0};
  last_resolved_j_.assign(n, 0);

  sink.begin_run(ts, config);
  trace_ = sink.trace_buffer();
  if (trace_) {
    trace_->horizon = config_.horizon;
    trace_->segments.clear();
    trace_->jobs.clear();
    trace_->copies.clear();
    trace_->outcomes_per_task.resize(n);
    for (auto& outcomes : trace_->outcomes_per_task) outcomes.clear();
    trace_->death_time = {core::kNever, core::kNever};
    trace_->busy_time = {0, 0};
    trace_->stats = SimStats{};
  }

  scheme_->setup(ts);
  pf_ = faults.permanent();
  if (pf_ && pf_->time >= config_.horizon) pf_.reset();

  // Time 0: an instantaneous permanent fault and the first releases happen
  // before the first dispatch.
  if (pf_ && !pf_applied_ && pf_->time == 0) apply_permanent_fault();
  process_releases();
  dispatch(kPrimary);
  dispatch(kSpare);

  while (true) {
    const Ticks t = next_event_time();
    const Ticks step_to = std::min(t, config_.horizon);
    // Advance running copies to the new time.
    for (std::size_t p = 0; p < kProcessorCount; ++p) {
      if (running_[p] != kNone) {
        copies_[static_cast<std::size_t>(running_[p])].remaining -= step_to - now_;
      }
    }
    now_ = step_to;
    if (t >= config_.horizon) break;

    process_completions();
    if (pf_ && !pf_applied_ && pf_->time == now_) apply_permanent_fault();
    process_deadlines();
    process_releases();
    dispatch(kPrimary);
    dispatch(kSpare);
  }

  // Horizon edge: copies finishing exactly at the horizon complete, then
  // deadlines falling exactly on the horizon fire, then open segments clip.
  process_completions();
  process_deadlines();
  stop_running(kPrimary, config_.horizon);
  stop_running(kSpare, config_.horizon);

  if (trace_) {
    // Copies still alive at the horizon close their lifecycle records here.
    for (const Copy& c : copies_) {
      if (c.alive) trace_->copies[c.rec].ended = config_.horizon;
    }

    trace_->jobs.reserve(jobs_.size());
    for (const LiveJob& lj : jobs_) {
      JobRecord rec;
      rec.job = lj.job;
      rec.mandatory = lj.mandatory;
      rec.executed_optional = lj.executed_optional;
      rec.counted = lj.counted;
      rec.resolved = lj.resolved;
      rec.outcome = lj.outcome;
      rec.resolved_at = lj.resolved_at;
      rec.main_transient_fault = lj.slot_failed[0];
      rec.backup_transient_fault = lj.slot_failed[1];
      trace_->jobs.push_back(rec);
    }
    trace_->death_time = death_time_;
    trace_->busy_time = busy_time_;
    trace_->stats = stats_;
  }

  RunFacts facts;
  facts.horizon = config_.horizon;
  facts.death_time = death_time_;
  facts.busy_time = busy_time_;
  facts.stats = &stats_;
  sink.end_run(facts);
}

Ticks Simulator::Impl::next_event_time() const {
  Ticks t = core::kNever;
  for (std::size_t i = 0; i < ts_->size(); ++i) {
    if (next_release_[i] < config_.horizon) t = std::min(t, next_release_[i]);
  }
  for (const ProcessorId p : {kPrimary, kSpare}) {
    if (running_[p] != kNone) {
      t = std::min(t, now_ + copies_[static_cast<std::size_t>(running_[p])].remaining);
    }
    if (sleep_until_[p] > now_) t = std::min(t, sleep_until_[p]);
    for (const std::size_t idx : live_[p]) {
      const Copy& c = copies_[idx];
      if (c.alive && c.eligible > now_) t = std::min(t, c.eligible);
    }
  }
  if (!deadlines_.empty()) t = std::min(t, deadlines_.front().first);
  if (pf_ && !pf_applied_) t = std::min(t, pf_->time);
  MKSS_CHECK(t > now_ || t == core::kNever,
             "next event time must advance beyond " +
                 core::format_ticks(now_));
  return t;
}

void Simulator::Impl::process_completions() {
  for (const ProcessorId p : {kPrimary, kSpare}) {
    const int idx = running_[p];
    if (idx != kNone && copies_[static_cast<std::size_t>(idx)].remaining == 0) {
      complete_copy(idx);
    }
  }
}

void Simulator::Impl::apply_permanent_fault() {
  pf_applied_ = true;
  const ProcessorId dead = pf_->proc;
  const ProcessorId survivor = other(dead);
  proc_alive_[dead] = false;
  death_time_[dead] = now_;
  stop_running(dead, now_);
  scheme_->on_permanent_fault(dead, now_);

  // Copies on the dead processor are lost; jobs left with no live copy get a
  // chance to be re-admitted on the survivor.
  lost_scratch_.assign(live_[dead].begin(), live_[dead].end());
  live_[dead].clear();
  for (const std::size_t idx : lost_scratch_) {
    Copy& c = copies_[idx];
    if (!c.alive) continue;
    const Ticks remaining = c.remaining;
    c.alive = false;
    if (trace_) {
      trace_->copies[c.rec].ended = now_;
      trace_->copies[c.rec].end = CopyEnd::kLostToDeath;
    }
    LiveJob& job = jobs_[c.job_idx];
    job.copy_in_slot[slot_of(c.kind)] = kNone;
    if (job.resolved) continue;
    const bool has_other =
        job.copy_in_slot[0] != kNone || job.copy_in_slot[1] != kNone;
    if (has_other) continue;
    const auto replacement = scheme_->reroute_on_death(job.job, job.mandatory,
                                                       survivor, now_, remaining);
    if (replacement) {
      CopySpec spec = *replacement;
      spec.proc = survivor;  // the scheme cannot resurrect the dead processor
      admit_copy(c.job_idx, spec);
    } else if (now_ >= job.job.deadline || !job.counted) {
      resolve(c.job_idx, JobOutcome::kMissed);
    }
    // Otherwise the job simply misses at its deadline event.
  }
}

void Simulator::Impl::process_deadlines() {
  while (!deadlines_.empty() && deadlines_.front().first <= now_) {
    const std::size_t job_idx = deadlines_.front().second;
    pop_deadline();
    if (!jobs_[job_idx].resolved) {
      resolve(job_idx, JobOutcome::kMissed);
    }
  }
}

void Simulator::Impl::process_releases() {
  for (TaskIndex i = 0; i < ts_->size(); ++i) {
    if (next_release_[i] != now_ || next_release_[i] >= config_.horizon) continue;
    const std::uint64_t j = next_j_[i];
    core::Job job = core::Job::instance((*ts_)[i], i, j);
    MKSS_CHECK(job.release == now_,
               "release of " + core::to_string(job.id) +
                   " does not match the current event time");
    if (exec_model_ != nullptr) {
      job.exec = std::clamp<Ticks>(exec_model_->actual_exec(job.id, job.exec), 1,
                                   job.exec);
    }

    jobs_.push_back(LiveJob{});
    const std::size_t job_idx = jobs_.size() - 1;
    LiveJob& lj = jobs_[job_idx];
    lj.job = job;
    lj.counted = job.deadline <= config_.horizon;

    ReleaseDecision decision = scheme_->on_release(i, j, now_);
    lj.mandatory = decision.mandatory;
    lj.executed_optional = !decision.mandatory && !decision.copies.empty();

    ++stats_.jobs_released;
    if (decision.mandatory) {
      ++stats_.mandatory_jobs;
    } else if (!decision.copies.empty()) {
      ++stats_.optional_selected;
    } else {
      ++stats_.optional_skipped;
    }

    for (const CopySpec& spec : decision.copies) {
      admit_copy(job_idx, spec);
    }
    if (lj.counted) push_deadline(job.deadline, job_idx);

    next_j_[i] = j + 1;
    next_release_[i] += (*ts_)[i].period;
  }
}

void Simulator::Impl::admit_copy(std::size_t job_idx, const CopySpec& spec) {
  LiveJob& job = jobs_[job_idx];
  Copy c;
  c.job_idx = job_idx;
  c.kind = spec.kind;
  c.proc = proc_alive_[spec.proc] ? spec.proc : other(spec.proc);
  c.band = spec.band;
  c.eligible = std::max(spec.eligible, now_);
  // DVS: execution stretches to C / f at reduced frequency. Clamp to a sane
  // range; a frequency of exactly 1 keeps the integer WCET untouched.
  c.frequency = std::clamp(spec.frequency, 0.05, 1.0);
  c.remaining = c.frequency == 1.0
                    ? job.job.exec
                    : static_cast<Ticks>(std::llround(
                          static_cast<double>(job.job.exec) / c.frequency));
  c.optional_rank = spec.optional_rank;
  const int slot = slot_of(spec.kind);
  if (job.copy_in_slot[slot] != kNone) {
    throw std::logic_error("admit_copy: replica slot already occupied");
  }

  if (trace_) {
    CopyRecord rec;
    rec.job = job.job.id;
    rec.kind = c.kind;
    rec.proc = c.proc;
    rec.band = c.band;
    rec.admitted = now_;
    rec.eligible = c.eligible;
    rec.work = c.remaining;
    rec.frequency = c.frequency;
    c.rec = trace_->copies.size();
    trace_->copies.push_back(rec);
  }

  copies_.push_back(c);
  const auto idx = copies_.size() - 1;
  job.copy_in_slot[slot] = static_cast<int>(idx);
  live_[c.proc].push_back(idx);
  if (spec.kind == CopyKind::kBackup) ++stats_.backups_created;
}

void Simulator::Impl::complete_copy(int idx) {
  Copy& c = copies_[static_cast<std::size_t>(idx)];
  MKSS_CHECK(c.remaining == 0 && c.alive,
             "completing a copy that is not an exhausted live copy");
  stop_running(c.proc, now_);
  c.alive = false;
  LiveJob& job = jobs_[c.job_idx];
  const int slot = slot_of(c.kind);
  job.copy_in_slot[slot] = kNone;

  const bool faulted = faults_->transient(job.job.id, slot);
  if (trace_) {
    trace_->copies[c.rec].ended = now_;
    trace_->copies[c.rec].end = CopyEnd::kCompleted;
    trace_->copies[c.rec].transient_fault = faulted;
  }
  if (faulted) {
    ++stats_.transient_faults;
    job.slot_failed[slot] = true;
    const int sibling = job.copy_in_slot[1 - slot];
    if (sibling == kNone && !job.resolved) {
      // No copy left that could still succeed.
      resolve(c.job_idx, JobOutcome::kMissed);
    }
    return;
  }

  // Success: the sibling copy (if any) is canceled immediately.
  const int sibling = job.copy_in_slot[1 - slot];
  if (sibling != kNone && copies_[static_cast<std::size_t>(sibling)].alive) {
    const CopyKind sk = copies_[static_cast<std::size_t>(sibling)].kind;
    if (sk == CopyKind::kBackup) {
      ++stats_.backups_canceled;
    } else {
      ++stats_.mains_canceled;
    }
  }
  resolve(c.job_idx, JobOutcome::kMet);
}

void Simulator::Impl::kill_copy(int idx, CopyEnd reason) {
  Copy& c = copies_[static_cast<std::size_t>(idx)];
  if (!c.alive) return;
  if (running_[c.proc] == idx) stop_running(c.proc, now_);
  c.alive = false;
  if (trace_) {
    trace_->copies[c.rec].ended = now_;
    trace_->copies[c.rec].end = reason;
  }
  jobs_[c.job_idx].copy_in_slot[slot_of(c.kind)] = kNone;
}

void Simulator::Impl::resolve(std::size_t job_idx, JobOutcome outcome) {
  LiveJob& job = jobs_[job_idx];
  MKSS_CHECK(!job.resolved,
             core::to_string(job.job.id) + " resolved more than once");
  job.resolved = true;
  job.outcome = outcome;
  job.resolved_at = now_;
  // A met job cancels its leftover sibling; a missed one kills its remnants.
  const CopyEnd reason = outcome == JobOutcome::kMet ? CopyEnd::kCanceled
                                                     : CopyEnd::kKilledResolved;
  for (const int slot : {0, 1}) {
    if (job.copy_in_slot[slot] != kNone) kill_copy(job.copy_in_slot[slot], reason);
  }
  if (!job.counted) return;

  const TaskIndex i = job.job.id.task;
  MKSS_CHECK(job.job.id.job == last_resolved_j_[i] + 1,
             "outcomes must resolve in job order per task (" +
                 core::to_string(job.job.id) + ")");
  last_resolved_j_[i] = job.job.id.job;
  if (trace_) trace_->outcomes_per_task[i].push_back(outcome);
  sink_->on_outcome(i, outcome);
  if (outcome == JobOutcome::kMet) {
    ++stats_.jobs_met;
  } else {
    ++stats_.jobs_missed;
    if (job.mandatory) ++stats_.mandatory_misses;
  }
  scheme_->on_outcome(i, job.job.id.job, outcome);
}

void Simulator::Impl::stop_running(ProcessorId p, Ticks end) {
  const int idx = running_[p];
  if (idx == kNone) return;
  running_[p] = kNone;
  if (end <= run_start_[p]) return;
  const Copy& c = copies_[static_cast<std::size_t>(idx)];
  const ExecSegment segment{
      p, jobs_[c.job_idx].job.id, c.kind, {run_start_[p], end}, c.frequency};
  if (trace_) trace_->segments.push_back(segment);
  sink_->on_segment(segment);
  busy_time_[p] += end - run_start_[p];
}

void Simulator::Impl::start_running(ProcessorId p, int idx) {
  running_[p] = idx;
  run_start_[p] = now_;
}

bool Simulator::Impl::copy_precedes(const Copy& a, const Copy& b) const {
  const auto key = [this](const Copy& c) {
    const core::JobId& id = jobs_[c.job_idx].job.id;
    const std::uint32_t rank = c.band == Band::kOptional ? c.optional_rank : 0;
    return std::make_tuple(static_cast<int>(c.band), rank, id.task, id.job,
                           static_cast<int>(c.kind));
  };
  return key(a) < key(b);
}

Ticks Simulator::Impl::next_mandatory_activity(ProcessorId p) const {
  // Algorithm 1 line 12: "the earliest release time of all jobs in MJQ" --
  // i.e. only mandatory copies already admitted (postponed backups, promoted
  // jobs). A mandatory copy admitted later wakes the processor anyway,
  // because dispatch always considers mandatory-band work regardless of the
  // sleep commitment.
  Ticks t = config_.horizon;
  for (const std::size_t idx : live_[p]) {
    const Copy& c = copies_[idx];
    if (c.alive && c.band == Band::kMandatory && c.eligible > now_) {
      t = std::min(t, c.eligible);
    }
  }
  return t;
}

void Simulator::Impl::dispatch(ProcessorId p) {
  if (!proc_alive_[p]) return;
  const bool sleeping = !config_.wake_for_optional && sleep_until_[p] > now_;

  int best = kNone;
  auto& lv = live_[p];
  for (std::size_t pos = 0; pos < lv.size();) {
    const std::size_t idx = lv[pos];
    Copy& c = copies_[idx];
    if (!c.alive || c.proc != p) {  // lazily compact dead entries
      lv[pos] = lv.back();
      lv.pop_back();
      continue;
    }
    if (c.eligible > now_) {
      ++pos;
      continue;
    }
    if (c.band == Band::kOptional) {
      LiveJob& job = jobs_[c.job_idx];
      if (now_ + c.remaining > job.job.deadline) {
        // Can no longer finish in time: never invoke / abandon (energy
        // already spent stays spent).
        kill_copy(static_cast<int>(idx), CopyEnd::kAbandoned);
        if (!job.resolved && job.copy_in_slot[0] == kNone &&
            job.copy_in_slot[1] == kNone) {
          resolve(c.job_idx, JobOutcome::kMissed);
        }
        lv[pos] = lv.back();
        lv.pop_back();
        continue;
      }
      if (sleeping) {
        ++pos;
        continue;
      }
    }
    if (best == kNone ||
        copy_precedes(c, copies_[static_cast<std::size_t>(best)])) {
      best = static_cast<int>(idx);
    }
    ++pos;
  }

  if (best != kNone) {
    sleep_until_[p] = 0;  // dispatching (mandatory) work ends the sleep
  }
  if (best != running_[p]) {
    // A genuinely preempted copy (still alive, work left) pays the context
    // overhead on its remaining demand.
    const int old = running_[p];
    if (old != kNone && config_.preemption_overhead > 0) {
      Copy& victim = copies_[static_cast<std::size_t>(old)];
      if (victim.alive && victim.remaining > 0) {
        victim.remaining += config_.preemption_overhead;
        if (trace_) trace_->copies[victim.rec].work += config_.preemption_overhead;
        ++stats_.preemptions;
      }
    } else if (old != kNone &&
               copies_[static_cast<std::size_t>(old)].alive &&
               copies_[static_cast<std::size_t>(old)].remaining > 0) {
      ++stats_.preemptions;
    }
    stop_running(p, now_);
    if (best != kNone) start_running(p, best);
  }

  if (best == kNone && !config_.wake_for_optional && sleep_until_[p] <= now_) {
    const Ticks next_mandatory = next_mandatory_activity(p);
    if (next_mandatory - now_ > config_.break_even) {
      sleep_until_[p] = next_mandatory;  // commit to DPD sleep
    }
  }
}

Simulator::Simulator() : impl_(std::make_unique<Impl>()) {}
Simulator::~Simulator() = default;
Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;

void Simulator::run(const core::TaskSet& ts, Scheme& scheme,
                    const FaultPlan& faults, const SimConfig& config,
                    TraceSink& sink, const ExecTimeModel* exec_model) {
  impl_->run(ts, scheme, faults, config, sink, exec_model);
}

SimulationTrace simulate(const core::TaskSet& ts, Scheme& scheme,
                         const FaultPlan& faults, const SimConfig& config,
                         const ExecTimeModel* exec_model) {
  Simulator sim;
  FullTraceSink sink;
  sim.run(ts, scheme, faults, config, sink, exec_model);
  return sink.take();
}

}  // namespace mkss::sim
