#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <compare>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <tuple>

#include "core/check.hpp"
#include "core/release_timeline.hpp"
#include "sim/trace_sink.hpp"

namespace mkss::sim {

using core::JobOutcome;
using core::TaskIndex;
using core::Ticks;

namespace {

constexpr int kNone = -1;

/// Replica slot of a copy kind: main/optional copies share slot 0, backups
/// use slot 1 (keeps transient-fault draws scheme-independent).
constexpr int slot_of(CopyKind kind) noexcept {
  return kind == CopyKind::kBackup ? 1 : 0;
}

// --- indexed event-core entries -----------------------------------------
//
// All heaps below are vector-backed binary min-heaps driven by
// push_heap/pop_heap with greater<> (the same clearable-arena idiom as the
// deadline queue). Every comparison key embeds a final unique index, so heap
// order is a strict total order and pops are deterministic.

/// Ready-queue entry: the exact copy_precedes() tuple (band, optional rank,
/// task, job, kind), precomputed at admission -- every component is
/// immutable for the copy's lifetime -- plus the copies_ index as the final
/// (never actually tying) component. Packed to 24 bytes so heap sifts move
/// little memory; the comparison order is semantic, not declaration order.
struct ReadyEntry {
  std::uint64_t job{0};
  std::uint32_t rank{0};
  std::uint32_t task{0};
  std::uint32_t idx{0};
  std::uint8_t band{0};
  std::uint8_t kind{0};

  friend bool operator>(const ReadyEntry& a, const ReadyEntry& b) noexcept {
    if (a.band != b.band) return a.band > b.band;
    if (a.rank != b.rank) return a.rank > b.rank;
    if (a.task != b.task) return a.task > b.task;
    if (a.job != b.job) return a.job > b.job;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.idx > b.idx;
  }
};

/// A copy's immutable identity and demand. Its mutable lifecycle state
/// (alive flag, eligible time) lives in the engine's parallel
/// copy_alive_/copy_eligible_ arrays indexed by the same copy seq: the lazy
/// heap-invalidation paths (pending_min, ready_best) touch only those one-
/// and eight-byte lanes instead of striding through 80-byte Copy structs.
struct Copy {
  std::size_t job_idx{0};
  CopyKind kind{CopyKind::kMain};
  ProcessorId proc{kPrimary};
  Band band{Band::kMandatory};
  Ticks remaining{0};
  Ticks deadline{0};  ///< the job's deadline, cached to spare a jobs_ hop
  /// The copy's ready-heap entry, precomputed at admission (every component
  /// is immutable for the copy's lifetime) so make_ready() is a copy, not a
  /// jobs_ hop.
  ReadyEntry entry;
  double frequency{1.0};
  std::size_t rec{0};  ///< index of this copy's CopyRecord (tracing runs only)
};

struct LiveJob {
  core::Job job;
  bool mandatory{false};
  bool executed_optional{false};
  bool counted{true};
  bool resolved{false};
  JobOutcome outcome{JobOutcome::kMissed};
  Ticks resolved_at{0};
  int copy_in_slot[2]{kNone, kNone};
  bool slot_failed[2]{false, false};
};

/// (time, index) entry of the release calendar (index == task), the
/// eligibility heaps (index == copy) and the optional prune heap, where
/// `time` is the copy's latest feasible start deadline - remaining.
/// 32-bit indices keep the entry at 16 bytes; a run cannot hold 2^32 copies
/// (each one costs >50 bytes of arena) or 2^32 tasks.
struct TimedEntry {
  Ticks time{0};
  std::uint32_t idx{0};
  friend auto operator<=>(const TimedEntry&, const TimedEntry&) = default;
};

/// One same-instant release drained from the calendar, between the batch
/// job-materialization phase of process_releases and its scheme phase.
struct PendingRelease {
  std::uint32_t task{0};
  std::uint64_t j{0};         ///< 1-based instance number
  std::size_t job_idx{0};     ///< the materialized LiveJob's jobs_ index
};

template <typename T>
void heap_push(std::vector<T>& heap, const T& entry) {
  heap.push_back(entry);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

template <typename T>
void heap_pop(std::vector<T>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  heap.pop_back();
}

/// MKSS_TIMELINE resolution, parsed once per process (mirrors MKSS_SIMD):
/// -1 = unset, otherwise a TimelineMode value that overrides every run.
int env_timeline_mode() noexcept {
  static const int resolved = [] {
    const char* env = std::getenv("MKSS_TIMELINE");
    if (env == nullptr || *env == '\0') return -1;
    std::string v(env);
    for (char& c : v) c = static_cast<char>(std::tolower(c));
    if (v == "heap" || v == "off") return static_cast<int>(TimelineMode::kHeap);
    if (v == "cached" || v == "on") {
      return static_cast<int>(TimelineMode::kCached);
    }
    if (v == "auto") return static_cast<int>(TimelineMode::kAuto);
    std::fprintf(stderr,
                 "mkss: MKSS_TIMELINE='%s' not recognized "
                 "(auto|cached|heap); ignoring\n",
                 env);
    return -1;
  }();
  return resolved;
}

std::atomic<int> forced_timeline_mode{-1};

}  // namespace

TimelineMode resolved_timeline_mode(const SimConfig& config) noexcept {
  const int forced = forced_timeline_mode.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<TimelineMode>(forced);
  const int env = env_timeline_mode();
  if (env >= 0) return static_cast<TimelineMode>(env);
  return config.timeline;
}

void set_forced_timeline_mode(TimelineMode mode) noexcept {
  forced_timeline_mode.store(static_cast<int>(mode),
                             std::memory_order_relaxed);
}

void clear_forced_timeline_mode() noexcept {
  forced_timeline_mode.store(-1, std::memory_order_relaxed);
}

/// The engine proper. Every vector below is an arena: reset (cleared, never
/// shrunk) at the top of run(), so repeated runs reuse the same buffers.
struct Simulator::Impl {
  void run(const core::TaskSet& ts, Scheme& scheme, const FaultPlan& faults,
           const SimConfig& config, TraceSink& sink,
           const ExecTimeModel* exec_model);

  // --- event processing -----------------------------------------------
  Ticks next_event_time();
  void process_completions();
  void apply_permanent_fault();
  void process_deadlines();
  void fire_tail_deadlines();
  bool release_due() const;
  void process_releases();
  void dispatch(ProcessorId p);

  // --- indexed event core ----------------------------------------------
  void make_ready(std::size_t idx);
  void push_prune(std::size_t idx);
  void wake_eligible(ProcessorId p);
  void prune_pass(ProcessorId p);
  int ready_best(ProcessorId p, bool sleeping);
  Ticks pending_min(std::vector<TimedEntry>& heap);
  bool need_dispatch(ProcessorId p) const;
  void retime_release_top(Ticks time);

  // --- scan oracle (SimConfig::cross_check) -----------------------------
  Ticks scan_next_event_time() const;
  Ticks scan_next_mandatory_activity(ProcessorId p) const;
  void check_dispatch_oracle(ProcessorId p, bool sleeping, int best) const;
  void check_skip_oracle(ProcessorId p) const;

  // --- mechanics --------------------------------------------------------
  void admit_copy(std::size_t job_idx, const CopySpec& spec);
  void complete_copy(int idx);
  void kill_copy(int idx, CopyEnd reason);
  void resolve(std::size_t job_idx, JobOutcome outcome);
  void stop_running(ProcessorId p, Ticks end);
  void start_running(ProcessorId p, int idx);
  bool copy_precedes(const Copy& a, const Copy& b) const;
  Ticks next_mandatory_activity(ProcessorId p);

  void push_deadline(Ticks deadline, std::size_t job_idx);
  void pop_deadline();

  // Per-run bindings (valid only inside run()).
  const core::TaskSet* ts_{nullptr};
  Scheme* scheme_{nullptr};
  const FaultPlan* faults_{nullptr};
  SimConfig config_;
  const ExecTimeModel* exec_model_{nullptr};
  TraceSink* sink_{nullptr};
  SimulationTrace* trace_{nullptr};  ///< null on lean (stats-only) runs

  Ticks now_{0};
  std::vector<Copy> copies_;
  /// Per-copy lifecycle state, parallel to copies_ (SoA): the lazy heap
  /// invalidation in pending_min()/ready_best() and the scan oracles touch
  /// these narrow lanes instead of the Copy structs.
  std::vector<std::uint8_t> copy_alive_;
  std::vector<Ticks> copy_eligible_;
  std::vector<LiveJob> jobs_;
  /// Per-processor admission log (append-only within a run): every copy ever
  /// admitted to the processor, dead or alive. Consumed by the permanent-
  /// fault handover and by the scan oracle; the hot path never walks it.
  std::vector<std::vector<std::size_t>> live_;
  /// True when this run has a consumer for live_ (a pending permanent fault
  /// or the scan oracle). Fault-free production runs skip the log entirely.
  bool track_live_{true};
  std::vector<Ticks> next_release_;    // per task
  std::vector<std::uint64_t> next_j_;  // per task, 1-based next instance
  /// Flat per-task parameter mirrors (structure-of-arrays): the release hot
  /// path reads three Ticks per pop instead of striding through 64-byte Task
  /// structs whose name strings waste most of each cache line.
  std::vector<Ticks> task_period_;
  std::vector<Ticks> task_deadline_;  // relative
  std::vector<Ticks> task_wcet_;
  /// Same-instant releases drained from the calendar this event, in
  /// ascending task order (see process_releases).
  std::vector<PendingRelease> release_batch_;
  // (deadline, job index) min-heap via push_heap/pop_heap with greater<>,
  // exactly the order a std::priority_queue would produce, but clearable.
  // Unused on implicit-deadline runs, where deadline firing folds into the
  // release path (see process_releases).
  std::vector<std::pair<Ticks, std::size_t>> deadlines_;
  /// True when every task has D == P. Then job j's deadline coincides with
  /// job j+1's release (or with the horizon for the final instance), so
  /// deadline firing piggybacks on the release calendar: no deadline heap
  /// traffic and no separate deadline candidate in next_event_time(). The
  /// event set is provably unchanged -- every counted deadline instant
  /// before the horizon is also a release instant of the same task, and a
  /// deadline exactly at the horizon never drives an in-loop event.
  bool implicit_deadlines_{false};
  /// Per task: live index of the most recent release whose deadline has not
  /// fired yet (implicit-deadline runs only), or -1.
  std::vector<std::int64_t> last_released_;

  // --- release timeline (docs/architecture.md, "Release-timeline cache") --
  /// The shared SoA release arena this run walks instead of popping the
  /// calendar heap, or null on heap-mode runs. Points at
  /// SimConfig::timeline_data when one is attached, else at tl_local_.
  const core::ReleaseTimeline* tl_{nullptr};
  /// Locally built arena for kCached runs without an attached timeline
  /// (direct-engine callers, forced-mode tests); reused across runs.
  core::ReleaseTimeline tl_local_;
  /// Next unconsumed arena entry; entries before it are released already.
  std::size_t tl_cursor_{0};

  // --- indexed event core (docs/architecture.md, "Indexed event core") ---
  /// (next release, task) calendar; tasks whose next release reaches the
  /// horizon leave the calendar for the rest of the run. On timeline runs
  /// the calendar is maintained only under cross_check_, where it runs in
  /// lock-step as the heap oracle of the cursor walk.
  std::vector<TimedEntry> release_cal_;
  /// Per processor: copies admitted with a future eligible time (postponed
  /// backups theta, dual-priority promotions Y), split by band so the DPD
  /// sleep decision can query mandatory activity alone. Entries are
  /// immutable; dead copies are discarded lazily on peek.
  std::vector<std::vector<TimedEntry>> pending_mand_;
  std::vector<std::vector<TimedEntry>> pending_opt_;
  /// Per processor: eligible copies ordered by the dispatch priority tuple.
  /// The running copy stays in the heap; dead entries are discarded lazily.
  std::vector<std::vector<ReadyEntry>> ready_;
  /// Per processor: eligible *optional* copies keyed by their latest
  /// feasible start (deadline - remaining). An entry is current only while
  /// the copy has not executed since it was pushed; executing re-indexes the
  /// copy on preemption, and a completed/killed copy invalidates lazily.
  std::vector<std::vector<TimedEntry>> prune_;
  std::vector<std::size_t> prune_scratch_;
  /// Set when something that can change processor p's dispatch choice
  /// mutated this event; cleared when dispatch(p) runs. The rules are
  /// deliberately tight: a ready admission dirties only when it outranks the
  /// running copy or the processor is idle (a lower-priority arrival is a
  /// dispatch no-op under fixed priorities); a kill dirties only when the
  /// victim was running or the processor is idle (killing a parked copy
  /// below the running one cannot move the choice, but on an idle DPD
  /// processor it can move the sleep-commit horizon); pending (future-
  /// eligible) admissions never dirty -- their eligibility instant is a
  /// need_dispatch() trigger, and new arrivals only move the mandatory-
  /// activity minimum down, never invalidating a no-sleep decision.
  /// Completions and the permanent fault always dirty. Together with the
  /// time-driven conditions in need_dispatch() this lets quiet events skip
  /// dispatch entirely -- the skip-soundness argument lives in
  /// docs/architecture.md and is enforced by check_skip_oracle() under
  /// SimConfig::cross_check.
  std::vector<std::uint8_t> dirty_;
  bool cross_check_{false};

  /// Processor count of the current run (== config_.platform.num_procs()).
  /// Every per-processor vector above and below is sized to it in run().
  ProcessorId nproc_{2};
  std::vector<std::uint8_t> proc_alive_;
  std::vector<int> running_;
  /// Priority key of the running copy (valid while running_[p] != kNone):
  /// lets make_ready() decide in O(1) whether a fresh admission outranks the
  /// running copy and therefore needs a dispatch this event.
  std::vector<ReadyEntry> running_entry_;
  std::vector<Ticks> run_start_;
  /// Absolute completion instant of the running copy (valid while
  /// running_[p] != kNone). The running copy's `remaining` field is stale
  /// between start_running() and stop_running() -- stop_running materializes
  /// it from this cache -- which removes the per-event advance loop the
  /// legacy engine used to decrement remaining at every event.
  std::vector<Ticks> completion_at_;
  std::vector<Ticks> sleep_until_;

  std::optional<PermanentFault> pf_;
  bool pf_applied_{false};

  SimStats stats_;
  std::vector<Ticks> death_time_;
  std::vector<Ticks> busy_time_;
  std::vector<std::uint64_t> last_resolved_j_;  // per task, outcome-order check
  std::vector<std::size_t> lost_scratch_;       // permanent-fault handover
};

void Simulator::Impl::push_deadline(Ticks deadline, std::size_t job_idx) {
  deadlines_.emplace_back(deadline, job_idx);
  std::push_heap(deadlines_.begin(), deadlines_.end(), std::greater<>{});
}

void Simulator::Impl::pop_deadline() {
  std::pop_heap(deadlines_.begin(), deadlines_.end(), std::greater<>{});
  deadlines_.pop_back();
}

void Simulator::Impl::run(const core::TaskSet& ts, Scheme& scheme,
                          const FaultPlan& faults, const SimConfig& config,
                          TraceSink& sink, const ExecTimeModel* exec_model) {
  if (config.horizon <= 0) {
    throw std::invalid_argument("SimConfig::horizon must be positive");
  }
  if (config.platform.num_procs() < 1 || config.platform.num_procs() > 255) {
    throw std::invalid_argument(
        "SimConfig::platform must have 1 to 255 processors");
  }
  ts_ = &ts;
  scheme_ = &scheme;
  faults_ = &faults;
  config_ = config;
  exec_model_ = exec_model;
  sink_ = &sink;
  cross_check_ = config.cross_check;

  // Reset the arenas; every clear()/assign() keeps its buffer's capacity.
  // The per-processor arenas resize only when the platform size changes
  // between runs (a platform switch is a cold path; repeated runs on one
  // platform reuse every inner buffer).
  const std::size_t n = ts.size();
  nproc_ = static_cast<ProcessorId>(config.platform.num_procs());
  now_ = 0;
  copies_.clear();
  copy_alive_.clear();
  copy_eligible_.clear();
  jobs_.clear();
  live_.resize(nproc_);
  pending_mand_.resize(nproc_);
  pending_opt_.resize(nproc_);
  ready_.resize(nproc_);
  prune_.resize(nproc_);
  dirty_.resize(nproc_);
  proc_alive_.resize(nproc_);
  running_.resize(nproc_);
  running_entry_.resize(nproc_);
  run_start_.resize(nproc_);
  completion_at_.resize(nproc_);
  sleep_until_.resize(nproc_);
  death_time_.resize(nproc_);
  busy_time_.resize(nproc_);
  for (auto& lv : live_) lv.clear();
  next_release_.assign(n, 0);
  next_j_.assign(n, 1);
  deadlines_.clear();
  task_period_.resize(n);
  task_deadline_.resize(n);
  task_wcet_.resize(n);
  implicit_deadlines_ = true;
  for (std::size_t i = 0; i < n; ++i) {
    const core::Task& t = ts[i];
    task_period_[i] = t.period;
    task_deadline_[i] = t.deadline;
    task_wcet_[i] = t.wcet;
    if (t.deadline != t.period) implicit_deadlines_ = false;
  }
  last_released_.assign(n, -1);

  // Release discovery: walk a shared (or locally built) timeline arena, or
  // run the calendar heap. Under cross_check the heap runs either way -- on
  // timeline runs in lock-step, as the oracle of the cursor walk.
  tl_ = nullptr;
  tl_cursor_ = 0;
  const TimelineMode tl_mode = resolved_timeline_mode(config);
  if (tl_mode != TimelineMode::kHeap) {
    if (config.timeline_data != nullptr) {
      tl_ = config.timeline_data;
    } else if (tl_mode == TimelineMode::kCached) {
      core::build_release_timeline(ts, config.horizon, tl_local_);
      tl_ = &tl_local_;
    }
  }
  if (tl_ != nullptr) {
    MKSS_CHECK(tl_->horizon == config.horizon && tl_->num_tasks == n,
               "attached release timeline was built for a different horizon "
               "or task count");
  }
  release_cal_.clear();
  if (tl_ == nullptr || cross_check_) {
    for (std::size_t i = 0; i < n; ++i) {
      // (0, 0), (0, 1), ... is already a valid min-heap: equal times,
      // ascending task index.
      release_cal_.push_back(TimedEntry{0, static_cast<std::uint32_t>(i)});
    }
  }
  for (std::size_t p = 0; p < nproc_; ++p) {
    pending_mand_[p].clear();
    pending_opt_[p].clear();
    ready_[p].clear();
    prune_[p].clear();
    proc_alive_[p] = true;
    running_[p] = kNone;
    run_start_[p] = 0;
    completion_at_[p] = 0;
    sleep_until_[p] = 0;
    dirty_[p] = true;
    death_time_[p] = core::kNever;
    busy_time_[p] = 0;
  }
  pf_.reset();
  pf_applied_ = false;
  stats_ = SimStats{};
  last_resolved_j_.assign(n, 0);

  sink.begin_run(ts, config);
  trace_ = sink.trace_buffer();
  if (trace_) {
    trace_->horizon = config_.horizon;
    trace_->segments.clear();
    trace_->jobs.clear();
    trace_->copies.clear();
    trace_->outcomes_per_task.resize(n);
    for (auto& outcomes : trace_->outcomes_per_task) outcomes.clear();
    trace_->death_time.assign(nproc_, core::kNever);
    trace_->busy_time.assign(nproc_, 0);
    trace_->stats = SimStats{};
  }

  scheme_->bind_platform(config_.platform);
  scheme_->setup(ts);
  pf_ = faults.permanent();
  if (pf_ && (pf_->time >= config_.horizon || pf_->proc >= nproc_)) pf_.reset();
  // The admission log only has consumers when a permanent fault can hand
  // copies over or the scan oracle walks it; otherwise skip its upkeep.
  track_live_ = cross_check_ || pf_.has_value();

  // Time 0: an instantaneous permanent fault and the first releases happen
  // before the first dispatch.
  if (pf_ && !pf_applied_ && pf_->time == 0) apply_permanent_fault();
  process_releases();
  for (ProcessorId p = 0; p < nproc_; ++p) dispatch(p);

  // Cooperative wall-clock watchdog: sampled at event 1 and then every 512
  // events, so even a sub-millisecond budget fires deterministically on the
  // first event while the steady-clock call stays off the per-event hot path.
  const bool watchdog = config_.wall_clock_budget_ms > 0;
  const auto watchdog_start = watchdog ? std::chrono::steady_clock::now()
                                       : std::chrono::steady_clock::time_point{};

  while (true) {
    const Ticks t = next_event_time();
    now_ = std::min(t, config_.horizon);
    if (t >= config_.horizon) break;
    ++stats_.sim_events;
    if (watchdog && (stats_.sim_events & 511) == 1) {
      const std::chrono::duration<double, std::milli> elapsed =
          std::chrono::steady_clock::now() - watchdog_start;
      if (elapsed.count() > config_.wall_clock_budget_ms) {
        throw RunTimeoutError(
            "run exceeded its wall-clock budget of " +
            std::to_string(config_.wall_clock_budget_ms) + " ms after " +
            std::to_string(stats_.sim_events) + " events (sim time " +
            core::format_ticks(now_) + " of " +
            core::format_ticks(config_.horizon) + ")");
      }
    }

    process_completions();
    if (pf_ && !pf_applied_ && pf_->time == now_) apply_permanent_fault();
    if (!implicit_deadlines_) process_deadlines();
    // Most events are completions/wake-ups with no release due; skip the
    // call on those. Under cross_check the call is unconditional so the
    // cursor-vs-calendar lock-step checks run at every event.
    if (cross_check_ || release_due()) process_releases();
    // Quiet processors skip dispatch entirely: nothing that could change
    // their choice happened this event. Under cross_check the skip itself is
    // proven sound against the scan oracle.
    for (ProcessorId p = 0; p < nproc_; ++p) {
      if (need_dispatch(p)) {
        dispatch(p);
      } else if (cross_check_) {
        check_skip_oracle(p);
      }
    }
  }

  // Horizon edge: copies finishing exactly at the horizon complete, then
  // deadlines falling exactly on the horizon fire, then open segments clip.
  process_completions();
  if (implicit_deadlines_) {
    fire_tail_deadlines();
  } else {
    process_deadlines();
  }
  for (ProcessorId p = 0; p < nproc_; ++p) stop_running(p, config_.horizon);

  if (trace_) {
    // Copies still alive at the horizon close their lifecycle records here.
    for (std::size_t i = 0; i < copies_.size(); ++i) {
      if (copy_alive_[i]) trace_->copies[copies_[i].rec].ended = config_.horizon;
    }

    trace_->jobs.reserve(jobs_.size());
    for (const LiveJob& lj : jobs_) {
      JobRecord rec;
      rec.job = lj.job;
      rec.mandatory = lj.mandatory;
      rec.executed_optional = lj.executed_optional;
      rec.counted = lj.counted;
      rec.resolved = lj.resolved;
      rec.outcome = lj.outcome;
      rec.resolved_at = lj.resolved_at;
      rec.main_transient_fault = lj.slot_failed[0];
      rec.backup_transient_fault = lj.slot_failed[1];
      trace_->jobs.push_back(rec);
    }
    trace_->death_time = death_time_;
    trace_->busy_time = busy_time_;
    trace_->stats = stats_;
  }

  RunFacts facts;
  facts.horizon = config_.horizon;
  facts.death_time = death_time_;
  facts.busy_time = busy_time_;
  facts.stats = &stats_;
  sink.end_run(facts);
}

/// Minimum time of the pending heap's live entries; dead copies and entries
/// staled by a fault-detection promotion (the copy's eligible time was
/// rewritten and it is already ready) peel off lazily (each entry is popped
/// at most once over the whole run).
Ticks Simulator::Impl::pending_min(std::vector<TimedEntry>& heap) {
  while (!heap.empty() && (!copy_alive_[heap.front().idx] ||
                           copy_eligible_[heap.front().idx] !=
                               heap.front().time)) {
    heap_pop(heap);
  }
  return heap.empty() ? core::kNever : heap.front().time;
}

/// True when dispatch(p) could change anything at the current instant:
/// a tracked mutation happened this event, a committed DPD sleep just
/// expired, a pending copy's eligible time arrived, or an eligible optional
/// copy's latest feasible start has passed (prune due). Heap fronts are read
/// without discarding dead entries -- a dead front can only force a spurious
/// (harmless) dispatch, never mask a needed one, because every live copy's
/// trigger time is itself a front candidate no later than its due instant.
bool Simulator::Impl::need_dispatch(ProcessorId p) const {
  if (dirty_[p]) return true;
  if (sleep_until_[p] != 0 && sleep_until_[p] <= now_) return true;
  if (!pending_mand_[p].empty() && pending_mand_[p].front().time <= now_) {
    return true;
  }
  if (!pending_opt_[p].empty() && pending_opt_[p].front().time <= now_) {
    return true;
  }
  if (!prune_[p].empty() && prune_[p].front().time < now_) return true;
  return false;
}

/// Re-keys the release calendar's root to `time` (the releasing task's next
/// instance) and restores the heap with a single sift-down -- one traversal
/// instead of the pop+push pair.
void Simulator::Impl::retime_release_top(Ticks time) {
  auto& h = release_cal_;
  const TimedEntry entry{time, h.front().idx};
  std::size_t i = 0;
  const std::size_t sz = h.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= sz) break;
    if (child + 1 < sz && h[child + 1] < h[child]) ++child;
    if (!(h[child] < entry)) break;
    h[i] = h[child];
    i = child;
  }
  h[i] = entry;
}

Ticks Simulator::Impl::next_event_time() {
  // Constant-size min over the cached candidates: next release, the two
  // running-copy completions, sleep expiries, pending eligibility minima,
  // the earliest deadline and the permanent fault.
  Ticks t = core::kNever;
  if (tl_ != nullptr) {
    if (tl_cursor_ < tl_->release.size()) {
      t = std::min(t, tl_->release[tl_cursor_]);
    }
  } else if (!release_cal_.empty()) {
    t = std::min(t, release_cal_.front().time);
  }
  for (ProcessorId p = 0; p < nproc_; ++p) {
    if (running_[p] != kNone) t = std::min(t, completion_at_[p]);
    if (sleep_until_[p] > now_) t = std::min(t, sleep_until_[p]);
    if (!pending_mand_[p].empty()) t = std::min(t, pending_min(pending_mand_[p]));
    if (!pending_opt_[p].empty()) t = std::min(t, pending_min(pending_opt_[p]));
  }
  // Implicit-deadline runs keep the deadline heap empty: every counted
  // deadline before the horizon is simultaneously a release candidate of the
  // same task, and one exactly at the horizon never drives an in-loop event.
  if (!deadlines_.empty()) t = std::min(t, deadlines_.front().first);
  if (pf_ && !pf_applied_) t = std::min(t, pf_->time);
  if (cross_check_) {
    MKSS_CHECK(t == scan_next_event_time(),
               "indexed next_event_time diverged from the scan oracle at " +
                   core::format_ticks(now_));
  }
  MKSS_CHECK(t > now_ || t == core::kNever,
             "next event time must advance beyond " +
                 core::format_ticks(now_));
  return t;
}

/// The legacy O(tasks + live copies) scan, retained as the cross-check
/// oracle: recomputes the next event time from the raw per-task release
/// state and the per-processor admission logs.
Ticks Simulator::Impl::scan_next_event_time() const {
  Ticks t = core::kNever;
  for (std::size_t i = 0; i < ts_->size(); ++i) {
    if (next_release_[i] < config_.horizon) t = std::min(t, next_release_[i]);
  }
  for (ProcessorId p = 0; p < nproc_; ++p) {
    if (running_[p] != kNone) t = std::min(t, completion_at_[p]);
    if (sleep_until_[p] > now_) t = std::min(t, sleep_until_[p]);
    for (const std::size_t idx : live_[p]) {
      if (copy_alive_[idx] && copy_eligible_[idx] > now_) {
        t = std::min(t, copy_eligible_[idx]);
      }
    }
  }
  if (!deadlines_.empty()) t = std::min(t, deadlines_.front().first);
  if (pf_ && !pf_applied_) t = std::min(t, pf_->time);
  return t;
}

void Simulator::Impl::process_completions() {
  for (ProcessorId p = 0; p < nproc_; ++p) {
    const int idx = running_[p];
    if (idx != kNone && completion_at_[p] == now_) complete_copy(idx);
  }
}

void Simulator::Impl::apply_permanent_fault() {
  pf_applied_ = true;
  const ProcessorId dead = pf_->proc;
  proc_alive_[dead] = false;
  death_time_[dead] = now_;
  // The handover target is the lowest-indexed alive processor -- on the dual
  // platform exactly other(dead). Every alive processor's sleep/dispatch
  // state may be affected by rerouted work, so all of them re-dispatch.
  ProcessorId survivor = dead;
  for (ProcessorId p = 0; p < nproc_; ++p) {
    dirty_[p] = true;
    if (survivor == dead && proc_alive_[p]) survivor = p;
  }
  stop_running(dead, now_);
  scheme_->on_permanent_fault(dead, now_);

  // Copies on the dead processor are lost; jobs left with no live copy get a
  // chance to be re-admitted on the survivor.
  lost_scratch_.assign(live_[dead].begin(), live_[dead].end());
  live_[dead].clear();
  // The dead processor's event indexes only reference copies that die right
  // here; drop them wholesale instead of peeling entries lazily.
  pending_mand_[dead].clear();
  pending_opt_[dead].clear();
  ready_[dead].clear();
  prune_[dead].clear();
  for (const std::size_t idx : lost_scratch_) {
    Copy& c = copies_[idx];
    if (!copy_alive_[idx]) continue;
    const Ticks remaining = c.remaining;
    copy_alive_[idx] = 0;
    if (trace_) {
      trace_->copies[c.rec].ended = now_;
      trace_->copies[c.rec].end = CopyEnd::kLostToDeath;
    }
    LiveJob& job = jobs_[c.job_idx];
    job.copy_in_slot[slot_of(c.kind)] = kNone;
    if (job.resolved) continue;
    const int sibling =
        job.copy_in_slot[0] != kNone ? job.copy_in_slot[0] : job.copy_in_slot[1];
    if (sibling != kNone) {
      // Fault detection promotes the surviving copy: postponement (theta, Y)
      // only pays while the lost copy could still succeed, and the recovery
      // analyses assume the backup runs as soon as the failure is known.
      const auto sib = static_cast<std::size_t>(sibling);
      if (copy_alive_[sib] && copy_eligible_[sib] > now_) {
        copy_eligible_[sib] = now_;
        if (trace_) trace_->copies[copies_[sib].rec].eligible = now_;
        make_ready(sib);
      }
      continue;
    }
    if (survivor == dead) {
      // No processor left: the job misses, now or at its deadline event.
      if (now_ >= job.job.deadline || !job.counted) {
        resolve(c.job_idx, JobOutcome::kMissed);
      }
      continue;
    }
    const auto replacement = scheme_->reroute_on_death(job.job, job.mandatory,
                                                       survivor, now_, remaining);
    if (replacement) {
      CopySpec spec = *replacement;
      spec.proc = survivor;  // the scheme cannot resurrect the dead processor
      admit_copy(c.job_idx, spec);
    } else if (now_ >= job.job.deadline || !job.counted) {
      resolve(c.job_idx, JobOutcome::kMissed);
    }
    // Otherwise the job simply misses at its deadline event.
  }
}

void Simulator::Impl::process_deadlines() {
  while (!deadlines_.empty() && deadlines_.front().first <= now_) {
    const std::size_t job_idx = deadlines_.front().second;
    pop_deadline();
    ++stats_.deadline_fires;
    if (!jobs_[job_idx].resolved) {
      resolve(job_idx, JobOutcome::kMissed);
    }
  }
}

/// Implicit-deadline runs: fires the deadline of each task's final released
/// instance at the horizon edge. Such a job's deadline equals its successor
/// release, which is past or at the horizon; it is counted exactly when the
/// deadline lands on the horizon itself -- the same entries the deadline
/// heap would still hold here, all keyed to the same instant.
void Simulator::Impl::fire_tail_deadlines() {
  for (std::size_t i = 0; i < last_released_.size(); ++i) {
    const std::int64_t prev = last_released_[i];
    if (prev < 0) continue;
    LiveJob& pj = jobs_[static_cast<std::size_t>(prev)];
    if (!pj.counted) continue;
    ++stats_.deadline_fires;
    if (!pj.resolved) resolve(static_cast<std::size_t>(prev), JobOutcome::kMissed);
  }
}

/// True when at least one job releases exactly at now_ (the event loop's
/// call-site guard for process_releases).
bool Simulator::Impl::release_due() const {
  if (tl_ != nullptr) {
    return tl_cursor_ < tl_->release.size() &&
           tl_->release[tl_cursor_] == now_;
  }
  return !release_cal_.empty() && release_cal_.front().time == now_;
}

void Simulator::Impl::process_releases() {
  // Phase 1 -- batch job materialization. Drain every same-instant calendar
  // entry (the calendar pops (time, task) in ascending task order within one
  // instant, exactly the order the legacy per-task scan released in) and
  // materialize the released jobs from the flat task arrays: three Ticks
  // loads per pop instead of a 64-byte Task hop. Calendar retiming order
  // within the instant cannot change later pops -- TimedEntry ordering is a
  // strict total order, so the pop sequence is a pure function of the entry
  // set. Phase 2 runs the stateful per-release work (deadline fold, scheme
  // classification, admissions) over the batch in the same ascending task
  // order, so every observable mutation happens in the legacy sequence.
  release_batch_.clear();
  if (tl_ != nullptr) {
    // Timeline cursor walk: same-instant entries come straight out of the
    // SoA arena in (release, task) order -- the calendar heap's pop order by
    // construction -- with release, absolute deadline and instance number
    // already materialized. Under cross_check the retained calendar pops in
    // lock-step and must agree entry for entry.
    const Ticks* rel = tl_->release.data();
    const std::uint32_t* task_lane = tl_->task.data();
    const std::uint64_t* seq_lane = tl_->seq.data();
    const Ticks* deadline_lane = tl_->deadline.data();
    const std::size_t sz = tl_->release.size();
    while (tl_cursor_ < sz && rel[tl_cursor_] == now_) {
      const std::uint32_t i = task_lane[tl_cursor_];
      const std::uint64_t j = seq_lane[tl_cursor_];
      const Ticks deadline = deadline_lane[tl_cursor_];
      ++tl_cursor_;
      if (cross_check_) {
        MKSS_CHECK(!release_cal_.empty() &&
                       release_cal_.front().time == now_ &&
                       release_cal_.front().idx == i,
                   "timeline cursor diverged from the calendar heap at " +
                       core::format_ticks(now_));
        MKSS_CHECK(j == next_j_[i] && deadline == now_ + task_deadline_[i] &&
                       now_ == static_cast<Ticks>(j - 1) * task_period_[i],
                   "timeline entry of " +
                       core::to_string(core::JobId{i, j}) +
                       " disagrees with the per-task release state");
        next_j_[i] = j + 1;
        next_release_[i] += task_period_[i];
        if (next_release_[i] < config_.horizon) {
          retime_release_top(next_release_[i]);
        } else {
          heap_pop(release_cal_);
        }
      }
      Ticks exec = task_wcet_[i];
      if (exec_model_ != nullptr) {
        exec = std::clamp<Ticks>(
            exec_model_->actual_exec(core::JobId{i, j}, exec), 1, exec);
      }
      jobs_.push_back(LiveJob{});
      const std::size_t job_idx = jobs_.size() - 1;
      LiveJob& lj = jobs_[job_idx];
      lj.job = core::Job{core::JobId{i, j}, now_, deadline, exec};
      lj.counted = deadline <= config_.horizon;
      release_batch_.push_back(PendingRelease{i, j, job_idx});
    }
    if (cross_check_) {
      MKSS_CHECK(release_cal_.empty() || release_cal_.front().time != now_,
                 "calendar heap holds a release the timeline cursor missed "
                 "at " + core::format_ticks(now_));
    }
  } else {
    while (!release_cal_.empty() && release_cal_.front().time == now_) {
      const auto i = release_cal_.front().idx;
      const std::uint64_t j = next_j_[i];
      const Ticks release = static_cast<Ticks>(j - 1) * task_period_[i];
      MKSS_CHECK(release == now_,
                 "release of " + core::to_string(core::JobId{i, j}) +
                     " does not match the current event time");
      Ticks exec = task_wcet_[i];
      if (exec_model_ != nullptr) {
        exec = std::clamp<Ticks>(
            exec_model_->actual_exec(core::JobId{i, j}, exec), 1, exec);
      }
      jobs_.push_back(LiveJob{});
      const std::size_t job_idx = jobs_.size() - 1;
      LiveJob& lj = jobs_[job_idx];
      lj.job = core::Job{core::JobId{i, j}, release,
                         release + task_deadline_[i], exec};
      lj.counted = lj.job.deadline <= config_.horizon;
      release_batch_.push_back(PendingRelease{i, j, job_idx});

      next_j_[i] = j + 1;
      next_release_[i] += task_period_[i];
      if (next_release_[i] < config_.horizon) {
        retime_release_top(next_release_[i]);
      } else {
        heap_pop(release_cal_);  // the task leaves the calendar for good
      }
    }
  }

  // Phase 2 -- deadline fold + scheme + admissions, legacy order.
  for (const PendingRelease& rel : release_batch_) {
    const TaskIndex i = rel.task;
    if (implicit_deadlines_) {
      // D == P: the predecessor instance's deadline is exactly this release
      // instant. Firing it here -- before the scheme classifies the new
      // instance -- reproduces the deadline-heap order: outcome first, then
      // on_release sees the updated (m,k)-history. Cross-task interleaving
      // within one instant is not trace-visible (outcome streams and scheme
      // state are per-task).
      const std::int64_t prev = last_released_[i];
      if (prev >= 0) {
        LiveJob& pj = jobs_[static_cast<std::size_t>(prev)];
        MKSS_CHECK(pj.job.deadline == now_,
                   "implicit-deadline fold out of step with the calendar");
        ++stats_.deadline_fires;
        if (!pj.resolved) {
          resolve(static_cast<std::size_t>(prev), JobOutcome::kMissed);
        }
      }
    }

    LiveJob& lj = jobs_[rel.job_idx];
    ReleaseDecision decision = scheme_->on_release(i, rel.j, now_);
    lj.mandatory = decision.mandatory;
    lj.executed_optional = !decision.mandatory && !decision.copies.empty();

    ++stats_.jobs_released;
    if (decision.mandatory) {
      ++stats_.mandatory_jobs;
    } else if (!decision.copies.empty()) {
      ++stats_.optional_selected;
    } else {
      ++stats_.optional_skipped;
    }

    for (const CopySpec& spec : decision.copies) {
      admit_copy(rel.job_idx, spec);
    }
    if (implicit_deadlines_) {
      last_released_[i] = static_cast<std::int64_t>(rel.job_idx);
    } else if (lj.counted) {
      push_deadline(lj.job.deadline, rel.job_idx);
    }
  }
}

/// Enters an eligible copy into the dispatch indexes: the priority-ordered
/// ready heap, plus the prune heap when it is optional-band work whose
/// feasibility has to be watched.
void Simulator::Impl::make_ready(std::size_t idx) {
  const Copy& c = copies_[idx];
  // The priority entry was precomputed at admission (all components are
  // immutable for the copy's lifetime).
  const ReadyEntry& entry = c.entry;
  // Only an arrival that outranks the running copy (or lands on an idle
  // processor) can change the dispatch choice this event.
  if (running_[c.proc] == kNone || running_entry_[c.proc] > entry) {
    dirty_[c.proc] = true;
  }
  heap_push(ready_[c.proc], entry);
  if (c.band == Band::kOptional) push_prune(idx);
}

void Simulator::Impl::push_prune(std::size_t idx) {
  const Copy& c = copies_[idx];
  heap_push(prune_[c.proc], TimedEntry{c.deadline - c.remaining,
                                       static_cast<std::uint32_t>(idx)});
}

/// Promotes pending copies whose eligible time has arrived (postponed backup
/// releases theta, dual-priority promotions Y) into the ready indexes.
void Simulator::Impl::wake_eligible(ProcessorId p) {
  for (auto* pending : {&pending_mand_[p], &pending_opt_[p]}) {
    while (!pending->empty() && pending->front().time <= now_) {
      const TimedEntry entry = pending->front();
      heap_pop(*pending);
      const std::size_t idx = entry.idx;
      if (!copy_alive_[idx]) continue;
      // A fault-detection promotion rewrites `eligible` and readies the copy
      // directly; its original pending entry is stale and must not re-ready.
      if (copy_eligible_[idx] != entry.time) continue;
      ++stats_.eligibility_wakeups;
      make_ready(idx);
    }
  }
}

/// Drops every eligible optional copy that can no longer meet its deadline
/// (the paper's "O11 will not be invoked at all"), exactly when the legacy
/// scan would have: at the first dispatch with now > deadline - remaining.
///
/// An entry is current iff its key still equals the copy's latest feasible
/// start; a copy that executed since the push is either running (feasible by
/// construction: now + remaining is invariant while it runs) or was
/// re-indexed on preemption, so stale entries are simply discarded. Pruning
/// applies in ascending admission order == per-task job order, which keeps
/// resolve()'s outcome streams ordered; cross-task order within one instant
/// is not trace-visible (`ended`/`end` are per-copy fields and outcome
/// streams are per-task).
void Simulator::Impl::prune_pass(ProcessorId p) {
  auto& heap = prune_[p];
  if (heap.empty() || heap.front().time >= now_) return;  // common fast path
  prune_scratch_.clear();
  while (!heap.empty() && heap.front().time < now_) {
    const TimedEntry entry = heap.front();
    heap_pop(heap);
    const Copy& c = copies_[entry.idx];
    if (!copy_alive_[entry.idx]) continue;
    // The running copy's remaining is stale (completion_at_ carries it) but
    // it needs no check either way: a running optional is feasible by
    // construction -- now + remaining is invariant while it runs -- so the
    // legacy scan always found its current key >= now and skipped it.
    if (running_[p] == static_cast<int>(entry.idx)) continue;
    if (c.deadline - c.remaining != entry.time) continue;
    prune_scratch_.push_back(entry.idx);
  }
  std::sort(prune_scratch_.begin(), prune_scratch_.end());
  for (const std::size_t idx : prune_scratch_) {
    Copy& c = copies_[idx];
    if (!copy_alive_[idx]) continue;
    LiveJob& job = jobs_[c.job_idx];
    // Can no longer finish in time: never invoke / abandon (energy already
    // spent stays spent).
    kill_copy(static_cast<int>(idx), CopyEnd::kAbandoned);
    if (!job.resolved && job.copy_in_slot[0] == kNone &&
        job.copy_in_slot[1] == kNone) {
      resolve(c.job_idx, JobOutcome::kMissed);
    }
  }
}

/// Highest-priority eligible copy on p, or kNone. Dead entries peel off the
/// heap top lazily; the mandatory band sorts strictly first, so a sleeping
/// processor (which ignores optional work) only has to look at the top.
int Simulator::Impl::ready_best(ProcessorId p, bool sleeping) {
  auto& heap = ready_[p];
  while (!heap.empty() && !copy_alive_[heap.front().idx]) {
    heap_pop(heap);
    ++stats_.dispatch_pops;
  }
  if (heap.empty()) return kNone;
  const ReadyEntry& top = heap.front();
  if (sleeping && static_cast<Band>(top.band) == Band::kOptional) return kNone;
  return static_cast<int>(top.idx);
}

void Simulator::Impl::admit_copy(std::size_t job_idx, const CopySpec& spec) {
  LiveJob& job = jobs_[job_idx];
  MKSS_CHECK(spec.proc < nproc_, "admit_copy: processor outside the platform");
  const int slot = slot_of(spec.kind);
  if (job.copy_in_slot[slot] != kNone) {
    throw std::logic_error("admit_copy: replica slot already occupied");
  }
  const std::size_t idx = copies_.size();
  Copy& c = copies_.emplace_back();
  c.job_idx = job_idx;
  c.kind = spec.kind;
  c.proc = spec.proc;
  if (!proc_alive_[c.proc]) {
    // Placement on a dead processor falls through to the lowest-indexed
    // alive one (on the dual platform: the other processor).
    for (ProcessorId p = 0; p < nproc_; ++p) {
      if (proc_alive_[p]) {
        c.proc = p;
        break;
      }
    }
  }
  c.band = spec.band;
  const Ticks eligible = std::max(spec.eligible, now_);
  // DVS: execution stretches to C / f at reduced frequency. Clamp to a sane
  // range; a frequency of exactly 1 keeps the integer WCET untouched.
  c.frequency = std::clamp(spec.frequency, 0.05, 1.0);
  c.remaining = c.frequency == 1.0
                    ? job.job.exec
                    : static_cast<Ticks>(std::llround(
                          static_cast<double>(job.job.exec) / c.frequency));
  c.deadline = job.job.deadline;
  // Precompute the ready-heap entry (the copy_precedes() priority tuple plus
  // the copies_ index this copy takes).
  c.entry.job = job.job.id.job;
  c.entry.rank = spec.rank;
  c.entry.task = static_cast<std::uint32_t>(job.job.id.task);
  c.entry.idx = static_cast<std::uint32_t>(idx);
  c.entry.band = static_cast<std::uint8_t>(spec.band);
  c.entry.kind = static_cast<std::uint8_t>(spec.kind);

  if (trace_) {
    CopyRecord rec;
    rec.job = job.job.id;
    rec.kind = c.kind;
    rec.proc = c.proc;
    rec.band = c.band;
    rec.admitted = now_;
    rec.eligible = eligible;
    rec.work = c.remaining;
    rec.frequency = c.frequency;
    c.rec = trace_->copies.size();
    trace_->copies.push_back(rec);
  }

  copy_alive_.push_back(1);
  copy_eligible_.push_back(eligible);
  job.copy_in_slot[slot] = static_cast<int>(idx);
  if (track_live_) live_[c.proc].push_back(idx);
  if (eligible > now_) {
    auto& pending = c.band == Band::kMandatory ? pending_mand_[c.proc]
                                               : pending_opt_[c.proc];
    heap_push(pending, TimedEntry{eligible, static_cast<std::uint32_t>(idx)});
  } else {
    make_ready(idx);
  }
  if (spec.kind == CopyKind::kBackup) ++stats_.backups_created;
}

void Simulator::Impl::complete_copy(int idx) {
  Copy& c = copies_[static_cast<std::size_t>(idx)];
  stop_running(c.proc, now_);  // materializes remaining (== 0 on completion)
  MKSS_CHECK(c.remaining == 0 && copy_alive_[static_cast<std::size_t>(idx)],
             "completing a copy that is not an exhausted live copy");
  copy_alive_[static_cast<std::size_t>(idx)] = 0;
  dirty_[c.proc] = true;
  ++stats_.completions;
  LiveJob& job = jobs_[c.job_idx];
  const int slot = slot_of(c.kind);
  job.copy_in_slot[slot] = kNone;

  const bool faulted = faults_->transient(job.job.id, slot);
  if (trace_) {
    trace_->copies[c.rec].ended = now_;
    trace_->copies[c.rec].end = CopyEnd::kCompleted;
    trace_->copies[c.rec].transient_fault = faulted;
  }
  if (faulted) {
    ++stats_.transient_faults;
    job.slot_failed[slot] = true;
    const int sibling = job.copy_in_slot[1 - slot];
    if (sibling == kNone && !job.resolved) {
      // No copy left that could still succeed.
      resolve(c.job_idx, JobOutcome::kMissed);
    }
    return;
  }

  // Success: the sibling copy (if any) is canceled immediately.
  const int sibling = job.copy_in_slot[1 - slot];
  if (sibling != kNone && copy_alive_[static_cast<std::size_t>(sibling)]) {
    const CopyKind sk = copies_[static_cast<std::size_t>(sibling)].kind;
    if (sk == CopyKind::kBackup) {
      ++stats_.backups_canceled;
    } else {
      ++stats_.mains_canceled;
    }
  }
  resolve(c.job_idx, JobOutcome::kMet);
}

void Simulator::Impl::kill_copy(int idx, CopyEnd reason) {
  Copy& c = copies_[static_cast<std::size_t>(idx)];
  if (!copy_alive_[static_cast<std::size_t>(idx)]) return;
  if (running_[c.proc] == idx) {
    stop_running(c.proc, now_);
    dirty_[c.proc] = true;  // the processor just went idle
  } else if (running_[c.proc] == kNone) {
    // Killing a parked or pending copy cannot outrank work that is already
    // running, but on an idle DPD processor it can move the sleep-commit
    // horizon (the killed copy may have been the near mandatory activity
    // keeping the processor awake), so the idle case must re-dispatch.
    dirty_[c.proc] = true;
  }
  copy_alive_[static_cast<std::size_t>(idx)] = 0;
  if (trace_) {
    trace_->copies[c.rec].ended = now_;
    trace_->copies[c.rec].end = reason;
  }
  jobs_[c.job_idx].copy_in_slot[slot_of(c.kind)] = kNone;
}

void Simulator::Impl::resolve(std::size_t job_idx, JobOutcome outcome) {
  LiveJob& job = jobs_[job_idx];
  MKSS_CHECK(!job.resolved,
             core::to_string(job.job.id) + " resolved more than once");
  job.resolved = true;
  job.outcome = outcome;
  job.resolved_at = now_;
  // A met job cancels its leftover sibling; a missed one kills its remnants.
  const CopyEnd reason = outcome == JobOutcome::kMet ? CopyEnd::kCanceled
                                                     : CopyEnd::kKilledResolved;
  for (const int slot : {0, 1}) {
    if (job.copy_in_slot[slot] != kNone) kill_copy(job.copy_in_slot[slot], reason);
  }
  if (!job.counted) return;

  const TaskIndex i = job.job.id.task;
  MKSS_CHECK(job.job.id.job == last_resolved_j_[i] + 1,
             "outcomes must resolve in job order per task (" +
                 core::to_string(job.job.id) + ")");
  last_resolved_j_[i] = job.job.id.job;
  if (trace_) trace_->outcomes_per_task[i].push_back(outcome);
  sink_->on_outcome(i, outcome);
  if (outcome == JobOutcome::kMet) {
    ++stats_.jobs_met;
  } else {
    ++stats_.jobs_missed;
    if (job.mandatory) ++stats_.mandatory_misses;
  }
  scheme_->on_outcome(i, job.job.id.job, outcome);
}

void Simulator::Impl::stop_running(ProcessorId p, Ticks end) {
  const int idx = running_[p];
  if (idx == kNone) return;
  running_[p] = kNone;
  Copy& c = copies_[static_cast<std::size_t>(idx)];
  // Materialize the executed progress (remaining went stale at
  // start_running; completion_at_ carried the live value).
  c.remaining = completion_at_[p] - end;
  if (end <= run_start_[p]) return;
  const ExecSegment segment{
      p, jobs_[c.job_idx].job.id, c.kind, {run_start_[p], end}, c.frequency};
  if (trace_) trace_->segments.push_back(segment);
  sink_->on_segment(segment);
  busy_time_[p] += end - run_start_[p];
}

void Simulator::Impl::start_running(ProcessorId p, int idx) {
  running_[p] = idx;
  run_start_[p] = now_;
  completion_at_[p] = now_ + copies_[static_cast<std::size_t>(idx)].remaining;
  // The only caller is dispatch(), which always starts the ready heap's top
  // (dead entries were peeled in ready_best just before).
  running_entry_[p] = ready_[p].front();
}

bool Simulator::Impl::copy_precedes(const Copy& a, const Copy& b) const {
  const auto key = [this](const Copy& c) {
    const core::JobId& id = jobs_[c.job_idx].job.id;
    return std::make_tuple(static_cast<int>(c.band), c.entry.rank, id.task,
                           id.job, static_cast<int>(c.kind));
  };
  return key(a) < key(b);
}

Ticks Simulator::Impl::next_mandatory_activity(ProcessorId p) {
  // Algorithm 1 line 12: "the earliest release time of all jobs in MJQ" --
  // i.e. only mandatory copies already admitted (postponed backups, promoted
  // jobs). A mandatory copy admitted later wakes the processor anyway,
  // because dispatch always considers mandatory-band work regardless of the
  // sleep commitment.
  const Ticks t = std::min(config_.horizon, pending_min(pending_mand_[p]));
  if (cross_check_) {
    MKSS_CHECK(t == scan_next_mandatory_activity(p),
               "indexed next_mandatory_activity diverged from the scan "
               "oracle at " +
                   core::format_ticks(now_));
  }
  return t;
}

Ticks Simulator::Impl::scan_next_mandatory_activity(ProcessorId p) const {
  Ticks t = config_.horizon;
  for (const std::size_t idx : live_[p]) {
    const Copy& c = copies_[idx];
    if (copy_alive_[idx] && c.band == Band::kMandatory &&
        copy_eligible_[idx] > now_) {
      t = std::min(t, copy_eligible_[idx]);
    }
  }
  return t;
}

/// Oracle: re-derives the dispatch choice with the legacy walk over the
/// admission log and checks the prune pass left no infeasible optional copy.
void Simulator::Impl::check_dispatch_oracle(ProcessorId p, bool sleeping,
                                            int best) const {
  int scan = kNone;
  for (const std::size_t idx : live_[p]) {
    const Copy& c = copies_[idx];
    if (!copy_alive_[idx] || c.proc != p || copy_eligible_[idx] > now_) {
      continue;
    }
    if (c.band == Band::kOptional) {
      // The running copy's remaining lives in completion_at_ until
      // stop_running materializes it.
      const Ticks rem = running_[p] == static_cast<int>(idx)
                            ? completion_at_[p] - now_
                            : c.remaining;
      MKSS_CHECK(now_ + rem <= jobs_[c.job_idx].job.deadline,
                 "prune pass left an infeasible optional copy live at " +
                     core::format_ticks(now_));
      if (sleeping) continue;
    }
    if (scan == kNone ||
        copy_precedes(c, copies_[static_cast<std::size_t>(scan)])) {
      scan = static_cast<int>(idx);
    }
  }
  MKSS_CHECK(scan == best,
             "indexed dispatch diverged from the scan oracle at " +
                 core::format_ticks(now_));
}

/// Oracle for skipped dispatches: proves via the legacy scan that running
/// dispatch(p) now would have been a no-op -- the scan-derived best copy is
/// exactly what is already running (or nothing), no eligible optional copy
/// is infeasible, and the DPD sleep decision would not newly commit.
void Simulator::Impl::check_skip_oracle(ProcessorId p) const {
  if (!proc_alive_[p]) return;
  const bool sleeping = !config_.wake_for_optional && sleep_until_[p] > now_;
  check_dispatch_oracle(p, sleeping, running_[p]);
  if (running_[p] == kNone && !config_.wake_for_optional && !sleeping) {
    MKSS_CHECK(scan_next_mandatory_activity(p) - now_ <= config_.break_even,
               "skipped dispatch would have committed to DPD sleep at " +
                   core::format_ticks(now_));
  }
}

void Simulator::Impl::dispatch(ProcessorId p) {
  if (!proc_alive_[p]) {
    dirty_[p] = false;  // a dead processor never needs another dispatch
    return;
  }
  // An expired sleep commitment behaves exactly like none at all (the legacy
  // scan only ever compared sleep_until_ against now); normalizing it to 0
  // makes need_dispatch()'s sleep-expiry trigger one-shot.
  if (sleep_until_[p] != 0 && sleep_until_[p] <= now_) sleep_until_[p] = 0;
  // Call-site guards: wake-ups and prune work are rare (a few percent of
  // dispatches), so the common case pays two heap-front peeks, not calls.
  if ((!pending_mand_[p].empty() && pending_mand_[p].front().time <= now_) ||
      (!pending_opt_[p].empty() && pending_opt_[p].front().time <= now_)) {
    wake_eligible(p);
  }
  const bool sleeping = !config_.wake_for_optional && sleep_until_[p] > now_;
  if (!prune_[p].empty() && prune_[p].front().time < now_) prune_pass(p);
  const int best = ready_best(p, sleeping);
  if (cross_check_) check_dispatch_oracle(p, sleeping, best);

  if (best != kNone) {
    sleep_until_[p] = 0;  // dispatching (mandatory) work ends the sleep
  }
  if (best != running_[p]) {
    const int old = running_[p];
    stop_running(p, now_);  // also materializes the victim's remaining
    if (old != kNone) {
      Copy& victim = copies_[static_cast<std::size_t>(old)];
      if (copy_alive_[static_cast<std::size_t>(old)] && victim.remaining > 0) {
        // A genuinely preempted copy (still alive, work left) pays the
        // context overhead on its remaining demand.
        if (config_.preemption_overhead > 0) {
          victim.remaining += config_.preemption_overhead;
          if (trace_) {
            trace_->copies[victim.rec].work += config_.preemption_overhead;
          }
        }
        ++stats_.preemptions;
        // A preempted optional copy's latest feasible start moved (it
        // executed and may have absorbed preemption overhead): re-index it.
        if (victim.band == Band::kOptional) {
          push_prune(static_cast<std::size_t>(old));
        }
      }
    }
    if (best != kNone) start_running(p, best);
  }

  if (best == kNone && !config_.wake_for_optional && sleep_until_[p] <= now_) {
    const Ticks next_mandatory = next_mandatory_activity(p);
    if (next_mandatory - now_ > config_.break_even) {
      sleep_until_[p] = next_mandatory;  // commit to DPD sleep
    }
  }
  // All kills this dispatch performed (prune pass) were accounted for before
  // the choice, so the processor ends the event clean.
  dirty_[p] = false;
}

Simulator::Simulator() : impl_(std::make_unique<Impl>()) {}
Simulator::~Simulator() = default;
Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;

void Simulator::run(const core::TaskSet& ts, Scheme& scheme,
                    const FaultPlan& faults, const SimConfig& config,
                    TraceSink& sink, const ExecTimeModel* exec_model) {
  impl_->run(ts, scheme, faults, config, sink, exec_model);
}

SimulationTrace simulate(const core::TaskSet& ts, Scheme& scheme,
                         const FaultPlan& faults, const SimConfig& config,
                         const ExecTimeModel* exec_model) {
  Simulator sim;
  FullTraceSink sink;
  sim.run(ts, scheme, faults, config, sink, exec_model);
  return sink.take();
}

}  // namespace mkss::sim
