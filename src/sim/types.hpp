// Shared vocabulary of the N-processor standby-sparing simulator.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "core/task.hpp"
#include "core/time.hpp"

namespace mkss::sim {

using ProcessorId = std::uint8_t;
/// Canonical indices of the paper's dual platform (Section II-A): processor 0
/// is the primary, processor 1 the spare. Larger platforms simply index
/// 0..num_procs-1; the roles vector says which is which.
inline constexpr ProcessorId kPrimary = 0;
inline constexpr ProcessorId kSpare = 1;

/// What a processor is provisioned for. Purely descriptive: the engine treats
/// every processor identically (dispatch, faults, energy); schemes consult
/// the roles to decide where mains and backups go.
enum class ProcRole : std::uint8_t {
  kWorker,   ///< runs main (and optional) copies by default
  kStandby,  ///< reserved for backup copies by default
};

std::string to_string(ProcRole role);

/// The execution platform: an ordered list of processor roles. The default
/// is the paper's dual platform (one primary, one spare); factories build the
/// common shapes. Processor identity is the index into `roles`, and every
/// simulator tie-break is keyed on that index, so schedules stay
/// deterministic for any processor count.
struct PlatformSpec {
  std::vector<ProcRole> roles{ProcRole::kWorker, ProcRole::kStandby};

  std::size_t num_procs() const noexcept { return roles.size(); }

  /// The next processor in index order, wrapping around -- the canonical
  /// "sibling" placement. On the dual platform this is the other processor.
  ProcessorId partner(ProcessorId p) const noexcept {
    return static_cast<ProcessorId>((p + 1) % roles.size());
  }

  /// The paper's platform: {primary, spare}.
  static PlatformSpec dual() { return {}; }

  /// Standby-sparing with `num_procs - 1` primaries sharing one spare (the
  /// spare is the last index). Requires at least two processors.
  static PlatformSpec standby(std::size_t num_procs) {
    check_size(num_procs);
    PlatformSpec p;
    p.roles.assign(num_procs, ProcRole::kWorker);
    p.roles.back() = ProcRole::kStandby;
    return p;
  }

  /// A symmetric platform of `num_procs` primaries (global/partitioned
  /// baselines without a dedicated spare).
  static PlatformSpec symmetric(std::size_t num_procs) {
    check_size(num_procs);
    PlatformSpec p;
    p.roles.assign(num_procs, ProcRole::kWorker);
    return p;
  }

 private:
  static void check_size(std::size_t num_procs) {
    if (num_procs < 2 || num_procs > 255) {
      throw std::invalid_argument(
          "PlatformSpec: processor count must be in [2, 255], got " +
          std::to_string(num_procs));
    }
  }
};

/// Role of an execution copy of a logical job.
enum class CopyKind : std::uint8_t {
  kMain,      ///< primary copy of a mandatory job
  kBackup,    ///< spare copy of a mandatory job (cancelable)
  kOptional,  ///< the single copy of a selected optional job
};

std::string to_string(CopyKind kind);

/// Dispatch bands: every mandatory-queue job outranks every optional-queue
/// job ("The jobs in MJQ always have higher priorities than those in OJQ").
enum class Band : std::uint8_t {
  kMandatory = 0,  ///< MJQ
  kOptional = 1,   ///< OJQ
};

/// Why an execution copy stopped existing. Recorded in the trace so the
/// post-hoc auditor (src/audit) can certify copy lifecycles independently of
/// the engine that produced them.
enum class CopyEnd : std::uint8_t {
  kCompleted,      ///< ran its full demand (the transient draw is separate)
  kCanceled,       ///< sibling copy completed successfully first
  kKilledResolved, ///< killed because its job resolved as missed
  kLostToDeath,    ///< lost with its processor's permanent fault
  kAbandoned,      ///< optional pruned: could no longer meet its deadline
  kUnfinished,     ///< still live when the horizon closed
};

std::string to_string(CopyEnd end);

/// Lifecycle record of one execution copy: who it belonged to, where it was
/// placed, when it could run (the postponed/promoted eligible time theta_i /
/// Y_i), how much work it carried, and how its life ended. One record per
/// admit_copy call, in admission order.
struct CopyRecord {
  core::JobId job;
  CopyKind kind{CopyKind::kMain};
  ProcessorId proc{kPrimary};
  Band band{Band::kMandatory};
  core::Ticks admitted{0};  ///< instant the scheme admitted the copy
  core::Ticks eligible{0};  ///< earliest dispatch time (r, r + Y_i, r + theta_i)
  /// Total demand at the copy's DVS frequency, including any preemption
  /// overhead accrued; a kCompleted copy executed exactly this long.
  core::Ticks work{0};
  core::Ticks ended{0};     ///< instant the copy stopped existing
  CopyEnd end{CopyEnd::kUnfinished};
  double frequency{1.0};
  bool transient_fault{false};  ///< completed and the fault draw hit it
};

/// A maximal span during which one copy ran uninterrupted on one processor.
struct ExecSegment {
  ProcessorId proc{kPrimary};
  core::JobId job;
  CopyKind kind{CopyKind::kMain};
  core::Interval span;
  /// Normalized DVS frequency the copy ran at (1.0 == full speed). Affects
  /// the power drawn during the span, see energy::PowerParams::power_at.
  double frequency{1.0};
};

/// Per-logical-job record kept in the trace.
struct JobRecord {
  core::Job job;
  bool mandatory{false};          ///< classified mandatory at release
  bool executed_optional{false};  ///< optional job selected for execution
  bool counted{true};             ///< deadline within the horizon (audited)
  bool resolved{false};
  core::JobOutcome outcome{core::JobOutcome::kMissed};
  core::Ticks resolved_at{0};
  bool main_transient_fault{false};
  bool backup_transient_fault{false};
};

/// Aggregate counters of one simulation run.
struct SimStats {
  std::uint64_t jobs_released{0};
  std::uint64_t mandatory_jobs{0};
  std::uint64_t optional_selected{0};
  std::uint64_t optional_skipped{0};
  std::uint64_t backups_created{0};
  std::uint64_t backups_canceled{0};  ///< canceled before finishing (sibling succeeded)
  std::uint64_t mains_canceled{0};    ///< main canceled because backup finished first
  std::uint64_t transient_faults{0};
  std::uint64_t jobs_met{0};
  std::uint64_t jobs_missed{0};
  std::uint64_t mandatory_misses{0};  ///< must stay 0 when Theorem 1 applies
  std::uint64_t preemptions{0};       ///< copies stopped with work remaining

  // Event-core counters (bench/perf_engine): how much work the indexed event
  // loop actually did. Identical across sinks and thread counts; the scan
  // oracle (SimConfig::cross_check) does not touch them.
  std::uint64_t sim_events{0};           ///< main-loop iterations (events processed)
  std::uint64_t completions{0};          ///< execution copies that ran to completion
  std::uint64_t deadline_fires{0};       ///< deadline-queue pops
  std::uint64_t eligibility_wakeups{0};  ///< pending copies promoted to ready (θ/Y)
  std::uint64_t dispatch_pops{0};        ///< ready-queue entries lazily discarded
};

/// Full result of a run: execution segments, job records, per-task outcome
/// sequences (in job order, for the (m,k) audit), and counters.
struct SimulationTrace {
  core::Ticks horizon{0};
  std::vector<ExecSegment> segments;
  std::vector<JobRecord> jobs;
  /// Lifecycle of every admitted execution copy, in admission order.
  std::vector<CopyRecord> copies;
  /// outcomes_per_task[i][j] is the outcome of the (j+1)-th *counted* job
  /// of tau_{i+1}.
  std::vector<std::vector<core::JobOutcome>> outcomes_per_task;
  /// Time at which a processor permanently failed, or kNever. One entry per
  /// platform processor; the vector length is the run's processor count.
  std::vector<core::Ticks> death_time{core::kNever, core::kNever};
  std::vector<core::Ticks> busy_time{0, 0};
  SimStats stats;

  /// Total execution time on both processors inside [0, upto) -- the
  /// "active energy" of the paper's motivating examples (P_act = 1).
  core::Ticks active_time(core::Ticks upto) const noexcept;
  core::Ticks active_time() const noexcept { return active_time(horizon); }
};

}  // namespace mkss::sim
