#include "sim/gantt.hpp"

#include <algorithm>
#include <vector>

namespace mkss::sim {

using core::Ticks;

namespace {

char glyph(CopyKind kind, bool full) {
  switch (kind) {
    case CopyKind::kMain: return full ? 'M' : 'm';
    case CopyKind::kBackup: return full ? 'B' : 'b';
    case CopyKind::kOptional: return full ? 'O' : 'o';
  }
  return '?';
}

/// 7-character row label. The dual platform keeps the historical
/// "primary"/"spare" labels; larger platforms label by index.
std::string proc_name(ProcessorId p, std::size_t nproc) {
  if (nproc == 2) return p == kPrimary ? "primary" : "spare  ";
  std::string label = "proc " + std::to_string(p);
  label.resize(7, ' ');
  return label;
}

}  // namespace

std::string render_gantt(const SimulationTrace& trace, const core::TaskSet& ts,
                         const GanttOptions& opts) {
  const Ticks begin = opts.begin;
  const Ticks end = opts.end > 0 ? opts.end : trace.horizon;
  const Ticks per_cell = std::max<Ticks>(1, opts.ticks_per_cell);
  const auto cells = static_cast<std::size_t>((end - begin + per_cell - 1) / per_cell);

  // coverage[proc][task][cell] = ticks of execution inside the cell.
  const std::size_t nproc = trace.death_time.size();
  std::vector<std::vector<std::vector<Ticks>>> covered(
      nproc,
      std::vector<std::vector<Ticks>>(ts.size(), std::vector<Ticks>(cells, 0)));
  std::vector<std::vector<std::vector<CopyKind>>> kind(
      nproc, std::vector<std::vector<CopyKind>>(
                 ts.size(), std::vector<CopyKind>(cells, CopyKind::kMain)));

  for (const ExecSegment& s : trace.segments) {
    const Ticks lo = std::max(s.span.begin, begin);
    const Ticks hi = std::min(s.span.end, end);
    if (hi <= lo) continue;
    for (Ticks t = lo; t < hi;) {
      const auto cell = static_cast<std::size_t>((t - begin) / per_cell);
      const Ticks cell_end = begin + static_cast<Ticks>(cell + 1) * per_cell;
      const Ticks upto = std::min(hi, cell_end);
      covered[s.proc][s.job.task][cell] += upto - t;
      kind[s.proc][s.job.task][cell] = s.kind;
      t = upto;
    }
  }

  std::string out;
  std::size_t label_width = 0;
  for (const auto& t : ts) label_width = std::max(label_width, t.name.size());

  if (opts.ruler) {
    // Ruler marks every 5 cells with the ms value.
    std::string ruler(cells, ' ');
    for (std::size_t c = 0; c < cells; c += 5) {
      const std::string mark =
          std::to_string(static_cast<long long>((begin + static_cast<Ticks>(c) * per_cell) /
                                                core::kTicksPerMs));
      for (std::size_t q = 0; q < mark.size() && c + q < cells; ++q) {
        ruler[c + q] = mark[q];
      }
    }
    out += std::string(8 + 1 + label_width + 2, ' ') + ruler + "\n";
  }

  for (ProcessorId p = 0; p < nproc; ++p) {
    for (std::size_t i = 0; i < ts.size(); ++i) {
      std::string row;
      row += proc_name(p, nproc);
      row += ' ';
      row += ts[i].name;
      row += std::string(label_width - ts[i].name.size(), ' ');
      row += " |";
      for (std::size_t c = 0; c < cells; ++c) {
        const Ticks cov = covered[p][i][c];
        if (cov == 0) {
          row += '.';
        } else {
          row += glyph(kind[p][i][c], cov >= per_cell);
        }
      }
      row += "|\n";
      out += row;
    }
  }
  return out;
}

}  // namespace mkss::sim
