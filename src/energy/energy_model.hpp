// Energy accounting for simulation traces (Section II-A of the paper).
//
// The processor consumes P_act (normalized to 1) while executing. When no
// job is pending it can be put into a low-power state with dynamic power
// down (DPD) only if the idle interval exceeds the break-even time T_be;
// shorter intervals cannot amortize the transition and are charged at the
// idle power. We charge a DPD interval of length L > T_be with
// T_be * P_idle (the transition overhead that defines the break-even point)
// plus (L - T_be) * P_sleep.
//
// Energy is reported in "units": 1 unit == running one processor at P_act
// for one millisecond, matching the paper's motivating examples (Figure 1:
// "the total active energy consumption within the hyper period [0,20] is
// 15 units").
#pragma once

#include <vector>

#include "core/time.hpp"
#include "sim/types.hpp"

namespace mkss::energy {

struct PowerParams {
  double p_active{1.0};  ///< P_act at full speed, normalized
  double p_idle{0.1};    ///< idle (not powered down) power
  double p_sleep{0.0};   ///< deep-sleep power after DPD
  core::Ticks break_even{core::from_ms(std::int64_t{1})};  ///< T_be (paper: 1 ms)

  // DVS model (extension; inert at frequency 1.0): running at normalized
  // frequency f draws p_static + (p_active - p_static) * f^alpha. The paper
  // motivates standby-sparing by noting that growing static power degrades
  // DVS -- p_static is exactly that leakage floor.
  double p_static{0.0};  ///< frequency-independent share of the busy power
  double alpha{3.0};     ///< dynamic power exponent (CMOS: ~3)

  /// Busy power at normalized frequency f.
  double power_at(double f) const noexcept;
};

struct ProcessorEnergy {
  double active{0};      ///< energy units while executing
  double idle{0};        ///< energy units in short idle intervals
  double transition{0};  ///< break-even charges of DPD intervals
  double sleep{0};       ///< residual sleep power

  core::Ticks busy_time{0};
  core::Ticks idle_time{0};   ///< idle intervals too short to power down
  core::Ticks slept_time{0};  ///< time spent powered down

  double total() const noexcept { return active + idle + transition + sleep; }
};

struct EnergyBreakdown {
  /// One entry per platform processor; sized by the accounting pass.
  std::vector<ProcessorEnergy> per_proc;

  double total() const noexcept {
    double sum = 0.0;
    for (const ProcessorEnergy& pe : per_proc) sum += pe.total();
    return sum;
  }
  double active_total() const noexcept {
    double sum = 0.0;
    for (const ProcessorEnergy& pe : per_proc) sum += pe.active;
    return sum;
  }
};

/// Computes the energy of a trace inside [0, trace.horizon). A permanently
/// failed processor consumes nothing after its death time.
EnergyBreakdown account_energy(const sim::SimulationTrace& trace,
                               const PowerParams& params = {});

}  // namespace mkss::energy
