#include "energy/energy_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mkss::energy {

using core::Ticks;

namespace {

double units(Ticks t, double power) {
  return core::to_ms(t) * power;
}

}  // namespace

double PowerParams::power_at(double f) const noexcept {
  if (f >= 1.0) return p_active;
  return p_static + (p_active - p_static) * std::pow(f, alpha);
}

EnergyBreakdown account_energy(const sim::SimulationTrace& trace,
                               const PowerParams& params) {
  EnergyBreakdown out;
  out.per_proc.resize(trace.death_time.size());

  for (std::size_t p = 0; p < out.per_proc.size(); ++p) {
    ProcessorEnergy& pe = out.per_proc[p];
    // A dead processor stops consuming at its death time.
    const Ticks life_end = std::min(trace.horizon, trace.death_time[p]);

    struct BusySpan {
      core::Interval span;
      double frequency;
    };
    std::vector<BusySpan> busy;
    for (const sim::ExecSegment& s : trace.segments) {
      if (s.proc != p || s.span.empty()) continue;
      busy.push_back({{s.span.begin, std::min(s.span.end, life_end)}, s.frequency});
    }
    std::sort(busy.begin(), busy.end(), [](const auto& a, const auto& b) {
      return a.span.begin < b.span.begin;
    });

    const auto charge_idle = [&](Ticks gap) {
      if (gap <= 0) return;
      if (gap > params.break_even) {
        pe.transition += units(params.break_even, params.p_idle);
        pe.sleep += units(gap - params.break_even, params.p_sleep);
        pe.slept_time += gap - params.break_even;
        pe.idle_time += params.break_even;
      } else {
        pe.idle += units(gap, params.p_idle);
        pe.idle_time += gap;
      }
    };

    Ticks cursor = 0;
    // One-entry power_at memo: segments overwhelmingly share one DVS level,
    // and std::pow dominates the per-span cost otherwise. Keyed on the exact
    // frequency bits, so the sum is bit-identical.
    double memo_frequency = 1.0;
    double memo_power = params.power_at(1.0);
    for (const BusySpan& b : busy) {
      if (b.span.empty()) continue;
      charge_idle(b.span.begin - cursor);
      if (b.frequency != memo_frequency) {
        memo_frequency = b.frequency;
        memo_power = params.power_at(b.frequency);
      }
      pe.active += units(b.span.length(), memo_power);
      pe.busy_time += b.span.length();
      cursor = b.span.end;
    }
    charge_idle(life_end - cursor);
  }
  return out;
}

}  // namespace mkss::energy
