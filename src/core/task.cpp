#include "core/task.hpp"

#include <cstdio>
#include <stdexcept>

#include "core/hyperperiod.hpp"

namespace mkss::core {

Task Task::from_ms(double period_ms, double deadline_ms, double wcet_ms,
                   std::uint32_t m, std::uint32_t k, std::string name) {
  Task t;
  t.period = core::from_ms(period_ms);
  t.deadline = core::from_ms(deadline_ms);
  t.wcet = core::from_ms(wcet_ms);
  t.m = m;
  t.k = k;
  t.name = std::move(name);
  return t;
}


TaskSet::TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!tasks_[i].valid()) {
      throw std::invalid_argument("TaskSet: task #" + std::to_string(i + 1) +
                                  " violates the task-model invariants");
    }
    if (tasks_[i].name.empty()) {
      tasks_[i].name = "tau" + std::to_string(i + 1);
    }
  }
}

double TaskSet::total_utilization() const noexcept {
  double u = 0;
  for (const Task& t : tasks_) u += t.utilization();
  return u;
}

double TaskSet::total_mk_utilization() const noexcept {
  double u = 0;
  for (const Task& t : tasks_) u += t.mk_utilization();
  return u;
}

std::optional<Ticks> TaskSet::hyperperiod(Ticks cap) const noexcept {
  Ticks acc = 1;
  for (const Task& t : tasks_) {
    const auto next = lcm_capped(acc, t.period, cap);
    if (!next) return std::nullopt;
    acc = *next;
  }
  return acc;
}

std::optional<Ticks> TaskSet::mk_hyperperiod(Ticks cap) const noexcept {
  return mk_hyperperiod_upto(tasks_.empty() ? 0 : tasks_.size() - 1, cap);
}

std::optional<Ticks> TaskSet::mk_hyperperiod_upto(TaskIndex i, Ticks cap) const noexcept {
  Ticks acc = 1;
  for (TaskIndex q = 0; q < tasks_.size() && q <= i; ++q) {
    const Task& t = tasks_[q];
    const auto kp = lcm_capped(t.period, t.period * static_cast<Ticks>(t.k), cap);
    if (!kp) return std::nullopt;
    const auto next = lcm_capped(acc, *kp, cap);
    if (!next) return std::nullopt;
    acc = *next;
  }
  return acc;
}

std::string TaskSet::describe() const {
  std::string out;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const Task& t = tasks_[i];
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s%s=(%s,%s,%s,%u,%u)", i ? " " : "",
                  t.name.c_str(), format_ticks(t.period).c_str(),
                  format_ticks(t.deadline).c_str(), format_ticks(t.wcet).c_str(),
                  t.m, t.k);
    out += buf;
  }
  return out;
}

}  // namespace mkss::core
