#include "core/mk_constraint.hpp"

#include <optional>
#include <stdexcept>

namespace mkss::core {

MkHistory::MkHistory(std::uint32_t m, std::uint32_t k) : m_(m), k_(k) {
  if (m == 0 || k == 0 || m > k) {
    throw std::invalid_argument("MkHistory: requires 0 < m <= k");
  }
  ring_.assign(k_, std::uint8_t{1});  // all-success pre-history
  met_in_window_ = k_;
}

void MkHistory::record(JobOutcome outcome) noexcept {
  const std::uint8_t value = (outcome == JobOutcome::kMet) ? 1 : 0;
  met_in_window_ -= ring_[head_];
  ring_[head_] = value;
  met_in_window_ += value;
  if (++head_ == ring_.size()) head_ = 0;
  ++recorded_;
}

std::uint32_t MkHistory::flexibility_degree() const noexcept {
  // Tolerating the j-th upcoming consecutive miss requires the most recent
  // (k - j) outcomes to hold >= m successes. Since that count only shrinks as
  // j grows, FD = k - max(m, n_min) where n_min is the position (1 == newest)
  // of the m-th most recent success; FD = 0 when the window holds < m
  // successes. Note n_min >= m always, so FD = k - n_min.
  if (met_in_window_ < m_) return 0;
  const std::size_t k = ring_.size();
  std::uint32_t met = 0;
  std::size_t idx = head_;  // head_ is the oldest entry; newest is head_ - 1
  for (std::size_t n = 1; n <= k; ++n) {
    idx = (idx == 0 ? k : idx) - 1;  // walk newest to oldest without modulo
    met += ring_[idx];
    if (met == m_) {
      return static_cast<std::uint32_t>(k - n);
    }
  }
  return 0;  // unreachable: met_in_window_ >= m_ guarantees the loop exits
}

std::vector<bool> MkHistory::window() const {
  std::vector<bool> out;
  out.reserve(ring_.size());
  for (std::size_t n = 0; n < ring_.size(); ++n) {
    out.push_back(ring_[(head_ + n) % ring_.size()] != 0);
  }
  return out;
}

std::optional<MkViolation> audit_mk_sequence(std::uint32_t m, std::uint32_t k,
                                             const std::vector<JobOutcome>& outcomes) {
  MkHistory h(m, k);
  for (std::uint64_t j = 0; j < outcomes.size(); ++j) {
    h.record(outcomes[j]);
    if (h.violated()) {
      return MkViolation{j + 1, h.met_in_window()};
    }
  }
  return std::nullopt;
}

}  // namespace mkss::core
