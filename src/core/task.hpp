// Periodic task model with (m,k)-firm constraints (Section II-A of the paper).
//
// A task is (P, D, C, m, k): period, relative deadline (D <= P), WCET, and the
// (m,k) constraint requiring at least m successful jobs in any window of k
// consecutive jobs. Tasks are fixed-priority: lower TaskIndex == higher
// priority (tau_1 is the highest), exactly as in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/time.hpp"

namespace mkss::core {

/// Index of a task inside its TaskSet; doubles as its fixed priority
/// (0 is the highest priority, matching the paper's tau_1).
using TaskIndex = std::size_t;

/// A periodic (m,k)-firm task.
struct Task {
  Ticks period{0};        ///< P_i
  Ticks deadline{0};      ///< D_i, relative (D_i <= P_i)
  Ticks wcet{0};          ///< C_i
  std::uint32_t m{1};     ///< at least m of any k consecutive jobs must succeed
  std::uint32_t k{1};     ///< window length of the (m,k) constraint
  std::string name;       ///< optional label used in traces/reports

  /// Convenience constructor mirroring the paper's (P, D, C, m, k) tuples,
  /// in milliseconds (fractional values allowed, e.g. D = 2.5).
  static Task from_ms(double period_ms, double deadline_ms, double wcet_ms,
                      std::uint32_t m, std::uint32_t k, std::string name = {});

  /// Classic utilization C/P. Defined inline (with the other one-liners
  /// below): the task-set generator calls these millions of times per sweep
  /// and a cross-library call per term dominates the actual arithmetic.
  double utilization() const noexcept {
    return static_cast<double>(wcet) / static_cast<double>(period);
  }
  /// (m,k)-utilization m*C/(k*P) -- the x-axis of Figure 6.
  double mk_utilization() const noexcept {
    return utilization() * static_cast<double>(m) / static_cast<double>(k);
  }

  /// True when all structural invariants hold (positive P/C, D <= P,
  /// C <= D, 0 < m < k as required by the paper, or m == k == 1 for a
  /// plain hard-real-time task).
  bool valid() const noexcept {
    if (period <= 0 || wcet <= 0 || deadline <= 0) return false;
    if (deadline > period) return false;
    if (wcet > deadline) return false;
    if (k == 0 || m == 0) return false;
    if (m > k) return false;
    // The paper requires 0 < m < k; we additionally allow the degenerate
    // hard-real-time encoding m == k (every job mandatory).
    return true;
  }

  friend bool operator==(const Task&, const Task&) = default;
};

/// An immutable, validated collection of tasks ordered by priority.
class TaskSet {
 public:
  TaskSet() = default;
  /// Throws std::invalid_argument when any task violates Task::valid().
  explicit TaskSet(std::vector<Task> tasks);

  std::size_t size() const noexcept { return tasks_.size(); }
  bool empty() const noexcept { return tasks_.empty(); }
  const Task& operator[](TaskIndex i) const noexcept { return tasks_[i]; }
  const std::vector<Task>& tasks() const noexcept { return tasks_; }

  auto begin() const noexcept { return tasks_.begin(); }
  auto end() const noexcept { return tasks_.end(); }

  /// Sum of C_i / P_i.
  double total_utilization() const noexcept;
  /// Sum of m_i C_i / (k_i P_i) -- the paper's "total (m,k)-utilization".
  double total_mk_utilization() const noexcept;

  /// LCM of all periods, saturating at `cap`.
  std::optional<Ticks> hyperperiod(Ticks cap) const noexcept;
  /// LCM of all k_i * P_i (the (m,k)-pattern hyperperiod), saturating at `cap`.
  std::optional<Ticks> mk_hyperperiod(Ticks cap) const noexcept;
  /// LCM of k_q * P_q over the tasks with priority q <= i (Definition 5's
  /// per-priority-level horizon), saturating at `cap`.
  std::optional<Ticks> mk_hyperperiod_upto(TaskIndex i, Ticks cap) const noexcept;

  /// One-line description, e.g. "tau1=(5,4,3,2,4) tau2=(10,10,3,1,2)".
  std::string describe() const;

 private:
  std::vector<Task> tasks_;
};

}  // namespace mkss::core
