// Minimal fixed-size thread pool for the evaluation harness.
//
// Deliberately work-stealing-free: a single FIFO queue guarded by a mutex
// plus a condition variable. The harness derives every random stream from
// the job's *index*, never from which worker runs it, so scheduling order
// cannot leak into results — the pool only has to execute jobs, not order
// them. Exceptions propagate through the returned std::future.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mkss::core {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (itself falling back to 1 if the platform reports 0).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains the queue: every job submitted before destruction runs to
  /// completion, then workers join. Jobs submitted *during* destruction are
  /// dropped (their futures report broken_promise).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. An exception thrown
  /// by `fn` is captured and rethrown from future::get().
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn&& fn) {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  /// Resolves a thread-count request: 0 -> hardware_concurrency (min 1).
  static std::size_t resolve_num_threads(std::size_t requested) noexcept;

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_{false};
  std::vector<std::thread> workers_;
};

/// Waits on every future in `futures` (rethrowing the first captured
/// exception) — the per-phase barrier used by the sweep harness.
template <typename T>
void wait_all(std::vector<std::future<T>>& futures) {
  for (auto& f : futures) f.get();
}

/// Runs fn(0) .. fn(count-1) and returns after all completed (a barrier).
/// With a null pool the calls happen inline in index order; with a pool they
/// are fanned out. Deterministic as long as fn(i) depends only on i and
/// writes only slot i — the contract every sweep job in this repo follows.
void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Convenience form owning a temporary pool: 1 = inline, 0 = all hardware
/// threads.
void parallel_for(std::size_t num_threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mkss::core
