#include "core/rng.hpp"

#include <cmath>

namespace mkss::core {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

double Rng::exponential(double rate) noexcept {
  // Inverse-CDF; uniform01() < 1 so the log argument is strictly positive.
  return -std::log(1.0 - uniform01()) / rate;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() noexcept {
  return Rng((*this)());
}

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t a,
                          std::uint64_t b) noexcept {
  // Three chained SplitMix64 steps; each input lands in a different golden-
  // ratio offset so (seed, a, b) permutations map to distinct streams.
  std::uint64_t x = seed;
  std::uint64_t h = splitmix64(x);
  x ^= a * 0xbf58476d1ce4e5b9ULL;
  h ^= splitmix64(x);
  x ^= b * 0x94d049bb133111ebULL;
  h ^= splitmix64(x);
  return h;
}

}  // namespace mkss::core
