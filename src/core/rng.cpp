#include "core/rng.hpp"

#include <cmath>

namespace mkss::core {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int s) noexcept {
  return (v << s) | (v >> (64 - s));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  __extension__ using U128 = unsigned __int128;
  std::uint64_t x = (*this)();
  U128 mul = static_cast<U128>(x) * bound;
  auto low = static_cast<std::uint64_t>(mul);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      mul = static_cast<U128>(x) * bound;
      low = static_cast<std::uint64_t>(mul);
    }
  }
  return static_cast<std::uint64_t>(mul >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double rate) noexcept {
  // Inverse-CDF; uniform01() < 1 so the log argument is strictly positive.
  return -std::log(1.0 - uniform01()) / rate;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() noexcept {
  return Rng((*this)());
}

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t a,
                          std::uint64_t b) noexcept {
  // Three chained SplitMix64 steps; each input lands in a different golden-
  // ratio offset so (seed, a, b) permutations map to distinct streams.
  std::uint64_t x = seed;
  std::uint64_t h = splitmix64(x);
  x ^= a * 0xbf58476d1ce4e5b9ULL;
  h ^= splitmix64(x);
  x ^= b * 0x94d049bb133111ebULL;
  h ^= splitmix64(x);
  return h;
}

}  // namespace mkss::core
