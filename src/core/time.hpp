// Integer time base for the whole library.
//
// All analysis and simulation run on 64-bit integer "ticks" with
// 1 millisecond == 1000 ticks. The paper's workloads use millisecond
// periods and fractional WCETs (e.g. 2.5 ms in Figure 3/4); a fixed
// sub-millisecond grid keeps every comparison exact and every run
// bit-reproducible, which floating-point event times would not.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace mkss::core {

/// Simulation / analysis time in ticks (1 ms == 1000 ticks).
using Ticks = std::int64_t;

/// Ticks per millisecond. All paper-facing parameters are given in ms.
inline constexpr Ticks kTicksPerMs = 1000;

/// Sentinel for "never" / unbounded horizons.
inline constexpr Ticks kNever = std::numeric_limits<Ticks>::max();

/// Converts whole milliseconds to ticks.
constexpr Ticks from_ms(std::int64_t ms) noexcept { return ms * kTicksPerMs; }

/// Converts fractional milliseconds to ticks, rounding to the nearest tick.
/// Used only at workload-construction time; the engine never sees doubles.
Ticks from_ms(double ms) noexcept;

/// Converts ticks back to (possibly fractional) milliseconds.
constexpr double to_ms(Ticks t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kTicksPerMs);
}

/// Renders a tick count as a short human-readable ms string ("2.5ms").
std::string format_ticks(Ticks t);

/// A half-open time interval [begin, end).
struct Interval {
  Ticks begin{0};
  Ticks end{0};

  constexpr Ticks length() const noexcept { return end - begin; }
  constexpr bool empty() const noexcept { return end <= begin; }
  constexpr bool contains(Ticks t) const noexcept { return begin <= t && t < end; }
  /// True when the two half-open intervals share at least one tick.
  constexpr bool overlaps(const Interval& o) const noexcept {
    return begin < o.end && o.begin < end;
  }
  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

}  // namespace mkss::core
