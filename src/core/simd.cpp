#include "core/simd.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define MKSS_SIMD_X86 1
#else
#define MKSS_SIMD_X86 0
#endif

namespace mkss::core::simd {

namespace {

/// -1 = no forced path. Plain int so a relaxed read is trivially safe; the
/// test hook is only ever used single-threaded around generate_bin calls.
int g_forced = -1;

Path resolve_from_env() noexcept {
  const char* env = std::getenv("MKSS_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
      return Path::kScalar;
    }
    if (std::strcmp(env, "avx2") == 0) {
      if (cpu_has_avx2()) return Path::kAvx2;
      std::fprintf(stderr,
                   "mkss: MKSS_SIMD=avx2 requested but the CPU lacks AVX2; "
                   "using the scalar kernels\n");
      return Path::kScalar;
    }
    if (std::strcmp(env, "auto") != 0) {
      std::fprintf(stderr,
                   "mkss: unknown MKSS_SIMD value '%s' "
                   "(expected off|scalar|avx2|auto); auto-detecting\n",
                   env);
    }
  }
  return cpu_has_avx2() ? Path::kAvx2 : Path::kScalar;
}

}  // namespace

bool cpu_has_avx2() noexcept {
#if MKSS_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Path active_path() noexcept {
  if (g_forced >= 0) return static_cast<Path>(g_forced);
  static const Path resolved = resolve_from_env();
  return resolved;
}

const char* path_name(Path p) noexcept {
  return p == Path::kAvx2 ? "avx2" : "scalar";
}

void set_forced_path(Path p) noexcept {
  if (p == Path::kAvx2 && !cpu_has_avx2()) return;
  g_forced = static_cast<int>(p);
}

void clear_forced_path() noexcept { g_forced = -1; }

// ---------------------------------------------------------------------------
// Magic division.
//
// For divisor d with l = ceil(log2 d): mul = ceil(2^(31+l) / d), shift =
// 31 + l. Write mul*d = 2^(31+l) + r with 0 <= r < d (the round-up residue).
// For 0 <= x < 2^31:
//   x*mul / 2^(31+l) = x/d + x*r / (d * 2^(31+l))
// and the error term is < 2^31 * d / (d * 2^(31+l)) = 2^-l <= 1/d with the
// strict inequality needed (r <= d-1 < d), so flooring both sides agree:
// floor(x*mul >> (31+l)) == floor(x/d). mul fits 32 bits because
// d > 2^(l-1) implies mul < 2^32 + 1 and equality is impossible off the
// power-of-two case, where mul = 2^31 exactly.
// ---------------------------------------------------------------------------

DivMagic div_magic_u31(std::uint32_t d) noexcept {
  if (d <= 1) return DivMagic{1u << 31, 31};  // x/1: (x * 2^31) >> 31 == x
  const std::uint32_t l =
      static_cast<std::uint32_t>(32 - __builtin_clz(d - 1));  // ceil(log2 d)
  const std::uint64_t num = std::uint64_t{1} << (31 + l);
  const std::uint64_t mul = (num + d - 1) / d;
  return DivMagic{static_cast<std::uint32_t>(mul), 31 + l};
}

// ---------------------------------------------------------------------------
// Scalar kernels (compiled unconditionally; the reference semantics).
// ---------------------------------------------------------------------------

namespace {

void row_sum_max_scalar(const std::int64_t* sum_vals,
                        const std::int64_t* max_vals, std::size_t rows,
                        std::int64_t* sums, std::int64_t* maxs) noexcept {
  for (std::size_t r = 0; r < rows; ++r) {
    const std::int64_t* sv = sum_vals + r * kRowStride;
    const std::int64_t* mv = max_vals + r * kRowStride;
    std::int64_t s = 0;
    std::int64_t m = 0;
    for (std::size_t i = 0; i < kRowStride; ++i) {
      s += sv[i];
      if (mv[i] > m) m = mv[i];
    }
    sums[r] = s;
    maxs[r] = m;
  }
}

/// One row's mandatory-demand contribution via the same magic-division
/// expressions the vector lanes evaluate; exactness of div_magic_u31 makes
/// this identical to plain '/' and '%'.
inline std::uint64_t demand_row_scalar(const DemandView& v, std::size_t j,
                                       std::uint64_t t_minus_1) noexcept {
  const std::uint64_t rel = ((t_minus_1 * v.pmul[j]) >> v.pshift[j]) + 1;
  const std::uint64_t groups = (rel * v.kmul[j]) >> v.kshift[j];
  const std::uint64_t rem = rel - groups * v.effk[j];
  const std::uint64_t count = groups * v.effm[j] + v.arena[v.poff[j] + rem];
  return count * v.wcet[j];
}

std::uint64_t demand_hp_sum_scalar(const DemandView& v, std::size_t count,
                                   std::uint64_t t_minus_1) noexcept {
  std::uint64_t acc = 0;
  for (std::size_t j = 0; j < count; ++j) {
    acc += demand_row_scalar(v, j, t_minus_1);
  }
  return acc;
}

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with the target attribute so the translation unit
// itself needs no -mavx2 (the scalar fallback must stay executable on any
// x86-64); only ever called behind the cpuid dispatch.
// ---------------------------------------------------------------------------

#if MKSS_SIMD_X86

__attribute__((target("avx2"))) void row_sum_max_avx2(
    const std::int64_t* sum_vals, const std::int64_t* max_vals,
    std::size_t rows, std::int64_t* sums, std::int64_t* maxs) noexcept {
  static_assert(kRowStride == 16, "kernel unrolled for 16-lane rows");
  for (std::size_t r = 0; r < rows; ++r) {
    const std::int64_t* sv = sum_vals + r * kRowStride;
    const std::int64_t* mv = max_vals + r * kRowStride;
    __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sv));
    __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sv + 4));
    __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sv + 8));
    __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sv + 12));
    __m256i s = _mm256_add_epi64(_mm256_add_epi64(s0, s1),
                                 _mm256_add_epi64(s2, s3));
    __m128i lo = _mm256_castsi256_si128(s);
    __m128i hi = _mm256_extracti128_si256(s, 1);
    __m128i sum2 = _mm_add_epi64(lo, hi);
    sums[r] = _mm_extract_epi64(sum2, 0) + _mm_extract_epi64(sum2, 1);

    // AVX2 has no 64-bit vector max; compare + blend, then reduce 4 lanes.
    __m256i m0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mv));
    __m256i m1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mv + 4));
    __m256i m2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mv + 8));
    __m256i m3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mv + 12));
    __m256i a = _mm256_blendv_epi8(m0, m1, _mm256_cmpgt_epi64(m1, m0));
    __m256i b = _mm256_blendv_epi8(m2, m3, _mm256_cmpgt_epi64(m3, m2));
    __m256i m = _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(b, a));
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), m);
    std::int64_t best = 0;
    for (const std::int64_t lane : lanes) {
      if (lane > best) best = lane;
    }
    maxs[r] = best;
  }
}

__attribute__((target("avx2"))) std::uint64_t demand_hp_sum_avx2(
    const DemandView& v, std::size_t count, std::uint64_t t_minus_1) noexcept {
  const std::size_t vec = count & ~std::size_t{3};
  __m256i acc = _mm256_setzero_si256();
  const __m256i tm1 = _mm256_set1_epi64x(static_cast<long long>(t_minus_1));
  const __m256i one = _mm256_set1_epi64x(1);
  // Lambdas do not inherit the enclosing function's target attribute, so the
  // loads are spelled out through a macro instead of a helper.
#define MKSS_LD(p) _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))
  for (std::size_t j = 0; j < vec; j += 4) {
    // rel = (t-1) / P + 1, via the per-row period magic.
    __m256i rel = _mm256_add_epi64(
        _mm256_srlv_epi64(_mm256_mul_epu32(tm1, MKSS_LD(v.pmul + j)),
                          MKSS_LD(v.pshift + j)),
        one);
    // groups = rel / effk, rem = rel - groups * effk.
    __m256i groups = _mm256_srlv_epi64(
        _mm256_mul_epu32(rel, MKSS_LD(v.kmul + j)), MKSS_LD(v.kshift + j));
    __m256i rem =
        _mm256_sub_epi64(rel, _mm256_mul_epu32(groups, MKSS_LD(v.effk + j)));
    // prefix lookup: arena[poff + rem] per lane (32-bit gather, 64-bit idx).
    __m256i idx = _mm256_add_epi64(MKSS_LD(v.poff + j), rem);
    __m128i pv = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(v.arena), idx, 4);
    __m256i prefix = _mm256_cvtepu32_epi64(pv);
    // count = groups * effm + prefix; contribution = count * wcet.
    __m256i cnt =
        _mm256_add_epi64(_mm256_mul_epu32(groups, MKSS_LD(v.effm + j)), prefix);
    acc = _mm256_add_epi64(acc, _mm256_mul_epu32(cnt, MKSS_LD(v.wcet + j)));
  }
#undef MKSS_LD
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (std::size_t j = vec; j < count; ++j) {
    total += demand_row_scalar(v, j, t_minus_1);
  }
  return total;
}

#endif  // MKSS_SIMD_X86

}  // namespace

void row_sum_max_i64(const std::int64_t* sum_vals, const std::int64_t* max_vals,
                     std::size_t rows, std::int64_t* sums,
                     std::int64_t* maxs) noexcept {
#if MKSS_SIMD_X86
  if (active_path() == Path::kAvx2) {
    row_sum_max_avx2(sum_vals, max_vals, rows, sums, maxs);
    return;
  }
#endif
  row_sum_max_scalar(sum_vals, max_vals, rows, sums, maxs);
}

std::uint64_t demand_hp_sum(const DemandView& v, std::size_t count,
                            std::uint64_t t_minus_1) noexcept {
#if MKSS_SIMD_X86
  if (active_path() == Path::kAvx2) {
    return demand_hp_sum_avx2(v, count, t_minus_1);
  }
#endif
  return demand_hp_sum_scalar(v, count, t_minus_1);
}

}  // namespace mkss::core::simd
