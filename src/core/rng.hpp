// Deterministic, platform-independent random number generation.
//
// std::uniform_int_distribution is allowed to differ between standard-library
// implementations, which would make the paper-reproduction benches
// non-reproducible across toolchains. We therefore ship a small xoshiro256++
// generator (public-domain algorithm by Blackman & Vigna) seeded via
// SplitMix64, plus the handful of exact distributions the workloads need.
#pragma once

#include <array>
#include <cstdint>

#include "core/time.hpp"

namespace mkss::core {

/// xoshiro256++ PRNG with SplitMix64 seeding. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  // The draw primitives are defined inline: the task-set generator makes
  // tens of millions of draws per sweep, and an out-of-line call per draw
  // costs more than the xoshiro step itself.

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless unbiased bounded generation.
    __extension__ using U128 = unsigned __int128;
    std::uint64_t x = (*this)();
    U128 mul = static_cast<U128>(x) * bound;
    auto low = static_cast<std::uint64_t>(mul);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        mul = static_cast<U128>(x) * bound;
        low = static_cast<std::uint64_t>(mul);
      }
    }
    return static_cast<std::uint64_t>(mul >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Exponentially distributed double with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Derives an independent child generator (for per-task-set streams).
  Rng split() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int s) noexcept {
    return (v << s) | (v >> (64 - s));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Derives a seed for an independent stream from (seed, a, b) by chained
/// SplitMix64 finalization. Unlike Rng::split(), the result depends only on
/// the *indices*, never on how much of a parent stream was consumed — this
/// is what makes the parallel sweep harness bit-identical to the serial
/// path: stream_seed(seed, bin_index, set_index) names the same stream no
/// matter which thread reaches it first.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t a,
                          std::uint64_t b) noexcept;

}  // namespace mkss::core
