// Job instances of periodic tasks.
//
// Job J_ij is the j-th instance (1-based, as in the paper) of task tau_i,
// released at r_ij = (j-1) * P_i with absolute deadline d_ij = r_ij + D_i.
// A standby-sparing runtime materializes up to two copies of a mandatory job
// (main on the primary processor, backup on the spare); the copy kind lives in
// the scheduler layer -- here a Job is just the logical instance.
#pragma once

#include <cstdint>
#include <string>

#include "core/task.hpp"
#include "core/time.hpp"

namespace mkss::core {

/// Identifies the j-th job of task i. `job` is 1-based like the paper's J_ij.
struct JobId {
  TaskIndex task{0};
  std::uint64_t job{1};

  friend constexpr bool operator==(const JobId&, const JobId&) = default;
  friend constexpr auto operator<=>(const JobId&, const JobId&) = default;
};

/// A released job instance.
struct Job {
  JobId id;
  Ticks release{0};    ///< r_ij
  Ticks deadline{0};   ///< d_ij (absolute)
  Ticks exec{0};       ///< c_ij; equals the task WCET in this model

  /// Builds the j-th (1-based) job of `task` (which has index `index` in its
  /// task set), released synchronously from time 0.
  static Job instance(const Task& task, TaskIndex index, std::uint64_t j) noexcept {
    const Ticks r = static_cast<Ticks>(j - 1) * task.period;
    return Job{JobId{index, j}, r, r + task.deadline, task.wcet};
  }

  friend constexpr bool operator==(const Job&, const Job&) = default;
};

/// "J3,2" style label used by traces and error messages.
std::string to_string(const JobId& id);

/// Final outcome of a logical job, as recorded in the (m,k) history.
enum class JobOutcome : std::uint8_t {
  kMet,      ///< at least one copy completed successfully by the deadline
  kMissed,   ///< optional job skipped/unfinished, or all copies failed
};

}  // namespace mkss::core
