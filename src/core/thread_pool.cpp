#include "core/thread_pool.hpp"

namespace mkss::core {

std::size_t ThreadPool::resolve_num_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = resolve_num_threads(num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;  // destructor already ran; future reports broken promise
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task captures any exception into the future
  }
}

void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool->submit([&fn, i] { fn(i); }));
  }
  wait_all(futures);
}

void parallel_for(std::size_t num_threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  const std::size_t n = ThreadPool::resolve_num_threads(num_threads);
  if (n <= 1) {
    parallel_for(static_cast<ThreadPool*>(nullptr), count, fn);
    return;
  }
  ThreadPool pool(n);
  parallel_for(&pool, count, fn);
}

}  // namespace mkss::core
