#include "core/pattern.hpp"

#include <algorithm>

namespace mkss::core {

bool r_pattern_mandatory(std::uint32_t m, std::uint32_t k, std::uint64_t j) noexcept {
  const std::uint64_t r = j % k;
  return r >= 1 && r <= m;
}

bool e_pattern_mandatory(std::uint32_t m, std::uint32_t k, std::uint64_t j) noexcept {
  const std::uint64_t a = j - 1;
  // ceil(a*m/k) then floor(. * k / m); all quantities fit easily in 64 bits
  // for the job indices reachable within any simulated horizon.
  const std::uint64_t ceil_am_k = (a * m + k - 1) / k;
  return a == (ceil_am_k * k) / m;
}

bool pattern_mandatory(PatternKind kind, std::uint32_t m, std::uint32_t k,
                       std::uint64_t j) noexcept {
  switch (kind) {
    case PatternKind::kDeeplyRed:
      return r_pattern_mandatory(m, k, j);
    case PatternKind::kEvenlyDistributed:
      return e_pattern_mandatory(m, k, j);
  }
  return true;
}

std::uint64_t r_pattern_mandatory_released_before(const Task& task, Ticks t) noexcept {
  if (t <= 0) return 0;
  // Releases strictly before t: jobs j with (j-1) * P < t.
  const std::uint64_t released =
      static_cast<std::uint64_t>((t - 1) / task.period) + 1;
  // Under the R-pattern the first m of every k consecutive jobs are mandatory.
  const std::uint64_t full_groups = released / task.k;
  const std::uint64_t tail = released % task.k;
  return full_groups * task.m + std::min<std::uint64_t>(tail, task.m);
}

std::uint64_t pattern_mandatory_released_before(PatternKind kind, const Task& task,
                                                Ticks t) noexcept {
  if (kind == PatternKind::kDeeplyRed) {
    return r_pattern_mandatory_released_before(task, t);
  }
  if (t <= 0) return 0;
  const std::uint64_t released =
      static_cast<std::uint64_t>((t - 1) / task.period) + 1;
  // Every pattern here is periodic with period k and holds exactly m
  // mandatory jobs per aligned group; enumerate only the tail group.
  const std::uint64_t full_groups = released / task.k;
  std::uint64_t count = full_groups * task.m;
  for (std::uint64_t j = full_groups * task.k + 1; j <= released; ++j) {
    count += pattern_mandatory(kind, task.m, task.k, j);
  }
  return count;
}

std::vector<bool> materialize_pattern(PatternKind kind, std::uint32_t m,
                                      std::uint32_t k, std::uint64_t n) {
  std::vector<bool> out;
  out.reserve(n);
  for (std::uint64_t j = 1; j <= n; ++j) {
    out.push_back(pattern_mandatory(kind, m, k, j));
  }
  return out;
}

}  // namespace mkss::core
