// Shared release-timeline arena: the periodic release structure of a task
// set over one horizon, materialized once in structure-of-arrays form.
//
// Like the (m,k)-pattern tables, the release/deadline timeline of a task set
// is a pure function of (periods, deadlines, horizon): job j of task i is
// released at (j-1)*P_i with absolute deadline (j-1)*P_i + D_i, for every
// (j-1)*P_i < horizon. The engine's release calendar re-derives exactly this
// sequence -- one heap retiming per release -- on every run, yet a Figure-6
// sweep runs the same set through 4+ scheme variants, a fault campaign
// through thousands of fault plans, and `mkss_cli serve` through repeated
// corpus requests. A ReleaseTimeline is that sequence computed once by a
// batch merge kernel and consumed by sim::Simulator through a cursor walk
// (SimConfig::timeline); see docs/architecture.md, "Release-timeline cache".
//
// Bit-identity contract: entries are sorted by (release, task) ascending --
// the exact strict-total-order pop sequence of the engine's TimedEntry
// calendar heap -- and `seq` counts instances 1-based per task, so a cursor
// walk over the arena observes precisely the pops the heap would produce.
// The engine proves this under SimConfig::cross_check by running the
// retained calendar heap in lock-step as an oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/task.hpp"
#include "core/time.hpp"

namespace mkss::core {

/// SoA lanes of one (task set, horizon) release sequence. One entry per job
/// release with release < horizon, sorted by (release, task) ascending.
/// Lanes are parallel: entry e is (release[e], task[e], deadline[e], seq[e]).
struct ReleaseTimeline {
  Ticks horizon{0};
  std::size_t num_tasks{0};
  std::vector<Ticks> release;        ///< absolute release instant
  std::vector<std::uint32_t> task;   ///< releasing task index
  std::vector<Ticks> deadline;       ///< absolute deadline (release + D_i)
  std::vector<std::uint64_t> seq;    ///< 1-based job instance number j

  std::size_t size() const noexcept { return release.size(); }

  /// Arena bytes held (capacity, not size) -- cache budgeting diagnostic.
  std::size_t memory_bytes() const noexcept {
    return release.capacity() * sizeof(Ticks) +
           task.capacity() * sizeof(std::uint32_t) +
           deadline.capacity() * sizeof(Ticks) +
           seq.capacity() * sizeof(std::uint64_t);
  }
};

/// Materializes the release sequence of `ts` over `horizon` into `out`
/// (cleared, capacity reused). N-way merge over the per-task arithmetic
/// sequences, keyed (release, task) -- the calendar heap's pop order.
void build_release_timeline(const TaskSet& ts, Ticks horizon,
                            ReleaseTimeline& out);

/// Content-keyed cache of ReleaseTimelines, shared across every run of the
/// same (periods, deadlines, horizon) tuple. The key is the timing content,
/// not the task-set address, so a serve worker whose requests re-parse the
/// same corpus file still hits warm. Entries are immutable shared_ptrs:
/// an eviction cannot invalidate a timeline a run still holds. Not
/// thread-safe -- one instance per thread/worker, like the RunContext that
/// owns it.
class TimelineCache {
 public:
  /// Cached timelines held at most; least-recently-used entries evict first.
  /// Sized so a whole sweep corpus (~1k sets) stays warm across repeated
  /// passes -- the byte budget below is the real bound on memory.
  static constexpr std::size_t kDefaultCapacity = 4096;
  /// Total arena bytes held at most. Evicting by bytes (not entries) keeps
  /// a few long-horizon timelines from ballooning a worker's footprint.
  static constexpr std::size_t kDefaultByteBudget = std::size_t{64} << 20;

  explicit TimelineCache(std::size_t capacity = kDefaultCapacity,
                         std::size_t byte_budget = kDefaultByteBudget)
      : capacity_(capacity == 0 ? 1 : capacity),
        byte_budget_(byte_budget == 0 ? 1 : byte_budget) {}

  /// The timeline of (ts, horizon), built on first request and shared
  /// afterwards. The returned pointer stays valid for the caller's lifetime
  /// regardless of later evictions.
  std::shared_ptr<const ReleaseTimeline> get(const TaskSet& ts, Ticks horizon);

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::size_t entries() const noexcept { return entries_.size(); }
  std::size_t bytes() const noexcept { return bytes_; }

 private:
  struct Entry {
    std::uint64_t hash{0};   ///< FNV-1a of key -- fast reject on lookup
    std::vector<Ticks> key;  ///< [horizon, P_0, D_0, P_1, D_1, ...]
    std::uint64_t stamp{0};  ///< logical LRU clock (deterministic, no time)
    std::size_t bytes{0};    ///< arena bytes this entry holds
    std::shared_ptr<const ReleaseTimeline> timeline;
  };

  std::size_t capacity_;
  std::size_t byte_budget_;
  std::uint64_t clock_{0};
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::size_t bytes_{0};
  std::vector<Entry> entries_;
  std::vector<Ticks> key_scratch_;
};

/// FNV-1a over the raw bytes of a Ticks key -- the deterministic fast-reject
/// discriminator the content-keyed caches (timelines, postponements) share.
inline std::uint64_t content_hash(const std::vector<Ticks>& key) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Ticks v : key) {
    std::uint64_t u = static_cast<std::uint64_t>(v);
    for (int b = 0; b < 8; ++b) {
      h ^= (u >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace mkss::core
