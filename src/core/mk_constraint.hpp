// (m,k)-firm constraint bookkeeping: sliding outcome window, flexibility
// degree (Definition 1 of the paper), and distance-based priority.
//
// The flexibility degree of the *next* job of a task is the number of
// consecutive deadline misses the task can still tolerate starting from that
// job. Jobs with FD == 0 are mandatory; the paper's selective scheme executes
// exactly the optional jobs with FD == 1.
//
// Pre-history convention: jobs before time 0 are treated as successes (the
// "deeply red" convention). This matches the paper's footnote 1, where at
// time 0 task (2,4) has FD 2 and task (1,2) has FD 1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/job.hpp"

namespace mkss::core {

/// Sliding (m,k) outcome window for one task.
class MkHistory {
 public:
  /// Requires 0 < m <= k. The window starts as all-success pre-history.
  MkHistory(std::uint32_t m, std::uint32_t k);

  std::uint32_t m() const noexcept { return m_; }
  std::uint32_t k() const noexcept { return k_; }

  /// Appends the outcome of the next job (oldest outcome falls out).
  void record(JobOutcome outcome) noexcept;

  /// Flexibility degree of the next (not yet recorded) job:
  /// FD = max l >= 0 such that for every j in [1, l] the most recent (k - j)
  /// outcomes contain at least m successes. Always in [0, k - m].
  std::uint32_t flexibility_degree() const noexcept;

  /// True when the next job must execute to keep the constraint satisfiable
  /// (FD == 0); such jobs are mandatory in all schemes of the paper.
  bool next_job_mandatory() const noexcept { return flexibility_degree() == 0; }

  /// Hamdaoui & Ramanathan's distance-based priority: the number of
  /// consecutive misses that leads to the first violation. Equals FD + 1.
  std::uint32_t distance_to_failure() const noexcept { return flexibility_degree() + 1; }

  /// True when the current window of the last k outcomes already has fewer
  /// than m successes, i.e. the (m,k)-constraint is violated right now.
  bool violated() const noexcept { return met_in_window_ < m_; }

  /// Number of successes among the last k outcomes (pre-history counts).
  std::uint32_t met_in_window() const noexcept { return met_in_window_; }

  /// Total outcomes recorded since construction.
  std::uint64_t recorded() const noexcept { return recorded_; }

  /// Oldest-to-newest copy of the window (true == met). Mainly for tests
  /// and trace dumps.
  std::vector<bool> window() const;

 private:
  std::uint32_t m_;
  std::uint32_t k_;
  std::uint32_t met_in_window_;
  std::uint64_t recorded_{0};
  std::vector<std::uint8_t> ring_;  ///< circular buffer of the last k outcomes
  std::size_t head_{0};             ///< index of the oldest entry
};

/// Offline (m,k) auditor: feeds a full outcome sequence and reports the
/// first violated window, if any. Used by tests and the QoS metrics module
/// to certify simulator traces against Theorem 1.
struct MkViolation {
  std::uint64_t first_job{0};   ///< 1-based index of the last job of the bad window
  std::uint32_t met{0};         ///< successes in that window
};

/// Scans `outcomes` (job 1..N in order) for a window of k consecutive jobs
/// with fewer than m successes. Windows extending before job 1 use the
/// all-success pre-history convention. Returns the first violation found.
std::optional<MkViolation> audit_mk_sequence(std::uint32_t m, std::uint32_t k,
                                             const std::vector<JobOutcome>& outcomes);

}  // namespace mkss::core
