#include "core/job.hpp"

namespace mkss::core {

std::string to_string(const JobId& id) {
  return "J" + std::to_string(id.task + 1) + "," + std::to_string(id.job);
}

}  // namespace mkss::core
