#include "core/job.hpp"

namespace mkss::core {

std::string to_string(const JobId& id) {
  // Built via append rather than operator+ chains: GCC 12's -Wrestrict
  // false-positives on ("literal" + std::string&&) under -O3, which would
  // break the -Werror CI job.
  std::string s = "J";
  s += std::to_string(id.task + 1);
  s += ',';
  s += std::to_string(id.job);
  return s;
}

}  // namespace mkss::core
