#include "core/release_timeline.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace mkss::core {

namespace {

/// (time, task) merge-heap entry; ordering identical to the engine's
/// TimedEntry calendar, so the merged output is its pop sequence.
struct MergeEntry {
  Ticks time{0};
  std::uint32_t task{0};
  friend bool operator<(const MergeEntry& a, const MergeEntry& b) noexcept {
    return a.time != b.time ? a.time < b.time : a.task < b.task;
  }
};

/// Re-keys the heap root to `time` with one sift-down (the calendar's
/// retime_release_top, on the builder's private heap).
void retime_top(std::vector<MergeEntry>& h, Ticks time) {
  const MergeEntry entry{time, h.front().task};
  std::size_t i = 0;
  const std::size_t sz = h.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= sz) break;
    if (child + 1 < sz && h[child + 1] < h[child]) ++child;
    if (!(h[child] < entry)) break;
    h[i] = h[child];
    i = child;
  }
  h[i] = entry;
}

void pop_top(std::vector<MergeEntry>& h) {
  std::pop_heap(h.begin(), h.end(), [](const MergeEntry& a, const MergeEntry& b) {
    return b < a;
  });
  h.pop_back();
}

}  // namespace

void build_release_timeline(const TaskSet& ts, Ticks horizon,
                            ReleaseTimeline& out) {
  MKSS_CHECK(horizon > 0, "release timeline needs a positive horizon");
  const std::size_t n = ts.size();
  out.horizon = horizon;
  out.num_tasks = n;
  out.release.clear();
  out.task.clear();
  out.deadline.clear();
  out.seq.clear();

  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Ticks p = ts[i].period;
    MKSS_CHECK(p > 0, "release timeline needs positive periods");
    // Releases at 0, P, 2P, ... strictly below the horizon.
    total += static_cast<std::size_t>((horizon + p - 1) / p);
  }
  out.release.reserve(total);
  out.task.reserve(total);
  out.deadline.reserve(total);
  out.seq.reserve(total);

  // N-way merge of the per-task arithmetic sequences. (0, 0), (0, 1), ... is
  // already a valid min-heap (equal times, ascending task), exactly how the
  // engine seeds its calendar.
  std::vector<MergeEntry> heap;
  heap.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    heap.push_back(MergeEntry{0, static_cast<std::uint32_t>(i)});
  }
  std::vector<std::uint64_t> next_j(n, 1);

  while (!heap.empty()) {
    const Ticks time = heap.front().time;
    const std::uint32_t i = heap.front().task;
    const std::uint64_t j = next_j[i];
    out.release.push_back(time);
    out.task.push_back(i);
    out.deadline.push_back(time + ts[i].deadline);
    out.seq.push_back(j);
    next_j[i] = j + 1;
    const Ticks next = time + ts[i].period;
    if (next < horizon) {
      retime_top(heap, next);
    } else {
      pop_top(heap);
    }
  }
  MKSS_CHECK(out.release.size() == total,
             "release timeline entry count disagrees with the closed form");
}

std::shared_ptr<const ReleaseTimeline> TimelineCache::get(const TaskSet& ts,
                                                          Ticks horizon) {
  // Content key: the exact inputs the timeline is a function of. Everything
  // else about the task set (WCETs, (m,k) parameters, names) is irrelevant
  // to the release structure and deliberately outside the key.
  key_scratch_.clear();
  key_scratch_.push_back(horizon);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    key_scratch_.push_back(ts[i].period);
    key_scratch_.push_back(ts[i].deadline);
  }
  const std::uint64_t hash = content_hash(key_scratch_);
  ++clock_;
  for (Entry& e : entries_) {
    if (e.hash == hash && e.key == key_scratch_) {
      ++hits_;
      e.stamp = clock_;
      return e.timeline;
    }
  }
  ++misses_;
  auto owned = std::make_shared<ReleaseTimeline>();
  build_release_timeline(ts, horizon, *owned);
  const std::size_t owned_bytes = owned->memory_bytes();
  entries_.push_back(Entry{hash, key_scratch_, clock_, owned_bytes,
                           std::move(owned)});
  bytes_ += owned_bytes;
  // Evict least-recently-used entries past either bound; the entry just
  // inserted carries the newest stamp and is never the victim while any
  // other entry remains.
  while (entries_.size() > 1 &&
         (entries_.size() > capacity_ || bytes_ > byte_budget_)) {
    auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
    bytes_ -= victim->bytes;
    if (victim != entries_.end() - 1) *victim = std::move(entries_.back());
    entries_.pop_back();
  }
  // The pointer must come from the surviving vector slot (the insert above
  // may have been moved by the eviction compaction).
  for (Entry& e : entries_) {
    if (e.stamp == clock_) return e.timeline;
  }
  return entries_.back().timeline;  // unreachable; the newest entry survives
}

}  // namespace mkss::core
