// Static (m,k) partitioning patterns.
//
// A pattern classifies each job J_ij of a task as mandatory ("1") or optional
// ("0") offline. The paper's schemes derive mandatory jobs from the deeply
// red pattern (R-pattern, Equation 1); the evenly distributed E-pattern of
// Ramanathan is provided as well (used by our ablation benches and available
// to downstream users).
#pragma once

#include <cstdint>
#include <vector>

#include "core/task.hpp"
#include "core/time.hpp"

namespace mkss::core {

/// Kinds of static partitioning patterns.
enum class PatternKind : std::uint8_t {
  kDeeplyRed,          ///< R-pattern: first m of every k jobs are mandatory
  kEvenlyDistributed,  ///< E-pattern: mandatory jobs spread evenly over the window
};

/// R-pattern (Equation 1): job j (1-based) is mandatory iff
/// 1 <= j mod k <= m. With 0 < m < k this makes the first m jobs of every
/// k-job group mandatory and the rest optional.
bool r_pattern_mandatory(std::uint32_t m, std::uint32_t k, std::uint64_t j) noexcept;

/// E-pattern: with a = j - 1 (0-based index), job j is mandatory iff
/// a == floor(ceil(a * m / k) * k / m). Exactly m mandatory jobs per window
/// of k, spaced as evenly as integer arithmetic allows.
bool e_pattern_mandatory(std::uint32_t m, std::uint32_t k, std::uint64_t j) noexcept;

/// Dispatch on PatternKind.
bool pattern_mandatory(PatternKind kind, std::uint32_t m, std::uint32_t k,
                       std::uint64_t j) noexcept;

/// Number of *mandatory* jobs of `task` released in [0, t) under the
/// R-pattern, in closed form. This is the request-bound building block of the
/// R-pattern-aware response-time analysis.
std::uint64_t r_pattern_mandatory_released_before(const Task& task, Ticks t) noexcept;

/// Same count for an arbitrary pattern kind (closed form for full k-groups,
/// enumeration for the tail group).
std::uint64_t pattern_mandatory_released_before(PatternKind kind, const Task& task,
                                                Ticks t) noexcept;

/// Materializes the pattern of jobs 1..n as booleans (true == mandatory).
std::vector<bool> materialize_pattern(PatternKind kind, std::uint32_t m,
                                      std::uint32_t k, std::uint64_t n);

}  // namespace mkss::core
