#include "core/time.hpp"

#include <cmath>
#include <cstdio>

namespace mkss::core {

Ticks from_ms(double ms) noexcept {
  return static_cast<Ticks>(std::llround(ms * static_cast<double>(kTicksPerMs)));
}

std::string format_ticks(Ticks t) {
  if (t == kNever) return "never";
  const double ms = to_ms(t);
  char buf[48];
  if (t % kTicksPerMs == 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(t / kTicksPerMs));
  } else {
    std::snprintf(buf, sizeof buf, "%.3fms", ms);
  }
  return buf;
}

}  // namespace mkss::core
