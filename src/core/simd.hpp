// Runtime-dispatched SIMD kernels for the structure-of-arrays batch paths.
//
// The generation prefilter, the (m,k) demand sums and the batched RTA all
// operate on integer ticks, where lane-parallel arithmetic is exactly
// associative: reordering a sum of Ticks cannot change its value, unlike
// floating point. Every kernel here therefore has a scalar fallback that is
// bit-identical to the AVX2 variant by construction -- the vector code is a
// pure re-bracketing of the same integer expressions -- which is what lets
// the golden tests, the corpus manifests and the thread-count bit-identity
// contracts hold regardless of which path the CPU dispatch picks.
//
// Dispatch policy:
//   - `MKSS_SIMD=off` (or `scalar`) forces the portable kernels;
//   - `MKSS_SIMD=avx2` requests AVX2 and falls back to scalar (with a
//     one-time stderr note) when the CPU lacks it;
//   - unset or `auto`: cpuid detection.
// The resolved path is cached after the first query; tests that need to
// exercise both paths in one process use set_forced_path().
#pragma once

#include <cstddef>
#include <cstdint>

namespace mkss::core::simd {

enum class Path : std::uint8_t {
  kScalar = 0,  ///< portable kernels, compiled unconditionally
  kAvx2 = 1,    ///< AVX2 kernels, selected at runtime via cpuid
};

/// True when the running CPU reports AVX2.
bool cpu_has_avx2() noexcept;

/// The dispatch path every kernel below uses: the forced path if one is set,
/// otherwise the cached MKSS_SIMD/cpuid resolution described above.
Path active_path() noexcept;

/// "scalar" / "avx2" -- the token emitted into BENCH_*.json.
const char* path_name(Path p) noexcept;

/// Test hook: overrides active_path() until clear_forced_path(). Forcing
/// kAvx2 on a CPU without AVX2 is ignored (the resolver never hands out a
/// path the box cannot execute).
void set_forced_path(Path p) noexcept;
void clear_forced_path() noexcept;

/// Lane stride (in elements) of the flat per-task rows inside a candidate
/// batch: every candidate owns kRowStride consecutive lanes per array, and
/// lanes past its task count hold the operation's identity element.
inline constexpr std::size_t kRowStride = 16;

/// Per-row fused sum/max over stride-kRowStride int64 rows:
///   sums[r] = sum of sum_vals[r*kRowStride .. +kRowStride)
///   maxs[r] = max of max_vals[r*kRowStride .. +kRowStride)
/// Unused lanes must hold 0, the identity for both (all live values --
/// WCETs and periods in ticks -- are strictly positive). This is the
/// generation prefilter: sums = per-candidate sigma-C, maxs = per-candidate
/// longest period.
void row_sum_max_i64(const std::int64_t* sum_vals, const std::int64_t* max_vals,
                     std::size_t rows, std::int64_t* sums,
                     std::int64_t* maxs) noexcept;

/// Exact magic-number division for the 31-bit domain: for 1 <= d < 2^31 and
/// 0 <= x < 2^31,  x / d == (x * mul) >> shift  (full 64-bit product).
///
/// Granlund-Montgomery round-up method with l = ceil(log2 d):
/// mul = ceil(2^(31+l) / d) always fits 32 bits on this restricted domain,
/// so AVX2 evaluates the quotient with one vpmuludq + one vpsrlvq per lane
/// -- there is no vector integer divide on any x86 extension. Exactness is
/// proven in simd.cpp and pinned by an exhaustive-divisor test.
struct DivMagic {
  std::uint32_t mul{0};
  std::uint32_t shift{0};
};
DivMagic div_magic_u31(std::uint32_t d) noexcept;

/// SoA view of the higher-priority interference rows of one RTA candidate,
/// priority-ordered. All arrays hold values < 2^31 zero-extended into u64
/// lanes (vpmuludq multiplies the low 32 bits of each 64-bit lane):
///   pmul/pshift  magic for division by the row's period
///   kmul/kshift  magic for division by the row's effective k
///   effm/effk    effective (m, k) of the row's pattern step table
///   wcet         the row's WCET in ticks
///   poff         offset of the row's cumulative prefix table inside `arena`
struct DemandView {
  const std::uint64_t* pmul{nullptr};
  const std::uint64_t* pshift{nullptr};
  const std::uint64_t* kmul{nullptr};
  const std::uint64_t* kshift{nullptr};
  const std::uint64_t* effm{nullptr};
  const std::uint64_t* effk{nullptr};
  const std::uint64_t* wcet{nullptr};
  const std::uint64_t* poff{nullptr};
  const std::uint32_t* arena{nullptr};
};

/// Higher-priority demand sum over rows [0, count) of `v` in a window of
/// t = t_minus_1 + 1 ticks (t_minus_1 < 2^31):
///   sum_j ( (rel_j / effk_j) * effm_j + arena[poff_j + rel_j % effk_j] )
///          * wcet_j          where rel_j = t_minus_1 / period_j + 1.
/// The mandatory-job count never exceeds rel_j < 2^31 (prefix tables are
/// cumulative counts), so every intermediate fits the u32-by-u32 lanes and
/// the accumulation is exact in u64.
std::uint64_t demand_hp_sum(const DemandView& v, std::size_t count,
                            std::uint64_t t_minus_1) noexcept;

/// llround for non-negative doubles below 2^52, bit-identical to
/// std::llround but inlineable (glibc's llround is an out-of-line call that
/// the generation draw loop pays millions of times per sweep).
///
/// For x >= 0, llround rounds half away from zero: r + [frac >= 0.5] where
/// r = floor(x) (the truncating cast) and frac = x - r. The subtraction is
/// EXACT: for floor(x) >= 1, floor(x) <= x < 2 * floor(x) so Sterbenz's
/// lemma applies; for floor(x) == 0 it subtracts zero. So the >= 0.5
/// comparison sees the true fraction and no rounded intermediate can flip a
/// verdict -- unlike the tempting (int64)(x + 0.5) form, where x + 0.5 can
/// round UP across an integer in a round-to-even tie (x = 0.5 - 2^-54) and
/// no floating-point correction test can detect it exactly. Pinned against
/// std::llround by a fuzz + boundary test.
inline std::int64_t llround_nonneg(double x) noexcept {
  const auto r = static_cast<std::int64_t>(x);
  return r + (x - static_cast<double>(r) >= 0.5 ? 1 : 0);
}

}  // namespace mkss::core::simd
