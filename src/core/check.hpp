// Always-on internal invariant checks.
//
// The engine's structural invariants used to be Debug-only `assert`s, which
// vanish exactly in the Release builds CI sweeps with -- a violated invariant
// would then silently corrupt results instead of failing the run. MKSS_CHECK
// throws core::CheckError with file/line/condition context in *every* build
// type; the harness quarantines the offending run and keeps the sweep alive.
//
// Use MKSS_CHECK for invariants of our own code ("this cannot happen unless
// the engine is buggy"); keep std::invalid_argument & friends for caller
// errors. The cost of an untaken branch is negligible next to a simulation
// step, so there is no Release opt-out.
#pragma once

#include <stdexcept>
#include <string>

namespace mkss::core {

/// Thrown when an MKSS_CHECK invariant fails. Derives from std::logic_error:
/// a failed check is a bug in this library, never user input.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void check_failed(const char* file, int line, const char* cond,
                               const std::string& message);
}  // namespace detail

}  // namespace mkss::core

/// Throws core::CheckError with "<file>:<line>: check failed: <cond>: <msg>"
/// when `cond` is false. Active in all build types.
#define MKSS_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::mkss::core::detail::check_failed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                      \
  } while (false)
