#include "core/hyperperiod.hpp"

namespace mkss::core {

Ticks gcd(Ticks a, Ticks b) noexcept {
  while (b != 0) {
    const Ticks r = a % b;
    a = b;
    b = r;
  }
  return a;
}

std::optional<Ticks> lcm_capped(Ticks a, Ticks b, Ticks cap) noexcept {
  if (a <= 0 || b <= 0) return std::nullopt;
  const Ticks g = gcd(a, b);
  const Ticks a_red = a / g;
  // a_red * b overflows iff a_red > max/b; also honor the explicit cap.
  if (a_red > cap / b) return std::nullopt;
  const Ticks result = a_red * b;
  if (result > cap) return std::nullopt;
  return result;
}

std::optional<Ticks> lcm_capped(std::span<const Ticks> values, Ticks cap) noexcept {
  Ticks acc = 1;
  for (const Ticks v : values) {
    const auto next = lcm_capped(acc, v, cap);
    if (!next) return std::nullopt;
    acc = *next;
  }
  return acc;
}

}  // namespace mkss::core
