// Overflow-checked gcd/lcm helpers and hyperperiod computation.
//
// The (m,k) pattern of task i repeats with period k_i * P_i, so analyses that
// enumerate jobs (the theta postponement analysis of Definitions 3-5, the
// energy horizon of the evaluation) need LCMs of k_i * P_i values. Random
// parameters make these astronomically large, so every LCM here saturates at
// a caller-supplied cap instead of silently overflowing.
#pragma once

#include <optional>
#include <span>

#include "core/time.hpp"

namespace mkss::core {

/// Greatest common divisor of two non-negative tick counts.
Ticks gcd(Ticks a, Ticks b) noexcept;

/// Least common multiple, or std::nullopt when it would exceed `cap`
/// (or overflow Ticks). Both inputs must be positive.
std::optional<Ticks> lcm_capped(Ticks a, Ticks b, Ticks cap) noexcept;

/// LCM of a whole sequence with the same saturation semantics.
std::optional<Ticks> lcm_capped(std::span<const Ticks> values, Ticks cap) noexcept;

}  // namespace mkss::core
