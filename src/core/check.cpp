#include "core/check.hpp"

namespace mkss::core::detail {

void check_failed(const char* file, int line, const char* cond,
                  const std::string& message) {
  // Strip the build-tree prefix so messages are stable across checkouts.
  std::string path(file);
  const auto src = path.rfind("src/");
  if (src != std::string::npos) path.erase(0, src);
  throw CheckError(path + ":" + std::to_string(line) + ": check failed: " +
                   cond + (message.empty() ? "" : ": " + message));
}

}  // namespace mkss::core::detail
