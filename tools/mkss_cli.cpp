// mkss_cli -- command-line front end for the library.
//
//   mkss_cli analyze  <taskset.txt>
//       schedulability report, promotion times Y_i and postponement theta_i.
//
//   mkss_cli schemes [--names] [--procs <n>]
//       list every registered scheduler (name, platform envelope, policy);
//       --names prints the bare names, one per line (CI matrix input), and
//       --procs filters to schemes that support that platform size.
//
//   mkss_cli simulate <taskset.txt> [options]
//       run one scheme over the task set and report schedule/energy/QoS.
//         --scheme <name>       any registered scheme (default selective);
//                               see `mkss_cli schemes`
//         --procs <n>           platform size: n-1 primaries + 1 spare
//                               (default 2, the paper's dual platform)
//         --horizon <ms>                    (default pattern hyperperiod)
//         --permanent <proc>@<ms>           inject a permanent fault
//         --lambda <rate-per-ms>            transient fault rate (default 0)
//         --seed <n>                        fault derandomization seed
//         --gantt                           print the ASCII schedule
//         --json                            dump the full trace as JSON
//
//   mkss_cli sweep [--scenario none|permanent|transient] [--sets <n>]
//                  [--threads <n>] [--seed <n>] [--horizon <ms>]
//                  [--no-audit] [--error-dir <dir>]
//       run the Figure-6 style sweep and print the table + CSV.
//       --threads 0 uses every hardware thread; results are bit-identical
//       for any thread count (default 1). Every run is audited unless
//       --no-audit; quarantined errors dump repro bundles to --error-dir.
//
//   mkss_cli audit <taskset.txt> [simulate options]
//       run one scheme and certify the trace with the structural auditor.
//
//   mkss_cli campaign [--scheme <name>|all] [--procs <n>]
//                     [--taskset <file>] [--horizon <ms>] [--seed <n>]
//                     [--no-bursts]
//       (--horizon-cap is accepted as an alias for --horizon.)
//       enumerate adversarial fault placements (permanent faults at every
//       inspecting point of every processor, targeted/bursty transients)
//       and audit every run. `all` runs every registered scheme that
//       supports the platform, noting the skipped ones.
//
//   mkss_cli fuzz [--runs n] [--seed n] [--procs n | --procs-range a..b]
//                 [--scheme name|all] [--threads n] [--horizon ms]
//                 [--budget-ms ms] [--no-shrink] [--error-dir dir]
//       chaos campaign: every iteration draws a random schedulable task set,
//       a random platform from the pool and a random fault process (Poisson
//       transients, permanent faults, bursty storms, combined), then runs
//       every selected scheme with the trace auditor attached. Violations
//       are delta-debugged to minimal repro bundles (written to --error-dir)
//       and exit with code 4. Bit-identical for every --threads value.
//
//   mkss_cli replay <bundle.repro.txt | bundle-dir> [--budget-ms ms]
//       re-run repro bundles (from fuzz --error-dir or sweep --error-dir)
//       audited; any still-violating bundle exits with code 4. A directory
//       replays every *.repro.txt inside, in name order.
//
//   mkss_cli serve [--workers n] [--queue-depth n] [--input file]
//                  [--horizon ms] [--budget-ms ms]
//       long-lived admission service: newline-delimited JSON requests on
//       stdin (or --input for replayable load), one JSON response per line
//       on stdout, in request order -- byte-identical for every --workers
//       value (0 = hardware concurrency). Request errors become structured
//       error responses (stable codes mirroring the exit-code contract);
//       the server never dies on a request. Telemetry goes to stderr on
//       EOF. See docs/architecture.md, "Admission service & wire protocol".
//
//   mkss_cli example
//       print a template task-set file.
//
// Exit codes: 0 success, 1 run-time failure (e.g. QoS not satisfied),
// 2 usage error, 3 malformed input, 4 audit/campaign/fuzz/replay violation.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "io/taskset_io.hpp"
#include "io/trace_json.hpp"
#include "mkss.hpp"

using namespace mkss;

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitInput = 3;
constexpr int kExitAuditViolation = 4;

/// Thrown by subcommands on bad flags; mapped to kExitUsage in main.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// --- Shared option parsing ------------------------------------------------
//
// Every subcommand parses its flag tail through the same cursor and value
// parsers, and the flags shared between subcommands (--threads, --seed,
// --horizon, --error-dir) go through one table, so their spelling,
// validation and error messages cannot drift between `sweep`, `audit` and
// `campaign`.

/// Cursor over a subcommand's argv tail.
struct Args {
  int argc;
  char** argv;
  int i{0};

  bool done() const { return i >= argc; }
  std::string arg() const { return argv[i]; }
  /// Consumes and returns the value of the flag currently under the cursor.
  const char* value(const std::string& flag) {
    if (i + 1 >= argc) throw UsageError("missing value for " + flag);
    return argv[++i];
  }
};

/// Strict non-negative integer ("--seed 12x" is a usage error, not 12).
std::uint64_t parse_u64(const std::string& flag, const char* value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (value[0] == '\0' || value[0] == '-' || end == value || *end != '\0' ||
      errno == ERANGE) {
    throw UsageError(flag + " wants a non-negative integer, got '" +
                     std::string(value) + "'");
  }
  return static_cast<std::uint64_t>(v);
}

/// Strict positive duration in milliseconds.
double parse_positive_ms(const std::string& flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (value[0] == '\0' || end == value || *end != '\0' || !(v > 0)) {
    throw UsageError(flag + " wants a positive duration in ms, got '" +
                     std::string(value) + "'");
  }
  return v;
}

/// Strict non-negative rate (per ms).
double parse_rate(const std::string& flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (value[0] == '\0' || end == value || *end != '\0' || !(v >= 0)) {
    throw UsageError(flag + " wants a non-negative rate, got '" +
                     std::string(value) + "'");
  }
  return v;
}

/// Values of the shared flags; unset members keep each command's default.
struct CommonOptions {
  std::optional<std::size_t> threads;
  std::optional<std::uint64_t> seed;
  std::optional<core::Ticks> horizon;
  std::optional<std::string> error_dir;
};

/// Which shared flags a subcommand accepts.
struct CommonFlagSet {
  bool threads{false};
  bool seed{false};
  bool horizon{false};
  bool horizon_cap_alias{false};  ///< also accept --horizon-cap for --horizon
  bool error_dir{false};
};

/// Consumes one shared flag from the cursor if it matches; returns false to
/// let the subcommand try its own flags.
bool parse_common_flag(Args& a, const CommonFlagSet& accepts,
                       CommonOptions& out) {
  const std::string arg = a.arg();
  if (accepts.threads && arg == "--threads") {
    out.threads = static_cast<std::size_t>(parse_u64(arg, a.value(arg)));
    return true;
  }
  if (accepts.seed && arg == "--seed") {
    out.seed = parse_u64(arg, a.value(arg));
    return true;
  }
  if (accepts.horizon &&
      (arg == "--horizon" || (accepts.horizon_cap_alias && arg == "--horizon-cap"))) {
    out.horizon = core::from_ms(parse_positive_ms(arg, a.value(arg)));
    return true;
  }
  if (accepts.error_dir && arg == "--error-dir") {
    out.error_dir = a.value(arg);
    return true;
  }
  return false;
}

// --- Command registry -----------------------------------------------------
//
// Every subcommand is one table row: name, the flag spec usage() prints,
// its one-line summary, how many leading positional arguments it requires,
// and the handler over the remaining argv tail. main() dispatches through
// the table, usage() is generated from it, and an unknown subcommand lists
// the available ones (the same shape sched::UnknownSchemeError gives an
// unknown --scheme) -- adding a command is one new row, nothing else.

struct Command {
  const char* name;
  /// usage() tail; element 0 continues the `mkss_cli <name>` line, the rest
  /// print indented beneath it.
  std::vector<const char*> usage_lines;
  const char* summary;
  std::size_t min_positional{0};
  std::function<int(int argc, char** argv)> handler;
};

const std::vector<Command>& command_table();

std::string known_commands() {
  std::string names;
  for (const Command& cmd : command_table()) {
    if (!names.empty()) names += ", ";
    names += cmd.name;
  }
  return names;
}

int usage() {
  std::string text;
  for (const Command& cmd : command_table()) {
    text += text.empty() ? "usage: mkss_cli " : "       mkss_cli ";
    text += cmd.name;
    for (std::size_t i = 0; i < cmd.usage_lines.size(); ++i) {
      if (i == 0) {
        if (cmd.usage_lines[0][0] != '\0') {
          text += ' ';
          text += cmd.usage_lines[0];
        }
      } else {
        text += "\n                ";
        text += cmd.usage_lines[i];
      }
    }
    text += "\n";
  }
  text +=
      "schemes: see `mkss_cli schemes` (the registry drives --scheme)\n"
      "exit codes: 0 ok, 1 failure, 2 usage, 3 bad input, 4 audit violation\n";
  std::fputs(text.c_str(), stderr);
  return kExitUsage;
}

int cmd_analyze(const std::string& path) {
  const core::TaskSet ts = io::parse_taskset_file(path);
  std::printf("task set: %s\n", ts.describe().c_str());
  std::printf("utilization %.3f, (m,k)-utilization %.3f\n", ts.total_utilization(),
              ts.total_mk_utilization());

  const auto sched_report = analysis::analyze_schedulability(ts);
  std::printf("R-pattern schedulable: %s\nfull set schedulable:  %s\n",
              sched_report.r_pattern_feasible ? "yes" : "no",
              sched_report.full_set_feasible ? "yes" : "no");

  const auto promos = analysis::promotion_times(ts);
  const auto post = analysis::compute_postponement(ts);
  report::Table table({"task", "R (mand.)", "R (full)", "Y", "theta", "theta source"});
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    const auto fmt_opt = [](const std::optional<core::Ticks>& t) {
      return t ? core::format_ticks(*t) : std::string("-");
    };
    const char* source = "zero";
    if (post.per_task[i].source == analysis::ThetaSource::kExact) source = "exact";
    if (post.per_task[i].source == analysis::ThetaSource::kPromotion) {
      source = "promotion";
    }
    table.add_row({ts[i].name, fmt_opt(sched_report.response_mandatory[i]),
                   fmt_opt(sched_report.response_full[i]), fmt_opt(promos[i]),
                   core::format_ticks(post.theta(i)), source});
  }
  std::printf("\n%s", table.to_string().c_str());
  return sched_report.r_pattern_feasible ? 0 : 1;
}

/// Registry lookup; rethrows as UsageError (exit 2) with the name list.
const sched::SchemeInfo& parse_scheme(const std::string& v) {
  try {
    return sched::Registry::instance().resolve(v);
  } catch (const sched::UnknownSchemeError& e) {
    throw UsageError(e.what());
  }
}

/// Strict platform size: n-1 primaries plus one spare, within PlatformSpec's
/// envelope of [2, 255] processors.
std::size_t parse_procs(const std::string& flag, const char* value) {
  const std::uint64_t n = parse_u64(flag, value);
  if (n < 2 || n > 255) {
    throw UsageError(flag + " wants a platform size in [2, 255], got '" +
                     std::string(value) + "'");
  }
  return static_cast<std::size_t>(n);
}

struct SimulateOptions {
  const sched::SchemeInfo* scheme{nullptr};  ///< null = default "selective"
  std::size_t procs{2};
  core::Ticks horizon{0};
  std::optional<sim::PermanentFault> permanent;
  double lambda{0.0};
  std::uint64_t seed{1};
  bool gantt{false};
  bool json{false};
};

SimulateOptions parse_simulate_options(int argc, char** argv) {
  SimulateOptions opt;
  const CommonFlagSet accepts{.seed = true, .horizon = true};
  CommonOptions common;
  for (Args a{argc, argv}; !a.done(); ++a.i) {
    if (parse_common_flag(a, accepts, common)) continue;
    const std::string arg = a.arg();
    if (arg == "--scheme") {
      opt.scheme = &parse_scheme(a.value(arg));
    } else if (arg == "--procs") {
      opt.procs = parse_procs(arg, a.value(arg));
    } else if (arg == "--permanent") {
      const std::string v = a.value(arg);
      const auto at = v.find('@');
      if (at == std::string::npos) throw UsageError("--permanent wants proc@ms");
      opt.permanent = sim::PermanentFault{
          static_cast<sim::ProcessorId>(std::atoi(v.substr(0, at).c_str())),
          core::from_ms(std::atof(v.substr(at + 1).c_str()))};
    } else if (arg == "--lambda") {
      opt.lambda = parse_rate(arg, a.value(arg));
    } else if (arg == "--gantt") {
      opt.gantt = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else {
      throw UsageError("unknown option '" + arg + "'");
    }
  }
  if (common.seed) opt.seed = *common.seed;
  if (common.horizon) opt.horizon = *common.horizon;
  return opt;
}

/// Resolves the scheme (default "selective") and checks it against --procs.
const sched::SchemeInfo& simulate_scheme(const SimulateOptions& opt) {
  const sched::SchemeInfo& info =
      opt.scheme ? *opt.scheme : parse_scheme("selective");
  if (!info.supports(opt.procs)) {
    throw UsageError("scheme '" + info.name + "' does not support --procs " +
                     std::to_string(opt.procs) + " (supports " +
                     std::to_string(info.min_procs) + ".." +
                     (info.max_procs == 0 ? std::string("unbounded")
                                          : std::to_string(info.max_procs)) +
                     ")");
  }
  if (opt.permanent && opt.permanent->proc >= opt.procs) {
    throw UsageError("--permanent names processor " +
                     std::to_string(opt.permanent->proc) +
                     " on a platform of " + std::to_string(opt.procs));
  }
  return info;
}

harness::RunResult run_simulate(const core::TaskSet& ts,
                                const SimulateOptions& opt) {
  const sched::SchemeInfo& info = simulate_scheme(opt);
  core::Ticks horizon = opt.horizon;
  if (horizon <= 0) {
    horizon = harness::choose_horizon(ts, core::from_ms(std::int64_t{10000}));
  }
  const fault::ScenarioFaultPlan plan(
      opt.permanent, fault::transient_probabilities(ts, opt.lambda), opt.seed);
  sim::SimConfig cfg;
  cfg.horizon = horizon;
  cfg.platform = sim::PlatformSpec::standby(opt.procs);
  const std::unique_ptr<sched::SchemeBase> scheme = info.make();
  return harness::run_one(
      {.ts = ts, .scheme = scheme.get(), .faults = &plan, .sim = cfg});
}

int cmd_simulate(const std::string& path, int argc, char** argv) {
  const core::TaskSet ts = io::parse_taskset_file(path);
  const SimulateOptions opt = parse_simulate_options(argc, argv);
  const sched::SchemeInfo& info = simulate_scheme(opt);
  const bool gantt = opt.gantt, json = opt.json;
  const auto run = run_simulate(ts, opt);
  const core::Ticks horizon = run.trace.horizon;

  if (json) {
    std::fputs(io::trace_to_json(run.trace, ts).c_str(), stdout);
    return run.qos.mk_satisfied ? 0 : 1;
  }

  std::printf("scheme %s over %s\n", info.title.c_str(),
              core::format_ticks(horizon).c_str());
  std::printf("energy: %.2f units (active %.2f)\n", run.energy.total(),
              run.energy.active_total());
  std::printf("jobs: %llu released, %llu met, %llu missed; backups canceled %llu\n",
              static_cast<unsigned long long>(run.trace.stats.jobs_released),
              static_cast<unsigned long long>(run.trace.stats.jobs_met),
              static_cast<unsigned long long>(run.trace.stats.jobs_missed),
              static_cast<unsigned long long>(run.trace.stats.backups_canceled));
  std::printf("(m,k) satisfied: %s; mandatory misses: %llu\n",
              run.qos.mk_satisfied ? "yes" : "NO",
              static_cast<unsigned long long>(run.qos.mandatory_misses));
  report::Table qtable({"task", "jobs", "met", "missed", "miss rate"});
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    const auto& q = run.qos.per_task[i];
    qtable.add_row({ts[i].name, std::to_string(q.jobs), std::to_string(q.met),
                    std::to_string(q.missed), report::fmt_percent(q.miss_rate())});
  }
  std::printf("\n%s", qtable.to_string().c_str());
  if (gantt) {
    std::printf("\n%s", sim::render_gantt(run.trace, ts).c_str());
  }
  return run.qos.mk_satisfied ? 0 : 1;
}

int cmd_sweep(int argc, char** argv) {
  harness::SweepConfig cfg;
  const CommonFlagSet accepts{
      .threads = true, .seed = true, .horizon = true, .error_dir = true};
  CommonOptions common;
  for (Args a{argc, argv}; !a.done(); ++a.i) {
    if (parse_common_flag(a, accepts, common)) continue;
    const std::string arg = a.arg();
    if (arg == "--scenario") {
      const std::string v = a.value(arg);
      if (v == "none") cfg.scenario = fault::Scenario::kNoFault;
      else if (v == "permanent") cfg.scenario = fault::Scenario::kPermanentOnly;
      else if (v == "transient") cfg.scenario = fault::Scenario::kPermanentAndTransient;
      else throw UsageError("unknown scenario '" + v + "'");
    } else if (arg == "--sets") {
      cfg.sets_per_bin = static_cast<std::size_t>(parse_u64(arg, a.value(arg)));
    } else if (arg == "--no-audit") {
      cfg.audit = false;
    } else {
      throw UsageError("unknown option '" + arg + "'");
    }
  }
  if (common.threads) cfg.num_threads = *common.threads;
  if (common.seed) cfg.seed = *common.seed;
  if (common.horizon) cfg.horizon_cap = *common.horizon;
  if (common.error_dir) cfg.error_dir = *common.error_dir;
  const auto result = harness::run_sweep(cfg);
  std::printf("%s", result.to_table().to_string().c_str());
  std::printf("\nmax gain selective over DP: %s; audit failures: %llu\n",
              report::fmt_percent(result.max_gain(2, 1)).c_str(),
              static_cast<unsigned long long>(result.qos_failures));
  for (const harness::SweepError& err : result.errors) {
    std::fprintf(stderr,
                 "quarantined: bin %zu set %zu variant %s (stream seed %llu): %s\n",
                 err.bin, err.set, err.variant.c_str(),
                 static_cast<unsigned long long>(err.seed), err.message.c_str());
  }
  if (!result.errors.empty()) {
    std::fprintf(stderr, "%zu run(s) quarantined%s\n", result.errors.size(),
                 cfg.error_dir.empty()
                     ? ""
                     : (", repro bundles in " + cfg.error_dir).c_str());
    return kExitAuditViolation;
  }
  return 0;
}

int cmd_audit(const std::string& path, int argc, char** argv) {
  const core::TaskSet ts = io::parse_taskset_file(path);
  const SimulateOptions opt = parse_simulate_options(argc, argv);
  const auto run = run_simulate(ts, opt);
  audit::AuditOptions options;
  const audit::AuditReport report = audit::TraceAuditor(options).audit(run.trace, ts);
  if (!report.ok()) {
    std::fprintf(stderr, "audit FAILED with %zu violation(s):\n%s",
                 report.violations.size(), report.to_string().c_str());
    return kExitAuditViolation;
  }
  std::printf("audit clean: %llu jobs, %zu copies, %zu segments over %s\n",
              static_cast<unsigned long long>(run.trace.stats.jobs_released),
              run.trace.copies.size(), run.trace.segments.size(),
              core::format_ticks(run.trace.horizon).c_str());
  return 0;
}

int cmd_schemes(int argc, char** argv) {
  bool names_only = false;
  std::optional<std::size_t> procs;
  for (Args a{argc, argv}; !a.done(); ++a.i) {
    if (a.arg() == "--names") {
      names_only = true;
    } else if (a.arg() == "--procs") {
      procs = parse_procs(a.arg(), a.value(a.arg()));
    } else {
      throw UsageError("unknown option '" + a.arg() + "'");
    }
  }
  if (names_only) {
    for (const sched::SchemeInfo* info : sched::Registry::instance().all()) {
      if (procs && !info->supports(*procs)) continue;
      std::printf("%s\n", info->name.c_str());
    }
    return 0;
  }
  report::Table table({"name", "scheme", "processors", "policy"});
  for (const sched::SchemeInfo* info : sched::Registry::instance().all()) {
    if (procs && !info->supports(*procs)) continue;
    std::string envelope;
    if (info->min_procs == info->max_procs) {
      envelope = std::to_string(info->min_procs);
    } else if (info->max_procs == 0) {
      envelope = std::to_string(info->min_procs) + "+";
    } else {
      envelope = std::to_string(info->min_procs) + "-" +
                 std::to_string(info->max_procs);
    }
    table.add_row({info->name, info->title, envelope, info->policy});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  fault::CampaignConfig cfg;
  std::string scheme = "all";
  std::string taskset_path;
  std::size_t procs = 2;
  std::uint64_t seed = 20200309;
  const CommonFlagSet accepts{
      .seed = true, .horizon = true, .horizon_cap_alias = true};
  CommonOptions common;
  for (Args a{argc, argv}; !a.done(); ++a.i) {
    if (parse_common_flag(a, accepts, common)) continue;
    const std::string arg = a.arg();
    if (arg == "--scheme") {
      scheme = a.value(arg);
    } else if (arg == "--procs") {
      procs = parse_procs(arg, a.value(arg));
    } else if (arg == "--taskset") {
      taskset_path = a.value(arg);
    } else if (arg == "--no-bursts") {
      cfg.include_bursts = false;
    } else {
      throw UsageError("unknown option '" + arg + "'");
    }
  }
  if (common.seed) seed = *common.seed;
  if (common.horizon) cfg.horizon_cap = *common.horizon;
  cfg.platform = sim::PlatformSpec::standby(procs);

  // Campaign schemes come from the registry, so a newly registered scheduler
  // is adversarially fault-tested without this file changing.
  const auto campaign_scheme = [](const sched::SchemeInfo* info) {
    return fault::CampaignScheme{info->title,
                                 [info] { return info->make(); }};
  };
  std::vector<fault::CampaignScheme> schemes;
  if (scheme == "all") {
    for (const sched::SchemeInfo* info : sched::Registry::instance().all()) {
      if (!info->supports(procs)) {
        std::printf("note: skipping %s (does not support %zu processors)\n",
                    info->name.c_str(), procs);
        continue;
      }
      schemes.push_back(campaign_scheme(info));
    }
  } else {
    const sched::SchemeInfo& info = parse_scheme(scheme);
    if (!info.supports(procs)) {
      throw UsageError("scheme '" + info.name + "' does not support --procs " +
                       std::to_string(procs));
    }
    schemes.push_back(campaign_scheme(&info));
  }
  std::vector<fault::CampaignCase> cases;
  if (taskset_path.empty()) {
    cases = fault::default_campaign_cases(seed);
  } else {
    cases.push_back({taskset_path, io::parse_taskset_file(taskset_path)});
  }

  const fault::CampaignResult result =
      fault::run_campaign(cases, schemes, cfg);
  std::printf("%s\n", result.summary().c_str());
  return result.ok() ? 0 : kExitAuditViolation;
}

int cmd_fuzz(int argc, char** argv) {
  fault::FuzzConfig cfg;
  std::string scheme = "all";
  const CommonFlagSet accepts{.threads = true,
                              .seed = true,
                              .horizon = true,
                              .horizon_cap_alias = true,
                              .error_dir = true};
  CommonOptions common;
  for (Args a{argc, argv}; !a.done(); ++a.i) {
    if (parse_common_flag(a, accepts, common)) continue;
    const std::string arg = a.arg();
    if (arg == "--runs") {
      cfg.runs = parse_u64(arg, a.value(arg));
    } else if (arg == "--procs") {
      cfg.procs = {parse_procs(arg, a.value(arg))};
    } else if (arg == "--procs-range") {
      const std::string v = a.value(arg);
      const std::size_t dots = v.find("..");
      if (dots == std::string::npos) {
        throw UsageError("--procs-range wants a..b, got '" + v + "'");
      }
      const std::string lo_s = v.substr(0, dots), hi_s = v.substr(dots + 2);
      const std::size_t lo = parse_procs(arg, lo_s.c_str());
      const std::size_t hi = parse_procs(arg, hi_s.c_str());
      if (hi < lo) throw UsageError("--procs-range wants a..b with a <= b");
      cfg.procs.clear();
      for (std::size_t p = lo; p <= hi; ++p) cfg.procs.push_back(p);
    } else if (arg == "--scheme") {
      scheme = a.value(arg);
    } else if (arg == "--budget-ms") {
      cfg.run_budget_ms = parse_positive_ms(arg, a.value(arg));
    } else if (arg == "--no-shrink") {
      cfg.shrink = false;
    } else {
      throw UsageError("unknown option '" + arg + "'");
    }
  }
  if (common.threads) cfg.num_threads = *common.threads;
  if (common.seed) cfg.seed = *common.seed;
  if (common.horizon) cfg.horizon_cap = *common.horizon;
  if (common.error_dir) cfg.error_dir = *common.error_dir;
  if (scheme != "all") cfg.schemes = {parse_scheme(scheme).name};

  const fault::FuzzResult result = fault::run_fuzz(cfg);
  std::printf("%s", result.summary().c_str());
  return result.ok() ? 0 : kExitAuditViolation;
}

/// Replays one bundle; returns 0 or kExitAuditViolation. An unknown scheme
/// or scenario in the bundle is a bad *input*, so it maps to io::ParseError
/// (exit 3) rather than a silent skip.
int replay_one(const std::string& path, double budget_ms) {
  const io::ReproBundle bundle = io::parse_repro_bundle_file(path);
  fault::ReproVerdict v;
  try {
    v = fault::replay_bundle(bundle, budget_ms);
  } catch (const std::invalid_argument& e) {
    throw io::ParseError(path + ": " + e.what());
  }
  if (v.violated) {
    std::printf("%s: VIOLATED %s%s%s%s\n", path.c_str(), v.kind.c_str(),
                v.invariant.empty() ? "" : " (",
                v.invariant.c_str(), v.invariant.empty() ? "" : ")");
    std::fprintf(stderr, "%s\n", v.detail.c_str());
    return kExitAuditViolation;
  }
  std::printf("%s: clean (scheme %s, %zu task(s), %s)\n", path.c_str(),
              bundle.scheme.c_str(), bundle.ts.size(),
              core::format_ticks(bundle.horizon).c_str());
  return 0;
}

int cmd_replay(const std::string& path, int argc, char** argv) {
  double budget_ms = 10000;
  for (Args a{argc, argv}; !a.done(); ++a.i) {
    if (a.arg() == "--budget-ms") {
      budget_ms = parse_positive_ms(a.arg(), a.value(a.arg()));
    } else {
      throw UsageError("unknown option '" + a.arg() + "'");
    }
  }
  std::vector<std::string> bundles;
  if (std::filesystem::is_directory(path)) {
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.size() > 10 &&
          name.rfind(".repro.txt") == name.size() - 10) {
        bundles.push_back(entry.path().string());
      }
    }
    std::sort(bundles.begin(), bundles.end());
    if (bundles.empty()) {
      throw io::ParseError("no *.repro.txt bundles in '" + path + "'");
    }
  } else {
    bundles.push_back(path);
  }
  int exit_code = 0;
  for (const std::string& bundle : bundles) {
    exit_code = std::max(exit_code, replay_one(bundle, budget_ms));
  }
  if (bundles.size() > 1) {
    std::printf("replayed %zu bundle(s): %s\n", bundles.size(),
                exit_code == 0 ? "all clean" : "violations reproduced");
  }
  return exit_code;
}

int cmd_example() {
  std::fputs(
      "# (m,k)-firm task set -- times in ms, first line = highest priority\n"
      "# name  period deadline wcet m k\n"
      "control 5      4        3    2 4\n"
      "video   10     10       3    1 2\n",
      stdout);
  return 0;
}

int cmd_serve(int argc, char** argv) {
  harness::ServeConfig cfg;
  std::string input_path;
  const CommonFlagSet accepts{.horizon = true};
  CommonOptions common;
  for (Args a{argc, argv}; !a.done(); ++a.i) {
    if (parse_common_flag(a, accepts, common)) continue;
    const std::string arg = a.arg();
    if (arg == "--workers") {
      cfg.workers = static_cast<std::size_t>(parse_u64(arg, a.value(arg)));
    } else if (arg == "--queue-depth") {
      cfg.queue_depth = static_cast<std::size_t>(parse_u64(arg, a.value(arg)));
      if (cfg.queue_depth == 0) {
        throw UsageError("--queue-depth wants a positive depth");
      }
    } else if (arg == "--input") {
      input_path = a.value(arg);
    } else if (arg == "--budget-ms") {
      cfg.run_budget_ms = parse_positive_ms(arg, a.value(arg));
    } else {
      throw UsageError("unknown option '" + arg + "'");
    }
  }
  if (common.horizon) cfg.horizon_cap = *common.horizon;

  harness::ServeTelemetry t;
  if (input_path.empty()) {
    t = harness::serve_stream(std::cin, std::cout, cfg);
  } else {
    std::ifstream in(input_path);
    if (!in) throw io::ParseError("cannot open '" + input_path + "'");
    t = harness::serve_stream(in, std::cout, cfg);
  }
  // Telemetry goes to stderr so the stdout response stream stays pure JSONL.
  std::fprintf(stderr,
               "served %llu request(s): %llu ok, %llu error(s); "
               "max queue depth %zu; timeline cache %llu hit(s), "
               "%llu miss(es); %.3fs\n",
               static_cast<unsigned long long>(t.requests),
               static_cast<unsigned long long>(t.ok),
               static_cast<unsigned long long>(t.errors), t.max_queue_depth,
               static_cast<unsigned long long>(t.timeline_hits),
               static_cast<unsigned long long>(t.timeline_misses),
               t.wall_seconds);
  return 0;
}

const std::vector<Command>& command_table() {
  static const std::vector<Command> table = {
      {"analyze",
       {"<taskset.txt>"},
       "schedulability report, promotion times Y_i and postponement theta_i",
       1,
       [](int argc, char** argv) {
         (void)argc;
         return cmd_analyze(argv[0]);
       }},
      {"schemes",
       {"[--names] [--procs n]"},
       "list every registered scheduler",
       0,
       cmd_schemes},
      {"simulate",
       {"<taskset.txt> [--scheme name] [--procs n]",
        "[--horizon ms] [--permanent proc@ms] [--lambda r]",
        "[--seed n] [--gantt] [--json]"},
       "run one scheme over the task set and report schedule/energy/QoS",
       1,
       [](int argc, char** argv) {
         return cmd_simulate(argv[0], argc - 1, argv + 1);
       }},
      {"sweep",
       {"[--scenario none|permanent|transient] [--sets n]",
        "[--threads n] [--seed n] [--horizon ms] [--no-audit]",
        "[--error-dir dir]"},
       "run the Figure-6 style sweep and print the table + CSV",
       0,
       cmd_sweep},
      {"audit",
       {"<taskset.txt> [simulate options]"},
       "run one scheme and certify the trace with the structural auditor",
       1,
       [](int argc, char** argv) {
         return cmd_audit(argv[0], argc - 1, argv + 1);
       }},
      {"campaign",
       {"[--scheme name|all] [--procs n]",
        "[--taskset file] [--horizon ms] [--seed n]", "[--no-bursts]"},
       "enumerate adversarial fault placements and audit every run",
       0,
       cmd_campaign},
      {"fuzz",
       {"[--runs n] [--seed n] [--procs n | --procs-range a..b]",
        "[--scheme name|all] [--threads n] [--horizon ms]",
        "[--budget-ms ms] [--no-shrink] [--error-dir dir]"},
       "chaos campaign with delta-debugged repro shrinking",
       0,
       cmd_fuzz},
      {"replay",
       {"<bundle.repro.txt | bundle-dir> [--budget-ms ms]"},
       "re-run repro bundles audited",
       1,
       [](int argc, char** argv) {
         return cmd_replay(argv[0], argc - 1, argv + 1);
       }},
      {"serve",
       {"[--workers n] [--queue-depth n] [--input file]",
        "[--horizon ms] [--budget-ms ms]"},
       "long-lived JSONL admission service on stdin/stdout",
       0,
       cmd_serve},
      {"example",
       {""},
       "print a template task-set file",
       0,
       [](int, char**) { return cmd_example(); }},
  };
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string name = argv[1];
  const Command* cmd = nullptr;
  for (const Command& candidate : command_table()) {
    if (name == candidate.name) {
      cmd = &candidate;
      break;
    }
  }
  if (cmd == nullptr) {
    std::fprintf(stderr, "error: unknown command '%s' (available: %s)\n",
                 name.c_str(), known_commands().c_str());
    return kExitUsage;
  }
  try {
    if (static_cast<std::size_t>(argc - 2) < cmd->min_positional) {
      throw UsageError(name + " wants " + cmd->usage_lines[0]);
    }
    return cmd->handler(argc - 2, argv + 2);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  } catch (const io::ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInput;
  } catch (const audit::AuditViolationError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitAuditViolation;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
