// mkss_cli -- command-line front end for the library.
//
//   mkss_cli analyze  <taskset.txt>
//       schedulability report, promotion times Y_i and postponement theta_i.
//
//   mkss_cli simulate <taskset.txt> [options]
//       run one scheme over the task set and report schedule/energy/QoS.
//         --scheme st|dp|greedy|selective   (default selective)
//         --horizon <ms>                    (default pattern hyperperiod)
//         --permanent <proc>@<ms>           inject a permanent fault (0|1)
//         --lambda <rate-per-ms>            transient fault rate (default 0)
//         --seed <n>                        fault derandomization seed
//         --gantt                           print the ASCII schedule
//         --json                            dump the full trace as JSON
//
//   mkss_cli sweep [--scenario none|permanent|transient] [--sets <n>]
//                  [--threads <n>] [--no-audit] [--error-dir <dir>]
//       run the Figure-6 style sweep and print the table + CSV.
//       --threads 0 uses every hardware thread; results are bit-identical
//       for any thread count (default 1). Every run is audited unless
//       --no-audit; quarantined errors dump repro bundles to --error-dir.
//
//   mkss_cli audit <taskset.txt> [simulate options]
//       run one scheme and certify the trace with the structural auditor.
//
//   mkss_cli campaign [--scheme st|dp|greedy|selective|all]
//                     [--taskset <file>] [--horizon-cap <ms>] [--seed <n>]
//                     [--no-bursts]
//       enumerate adversarial fault placements (permanent faults at every
//       inspecting point, targeted/bursty transients) and audit every run.
//
//   mkss_cli example
//       print a template task-set file.
//
// Exit codes: 0 success, 1 run-time failure (e.g. QoS not satisfied),
// 2 usage error, 3 malformed input, 4 audit/campaign violation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "io/taskset_io.hpp"
#include "io/trace_json.hpp"
#include "mkss.hpp"

using namespace mkss;

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitInput = 3;
constexpr int kExitAuditViolation = 4;

/// Thrown by subcommands on bad flags; mapped to kExitUsage in main.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

int usage() {
  std::fputs(
      "usage: mkss_cli analyze <taskset.txt>\n"
      "       mkss_cli simulate <taskset.txt> [--scheme st|dp|greedy|selective]\n"
      "                [--horizon ms] [--permanent proc@ms] [--lambda r]\n"
      "                [--seed n] [--gantt] [--json]\n"
      "       mkss_cli sweep [--scenario none|permanent|transient] [--sets n]\n"
      "                [--threads n] [--no-audit] [--error-dir dir]\n"
      "       mkss_cli audit <taskset.txt> [simulate options]\n"
      "       mkss_cli campaign [--scheme st|dp|greedy|selective|all]\n"
      "                [--taskset file] [--horizon-cap ms] [--seed n]\n"
      "                [--no-bursts]\n"
      "       mkss_cli example\n"
      "exit codes: 0 ok, 1 failure, 2 usage, 3 bad input, 4 audit violation\n",
      stderr);
  return kExitUsage;
}

int cmd_analyze(const std::string& path) {
  const core::TaskSet ts = io::parse_taskset_file(path);
  std::printf("task set: %s\n", ts.describe().c_str());
  std::printf("utilization %.3f, (m,k)-utilization %.3f\n", ts.total_utilization(),
              ts.total_mk_utilization());

  const auto sched_report = analysis::analyze_schedulability(ts);
  std::printf("R-pattern schedulable: %s\nfull set schedulable:  %s\n",
              sched_report.r_pattern_feasible ? "yes" : "no",
              sched_report.full_set_feasible ? "yes" : "no");

  const auto promos = analysis::promotion_times(ts);
  const auto post = analysis::compute_postponement(ts);
  report::Table table({"task", "R (mand.)", "R (full)", "Y", "theta", "theta source"});
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    const auto fmt_opt = [](const std::optional<core::Ticks>& t) {
      return t ? core::format_ticks(*t) : std::string("-");
    };
    const char* source = "zero";
    if (post.per_task[i].source == analysis::ThetaSource::kExact) source = "exact";
    if (post.per_task[i].source == analysis::ThetaSource::kPromotion) {
      source = "promotion";
    }
    table.add_row({ts[i].name, fmt_opt(sched_report.response_mandatory[i]),
                   fmt_opt(sched_report.response_full[i]), fmt_opt(promos[i]),
                   core::format_ticks(post.theta(i)), source});
  }
  std::printf("\n%s", table.to_string().c_str());
  return sched_report.r_pattern_feasible ? 0 : 1;
}

sched::SchemeKind parse_scheme(const std::string& v) {
  if (v == "st") return sched::SchemeKind::kSt;
  if (v == "dp") return sched::SchemeKind::kDp;
  if (v == "greedy") return sched::SchemeKind::kGreedy;
  if (v == "selective") return sched::SchemeKind::kSelective;
  throw UsageError("unknown scheme '" + v + "'");
}

struct SimulateOptions {
  sched::SchemeKind kind{sched::SchemeKind::kSelective};
  core::Ticks horizon{0};
  std::optional<sim::PermanentFault> permanent;
  double lambda{0.0};
  std::uint64_t seed{1};
  bool gantt{false};
  bool json{false};
};

SimulateOptions parse_simulate_options(int argc, char** argv) {
  SimulateOptions opt;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw UsageError("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--scheme") {
      opt.kind = parse_scheme(next());
    } else if (arg == "--horizon") {
      opt.horizon = core::from_ms(std::atof(next()));
    } else if (arg == "--permanent") {
      const std::string v = next();
      const auto at = v.find('@');
      if (at == std::string::npos) throw UsageError("--permanent wants proc@ms");
      opt.permanent = sim::PermanentFault{
          static_cast<sim::ProcessorId>(std::atoi(v.substr(0, at).c_str())),
          core::from_ms(std::atof(v.substr(at + 1).c_str()))};
    } else if (arg == "--lambda") {
      opt.lambda = std::atof(next());
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--gantt") {
      opt.gantt = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else {
      throw UsageError("unknown option '" + arg + "'");
    }
  }
  return opt;
}

harness::RunResult run_simulate(const core::TaskSet& ts,
                                const SimulateOptions& opt) {
  core::Ticks horizon = opt.horizon;
  if (horizon <= 0) {
    horizon = harness::choose_horizon(ts, core::from_ms(std::int64_t{10000}));
  }
  const fault::ScenarioFaultPlan plan(
      opt.permanent, fault::transient_probabilities(ts, opt.lambda), opt.seed);
  sim::SimConfig cfg;
  cfg.horizon = horizon;
  return harness::run_one(ts, opt.kind, plan, cfg);
}

int cmd_simulate(const std::string& path, int argc, char** argv) {
  const core::TaskSet ts = io::parse_taskset_file(path);
  const SimulateOptions opt = parse_simulate_options(argc, argv);
  const sched::SchemeKind kind = opt.kind;
  const bool gantt = opt.gantt, json = opt.json;
  const auto run = run_simulate(ts, opt);
  const core::Ticks horizon = run.trace.horizon;

  if (json) {
    std::fputs(io::trace_to_json(run.trace, ts).c_str(), stdout);
    return run.qos.mk_satisfied ? 0 : 1;
  }

  std::printf("scheme %s over %s\n", sched::to_string(kind),
              core::format_ticks(horizon).c_str());
  std::printf("energy: %.2f units (active %.2f)\n", run.energy.total(),
              run.energy.active_total());
  std::printf("jobs: %llu released, %llu met, %llu missed; backups canceled %llu\n",
              static_cast<unsigned long long>(run.trace.stats.jobs_released),
              static_cast<unsigned long long>(run.trace.stats.jobs_met),
              static_cast<unsigned long long>(run.trace.stats.jobs_missed),
              static_cast<unsigned long long>(run.trace.stats.backups_canceled));
  std::printf("(m,k) satisfied: %s; mandatory misses: %llu\n",
              run.qos.mk_satisfied ? "yes" : "NO",
              static_cast<unsigned long long>(run.qos.mandatory_misses));
  report::Table qtable({"task", "jobs", "met", "missed", "miss rate"});
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    const auto& q = run.qos.per_task[i];
    qtable.add_row({ts[i].name, std::to_string(q.jobs), std::to_string(q.met),
                    std::to_string(q.missed), report::fmt_percent(q.miss_rate())});
  }
  std::printf("\n%s", qtable.to_string().c_str());
  if (gantt) {
    std::printf("\n%s", sim::render_gantt(run.trace, ts).c_str());
  }
  return run.qos.mk_satisfied ? 0 : 1;
}

int cmd_sweep(int argc, char** argv) {
  harness::SweepConfig cfg;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenario" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "none") cfg.scenario = fault::Scenario::kNoFault;
      else if (v == "permanent") cfg.scenario = fault::Scenario::kPermanentOnly;
      else if (v == "transient") cfg.scenario = fault::Scenario::kPermanentAndTransient;
      else throw UsageError("unknown scenario '" + v + "'");
    } else if (arg == "--sets" && i + 1 < argc) {
      cfg.sets_per_bin = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      cfg.num_threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--no-audit") {
      cfg.audit = false;
    } else if (arg == "--error-dir" && i + 1 < argc) {
      cfg.error_dir = argv[++i];
    } else {
      throw UsageError("unknown option '" + arg + "'");
    }
  }
  const auto result = harness::run_sweep(cfg);
  std::printf("%s", result.to_table().to_string().c_str());
  std::printf("\nmax gain selective over DP: %s; audit failures: %llu\n",
              report::fmt_percent(result.max_gain(2, 1)).c_str(),
              static_cast<unsigned long long>(result.qos_failures));
  for (const harness::SweepError& err : result.errors) {
    std::fprintf(stderr,
                 "quarantined: bin %zu set %zu variant %s (stream seed %llu): %s\n",
                 err.bin, err.set, err.variant.c_str(),
                 static_cast<unsigned long long>(err.seed), err.message.c_str());
  }
  if (!result.errors.empty()) {
    std::fprintf(stderr, "%zu run(s) quarantined%s\n", result.errors.size(),
                 cfg.error_dir.empty()
                     ? ""
                     : (", repro bundles in " + cfg.error_dir).c_str());
    return kExitAuditViolation;
  }
  return 0;
}

int cmd_audit(const std::string& path, int argc, char** argv) {
  const core::TaskSet ts = io::parse_taskset_file(path);
  const SimulateOptions opt = parse_simulate_options(argc, argv);
  const auto run = run_simulate(ts, opt);
  audit::AuditOptions options;
  const audit::AuditReport report = audit::TraceAuditor(options).audit(run.trace, ts);
  if (!report.ok()) {
    std::fprintf(stderr, "audit FAILED with %zu violation(s):\n%s",
                 report.violations.size(), report.to_string().c_str());
    return kExitAuditViolation;
  }
  std::printf("audit clean: %llu jobs, %zu copies, %zu segments over %s\n",
              static_cast<unsigned long long>(run.trace.stats.jobs_released),
              run.trace.copies.size(), run.trace.segments.size(),
              core::format_ticks(run.trace.horizon).c_str());
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  fault::CampaignConfig cfg;
  std::string scheme = "all";
  std::string taskset_path;
  std::uint64_t seed = 20200309;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw UsageError("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--scheme") {
      scheme = next();
    } else if (arg == "--taskset") {
      taskset_path = next();
    } else if (arg == "--horizon-cap") {
      cfg.horizon_cap = core::from_ms(std::atof(next()));
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--no-bursts") {
      cfg.include_bursts = false;
    } else {
      throw UsageError("unknown option '" + arg + "'");
    }
  }

  std::vector<fault::CampaignScheme> schemes;
  if (scheme == "all") {
    schemes = fault::paper_schemes();
  } else {
    const sched::SchemeKind kind = parse_scheme(scheme);
    schemes.push_back({sched::to_string(kind), [kind] {
                         return sched::make_scheme(kind);
                       }});
  }
  std::vector<fault::CampaignCase> cases;
  if (taskset_path.empty()) {
    cases = fault::default_campaign_cases(seed);
  } else {
    cases.push_back({taskset_path, io::parse_taskset_file(taskset_path)});
  }

  const fault::CampaignResult result =
      fault::run_campaign(cases, schemes, cfg);
  std::printf("%s\n", result.summary().c_str());
  return result.ok() ? 0 : kExitAuditViolation;
}

int cmd_example() {
  std::fputs(
      "# (m,k)-firm task set -- times in ms, first line = highest priority\n"
      "# name  period deadline wcet m k\n"
      "control 5      4        3    2 4\n"
      "video   10     10       3    1 2\n",
      stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "analyze" && argc >= 3) return cmd_analyze(argv[2]);
    if (cmd == "simulate" && argc >= 3) return cmd_simulate(argv[2], argc - 3, argv + 3);
    if (cmd == "sweep") return cmd_sweep(argc - 2, argv + 2);
    if (cmd == "audit" && argc >= 3) return cmd_audit(argv[2], argc - 3, argv + 3);
    if (cmd == "campaign") return cmd_campaign(argc - 2, argv + 2);
    if (cmd == "example") return cmd_example();
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  } catch (const io::ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInput;
  } catch (const audit::AuditViolationError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitAuditViolation;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
