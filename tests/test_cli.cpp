// Integration tests: the mkss_cli binary itself -- exit-code contract
// (0 ok, 1 failure, 2 usage, 3 bad input, 4 audit violation) and the
// audit/campaign subcommands, exercised through real process invocations.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

struct CliResult {
  int exit_code{-1};
  std::string output;  ///< stdout and stderr combined
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(MKSS_CLI_PATH) + " " + args + " 2>&1";
  CliResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

/// Writes `content` to a unique file under the test temp dir.
std::string write_temp(const std::string& stem, const std::string& content) {
  const auto path =
      std::filesystem::temp_directory_path() /
      ("mkss_cli_test_" + stem + "_" + std::to_string(::getpid()) + ".txt");
  std::ofstream(path) << content;
  return path.string();
}

constexpr const char* kFig1 =
    "control 5 4 3 2 4\n"
    "video   10 10 3 1 2\n";

TEST(Cli, NoArgumentsPrintsUsage) {
  const CliResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownOptionIsUsageError) {
  const std::string ts = write_temp("usage", kFig1);
  const CliResult r = run_cli("simulate " + ts + " --bogus");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--bogus"), std::string::npos);
  std::filesystem::remove(ts);
}

TEST(Cli, MalformedTasksetIsInputError) {
  const std::string ts = write_temp("nan", "bad nan 1 1 1 2\n");
  const CliResult r = run_cli("analyze " + ts);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.output.find("line 1"), std::string::npos);
  std::filesystem::remove(ts);
}

TEST(Cli, MissingFileIsInputError) {
  const CliResult r = run_cli("analyze /nonexistent/taskset.txt");
  EXPECT_EQ(r.exit_code, 3);
}

TEST(Cli, SimulateReportsSchedule) {
  const std::string ts = write_temp("sim", kFig1);
  const CliResult r = run_cli("simulate " + ts + " --scheme st");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("(m,k) satisfied: yes"), std::string::npos);
  std::filesystem::remove(ts);
}

TEST(Cli, AuditCleanSchemeExitsZero) {
  const std::string ts = write_temp("audit", kFig1);
  const CliResult r =
      run_cli("audit " + ts + " --scheme selective --permanent 1@7");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("audit clean"), std::string::npos);
  std::filesystem::remove(ts);
}

TEST(Cli, CampaignOnTasksetExitsZero) {
  const std::string ts = write_temp("campaign", kFig1);
  const CliResult r = run_cli("campaign --taskset " + ts + " --scheme st");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos);
  std::filesystem::remove(ts);
}

// --- Shared option parser: --threads/--seed/--horizon/--error-dir must be
// spelled and validated identically across sweep, audit and campaign. -----

TEST(Cli, SharedSeedValidationIsIdenticalAcrossCommands) {
  const std::string ts = write_temp("seedval", kFig1);
  const char* expect = "--seed wants a non-negative integer, got '12x'";
  for (const std::string cmd :
       {std::string("sweep --seed 12x"), "audit " + ts + " --seed 12x",
        std::string("campaign --seed 12x")}) {
    const CliResult r = run_cli(cmd);
    EXPECT_EQ(r.exit_code, 2) << cmd;
    EXPECT_NE(r.output.find(expect), std::string::npos) << cmd << "\n" << r.output;
  }
  std::filesystem::remove(ts);
}

TEST(Cli, SharedHorizonValidationIsIdenticalAcrossCommands) {
  const std::string ts = write_temp("horval", kFig1);
  const char* expect = "wants a positive duration in ms, got '-5'";
  for (const std::string cmd :
       {std::string("sweep --horizon -5"), "audit " + ts + " --horizon -5",
        std::string("campaign --horizon -5")}) {
    const CliResult r = run_cli(cmd);
    EXPECT_EQ(r.exit_code, 2) << cmd;
    EXPECT_NE(r.output.find(expect), std::string::npos) << cmd << "\n" << r.output;
  }
  std::filesystem::remove(ts);
}

TEST(Cli, SharedFlagMissingValueIsUsageError) {
  const CliResult r = run_cli("sweep --threads");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("missing value for --threads"), std::string::npos);
}

TEST(Cli, SweepThreadsRejectsGarbage) {
  const CliResult r = run_cli("sweep --threads two");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--threads wants a non-negative integer"),
            std::string::npos);
}

TEST(Cli, SweepAcceptsSeedAndHorizon) {
  const CliResult r =
      run_cli("sweep --sets 1 --seed 7 --horizon 2000 --threads 2 --no-audit");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("bin"), std::string::npos);
}

TEST(Cli, CampaignHorizonCapAliasMatchesHorizon) {
  const std::string ts = write_temp("alias", kFig1);
  const CliResult canonical =
      run_cli("campaign --taskset " + ts + " --scheme st --horizon 40");
  const CliResult alias =
      run_cli("campaign --taskset " + ts + " --scheme st --horizon-cap 40");
  EXPECT_EQ(canonical.exit_code, 0) << canonical.output;
  EXPECT_EQ(alias.exit_code, 0) << alias.output;
  EXPECT_EQ(canonical.output, alias.output);
  std::filesystem::remove(ts);
}

TEST(Cli, AuditAcceptsSharedSeedAndHorizon) {
  const std::string ts = write_temp("auditshared", kFig1);
  const CliResult r =
      run_cli("audit " + ts + " --scheme selective --seed 3 --horizon 40");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("audit clean"), std::string::npos);
  std::filesystem::remove(ts);
}

TEST(Cli, ExampleOutputRoundTripsThroughAnalyze) {
  const CliResult example = run_cli("example");
  ASSERT_EQ(example.exit_code, 0);
  const std::string ts = write_temp("example", example.output);
  const CliResult r = run_cli("analyze " + ts);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::filesystem::remove(ts);
}

}  // namespace
