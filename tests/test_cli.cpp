// Integration tests: the mkss_cli binary itself -- exit-code contract
// (0 ok, 1 failure, 2 usage, 3 bad input, 4 audit violation) and the
// audit/campaign subcommands, exercised through real process invocations.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct CliResult {
  int exit_code{-1};
  std::string output;  ///< stdout and stderr combined
};

/// `env_prefix` (e.g. "MKSS_ENABLE_CANARY_SCHEMES=1 ") is prepended to the
/// command, so it only applies to the spawned CLI process.
CliResult run_cli(const std::string& args, const std::string& env_prefix = "") {
  const std::string cmd =
      env_prefix + std::string(MKSS_CLI_PATH) + " " + args + " 2>&1";
  CliResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

/// Writes `content` to a unique file under the test temp dir.
std::string write_temp(const std::string& stem, const std::string& content) {
  const auto path =
      std::filesystem::temp_directory_path() /
      ("mkss_cli_test_" + stem + "_" + std::to_string(::getpid()) + ".txt");
  std::ofstream(path) << content;
  return path.string();
}

constexpr const char* kFig1 =
    "control 5 4 3 2 4\n"
    "video   10 10 3 1 2\n";

TEST(Cli, NoArgumentsPrintsUsage) {
  const CliResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownOptionIsUsageError) {
  const std::string ts = write_temp("usage", kFig1);
  const CliResult r = run_cli("simulate " + ts + " --bogus");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--bogus"), std::string::npos);
  std::filesystem::remove(ts);
}

TEST(Cli, MalformedTasksetIsInputError) {
  const std::string ts = write_temp("nan", "bad nan 1 1 1 2\n");
  const CliResult r = run_cli("analyze " + ts);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.output.find("line 1"), std::string::npos);
  std::filesystem::remove(ts);
}

TEST(Cli, MissingFileIsInputError) {
  const CliResult r = run_cli("analyze /nonexistent/taskset.txt");
  EXPECT_EQ(r.exit_code, 3);
}

TEST(Cli, SimulateReportsSchedule) {
  const std::string ts = write_temp("sim", kFig1);
  const CliResult r = run_cli("simulate " + ts + " --scheme st");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("(m,k) satisfied: yes"), std::string::npos);
  std::filesystem::remove(ts);
}

TEST(Cli, AuditCleanSchemeExitsZero) {
  const std::string ts = write_temp("audit", kFig1);
  const CliResult r =
      run_cli("audit " + ts + " --scheme selective --permanent 1@7");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("audit clean"), std::string::npos);
  std::filesystem::remove(ts);
}

TEST(Cli, CampaignOnTasksetExitsZero) {
  const std::string ts = write_temp("campaign", kFig1);
  const CliResult r = run_cli("campaign --taskset " + ts + " --scheme st");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos);
  std::filesystem::remove(ts);
}

// --- Scheduler registry surface: `schemes`, --scheme resolution and the
// --procs platform flag. ---------------------------------------------------

TEST(Cli, UnknownSchemeIsUsageErrorListingAvailableSchemes) {
  const std::string ts = write_temp("unknownscheme", kFig1);
  const CliResult r = run_cli("simulate " + ts + " --scheme no_such_scheme");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("unknown scheme 'no_such_scheme'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("available:"), std::string::npos) << r.output;
  for (const char* name : {"st", "dp", "greedy", "selective", "global_fp",
                           "partitioned_fp", "global_edf", "multi_spare"}) {
    EXPECT_NE(r.output.find(name), std::string::npos)
        << "error does not list " << name << ":\n" << r.output;
  }
  std::filesystem::remove(ts);
}

TEST(Cli, SchemesSubcommandListsEveryRegisteredScheme) {
  const CliResult r = run_cli("schemes");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* title : {"MKSS_ST", "MKSS_DP", "MKSS_greedy",
                            "MKSS_selective", "Global-FP", "Partitioned-FP",
                            "Global-EDF", "Multi-spare"}) {
    EXPECT_NE(r.output.find(title), std::string::npos)
        << "table is missing " << title << ":\n" << r.output;
  }
}

TEST(Cli, SchemesNamesPrintsBareSortedNames) {
  const CliResult r = run_cli("schemes --names");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // One bare name per line, sorted -- the CI matrix consumes this verbatim.
  std::vector<std::string> names;
  std::string line;
  for (std::istringstream in(r.output); std::getline(in, line);) {
    names.push_back(line);
  }
  EXPECT_GE(names.size(), 8u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end())) << r.output;
  EXPECT_NE(std::find(names.begin(), names.end(), "selective"), names.end());
  EXPECT_EQ(r.output.find(' '), std::string::npos) << r.output;
}

TEST(Cli, SchemesNamesProcsFiltersToSupportingSchemes) {
  const CliResult r = run_cli("schemes --names --procs 4");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* nproc : {"global_fp", "partitioned_fp", "global_edf",
                            "multi_spare"}) {
    EXPECT_NE(r.output.find(nproc), std::string::npos) << r.output;
  }
  for (const std::string dual_only : {"st", "dp", "greedy", "selective"}) {
    EXPECT_EQ(r.output.find(dual_only + "\n"), std::string::npos)
        << dual_only << " claims 4-processor support:\n" << r.output;
  }
}

TEST(Cli, SimulateNewSchemeOnFourProcessors) {
  const std::string ts = write_temp("fourproc", kFig1);
  const CliResult r =
      run_cli("simulate " + ts + " --scheme multi_spare --procs 4");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("scheme Multi-spare"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("(m,k) satisfied: yes"), std::string::npos)
      << r.output;
  std::filesystem::remove(ts);
}

TEST(Cli, DualOnlySchemeRejectsFourProcessors) {
  const std::string ts = write_temp("dualonly", kFig1);
  const CliResult r = run_cli("simulate " + ts + " --scheme st --procs 4");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("does not support --procs 4"), std::string::npos)
      << r.output;
  std::filesystem::remove(ts);
}

TEST(Cli, ProcsOutsidePlatformEnvelopeIsUsageError) {
  const std::string ts = write_temp("procsrange", kFig1);
  for (const char* bad : {"0", "1", "256", "two"}) {
    const CliResult r =
        run_cli("simulate " + ts + " --scheme global_fp --procs " +
                std::string(bad));
    EXPECT_EQ(r.exit_code, 2) << bad << ":\n" << r.output;
  }
  std::filesystem::remove(ts);
}

TEST(Cli, PermanentFaultOutsidePlatformIsUsageError) {
  const std::string ts = write_temp("pfoutside", kFig1);
  const CliResult r = run_cli("simulate " + ts + " --scheme st --permanent 2@7");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  std::filesystem::remove(ts);
}

TEST(Cli, AuditNewSchemesOnFourProcessorsWithPermanentFault) {
  const std::string ts = write_temp("auditnproc", kFig1);
  for (const char* scheme : {"global_fp", "partitioned_fp", "global_edf",
                             "multi_spare"}) {
    const CliResult r = run_cli("audit " + ts + " --scheme " +
                                std::string(scheme) +
                                " --procs 4 --permanent 0@7");
    EXPECT_EQ(r.exit_code, 0) << scheme << ":\n" << r.output;
    EXPECT_NE(r.output.find("audit clean"), std::string::npos) << r.output;
  }
  std::filesystem::remove(ts);
}

TEST(Cli, CampaignSkipsDualOnlySchemesOnLargerPlatforms) {
  const std::string ts = write_temp("campskip", kFig1);
  const CliResult r = run_cli("campaign --taskset " + ts +
                              " --scheme all --procs 3 --horizon 40");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("skipping st"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos) << r.output;
  std::filesystem::remove(ts);
}

// --- Shared option parser: --threads/--seed/--horizon/--error-dir must be
// spelled and validated identically across sweep, audit and campaign. -----

TEST(Cli, SharedSeedValidationIsIdenticalAcrossCommands) {
  const std::string ts = write_temp("seedval", kFig1);
  const char* expect = "--seed wants a non-negative integer, got '12x'";
  for (const std::string& cmd :
       {std::string("sweep --seed 12x"), "audit " + ts + " --seed 12x",
        std::string("campaign --seed 12x")}) {
    const CliResult r = run_cli(cmd);
    EXPECT_EQ(r.exit_code, 2) << cmd;
    EXPECT_NE(r.output.find(expect), std::string::npos) << cmd << "\n" << r.output;
  }
  std::filesystem::remove(ts);
}

TEST(Cli, SharedHorizonValidationIsIdenticalAcrossCommands) {
  const std::string ts = write_temp("horval", kFig1);
  const char* expect = "wants a positive duration in ms, got '-5'";
  for (const std::string& cmd :
       {std::string("sweep --horizon -5"), "audit " + ts + " --horizon -5",
        std::string("campaign --horizon -5")}) {
    const CliResult r = run_cli(cmd);
    EXPECT_EQ(r.exit_code, 2) << cmd;
    EXPECT_NE(r.output.find(expect), std::string::npos) << cmd << "\n" << r.output;
  }
  std::filesystem::remove(ts);
}

TEST(Cli, SharedFlagMissingValueIsUsageError) {
  const CliResult r = run_cli("sweep --threads");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("missing value for --threads"), std::string::npos);
}

TEST(Cli, SweepThreadsRejectsGarbage) {
  const CliResult r = run_cli("sweep --threads two");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--threads wants a non-negative integer"),
            std::string::npos);
}

TEST(Cli, SweepAcceptsSeedAndHorizon) {
  const CliResult r =
      run_cli("sweep --sets 1 --seed 7 --horizon 2000 --threads 2 --no-audit");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("bin"), std::string::npos);
}

TEST(Cli, CampaignHorizonCapAliasMatchesHorizon) {
  const std::string ts = write_temp("alias", kFig1);
  const CliResult canonical =
      run_cli("campaign --taskset " + ts + " --scheme st --horizon 40");
  const CliResult alias =
      run_cli("campaign --taskset " + ts + " --scheme st --horizon-cap 40");
  EXPECT_EQ(canonical.exit_code, 0) << canonical.output;
  EXPECT_EQ(alias.exit_code, 0) << alias.output;
  EXPECT_EQ(canonical.output, alias.output);
  std::filesystem::remove(ts);
}

TEST(Cli, AuditAcceptsSharedSeedAndHorizon) {
  const std::string ts = write_temp("auditshared", kFig1);
  const CliResult r =
      run_cli("audit " + ts + " --scheme selective --seed 3 --horizon 40");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("audit clean"), std::string::npos);
  std::filesystem::remove(ts);
}

// --- Chaos fuzz campaigns and repro-bundle replay. ------------------------

/// A minimal explicit-dialect bundle with one tolerated transient: the
/// backup recovers, so replay is clean.
constexpr const char* kCleanBundle =
    "# mkss repro bundle v1\n"
    "# scheme: st\n"
    "# procs: 2\n"
    "# roles: WS\n"
    "# stream-version: 2\n"
    "# horizon-ticks: 20000\n"
    "# plan: explicit\n"
    "# transient: 0 1 0\n"
    "control 5 4 3 2 4\n"
    "video   10 10 3 1 2\n";

TEST(Cli, FuzzCleanSchemesExitZero) {
  const CliResult r = run_cli("fuzz --runs 10 --seed 7 --threads 0");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("fuzz: 10 iteration(s)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("violations: 0"), std::string::npos) << r.output;
}

TEST(Cli, FuzzOutputIsBitIdenticalAcrossThreadCounts) {
  const CliResult serial = run_cli("fuzz --runs 12 --seed 42 --threads 1");
  const CliResult parallel = run_cli("fuzz --runs 12 --seed 42 --threads 4");
  EXPECT_EQ(serial.exit_code, 0) << serial.output;
  EXPECT_EQ(serial.output, parallel.output);
}

TEST(Cli, FuzzRejectsBadProcsRangeAndUnknownScheme) {
  for (const char* args :
       {"fuzz --procs-range 4", "fuzz --procs-range 4..2",
        "fuzz --procs-range 2..x", "fuzz --scheme no_such_scheme",
        "fuzz --runs -3", "fuzz --bogus"}) {
    const CliResult r = run_cli(args);
    EXPECT_EQ(r.exit_code, 2) << args << ":\n" << r.output;
  }
}

TEST(Cli, FuzzCatchesCanariesWritesBundlesAndReplayReproduces) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mkss_cli_fuzz_canary_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  // The deliberately broken canary scheme (env-gated, test-only) must be
  // caught, shrunk, and written out as repro bundles...
  const CliResult fuzz = run_cli(
      "fuzz --runs 40 --seed 11 --scheme canary_no_backup --threads 0 "
      "--error-dir " + dir.string(),
      "MKSS_ENABLE_CANARY_SCHEMES=1 ");
  EXPECT_EQ(fuzz.exit_code, 4) << fuzz.output;
  EXPECT_NE(fuzz.output.find("mandatory-miss"), std::string::npos)
      << fuzz.output;
  std::size_t bundles = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) ++bundles;
  }
  EXPECT_GT(bundles, 0u) << fuzz.output;

  // ...replaying the directory reproduces the violations (exit 4)...
  const CliResult replay =
      run_cli("replay " + dir.string(), "MKSS_ENABLE_CANARY_SCHEMES=1 ");
  EXPECT_EQ(replay.exit_code, 4) << replay.output;
  EXPECT_NE(replay.output.find("VIOLATED"), std::string::npos) << replay.output;

  // ...and without the gate the canary is an unknown scheme: bad input, 3.
  const CliResult ungated = run_cli("replay " + dir.string());
  EXPECT_EQ(ungated.exit_code, 3) << ungated.output;
  EXPECT_NE(ungated.output.find("unknown scheme 'canary_no_backup'"),
            std::string::npos)
      << ungated.output;

  std::filesystem::remove_all(dir);
}

TEST(Cli, ReplayCleanBundleExitsZero) {
  const std::string bundle = write_temp("cleanbundle", kCleanBundle);
  const CliResult r = run_cli("replay " + bundle);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("clean (scheme st"), std::string::npos) << r.output;
  std::filesystem::remove(bundle);
}

TEST(Cli, ReplayMissingOrMalformedBundleIsInputError) {
  EXPECT_EQ(run_cli("replay /nonexistent/x.repro.txt").exit_code, 3);
  const std::string ts = write_temp("notabundle", kFig1);
  const CliResult r = run_cli("replay " + ts);
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("missing"), std::string::npos) << r.output;
  std::filesystem::remove(ts);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("mkss_cli_replay_empty_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const CliResult empty = run_cli("replay " + dir.string());
  EXPECT_EQ(empty.exit_code, 3) << empty.output;
  std::filesystem::remove_all(dir);
}

TEST(Cli, UnknownCommandListsAvailableOnes) {
  const CliResult r = run_cli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command 'frobnicate'"), std::string::npos)
      << r.output;
  // The listing comes from the command table, so every subcommand is there.
  for (const char* name : {"analyze", "serve", "fuzz", "example"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << r.output;
  }
}

// One request per line; the JSON "\n" escapes inside the raw string are the
// wire form of the inline task-set text.
constexpr const char* kServeSession =
    R"({"v": 1, "id": "s1", "taskset": "control 5 4 3 2 4\nvideo 10 10 3 1 2\n", "scheme": "st", "horizon_ms": 100})"
    "\n"
    "definitely not json\n"
    R"({"v": 1, "id": "s3", "taskset": "control 5 4 3 2 4\n", "scheme": "no_such_scheme"})"
    "\n"
    R"({"v": 1, "id": "s4", "taskset": "control 5 4 3 2 4\n", "scheme": "st", "procs": 4})"
    "\n";

TEST(Cli, ServeAnswersWholeSessionIncludingErrors) {
  const std::string in = write_temp("serve_session", kServeSession);
  const CliResult r = run_cli("serve --input " + in);
  EXPECT_EQ(r.exit_code, 0) << r.output;  // errors are responses, not deaths
  EXPECT_NE(r.output.find("\"id\": \"s1\", \"ok\": true"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("parse-error"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("unknown-scheme"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("envelope-violation"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("served 4 request(s): 1 ok, 3 error(s)"),
            std::string::npos)
      << r.output;
  std::filesystem::remove(in);
}

TEST(Cli, ServeReadsStdinWhenNoInputFlag) {
  const std::string in = write_temp("serve_stdin", kServeSession);
  const CliResult r = run_cli("serve < " + in);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"id\": \"s1\", \"ok\": true"), std::string::npos)
      << r.output;
  std::filesystem::remove(in);
}

TEST(Cli, ServeResponseStreamIsByteIdenticalAcrossWorkerCounts) {
  const std::string in = write_temp("serve_workers", kServeSession);
  const auto read_back = [](const std::string& path) {
    std::ifstream f(path);
    std::stringstream buf;
    buf << f.rdbuf();
    return buf.str();
  };
  std::string reference;
  for (const char* workers : {"1", "3", "0"}) {
    const std::string out = in + ".w" + workers;
    // The subshell keeps the telemetry (stderr, includes wall time and the
    // worker-dependent queue high-water mark) out of the compared stream;
    // run_cli's own 2>&1 would otherwise fold it into `out`.
    const CliResult r =
        run_cli("serve --workers " + std::string(workers) + " --input " + in +
                    " > " + out + " 2>/dev/null )",
                "( ");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    const std::string stream = read_back(out);
    EXPECT_FALSE(stream.empty());
    if (reference.empty()) {
      reference = stream;
    } else {
      EXPECT_EQ(stream, reference) << "workers=" << workers;
    }
    std::filesystem::remove(out);
  }
  std::filesystem::remove(in);
}

TEST(Cli, ServeAuditViolationIsResponseNotDeath) {
  // The deliberately broken canary scheme (env-gated, test-only) drops
  // backups, so a permanent fault makes the auditor fire -- as a structured
  // audit-violation response, with the next request still answered.
  const std::string in = write_temp(
      "serve_audit",
      R"({"v": 1, "id": "boom", "taskset": "control 5 4 3 2 4\nvideo 10 10 3 1 2\n", "scheme": "canary_no_backup", "permanent": {"proc": 0, "at_ms": 2}, "horizon_ms": 100})"
      "\n"
      R"({"v": 1, "id": "after", "taskset": "control 5 4 3 2 4\n", "scheme": "st", "horizon_ms": 100})"
      "\n");
  const CliResult r =
      run_cli("serve --input " + in, "MKSS_ENABLE_CANARY_SCHEMES=1 ");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("audit-violation"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"id\": \"after\", \"ok\": true"),
            std::string::npos)
      << r.output;
  std::filesystem::remove(in);
}

TEST(Cli, ServeFlagErrorsAreUsageErrors) {
  EXPECT_EQ(run_cli("serve --queue-depth 0").exit_code, 2);
  EXPECT_EQ(run_cli("serve --bogus").exit_code, 2);
  EXPECT_EQ(run_cli("serve --input /nonexistent/requests.jsonl").exit_code, 3);
}

TEST(Cli, ExampleOutputRoundTripsThroughAnalyze) {
  const CliResult example = run_cli("example");
  ASSERT_EQ(example.exit_code, 0);
  const std::string ts = write_temp("example", example.output);
  const CliResult r = run_cli("analyze " + ts);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::filesystem::remove(ts);
}

}  // namespace
