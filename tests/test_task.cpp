// Unit tests: task model, task-set invariants, job instantiation.
#include <gtest/gtest.h>

#include "core/job.hpp"
#include "core/task.hpp"
#include "workload/scenarios.hpp"

namespace mkss::core {
namespace {

TEST(Task, FromMsBuildsPaperTuples) {
  const Task t = Task::from_ms(5, 4, 3, 2, 4, "tau1");
  EXPECT_EQ(t.period, 5000);
  EXPECT_EQ(t.deadline, 4000);
  EXPECT_EQ(t.wcet, 3000);
  EXPECT_EQ(t.m, 2u);
  EXPECT_EQ(t.k, 4u);
  EXPECT_TRUE(t.valid());
}

TEST(Task, UtilizationAndMkUtilization) {
  const Task t = Task::from_ms(10, 10, 3, 1, 2);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.3);
  EXPECT_DOUBLE_EQ(t.mk_utilization(), 0.15);
}

TEST(Task, ValidityRules) {
  EXPECT_FALSE(Task::from_ms(5, 6, 1, 1, 2).valid());   // D > P
  EXPECT_FALSE(Task::from_ms(5, 4, 4.5, 1, 2).valid()); // C > D
  EXPECT_FALSE(Task::from_ms(5, 5, 0, 1, 2).valid());   // C == 0
  EXPECT_FALSE(Task::from_ms(5, 5, 1, 3, 2).valid());   // m > k
  EXPECT_FALSE(Task::from_ms(5, 5, 1, 0, 2).valid());   // m == 0
  EXPECT_TRUE(Task::from_ms(5, 5, 1, 1, 1).valid());    // hard real-time encoding
}

TEST(TaskSet, ConstructionValidatesAndNames) {
  const TaskSet ts = workload::paper_fig1_taskset();
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].name, "tau1");
  EXPECT_EQ(ts[1].name, "tau2");
  EXPECT_THROW(TaskSet({Task::from_ms(5, 6, 1, 1, 2)}), std::invalid_argument);
}

TEST(TaskSet, TotalUtilizations) {
  const TaskSet ts = workload::paper_fig1_taskset();
  EXPECT_DOUBLE_EQ(ts.total_utilization(), 3.0 / 5.0 + 3.0 / 10.0);
  EXPECT_DOUBLE_EQ(ts.total_mk_utilization(), 0.5 * 3.0 / 5.0 + 0.5 * 3.0 / 10.0);
}

TEST(TaskSet, Hyperperiods) {
  const TaskSet ts = workload::paper_fig1_taskset();  // P = 5, 10; k = 4, 2
  EXPECT_EQ(ts.hyperperiod(core::kNever).value(), from_ms(std::int64_t{10}));
  // mk hyperperiod: lcm(4*5, 2*10) = 20 ms.
  EXPECT_EQ(ts.mk_hyperperiod(core::kNever).value(), from_ms(std::int64_t{20}));
  EXPECT_FALSE(ts.mk_hyperperiod(from_ms(std::int64_t{19})).has_value());
}

TEST(TaskSet, MkHyperperiodPerPriorityLevel) {
  const TaskSet ts = workload::paper_fig5_taskset();  // (10,...,k=3), (15,...,k=2)
  EXPECT_EQ(ts.mk_hyperperiod_upto(0, kNever).value(), from_ms(std::int64_t{30}));
  EXPECT_EQ(ts.mk_hyperperiod_upto(1, kNever).value(), from_ms(std::int64_t{30}));
}

TEST(TaskSet, DescribeMentionsEveryTask) {
  const std::string desc = workload::paper_fig1_taskset().describe();
  EXPECT_NE(desc.find("tau1"), std::string::npos);
  EXPECT_NE(desc.find("tau2"), std::string::npos);
}

TEST(Job, InstanceComputesReleaseAndDeadline) {
  const Task t = Task::from_ms(5, 4, 3, 2, 4);
  const Job j1 = Job::instance(t, 0, 1);
  EXPECT_EQ(j1.release, 0);
  EXPECT_EQ(j1.deadline, from_ms(std::int64_t{4}));
  EXPECT_EQ(j1.exec, t.wcet);
  const Job j3 = Job::instance(t, 0, 3);
  EXPECT_EQ(j3.release, from_ms(std::int64_t{10}));
  EXPECT_EQ(j3.deadline, from_ms(std::int64_t{14}));
  EXPECT_EQ(j3.id.job, 3u);
}

TEST(Job, ToStringUsesOneBasedTaskNumber) {
  EXPECT_EQ(to_string(JobId{0, 1}), "J1,1");
  EXPECT_EQ(to_string(JobId{2, 7}), "J3,7");
}

}  // namespace
}  // namespace mkss::core
