// Unit tests for the shared release-timeline arena and the content-keyed
// caches layered on it: the builder must reproduce the calendar heap's
// (release, task) pop order exactly, and the TimelineCache /
// PostponementCache must key on content (not object identity), evict LRU
// under their bounds, and never invalidate a result a caller still holds.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "analysis/cache.hpp"
#include "analysis/postponement.hpp"
#include "core/release_timeline.hpp"
#include "core/rng.hpp"
#include "core/task.hpp"
#include "workload/scenarios.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss {
namespace {

using core::ReleaseTimeline;
using core::TaskSet;
using core::Ticks;

/// Brute-force reference: every (release, task) pair below the horizon,
/// sorted by the calendar heap's strict total order.
struct RefEntry {
  Ticks release;
  std::uint32_t task;
  Ticks deadline;
  std::uint64_t seq;
};

std::vector<RefEntry> brute_force_timeline(const TaskSet& ts, Ticks horizon) {
  std::vector<RefEntry> out;
  for (std::uint32_t i = 0; i < ts.size(); ++i) {
    std::uint64_t j = 1;
    for (Ticks r = 0; r < horizon; r += ts[i].period, ++j) {
      out.push_back(RefEntry{r, i, r + ts[i].deadline, j});
    }
  }
  std::sort(out.begin(), out.end(), [](const RefEntry& a, const RefEntry& b) {
    return a.release != b.release ? a.release < b.release : a.task < b.task;
  });
  return out;
}

void expect_matches_brute_force(const TaskSet& ts, Ticks horizon) {
  ReleaseTimeline tl;
  core::build_release_timeline(ts, horizon, tl);
  const auto ref = brute_force_timeline(ts, horizon);
  ASSERT_EQ(tl.size(), ref.size());
  EXPECT_EQ(tl.horizon, horizon);
  EXPECT_EQ(tl.num_tasks, ts.size());
  for (std::size_t e = 0; e < ref.size(); ++e) {
    EXPECT_EQ(tl.release[e], ref[e].release) << "entry " << e;
    EXPECT_EQ(tl.task[e], ref[e].task) << "entry " << e;
    EXPECT_EQ(tl.deadline[e], ref[e].deadline) << "entry " << e;
    EXPECT_EQ(tl.seq[e], ref[e].seq) << "entry " << e;
  }
}

TEST(ReleaseTimeline, BuilderMatchesBruteForceOnPaperSet) {
  const auto ts = workload::paper_fig1_taskset();
  for (const std::int64_t h_ms : {1, 7, 40, 1000}) {
    SCOPED_TRACE(h_ms);
    expect_matches_brute_force(ts, core::from_ms(h_ms));
  }
}

TEST(ReleaseTimeline, BuilderMatchesBruteForceOnRandomSets) {
  core::Rng rng(20260808);
  int produced = 0;
  for (int trial = 0; trial < 4000 && produced < 8; ++trial) {
    const auto ts = workload::generate_taskset({}, rng.uniform(0.2, 0.7), rng);
    if (!ts) continue;
    ++produced;
    SCOPED_TRACE(ts->describe());
    expect_matches_brute_force(*ts, core::from_ms(rng.range(1, 500)));
  }
  EXPECT_GT(produced, 0);
}

TEST(ReleaseTimeline, BuilderReusesArenaAcrossBuilds) {
  const auto ts = workload::paper_fig1_taskset();
  ReleaseTimeline tl;
  core::build_release_timeline(ts, core::from_ms(std::int64_t{1000}), tl);
  const std::size_t big = tl.size();
  core::build_release_timeline(ts, core::from_ms(std::int64_t{10}), tl);
  EXPECT_LT(tl.size(), big);  // rebuilt in place, old entries gone
  expect_matches_brute_force(ts, core::from_ms(std::int64_t{10}));
}

TaskSet two_task_set(Ticks p0, Ticks d0, Ticks p1, Ticks d1, Ticks wcet,
                     std::uint32_t m, std::uint32_t k) {
  std::vector<core::Task> tasks(2);
  tasks[0].period = p0;
  tasks[0].deadline = d0;
  tasks[0].wcet = wcet;
  tasks[0].m = m;
  tasks[0].k = k;
  tasks[1].period = p1;
  tasks[1].deadline = d1;
  tasks[1].wcet = wcet;
  tasks[1].m = m;
  tasks[1].k = k;
  return TaskSet(std::move(tasks));
}

TEST(TimelineCache, KeysOnContentNotAddress) {
  core::TimelineCache cache;
  const Ticks ms = core::from_ms(std::int64_t{1});
  const auto a = two_task_set(5 * ms, 4 * ms, 10 * ms, 9 * ms, ms, 1, 2);
  // Same periods/deadlines, different WCET and (m,k): the release structure
  // is identical, so the cache must hit.
  const auto b = two_task_set(5 * ms, 4 * ms, 10 * ms, 9 * ms, 2 * ms, 2, 3);
  const auto tl_a = cache.get(a, 100 * ms);
  const auto tl_b = cache.get(b, 100 * ms);
  EXPECT_EQ(tl_a.get(), tl_b.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // Different horizon or different deadline: distinct timelines.
  EXPECT_NE(cache.get(a, 200 * ms).get(), tl_a.get());
  const auto c = two_task_set(5 * ms, 3 * ms, 10 * ms, 9 * ms, ms, 1, 2);
  EXPECT_NE(cache.get(c, 100 * ms).get(), tl_a.get());
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(TimelineCache, EvictsLruByCapacityAndPinnedResultsSurvive) {
  core::TimelineCache cache(/*capacity=*/2);
  const Ticks ms = core::from_ms(std::int64_t{1});
  const auto ts = workload::paper_fig1_taskset();
  const auto first = cache.get(ts, 100 * ms);
  const std::size_t first_size = first->size();
  cache.get(ts, 200 * ms);
  cache.get(ts, 300 * ms);  // evicts the LRU entry (horizon 100)
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
  // The evicted timeline is still alive and intact through our shared_ptr.
  EXPECT_EQ(first->size(), first_size);
  EXPECT_EQ(first->horizon, 100 * ms);
  // Asking again rebuilds (miss), proving 100ms was the evicted one.
  cache.get(ts, 100 * ms);
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(TimelineCache, EvictsByByteBudget) {
  const Ticks ms = core::from_ms(std::int64_t{1});
  const auto ts = workload::paper_fig1_taskset();
  // Budget fits roughly one timeline of this size, never three.
  core::TimelineCache probe;
  const std::size_t one = probe.get(ts, 400 * ms)->memory_bytes();
  core::TimelineCache cache(/*capacity=*/64, /*byte_budget=*/one + one / 2);
  cache.get(ts, 400 * ms);
  cache.get(ts, 401 * ms);
  cache.get(ts, 402 * ms);
  EXPECT_LT(cache.entries(), 3u);
  EXPECT_GE(cache.entries(), 1u);  // the newest entry always survives
  EXPECT_LE(cache.bytes(), one + one / 2);
}

TEST(PostponementCache, KeysOnContentAndMatchesFreshComputation) {
  analysis::PostponementCache cache;
  const Ticks ms = core::from_ms(std::int64_t{1});
  const auto a = two_task_set(5 * ms, 4 * ms, 10 * ms, 9 * ms, ms, 1, 2);
  const auto b = two_task_set(5 * ms, 4 * ms, 10 * ms, 9 * ms, ms, 1, 2);
  const analysis::PostponementOptions opts;
  const auto ra = cache.get(a, opts);
  const auto rb = cache.get(b, opts);  // distinct object, same content: hit
  EXPECT_EQ(ra.get(), rb.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  const auto fresh = analysis::compute_postponement(a, opts);
  ASSERT_EQ(ra->per_task.size(), fresh.per_task.size());
  EXPECT_EQ(ra->all_exact, fresh.all_exact);
  for (core::TaskIndex i = 0; i < a.size(); ++i) {
    EXPECT_EQ(ra->theta(i), fresh.theta(i)) << "task " << i;
    EXPECT_EQ(ra->per_task[i].source, fresh.per_task[i].source);
  }
}

TEST(PostponementCache, DistinguishesEveryThetaInput) {
  analysis::PostponementCache cache;
  const Ticks ms = core::from_ms(std::int64_t{1});
  const auto base = two_task_set(5 * ms, 4 * ms, 10 * ms, 9 * ms, ms, 1, 2);
  const analysis::PostponementOptions opts;
  cache.get(base, opts);
  // WCET and (m,k) feed the theta analysis (unlike the release timeline),
  // so each variation must be a distinct entry.
  cache.get(two_task_set(5 * ms, 4 * ms, 10 * ms, 9 * ms, 2 * ms, 1, 2), opts);
  cache.get(two_task_set(5 * ms, 4 * ms, 10 * ms, 9 * ms, ms, 2, 3), opts);
  analysis::PostponementOptions capped;
  capped.horizon_cap = 20 * ms;
  cache.get(base, capped);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 0u);
}

}  // namespace
}  // namespace mkss
