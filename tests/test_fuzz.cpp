// Unit tests: the chaos fuzz campaign (fault/fuzz.hpp) -- real schemes
// survive it, results are bit-identical across thread counts, canary bugs
// are found, shrunk to tiny bundles and re-fail on replay, and the written
// bundles round-trip through the parser.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "fault/fuzz.hpp"
#include "io/repro_bundle.hpp"
#include "sched/canary.hpp"

namespace mkss::fault {
namespace {

std::string temp_dir(const std::string& stem) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mkss_fuzz_test_" + stem + "_" +
                    std::to_string(::testing::UnitTest::GetInstance()
                                       ->random_seed()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(Fuzz, RealSchemesSurviveAMixedCampaign) {
  FuzzConfig cfg;
  cfg.runs = 60;
  cfg.seed = 20200309;
  cfg.num_threads = 0;  // all hardware threads
  const FuzzResult result = run_fuzz(cfg);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.iterations, 60u);
  EXPECT_GT(result.audited_runs, result.iterations);  // several schemes each
  std::uint64_t drawn = result.draw_failures;
  for (const std::uint64_t c : result.mode_counts) drawn += c;
  EXPECT_EQ(drawn, result.iterations);
}

TEST(Fuzz, ResultIsBitIdenticalAcrossThreadCounts) {
  FuzzConfig cfg;
  cfg.runs = 40;
  cfg.seed = 97;
  cfg.schemes = {"st", "selective", "global_fp"};
  cfg.num_threads = 1;
  const FuzzResult serial = run_fuzz(cfg);
  cfg.num_threads = 4;
  const FuzzResult parallel = run_fuzz(cfg);

  EXPECT_EQ(serial.summary(), parallel.summary());
  EXPECT_EQ(serial.audited_runs, parallel.audited_runs);
  EXPECT_EQ(serial.mode_counts, parallel.mode_counts);
  ASSERT_EQ(serial.violations.size(), parallel.violations.size());
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(io::serialize_repro_bundle(to_bundle(serial.violations[i].minimal,
                                                   serial.violations[i].minimal_verdict)),
              io::serialize_repro_bundle(to_bundle(parallel.violations[i].minimal,
                                                   parallel.violations[i].minimal_verdict)));
  }
}

TEST(Fuzz, EmptyPlatformPoolAndUnsupportedSchemesAreRejected) {
  FuzzConfig no_procs;
  no_procs.procs.clear();
  EXPECT_THROW(run_fuzz(no_procs), std::invalid_argument);

  FuzzConfig unsupported;
  unsupported.procs = {4};
  unsupported.schemes = {"dp"};  // dual-platform only
  EXPECT_THROW(run_fuzz(unsupported), std::invalid_argument);
}

TEST(Fuzz, CatchesCanaryShrinksAndReplays) {
  sched::register_canary_schemes();
  const std::string dir = temp_dir("canary");

  FuzzConfig cfg;
  cfg.runs = 40;
  cfg.seed = 11;
  cfg.schemes = {"canary_no_backup", "canary_late_promotion"};
  cfg.num_threads = 0;
  cfg.error_dir = dir;
  const FuzzResult result = run_fuzz(cfg);
  ASSERT_FALSE(result.ok()) << "canaries must be caught";

  bool found_small_minimal = false;
  for (const FuzzViolation& v : result.violations) {
    EXPECT_EQ(v.verdict.kind, "audit-violation");
    EXPECT_EQ(v.verdict.invariant, "mandatory-miss");
    EXPECT_LE(v.minimal.ts.size(), v.repro.ts.size());
    found_small_minimal = found_small_minimal || v.minimal.ts.size() <= 3;

    // Every written bundle parses back, and replaying it re-fails with the
    // same invariant.
    ASSERT_FALSE(v.bundle_path.empty());
    const io::ReproBundle bundle = io::parse_repro_bundle_file(v.bundle_path);
    EXPECT_EQ(bundle.scheme, v.scheme);
    const ReproVerdict replayed = replay_bundle(bundle);
    EXPECT_TRUE(replayed.violated);
    EXPECT_EQ(replayed.invariant, v.verdict.invariant);
  }
  EXPECT_TRUE(found_small_minimal)
      << "expected at least one minimal repro with <= 3 tasks";

  std::filesystem::remove_all(dir);
}

TEST(Fuzz, MinimalBundleReplaysViolated) {
  sched::register_canary_schemes();
  const std::string dir = temp_dir("minimal");

  FuzzConfig cfg;
  cfg.runs = 40;
  cfg.seed = 11;
  cfg.schemes = {"canary_no_backup"};
  cfg.num_threads = 0;
  cfg.error_dir = dir;
  const FuzzResult result = run_fuzz(cfg);
  ASSERT_FALSE(result.ok());

  bool replayed_minimal = false;
  for (const FuzzViolation& v : result.violations) {
    if (v.minimal_bundle_path.empty()) continue;
    const io::ReproBundle minimal =
        io::parse_repro_bundle_file(v.minimal_bundle_path);
    const ReproVerdict verdict = replay_bundle(minimal);
    EXPECT_TRUE(verdict.violated);
    EXPECT_EQ(verdict.kind, "audit-violation");
    replayed_minimal = true;
  }
  EXPECT_TRUE(replayed_minimal) << "no shrunk bundle was written";

  std::filesystem::remove_all(dir);
}

TEST(ReplayBundle, ScenarioDialectRedrawsTheSweepPlan) {
  // A scenario bundle for a healthy scheme replays clean; the plan is
  // re-derived from (scenario, lambda, fault seed) rather than fault lines.
  io::ReproBundle b;
  b.scheme = "st";
  b.procs = 2;
  b.roles = "WS";
  b.horizon = core::from_ms(std::int64_t{20});
  b.scenario_plan = true;
  b.scenario = "permanent";
  b.lambda_per_ms = 0.0;
  b.fault_seed = 1234;
  b.ts = io::parse_taskset_string("control 5 4 3 2 4\nvideo 10 10 3 1 2\n");
  const io::ReproBundle parsed =
      io::parse_repro_bundle_string(io::serialize_repro_bundle(b));
  const ReproVerdict v = replay_bundle(parsed);
  EXPECT_FALSE(v.violated) << v.detail;

  io::ReproBundle unknown = parsed;
  unknown.scenario = "solar-flare";
  EXPECT_THROW(replay_bundle(unknown), std::invalid_argument);
}

}  // namespace
}  // namespace mkss::fault
