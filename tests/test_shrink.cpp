// Unit tests: repro bundles (io/repro_bundle.hpp) and the delta-debugging
// shrinker (fault/shrink.hpp) -- round-trip byte-identity, strict parse
// validation, the tolerance gate, verdicts of clean/broken/hung runs, and
// deterministic minimization of a canary-scheme failure.
#include <gtest/gtest.h>

#include <string>

#include "fault/fuzz.hpp"  // to_bundle
#include "fault/shrink.hpp"
#include "io/repro_bundle.hpp"
#include "io/taskset_io.hpp"
#include "sched/canary.hpp"
#include "sched/registry.hpp"
#include "workload/scenarios.hpp"

namespace mkss::fault {
namespace {

io::ReproBundle explicit_bundle() {
  io::ReproBundle b;
  b.verdict = "audit-violation";
  b.scheme = "st";
  b.procs = 2;
  b.roles = "WS";
  b.horizon = core::from_ms(std::int64_t{20});
  b.scenario_plan = false;
  b.permanent = sim::PermanentFault{sim::kSpare, core::from_ms(std::int64_t{7})};
  b.transients = {{0, 2, 0}, {1, 1, 1}};
  b.error = "mandatory-miss: J1,2 missed\nsecond line of the report";
  b.ts = workload::paper_fig1_taskset();
  return b;
}

TEST(ReproBundle, ExplicitDialectRoundTripsByteIdentically) {
  const io::ReproBundle b = explicit_bundle();
  const std::string text = io::serialize_repro_bundle(b);
  const io::ReproBundle parsed = io::parse_repro_bundle_string(text);

  EXPECT_EQ(parsed.verdict, b.verdict);
  EXPECT_EQ(parsed.scheme, b.scheme);
  EXPECT_EQ(parsed.procs, b.procs);
  EXPECT_EQ(parsed.roles, b.roles);
  EXPECT_EQ(parsed.stream_version, 2u);
  EXPECT_EQ(parsed.horizon, b.horizon);
  EXPECT_FALSE(parsed.scenario_plan);
  ASSERT_TRUE(parsed.permanent.has_value());
  EXPECT_EQ(parsed.permanent->proc, sim::kSpare);
  EXPECT_EQ(parsed.permanent->time, b.permanent->time);
  EXPECT_EQ(parsed.transients, b.transients);
  // The multi-line error collapses to its first line on parse (continuation
  // lines are plain comments); everything else survives byte-for-byte.
  EXPECT_EQ(parsed.error, "mandatory-miss: J1,2 missed");
  EXPECT_EQ(io::serialize_taskset(parsed.ts), io::serialize_taskset(b.ts));
  EXPECT_EQ(io::serialize_repro_bundle(parsed).substr(0, text.find("# error")),
            text.substr(0, text.find("# error")));
}

TEST(ReproBundle, ScenarioDialectRoundTripsExactly) {
  io::ReproBundle b;
  b.verdict = "sweep-error";
  b.scheme = "selective";
  b.procs = 2;
  b.roles = "WS";
  b.horizon = core::from_ms(std::int64_t{500});
  b.scenario_plan = true;
  b.scenario = "permanent+transient";
  b.lambda_per_ms = 1e-6;
  b.fault_seed = 0xDEADBEEF;
  b.ts = workload::paper_fig1_taskset();

  const std::string text = io::serialize_repro_bundle(b);
  const io::ReproBundle parsed = io::parse_repro_bundle_string(text);
  EXPECT_TRUE(parsed.scenario_plan);
  EXPECT_EQ(parsed.scenario, "permanent+transient");
  EXPECT_EQ(parsed.lambda_per_ms, 1e-6);  // %a hex float: exact round trip
  EXPECT_EQ(parsed.fault_seed, 0xDEADBEEFu);
  EXPECT_EQ(io::serialize_repro_bundle(parsed), text);
}

TEST(ReproBundle, StillParsesAsPlainTasksetFile) {
  const std::string text = io::serialize_repro_bundle(explicit_bundle());
  const core::TaskSet ts = io::parse_taskset_string(text);
  EXPECT_EQ(io::serialize_taskset(ts),
            io::serialize_taskset(workload::paper_fig1_taskset()));
}

TEST(ReproBundle, ParseRejectsMissingHeaderAndBadMetadata) {
  const io::ReproBundle good = explicit_bundle();
  const std::string text = io::serialize_repro_bundle(good);

  // No header line.
  EXPECT_THROW(io::parse_repro_bundle_string(text.substr(text.find('\n') + 1)),
               io::ParseError);

  // Unsupported stream version.
  std::string v1 = text;
  v1.replace(v1.find("stream-version: 2"), 17, "stream-version: 1");
  EXPECT_THROW(io::parse_repro_bundle_string(v1), io::ParseError);

  // Roles string not matching procs.
  std::string roles = text;
  roles.replace(roles.find("roles: WS"), 9, "roles: WSS");
  EXPECT_THROW(io::parse_repro_bundle_string(roles), io::ParseError);

  // Transient naming a task outside the set.
  std::string bad_task = text;
  bad_task.replace(bad_task.find("transient: 0 2 0"), 16, "transient: 9 2 0");
  EXPECT_THROW(io::parse_repro_bundle_string(bad_task), io::ParseError);

  // A scenario bundle must not carry explicit fault lines.
  std::string mixed = text;
  mixed.replace(mixed.find("plan: explicit"), 14, "plan: scenario");
  EXPECT_THROW(io::parse_repro_bundle_string(mixed), io::ParseError);
}

TEST(WithinTolerance, MatchesTheoremOneHypothesis) {
  ExplicitFaultPlan empty;
  EXPECT_TRUE(within_tolerance(empty));

  ExplicitFaultPlan one_each;
  one_each.add_transient({0, 1}, 0);
  one_each.add_transient({0, 2}, 1);
  one_each.add_transient({1, 1}, 0);
  EXPECT_TRUE(within_tolerance(one_each));

  ExplicitFaultPlan double_hit = one_each;
  double_hit.add_transient({0, 1}, 1);  // both copies of J1,1
  EXPECT_FALSE(within_tolerance(double_hit));

  ExplicitFaultPlan permanent_only;
  permanent_only.set_permanent({sim::kSpare, core::from_ms(std::int64_t{3})});
  EXPECT_TRUE(within_tolerance(permanent_only));

  ExplicitFaultPlan combined = one_each;
  combined.set_permanent({sim::kSpare, core::from_ms(std::int64_t{3})});
  EXPECT_FALSE(within_tolerance(combined));
}

ReproCase fig1_case(const std::string& scheme) {
  ReproCase c;
  c.ts = workload::paper_fig1_taskset();
  c.scheme = scheme;
  c.platform = sim::PlatformSpec::standby(2);
  c.horizon = core::from_ms(std::int64_t{20});
  return c;
}

TEST(CheckRepro, CleanSchemeUnderToleratedFaultIsClean) {
  ReproCase c = fig1_case("st");
  c.plan.add_transient({0, 1}, 0);  // main dies; the backup recovers
  const ReproVerdict v = check_repro(c);
  EXPECT_FALSE(v.violated) << v.detail;
}

TEST(CheckRepro, UnknownSchemeThrowsUnknownSchemeError) {
  EXPECT_THROW(check_repro(fig1_case("definitely_not_registered")),
               sched::UnknownSchemeError);
}

TEST(CheckRepro, UnsupportedPlatformThrowsInvalidArgument) {
  ReproCase c = fig1_case("dp");
  c.platform = sim::PlatformSpec::standby(4);
  EXPECT_THROW(check_repro(c), std::invalid_argument);
}

TEST(CheckRepro, TinyWallClockBudgetYieldsTimeoutVerdict) {
  ReproCase c = fig1_case("st");
  c.run_budget_ms = 1e-7;  // fires on the very first engine event
  const ReproVerdict v = check_repro(c);
  EXPECT_TRUE(v.violated);
  EXPECT_EQ(v.kind, "timeout");
}

TEST(Shrink, CleanCaseAndTimeoutsAreReturnedUnshrunk) {
  const ShrinkResult clean = shrink(fig1_case("st"));
  EXPECT_FALSE(clean.verdict.violated);
  EXPECT_EQ(clean.oracle_runs, 1u);

  ReproCase hung = fig1_case("st");
  hung.run_budget_ms = 1e-7;
  const ShrinkResult timeout = shrink(hung);
  EXPECT_EQ(timeout.verdict.kind, "timeout");
  EXPECT_EQ(timeout.oracle_runs, 1u);
  EXPECT_EQ(timeout.minimal.ts.size(), hung.ts.size());
}

TEST(Shrink, MinimizesCanaryFailureDeterministically) {
  sched::register_canary_schemes();
  ReproCase c = fig1_case("canary_no_backup");
  // Main copy of mandatory J1,1 dies; the stripped backup cannot recover.
  c.plan.add_transient({0, 1}, 0);
  c.plan.add_transient({1, 1}, 1);  // bystander hit on an optional's backup

  const ShrinkResult first = shrink(c);
  ASSERT_TRUE(first.verdict.violated) << first.verdict.detail;
  EXPECT_EQ(first.verdict.kind, "audit-violation");
  EXPECT_EQ(first.verdict.invariant, "mandatory-miss");
  EXPECT_LE(first.minimal.ts.size(), 2u);
  EXPECT_LE(first.minimal.plan.transients().size(), 1u);

  // Same input, same minimal case -- byte for byte through the serializer.
  const ShrinkResult second = shrink(c);
  EXPECT_EQ(io::serialize_repro_bundle(to_bundle(first.minimal, first.verdict)),
            io::serialize_repro_bundle(to_bundle(second.minimal, second.verdict)));
  EXPECT_EQ(first.oracle_runs, second.oracle_runs);

  // The minimal case still fails the same way when re-checked from scratch.
  const ReproVerdict replayed = check_repro(first.minimal);
  EXPECT_TRUE(replayed.violated);
  EXPECT_EQ(replayed.invariant, "mandatory-miss");
}

TEST(Canary, RegistrationIsIdempotentAndGated) {
  const std::size_t first = sched::register_canary_schemes();
  EXPECT_EQ(sched::register_canary_schemes(), 0u);  // second call adds nothing
  (void)first;  // may be 0 or 2 depending on which test ran first
  EXPECT_TRUE(sched::Registry::instance().contains("canary_no_backup"));
  EXPECT_TRUE(sched::Registry::instance().contains("canary_late_promotion"));
}

}  // namespace
}  // namespace mkss::fault
