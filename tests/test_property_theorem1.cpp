// Property suite for Theorem 1: for any R-pattern-schedulable task set, the
// (m,k)-deadlines hold under every scheme, in every fault scenario -- with
// heavily inflated transient rates to actually exercise the recovery paths.
//
// This is the paper's central correctness claim, checked end-to-end against
// the simulator rather than on paper.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/rta.hpp"
#include "fault/injection.hpp"
#include "harness/evaluation.hpp"
#include "metrics/qos.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss {
namespace {

struct Theorem1Case {
  sched::SchemeKind scheme;
  fault::Scenario scenario;
  double lambda;  ///< inflated transient rate (per ms)
  std::uint64_t seed;
};

class Theorem1Property : public ::testing::TestWithParam<Theorem1Case> {};

TEST_P(Theorem1Property, MkDeadlinesAlwaysHold) {
  const Theorem1Case param = GetParam();
  core::Rng rng(param.seed);

  workload::GenParams gen;
  int tested = 0;
  // Acceptance (R-pattern schedulability of uniform-WCET draws) is a few
  // percent, mirroring the paper's "at least 5000 task sets generated" cap.
  for (int trial = 0; trial < 20000 && tested < 12; ++trial) {
    const double target = rng.uniform(0.15, 0.55);
    const auto ts = workload::generate_taskset(gen, target, rng);
    if (!ts) continue;
    if (!analysis::schedulable(*ts, analysis::DemandModel::kRPatternMandatory)) {
      continue;
    }
    ++tested;

    const core::Ticks horizon =
        harness::choose_horizon(*ts, core::from_ms(std::int64_t{2000}));
    core::Rng fault_rng = rng.split();
    const auto plan = fault::make_scenario_plan(param.scenario, *ts, horizon,
                                                param.lambda, fault_rng);
    sim::SimConfig cfg;
    cfg.horizon = horizon;
    const auto run = harness::run_one(
        {.ts = *ts, .kind = param.scheme, .faults = plan.get(), .sim = cfg});

    // Theorem 1 presumes the standby-sparing redundancy absorbs the faults.
    // Two physical situations exceed that budget and are legitimately
    // outside the guarantee: both copies of a mandatory job hit by
    // transient faults, and a mandatory job stranded by the permanent fault
    // (its last copy died with the processor and could not be restarted in
    // time). Any (m,k) violation must be attributable to such an event.
    bool double_fault = false;
    for (const auto& j : run.trace.jobs) {
      double_fault |= (j.main_transient_fault && j.backup_transient_fault);
    }
    const bool excused = run.qos.mandatory_misses > 0 || double_fault;
    if (param.scenario == fault::Scenario::kNoFault) {
      EXPECT_TRUE(run.qos.theorem1_holds())
          << sched::to_string(param.scheme) << " on " << ts->describe();
    } else {
      EXPECT_TRUE(run.qos.mk_satisfied || excused)
          << sched::to_string(param.scheme) << " / "
          << fault::to_string(param.scenario) << " on " << ts->describe();
    }
  }
  EXPECT_GE(tested, 5);
}

std::vector<Theorem1Case> make_cases() {
  std::vector<Theorem1Case> cases;
  std::uint64_t seed = 1000;
  for (const auto scheme : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                            sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective}) {
    for (const auto scenario : {fault::Scenario::kNoFault, fault::Scenario::kPermanentOnly}) {
      cases.push_back({scheme, scenario, 0.0, seed++});
    }
  }
  // Transient-heavy runs: only schemes with backups can absorb transient
  // faults on mandatory jobs; optional-job faults are ordinary misses that
  // consume flexibility, which the dynamic schemes must absorb.
  for (const auto scheme : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                            sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective}) {
    cases.push_back({scheme, fault::Scenario::kPermanentAndTransient, 0.001, seed++});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Theorem1Case>& info) {
  std::string name = sched::to_string(info.param.scheme);
  name += "_";
  name += fault::to_string(info.param.scenario);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_" + std::to_string(info.index);
}

INSTANTIATE_TEST_SUITE_P(AllSchemesAllScenarios, Theorem1Property,
                         ::testing::ValuesIn(make_cases()), case_name);

}  // namespace
}  // namespace mkss
