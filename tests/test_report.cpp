// Unit tests: table/CSV rendering.
#include <gtest/gtest.h>

#include "report/table.hpp"

namespace mkss::report {
namespace {

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"x", "y"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "multi\nline"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
  EXPECT_NE(csv.find("x,y\n"), std::string::npos);
}

TEST(Fmt, NumbersAndPercent) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt_percent(0.283), "28.3%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace mkss::report
