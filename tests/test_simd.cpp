// The core::simd kernels exist only to re-bracket integer expressions into
// vector lanes, so every test here is an equivalence proof: the AVX2 path
// against the scalar path, both against a naive reference written with plain
// '/' and '%', and the batch entry points (admit_batch, generate_bin's batch
// pipeline) against the one-at-a-time code they replace. The magic-division
// and llround helpers get their own exactness pins because the kernels'
// bit-identity contract rests on them.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "analysis/admission.hpp"
#include "analysis/rta.hpp"
#include "core/rng.hpp"
#include "core/simd.hpp"
#include "core/task.hpp"
#include "core/thread_pool.hpp"
#include "core/time.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss {
namespace {

namespace simd = core::simd;
using core::Task;
using core::TaskSet;
using core::Ticks;

/// Runs `body` once per available dispatch path (scalar always; AVX2 when the
/// box has it), with the forced-path hook cleared afterwards. Tests that use
/// this cover both kernels on AVX2 hardware and degrade to a scalar-only run
/// elsewhere instead of failing.
template <class Body>
void for_each_path(Body&& body) {
  body(simd::Path::kScalar);
  if (simd::cpu_has_avx2()) {
    body(simd::Path::kAvx2);
  }
  simd::clear_forced_path();
}

TEST(SimdDispatch, ForcedPathOverridesAndClears) {
  simd::set_forced_path(simd::Path::kScalar);
  EXPECT_EQ(simd::active_path(), simd::Path::kScalar);
  if (simd::cpu_has_avx2()) {
    simd::set_forced_path(simd::Path::kAvx2);
    EXPECT_EQ(simd::active_path(), simd::Path::kAvx2);
  }
  simd::clear_forced_path();
  // Whatever the environment resolves to, it must be executable here.
  if (!simd::cpu_has_avx2()) {
    EXPECT_EQ(simd::active_path(), simd::Path::kScalar);
  }
}

TEST(SimdDispatch, ForcingAvx2WithoutHardwareIsIgnored) {
  if (simd::cpu_has_avx2()) GTEST_SKIP() << "needs a non-AVX2 box";
  simd::set_forced_path(simd::Path::kAvx2);
  EXPECT_EQ(simd::active_path(), simd::Path::kScalar);
  simd::clear_forced_path();
}

// ---------------------------------------------------------------------------
// div_magic_u31: x / d == (x * mul) >> shift for the full 31-bit domain.
// ---------------------------------------------------------------------------

void check_divisor(std::uint32_t d, core::Rng& rng) {
  const auto magic = simd::div_magic_u31(d);
  const auto via_magic = [&](std::uint64_t x) {
    return (x * magic.mul) >> magic.shift;
  };
  // Boundary x: around every multiple boundary the floor can possibly slip.
  const std::uint64_t probes[] = {0,
                                  1,
                                  d - 1,
                                  d,
                                  std::uint64_t{d} + 1,
                                  (std::uint64_t{1} << 31) - 1,
                                  ((std::uint64_t{1} << 31) - 1) / d * d,
                                  ((std::uint64_t{1} << 31) - 1) / d * d - 1};
  for (const std::uint64_t x : probes) {
    if (x >= (std::uint64_t{1} << 31)) continue;
    ASSERT_EQ(via_magic(x), x / d) << "d=" << d << " x=" << x;
  }
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t x = rng.below(std::uint64_t{1} << 31);
    ASSERT_EQ(via_magic(x), x / d) << "d=" << d << " x=" << x;
  }
}

TEST(DivMagic, ExactForSmallDivisorsExhaustively) {
  core::Rng rng(0x51D0001);
  for (std::uint32_t d = 1; d <= 4096; ++d) {
    check_divisor(d, rng);
  }
}

TEST(DivMagic, ExactForRandomLargeDivisors) {
  core::Rng rng(0x51D0002);
  for (int i = 0; i < 2000; ++i) {
    const auto d = static_cast<std::uint32_t>(
        rng.below((std::uint64_t{1} << 31) - 1) + 1);
    check_divisor(d, rng);
  }
  // Powers of two and their neighbours, the classic magic-number edge.
  for (std::uint32_t l = 1; l < 31; ++l) {
    const std::uint32_t p = 1u << l;
    check_divisor(p - 1, rng);
    check_divisor(p, rng);
    check_divisor(p + 1, rng);
  }
  check_divisor((1u << 31) - 1, rng);
}

// ---------------------------------------------------------------------------
// llround_nonneg == std::llround on [0, 2^52).
// ---------------------------------------------------------------------------

TEST(LlroundNonneg, MatchesStdLlroundOnBoundariesAndFuzz) {
  const double half_cases[] = {0.0, 0.5, 1.0, 1.5, 2.5, 3.49999999999999,
                               3.5, 3.50000000000001, 1e15 + 0.5};
  for (const double x : half_cases) {
    EXPECT_EQ(simd::llround_nonneg(x), std::llround(x)) << "x=" << x;
    const double up = std::nextafter(x, std::numeric_limits<double>::infinity());
    const double down = std::nextafter(x, 0.0);
    EXPECT_EQ(simd::llround_nonneg(up), std::llround(up));
    if (down >= 0) {
      EXPECT_EQ(simd::llround_nonneg(down), std::llround(down));
    }
  }
  // Top of the contract domain: integers up there are exact doubles.
  const double top = 4503599627370495.0;  // 2^52 - 1
  EXPECT_EQ(simd::llround_nonneg(top), std::llround(top));

  core::Rng rng(0x11A07D);
  for (int i = 0; i < 200000; ++i) {
    // Log-uniform magnitude so small values (the generator's actual domain:
    // WCET = v * period ~ 1e0..1e13) and huge ones both get coverage.
    const double mag = rng.uniform(0.0, 52.0);
    const double x = rng.uniform01() * std::exp2(mag);
    ASSERT_EQ(simd::llround_nonneg(x), std::llround(x)) << "x=" << x;
  }
}

// ---------------------------------------------------------------------------
// row_sum_max_i64: per-row sum and max over 16-lane rows.
// ---------------------------------------------------------------------------

TEST(RowSumMax, MatchesNaiveReferenceOnBothPaths) {
  core::Rng rng(0xF17E);
  constexpr std::size_t kRows = 37;  // odd count: no multiple-of-anything luck
  std::vector<std::int64_t> sum_vals(kRows * simd::kRowStride, 0);
  std::vector<std::int64_t> max_vals(kRows * simd::kRowStride, 0);
  for (std::size_t r = 0; r < kRows; ++r) {
    // Live lane counts from 0 (all identity) to the full stride.
    const auto live = static_cast<std::size_t>(
        rng.below(std::uint64_t{simd::kRowStride} + 1));
    for (std::size_t i = 0; i < live; ++i) {
      sum_vals[r * simd::kRowStride + i] =
          static_cast<std::int64_t>(rng.below(std::uint64_t{1} << 40)) + 1;
      max_vals[r * simd::kRowStride + i] =
          static_cast<std::int64_t>(rng.below(std::uint64_t{1} << 40)) + 1;
    }
  }
  std::vector<std::int64_t> ref_sums(kRows), ref_maxs(kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    std::int64_t s = 0, m = 0;
    for (std::size_t i = 0; i < simd::kRowStride; ++i) {
      s += sum_vals[r * simd::kRowStride + i];
      m = std::max(m, max_vals[r * simd::kRowStride + i]);
    }
    ref_sums[r] = s;
    ref_maxs[r] = m;
  }
  for_each_path([&](simd::Path path) {
    simd::set_forced_path(path);
    std::vector<std::int64_t> sums(kRows, -1), maxs(kRows, -1);
    simd::row_sum_max_i64(sum_vals.data(), max_vals.data(), kRows, sums.data(),
                          maxs.data());
    for (std::size_t r = 0; r < kRows; ++r) {
      ASSERT_EQ(sums[r], ref_sums[r])
          << "path=" << simd::path_name(path) << " row=" << r;
      ASSERT_EQ(maxs[r], ref_maxs[r])
          << "path=" << simd::path_name(path) << " row=" << r;
    }
  });
}

// ---------------------------------------------------------------------------
// demand_hp_sum: scalar == AVX2 == a reference written with plain / and %.
// ---------------------------------------------------------------------------

struct DemandFixture {
  std::vector<std::uint64_t> pmul, pshift, kmul, kshift;
  std::vector<std::uint64_t> effm, effk, wcet, poff;
  std::vector<std::uint32_t> arena;
  std::vector<std::uint64_t> period;  // for the reference only

  simd::DemandView view() const {
    return simd::DemandView{pmul.data(),  pshift.data(), kmul.data(),
                            kshift.data(), effm.data(),  effk.data(),
                            wcet.data(),  poff.data(),  arena.data()};
  }

  std::uint64_t reference(std::size_t count, std::uint64_t t_minus_1) const {
    std::uint64_t acc = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint64_t rel = t_minus_1 / period[j] + 1;
      const std::uint64_t cnt =
          rel / effk[j] * effm[j] + arena[poff[j] + rel % effk[j]];
      acc += cnt * wcet[j];
    }
    return acc;
  }
};

DemandFixture random_demand_rows(core::Rng& rng, std::size_t rows) {
  DemandFixture f;
  f.arena.push_back(0);  // reserved kAllJobs mirror, as in AdmissionContext
  for (std::size_t j = 0; j < rows; ++j) {
    const auto p = rng.below((std::uint64_t{1} << 31) - 1) + 1;
    const auto k = rng.below(64) + 1;
    const auto m = rng.below(k) + 1;
    const auto magic_p = simd::div_magic_u31(static_cast<std::uint32_t>(p));
    const auto magic_k = simd::div_magic_u31(static_cast<std::uint32_t>(k));
    f.period.push_back(p);
    f.pmul.push_back(magic_p.mul);
    f.pshift.push_back(magic_p.shift);
    f.kmul.push_back(magic_k.mul);
    f.kshift.push_back(magic_k.shift);
    f.effm.push_back(m);
    f.effk.push_back(k);
    f.wcet.push_back(rng.below(std::uint64_t{1} << 20) + 1);
    f.poff.push_back(f.arena.size());
    // A cumulative prefix table: nondecreasing counts from 0 to <= m.
    std::uint32_t running = 0;
    for (std::uint64_t r = 0; r < k; ++r) {
      if (r > 0 && running < m && rng.chance(0.5)) ++running;
      f.arena.push_back(running);
    }
  }
  return f;
}

TEST(DemandHpSum, ScalarAvx2AndReferenceAgree) {
  core::Rng rng(0xDE3A2D);
  for (int iter = 0; iter < 200; ++iter) {
    // Row counts straddling the 4-lane vector width and its scalar tail.
    const auto rows = static_cast<std::size_t>(rng.below(13));
    const DemandFixture f = random_demand_rows(rng, rows);
    const auto v = f.view();
    for (int probe = 0; probe < 16; ++probe) {
      const std::uint64_t t_minus_1 = rng.below(std::uint64_t{1} << 31);
      const std::uint64_t want = f.reference(rows, t_minus_1);
      for_each_path([&](simd::Path path) {
        simd::set_forced_path(path);
        ASSERT_EQ(simd::demand_hp_sum(v, rows, t_minus_1), want)
            << "path=" << simd::path_name(path) << " rows=" << rows
            << " t-1=" << t_minus_1;
      });
    }
  }
}

// ---------------------------------------------------------------------------
// admit_batch == analysis::schedulable, per candidate, on both paths.
// ---------------------------------------------------------------------------

/// Random valid task set straddling the schedulability boundary (the
/// test_admission corpus shape, SoA-scattered below).
TaskSet random_taskset(core::Rng& rng) {
  const auto n = static_cast<std::size_t>(rng.range(1, 10));
  const bool rm_implicit = rng.chance(0.5);
  std::vector<Task> tasks(n);
  for (auto& t : tasks) {
    t.period = core::from_ms(rng.range(1, 12));
    const double share = rng.uniform(0.02, 1.8 / static_cast<double>(n));
    t.wcet = std::clamp<Ticks>(
        static_cast<Ticks>(std::llround(share * static_cast<double>(t.period))),
        1, t.period);
    t.deadline = rm_implicit ? t.period : rng.range(t.wcet, t.period);
    t.k = static_cast<std::uint32_t>(rng.range(1, 12));
    t.m = rng.chance(0.2) ? t.k
                          : static_cast<std::uint32_t>(
                                rng.range(1, static_cast<std::int64_t>(t.k)));
  }
  if (rm_implicit) {
    std::sort(tasks.begin(), tasks.end(),
              [](const Task& a, const Task& b) { return a.period < b.period; });
  }
  return TaskSet(std::move(tasks));
}

/// One candidate's SoA storage: the tasks scattered into a random draw order
/// with the priority permutation pointing back at them.
struct SoAStorage {
  std::vector<Ticks> period, deadline, wcet;
  std::vector<std::uint32_t> m, k, order;

  analysis::SoACandidate view() const {
    return analysis::SoACandidate{period.data(), deadline.data(), wcet.data(),
                                  m.data(),      k.data(),       order.data(),
                                  order.size()};
  }
};

SoAStorage scatter(const TaskSet& ts, core::Rng& rng) {
  SoAStorage s;
  const std::size_t n = ts.size();
  s.period.resize(n);
  s.deadline.resize(n);
  s.wcet.resize(n);
  s.m.resize(n);
  s.k.resize(n);
  s.order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) s.order[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::swap(s.order[i - 1], s.order[static_cast<std::size_t>(rng.below(i))]);
  }
  for (std::size_t pri = 0; pri < n; ++pri) {
    const std::uint32_t slot = s.order[pri];
    s.period[slot] = ts[pri].period;
    s.deadline[slot] = ts[pri].deadline;
    s.wcet[slot] = ts[pri].wcet;
    s.m[slot] = ts[pri].m;
    s.k[slot] = ts[pri].k;
  }
  return s;
}

TEST(AdmitBatch, FuzzMatchesReferenceOnBothPaths) {
  const std::array<analysis::DemandModel, 3> models = {
      analysis::DemandModel::kAllJobs,
      analysis::DemandModel::kRPatternMandatory,
      analysis::DemandModel::kEPatternMandatory};
  core::Rng rng(0xBA7C4);
  for (int round = 0; round < 60; ++round) {
    constexpr std::size_t kBatch = 24;
    std::vector<TaskSet> sets;
    std::vector<SoAStorage> storage;
    std::vector<analysis::SoACandidate> cands;
    for (std::size_t c = 0; c < kBatch; ++c) {
      sets.push_back(random_taskset(rng));
      storage.push_back(scatter(sets.back(), rng));
    }
    for (const auto& s : storage) cands.push_back(s.view());
    for (const auto model : models) {
      std::vector<bool> ref;
      for (const auto& ts : sets) {
        ref.push_back(analysis::schedulable(ts, model));
      }
      for_each_path([&](simd::Path path) {
        simd::set_forced_path(path);
        analysis::AdmissionContext ctx;  // fresh: no probe history
        std::vector<analysis::AdmissionVerdict> out(kBatch);
        ctx.admit_batch(cands.data(), kBatch, model, out.data());
        for (std::size_t c = 0; c < kBatch; ++c) {
          ASSERT_EQ(out[c].schedulable, ref[c])
              << "path=" << simd::path_name(path) << " candidate "
              << sets[c].describe();
        }
        // A warm context (probe hints loaded by the first pass) must still
        // agree: hints are speed-only.
        std::vector<analysis::AdmissionVerdict> warm(kBatch);
        ctx.admit_batch(cands.data(), kBatch, model, warm.data());
        for (std::size_t c = 0; c < kBatch; ++c) {
          ASSERT_EQ(warm[c].schedulable, ref[c])
              << "warm path=" << simd::path_name(path) << " candidate "
              << sets[c].describe();
        }
      });
    }
  }
}

// ---------------------------------------------------------------------------
// generate_bin: batch pipeline == scalar pipeline, on both dispatch paths,
// serial and pooled, plus the cross-check harness.
// ---------------------------------------------------------------------------

struct EnvGuard {
  const char* name;
  explicit EnvGuard(const char* n, const char* value) : name(n) {
    ::setenv(n, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name); }
};

void expect_batches_equal(const workload::BinnedBatch& a,
                          const workload::BinnedBatch& b, const char* label) {
  ASSERT_EQ(a.attempts, b.attempts) << label;
  ASSERT_TRUE(a.counters == b.counters) << label;
  ASSERT_EQ(a.sets.size(), b.sets.size()) << label;
  for (std::size_t i = 0; i < a.sets.size(); ++i) {
    ASSERT_EQ(a.sets[i].describe(), b.sets[i].describe())
        << label << " set " << i;
  }
}

TEST(GenerateBinBatch, BitIdenticalToScalarPipelineOnBothPaths) {
  const workload::GenParams params;
  const auto run = [&](core::ThreadPool* pool) {
    return workload::generate_bin(params, 0.4, 0.5, 8, 4000, 777, 2, pool);
  };
  workload::BinnedBatch scalar_ref;
  {
    EnvGuard mode("MKSS_GEN_MODE", "scalar");
    scalar_ref = run(nullptr);
  }
  ASSERT_GT(scalar_ref.sets.size(), 0u);
  {
    EnvGuard mode("MKSS_GEN_MODE", "batch");
    for_each_path([&](simd::Path path) {
      simd::set_forced_path(path);
      const auto serial = run(nullptr);
      expect_batches_equal(serial, scalar_ref, simd::path_name(path));
      core::ThreadPool pool(core::ThreadPool::resolve_num_threads(2));
      const auto pooled = run(&pool);
      expect_batches_equal(pooled, scalar_ref, "pooled");
    });
  }
}

TEST(GenerateBinBatch, CrosscheckHarnessPassesOnCleanPipeline) {
  // MKSS_GEN_CROSSCHECK=1 replays every batch attempt through the scalar
  // path inside generate_bin and aborts the process on any divergence --
  // surviving the call IS the assertion.
  EnvGuard check("MKSS_GEN_CROSSCHECK", "1");
  const auto batch =
      workload::generate_bin(workload::GenParams{}, 0.3, 0.4, 5, 2000, 901, 0);
  EXPECT_GT(batch.attempts, 0u);
}

TEST(GenerateBinBatch, ForcedScalarPathThreadCountBitIdentity) {
  // The thread-count bit-identity contract must hold on the scalar kernels
  // too (the CI MKSS_SIMD=off leg runs the full suite this way; this test
  // keeps the property pinned even on an AVX2 box).
  simd::set_forced_path(simd::Path::kScalar);
  const workload::GenParams params;
  const auto serial = workload::generate_bin(params, 0.4, 0.5, 6, 4000, 109, 1);
  for (const std::size_t n_threads : {std::size_t{2}, std::size_t{4}}) {
    core::ThreadPool pool(core::ThreadPool::resolve_num_threads(n_threads));
    const auto parallel =
        workload::generate_bin(params, 0.4, 0.5, 6, 4000, 109, 1, &pool);
    expect_batches_equal(parallel, serial, "forced-scalar pooled");
  }
  simd::clear_forced_path();
}

}  // namespace
}  // namespace mkss
