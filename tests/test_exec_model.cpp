// Unit tests: actual-execution-time models and their engine integration.
#include <gtest/gtest.h>

#include "harness/evaluation.hpp"
#include "metrics/qos.hpp"
#include "sim/exec_model.hpp"
#include "workload/scenarios.hpp"

namespace mkss::sim {
namespace {

using core::Ticks;
using core::from_ms;

TEST(ExecModel, WcetModelIsIdentity) {
  const WcetExecModel model;
  EXPECT_EQ(model.actual_exec(core::JobId{0, 1}, 5000), 5000);
}

TEST(ExecModel, UniformModelStaysInRange) {
  const UniformExecModel model(0.5, 7);
  for (std::uint64_t j = 1; j <= 500; ++j) {
    const Ticks actual = model.actual_exec(core::JobId{0, j}, 10000);
    EXPECT_GE(actual, 5000);
    EXPECT_LE(actual, 10000);
  }
}

TEST(ExecModel, UniformModelIsDeterministicPerJob) {
  const UniformExecModel a(0.5, 7), b(0.5, 7);
  for (std::uint64_t j = 1; j <= 100; ++j) {
    EXPECT_EQ(a.actual_exec(core::JobId{2, j}, 9999),
              b.actual_exec(core::JobId{2, j}, 9999));
  }
  // Different seed -> different stream.
  const UniformExecModel c(0.5, 8);
  int differ = 0;
  for (std::uint64_t j = 1; j <= 100; ++j) {
    differ += a.actual_exec(core::JobId{2, j}, 9999) !=
              c.actual_exec(core::JobId{2, j}, 9999);
  }
  EXPECT_GT(differ, 50);
}

TEST(ExecModel, UniformModelMeanIsCalibrated) {
  const UniformExecModel model(0.5, 11);
  double sum = 0;
  const int n = 5000;
  for (int j = 1; j <= n; ++j) {
    sum += static_cast<double>(
        model.actual_exec(core::JobId{0, static_cast<std::uint64_t>(j)}, 10000));
  }
  EXPECT_NEAR(sum / n, 7500.0, 100.0);  // mean of U(0.5, 1) * wcet
}

TEST(ExecModel, NeverBelowOneTick) {
  const UniformExecModel model(0.0, 3);
  for (std::uint64_t j = 1; j <= 100; ++j) {
    EXPECT_GE(model.actual_exec(core::JobId{0, j}, 1), 1);
  }
}

TEST(ExecModel, EngineRunsJobsForTheirActualTime) {
  // bcet == wcet fraction 0.5 with a fixed seed: the first job's actual time
  // is whatever the model says; the segment length must match exactly.
  const auto ts = workload::paper_fig1_taskset();
  const UniformExecModel model(0.5, 99);
  const auto scheme = sched::make_scheme(sched::SchemeKind::kSt);
  NoFaultPlan nofault;
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{20});
  const auto trace = simulate(ts, *scheme, nofault, cfg, &model);

  for (const auto& s : trace.segments) {
    if (s.kind != CopyKind::kMain) continue;
    const Ticks expected =
        model.actual_exec(s.job, ts[s.job.task].wcet);
    // Mains run uninterrupted in ST's lock-step schedule for tau1 job 1.
    if (s.job.task == 0 && s.job.job == 1) {
      EXPECT_EQ(s.span.length(), expected);
    }
  }
}

TEST(ExecModel, EarlyCompletionNeverIncreasesEnergy) {
  const auto ts = workload::paper_fig1_taskset();
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{40});
  for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                          sched::SchemeKind::kSelective}) {
    const auto wcet_run = harness::run_one({.ts = ts, .kind = kind, .sim = cfg});
    const UniformExecModel model(0.5, 5);
    const auto early_run = harness::run_one(
        {.ts = ts, .kind = kind, .sim = cfg, .exec_model = &model});
    EXPECT_LE(early_run.energy.active_total(), wcet_run.energy.active_total())
        << sched::to_string(kind);
    EXPECT_TRUE(early_run.qos.mk_satisfied) << sched::to_string(kind);
  }
}

TEST(ExecModel, Theorem1HoldsWithVariableExecutionTimes) {
  // Shorter-than-WCET jobs can only add slack; the (m,k) guarantee must be
  // untouched for every scheme.
  const auto ts = workload::paper_fig3_taskset();
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{160});
  for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                          sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective}) {
    for (const double bcet : {0.25, 0.5, 0.9}) {
      const UniformExecModel model(bcet, 123);
      const auto run = harness::run_one(
          {.ts = ts, .kind = kind, .sim = cfg, .exec_model = &model});
      EXPECT_TRUE(run.qos.theorem1_holds())
          << sched::to_string(kind) << " bcet=" << bcet;
    }
  }
}

}  // namespace
}  // namespace mkss::sim
