// Unit tests: deterministic RNG -- reproducibility and distribution sanity.
#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace mkss::core {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, KnownFirstOutputIsStable) {
  // Pin the exact stream so cross-platform bench results stay identical;
  // a change here invalidates every recorded experiment.
  Rng rng(20200309);
  const auto first = rng();
  Rng again(20200309);
  EXPECT_EQ(again(), first);
  EXPECT_NE(first, 0u);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, RangeIsInclusiveAndCoversEndpoints) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01MeanIsAboutHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceFrequencyTracksProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng parent_copy(23);
  parent_copy.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == a()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace mkss::core
