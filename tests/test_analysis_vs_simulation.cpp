// Cross-validation: the offline analyses against the simulator.
//
// These tests close the loop between src/analysis and src/sim: response-time
// bounds must dominate every response the engine actually produces, and the
// postponement/promotion delays must never cause a mandatory deadline miss
// in simulation. A bug in either side (optimistic analysis, pessimistic
// engine bookkeeping) shows up here.
#include <gtest/gtest.h>

#include <map>

#include "analysis/promotion.hpp"
#include "analysis/rta.hpp"
#include "harness/evaluation.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss {
namespace {

using core::Ticks;

/// Worst observed response time (completion - release) per task for
/// *mandatory* jobs in a trace.
std::vector<Ticks> observed_responses(const sim::SimulationTrace& trace,
                                      std::size_t n_tasks) {
  // Completion = end of the job's last segment before resolution (met only).
  std::map<std::pair<core::TaskIndex, std::uint64_t>, Ticks> completion;
  for (const auto& s : trace.segments) {
    auto& c = completion[{s.job.task, s.job.job}];
    c = std::max(c, s.span.end);
  }
  std::vector<Ticks> worst(n_tasks, 0);
  for (const auto& j : trace.jobs) {
    if (!j.counted || !j.mandatory || j.outcome != core::JobOutcome::kMet) continue;
    const auto it = completion.find({j.job.id.task, j.job.id.job});
    if (it == completion.end()) continue;
    worst[j.job.id.task] =
        std::max(worst[j.job.id.task], it->second - j.job.release);
  }
  return worst;
}

class AnalysisVsSimulation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisVsSimulation, RtaBoundsDominateSimulatedResponses) {
  // MKSS_ST runs exactly the R-pattern mandatory jobs, synchronously
  // released, on the primary: the R-pattern RTA must bound every observed
  // response of a main copy.
  core::Rng rng(GetParam());
  int checked = 0;
  for (int trial = 0; trial < 8000 && checked < 8; ++trial) {
    const auto ts = workload::generate_taskset({}, rng.uniform(0.2, 0.6), rng);
    if (!ts) continue;
    const auto bounds =
        analysis::response_times(*ts, analysis::DemandModel::kRPatternMandatory);
    if (std::any_of(bounds.begin(), bounds.end(),
                    [](const auto& b) { return !b.has_value(); })) {
      continue;
    }
    ++checked;

    sched::MkssSt st;
    sim::NoFaultPlan nofault;
    sim::SimConfig cfg;
    cfg.horizon = harness::choose_horizon(*ts, core::from_ms(std::int64_t{2000}));
    const auto trace = sim::simulate(*ts, st, nofault, cfg);
    ASSERT_EQ(trace.stats.mandatory_misses, 0u) << ts->describe();

    const auto worst = observed_responses(trace, ts->size());
    for (core::TaskIndex i = 0; i < ts->size(); ++i) {
      EXPECT_LE(worst[i], *bounds[i])
          << ts->describe() << " tau" << i + 1 << ": observed "
          << core::format_ticks(worst[i]) << " > bound "
          << core::format_ticks(*bounds[i]);
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_P(AnalysisVsSimulation, PromotedBackupsMeetDeadlinesUnderFullLoad) {
  // Run the *whole* job set (m = k encoding) under the non-preference DP
  // scheme: mains ASAP on the primary, backups promoted at r + Y_i on the
  // spare. Backups only execute until the main completes, but if we inject
  // main-copy faults everywhere, every backup must run to completion -- and
  // the promotion analysis promises it still meets its deadline.
  class AllMainsFault final : public sim::FaultPlan {
   public:
    std::optional<sim::PermanentFault> permanent() const override {
      return std::nullopt;
    }
    bool transient(const core::JobId&, int slot) const override {
      return slot == 0;
    }
  } plan;

  core::Rng rng(GetParam() ^ 0x5a5a);
  int checked = 0;
  for (int trial = 0; trial < 2000 && checked < 6; ++trial) {
    // Hand-rolled light hard-real-time sets (every job mandatory): the
    // uniform-WCET generator almost never passes full-set RTA.
    std::vector<core::Task> tasks;
    const auto n = static_cast<std::size_t>(rng.range(2, 4));
    for (std::size_t i = 0; i < n; ++i) {
      const double period = static_cast<double>(rng.range(5, 50));
      const double wcet = std::max(0.2, period * rng.uniform(0.05, 0.25));
      tasks.push_back(core::Task::from_ms(period, period, wcet, 1, 1));
    }
    std::sort(tasks.begin(), tasks.end(),
              [](const auto& a, const auto& b) { return a.period < b.period; });
    const core::TaskSet ts(std::move(tasks));
    if (!analysis::schedulable(ts, analysis::DemandModel::kAllJobs)) continue;
    ++checked;

    sched::DpOptions opts;
    opts.preference_partition = false;
    sched::MkssDp dp(opts);
    sim::SimConfig cfg;
    cfg.horizon = harness::choose_horizon(ts, core::from_ms(std::int64_t{1000}));
    const auto trace = sim::simulate(ts, dp, plan, cfg);
    EXPECT_EQ(trace.stats.mandatory_misses, 0u)
        << ts.describe() << ": a promoted backup missed its deadline";
  }
  EXPECT_GT(checked, 0);
}

TEST_P(AnalysisVsSimulation, PostponedBackupsMeetDeadlinesUnderFullFaultLoad) {
  // The same adversarial exercise for the selective scheme's theta
  // postponement: force every main copy to fail, so every mandatory job's
  // postponed backup must complete -- Theorem 1 says they all fit.
  class AllMainsFault final : public sim::FaultPlan {
   public:
    std::optional<sim::PermanentFault> permanent() const override {
      return std::nullopt;
    }
    bool transient(const core::JobId&, int slot) const override {
      return slot == 0;
    }
  } plan;

  core::Rng rng(GetParam() ^ 0xa5a5);
  int checked = 0;
  for (int trial = 0; trial < 8000 && checked < 6; ++trial) {
    const auto ts = workload::generate_taskset({}, rng.uniform(0.2, 0.5), rng);
    if (!ts) continue;
    if (!analysis::schedulable(*ts, analysis::DemandModel::kRPatternMandatory)) {
      continue;
    }
    ++checked;

    sched::MkssSelective selective;
    sim::SimConfig cfg;
    cfg.horizon = harness::choose_horizon(*ts, core::from_ms(std::int64_t{1000}));
    const auto trace = sim::simulate(*ts, selective, plan, cfg);
    // Every optional single copy also "fails" (slot 0), so the dynamic
    // pattern degenerates to consecutive mandatory jobs -- the worst case of
    // the appendix proof. Their backups carry the whole QoS.
    const auto qos = metrics::audit_qos(trace, *ts);
    EXPECT_TRUE(qos.mk_satisfied) << ts->describe();
    EXPECT_EQ(trace.stats.mandatory_misses, 0u) << ts->describe();
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisVsSimulation,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace mkss
