// Unit tests: QoS auditing and running statistics.
#include <gtest/gtest.h>

#include "metrics/qos.hpp"
#include "metrics/summary.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "workload/scenarios.hpp"

namespace mkss::metrics {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MeanMinMax) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // sample variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(RunningStat, SingleValueHasZeroVariance) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesSequentialAccumulation) {
  RunningStat all, left, right;
  const double xs[] = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  for (int i = 0; i < 8; ++i) {
    all.add(xs[i]);
    (i < 3 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_DOUBLE_EQ(left.mean(), all.mean());
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a, empty;
  a.add(2.0);
  a.add(4.0);
  const double mean = a.mean();
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStat b;
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_DOUBLE_EQ(b.min(), 2.0);
  EXPECT_DOUBLE_EQ(b.max(), 4.0);
}

TEST(RelativeGain, Basics) {
  EXPECT_DOUBLE_EQ(relative_gain(72.0, 100.0), 0.28);
  EXPECT_DOUBLE_EQ(relative_gain(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_gain(1.0, 0.0), 0.0);  // guarded division
  EXPECT_LT(relative_gain(120.0, 100.0), 0.0);
}

TEST(Qos, CleanRunSatisfiesTheorem1) {
  const auto ts = workload::paper_fig1_taskset();
  const auto scheme = sched::make_scheme(sched::SchemeKind::kSelective);
  sim::NoFaultPlan nofault;
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{40});
  const auto trace = sim::simulate(ts, *scheme, nofault, cfg);
  const auto report = audit_qos(trace, ts);
  EXPECT_TRUE(report.theorem1_holds());
  ASSERT_EQ(report.per_task.size(), 2u);
  EXPECT_GT(report.per_task[0].jobs, 0u);
  EXPECT_EQ(report.per_task[0].met + report.per_task[0].missed,
            report.per_task[0].jobs);
}

TEST(Qos, DetectsViolationInForgedTrace) {
  const auto ts = workload::paper_fig1_taskset();
  sim::SimulationTrace trace;
  trace.horizon = core::from_ms(std::int64_t{40});
  trace.outcomes_per_task.resize(2);
  // tau2 is (1,2): two consecutive misses violate.
  trace.outcomes_per_task[1] = {core::JobOutcome::kMissed, core::JobOutcome::kMissed};
  const auto report = audit_qos(trace, ts);
  EXPECT_FALSE(report.mk_satisfied);
  ASSERT_TRUE(report.per_task[1].violation.has_value());
  EXPECT_EQ(report.per_task[1].violation->first_job, 2u);
  EXPECT_FALSE(report.theorem1_holds());
}

TEST(Qos, MandatoryMissFailsTheoremEvenWithoutWindowViolation) {
  const auto ts = workload::paper_fig1_taskset();
  sim::SimulationTrace trace;
  trace.horizon = core::from_ms(std::int64_t{40});
  trace.outcomes_per_task.resize(2);
  trace.stats.mandatory_misses = 1;
  const auto report = audit_qos(trace, ts);
  EXPECT_TRUE(report.mk_satisfied);
  EXPECT_FALSE(report.theorem1_holds());
}

TEST(Qos, MissRate) {
  TaskQos q;
  q.jobs = 4;
  q.missed = 1;
  EXPECT_DOUBLE_EQ(q.miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(TaskQos{}.miss_rate(), 0.0);
}

}  // namespace
}  // namespace mkss::metrics
