// Unit tests: tick time base, intervals, and overflow-checked lcm/gcd.
#include <gtest/gtest.h>

#include <array>

#include "core/hyperperiod.hpp"
#include "core/time.hpp"

namespace mkss::core {
namespace {

TEST(Time, MsConversionRoundTripsWholeMilliseconds) {
  EXPECT_EQ(from_ms(std::int64_t{5}), 5000);
  EXPECT_EQ(to_ms(5000), 5.0);
  EXPECT_EQ(from_ms(std::int64_t{0}), 0);
}

TEST(Time, FractionalMsRoundsToNearestTick) {
  EXPECT_EQ(from_ms(2.5), 2500);
  EXPECT_EQ(from_ms(0.0004), 0);
  EXPECT_EQ(from_ms(0.0006), 1);
  EXPECT_EQ(from_ms(1.0 / 3.0), 333);
}

TEST(Time, FormatTicksUsesCompactMsForms) {
  EXPECT_EQ(format_ticks(from_ms(std::int64_t{7})), "7ms");
  EXPECT_EQ(format_ticks(from_ms(2.5)), "2.500ms");
  EXPECT_EQ(format_ticks(kNever), "never");
}

TEST(Interval, LengthEmptyContains) {
  const Interval iv{10, 20};
  EXPECT_EQ(iv.length(), 10);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.contains(10));
  EXPECT_TRUE(iv.contains(19));
  EXPECT_FALSE(iv.contains(20));  // half-open
  EXPECT_TRUE((Interval{5, 5}).empty());
  EXPECT_TRUE((Interval{7, 3}).empty());
}

TEST(Interval, OverlapsIsSymmetricAndHalfOpen) {
  const Interval a{0, 10};
  const Interval b{10, 20};
  const Interval c{9, 11};
  EXPECT_FALSE(a.overlaps(b));  // touching endpoints do not overlap
  EXPECT_FALSE(b.overlaps(a));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

TEST(Hyperperiod, GcdBasics) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(18, 12), 6);
  EXPECT_EQ(gcd(7, 13), 1);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(5, 0), 5);
}

TEST(Hyperperiod, LcmWithinCap) {
  EXPECT_EQ(lcm_capped(4, 6, 1000).value(), 12);
  EXPECT_EQ(lcm_capped(5, 7, 1000).value(), 35);
  EXPECT_EQ(lcm_capped(10, 10, 1000).value(), 10);
}

TEST(Hyperperiod, LcmSaturatesAtCap) {
  EXPECT_FALSE(lcm_capped(4, 6, 11).has_value());
  EXPECT_TRUE(lcm_capped(4, 6, 12).has_value());
  // Values that would overflow 64 bits must not wrap around.
  const Ticks big = std::numeric_limits<Ticks>::max() / 2;
  EXPECT_FALSE(lcm_capped(big, big - 1, std::numeric_limits<Ticks>::max()).has_value());
}

TEST(Hyperperiod, LcmRejectsNonPositive) {
  EXPECT_FALSE(lcm_capped(0, 6, 100).has_value());
  EXPECT_FALSE(lcm_capped(6, -1, 100).has_value());
}

TEST(Hyperperiod, SequenceLcm) {
  const std::array<Ticks, 3> values{4, 6, 10};
  EXPECT_EQ(lcm_capped(std::span<const Ticks>(values), 1000).value(), 60);
  EXPECT_FALSE(lcm_capped(std::span<const Ticks>(values), 59).has_value());
}

}  // namespace
}  // namespace mkss::core
