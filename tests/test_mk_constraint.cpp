// Unit + property tests: (m,k) history window, flexibility degree
// (Definition 1), and the offline sequence auditor.
#include <gtest/gtest.h>

#include <tuple>

#include "core/mk_constraint.hpp"
#include "core/rng.hpp"

namespace mkss::core {
namespace {

constexpr auto kMet = JobOutcome::kMet;
constexpr auto kMiss = JobOutcome::kMissed;

TEST(MkHistory, RejectsInvalidParameters) {
  EXPECT_THROW(MkHistory(0, 4), std::invalid_argument);
  EXPECT_THROW(MkHistory(3, 0), std::invalid_argument);
  EXPECT_THROW(MkHistory(5, 4), std::invalid_argument);
}

TEST(MkHistory, PaperFootnoteFlexibilityDegreesAtTimeZero) {
  // Footnote 1: for tau1 = (m,k) = (2,4) the first job can tolerate two more
  // consecutive misses; for tau2 = (1,2), one.
  EXPECT_EQ(MkHistory(2, 4).flexibility_degree(), 2u);
  EXPECT_EQ(MkHistory(1, 2).flexibility_degree(), 1u);
}

TEST(MkHistory, FlexibilityDegreeBounds) {
  // FD is always within [0, k - m].
  for (std::uint32_t k = 1; k <= 8; ++k) {
    for (std::uint32_t m = 1; m <= k; ++m) {
      MkHistory h(m, k);
      EXPECT_EQ(h.flexibility_degree(), k - m) << "all-success start";
    }
  }
}

TEST(MkHistory, HardRealTimeTaskIsAlwaysMandatory) {
  MkHistory h(1, 1);
  EXPECT_TRUE(h.next_job_mandatory());
  h.record(kMet);
  EXPECT_TRUE(h.next_job_mandatory());
}

TEST(MkHistory, MissesConsumeFlexibility) {
  MkHistory h(2, 4);          // FD 2
  h.record(kMiss);            // window 1,1,1,0
  EXPECT_EQ(h.flexibility_degree(), 1u);
  h.record(kMiss);            // window 1,1,0,0
  EXPECT_EQ(h.flexibility_degree(), 0u);
  EXPECT_TRUE(h.next_job_mandatory());
  EXPECT_FALSE(h.violated());  // two successes still inside the window
}

TEST(MkHistory, SuccessRestoresFlexibility) {
  MkHistory h(2, 4);
  h.record(kMiss);
  h.record(kMiss);
  ASSERT_TRUE(h.next_job_mandatory());
  h.record(kMet);  // window 1,0,0,1
  EXPECT_EQ(h.flexibility_degree(), 0u);  // still needs one more success
  h.record(kMet);  // window 0,0,1,1
  EXPECT_EQ(h.flexibility_degree(), 2u);  // both recent jobs met: full slack
}

TEST(MkHistory, ViolationDetected) {
  MkHistory h(1, 2);
  h.record(kMiss);
  EXPECT_FALSE(h.violated());
  h.record(kMiss);
  EXPECT_TRUE(h.violated());
  EXPECT_EQ(h.met_in_window(), 0u);
}

TEST(MkHistory, OneTwoTaskAlternatesUnderSkipEverySecond) {
  // (1,2): skip exactly every job with FD >= 2 never happens; FD==1 always.
  MkHistory h(1, 2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(h.flexibility_degree(), 1u);
    h.record(kMet);
  }
}

TEST(MkHistory, DistanceToFailureIsFdPlusOne) {
  MkHistory h(2, 4);
  EXPECT_EQ(h.distance_to_failure(), h.flexibility_degree() + 1);
  h.record(kMiss);
  EXPECT_EQ(h.distance_to_failure(), h.flexibility_degree() + 1);
}

TEST(MkHistory, WindowExposesOldestToNewest) {
  MkHistory h(1, 3);
  h.record(kMiss);
  h.record(kMet);
  const auto w = h.window();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_TRUE(w[0]);   // pre-history success
  EXPECT_FALSE(w[1]);  // miss
  EXPECT_TRUE(w[2]);   // met
  EXPECT_EQ(h.recorded(), 2u);
}

// Property: FD is exactly the number of misses that can be appended before
// the window (simulated naively) violates, for random histories.
class FlexibilityDegreeProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(FlexibilityDegreeProperty, MatchesNaiveSimulation) {
  const auto [m, k] = GetParam();
  if (m > k) GTEST_SKIP();
  Rng rng(1234 + m * 100 + k);
  for (int trial = 0; trial < 50; ++trial) {
    MkHistory h(m, k);
    for (int steps = 0; steps < 40; ++steps) {
      h.record(rng.chance(0.7) ? kMet : kMiss);
    }
    if (h.violated()) continue;  // FD is only meaningful from a valid state

    const std::uint32_t fd = h.flexibility_degree();
    // Appending fd misses must keep every window valid...
    MkHistory probe = h;
    for (std::uint32_t i = 0; i < fd; ++i) {
      probe.record(kMiss);
      EXPECT_FALSE(probe.violated()) << "m=" << m << " k=" << k;
    }
    // ...and one more miss must violate (unless fd is structurally capped
    // at k - m, where k-m misses always leave exactly m successes).
    if (fd < k - m) {
      probe.record(kMiss);
      EXPECT_TRUE(probe.violated()) << "m=" << m << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlexibilityDegreeProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 7u),
                       ::testing::Values(2u, 3u, 4u, 8u, 12u, 20u)));

TEST(AuditMkSequence, CleanSequencePasses) {
  EXPECT_FALSE(audit_mk_sequence(1, 2, {kMet, kMiss, kMet, kMiss, kMet}).has_value());
}

TEST(AuditMkSequence, ReportsFirstViolatedWindow) {
  const auto v = audit_mk_sequence(1, 2, {kMet, kMiss, kMiss, kMet});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->first_job, 3u);  // window (job2, job3) has zero successes
  EXPECT_EQ(v->met, 0u);
}

TEST(AuditMkSequence, PreHistoryCountsAsSuccess) {
  // First job missing is fine for (1,2): window is (pre-success, miss).
  EXPECT_FALSE(audit_mk_sequence(1, 2, {kMiss}).has_value());
  // But (2,2) needs every job.
  EXPECT_TRUE(audit_mk_sequence(2, 2, {kMiss}).has_value());
}

TEST(AuditMkSequence, EmptySequenceIsVacuouslyValid) {
  EXPECT_FALSE(audit_mk_sequence(3, 5, {}).has_value());
}

}  // namespace
}  // namespace mkss::core
