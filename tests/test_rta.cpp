// Unit tests: response-time analysis (both demand models) and promotion
// times (Equation 2).
#include <gtest/gtest.h>

#include "analysis/promotion.hpp"
#include "analysis/rta.hpp"
#include "analysis/schedulability.hpp"
#include "workload/scenarios.hpp"

namespace mkss::analysis {
namespace {

using core::Task;
using core::TaskSet;
using core::from_ms;

TEST(Rta, HighestPriorityTaskRespondsInItsWcet) {
  const TaskSet ts = workload::paper_fig1_taskset();
  EXPECT_EQ(response_time(ts, 0, DemandModel::kAllJobs).value(), from_ms(std::int64_t{3}));
}

TEST(Rta, ClassicInterferenceExample) {
  // tau1 = (5,4,3), tau2 = (10,10,3): R2 = 3 + 2*3 = 9 (two tau1 releases
  // inside the busy window).
  const TaskSet ts = workload::paper_fig1_taskset();
  EXPECT_EQ(response_time(ts, 1, DemandModel::kAllJobs).value(), from_ms(std::int64_t{9}));
}

TEST(Rta, ReportsUnschedulableTask) {
  const TaskSet ts({Task::from_ms(5, 5, 3, 1, 2), Task::from_ms(10, 10, 5, 1, 2)});
  // tau2: R = 5 + ceil(R/5)*3 -> 5+3=8, 5+6=11 > 10 -> unschedulable.
  EXPECT_TRUE(response_time(ts, 0, DemandModel::kAllJobs).has_value());
  EXPECT_FALSE(response_time(ts, 1, DemandModel::kAllJobs).has_value());
  EXPECT_FALSE(schedulable(ts, DemandModel::kAllJobs));
}

TEST(Rta, RPatternDemandIsNeverLargerThanFullDemand) {
  const TaskSet ts = workload::paper_fig3_taskset();
  const auto full = response_times(ts, DemandModel::kAllJobs);
  const auto mand = response_times(ts, DemandModel::kRPatternMandatory);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (full[i]) {
      ASSERT_TRUE(mand[i].has_value());
      EXPECT_LE(*mand[i], *full[i]);
    }
  }
}

TEST(Rta, RPatternModelCanScheduleWhatFullModelCannot) {
  // Two heavy (1,2) tasks: full utilization 1.33 is infeasible, but the
  // deeply red mandatory jobs (every other job) fit.
  const TaskSet ts({Task::from_ms(6, 6, 4, 1, 2), Task::from_ms(9, 9, 4, 1, 2)});
  EXPECT_FALSE(schedulable(ts, DemandModel::kAllJobs));
  EXPECT_TRUE(schedulable(ts, DemandModel::kRPatternMandatory));
}

TEST(Rta, RPatternBurstIsAccounted) {
  // Deeply red releases the first m jobs back to back: tau1 = (5,5,2,2,4)
  // interferes with 2 jobs inside an 8ms window even though its mandatory
  // utilization is only 0.2.
  const TaskSet ts({Task::from_ms(5, 5, 2, 2, 4), Task::from_ms(10, 8, 4, 1, 1)});
  // R2 = 4 + 2 + 2 = 8 (tau1 jobs at 0 and 5 are both mandatory).
  EXPECT_EQ(response_time(ts, 1, DemandModel::kRPatternMandatory).value(),
            from_ms(std::int64_t{8}));
}

TEST(Promotion, PaperSectionIIIExample) {
  // Y1 = Y2 = 1 for tau1 = (5,4,3,2,4), tau2 = (10,10,3,1,2).
  const auto y = promotion_times(workload::paper_fig1_taskset());
  EXPECT_EQ(y[0].value(), from_ms(std::int64_t{1}));
  EXPECT_EQ(y[1].value(), from_ms(std::int64_t{1}));
}

TEST(Promotion, Figure5Example) {
  // Y2 = 1 ("much larger than the promotion time of tau2'... Y2 = 1").
  const auto y = promotion_times(workload::paper_fig5_taskset());
  EXPECT_EQ(y[0].value(), from_ms(std::int64_t{7}));
  EXPECT_EQ(y[1].value(), from_ms(std::int64_t{1}));
}

TEST(Promotion, UnschedulableTaskHasNoPromotion) {
  const TaskSet ts({Task::from_ms(5, 5, 3, 1, 2), Task::from_ms(10, 10, 5, 1, 2)});
  const auto y = promotion_times(ts);
  EXPECT_TRUE(y[0].has_value());
  EXPECT_FALSE(y[1].has_value());
}

TEST(Schedulability, ReportFlagsBothModels) {
  const auto report =
      analyze_schedulability(core::TaskSet({Task::from_ms(6, 6, 4, 1, 2),
                                            Task::from_ms(9, 9, 4, 1, 2)}));
  EXPECT_TRUE(report.r_pattern_feasible);
  EXPECT_FALSE(report.full_set_feasible);
  EXPECT_EQ(report.response_mandatory.size(), 2u);
  EXPECT_EQ(report.response_full.size(), 2u);
}

TEST(Schedulability, PaperTaskSetsAreFeasibleBothWays) {
  for (const auto& ts : {workload::paper_fig1_taskset(), workload::paper_fig3_taskset(),
                         workload::paper_fig5_taskset()}) {
    const auto report = analyze_schedulability(ts);
    EXPECT_TRUE(report.r_pattern_feasible) << ts.describe();
    EXPECT_TRUE(report.full_set_feasible) << ts.describe();
  }
}

}  // namespace
}  // namespace mkss::analysis
