// Unit tests: DPD energy accounting (Section II-A model).
#include <gtest/gtest.h>

#include "energy/energy_model.hpp"

namespace mkss::energy {
namespace {

using core::from_ms;
using sim::ExecSegment;
using sim::SimulationTrace;

SimulationTrace make_trace(core::Ticks horizon) {
  SimulationTrace t;
  t.horizon = horizon;
  return t;
}

void add_busy(SimulationTrace& t, sim::ProcessorId p, double begin_ms, double end_ms) {
  t.segments.push_back(ExecSegment{
      p, core::JobId{0, 1}, sim::CopyKind::kMain, {from_ms(begin_ms), from_ms(end_ms)}});
}

TEST(Energy, PureActiveTime) {
  auto t = make_trace(from_ms(std::int64_t{10}));
  add_busy(t, sim::kPrimary, 0, 10);
  PowerParams p;
  p.p_idle = 0.5;
  const auto e = account_energy(t, p);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kPrimary].active, 10.0);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kPrimary].idle, 0.0);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kSpare].active, 0.0);
  // Fully idle spare: one 10ms gap > T_be -> transition charge only.
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kSpare].transition, 0.5 * 1.0);
  EXPECT_DOUBLE_EQ(e.total(), 10.0 + 0.5);
  EXPECT_DOUBLE_EQ(e.active_total(), 10.0);
}

TEST(Energy, ShortGapIsChargedAtIdlePower) {
  auto t = make_trace(from_ms(std::int64_t{10}));
  add_busy(t, sim::kPrimary, 0, 4);
  add_busy(t, sim::kPrimary, 4.5, 10);  // 0.5ms gap <= T_be = 1ms
  PowerParams p;
  p.p_idle = 0.2;
  const auto e = account_energy(t, p);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kPrimary].idle, 0.5 * 0.2);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kPrimary].transition, 0.0);
  EXPECT_EQ(e.per_proc[sim::kPrimary].idle_time, from_ms(0.5));
  EXPECT_EQ(e.per_proc[sim::kPrimary].slept_time, 0);
}

TEST(Energy, LongGapPaysBreakEvenThenSleeps) {
  auto t = make_trace(from_ms(std::int64_t{20}));
  add_busy(t, sim::kPrimary, 0, 4);
  add_busy(t, sim::kPrimary, 14, 20);  // 10ms gap > T_be
  PowerParams p;
  p.p_idle = 0.2;
  p.p_sleep = 0.01;
  const auto e = account_energy(t, p);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kPrimary].transition, 1.0 * 0.2);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kPrimary].sleep, 9.0 * 0.01);
  EXPECT_EQ(e.per_proc[sim::kPrimary].slept_time, from_ms(std::int64_t{9}));
}

TEST(Energy, GapExactlyBreakEvenStaysIdle) {
  auto t = make_trace(from_ms(std::int64_t{10}));
  add_busy(t, sim::kPrimary, 0, 4);
  add_busy(t, sim::kPrimary, 5, 10);  // exactly T_be
  const auto e = account_energy(t, {});
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kPrimary].transition, 0.0);
  EXPECT_EQ(e.per_proc[sim::kPrimary].idle_time, from_ms(std::int64_t{1}));
}

TEST(Energy, CustomBreakEven) {
  auto t = make_trace(from_ms(std::int64_t{10}));
  add_busy(t, sim::kPrimary, 0, 4);
  add_busy(t, sim::kPrimary, 6, 10);  // 2ms gap
  PowerParams p;
  p.break_even = from_ms(std::int64_t{3});
  const auto e = account_energy(t, p);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kPrimary].transition, 0.0);  // 2 <= 3: idle
  p.break_even = from_ms(std::int64_t{1});
  const auto e2 = account_energy(t, p);
  EXPECT_GT(e2.per_proc[sim::kPrimary].transition, 0.0);
}

TEST(Energy, DeadProcessorStopsConsuming) {
  auto t = make_trace(from_ms(std::int64_t{20}));
  add_busy(t, sim::kSpare, 0, 5);
  t.death_time[sim::kSpare] = from_ms(std::int64_t{5});
  PowerParams p;
  p.p_idle = 1.0;  // would be expensive if the dead time were charged
  const auto e = account_energy(t, p);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kSpare].active, 5.0);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kSpare].idle, 0.0);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kSpare].transition, 0.0);
}

TEST(Energy, ScalesWithActivePower) {
  auto t = make_trace(from_ms(std::int64_t{10}));
  add_busy(t, sim::kPrimary, 0, 10);
  PowerParams p;
  p.p_active = 2.5;
  p.p_idle = 0.0;
  const auto e = account_energy(t, p);
  EXPECT_DOUBLE_EQ(e.per_proc[sim::kPrimary].active, 25.0);
}

TEST(Energy, BusyTimeBookkeeping) {
  auto t = make_trace(from_ms(std::int64_t{10}));
  add_busy(t, sim::kPrimary, 0, 3);
  add_busy(t, sim::kPrimary, 5, 7);
  const auto e = account_energy(t, {});
  EXPECT_EQ(e.per_proc[sim::kPrimary].busy_time, from_ms(std::int64_t{5}));
}

}  // namespace
}  // namespace mkss::energy
