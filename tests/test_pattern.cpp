// Unit + property tests: R-pattern (Equation 1), E-pattern, and the
// closed-form mandatory-release counter used by the R-pattern RTA.
#include <gtest/gtest.h>

#include <tuple>

#include "core/mk_constraint.hpp"
#include "core/pattern.hpp"

namespace mkss::core {
namespace {

TEST(RPattern, Equation1Examples) {
  // (m,k) = (2,4): jobs 1,2 mandatory; 3,4 optional; repeats.
  EXPECT_TRUE(r_pattern_mandatory(2, 4, 1));
  EXPECT_TRUE(r_pattern_mandatory(2, 4, 2));
  EXPECT_FALSE(r_pattern_mandatory(2, 4, 3));
  EXPECT_FALSE(r_pattern_mandatory(2, 4, 4));
  EXPECT_TRUE(r_pattern_mandatory(2, 4, 5));
  EXPECT_TRUE(r_pattern_mandatory(2, 4, 6));
  // (1,2): odd jobs mandatory.
  EXPECT_TRUE(r_pattern_mandatory(1, 2, 1));
  EXPECT_FALSE(r_pattern_mandatory(1, 2, 2));
  EXPECT_TRUE(r_pattern_mandatory(1, 2, 3));
}

TEST(EPattern, FirstJobAlwaysMandatory) {
  for (std::uint32_t k = 2; k <= 20; ++k) {
    for (std::uint32_t m = 1; m < k; ++m) {
      EXPECT_TRUE(e_pattern_mandatory(m, k, 1)) << m << "," << k;
    }
  }
}

class PatternWindowProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(PatternWindowProperty, ExactlyMMandatoryPerWindowOfK) {
  const auto [m, k] = GetParam();
  if (m >= k) GTEST_SKIP();
  for (const PatternKind kind :
       {PatternKind::kDeeplyRed, PatternKind::kEvenlyDistributed}) {
    // Any k consecutive jobs hold at least m mandatory jobs; aligned windows
    // hold exactly m.
    const auto bits = materialize_pattern(kind, m, k, 6 * k);
    for (std::size_t start = 0; start + k <= bits.size(); ++start) {
      std::uint32_t count = 0;
      for (std::size_t q = 0; q < k; ++q) count += bits[start + q];
      EXPECT_GE(count, m) << "kind=" << static_cast<int>(kind) << " at " << start;
      if (start % k == 0) {
        EXPECT_EQ(count, m);
      }
    }
  }
}

TEST_P(PatternWindowProperty, MandatoryOnlyExecutionSatisfiesMk) {
  // Executing exactly the pattern's mandatory jobs (missing all optional
  // ones) never violates the (m,k) constraint -- the defining property of a
  // valid partitioning pattern.
  const auto [m, k] = GetParam();
  if (m >= k) GTEST_SKIP();
  for (const PatternKind kind :
       {PatternKind::kDeeplyRed, PatternKind::kEvenlyDistributed}) {
    std::vector<JobOutcome> outcomes;
    for (std::uint64_t j = 1; j <= 6 * k; ++j) {
      outcomes.push_back(pattern_mandatory(kind, m, k, j) ? JobOutcome::kMet
                                                          : JobOutcome::kMissed);
    }
    EXPECT_FALSE(audit_mk_sequence(m, k, outcomes).has_value())
        << "kind=" << static_cast<int>(kind) << " m=" << m << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PatternWindowProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 9u, 19u),
                       ::testing::Values(2u, 3u, 4u, 5u, 10u, 20u)));

TEST(RPatternCounter, CountsMandatoryReleasesBefore) {
  const Task t = Task::from_ms(5, 5, 1, 2, 4);
  // Releases at 0,5,10,15,... jobs 1,2 mandatory, 3,4 optional, cycle.
  EXPECT_EQ(r_pattern_mandatory_released_before(t, 0), 0u);
  EXPECT_EQ(r_pattern_mandatory_released_before(t, 1), 1u);       // job 1
  EXPECT_EQ(r_pattern_mandatory_released_before(t, from_ms(std::int64_t{5})), 1u);
  EXPECT_EQ(r_pattern_mandatory_released_before(t, from_ms(std::int64_t{5}) + 1), 2u);
  EXPECT_EQ(r_pattern_mandatory_released_before(t, from_ms(std::int64_t{20}) + 1), 3u);
  EXPECT_EQ(r_pattern_mandatory_released_before(t, from_ms(std::int64_t{40})), 4u);
}

TEST(RPatternCounter, AgreesWithEnumerationOnRandomWindows) {
  const Task t = Task::from_ms(7, 7, 2, 3, 5);
  for (Ticks w = 1; w <= from_ms(std::int64_t{200}); w += 1713) {
    std::uint64_t naive = 0;
    for (std::uint64_t j = 1; static_cast<Ticks>(j - 1) * t.period < w; ++j) {
      naive += r_pattern_mandatory(t.m, t.k, j);
    }
    EXPECT_EQ(r_pattern_mandatory_released_before(t, w), naive) << "w=" << w;
  }
}

TEST(Pattern, MaterializeLengthAndDispatch) {
  const auto bits = materialize_pattern(PatternKind::kDeeplyRed, 1, 3, 7);
  ASSERT_EQ(bits.size(), 7u);
  EXPECT_TRUE(bits[0]);
  EXPECT_FALSE(bits[1]);
  EXPECT_FALSE(bits[2]);
  EXPECT_TRUE(bits[3]);
}

}  // namespace
}  // namespace mkss::core
