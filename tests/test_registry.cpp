// The scheduler plugin registry: static self-registration coverage (all the
// in-tree schemes must be visible, proving the whole-archive link keeps the
// registrar objects), lookup/error contracts, and platform envelopes.
#include "sched/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sched/mkss_st.hpp"

namespace mkss::sched {
namespace {

TEST(Registry, AllInTreeSchemesSelfRegister) {
  const std::vector<std::string> names = Registry::instance().names();
  for (const char* expected : {"st", "dp", "greedy", "selective", "global_fp",
                               "partitioned_fp", "global_edf", "multi_spare"}) {
    EXPECT_TRUE(Registry::instance().contains(expected))
        << expected << " is not registered";
  }
  EXPECT_GE(names.size(), 8u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, AllIsSortedByNameAndMatchesNames) {
  const auto infos = Registry::instance().all();
  const auto names = Registry::instance().names();
  ASSERT_EQ(infos.size(), names.size());
  for (std::size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i]->name, names[i]);
  }
}

TEST(Registry, ResolveReturnsWorkingFactory) {
  const SchemeInfo& info = Registry::instance().resolve("st");
  EXPECT_EQ(info.title, "MKSS_ST");
  const std::unique_ptr<SchemeBase> scheme = info.make();
  ASSERT_NE(scheme, nullptr);
  EXPECT_NE(dynamic_cast<MkssSt*>(scheme.get()), nullptr);
}

TEST(Registry, UnknownSchemeErrorListsEveryRegisteredName) {
  try {
    Registry::instance().resolve("no_such_scheme");
    FAIL() << "resolve should have thrown";
  } catch (const UnknownSchemeError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_scheme"), std::string::npos);
    EXPECT_NE(msg.find("available"), std::string::npos);
    for (const std::string& name : Registry::instance().names()) {
      EXPECT_NE(msg.find(name), std::string::npos)
          << "error message does not list " << name;
    }
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  SchemeInfo dup;
  dup.name = "st";  // already taken by the real MKSS_ST registrar
  dup.title = "imposter";
  dup.make = [] { return std::make_unique<MkssSt>(); };
  EXPECT_THROW(Registry::instance().register_scheme(std::move(dup)),
               std::logic_error);
}

TEST(Registry, MissingFactoryThrows) {
  SchemeInfo broken;
  broken.name = "broken_scheme_without_factory";
  EXPECT_THROW(Registry::instance().register_scheme(std::move(broken)),
               std::logic_error);
}

TEST(Registry, EmptyNameThrows) {
  SchemeInfo anonymous;
  anonymous.make = [] { return std::make_unique<MkssSt>(); };
  EXPECT_THROW(Registry::instance().register_scheme(std::move(anonymous)),
               std::logic_error);
}

TEST(Registry, PlatformEnvelopes) {
  // The paper's four schemes are written against the dual platform.
  for (const char* dual_only : {"st", "dp", "greedy", "selective"}) {
    const SchemeInfo& info = Registry::instance().resolve(dual_only);
    EXPECT_TRUE(info.supports(2)) << dual_only;
    EXPECT_FALSE(info.supports(3)) << dual_only;
    EXPECT_FALSE(info.supports(4)) << dual_only;
  }
  // The N-processor schemes accept any platform the simulator accepts.
  for (const char* nproc : {"global_fp", "partitioned_fp", "global_edf",
                            "multi_spare"}) {
    const SchemeInfo& info = Registry::instance().resolve(nproc);
    EXPECT_TRUE(info.supports(2)) << nproc;
    EXPECT_TRUE(info.supports(4)) << nproc;
    EXPECT_TRUE(info.supports(255)) << nproc;
  }
}

TEST(SchemeInfoSupports, BoundsAreInclusiveAndZeroMaxIsUnbounded) {
  SchemeInfo info;
  info.min_procs = 3;
  info.max_procs = 5;
  EXPECT_FALSE(info.supports(2));
  EXPECT_TRUE(info.supports(3));
  EXPECT_TRUE(info.supports(5));
  EXPECT_FALSE(info.supports(6));
  info.max_procs = 0;
  EXPECT_TRUE(info.supports(1000));
}

}  // namespace
}  // namespace mkss::sched
