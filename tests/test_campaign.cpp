// Unit tests: the adversarial fault-injection campaign -- the real schemes
// survive every enumerated placement, and a deliberately broken scheme
// variant is caught by the attached auditor with a usable repro bundle.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "fault/campaign.hpp"
#include "io/taskset_io.hpp"
#include "sched/factory.hpp"
#include "workload/scenarios.hpp"

namespace mkss::fault {
namespace {

TEST(ExplicitFaultPlan, AnswersExactlyWhatWasInjected) {
  ExplicitFaultPlan plan;
  plan.set_permanent({sim::kSpare, core::from_ms(std::int64_t{3})});
  plan.add_transient(core::JobId{0, 2}, 0);
  plan.add_transient(core::JobId{1, 1}, 1);

  ASSERT_TRUE(plan.permanent().has_value());
  EXPECT_EQ(plan.permanent()->proc, sim::kSpare);
  EXPECT_TRUE(plan.transient(core::JobId{0, 2}, 0));
  EXPECT_FALSE(plan.transient(core::JobId{0, 2}, 1));
  EXPECT_TRUE(plan.transient(core::JobId{1, 1}, 1));
  EXPECT_FALSE(plan.transient(core::JobId{1, 2}, 1));

  const std::string desc = plan.describe();
  EXPECT_NE(desc.find("permanent proc 1"), std::string::npos);
  EXPECT_NE(desc.find("J1,2/main"), std::string::npos);
  EXPECT_NE(desc.find("J2,1/backup"), std::string::npos);
}

TEST(ExplicitFaultPlan, EmptyPlanDescribesNoFaults) {
  EXPECT_EQ(ExplicitFaultPlan{}.describe(), "no faults");
  EXPECT_FALSE(ExplicitFaultPlan{}.permanent().has_value());
}

TEST(Campaign, RealSchemesSurviveAllPlacementsOnFig1) {
  const std::vector<CampaignCase> cases{
      {"fig1", workload::paper_fig1_taskset()}};
  const CampaignResult result = run_campaign(cases, paper_schemes(), {});
  EXPECT_GT(result.placements, 50u);
  EXPECT_GT(result.runs, result.placements);  // probes run too
  EXPECT_TRUE(result.ok()) << result.summary();
}

TEST(Campaign, DefaultCasesIncludePaperExamples) {
  const auto cases = default_campaign_cases();
  ASSERT_GE(cases.size(), 3u);
  EXPECT_EQ(cases[0].name, "fig1");
  EXPECT_EQ(cases[1].name, "fig3");
  EXPECT_EQ(cases[2].name, "fig5");
}

/// Deliberately broken scheme: behaves like MKSS_ST but silently drops every
/// backup copy and refuses to re-route after a processor death. A transient
/// on any mandatory main is then fatal -- which the campaign's targeted
/// placements must expose as an unexplained mandatory miss.
class NoBackupScheme final : public sim::Scheme {
 public:
  std::string name() const override { return "st-no-backup"; }
  void setup(const core::TaskSet& ts) override { inner_->setup(ts); }
  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override {
    sim::ReleaseDecision d = inner_->on_release(i, j, release);
    d.copies.erase_if([](const sim::CopySpec& c) {
      return c.kind == sim::CopyKind::kBackup;
    });
    return d;
  }
  void on_outcome(core::TaskIndex i, std::uint64_t j,
                  core::JobOutcome o) override {
    inner_->on_outcome(i, j, o);
  }
  void on_permanent_fault(sim::ProcessorId dead, core::Ticks now) override {
    inner_->on_permanent_fault(dead, now);
  }
  std::optional<sim::CopySpec> reroute_on_death(const core::Job&, bool,
                                                sim::ProcessorId, core::Ticks,
                                                core::Ticks) override {
    return std::nullopt;
  }

 private:
  std::unique_ptr<sim::Scheme> inner_ = sched::make_scheme(sched::SchemeKind::kSt);
};

TEST(Campaign, CatchesBrokenSchemeWithReproBundle) {
  const std::vector<CampaignCase> cases{
      {"fig1", workload::paper_fig1_taskset()}};
  const std::vector<CampaignScheme> schemes{
      {"st-no-backup", [] { return std::make_unique<NoBackupScheme>(); }}};
  const CampaignResult result = run_campaign(cases, schemes, {});

  ASSERT_FALSE(result.ok()) << "the auditor must flag the missing backups";
  const CampaignViolation& v = result.violations.front();
  EXPECT_EQ(v.case_name, "fig1");
  EXPECT_EQ(v.scheme, "st-no-backup");
  EXPECT_FALSE(v.fault_plan.empty());
  // The repro bundle's task set round-trips through the parser.
  const core::TaskSet repro = io::parse_taskset_string(v.taskset);
  EXPECT_EQ(repro.size(), workload::paper_fig1_taskset().size());
  // At least one violation is the unexplained mandatory miss itself.
  const bool mandatory_miss = std::any_of(
      result.violations.begin(), result.violations.end(),
      [](const CampaignViolation& cv) {
        return std::any_of(cv.report.violations.begin(),
                           cv.report.violations.end(), [](const auto& f) {
                             return f.invariant == "mandatory-miss";
                           });
      });
  EXPECT_TRUE(mandatory_miss) << result.summary();
}

}  // namespace
}  // namespace mkss::fault
