// Fuzz + unit tests: analysis::AdmissionContext is a staged (filtered,
// memoized, warm-started) front end for the exact schedulability test, so its
// verdict must be *bit-identical* to analysis::schedulable on every input,
// for every demand model, regardless of what the context admitted before.
// The randomized corpus deliberately mixes implicit and constrained
// deadlines, equal periods, non-rate-monotonic orders, m == k tasks, and
// totals straddling the schedulability boundary so every ladder rung fires.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "analysis/admission.hpp"
#include "analysis/rta.hpp"
#include "core/rng.hpp"
#include "core/task.hpp"
#include "core/time.hpp"

namespace mkss {
namespace {

using analysis::AdmissionContext;
using analysis::AdmissionStage;
using analysis::DemandModel;
using core::Task;
using core::TaskSet;
using core::Ticks;

const std::array<DemandModel, 3> kAllModels = {DemandModel::kAllJobs,
                                               DemandModel::kRPatternMandatory,
                                               DemandModel::kEPatternMandatory};

Task make_task(Ticks period_ms, Ticks deadline_ms, Ticks wcet_ms,
               std::uint32_t m, std::uint32_t k) {
  Task t;
  t.period = core::from_ms(static_cast<std::int64_t>(period_ms));
  t.deadline = core::from_ms(static_cast<std::int64_t>(deadline_ms));
  t.wcet = core::from_ms(static_cast<std::int64_t>(wcet_ms));
  t.m = m;
  t.k = k;
  return t;
}

/// Random valid task set straddling the schedulability boundary. Half the
/// draws are rate-monotonic with implicit deadlines (the hyperbolic stage's
/// domain); the rest keep draw order and constrained deadlines.
TaskSet random_taskset(core::Rng& rng) {
  const auto n = static_cast<std::size_t>(rng.range(1, 10));
  const bool rm_implicit = rng.chance(0.5);
  std::vector<Task> tasks(n);
  for (auto& t : tasks) {
    // Small period range on purpose: equal periods must be common.
    t.period = core::from_ms(rng.range(1, 12));
    const double share =
        rng.uniform(0.02, 1.8 / static_cast<double>(n));  // mix of verdicts
    t.wcet = std::clamp<Ticks>(
        static_cast<Ticks>(std::llround(share * static_cast<double>(t.period))),
        1, t.period);
    t.deadline = rm_implicit ? t.period : rng.range(t.wcet, t.period);
    t.k = static_cast<std::uint32_t>(rng.range(1, 12));
    t.m = rng.chance(0.2) ? t.k
                          : static_cast<std::uint32_t>(
                                rng.range(1, static_cast<std::int64_t>(t.k)));
  }
  if (rm_implicit) {
    std::sort(tasks.begin(), tasks.end(),
              [](const Task& a, const Task& b) { return a.period < b.period; });
  }
  return TaskSet(std::move(tasks));
}

TEST(Admission, FuzzVerdictMatchesReferenceAcrossModels) {
  AdmissionContext persistent;  // carries probe hints across every set
  std::array<std::uint64_t, 5> stage_hits{};
  core::Rng rng(0x5EED0005);
  for (int iter = 0; iter < 4000; ++iter) {
    const TaskSet ts = random_taskset(rng);
    for (const auto model : kAllModels) {
      const bool ref = analysis::schedulable(ts, model);
      AdmissionContext fresh;
      ASSERT_EQ(fresh.admit(ts, model).schedulable, ref)
          << "fresh context diverged on " << ts.describe();
      const auto v = persistent.admit(ts, model);
      ASSERT_EQ(v.schedulable, ref)
          << "warm context diverged on " << ts.describe();
      ++stage_hits[static_cast<std::size_t>(v.stage)];
    }
  }
  // The corpus must actually exercise every ladder rung, or the equivalence
  // assertions above prove less than they claim.
  for (std::size_t s = 0; s < stage_hits.size(); ++s) {
    EXPECT_GT(stage_hits[s], 0u) << "stage " << s << " never fired";
  }
}

TEST(Admission, RawVectorOverloadMatchesTaskSetOverload) {
  core::Rng rng(0xD15C0);
  AdmissionContext by_set;
  AdmissionContext by_vector;
  for (int iter = 0; iter < 500; ++iter) {
    const TaskSet ts = random_taskset(rng);
    // Scatter the tasks into a random storage order and describe the
    // priority order through the permutation, as generate_bin does.
    std::vector<std::uint32_t> order(ts.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(i)))]);
    }
    std::vector<Task> storage(ts.size());
    for (std::size_t pri = 0; pri < order.size(); ++pri) {
      storage[order[pri]] = ts[pri];
    }
    for (const auto model : kAllModels) {
      const auto a = by_set.admit(ts, model);
      const auto b = by_vector.admit(storage, order, model);
      EXPECT_EQ(a.schedulable, b.schedulable) << ts.describe();
      EXPECT_EQ(analysis::schedulable(ts, model), b.schedulable);
    }
  }
}

TEST(Admission, LowerBoundRejectNeedsNoIteration) {
  // Two tasks whose WCETs alone overflow the second deadline.
  const TaskSet ts({make_task(5, 5, 4, 1, 2), make_task(5, 5, 4, 1, 2)});
  AdmissionContext ctx;
  for (const auto model : kAllModels) {
    const auto v = ctx.admit(ts, model);
    EXPECT_FALSE(v.schedulable);
    EXPECT_EQ(v.stage, AdmissionStage::kLowerBoundReject);
    EXPECT_FALSE(analysis::schedulable(ts, model));
  }
}

TEST(Admission, HyperbolicAcceptCoversLowUtilizationImplicitDeadlines) {
  const TaskSet ts({make_task(10, 10, 1, 1, 2), make_task(20, 20, 2, 2, 3),
                    make_task(40, 40, 4, 3, 4)});  // prod(1+U) = 1.331
  AdmissionContext ctx;
  for (const auto model : kAllModels) {
    const auto v = ctx.admit(ts, model);
    EXPECT_TRUE(v.schedulable);
    EXPECT_EQ(v.stage, AdmissionStage::kHyperbolicAccept);
    EXPECT_TRUE(analysis::schedulable(ts, model));
  }
}

TEST(Admission, ProbeAcceptsRepeatAdmissionsWithoutExactIteration) {
  // Constrained deadlines disable the hyperbolic stage, so the first admit
  // must run the exact iteration; the remembered fixed points then certify
  // the identical set on every later admit.
  const TaskSet ts({make_task(8, 6, 2, 1, 2), make_task(12, 9, 3, 2, 3),
                    make_task(24, 20, 4, 1, 4)});
  AdmissionContext ctx;
  const auto first = ctx.admit(ts, DemandModel::kRPatternMandatory);
  EXPECT_TRUE(first.schedulable);
  EXPECT_EQ(first.stage, AdmissionStage::kExactAccept);
  const auto second = ctx.admit(ts, DemandModel::kRPatternMandatory);
  EXPECT_TRUE(second.schedulable);
  EXPECT_EQ(second.stage, AdmissionStage::kProbeAccept);
}

TEST(Admission, ExactRejectWhenIterationOverrunsDeadline) {
  // Survives the lower bound (2+5 <= 8) but the fixed point does not.
  const TaskSet ts({make_task(4, 4, 2, 1, 1), make_task(8, 8, 5, 1, 1)});
  AdmissionContext ctx;
  const auto v = ctx.admit(ts, DemandModel::kAllJobs);
  EXPECT_FALSE(v.schedulable);
  EXPECT_EQ(v.stage, AdmissionStage::kExactReject);
  EXPECT_FALSE(analysis::schedulable(ts, DemandModel::kAllJobs));
}

TEST(Admission, EmptySetIsVacuouslySchedulable) {
  AdmissionContext ctx;
  for (const auto model : kAllModels) {
    EXPECT_TRUE(ctx.admit(TaskSet(), model).schedulable);
  }
}

}  // namespace
}  // namespace mkss
