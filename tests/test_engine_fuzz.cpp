// Fuzz/property suite for the discrete-event engine: a scheme that makes
// random-but-well-formed decisions drives the engine through task sets and
// fault plans it was never hand-tuned for; structural invariants are then
// checked on the resulting traces. This is the robustness net under the four
// real schemes.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "core/release_timeline.hpp"
#include "core/rng.hpp"
#include "fault/injection.hpp"
#include "harness/evaluation.hpp"
#include "io/trace_json.hpp"
#include "sched/mkss_selective.hpp"
#include "sim/engine.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss::sim {
namespace {

using core::Ticks;

/// Makes arbitrary valid release decisions, driven by a seeded RNG.
class RandomScheme final : public Scheme {
 public:
  /// `use_dvs` = false pins every copy to full speed; true mixes random
  /// frequencies (the engine-side DVS path: scaled demand, scaled segments).
  explicit RandomScheme(std::uint64_t seed, bool use_dvs = true)
      : rng_(seed), use_dvs_(use_dvs) {}

  std::string name() const override { return "fuzz"; }
  void bind_platform(const PlatformSpec& platform) override {
    nproc_ = static_cast<std::uint64_t>(platform.num_procs());
  }
  void setup(const core::TaskSet& ts) override { ts_ = &ts; }

  ReleaseDecision on_release(core::TaskIndex i, std::uint64_t, Ticks release) override {
    const core::Task& task = (*ts_)[i];
    ReleaseDecision d;
    const auto roll = rng_.below(10);
    const auto proc = static_cast<ProcessorId>(rng_.below(nproc_));
    const double freq =
        use_dvs_ ? std::array<double, 3>{1.0, 0.75, 0.5}[rng_.below(3)] : 1.0;
    const Ticks slack = task.deadline - task.wcet;
    const Ticks delay = slack > 0 ? rng_.range(0, slack) : 0;

    if (roll < 2) {
      return ReleaseDecision::skip();
    }
    if (roll < 5) {  // duplicated mandatory, random backup delay
      d.mandatory = true;
      d.copies.push_back({kPrimary, CopyKind::kMain, Band::kMandatory, release, 0, 1.0});
      // Backup on the next processor: kSpare on the dual platform.
      d.copies.push_back({static_cast<ProcessorId>(1 % nproc_),
                          CopyKind::kBackup, Band::kMandatory,
                          release + delay, 0, 1.0});
      return d;
    }
    if (roll < 7) {  // single mandatory copy on a random processor
      d.mandatory = true;
      d.copies.push_back({proc, CopyKind::kMain, Band::kMandatory, release, 0, freq});
      return d;
    }
    // optional copy, random placement / rank / eligibility / frequency
    d.copies.push_back({proc, CopyKind::kOptional, Band::kOptional,
                        release + delay,
                        static_cast<std::uint32_t>(rng_.below(4)), freq});
    return d;
  }

  void on_outcome(core::TaskIndex, std::uint64_t, core::JobOutcome) override {}
  void on_permanent_fault(ProcessorId, Ticks) override {}
  std::optional<CopySpec> reroute_on_death(const core::Job& job, bool mandatory,
                                           ProcessorId survivor, Ticks now,
                                           Ticks) override {
    if (!mandatory && now + job.exec > job.deadline) return std::nullopt;
    return CopySpec{survivor,
                    mandatory ? CopyKind::kMain : CopyKind::kOptional,
                    mandatory ? Band::kMandatory : Band::kOptional, now, 0, 1.0};
  }

 private:
  const core::TaskSet* ts_ = nullptr;
  core::Rng rng_;
  bool use_dvs_;
  std::uint64_t nproc_{2};
};

void check_invariants(const SimulationTrace& trace, const core::TaskSet& ts,
                      std::uint64_t seed) {
  // 1. No overlapping execution on a processor; segments within horizon.
  const std::size_t nproc = trace.death_time.size();
  std::vector<std::vector<core::Interval>> spans(nproc);
  for (const ExecSegment& s : trace.segments) {
    ASSERT_LT(s.proc, nproc);
    EXPECT_GE(s.span.begin, 0) << "seed " << seed;
    EXPECT_LE(s.span.end, trace.horizon) << "seed " << seed;
    EXPECT_LT(s.span.begin, s.span.end) << "seed " << seed;
    spans[s.proc].push_back(s.span);
  }
  for (auto& list : spans) {
    std::sort(list.begin(), list.end(),
              [](const auto& a, const auto& b) { return a.begin < b.begin; });
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_GE(list[i].begin, list[i - 1].end) << "seed " << seed;
    }
  }

  // 2. busy_time bookkeeping is exact.
  std::vector<Ticks> busy(nproc, 0);
  for (const ExecSegment& s : trace.segments) busy[s.proc] += s.span.length();
  for (std::size_t p = 0; p < nproc; ++p) {
    EXPECT_EQ(busy[p], trace.busy_time[p]) << "seed " << seed << " proc " << p;
  }

  // 3. Nothing executes on a dead processor after its death.
  for (const ExecSegment& s : trace.segments) {
    EXPECT_LE(s.span.end, trace.death_time[s.proc]) << "seed " << seed;
  }

  // 4. Every counted job resolves exactly once, in job order, and the
  //    outcome sequences match the counted-job counts.
  std::vector<std::size_t> counted(ts.size(), 0);
  for (const JobRecord& j : trace.jobs) {
    if (j.counted) {
      EXPECT_TRUE(j.resolved) << "seed " << seed;
      EXPECT_LE(j.resolved_at, j.job.deadline) << "seed " << seed;
      ++counted[j.job.id.task];
    }
  }
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(trace.outcomes_per_task[i].size(), counted[i]) << "seed " << seed;
  }

  // 5. Met jobs executed at least ... something; missed mandatory jobs are
  //    tallied.
  EXPECT_EQ(trace.stats.jobs_met + trace.stats.jobs_missed,
            std::accumulate(counted.begin(), counted.end(), std::size_t{0}))
      << "seed " << seed;

  // 6. Per-copy execution never exceeds the scaled demand (freq >= 0.5 here,
  //    so at most 2x WCET per copy, 4x per job, plus preemption overheads --
  //    none configured).
  std::map<std::pair<core::TaskIndex, std::uint64_t>, Ticks> per_job;
  for (const ExecSegment& s : trace.segments) {
    per_job[{s.job.task, s.job.job}] += s.span.length();
  }
  for (const auto& [key, total] : per_job) {
    EXPECT_LE(total, 4 * ts[key.first].wcet + 4) << "seed " << seed;
  }
}

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, InvariantsHoldUnderRandomSchemesAndFaults) {
  const std::uint64_t seed = GetParam();
  core::Rng rng(seed);
  int produced = 0;
  for (int trial = 0; trial < 4000 && produced < 6; ++trial) {
    const auto ts = workload::generate_taskset({}, rng.uniform(0.2, 0.6), rng);
    if (!ts) continue;
    ++produced;

    const Ticks horizon = core::from_ms(rng.range(50, 400));
    for (const auto scenario :
         {fault::Scenario::kNoFault, fault::Scenario::kPermanentOnly,
          fault::Scenario::kPermanentAndTransient}) {
      core::Rng fault_rng = rng.split();
      const auto plan =
          fault::make_scenario_plan(scenario, *ts, horizon, 0.005, fault_rng);
      RandomScheme scheme(seed ^ 0xabcdef);
      SimConfig cfg;
      cfg.horizon = horizon;
      cfg.wake_for_optional = (seed % 2) == 0;
      const auto trace = simulate(*ts, scheme, *plan, cfg);
      check_invariants(trace, *ts, seed);
    }
  }
  EXPECT_GT(produced, 0);
}

TEST_P(EngineFuzz, IdenticalSeedsGiveIdenticalTraces) {
  const std::uint64_t seed = GetParam();
  core::Rng rng(seed);
  std::optional<core::TaskSet> ts;
  for (int trial = 0; trial < 4000 && !ts; ++trial) {
    ts = workload::generate_taskset({}, 0.4, rng);
  }
  ASSERT_TRUE(ts.has_value());

  const auto run = [&](std::uint64_t scheme_seed) {
    RandomScheme scheme(scheme_seed);
    NoFaultPlan faults;
    SimConfig cfg;
    cfg.horizon = core::from_ms(std::int64_t{200});
    return simulate(*ts, scheme, faults, cfg);
  };
  const auto a = run(seed);
  const auto b = run(seed);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].span, b.segments[i].span);
    EXPECT_EQ(a.segments[i].proc, b.segments[i].proc);
  }
  EXPECT_EQ(a.stats.jobs_met, b.stats.jobs_met);
}

/// Full-trace equality down to the last counter. trace_to_json covers
/// segments, jobs, copies, outcomes and death times byte for byte; the stats
/// fields are compared explicitly because the scan oracle must not even
/// touch the event-core counters.
void expect_bit_identical(const SimulationTrace& a, const SimulationTrace& b,
                          const core::TaskSet& ts, std::uint64_t seed) {
  EXPECT_EQ(io::trace_to_json(a, ts), io::trace_to_json(b, ts)) << "seed " << seed;
  EXPECT_EQ(a.stats.sim_events, b.stats.sim_events) << "seed " << seed;
  EXPECT_EQ(a.stats.completions, b.stats.completions) << "seed " << seed;
  EXPECT_EQ(a.stats.deadline_fires, b.stats.deadline_fires) << "seed " << seed;
  EXPECT_EQ(a.stats.eligibility_wakeups, b.stats.eligibility_wakeups)
      << "seed " << seed;
  EXPECT_EQ(a.stats.dispatch_pops, b.stats.dispatch_pops) << "seed " << seed;
  EXPECT_EQ(a.stats.preemptions, b.stats.preemptions) << "seed " << seed;
  EXPECT_EQ(a.stats.jobs_met, b.stats.jobs_met) << "seed " << seed;
  EXPECT_EQ(a.stats.jobs_missed, b.stats.jobs_missed) << "seed " << seed;
  EXPECT_EQ(a.busy_time, b.busy_time) << "seed " << seed;
  EXPECT_EQ(a.death_time, b.death_time) << "seed " << seed;
}

TEST_P(EngineFuzz, IndexedCoreMatchesScanOracleOnLongHorizons) {
  // The indexed event core vs. the retained scan oracle, over long horizons:
  // with SimConfig::cross_check on, every event re-derives the next-event
  // time, dispatch choice and prune set by linear scan and MKSS_CHECKs them
  // against the heaps -- a completed run is a per-event equivalence proof.
  // The cross-checked trace must then be bit-identical to the production
  // (cross_check off) trace: the oracle observes, never perturbs. Swept
  // across {no fault, permanent, transient burst} x {DVS off, DVS on}.
  const std::uint64_t seed = GetParam();
  core::Rng rng(seed * 7919 + 17);
  std::optional<core::TaskSet> ts;
  for (int trial = 0; trial < 4000 && !ts; ++trial) {
    ts = workload::generate_taskset({}, rng.uniform(0.3, 0.7), rng);
  }
  ASSERT_TRUE(ts.has_value());
  const Ticks horizon = core::from_ms(rng.range(1500, 3000));

  struct Case {
    fault::Scenario scenario;
    double lambda_per_ms;
  };
  for (const Case c : {Case{fault::Scenario::kNoFault, 0.0},
                       Case{fault::Scenario::kPermanentOnly, 0.0},
                       // 0.02/ms is a burst regime: multi-fault jobs happen.
                       Case{fault::Scenario::kPermanentAndTransient, 0.02}}) {
    core::Rng fault_rng = rng.split();
    const auto plan = fault::make_scenario_plan(c.scenario, *ts, horizon,
                                                c.lambda_per_ms, fault_rng);
    for (const bool dvs : {false, true}) {
      const auto run = [&](bool cross_check) {
        RandomScheme scheme(seed ^ (dvs ? 0x515 : 0xACE), dvs);
        SimConfig cfg;
        cfg.horizon = horizon;
        cfg.wake_for_optional = (seed % 2) == 0;
        cfg.cross_check = cross_check;
        return simulate(*ts, scheme, *plan, cfg);
      };
      const auto indexed = run(false);
      const auto checked = run(true);
      expect_bit_identical(indexed, checked, *ts, seed);
      check_invariants(indexed, *ts, seed);
    }

    // Same contract under a real scheme (the paper's best performer), with
    // its own DVS ladder instead of random frequencies.
    for (const bool dvs : {false, true}) {
      const auto run = [&](bool cross_check) {
        sched::SelectiveOptions opts;
        opts.dvs.enabled = dvs;
        sched::MkssSelective scheme(opts);
        SimConfig cfg;
        cfg.horizon = horizon;
        cfg.cross_check = cross_check;
        return simulate(*ts, scheme, *plan, cfg);
      };
      expect_bit_identical(run(false), run(true), *ts, seed);
    }
  }
}

TEST_P(EngineFuzz, FourProcessorPlatformHoldsInvariantsAndMatchesOracle) {
  // The vectorized engine on a 4-processor platform: random placements over
  // all four processors, all fault scenarios, and the scan oracle cross-check
  // proving the indexed structures stay equivalent beyond the dual platform.
  const std::uint64_t seed = GetParam();
  core::Rng rng(seed * 104729 + 31);
  std::optional<core::TaskSet> ts;
  for (int trial = 0; trial < 4000 && !ts; ++trial) {
    ts = workload::generate_taskset({}, rng.uniform(0.3, 0.7), rng);
  }
  ASSERT_TRUE(ts.has_value());
  const Ticks horizon = core::from_ms(rng.range(300, 800));

  for (const auto scenario :
       {fault::Scenario::kNoFault, fault::Scenario::kPermanentOnly,
        fault::Scenario::kPermanentAndTransient}) {
    core::Rng fault_rng = rng.split();
    const auto plan =
        fault::make_scenario_plan(scenario, *ts, horizon, 0.01, fault_rng);
    const auto run = [&](bool cross_check) {
      RandomScheme scheme(seed ^ 0x4444);
      SimConfig cfg;
      cfg.horizon = horizon;
      cfg.platform = PlatformSpec::standby(4);
      cfg.wake_for_optional = (seed % 2) == 0;
      cfg.cross_check = cross_check;
      return simulate(*ts, scheme, *plan, cfg);
    };
    const auto indexed = run(false);
    const auto checked = run(true);
    ASSERT_EQ(indexed.death_time.size(), 4u);
    expect_bit_identical(indexed, checked, *ts, seed);
    check_invariants(indexed, *ts, seed);
  }
}

TEST_P(EngineFuzz, CachedTimelineMatchesHeapBitForBit) {
  // The release-timeline cache's bit-identity contract: a cursor walk over
  // the shared SoA arena must reproduce the calendar heap's trace byte for
  // byte -- trace JSON and every event-core counter -- because the arena is
  // sorted by (release, task), the heap's strict-total pop order. Swept over
  // long horizons x {no fault, permanent, transient burst} x {2, 4} procs,
  // with the arena both attached (the BatchRunner/serve path) and built
  // locally inside the run (forced kCached with nothing attached).
  const std::uint64_t seed = GetParam();
  core::Rng rng(seed * 6151 + 11);
  std::optional<core::TaskSet> ts;
  for (int trial = 0; trial < 4000 && !ts; ++trial) {
    ts = workload::generate_taskset({}, rng.uniform(0.3, 0.7), rng);
  }
  ASSERT_TRUE(ts.has_value());
  const Ticks horizon = core::from_ms(rng.range(1500, 3000));

  core::ReleaseTimeline shared;
  core::build_release_timeline(*ts, horizon, shared);

  struct Case {
    fault::Scenario scenario;
    double lambda_per_ms;
  };
  for (const Case c : {Case{fault::Scenario::kNoFault, 0.0},
                       Case{fault::Scenario::kPermanentOnly, 0.0},
                       Case{fault::Scenario::kPermanentAndTransient, 0.02}}) {
    core::Rng fault_rng = rng.split();
    const auto plan = fault::make_scenario_plan(c.scenario, *ts, horizon,
                                                c.lambda_per_ms, fault_rng);
    for (const std::size_t nproc : {std::size_t{2}, std::size_t{4}}) {
      const auto run = [&](TimelineMode mode,
                           const core::ReleaseTimeline* attached) {
        set_forced_timeline_mode(mode);
        RandomScheme scheme(seed ^ 0x71A3);
        SimConfig cfg;
        cfg.horizon = horizon;
        cfg.platform = PlatformSpec::standby(nproc);
        cfg.wake_for_optional = (seed % 2) == 0;
        cfg.timeline_data = attached;
        auto trace = simulate(*ts, scheme, *plan, cfg);
        clear_forced_timeline_mode();
        return trace;
      };
      const auto heap = run(TimelineMode::kHeap, nullptr);
      const auto cached_attached = run(TimelineMode::kCached, &shared);
      const auto cached_local = run(TimelineMode::kCached, nullptr);
      expect_bit_identical(heap, cached_attached, *ts, seed);
      expect_bit_identical(heap, cached_local, *ts, seed);
      check_invariants(heap, *ts, seed);
    }
  }
}

TEST(SweepTimelineModes, BitIdenticalAcrossModesAndThreadCounts) {
  // Harness-level closure of the same contract: a full sweep -- generation,
  // the four scheme variants, aggregation -- produces the identical CSV for
  // every (timeline mode) x (thread count) combination. Thread count 0 is
  // "hardware concurrency", so the matrix covers the serial inline path, the
  // pooled path, and whatever the box really has.
  harness::SweepConfig cfg;
  cfg.bin_starts = {0.3, 0.5};
  cfg.sets_per_bin = 4;
  cfg.max_attempts_per_bin = 3000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  cfg.scenario = fault::Scenario::kPermanentAndTransient;
  cfg.lambda_per_ms = 1e-4;

  std::optional<std::string> reference;
  for (const TimelineMode mode :
       {TimelineMode::kHeap, TimelineMode::kCached, TimelineMode::kAuto}) {
    set_forced_timeline_mode(mode);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
      cfg.num_threads = threads;
      const std::string csv = harness::run_sweep(cfg).to_table().to_csv();
      if (!reference) {
        reference = csv;
      } else {
        EXPECT_EQ(csv, *reference)
            << "mode " << static_cast<int>(mode) << " threads " << threads;
      }
    }
  }
  clear_forced_timeline_mode();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace mkss::sim
