// Unit tests: analysis::AnalysisCache must return exactly what the
// underlying analyses compute (it stores their results, so equality is
// exact, not approximate), memoize across calls, and leave scheme behavior
// unchanged when bound through harness::BatchRunner.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/cache.hpp"
#include "analysis/postponement.hpp"
#include "analysis/promotion.hpp"
#include "analysis/rta.hpp"
#include "harness/batch_runner.hpp"
#include "io/trace_json.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "workload/scenarios.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss {
namespace {

using core::TaskSet;
using core::from_ms;

const std::array<analysis::DemandModel, 3> kAllModels = {
    analysis::DemandModel::kAllJobs, analysis::DemandModel::kRPatternMandatory,
    analysis::DemandModel::kEPatternMandatory};

void expect_cache_matches_fresh(const TaskSet& ts) {
  analysis::AnalysisCache cache(ts);
  EXPECT_EQ(&cache.taskset(), &ts);

  const auto fresh_theta = analysis::compute_postponement(ts);
  const auto& cached_theta = cache.postponement();
  ASSERT_EQ(cached_theta.per_task.size(), fresh_theta.per_task.size());
  EXPECT_EQ(cached_theta.all_exact, fresh_theta.all_exact);
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(cached_theta.theta(i), fresh_theta.theta(i)) << "task " << i;
    EXPECT_EQ(cached_theta.per_task[i].source, fresh_theta.per_task[i].source);
  }

  EXPECT_EQ(cache.promotions(), analysis::promotion_times(ts));

  for (const auto model : kAllModels) {
    EXPECT_EQ(cache.response_times(model), analysis::response_times(ts, model));
    EXPECT_EQ(cache.schedulable(model), analysis::schedulable(ts, model));
  }

  const core::Ticks cap = from_ms(std::int64_t{10000});
  EXPECT_EQ(cache.horizon(cap), ts.mk_hyperperiod(cap).value_or(cap));
}

TEST(AnalysisCache, MatchesFreshComputationOnPaperSet) {
  expect_cache_matches_fresh(workload::paper_fig1_taskset());
}

TEST(AnalysisCache, MatchesFreshComputationOnRandomizedSets) {
  workload::GenParams params;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    std::uint64_t bin = 0;
    for (const double lo : {0.2, 0.5}) {
      const auto batch =
          workload::generate_bin(params, lo, lo + 0.1, 3, 2000, seed, bin++);
      for (const auto& ts : batch.sets) {
        SCOPED_TRACE(ts.describe());
        expect_cache_matches_fresh(ts);
      }
    }
  }
}

TEST(AnalysisCache, MemoizesByReturningTheSameObject) {
  const auto ts = workload::paper_fig1_taskset();
  analysis::AnalysisCache cache(ts);
  EXPECT_EQ(&cache.postponement(), &cache.postponement());
  EXPECT_EQ(&cache.promotions(), &cache.promotions());
  EXPECT_EQ(&cache.response_times(analysis::DemandModel::kAllJobs),
            &cache.response_times(analysis::DemandModel::kAllJobs));
  const core::Ticks cap = from_ms(std::int64_t{10000});
  EXPECT_EQ(cache.horizon(cap), cache.horizon(cap));
}

TEST(AnalysisCache, DistinguishesPostponementOptions) {
  const auto ts = workload::paper_fig1_taskset();
  analysis::AnalysisCache cache(ts);
  analysis::PostponementOptions capped;
  capped.horizon_cap = from_ms(std::int64_t{20});
  const auto& a = cache.postponement();
  const auto& b = cache.postponement(capped);
  EXPECT_NE(&a, &b);  // distinct memo entries per option set
  const auto fresh = analysis::compute_postponement(ts, capped);
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(b.theta(i), fresh.theta(i));
  }
}

TEST(AnalysisCache, CacheBoundSchemeProducesIdenticalTraces) {
  // The same scheme kind with and without a bound cache must schedule
  // identically: the cache only memoizes, never alters, the analyses.
  workload::GenParams params;
  const auto batch = workload::generate_bin(params, 0.4, 0.5, 2, 2000, 99, 0);
  ASSERT_FALSE(batch.sets.empty());
  const sim::NoFaultPlan nofault;
  for (const auto& ts : batch.sets) {
    sim::SimConfig cfg;
    cfg.horizon = from_ms(std::int64_t{1000});
    for (const auto kind :
         {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
          sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective}) {
      SCOPED_TRACE(sched::to_string(kind));
      const auto plain_scheme = sched::make_scheme(kind);
      const auto plain = sim::simulate(ts, *plain_scheme, nofault, cfg);

      harness::BatchRunner runner(ts);
      const auto bound_scheme = sched::make_scheme(kind);
      runner.bind(*bound_scheme);
      const sim::SimulationTrace& bound =
          runner.run_full(*bound_scheme, nofault, cfg);
      EXPECT_EQ(io::trace_to_json(plain, ts), io::trace_to_json(bound, ts));
    }
  }
}

}  // namespace
}  // namespace mkss
