// Unit tests: synthetic task-set generation (Section V parameters).
#include <gtest/gtest.h>

#include "analysis/rta.hpp"
#include "core/rng.hpp"
#include "workload/scenarios.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss::workload {
namespace {

TEST(Scenarios, PaperTaskSetsMatchTheText) {
  const auto fig1 = paper_fig1_taskset();
  EXPECT_EQ(fig1[0].period, core::from_ms(std::int64_t{5}));
  EXPECT_EQ(fig1[1].k, 2u);
  const auto fig3 = paper_fig3_taskset();
  EXPECT_EQ(fig3[0].deadline, core::from_ms(2.5));
  const auto fig5 = paper_fig5_taskset();
  EXPECT_EQ(fig5[1].wcet, core::from_ms(std::int64_t{8}));
}

TEST(Generator, RespectsStructuralRanges) {
  core::Rng rng(101);
  GenParams params;
  int produced = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto ts = generate_taskset(params, 0.4, rng);
    if (!ts) continue;
    ++produced;
    EXPECT_GE(ts->size(), params.min_tasks);
    EXPECT_LE(ts->size(), params.max_tasks);
    for (const auto& t : *ts) {
      EXPECT_GE(t.period, core::from_ms(params.min_period_ms));
      EXPECT_LE(t.period, core::from_ms(params.max_period_ms));
      EXPECT_GE(t.k, params.min_k);
      EXPECT_LE(t.k, params.max_k);
      EXPECT_GE(t.m, 1u);
      EXPECT_LT(t.m, t.k);
      EXPECT_TRUE(t.valid());
      EXPECT_EQ(t.deadline, t.period);  // implicit deadlines
    }
  }
  EXPECT_GT(produced, 100);
}

TEST(Generator, PriorityOrderIsRateMonotonic) {
  core::Rng rng(102);
  for (int trial = 0; trial < 50; ++trial) {
    const auto ts = generate_taskset(GenParams{}, 0.5, rng);
    if (!ts) continue;
    for (std::size_t i = 1; i < ts->size(); ++i) {
      EXPECT_LE((*ts)[i - 1].period, (*ts)[i].period);
    }
  }
}

double mean_mk_util(double target, core::Rng& rng) {
  double sum = 0;
  int n = 0;
  for (int trial = 0; trial < 300 && n < 50; ++trial) {
    const auto ts = generate_taskset(GenParams{}, target, rng);
    if (!ts) continue;
    sum += ts->total_mk_utilization();
    ++n;
  }
  return n ? sum / n : 0.0;
}

TEST(Generator, UtilizationTracksTargetWhereReachable) {
  // With uniform WCETs the m >= 1 floor puts a lower bound of roughly
  // sum(v_i / k_i) on the total, so very low targets overshoot (that is why
  // low bins are rare -- the bin filter in generate_bin does the final
  // selection). Mid/high targets must be tracked, and the mean must be
  // monotone in the target.
  core::Rng rng(103);
  const double at_02 = mean_mk_util(0.2, rng);
  const double at_05 = mean_mk_util(0.5, rng);
  const double at_07 = mean_mk_util(0.7, rng);
  EXPECT_NEAR(at_05, 0.5, 0.2);
  EXPECT_NEAR(at_07, 0.7, 0.2);
  // Below the m >= 1 floor (~0.6 for these parameters) the mean saturates,
  // so only require near-monotonicity.
  EXPECT_LE(at_02, at_05 + 0.08);
  EXPECT_LE(at_05, at_07 + 0.08);
}

TEST(Generator, ShapedModelTracksTargetTightly) {
  core::Rng rng(104);
  GenParams params;
  params.wcet_model = WcetModel::kShapedWcet;
  for (int trial = 0; trial < 100; ++trial) {
    const auto ts = generate_taskset(params, 0.35, rng);
    if (!ts) continue;
    EXPECT_NEAR(ts->total_mk_utilization(), 0.35, 0.02);
  }
}

TEST(Generator, UniformModelKeepsSubstantialWcets) {
  // The paper-style model must produce heavyweight jobs even in low bins --
  // that is the regime that separates the schemes.
  core::Rng rng(105);
  double max_ratio = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto ts = generate_taskset(GenParams{}, 0.2, rng);
    if (!ts) continue;
    for (const auto& t : *ts) {
      max_ratio = std::max(max_ratio, t.utilization());
    }
  }
  EXPECT_GT(max_ratio, 0.5);
}

TEST(GenerateBin, ProducesSchedulableSetsInsideTheBin) {
  core::Rng rng(106);
  const auto batch = generate_bin(GenParams{}, 0.3, 0.4, 10, 4000, rng);
  EXPECT_GT(batch.sets.size(), 0u);
  EXPECT_LE(batch.sets.size(), 10u);
  EXPECT_GT(batch.attempts, 0u);
  for (const auto& ts : batch.sets) {
    const double u = ts.total_mk_utilization();
    EXPECT_GE(u, 0.3);
    EXPECT_LT(u, 0.4);
    EXPECT_TRUE(analysis::schedulable(ts, analysis::DemandModel::kRPatternMandatory));
  }
}

TEST(GenerateBin, RespectsAttemptCap) {
  core::Rng rng(107);
  // An (almost) unfillable bin: cap must stop the search.
  const auto batch = generate_bin(GenParams{}, 0.95, 1.05, 5, 50, rng);
  EXPECT_LE(batch.attempts, 50u);
}

TEST(GenerateBin, DeterministicForFixedSeed) {
  core::Rng a(108), b(108);
  const auto batch_a = generate_bin(GenParams{}, 0.4, 0.5, 5, 2000, a);
  const auto batch_b = generate_bin(GenParams{}, 0.4, 0.5, 5, 2000, b);
  ASSERT_EQ(batch_a.sets.size(), batch_b.sets.size());
  for (std::size_t i = 0; i < batch_a.sets.size(); ++i) {
    EXPECT_EQ(batch_a.sets[i].describe(), batch_b.sets[i].describe());
  }
}

}  // namespace
}  // namespace mkss::workload
