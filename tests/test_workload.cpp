// Unit tests: synthetic task-set generation (Section V parameters).
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/rta.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "workload/scenarios.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss::workload {
namespace {

TEST(Scenarios, PaperTaskSetsMatchTheText) {
  const auto fig1 = paper_fig1_taskset();
  EXPECT_EQ(fig1[0].period, core::from_ms(std::int64_t{5}));
  EXPECT_EQ(fig1[1].k, 2u);
  const auto fig3 = paper_fig3_taskset();
  EXPECT_EQ(fig3[0].deadline, core::from_ms(2.5));
  const auto fig5 = paper_fig5_taskset();
  EXPECT_EQ(fig5[1].wcet, core::from_ms(std::int64_t{8}));
}

TEST(Generator, RespectsStructuralRanges) {
  core::Rng rng(101);
  GenParams params;
  int produced = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto ts = generate_taskset(params, 0.4, rng);
    if (!ts) continue;
    ++produced;
    EXPECT_GE(ts->size(), params.min_tasks);
    EXPECT_LE(ts->size(), params.max_tasks);
    for (const auto& t : *ts) {
      EXPECT_GE(t.period, core::from_ms(params.min_period_ms));
      EXPECT_LE(t.period, core::from_ms(params.max_period_ms));
      EXPECT_GE(t.k, params.min_k);
      EXPECT_LE(t.k, params.max_k);
      EXPECT_GE(t.m, 1u);
      EXPECT_LT(t.m, t.k);
      EXPECT_TRUE(t.valid());
      EXPECT_EQ(t.deadline, t.period);  // implicit deadlines
    }
  }
  EXPECT_GT(produced, 100);
}

TEST(Generator, PriorityOrderIsRateMonotonic) {
  core::Rng rng(102);
  for (int trial = 0; trial < 50; ++trial) {
    const auto ts = generate_taskset(GenParams{}, 0.5, rng);
    if (!ts) continue;
    for (std::size_t i = 1; i < ts->size(); ++i) {
      EXPECT_LE((*ts)[i - 1].period, (*ts)[i].period);
    }
  }
}

double mean_mk_util(double target, core::Rng& rng) {
  double sum = 0;
  int n = 0;
  for (int trial = 0; trial < 300 && n < 50; ++trial) {
    const auto ts = generate_taskset(GenParams{}, target, rng);
    if (!ts) continue;
    sum += ts->total_mk_utilization();
    ++n;
  }
  return n ? sum / n : 0.0;
}

TEST(Generator, UtilizationTracksTargetWhereReachable) {
  // With uniform WCETs the m >= 1 floor puts a lower bound of roughly
  // sum(v_i / k_i) on the total, so very low targets overshoot (that is why
  // low bins are rare -- the bin filter in generate_bin does the final
  // selection). Mid/high targets must be tracked, and the mean must be
  // monotone in the target.
  core::Rng rng(103);
  const double at_02 = mean_mk_util(0.2, rng);
  const double at_05 = mean_mk_util(0.5, rng);
  const double at_07 = mean_mk_util(0.7, rng);
  EXPECT_NEAR(at_05, 0.5, 0.2);
  EXPECT_NEAR(at_07, 0.7, 0.2);
  // Below the m >= 1 floor (~0.6 for these parameters) the mean saturates,
  // so only require near-monotonicity.
  EXPECT_LE(at_02, at_05 + 0.08);
  EXPECT_LE(at_05, at_07 + 0.08);
}

TEST(Generator, ShapedModelTracksTargetTightly) {
  core::Rng rng(104);
  GenParams params;
  params.wcet_model = WcetModel::kShapedWcet;
  for (int trial = 0; trial < 100; ++trial) {
    const auto ts = generate_taskset(params, 0.35, rng);
    if (!ts) continue;
    EXPECT_NEAR(ts->total_mk_utilization(), 0.35, 0.02);
  }
}

TEST(Generator, UniformModelKeepsSubstantialWcets) {
  // The paper-style model must produce heavyweight jobs even in low bins --
  // that is the regime that separates the schemes.
  core::Rng rng(105);
  double max_ratio = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto ts = generate_taskset(GenParams{}, 0.2, rng);
    if (!ts) continue;
    for (const auto& t : *ts) {
      max_ratio = std::max(max_ratio, t.utilization());
    }
  }
  EXPECT_GT(max_ratio, 0.5);
}

TEST(GenerateBin, ProducesSchedulableSetsInsideTheBin) {
  const auto batch = generate_bin(GenParams{}, 0.3, 0.4, 10, 4000, 106, 0);
  EXPECT_GT(batch.sets.size(), 0u);
  EXPECT_LE(batch.sets.size(), 10u);
  EXPECT_GT(batch.attempts, 0u);
  for (const auto& ts : batch.sets) {
    const double u = ts.total_mk_utilization();
    EXPECT_GE(u, 0.3);
    EXPECT_LT(u, 0.4);
    EXPECT_TRUE(analysis::schedulable(ts, analysis::DemandModel::kRPatternMandatory));
  }
}

TEST(GenerateBin, RespectsAttemptCap) {
  // An (almost) unfillable bin: cap must stop the search.
  const auto batch = generate_bin(GenParams{}, 0.95, 1.05, 5, 50, 107, 0);
  EXPECT_LE(batch.attempts, 50u);
}

TEST(GenerateBin, DeterministicForFixedSeed) {
  const auto batch_a = generate_bin(GenParams{}, 0.4, 0.5, 5, 2000, 108, 3);
  const auto batch_b = generate_bin(GenParams{}, 0.4, 0.5, 5, 2000, 108, 3);
  ASSERT_EQ(batch_a.sets.size(), batch_b.sets.size());
  for (std::size_t i = 0; i < batch_a.sets.size(); ++i) {
    EXPECT_EQ(batch_a.sets[i].describe(), batch_b.sets[i].describe());
  }
  EXPECT_EQ(batch_a.attempts, batch_b.attempts);
  EXPECT_EQ(batch_a.counters, batch_b.counters);
}

TEST(GenerateBin, BinIndexSelectsIndependentStreams) {
  const auto batch_a = generate_bin(GenParams{}, 0.4, 0.5, 5, 2000, 108, 3);
  const auto batch_c = generate_bin(GenParams{}, 0.4, 0.5, 5, 2000, 108, 4);
  ASSERT_FALSE(batch_a.sets.empty());
  ASSERT_FALSE(batch_c.sets.empty());
  EXPECT_NE(batch_a.sets.front().describe(), batch_c.sets.front().describe());
}

TEST(GenerateBin, CountersPartitionAttempts) {
  const auto batch = generate_bin(GenParams{}, 0.3, 0.4, 10, 4000, 106, 0);
  const GenCounters& c = batch.counters;
  EXPECT_EQ(c.draw_failures + c.out_of_bin + c.filter_rejects + c.rta_rejects +
                c.accepted,
            batch.attempts);
  EXPECT_EQ(c.accepted, batch.sets.size());
  EXPECT_LE(c.quick_accepts, c.accepted);
  EXPECT_GT(c.out_of_bin + c.filter_rejects + c.rta_rejects, 0u);
}

TEST(GenerateBin, BitIdenticalAcrossThreadCounts) {
  // The speculative parallel path must commit exactly the serial result:
  // same sets in the same order, same attempt count, same stage counters.
  const auto serial = generate_bin(GenParams{}, 0.4, 0.5, 6, 4000, 109, 1);
  ASSERT_FALSE(serial.sets.empty());
  for (const std::size_t n_threads : {std::size_t{2}, std::size_t{0}}) {
    core::ThreadPool pool(core::ThreadPool::resolve_num_threads(n_threads));
    const auto parallel =
        generate_bin(GenParams{}, 0.4, 0.5, 6, 4000, 109, 1, &pool);
    SCOPED_TRACE("threads=" + std::to_string(pool.size()));
    EXPECT_EQ(parallel.attempts, serial.attempts);
    EXPECT_EQ(parallel.counters, serial.counters);
    ASSERT_EQ(parallel.sets.size(), serial.sets.size());
    for (std::size_t i = 0; i < serial.sets.size(); ++i) {
      EXPECT_EQ(parallel.sets[i].describe(), serial.sets[i].describe());
    }
  }
}

TEST(GenerateBin, RejectsUnknownStreamVersion) {
  GenParams params;
  params.stream_version = 1;
  EXPECT_THROW(generate_bin(params, 0.3, 0.4, 1, 10, 1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mkss::workload
