// Cross-module integration tests: end-to-end invariants that no single
// module can check on its own.
#include <gtest/gtest.h>

#include <map>

#include "analysis/rta.hpp"
#include "harness/evaluation.hpp"
#include "workload/scenarios.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss {
namespace {

using core::Ticks;

/// Runs every scheme on a batch of random schedulable sets and returns the
/// traces keyed by scheme.
std::map<sched::SchemeKind, std::vector<harness::RunResult>> run_batch(
    std::uint64_t seed, std::size_t sets) {
  core::Rng rng(seed);
  std::map<sched::SchemeKind, std::vector<harness::RunResult>> out;
  std::size_t produced = 0;
  for (int trial = 0; trial < 20000 && produced < sets; ++trial) {
    const auto ts = workload::generate_taskset({}, rng.uniform(0.2, 0.55), rng);
    if (!ts || !analysis::schedulable(*ts, analysis::DemandModel::kRPatternMandatory)) {
      continue;
    }
    ++produced;
    sim::SimConfig cfg;
    cfg.horizon = harness::choose_horizon(*ts, core::from_ms(std::int64_t{1500}));
    for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                            sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective}) {
      out[kind].push_back(harness::run_one({.ts = *ts, .kind = kind, .sim = cfg}));
    }
  }
  return out;
}

TEST(Integration, NoProcessorEverRunsTwoCopiesAtOnce) {
  const auto batch = run_batch(71, 6);
  for (const auto& [kind, runs] : batch) {
    for (const auto& run : runs) {
      std::array<std::vector<core::Interval>, 2> spans;
      for (const auto& s : run.trace.segments) {
        spans[s.proc].push_back(s.span);
      }
      for (auto& list : spans) {
        std::sort(list.begin(), list.end(), [](const auto& a, const auto& b) {
          return a.begin < b.begin;
        });
        for (std::size_t i = 1; i < list.size(); ++i) {
          EXPECT_GE(list[i].begin, list[i - 1].end)
              << sched::to_string(kind) << ": overlapping execution segments";
        }
      }
    }
  }
}

TEST(Integration, SegmentsStayInsideJobWindows) {
  const auto batch = run_batch(72, 6);
  for (const auto& [kind, runs] : batch) {
    for (const auto& run : runs) {
      for (const auto& s : run.trace.segments) {
        const auto& rec = run.trace.jobs;
        // Locate the job record (task, job index).
        const auto it = std::find_if(rec.begin(), rec.end(), [&](const auto& j) {
          return j.job.id == s.job;
        });
        ASSERT_NE(it, rec.end());
        EXPECT_GE(s.span.begin, it->job.release) << sched::to_string(kind);
        EXPECT_LE(s.span.end, std::max(it->job.deadline, run.trace.horizon));
      }
    }
  }
}

TEST(Integration, BusyTimeMatchesSegmentSum) {
  const auto batch = run_batch(73, 6);
  for (const auto& [kind, runs] : batch) {
    for (const auto& run : runs) {
      std::array<Ticks, 2> sums{0, 0};
      for (const auto& s : run.trace.segments) sums[s.proc] += s.span.length();
      EXPECT_EQ(sums[0], run.trace.busy_time[0]) << sched::to_string(kind);
      EXPECT_EQ(sums[1], run.trace.busy_time[1]) << sched::to_string(kind);
    }
  }
}

TEST(Integration, ExecutedTimePerJobNeverExceedsTwoWcets) {
  const auto batch = run_batch(74, 6);
  for (const auto& [kind, runs] : batch) {
    for (const auto& run : runs) {
      std::map<std::pair<core::TaskIndex, std::uint64_t>, Ticks> per_job;
      for (const auto& s : run.trace.segments) {
        per_job[{s.job.task, s.job.job}] += s.span.length();
      }
      for (const auto& j : run.trace.jobs) {
        const auto it = per_job.find({j.job.id.task, j.job.id.job});
        if (it == per_job.end()) continue;
        EXPECT_LE(it->second, 2 * j.job.exec) << sched::to_string(kind);
      }
    }
  }
}

TEST(Integration, StaticSchemesAgreeOnMandatoryCount) {
  const auto batch = run_batch(75, 6);
  const auto& st = batch.at(sched::SchemeKind::kSt);
  const auto& dp = batch.at(sched::SchemeKind::kDp);
  ASSERT_EQ(st.size(), dp.size());
  for (std::size_t i = 0; i < st.size(); ++i) {
    EXPECT_EQ(st[i].trace.stats.mandatory_jobs, dp[i].trace.stats.mandatory_jobs);
  }
}

TEST(Integration, SelectiveNeverCostsMoreThanStatic) {
  // The headline energy ordering, checked per task set (not just on
  // average): selective <= ST. (DP can beat or lose to greedy, but the
  // static reference is the ceiling.)
  const auto batch = run_batch(76, 8);
  const auto& st = batch.at(sched::SchemeKind::kSt);
  const auto& sel = batch.at(sched::SchemeKind::kSelective);
  for (std::size_t i = 0; i < st.size(); ++i) {
    EXPECT_LE(sel[i].energy.total(), st[i].energy.total() * 1.05)
        << "selective should not exceed the static reference";
  }
}

TEST(Integration, EveryCountedJobGetsExactlyOneOutcome) {
  const auto batch = run_batch(77, 6);
  for (const auto& [kind, runs] : batch) {
    for (const auto& run : runs) {
      std::vector<std::size_t> counted_per_task(run.trace.outcomes_per_task.size(), 0);
      for (const auto& j : run.trace.jobs) {
        if (j.counted) ++counted_per_task[j.job.id.task];
      }
      for (std::size_t i = 0; i < counted_per_task.size(); ++i) {
        EXPECT_EQ(run.trace.outcomes_per_task[i].size(), counted_per_task[i])
            << sched::to_string(kind);
      }
    }
  }
}

TEST(Integration, WakeForOptionalOffNeverIncreasesActiveEnergyButMayMiss) {
  const auto ts = workload::paper_fig3_taskset();
  for (const auto kind : {sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective}) {
    sim::SimConfig on, off;
    on.horizon = off.horizon = core::from_ms(std::int64_t{80});
    off.wake_for_optional = false;
    const auto run_on = harness::run_one({.ts = ts, .kind = kind, .sim = on});
    const auto run_off = harness::run_one({.ts = ts, .kind = kind, .sim = off});
    EXPECT_TRUE(run_on.qos.mk_satisfied);
    EXPECT_TRUE(run_off.qos.mk_satisfied);
  }
}

}  // namespace
}  // namespace mkss
