// Behavioural tests of the four schemes: classification rules, placement,
// degraded (post-permanent-fault) operation, option knobs.
#include <gtest/gtest.h>

#include "energy/energy_model.hpp"
#include "metrics/qos.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "workload/scenarios.hpp"

namespace mkss::sched {
namespace {

using core::Task;
using core::TaskSet;
using core::Ticks;
using core::from_ms;

sim::SimulationTrace run(const TaskSet& ts, sim::Scheme& scheme,
                         const sim::FaultPlan& plan, double horizon_ms) {
  sim::SimConfig cfg;
  cfg.horizon = from_ms(horizon_ms);
  return sim::simulate(ts, scheme, plan, cfg);
}

sim::SimulationTrace run(const TaskSet& ts, sim::Scheme& scheme, double horizon_ms) {
  sim::NoFaultPlan nofault;
  return run(ts, scheme, nofault, horizon_ms);
}

class PermanentAt final : public sim::FaultPlan {
 public:
  PermanentAt(sim::ProcessorId p, Ticks t) : pf_{p, t} {}
  std::optional<sim::PermanentFault> permanent() const override { return pf_; }
  bool transient(const core::JobId&, int) const override { return false; }

 private:
  sim::PermanentFault pf_;
};

TEST(MkssStBehavior, ExecutesExactlyTheRPatternJobsTwice) {
  const auto ts = workload::paper_fig1_taskset();
  MkssSt st;
  const auto trace = run(ts, st, 20);
  // Mandatory under R-pattern in [0,20): tau1 jobs 1,2 (of 4), tau2 job 1.
  EXPECT_EQ(trace.stats.mandatory_jobs, 3u);
  EXPECT_EQ(trace.stats.optional_selected, 0u);
  EXPECT_EQ(trace.stats.optional_skipped, 3u);
  EXPECT_EQ(trace.stats.backups_created, 3u);
  EXPECT_EQ(trace.busy_time[sim::kPrimary], trace.busy_time[sim::kSpare]);
}

TEST(MkssStBehavior, SkippedOptionalJobsNeverViolateMk) {
  const auto ts = workload::paper_fig1_taskset();
  MkssSt st;
  const auto trace = run(ts, st, 20);
  const auto qos = metrics::audit_qos(trace, ts);
  EXPECT_TRUE(qos.theorem1_holds());
}

TEST(MkssDpBehavior, NonPreferenceVariantKeepsMainsOnPrimary) {
  const auto ts = workload::paper_fig1_taskset();
  DpOptions opts;
  opts.preference_partition = false;
  MkssDp dp(opts);
  EXPECT_EQ(dp.name(), "MKSS_DP(noPO)");
  const auto trace = run(ts, dp, 20);
  for (const auto& s : trace.segments) {
    if (s.kind == sim::CopyKind::kMain) {
      EXPECT_EQ(s.proc, sim::kPrimary);
    }
    if (s.kind == sim::CopyKind::kBackup) {
      EXPECT_EQ(s.proc, sim::kSpare);
    }
  }
}

TEST(MkssDpBehavior, BackupsWaitForPromotion) {
  const auto ts = workload::paper_fig5_taskset();  // Y1 = 7
  DpOptions opts;
  opts.preference_partition = false;
  MkssDp dp(opts);
  const auto trace = run(ts, dp, 30);
  for (const auto& s : trace.segments) {
    if (s.kind != sim::CopyKind::kBackup) continue;
    const Ticks release = static_cast<Ticks>(s.job.job - 1) * ts[s.job.task].period;
    EXPECT_GE(s.span.begin, release + dp.promotion_delays()[s.job.task]);
  }
}

TEST(MkssDpBehavior, FallsBackToZeroPromotionWhenFullSetInfeasible) {
  const TaskSet ts({Task::from_ms(6, 6, 4, 1, 2), Task::from_ms(9, 9, 4, 1, 2)});
  MkssDp dp;
  const auto trace = run(ts, dp, 36);
  EXPECT_EQ(dp.promotion_delays()[1], 0);
  EXPECT_EQ(trace.stats.mandatory_misses, 0u);  // R-pattern feasible set
}

TEST(MkssGreedyBehavior, ExecutesEveryFeasibleOptionalOnPrimaryOnly) {
  const auto ts = workload::paper_fig3_taskset();
  MkssGreedy greedy;
  const auto trace = run(ts, greedy, 25);
  for (const auto& s : trace.segments) {
    if (s.kind == sim::CopyKind::kOptional) {
      EXPECT_EQ(s.proc, sim::kPrimary);
    }
  }
  EXPECT_GT(trace.stats.optional_selected, 0u);
  EXPECT_EQ(trace.stats.mandatory_jobs, 0u);  // successes keep demoting
}

TEST(MkssGreedyBehavior, RoundRobinVariantUsesBothProcessors) {
  const auto ts = workload::paper_fig3_taskset();
  GreedyOptions opts;
  opts.primary_only = false;
  MkssGreedy greedy(opts);
  const auto trace = run(ts, greedy, 25);
  bool spare_used = false;
  for (const auto& s : trace.segments) {
    spare_used |= (s.proc == sim::kSpare);
  }
  EXPECT_TRUE(spare_used);
}

TEST(MkssGreedyBehavior, FailedOptionalForcesMandatoryRecovery) {
  // All optional copies fault transiently -> the scheme must fall back to
  // mandatory (duplicated) jobs and still satisfy (m,k).
  class OptionalAlwaysFaults final : public sim::FaultPlan {
   public:
    std::optional<sim::PermanentFault> permanent() const override {
      return std::nullopt;
    }
    bool transient(const core::JobId& id, int slot) const override {
      // Slot 0 covers optional copies; let every third job fault.
      return slot == 0 && id.job % 3 == 0;
    }
  } plan;
  const auto ts = workload::paper_fig1_taskset();
  MkssGreedy greedy;
  const auto trace = run(ts, greedy, plan, 40);
  const auto qos = metrics::audit_qos(trace, ts);
  EXPECT_TRUE(qos.mk_satisfied);
}

TEST(MkssSelectiveBehavior, SkipsFlexibleJobsSelectsFdOne) {
  const auto ts = workload::paper_fig3_taskset();  // both tasks (2,4)
  MkssSelective sel;
  const auto trace = run(ts, sel, 25);
  // First job of each task has FD 2: skipped. Second has FD 1: selected.
  ASSERT_GE(trace.jobs.size(), 4u);
  std::array<int, 2> first_selected{0, 0};
  for (const auto& j : trace.jobs) {
    if (j.executed_optional && first_selected[j.job.id.task] == 0) {
      first_selected[j.job.id.task] = static_cast<int>(j.job.id.job);
    }
  }
  EXPECT_EQ(first_selected[0], 2);
  EXPECT_EQ(first_selected[1], 2);
}

TEST(MkssSelectiveBehavior, BackupsArePostponedByTheta) {
  const auto ts = workload::paper_fig5_taskset();
  MkssSelective sel;
  const auto trace = run(ts, sel, 30);
  EXPECT_EQ(sel.backup_delays()[0], from_ms(std::int64_t{7}));
  EXPECT_EQ(sel.backup_delays()[1], from_ms(std::int64_t{4}));
  for (const auto& s : trace.segments) {
    if (s.kind != sim::CopyKind::kBackup) continue;
    const Ticks release = static_cast<Ticks>(s.job.job - 1) * ts[s.job.task].period;
    EXPECT_GE(s.span.begin, release + sel.backup_delays()[s.job.task]);
  }
}

TEST(MkssSelectiveBehavior, DelayLadderOrdersEnergy) {
  // Postponed backups can only cancel earlier (or equal) than promoted ones,
  // which in turn beat unprocrastinated ones, so energy must be monotone.
  const auto ts = workload::paper_fig5_taskset();
  double prev = -1;
  for (const auto delay : {BackupDelayPolicy::kPostponed,
                           BackupDelayPolicy::kPromotion,
                           BackupDelayPolicy::kNone}) {
    SelectiveOptions opts;
    opts.delay = delay;
    MkssSelective sel(opts);
    const auto trace = run(ts, sel, 60);
    const double units = core::to_ms(trace.active_time());
    if (prev >= 0) {
      EXPECT_GE(units, prev);
    }
    prev = units;
  }
}

TEST(MkssSelectiveBehavior, NoAlternationKeepsOptionalOnPrimary) {
  const auto ts = workload::paper_fig3_taskset();
  SelectiveOptions opts;
  opts.alternate = false;
  MkssSelective sel(opts);
  const auto trace = run(ts, sel, 25);
  for (const auto& s : trace.segments) {
    if (s.kind == sim::CopyKind::kOptional) {
      EXPECT_EQ(s.proc, sim::kPrimary);
    }
  }
}

TEST(DegradedMode, SurvivorTakesOverAfterPrimaryDeath) {
  const auto ts = workload::paper_fig1_taskset();
  for (const sched::SchemeKind kind : {SchemeKind::kSt, SchemeKind::kDp,
                                       SchemeKind::kGreedy, SchemeKind::kSelective}) {
    const auto scheme = make_scheme(kind);
    PermanentAt plan(sim::kPrimary, from_ms(std::int64_t{2}));
    const auto trace = run(ts, *scheme, plan, 40);
    EXPECT_EQ(trace.stats.mandatory_misses, 0u) << scheme->name();
    const auto qos = metrics::audit_qos(trace, ts);
    EXPECT_TRUE(qos.mk_satisfied) << scheme->name();
    // Nothing executes on the dead processor after the fault.
    for (const auto& s : trace.segments) {
      if (s.proc == sim::kPrimary) {
        EXPECT_LE(s.span.end, from_ms(std::int64_t{2})) << scheme->name();
      }
    }
  }
}

TEST(DegradedMode, SpareDeathIsToleratedToo) {
  const auto ts = workload::paper_fig1_taskset();
  for (const sched::SchemeKind kind : {SchemeKind::kSt, SchemeKind::kDp,
                                       SchemeKind::kGreedy, SchemeKind::kSelective}) {
    const auto scheme = make_scheme(kind);
    PermanentAt plan(sim::kSpare, from_ms(std::int64_t{7}));
    const auto trace = run(ts, *scheme, plan, 40);
    const auto qos = metrics::audit_qos(trace, ts);
    EXPECT_TRUE(qos.theorem1_holds()) << scheme->name();
  }
}

TEST(DegradedMode, NoDuplicationAfterFault) {
  const auto ts = workload::paper_fig1_taskset();
  MkssSt st;
  PermanentAt plan(sim::kSpare, 1);
  const auto trace = run(ts, st, plan, 40);
  // After t=1 no backups can be created.
  EXPECT_LE(trace.stats.backups_created, 3u);
  std::uint64_t backup_exec_after = 0;
  for (const auto& s : trace.segments) {
    if (s.kind == sim::CopyKind::kBackup && s.span.begin >= 1) ++backup_exec_after;
  }
  EXPECT_EQ(backup_exec_after, 0u);
}

TEST(Factory, ProducesAllSchemes) {
  for (const auto kind : {SchemeKind::kSt, SchemeKind::kDp, SchemeKind::kGreedy,
                          SchemeKind::kSelective}) {
    const auto scheme = make_scheme(kind);
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->name(), to_string(kind));
  }
  EXPECT_EQ(evaluation_schemes().size(), 3u);
}

}  // namespace
}  // namespace mkss::sched
