// Golden-trace regression gate: the committed JSON traces under tests/golden/
// pin the exact observable behavior of the paper's four schemes on the dual
// platform (fault-free, permanent-fault, and the Figure-5 set). Every engine
// or scheme refactor must reproduce them byte for byte; regenerate the files
// deliberately (and say why in the commit) when behavior changes on purpose.
//
// The traces are produced through the real CLI binary so the whole pipeline
// is pinned: registry resolution, platform construction, simulation, and the
// JSON serializer.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string golden_path(const std::string& file) {
  return std::string(MKSS_GOLDEN_DIR) + "/" + file;
}

/// Runs the CLI and captures stdout only (the traces go to stdout; any
/// diagnostics on stderr must not pollute the comparison).
std::string run_cli_stdout(const std::string& args, int& exit_code) {
  const std::string cmd = std::string(MKSS_CLI_PATH) + " " + args;
  std::string out;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) out.append(buf, n);
  const int status = pclose(pipe);
  exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct GoldenCase {
  std::string scheme;
  std::string taskset;   ///< file under tests/golden/
  std::string flags;     ///< simulate flags after the scheme
  std::string expected;  ///< committed trace JSON under tests/golden/
};

class GoldenTrace : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTrace, ByteIdentical) {
  const GoldenCase& c = GetParam();
  int exit_code = -1;
  const std::string got = run_cli_stdout(
      "simulate " + golden_path(c.taskset) + " --scheme " + c.scheme + " " +
          c.flags + " --json",
      exit_code);
  EXPECT_EQ(exit_code, 0) << "simulate failed for " << c.expected;
  const std::string want = read_file(golden_path(c.expected));
  ASSERT_FALSE(want.empty());
  // EQ on the full strings would dump both traces on mismatch; compare the
  // bytes and report just the first divergence.
  if (got != want) {
    std::size_t at = 0;
    while (at < got.size() && at < want.size() && got[at] == want[at]) ++at;
    FAIL() << c.expected << " diverges from the live trace at byte " << at
           << " (got " << got.size() << " bytes, want " << want.size() << ")";
  }
}

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  for (const std::string s : {"st", "dp", "greedy", "selective"}) {
    cases.push_back({s, "golden_fig1.txt", "--horizon 100",
                     "trace_" + s + "_fig1.json"});
    cases.push_back({s, "golden_fig1.txt", "--horizon 100 --permanent 0@7",
                     "trace_" + s + "_fig1_pf.json"});
    cases.push_back({s, "golden_fig5.txt", "--horizon 120",
                     "trace_" + s + "_fig5.json"});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, GoldenTrace,
                         ::testing::ValuesIn(golden_cases()),
                         [](const auto& param_info) {
                           std::string name = param_info.param.expected;
                           for (char& ch : name) {
                             if (ch == '.' || ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
