// Unit tests: active-energy decomposition by copy kind and breakdown
// utilization.
#include <gtest/gtest.h>

#include "analysis/breakdown.hpp"
#include "harness/evaluation.hpp"
#include "metrics/decomposition.hpp"
#include "workload/scenarios.hpp"

namespace mkss {
namespace {

using core::Task;
using core::TaskSet;
using core::from_ms;

TEST(Decomposition, SplitsMatchTotalsPerScheme) {
  const auto ts = workload::paper_fig1_taskset();
  sim::SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{20});
  for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                          sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective}) {
    const auto run = harness::run_one({.ts = ts, .kind = kind, .sim = cfg});
    const auto split = metrics::split_active_energy(run.trace);
    EXPECT_NEAR(split.total(), run.energy.active_total(), 1e-9)
        << sched::to_string(kind);
  }
}

TEST(Decomposition, StHasMaximalBackupShare) {
  // Lock-step ST spends exactly half its active energy on backups.
  const auto ts = workload::paper_fig1_taskset();
  sim::SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{20});
  const auto st =
      harness::run_one({.ts = ts, .kind = sched::SchemeKind::kSt, .sim = cfg});
  const auto st_split = metrics::split_active_energy(st.trace);
  EXPECT_DOUBLE_EQ(st_split.backup_share(), 0.5);
  EXPECT_DOUBLE_EQ(st_split.optional_jobs, 0.0);

  // DP procrastinates, so its backup share must be strictly smaller.
  const auto dp =
      harness::run_one({.ts = ts, .kind = sched::SchemeKind::kDp, .sim = cfg});
  const auto dp_split = metrics::split_active_energy(dp.trace);
  EXPECT_LT(dp_split.backup_share(), st_split.backup_share());
  // Figure 1: mains 9 units, backups 6 units.
  EXPECT_DOUBLE_EQ(dp_split.main, 9.0);
  EXPECT_DOUBLE_EQ(dp_split.backup, 6.0);
}

TEST(Decomposition, SelectiveSpendsOnOptionalSingles) {
  const auto ts = workload::paper_fig3_taskset();
  sim::SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{25});
  const auto run = harness::run_one(
      {.ts = ts, .kind = sched::SchemeKind::kSelective, .sim = cfg});
  const auto split = metrics::split_active_energy(run.trace);
  EXPECT_DOUBLE_EQ(split.optional_jobs, 14.0);  // Figure 4 is all-optional
  EXPECT_DOUBLE_EQ(split.main, 0.0);
  EXPECT_DOUBLE_EQ(split.backup, 0.0);
}

TEST(Decomposition, EmptyTraceIsZero) {
  sim::SimulationTrace trace;
  trace.horizon = from_ms(std::int64_t{10});
  const auto split = metrics::split_active_energy(trace);
  EXPECT_DOUBLE_EQ(split.total(), 0.0);
  EXPECT_DOUBLE_EQ(split.backup_share(), 0.0);
}

TEST(Breakdown, ScaleBracketsTheFeasibilityEdge) {
  const auto ts = workload::paper_fig1_taskset();  // U = 0.9 full
  const double full = analysis::breakdown_scale(ts, analysis::DemandModel::kAllJobs);
  // Slightly above 1: the set is schedulable but close to the edge.
  EXPECT_GE(full, 1.0);
  EXPECT_LT(full, 1.4);
  // Mandatory-only demand can never have less headroom (here tau2's busy
  // window sees the same two tau1 jobs either way, so they coincide).
  const double mand =
      analysis::breakdown_scale(ts, analysis::DemandModel::kRPatternMandatory);
  EXPECT_GE(mand, full);
  // A set whose low-priority busy window contains an optional job of the
  // high-priority task: dropping it relaxes the bound strictly.
  const TaskSet skewed({Task::from_ms(4, 4, 2, 1, 2), Task::from_ms(10, 10, 4, 1, 1)});
  EXPECT_GT(
      analysis::breakdown_scale(skewed, analysis::DemandModel::kRPatternMandatory),
      analysis::breakdown_scale(skewed, analysis::DemandModel::kAllJobs) + 0.1);
}

TEST(Breakdown, InfeasibleSetReportsFloor) {
  const TaskSet ts({Task::from_ms(5, 5, 3, 1, 2), Task::from_ms(10, 10, 5, 1, 2)});
  analysis::BreakdownOptions opts;
  const double s = analysis::breakdown_scale(ts, analysis::DemandModel::kAllJobs, opts);
  EXPECT_LT(s, 1.0);
  EXPECT_GT(s, opts.lo);  // still feasible at some small scale
}

TEST(Breakdown, ScaledSetIsActuallySchedulableAtReportedScale) {
  const auto ts = workload::paper_fig5_taskset();
  for (const auto model : {analysis::DemandModel::kAllJobs,
                           analysis::DemandModel::kRPatternMandatory,
                           analysis::DemandModel::kEPatternMandatory}) {
    const double s = analysis::breakdown_scale(ts, model);
    // Re-verify just below the reported scale.
    std::vector<Task> tasks(ts.tasks());
    for (Task& t : tasks) {
      t.wcet = std::max<core::Ticks>(
          1, static_cast<core::Ticks>(static_cast<double>(t.wcet) * (s - 0.01)));
    }
    EXPECT_TRUE(analysis::schedulable(TaskSet(std::move(tasks)), model))
        << static_cast<int>(model);
  }
}

TEST(Breakdown, EPatternHasAtLeastRPatternHeadroom) {
  // The E-pattern spreads the mandatory bursts, so its breakdown scale can
  // only be >= the deeply red one (identical m/k mandatory mass).
  core::Rng rng(777);
  int checked = 0;
  for (int trial = 0; trial < 3000 && checked < 8; ++trial) {
    const auto ts = workload::generate_taskset({}, rng.uniform(0.2, 0.5), rng);
    if (!ts) continue;
    ++checked;
    const double r =
        analysis::breakdown_scale(*ts, analysis::DemandModel::kRPatternMandatory);
    const double e =
        analysis::breakdown_scale(*ts, analysis::DemandModel::kEPatternMandatory);
    EXPECT_GE(e, r - 0.01) << ts->describe();
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace mkss
