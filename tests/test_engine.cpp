// Unit tests: discrete-event engine mechanics, exercised through a scripted
// test scheme (so each behaviour is isolated from the real policies).
#include <gtest/gtest.h>

#include <map>

#include "core/task.hpp"
#include "sim/engine.hpp"
#include "sim/fault_plan.hpp"
#include "sim/gantt.hpp"

namespace mkss::sim {
namespace {

using core::Task;
using core::TaskSet;
using core::Ticks;
using core::from_ms;

/// Scheme whose release decisions are scripted per (task, job).
class ScriptedScheme final : public Scheme {
 public:
  std::map<std::pair<core::TaskIndex, std::uint64_t>, ReleaseDecision> script;
  ReleaseDecision fallback = ReleaseDecision::skip();
  std::vector<std::pair<std::uint64_t, core::JobOutcome>> outcomes;

  std::string name() const override { return "scripted"; }
  void setup(const TaskSet&) override {}
  ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j, Ticks) override {
    const auto it = script.find({i, j});
    return it != script.end() ? it->second : fallback;
  }
  void on_outcome(core::TaskIndex, std::uint64_t j, core::JobOutcome o) override {
    outcomes.emplace_back(j, o);
  }
  void on_permanent_fault(ProcessorId, Ticks) override {}
  std::optional<CopySpec> reroute_on_death(const core::Job&, bool, ProcessorId,
                                           Ticks, Ticks) override {
    return std::nullopt;
  }
};

ReleaseDecision duplicated(Ticks backup_eligible) {
  ReleaseDecision d;
  d.mandatory = true;
  d.copies.push_back({kPrimary, CopyKind::kMain, Band::kMandatory, 0, 0});
  d.copies.push_back({kSpare, CopyKind::kBackup, Band::kMandatory, backup_eligible, 0});
  return d;
}

/// One-task helper set: P = D = 10ms, C = 3ms.
TaskSet one_task() { return TaskSet({Task::from_ms(10, 10, 3, 1, 2)}); }

TEST(Engine, RejectsNonPositiveHorizon) {
  ScriptedScheme scheme;
  NoFaultPlan faults;
  const auto ts = one_task();
  EXPECT_THROW(simulate(ts, scheme, faults, SimConfig{}), std::invalid_argument);
}

TEST(Engine, MainCompletionCancelsBackupBeforeItStarts) {
  ScriptedScheme scheme;
  scheme.script[{0, 1}] = duplicated(from_ms(std::int64_t{7}));  // backup waits 7ms
  NoFaultPlan faults;
  const auto ts = one_task();
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, faults, cfg);

  EXPECT_EQ(trace.busy_time[kPrimary], from_ms(std::int64_t{3}));
  EXPECT_EQ(trace.busy_time[kSpare], 0);  // canceled at t=3, before eligibility
  EXPECT_EQ(trace.stats.backups_canceled, 1u);
  EXPECT_EQ(trace.stats.jobs_met, 1u);
  ASSERT_EQ(scheme.outcomes.size(), 1u);
  EXPECT_EQ(scheme.outcomes[0].second, core::JobOutcome::kMet);
}

TEST(Engine, UnprocrastinatedBackupRunsInLockstep) {
  ScriptedScheme scheme;
  scheme.script[{0, 1}] = duplicated(0);
  NoFaultPlan faults;
  const auto ts = one_task();
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, faults, cfg);
  // Both copies run [0,3): the backup finishes at the same instant as the
  // main, so nothing is saved.
  EXPECT_EQ(trace.busy_time[kPrimary], from_ms(std::int64_t{3}));
  EXPECT_EQ(trace.busy_time[kSpare], from_ms(std::int64_t{3}));
}

TEST(Engine, PartiallyExecutedBackupIsCanceledMidFlight) {
  ScriptedScheme scheme;
  scheme.script[{0, 1}] = duplicated(from_ms(std::int64_t{1}));  // backup from t=1
  NoFaultPlan faults;
  const auto ts = one_task();
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, faults, cfg);
  // Backup runs [1,3) and is canceled at 3 ("canceled part" of Figure 1).
  EXPECT_EQ(trace.busy_time[kSpare], from_ms(std::int64_t{2}));
  EXPECT_EQ(trace.stats.backups_canceled, 1u);
}

TEST(Engine, HigherPriorityPreemptsAndResumes) {
  // tau1 = (10,10,3) released at t=0 on primary; tau2 = (20,20,8) also
  // primary: tau2 starts? No -- tau1 wins at t=0, tau2 runs [3,?], second
  // tau1 job at 10 preempts tau2 if still running.
  const TaskSet ts({Task::from_ms(10, 10, 3, 1, 1), Task::from_ms(20, 20, 8, 1, 1)});
  ScriptedScheme scheme;
  ReleaseDecision main_only;
  main_only.mandatory = true;
  main_only.copies.push_back({kPrimary, CopyKind::kMain, Band::kMandatory, 0, 0});
  scheme.fallback = main_only;
  NoFaultPlan faults;
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{20});
  const auto trace = simulate(ts, scheme, faults, cfg);

  // Expected primary timeline: tau1 [0,3), tau2 [3,10), tau1 [10,13),
  // tau2 [13,14).
  std::vector<std::pair<Ticks, Ticks>> tau2_segments;
  for (const auto& s : trace.segments) {
    if (s.job.task == 1) tau2_segments.push_back({s.span.begin, s.span.end});
  }
  ASSERT_EQ(tau2_segments.size(), 2u);
  EXPECT_EQ(tau2_segments[0].first, from_ms(std::int64_t{3}));
  EXPECT_EQ(tau2_segments[0].second, from_ms(std::int64_t{10}));
  EXPECT_EQ(tau2_segments[1].first, from_ms(std::int64_t{13}));
  EXPECT_EQ(tau2_segments[1].second, from_ms(std::int64_t{14}));
  EXPECT_EQ(trace.stats.jobs_met, 3u);
}

TEST(Engine, MandatoryBandOutranksOptionalBandRegardlessOfTaskPriority) {
  // tau1's job is optional-band, tau2's is mandatory-band: tau2 runs first
  // even though tau1 has higher task priority.
  const TaskSet ts({Task::from_ms(10, 10, 2, 1, 2), Task::from_ms(10, 10, 2, 1, 2)});
  ScriptedScheme scheme;
  ReleaseDecision opt;
  opt.copies.push_back({kPrimary, CopyKind::kOptional, Band::kOptional, 0, 0});
  ReleaseDecision mand;
  mand.mandatory = true;
  mand.copies.push_back({kPrimary, CopyKind::kMain, Band::kMandatory, 0, 0});
  scheme.script[{0, 1}] = opt;
  scheme.script[{1, 1}] = mand;
  NoFaultPlan faults;
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, faults, cfg);

  ASSERT_GE(trace.segments.size(), 2u);
  EXPECT_EQ(trace.segments[0].job.task, 1u);  // mandatory first
  EXPECT_EQ(trace.segments[0].span.begin, 0);
  EXPECT_EQ(trace.segments[1].job.task, 0u);
  EXPECT_EQ(trace.segments[1].span.begin, from_ms(std::int64_t{2}));
}

TEST(Engine, OptionalRankBreaksTiesInsideOptionalBand) {
  const TaskSet ts({Task::from_ms(10, 10, 2, 1, 2), Task::from_ms(10, 10, 2, 1, 2)});
  ScriptedScheme scheme;
  ReleaseDecision urgent;  // tau2: rank 1
  urgent.copies.push_back({kPrimary, CopyKind::kOptional, Band::kOptional, 0, 1});
  ReleaseDecision relaxed;  // tau1: rank 2
  relaxed.copies.push_back({kPrimary, CopyKind::kOptional, Band::kOptional, 0, 2});
  scheme.script[{0, 1}] = relaxed;
  scheme.script[{1, 1}] = urgent;
  NoFaultPlan faults;
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, faults, cfg);
  ASSERT_GE(trace.segments.size(), 2u);
  EXPECT_EQ(trace.segments[0].job.task, 1u);  // lower rank runs first
}

TEST(Engine, InfeasibleOptionalIsNeverInvoked) {
  // Optional job with 3ms exec and 4ms deadline behind a 2ms mandatory job:
  // at t=2 there are only 2ms left -> never invoked ("O11 will not be
  // invoked at all").
  const TaskSet ts({Task::from_ms(10, 10, 2, 1, 2), Task::from_ms(10, 4, 3, 1, 2)});
  ScriptedScheme scheme;
  ReleaseDecision mand;
  mand.mandatory = true;
  mand.copies.push_back({kPrimary, CopyKind::kMain, Band::kMandatory, 0, 0});
  ReleaseDecision opt;
  opt.copies.push_back({kPrimary, CopyKind::kOptional, Band::kOptional, 0, 0});
  scheme.script[{0, 1}] = mand;
  scheme.script[{1, 1}] = opt;
  NoFaultPlan faults;
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, faults, cfg);

  for (const auto& s : trace.segments) {
    EXPECT_NE(s.job.task, 1u) << "infeasible optional copy must not execute";
  }
  EXPECT_EQ(trace.stats.jobs_missed, 1u);
  EXPECT_EQ(trace.stats.jobs_met, 1u);
}

TEST(Engine, SkippedJobMissesAtItsDeadline) {
  ScriptedScheme scheme;  // fallback skips everything
  NoFaultPlan faults;
  const auto ts = one_task();
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{20});
  const auto trace = simulate(ts, scheme, faults, cfg);
  EXPECT_EQ(trace.stats.jobs_missed, 2u);
  ASSERT_EQ(trace.outcomes_per_task[0].size(), 2u);
  ASSERT_EQ(scheme.outcomes.size(), 2u);
  EXPECT_EQ(trace.jobs[0].resolved_at, from_ms(std::int64_t{10}));
}

TEST(Engine, JobsWithDeadlinePastHorizonAreNotAudited) {
  ScriptedScheme scheme;
  NoFaultPlan faults;
  const auto ts = one_task();  // P = D = 10
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{15});  // second job's deadline is 20 > 15
  const auto trace = simulate(ts, scheme, faults, cfg);
  EXPECT_EQ(trace.outcomes_per_task[0].size(), 1u);
  ASSERT_EQ(trace.jobs.size(), 2u);
  EXPECT_FALSE(trace.jobs[1].counted);
}

TEST(Engine, PermanentFaultKillsProcessorAndStopsItsEnergy) {
  ScriptedScheme scheme;
  scheme.script[{0, 1}] = duplicated(0);
  scheme.script[{0, 2}] = duplicated(0);
  class Plan final : public FaultPlan {
   public:
    std::optional<PermanentFault> permanent() const override {
      return PermanentFault{kSpare, from_ms(std::int64_t{1})};
    }
    bool transient(const core::JobId&, int) const override { return false; }
  } plan;
  const auto ts = one_task();
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{20});
  const auto trace = simulate(ts, scheme, plan, cfg);

  EXPECT_EQ(trace.death_time[kSpare], from_ms(std::int64_t{1}));
  // Spare executed only [0,1) of the first backup; main finished the job.
  EXPECT_EQ(trace.busy_time[kSpare], from_ms(std::int64_t{1}));
  EXPECT_EQ(trace.stats.jobs_met, 2u);
  EXPECT_EQ(trace.stats.mandatory_misses, 0u);
}

TEST(Engine, TransientFaultOnMainLetsBackupFinish) {
  ScriptedScheme scheme;
  scheme.script[{0, 1}] = duplicated(0);
  class Plan final : public FaultPlan {
   public:
    std::optional<PermanentFault> permanent() const override { return std::nullopt; }
    bool transient(const core::JobId&, int slot) const override {
      return slot == 0;  // main copy always faults
    }
  } plan;
  const auto ts = one_task();
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, plan, cfg);

  EXPECT_EQ(trace.stats.transient_faults, 1u);
  EXPECT_EQ(trace.stats.jobs_met, 1u);  // backup saved it
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_TRUE(trace.jobs[0].main_transient_fault);
  EXPECT_FALSE(trace.jobs[0].backup_transient_fault);
  EXPECT_EQ(trace.busy_time[kSpare], from_ms(std::int64_t{3}));
}

TEST(Engine, TransientFaultOnBothCopiesMissesJob) {
  ScriptedScheme scheme;
  scheme.script[{0, 1}] = duplicated(0);
  class Plan final : public FaultPlan {
   public:
    std::optional<PermanentFault> permanent() const override { return std::nullopt; }
    bool transient(const core::JobId&, int) const override { return true; }
  } plan;
  const auto ts = one_task();
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, plan, cfg);
  EXPECT_EQ(trace.stats.jobs_met, 0u);
  EXPECT_EQ(trace.stats.jobs_missed, 1u);
  EXPECT_EQ(trace.stats.transient_faults, 2u);
}

TEST(Engine, SleepCommitmentSkipsOptionalWorkWhenConfigured) {
  // One mandatory task with long period plus an optional job arriving during
  // the idle gap. With wake_for_optional == false the processor committed to
  // sleep and must ignore it.
  const TaskSet ts({Task::from_ms(40, 40, 2, 1, 1), Task::from_ms(40, 40, 2, 1, 2)});
  for (const bool wake : {true, false}) {
    ScriptedScheme scheme;
    ReleaseDecision mand;
    mand.mandatory = true;
    mand.copies.push_back({kPrimary, CopyKind::kMain, Band::kMandatory, 0, 0});
    scheme.script[{0, 1}] = mand;
    ReleaseDecision opt;
    opt.copies.push_back(
        {kPrimary, CopyKind::kOptional, Band::kOptional, from_ms(std::int64_t{10}), 0});
    scheme.script[{1, 1}] = opt;
    NoFaultPlan faults;
    SimConfig cfg;
    cfg.horizon = from_ms(std::int64_t{40});
    cfg.wake_for_optional = wake;
    const auto trace = simulate(ts, scheme, faults, cfg);
    if (wake) {
      EXPECT_EQ(trace.busy_time[kPrimary], from_ms(std::int64_t{4}));
    } else {
      EXPECT_EQ(trace.busy_time[kPrimary], from_ms(std::int64_t{2}))
          << "sleeping processor must ignore optional work";
    }
  }
}

TEST(Engine, ActiveTimeClipsAtWindow) {
  ScriptedScheme scheme;
  scheme.script[{0, 1}] = duplicated(0);
  NoFaultPlan faults;
  const auto ts = one_task();
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, faults, cfg);
  EXPECT_EQ(trace.active_time(from_ms(std::int64_t{2})), from_ms(std::int64_t{4}));
  EXPECT_EQ(trace.active_time(), from_ms(std::int64_t{6}));
}

TEST(Engine, CompletionExactlyAtDeadlineIsMet) {
  // tau: P=10, D=3, C=3 -- the only copy finishes exactly at its deadline.
  const TaskSet ts({Task::from_ms(10, 3, 3, 1, 1)});
  ScriptedScheme scheme;
  ReleaseDecision mand;
  mand.mandatory = true;
  mand.copies.push_back({kPrimary, CopyKind::kMain, Band::kMandatory, 0, 0});
  scheme.script[{0, 1}] = mand;
  NoFaultPlan faults;
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, faults, cfg);
  EXPECT_EQ(trace.stats.jobs_met, 1u);
  EXPECT_EQ(trace.stats.mandatory_misses, 0u);
}

TEST(Engine, OutcomeOfPreviousJobPrecedesNextRelease) {
  // With D == P, job j's (missed) deadline coincides with job j+1's release;
  // the scheme must observe the outcome before classifying the next job.
  class OrderProbe final : public Scheme {
   public:
    std::vector<std::pair<char, std::uint64_t>> events;  // ('r'/'o', job)
    std::string name() const override { return "probe"; }
    void setup(const core::TaskSet&) override {}
    ReleaseDecision on_release(core::TaskIndex, std::uint64_t j, core::Ticks) override {
      events.push_back({'r', j});
      return ReleaseDecision::skip();  // every job misses at its deadline
    }
    void on_outcome(core::TaskIndex, std::uint64_t j, core::JobOutcome) override {
      events.push_back({'o', j});
    }
    void on_permanent_fault(ProcessorId, core::Ticks) override {}
    std::optional<CopySpec> reroute_on_death(const core::Job&, bool, ProcessorId,
                                             core::Ticks, core::Ticks) override {
      return std::nullopt;
    }
  } probe;
  const TaskSet ts({Task::from_ms(10, 10, 2, 1, 4)});
  NoFaultPlan faults;
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{30});
  simulate(ts, probe, faults, cfg);
  // Expected strict interleaving: r1, o1, r2, o2, r3, (o3 at horizon).
  ASSERT_GE(probe.events.size(), 5u);
  EXPECT_EQ(probe.events[0], (std::pair<char, std::uint64_t>{'r', 1}));
  EXPECT_EQ(probe.events[1], (std::pair<char, std::uint64_t>{'o', 1}));
  EXPECT_EQ(probe.events[2], (std::pair<char, std::uint64_t>{'r', 2}));
  EXPECT_EQ(probe.events[3], (std::pair<char, std::uint64_t>{'o', 2}));
  EXPECT_EQ(probe.events[4], (std::pair<char, std::uint64_t>{'r', 3}));
}

TEST(Engine, BackupFinishingFirstCancelsTheMain) {
  // Main copy delayed behind a higher-priority job on the primary while the
  // unprocrastinated backup runs free on the spare: the backup completes
  // first and the main must be canceled (symmetric cancellation).
  const TaskSet ts({Task::from_ms(20, 20, 8, 1, 1), Task::from_ms(20, 20, 3, 1, 1)});
  ScriptedScheme scheme;
  ReleaseDecision hog;  // tau1 keeps the primary busy [0,8)
  hog.mandatory = true;
  hog.copies.push_back({kPrimary, CopyKind::kMain, Band::kMandatory, 0, 0});
  scheme.script[{0, 1}] = hog;
  ReleaseDecision dup;  // tau2 duplicated, backup eligible immediately
  dup.mandatory = true;
  dup.copies.push_back({kPrimary, CopyKind::kMain, Band::kMandatory, 0, 0});
  dup.copies.push_back({kSpare, CopyKind::kBackup, Band::kMandatory, 0, 0});
  scheme.script[{1, 1}] = dup;
  NoFaultPlan faults;
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{20});
  const auto trace = simulate(ts, scheme, faults, cfg);

  EXPECT_EQ(trace.stats.mains_canceled, 1u);
  EXPECT_EQ(trace.stats.jobs_met, 2u);
  // tau2's main never ran on the primary (canceled at t=3 while queued
  // behind tau1).
  for (const auto& s : trace.segments) {
    EXPECT_FALSE(s.proc == kPrimary && s.job.task == 1) << "main should not run";
  }
}

TEST(Engine, PreemptionOverheadExtendsExecution) {
  // tau1 (P=6, C=1) preempts tau2 (C=8) exactly once; with 1ms overhead
  // tau2's total occupancy becomes 9ms: [1,6) + [7,11).
  const TaskSet ts({Task::from_ms(6, 6, 1, 1, 1), Task::from_ms(20, 20, 8, 1, 1)});
  ScriptedScheme scheme;
  ReleaseDecision main_only;
  main_only.mandatory = true;
  main_only.copies.push_back({kPrimary, CopyKind::kMain, Band::kMandatory, 0, 0});
  scheme.fallback = main_only;
  NoFaultPlan faults;
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{20});
  cfg.preemption_overhead = from_ms(std::int64_t{1});
  const auto trace = simulate(ts, scheme, faults, cfg);

  Ticks tau2_time = 0;
  for (const auto& s : trace.segments) {
    if (s.job.task == 1) tau2_time += s.span.length();
  }
  EXPECT_EQ(tau2_time, from_ms(std::int64_t{9}));  // 8 + 1 overhead
  EXPECT_EQ(trace.stats.preemptions, 1u);
  EXPECT_EQ(trace.stats.jobs_met, 4u);  // tau1 jobs 1-3 + tau2 job 1 counted
}

TEST(Engine, SurvivorTakeoverAfterMainFailedAndSpareDied) {
  // Boundary case: the main fails its transient check at 3ms, the postponed
  // backup starts at 4ms on the spare, and the spare dies at 5ms mid-backup.
  // The scheme re-routes the job to the surviving primary, which restarts
  // the work and completes it at 8ms, inside D = 10ms.
  class Plan final : public FaultPlan {
   public:
    std::optional<PermanentFault> permanent() const override {
      return PermanentFault{kSpare, from_ms(std::int64_t{5})};
    }
    bool transient(const core::JobId& job, int slot) const override {
      return job == core::JobId{0, 1} && slot == 0;
    }
  };
  class TakeoverScheme final : public Scheme {
   public:
    std::string name() const override { return "takeover"; }
    void setup(const TaskSet&) override {}
    ReleaseDecision on_release(core::TaskIndex, std::uint64_t j, Ticks) override {
      if (j != 1) return ReleaseDecision::skip();
      return duplicated(from_ms(std::int64_t{4}));
    }
    void on_outcome(core::TaskIndex, std::uint64_t, core::JobOutcome) override {}
    void on_permanent_fault(ProcessorId, Ticks) override {}
    std::optional<CopySpec> reroute_on_death(const core::Job&, bool,
                                             ProcessorId survivor, Ticks now,
                                             Ticks) override {
      return CopySpec{survivor, CopyKind::kBackup, Band::kMandatory, now, 0};
    }
  };

  TakeoverScheme scheme;
  Plan plan;
  const auto ts = one_task();  // P = D = 10ms, C = 3ms
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, plan, cfg);

  EXPECT_EQ(trace.death_time[kSpare], from_ms(std::int64_t{5}));
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0].outcome, core::JobOutcome::kMet);
  EXPECT_EQ(trace.jobs[0].resolved_at, from_ms(std::int64_t{8}));
  EXPECT_TRUE(trace.jobs[0].main_transient_fault);

  // Three copy lifecycles: failed main, backup lost to the death, takeover.
  ASSERT_EQ(trace.copies.size(), 3u);
  EXPECT_EQ(trace.copies[0].end, CopyEnd::kCompleted);
  EXPECT_TRUE(trace.copies[0].transient_fault);
  EXPECT_EQ(trace.copies[1].end, CopyEnd::kLostToDeath);
  EXPECT_EQ(trace.copies[1].ended, from_ms(std::int64_t{5}));
  EXPECT_EQ(trace.copies[2].end, CopyEnd::kCompleted);
  EXPECT_EQ(trace.copies[2].proc, kPrimary);
  EXPECT_EQ(trace.copies[2].admitted, from_ms(std::int64_t{5}));
  EXPECT_EQ(trace.busy_time[kPrimary], from_ms(std::int64_t{6}));
  EXPECT_EQ(trace.busy_time[kSpare], from_ms(std::int64_t{1}));
  EXPECT_EQ(trace.stats.mandatory_misses, 0u);
}

TEST(Gantt, RendersRowsPerProcessorAndTask) {
  ScriptedScheme scheme;
  scheme.script[{0, 1}] = duplicated(0);
  NoFaultPlan faults;
  const auto ts = one_task();
  SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = simulate(ts, scheme, faults, cfg);
  const std::string g = render_gantt(trace, ts);
  EXPECT_NE(g.find("primary"), std::string::npos);
  EXPECT_NE(g.find("spare"), std::string::npos);
  EXPECT_NE(g.find("MMM"), std::string::npos);
  EXPECT_NE(g.find("BBB"), std::string::npos);
}

}  // namespace
}  // namespace mkss::sim
